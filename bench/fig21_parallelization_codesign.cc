/**
 * @file
 * Fig. 21: co-optimizing the parallelization strategy with the network.
 * MSFT-1T on 4D-4K at 1,000 GB/s per NPU, sweeping HP-(8,512) through
 * HP-(256,16) (extended-memory assumption relaxes the per-NPU memory
 * cap, as in the paper's CXL discussion). Every strategy gets its own
 * PerfOptBW network; all results are normalized to EqualBW with the
 * default HP-(128,32).
 *
 * Reproduced claims: a mid-range TP (paper: HP-(64,64)) with its
 * co-optimized network is fastest (paper: 1.19x over baseline);
 * performance degrades sharply once TP drops below 32.
 */

#include "bench_util.hh"
#include "core/optimizer.hh"
#include "topology/zoo.hh"
#include "workload/zoo.hh"

namespace libra {
namespace {

void
run()
{
    bench::banner("Fig. 21", "network + parallelization co-design "
                             "(MSFT-1T, 4D-4K @ 1,000 GB/s)");

    Network net = topo::fourD4K();
    TrainingEstimator est(net);
    BwOptimizer opt(net, CostModel::defaultModel());
    const double budget = 1000.0;

    // Baseline: EqualBW with the Table II default HP-(128, 32).
    Seconds tBase = est.estimate(wl::msft1TWithStrategy(128, 32),
                                 net.equalBw(budget));

    Table t;
    t.header({"Strategy", "Speedup (EqualBW)", "Speedup (co-design)",
              "Co-designed BW config"});

    double bestSpeedup = 0.0;
    std::string bestStrategy;
    for (long tp : {8L, 16L, 32L, 64L, 128L, 256L}) {
        long dp = net.npus() / tp;
        Workload w = wl::msft1TWithStrategy(tp, dp);

        Seconds tEq = est.estimate(w, net.equalBw(budget));

        OptimizerConfig cfg;
        cfg.objective = OptimizationObjective::PerfOpt;
        cfg.totalBw = budget;
        cfg.search = bench::benchSearch();
        OptimizationResult r = opt.optimize({{w, 1.0}}, cfg);

        double speedup = tBase / r.weightedTime;
        if (speedup > bestSpeedup) {
            bestSpeedup = speedup;
            bestStrategy = w.strategy.name();
        }
        t.row({w.strategy.name(), Table::num(tBase / tEq, 2),
               Table::num(speedup, 2), bwConfigToString(r.bw, 0)});
    }
    t.print(std::cout);

    std::cout << "\nBest co-designed point: " << bestStrategy << " at "
              << Table::num(bestSpeedup, 2)
              << "x over the HP-(128,32)+EqualBW baseline (paper: "
                 "HP-(64,64) at 1.19x).\n";
}

} // namespace
} // namespace libra

int
main()
{
    libra::setInformEnabled(false);
    libra::run();
    return 0;
}
