/**
 * @file
 * Fig. 21: co-optimizing the parallelization strategy with the network.
 * MSFT-1T on 4D-4K at 1,000 GB/s per NPU, sweeping HP-(8,512) through
 * HP-(256,16) (extended-memory assumption relaxes the per-NPU memory
 * cap, as in the paper's CXL discussion). Every strategy gets its own
 * PerfOptBW network; all results are normalized to EqualBW with the
 * default HP-(128,32).
 *
 * The study is the registered "fig21" scenario (src/study/scenarios.cc).
 */

#include "bench_util.hh"

int
main()
{
    return libra::bench::runScenarioMain("fig21");
}
