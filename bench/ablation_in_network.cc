/**
 * @file
 * Ablation: in-network (switch-offloaded) All-Reduce (paper §IV-C).
 * Offloading reduces dim-i All-Reduce traffic to m/q_{i-1}; ZeRO-2
 * workloads whose gradient sync is RS+AG are untouched. Evaluated on
 * the all-switch 3D-512 network where every dimension could host
 * SHArP-style reduction trees.
 */

#include "bench_util.hh"
#include "core/optimizer.hh"
#include "topology/zoo.hh"
#include "workload/zoo.hh"

namespace libra {
namespace {

void
run()
{
    bench::banner("Ablation", "in-network collective offload "
                              "(3D-512, all-switch)");

    Network net = topo::threeD512();
    const double budget = 300.0;
    BwConfig equal = net.equalBw(budget);

    Table t;
    t.header({"Workload", "Baseline/iter", "In-network/iter",
              "Offload gain", "PerfOpt+offload speedup"});

    for (const auto& w : wl::tableTwo(net.npus())) {
        EstimatorOptions plain;
        EstimatorOptions offload;
        offload.inNetworkCollectives = true;
        Seconds tPlain = TrainingEstimator(net, plain).estimate(w, equal);
        Seconds tOff =
            TrainingEstimator(net, offload).estimate(w, equal);

        BwOptimizer opt(net, CostModel::defaultModel());
        OptimizerConfig cfg;
        cfg.totalBw = budget;
        cfg.estimator = offload;
        cfg.search = bench::benchSearch();
        OptimizationResult best = opt.optimize({{w, 1.0}}, cfg);

        t.row({w.name, secondsToString(tPlain), secondsToString(tOff),
               Table::num(tPlain / tOff, 2),
               Table::num(tPlain / best.weightedTime, 2)});
    }
    t.print(std::cout);
    std::cout << "\nAll-Reduce traffic (Megatron activation ARs, "
                 "ResNet/DLRM gradient ARs) gains from offload; "
                 "Turing-NLG is untouched because its only "
                 "communication is the ZeRO-2 RS+AG gradient sync, "
                 "matching the paper's offload model.\n";
}

} // namespace
} // namespace libra

int
main()
{
    libra::setInformEnabled(false);
    libra::run();
    return 0;
}
