/**
 * @file
 * Ablation: efficiency-blind vs efficiency-aware bandwidth allocation.
 *
 * The paper's LIBRA assigns dimension bandwidth assuming every
 * communicator group can exploit it; §VI-A then observes that GPT-3 on
 * the 4D-4K network "cannot leverage all Dim 2 BW resources LIBRA
 * assigned, due to the mismatching TP size, thereby yielding
 * performance close to the baseline" — while still winning 4.58x on
 * perf-per-cost.
 *
 * This bench reproduces exactly that: the *blind* optimizer (partial-
 * span efficiency disabled, as in the paper) designs the network, and
 * an efficiency-aware evaluator measures it (our ASTRA-sim stand-in).
 * The efficiency-aware optimizer — this repo's default — is shown as
 * the ablation's second arm: it anticipates the penalty and recovers
 * most of the speedup.
 */

#include "bench_util.hh"
#include "core/optimizer.hh"
#include "topology/zoo.hh"
#include "workload/zoo.hh"

namespace libra {
namespace {

void
run()
{
    bench::banner("Ablation", "efficiency-blind vs efficiency-aware "
                              "allocation (GPT-3, 4D-4K)");

    Network net = topo::fourD4K();
    CostModel cm = CostModel::defaultModel();
    Workload w = wl::gpt3(net.npus());

    // The ground-truth evaluator always models the physics.
    TrainingEstimator evaluator(net);

    Table t;
    t.header({"BW/NPU", "Optimizer", "Speedup (measured)",
              "ppc x (measured)", "BW config"});

    for (double bw : {250.0, 500.0, 1000.0}) {
        BwConfig equal = net.equalBw(bw);
        Seconds tEq = evaluator.estimate(w, equal);
        Dollars cEq = cm.networkCost(net, equal);

        for (bool blind : {true, false}) {
            EstimatorOptions opt;
            opt.modelPartialDimEfficiency = !blind;
            OptimizerConfig cfg;
            cfg.objective = OptimizationObjective::PerfOpt;
            cfg.totalBw = bw;
            cfg.estimator = opt;
            cfg.search = bench::benchSearch();
            BwOptimizer optimizer(net, cm);
            OptimizationResult r = optimizer.optimize({{w, 1.0}}, cfg);

            Seconds tReal = evaluator.estimate(w, r.bw);
            double ppc = (tEq * cEq) / (tReal * r.cost);
            t.row({Table::num(bw, 0),
                   blind ? "blind (paper)" : "aware (ours)",
                   Table::num(tEq / tReal, 2), Table::num(ppc, 2),
                   bwConfigToString(r.bw, 0)});
        }
    }
    t.print(std::cout);
    std::cout << "\nClaim check (paper §VI-A): the blind allocation "
                 "yields GPT-3+4D speedup close to 1x yet a multi-x "
                 "perf-per-cost win (paper: 4.58x); modeling the "
                 "partial-span efficiency recovers extra speedup.\n";
}

} // namespace
} // namespace libra

int
main()
{
    libra::setInformEnabled(false);
    libra::run();
    return 0;
}
