/**
 * @file
 * Ablation: chunk granularity. The paper pipelines every collective as
 * 64 chunks (§V-B); this sweep shows why — few chunks leave pipeline
 * fill/drain bubbles (Fig. 9's "inevitable scheduling bubbles"), while
 * beyond ~64 chunks the gain saturates. Run on a balanced (LIBRA-style)
 * allocation where the pipeline effect is the dominant overhead.
 */

#include "bench_util.hh"
#include "sim/chunk_timeline.hh"

namespace libra {
namespace {

void
run()
{
    bench::banner("Ablation", "chunk granularity vs pipeline bubbles "
                              "(All-Reduce on balanced 3D)");

    std::vector<DimSpan> spans{{0, 4}, {1, 4}, {2, 4}};
    auto traffic =
        multiRailTraffic(CollectiveType::AllReduce, 1e9, spans);
    BwConfig bw{traffic[0] / 1e9, traffic[1] / 1e9, traffic[2] / 1e9};
    Seconds ideal =
        multiRailTime(CollectiveType::AllReduce, 1e9, spans, bw).time;
    ChunkTimeline tl(3, bw);

    Table t;
    t.header({"Chunks", "AR time", "Overhead vs analytic",
              "Avg BW util"});
    for (int chunks : {1, 2, 4, 8, 16, 32, 64, 128, 256}) {
        CollectiveJob job;
        job.type = CollectiveType::AllReduce;
        job.size = 1e9;
        job.spans = spans;
        job.numChunks = chunks;
        TimelineResult r = tl.run({job});
        t.row({std::to_string(chunks), secondsToString(r.makespan),
               Table::num((r.makespan / ideal - 1.0) * 100.0, 1) + "%",
               Table::num(r.avgBwUtilization * 100.0, 1) + "%"});
    }
    t.print(std::cout);
    std::cout << "\nAnalytic bottleneck bound: " << secondsToString(ideal)
              << ". The paper's 64-chunk choice sits at the knee.\n";
}

} // namespace
} // namespace libra

int
main()
{
    libra::setInformEnabled(false);
    libra::run();
    return 0;
}
