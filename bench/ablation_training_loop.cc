/**
 * @file
 * Ablation: training-loop scheduling (paper Fig. 5). Compares the
 * No-Overlap loop with the TP-DP-Overlap loop across the Table II
 * workloads, and shows that LIBRA's optimized allocation shifts when
 * the loop changes (DP communication hidden behind TP compute needs
 * less outer-dimension bandwidth).
 */

#include "bench_util.hh"
#include "core/optimizer.hh"
#include "topology/zoo.hh"
#include "workload/zoo.hh"

namespace libra {
namespace {

void
run()
{
    bench::banner("Ablation", "No-Overlap vs TP-DP-Overlap training "
                              "loops (4D-4K @ 500 GB/s)");

    Network net = topo::fourD4K();
    const double budget = 500.0;

    Table t;
    t.header({"Workload", "NoOverlap/iter", "TpDpOverlap/iter",
              "Hidden comm", "PerfOpt speedup (NoOv)",
              "PerfOpt speedup (Ov)"});

    for (const auto& w : wl::tableTwo(net.npus())) {
        EstimatorOptions noOv;
        EstimatorOptions ov;
        ov.loop = TrainingLoop::TpDpOverlap;
        TrainingEstimator estNo(net, noOv);
        TrainingEstimator estOv(net, ov);
        BwConfig equal = net.equalBw(budget);
        Seconds tNo = estNo.estimate(w, equal);
        Seconds tOv = estOv.estimate(w, equal);

        auto speedup = [&](EstimatorOptions opt) {
            BwOptimizer optzr(net, CostModel::defaultModel());
            OptimizerConfig cfg;
            cfg.totalBw = budget;
            cfg.estimator = opt;
            cfg.search = bench::benchSearch();
            OptimizationResult r = optzr.optimize({{w, 1.0}}, cfg);
            OptimizationResult base = optzr.baseline({{w, 1.0}}, cfg);
            return base.weightedTime / r.weightedTime;
        };

        t.row({w.name, secondsToString(tNo), secondsToString(tOv),
               Table::num((1.0 - tOv / tNo) * 100.0, 1) + "%",
               Table::num(speedup(noOv), 2),
               Table::num(speedup(ov), 2)});
    }
    t.print(std::cout);
    std::cout << "\nOverlap hides part of the DP gradient sync behind "
                 "compute; the optimizer's remaining headroom shrinks "
                 "accordingly but stays >= 1x.\n";
}

} // namespace
} // namespace libra

int
main()
{
    libra::setInformEnabled(false);
    libra::run();
    return 0;
}
