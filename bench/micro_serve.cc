/**
 * @file
 * Study-service latency/throughput benchmark (docs/SERVE.md).
 *
 * The serve subsystem's claim is that a long-lived server turns a
 * scenario-matrix evaluation — normally process startup + registry
 * construction + (at best) a disk-cache read per call — into an
 * in-memory LRU lookup behind one socket round-trip, without changing
 * a single emitted byte. This bench measures that round-trip:
 *
 *   1. start a memory-only server on a Unix-domain socket,
 *   2. warm it with one fig10 request (computes the 3 design points),
 *   3. hammer it with many concurrent clients re-requesting the same
 *      matrix, recording per-request wall latency,
 *   4. check every response against the bytes `run-matrix` emits for
 *      the same scenario (the byte-identity contract), and that the
 *      warm requests report computed == 0 (served from the LRU).
 *
 * Emits machine-readable BENCH_serve.json for CI tracking next to
 * BENCH_objective/solver/backend/explore.json: p50/p99 latency and
 * sustained requests/second under the concurrent load, plus the two
 * acceptance booleans (byte_identical, lru_served).
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <sstream>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "common/json.hh"
#include "common/thread_pool.hh"
#include "serve/server.hh"

namespace libra {
namespace {

using Clock = std::chrono::steady_clock;

constexpr const char* kScenario = "fig10";
constexpr std::size_t kClients = 8;
constexpr std::size_t kRequestsPerClient = 25;

/** The bytes `run-matrix <scenario> --emit json` writes to stdout. */
std::string
oneShotBytes()
{
    MatrixResult result = runScenarioMatrix({kScenario});
    std::ostringstream os;
    emitMatrixJson(result, os);
    return os.str();
}

double
percentile(std::vector<double> sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    std::sort(sorted.begin(), sorted.end());
    double rank = p * static_cast<double>(sorted.size() - 1);
    std::size_t lo = static_cast<std::size_t>(rank);
    std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

void
run()
{
    bench::banner("micro",
                  "study-service round-trip latency and throughput "
                  "(warm LRU, concurrent clients)");

    ThreadPool::setGlobalThreads(2);
    const std::string expected = oneShotBytes();

    ServeOptions options;
    options.socketPath = "/tmp/libra-bench-serve.sock";
    options.cacheDir = ""; // Memory-only: isolate the LRU round-trip.
    Server server(std::move(options));
    server.start();
    const std::string socket = server.socketPath();
    const std::string request =
        std::string("{\"scenario\": \"") + kScenario +
        "\", \"emit\": \"json\"}";

    // Warm: the one computing request; everything after is LRU-served.
    ServeReply warm = serveRequest(socket, request);
    if (!warm.status.at("ok").asBool())
        fatal("warm request failed: ", warm.status.dump());

    std::atomic<bool> byteIdentical{true};
    std::atomic<bool> lruServed{true};
    std::vector<std::vector<double>> perClientMs(kClients);
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    Clock::time_point wallStart = Clock::now();
    for (std::size_t c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            perClientMs[c].reserve(kRequestsPerClient);
            for (std::size_t i = 0; i < kRequestsPerClient; ++i) {
                Clock::time_point t0 = Clock::now();
                ServeReply reply = serveRequest(socket, request);
                Clock::time_point t1 = Clock::now();
                perClientMs[c].push_back(
                    std::chrono::duration<double, std::milli>(t1 - t0)
                        .count());
                if (reply.payload != expected)
                    byteIdentical = false;
                if (reply.status.at("computed").asNumber() != 0.0)
                    lruServed = false;
            }
        });
    }
    for (auto& t : clients)
        t.join();
    double wallSeconds =
        std::chrono::duration<double>(Clock::now() - wallStart)
            .count();

    std::vector<double> latenciesMs;
    for (const auto& v : perClientMs)
        latenciesMs.insert(latenciesMs.end(), v.begin(), v.end());
    double p50 = percentile(latenciesMs, 0.50);
    double p99 = percentile(latenciesMs, 0.99);
    double reqPerSec =
        wallSeconds > 0.0
            ? static_cast<double>(latenciesMs.size()) / wallSeconds
            : 0.0;

    bool shutdownOk = true;
    {
        ServeReply bye = serveRequest(socket, "{\"op\": \"shutdown\"}");
        shutdownOk = bye.status.at("ok").asBool();
    }
    server.waitUntilStopped();

    Table t;
    t.header({"clients", "requests", "p50 ms", "p99 ms", "req/s",
              "byte-identical", "LRU-served"});
    t.row({std::to_string(kClients),
           std::to_string(latenciesMs.size()), Table::num(p50, 3),
           Table::num(p99, 3), Table::num(reqPerSec, 0),
           byteIdentical.load() ? "yes" : "NO",
           lruServed.load() ? "yes" : "NO"});
    t.print(std::cout);

    Json j = Json::object();
    j["bench"] = "micro_serve";
    j["scenario"] = kScenario;
    j["clients"] = kClients;
    j["requests"] = latenciesMs.size();
    j["p50_latency_ms"] = p50;
    j["p99_latency_ms"] = p99;
    j["requests_per_second"] = reqPerSec;
    j["byte_identical"] = byteIdentical.load();
    j["lru_served"] = lruServed.load();
    j["clean_shutdown"] = shutdownOk;

    bench::writeBenchJson("BENCH_serve.json", j);
    std::cout << "\nWrote BENCH_serve.json (p50 "
              << Table::num(p50, 3) << " ms, p99 "
              << Table::num(p99, 3) << " ms, "
              << Table::num(reqPerSec, 0)
              << " req/s across " << kClients
              << " concurrent clients).\n";
    if (!byteIdentical.load() || !lruServed.load() || !shutdownOk)
        fatal("serve bench acceptance failed (byte_identical=",
              byteIdentical.load() ? "true" : "false", ", lru_served=",
              lruServed.load() ? "true" : "false", ")");
}

} // namespace
} // namespace libra

int
main()
{
    libra::setInformEnabled(false);
    try {
        libra::run();
    } catch (const libra::FatalError& e) {
        std::cerr << "bench: " << e.what() << "\n";
        return 1;
    }
    return 0;
}
