/**
 * @file
 * Fig. 19: LIBRA composed with the Themis runtime collective scheduler.
 * GPT-3 on 4D-4K; Themis (greedy chunk scheduling) is enabled on BOTH
 * the EqualBW and the LIBRA-designed network:
 *
 *  - iso-cost: both networks cost $15M.
 *  - iso-resource: both networks have 1,000 GB/s per NPU.
 *
 * Reproduced claims: iso-cost, the LIBRA network affords several-x more
 * BW per NPU (paper: 5.05x) and trains faster even with Themis on both
 * (paper: 2.24x); iso-resource, LIBRA is slightly faster (paper: 1.04x)
 * while being several-x cheaper (paper: 4.58x), for a large
 * perf-per-cost win (paper: 4.77x).
 */

#include "bench_util.hh"
#include "core/optimizer.hh"
#include "runtime/themis.hh"
#include "topology/zoo.hh"
#include "workload/zoo.hh"

namespace libra {
namespace {

void
run()
{
    bench::banner("Fig. 19", "LIBRA + Themis (GPT-3, 4D-4K)");

    Network net = topo::fourD4K();
    CostModel cm = CostModel::defaultModel();
    Workload w = wl::gpt3(net.npus());

    // Themis-enabled end-to-end estimator.
    EstimatorOptions themisOpt;
    themisOpt.commTimeFn = makeThemisCommTimeFn(net.numDims());
    TrainingEstimator themis(net, themisOpt);

    BwOptimizer opt(net, cm);
    std::vector<TargetWorkload> targets{{w, 1.0}};

    Table t;
    t.header({"Setup", "Config", "BW/NPU", "Cost", "Time(Themis)",
              "Speedup", "ppc x"});

    // --- iso-resource: 1,000 GB/s per NPU each. ---
    {
        OptimizerConfig cfg;
        cfg.objective = OptimizationObjective::PerfOpt;
        cfg.totalBw = 1000.0;
        cfg.search = bench::benchSearch();
        OptimizationResult libra = opt.optimize(targets, cfg);
        BwConfig equal = net.equalBw(1000.0);

        Seconds tEq = themis.estimate(w, equal);
        Seconds tLb = themis.estimate(w, libra.bw);
        Dollars cEq = cm.networkCost(net, equal);
        Dollars cLb = cm.networkCost(net, libra.bw);

        t.row({"iso-resource", "EqualBW+Themis", "1000",
               dollarsToString(cEq), secondsToString(tEq), "1.00",
               "1.00"});
        t.row({"iso-resource", "LIBRA+Themis", "1000",
               dollarsToString(cLb), secondsToString(tLb),
               Table::num(tEq / tLb, 2),
               Table::num((tEq * cEq) / (tLb * cLb), 2)});
        std::cout << "iso-resource: LIBRA cost reduction "
                  << Table::num(cEq / cLb, 2)
                  << "x (paper: 4.58x)\n";
    }

    // --- iso-cost: $15M each. ---
    {
        const Dollars budget = 15e6;
        // EqualBW at $15M: solve bw from the linear cost model.
        double ratePerNpu = 0.0;
        for (std::size_t d = 0; d < net.numDims(); ++d)
            ratePerNpu += cm.dollarPerGBps(net.dim(d));
        ratePerNpu /= static_cast<double>(net.numDims());
        double eqBw = budget / (ratePerNpu *
                                static_cast<double>(net.npus()));
        BwConfig equal = net.equalBw(eqBw);

        OptimizerConfig cfg;
        cfg.objective = OptimizationObjective::PerfOpt;
        cfg.totalBw = 6000.0; // Generous ceiling; dollars bind.
        cfg.relaxTotalBw = true;
        cfg.budgetCap = budget;
        cfg.search = bench::benchSearch();
        OptimizationResult libra = opt.optimize(targets, cfg);

        double libraBwTotal = 0.0;
        for (double b : libra.bw)
            libraBwTotal += b;

        Seconds tEq = themis.estimate(w, equal);
        Seconds tLb = themis.estimate(w, libra.bw);
        Dollars cEq = cm.networkCost(net, equal);
        Dollars cLb = libra.cost;

        t.row({"iso-cost", "EqualBW+Themis", Table::num(eqBw, 0),
               dollarsToString(cEq), secondsToString(tEq), "1.00",
               "1.00"});
        t.row({"iso-cost", "LIBRA+Themis", Table::num(libraBwTotal, 0),
               dollarsToString(cLb), secondsToString(tLb),
               Table::num(tEq / tLb, 2),
               Table::num((tEq * cEq) / (tLb * cLb), 2)});
        std::cout << "iso-cost: LIBRA affords "
                  << Table::num(libraBwTotal / eqBw, 2)
                  << "x more BW per NPU (paper: 5.05x)\n";
    }

    t.print(std::cout);
    std::cout << "\nClaim check: with Themis enabled on both networks, "
                 "the LIBRA design still wins — large speedup iso-cost, "
                 "large perf-per-cost gain iso-resource.\n";
}

} // namespace
} // namespace libra

int
main()
{
    libra::setInformEnabled(false);
    libra::run();
    return 0;
}
