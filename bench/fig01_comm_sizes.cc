/**
 * @file
 * Fig. 1: total communication size per training iteration across model
 * generations, on 1,024 NPUs. Turing-NLG and smaller are data-parallel;
 * GPT-3 and MSFT-1T use tensor + data parallelism (Table II TP sizes).
 *
 * The reproduced claim is the trend: communication grows from tens of
 * MB (vision) to TBs (trillion-parameter LLMs).
 */

#include "bench_util.hh"
#include "collective/multi_rail.hh"
#include "core/estimator.hh"
#include "topology/zoo.hh"
#include "workload/zoo.hh"

namespace libra {
namespace {

/** "17.0B"-style parameter-count rendering. */
std::string
paramsToString(double p)
{
    if (p >= 1e12)
        return Table::num(p / 1e12, 1) + "T";
    if (p >= 1e9)
        return Table::num(p / 1e9, 1) + "B";
    return Table::num(p / 1e6, 1) + "M";
}

/** Aggregate collective payload a model exchanges per iteration. */
Bytes
commSize(const Workload& w)
{
    Bytes total = 0.0;
    for (const auto& l : w.layers)
        for (const auto& op : Workload::allOps(l))
            total += op.size;
    return total;
}

void
run()
{
    bench::banner("Fig. 1", "communication sizes across ML models "
                            "(1,024 NPUs, FP16)");
    const long npus = 1024;

    struct Row
    {
        const char* year;
        Workload w;
    };
    std::vector<Row> rows;
    rows.push_back({"2015", wl::resnet50(npus)});
    rows.push_back({"2020", wl::turingNlg(npus)});
    rows.push_back({"2020", wl::gpt3(npus)});
    rows.push_back({"2021", wl::msft1T(npus)});
    rows.push_back({"2019", wl::dlrm(npus)});

    Table t;
    t.header({"Year", "Model", "Params", "Strategy", "Comm/iter"});
    for (const auto& r : rows) {
        t.row({r.year, r.w.name, paramsToString(r.w.parameters),
               r.w.strategy.name(), bytesToString(commSize(r.w))});
    }
    t.print(std::cout);

    std::cout << "\nClaim check: communication spans MBs (vision) to TBs "
                 "(trillion-param LLMs), growing with model year/size.\n";
}

} // namespace
} // namespace libra

int
main()
{
    libra::setInformEnabled(false);
    libra::run();
    return 0;
}
