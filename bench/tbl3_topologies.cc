/**
 * @file
 * Table III: the evaluation topologies, plus the Fig. 11 real-system
 * shapes expressible in the same notation.
 *
 * The study is the registered "tbl3" scenario (src/study/scenarios.cc).
 */

#include "bench_util.hh"

int
main()
{
    return libra::bench::runScenarioMain("tbl3");
}
