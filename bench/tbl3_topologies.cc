/**
 * @file
 * Table III: the evaluation topologies, plus the Fig. 11 real-system
 * shapes expressible in the same notation.
 */

#include "bench_util.hh"
#include "cost/cost_model.hh"
#include "topology/zoo.hh"

namespace libra {
namespace {

void
run()
{
    bench::banner("Table III / Fig. 11", "multi-dimensional topologies");

    CostModel m = CostModel::defaultModel();
    Table t;
    t.header({"Name", "Shape", "NPUs", "Dims",
              "EqualBW cost @300GB/s"});
    for (const auto& [label, net] : topo::tableThree()) {
        t.row({label, net.name(), std::to_string(net.npus()),
               std::to_string(net.numDims()),
               dollarsToString(m.networkCost(net, net.equalBw(300.0)))});
    }
    t.print(std::cout);

    std::cout << "\nFig. 11: real ML HPC clusters in the same notation\n";
    Table r;
    r.header({"System", "NPUs"});
    for (const auto& [label, net] : topo::realSystems())
        r.row({label, std::to_string(net.npus())});
    r.print(std::cout);
}

} // namespace
} // namespace libra

int
main()
{
    libra::setInformEnabled(false);
    libra::run();
    return 0;
}
