/**
 * @file
 * Fig. 13: end-to-end training speedup over the EqualBW baseline for
 * Turing-NLG, GPT-3, and MSFT-1T on the 3D-4K and 4D-4K networks,
 * sweeping 100-1,000 GB/s per NPU, under both optimization schemes.
 *
 * Reproduced claims: PerfOptBW is never slower than EqualBW (paper avg
 * 1.23x, max 2.00x); PerfPerCostOptBW may trade speed for dollars
 * (speedup can dip below 1); GPT-3 on 4D-4K stays near 1x because the
 * TP-16 group mismatches the dim-2 size.
 */

#include "bench_util.hh"
#include "core/optimizer.hh"
#include "topology/zoo.hh"
#include "workload/zoo.hh"

namespace libra {
namespace {

void
run()
{
    bench::banner("Fig. 13", "training speedup over EqualBW "
                             "(LIBRA-optimized networks)");

    std::vector<topo::NamedNetwork> nets{{"3D", topo::threeD4K()},
                                         {"4D", topo::fourD4K()}};

    Table t;
    t.header({"Workload", "Net", "BW/NPU", "PerfOpt x", "PerfPerCost x",
              "PerfOpt BW config"});

    double sumSpeedup = 0.0, maxSpeedup = 0.0;
    int points = 0;

    for (const auto& [label, net] : nets) {
        std::vector<Workload> workloads{wl::turingNlg(net.npus()),
                                        wl::gpt3(net.npus()),
                                        wl::msft1T(net.npus())};
        for (const auto& w : workloads) {
            for (double bw : bench::bwSweep()) {
                BwOptimizer opt(net, CostModel::defaultModel());
                std::vector<TargetWorkload> targets{{w, 1.0}};
                OptimizerConfig cfg;
                cfg.totalBw = bw;
                cfg.search = bench::benchSearch();

                cfg.objective = OptimizationObjective::PerfOpt;
                OptimizationResult perf = opt.optimize(targets, cfg);
                OptimizationResult base = opt.baseline(targets, cfg);

                cfg.objective = OptimizationObjective::PerfPerCostOpt;
                OptimizationResult ppc = opt.optimize(targets, cfg);

                double sPerf = base.weightedTime / perf.weightedTime;
                double sPpc = base.weightedTime / ppc.weightedTime;
                sumSpeedup += sPerf;
                maxSpeedup = std::max(maxSpeedup, sPerf);
                ++points;

                t.row({w.name, label, Table::num(bw, 0),
                       Table::num(sPerf, 2), Table::num(sPpc, 2),
                       bwConfigToString(perf.bw, 0)});
            }
        }
    }
    t.print(std::cout);
    std::cout << "\nPerfOptBW speedup: avg "
              << Table::num(sumSpeedup / points, 2) << "x, max "
              << Table::num(maxSpeedup, 2)
              << "x (paper: avg 1.23x, max 2.00x).\n"
              << "Claim check: PerfOpt >= 1x everywhere; GPT-3+4D near "
                 "1x (TP-16 vs dim-2=8 mismatch).\n";
}

} // namespace
} // namespace libra

int
main()
{
    libra::setInformEnabled(false);
    libra::run();
    return 0;
}
