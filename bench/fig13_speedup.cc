/**
 * @file
 * Fig. 13: end-to-end training speedup over the EqualBW baseline for
 * Turing-NLG, GPT-3, and MSFT-1T on the 3D-4K and 4D-4K networks,
 * sweeping 100-1,000 GB/s per NPU, under both optimization schemes.
 *
 * The study itself is the registered "fig13" scenario
 * (src/study/scenarios.cc); run it alongside the other figures with
 * `libra_cli run-matrix fig13` to share the point cache. Its headline
 * metrics are pinned by tests/test_golden_figures.cc.
 */

#include "bench_util.hh"

int
main()
{
    return libra::bench::runScenarioMain("fig13");
}
