/**
 * @file
 * Fig. 9: chunk timelines of a 4-chunk All-Reduce on a 3D network under
 * three bandwidth allocations — dim-1 underprovisioned, dim-2
 * underprovisioned, and ideally distributed. Rendered as ASCII Gantt
 * rows (digits = Reduce-Scatter chunks, letters = All-Gather chunks).
 *
 * The study is the registered "fig09" scenario (src/study/scenarios.cc).
 */

#include "bench_util.hh"

int
main()
{
    return libra::bench::runScenarioMain("fig09");
}
