/**
 * @file
 * Fig. 9: chunk timelines of a 4-chunk All-Reduce on a 3D network under
 * three bandwidth allocations — dim-1 underprovisioned, dim-2
 * underprovisioned, and ideally distributed. Rendered as ASCII Gantt
 * rows (digits = Reduce-Scatter chunks, letters = All-Gather chunks).
 *
 * Reproduced claims: an underprovisioned dimension saturates while the
 * others idle; the ideal allocation keeps every dimension busy outside
 * of inevitable pipeline bubbles.
 */

#include "bench_util.hh"
#include "sim/chunk_timeline.hh"

namespace libra {
namespace {

void
show(const std::string& title, const BwConfig& bw)
{
    std::vector<DimSpan> spans{{0, 4}, {1, 4}, {2, 4}};
    ChunkTimeline tl(3, bw);
    CollectiveJob job;
    job.type = CollectiveType::AllReduce;
    job.size = 1e9;
    job.spans = spans;
    job.numChunks = 4;
    TimelineResult r = tl.run({job});

    std::cout << "\n--- " << title << " (B = " << bwConfigToString(bw)
              << ") ---\n"
              << r.render(3, 68) << "All-Reduce time: "
              << secondsToString(r.makespan)
              << ", avg BW utilization: "
              << Table::num(r.avgBwUtilization * 100.0, 1) << "%\n";
}

void
run()
{
    bench::banner("Fig. 9",
                  "4-chunk All-Reduce on 3D networks with different BW "
                  "allocations");

    // Traffic shares on a 4x4x4 multi-rail AR are (1.5, 0.375, 0.094)m.
    // (a) Dim 1 underprovisioned: it bottlenecks, dims 2-3 idle.
    show("(a) underprovisioned Dim 1", {30.0, 135.0, 135.0});
    // (b) Dim 2 underprovisioned.
    show("(b) underprovisioned Dim 2", {200.0, 10.0, 90.0});
    // (c) Ideal: BW proportional to per-dim traffic.
    double total = 300.0;
    double share = 1.5 + 0.375 + 0.09375;
    show("(c) ideally distributed",
         {total * 1.5 / share, total * 0.375 / share,
          total * 0.09375 / share});
}

} // namespace
} // namespace libra

int
main()
{
    libra::setInformEnabled(false);
    libra::run();
    return 0;
}
