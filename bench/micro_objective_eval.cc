/**
 * @file
 * Compiled-objective evaluation throughput: the function every solver
 * iteration bottoms out in. Measures evaluations/sec of the legacy
 * nested compiled layout vs the SoA fast path (plus the uncompiled
 * direct estimator for reference) and emits machine-readable
 * BENCH_objective.json for CI tracking.
 */

#include <chrono>
#include <fstream>

#include "bench_util.hh"
#include "common/random.hh"
#include "core/estimator.hh"
#include "topology/zoo.hh"
#include "workload/zoo.hh"

namespace libra {
namespace {

/** Deterministic pool of bandwidth points to cycle through. */
std::vector<BwConfig>
makeBwPool(std::size_t dims, std::size_t count)
{
    Rng rng(0xBE7C4);
    std::vector<BwConfig> pool;
    for (std::size_t i = 0; i < count; ++i) {
        BwConfig bw = rng.simplexPoint(dims, 800.0);
        for (auto& b : bw)
            b = std::max(b, 1.0);
        pool.push_back(std::move(bw));
    }
    return pool;
}

/** Evaluations/sec of @p eval, self-timed to ~targetSeconds. */
template <typename Eval>
double
measure(const Eval& eval, const std::vector<BwConfig>& pool,
        double targetSeconds, volatile double* sink)
{
    using Clock = std::chrono::steady_clock;
    // Warm-up + calibration round.
    std::size_t batch = 1000;
    double acc = 0.0;
    for (std::size_t i = 0; i < batch; ++i)
        acc += eval(pool[i % pool.size()]);

    std::size_t total = 0;
    auto begin = Clock::now();
    for (;;) {
        for (std::size_t i = 0; i < batch; ++i)
            acc += eval(pool[(total + i) % pool.size()]);
        total += batch;
        std::chrono::duration<double> elapsed = Clock::now() - begin;
        if (elapsed.count() >= targetSeconds) {
            *sink = acc;
            return static_cast<double>(total) / elapsed.count();
        }
    }
}

void
run()
{
    bench::banner("micro", "compiled objective evaluation throughput "
                           "(nested vs SoA)");

    Network net = topo::threeD512();
    Workload w = wl::msft1T(net.npus());
    TrainingEstimator est(net);
    CompiledWorkload cw = est.compile(w);
    std::vector<BwConfig> pool = makeBwPool(net.numDims(), 64);

    volatile double sink = 0.0;
    const double budget = 1.0; // Seconds per variant.
    double direct = measure(
        [&](const BwConfig& bw) { return est.estimate(w, bw); }, pool,
        budget, &sink);
    double nested = measure(
        [&](const BwConfig& bw) { return cw.estimateNested(bw); }, pool,
        budget, &sink);
    double soa = measure(
        [&](const BwConfig& bw) { return cw.estimate(bw); }, pool,
        budget, &sink);

    Table t;
    t.header({"Path", "evals/sec", "speedup vs nested"});
    t.row({"direct estimator", Table::num(direct, 0),
           Table::num(direct / nested, 2)});
    t.row({"compiled nested", Table::num(nested, 0), "1.00"});
    t.row({"compiled SoA", Table::num(soa, 0),
           Table::num(soa / nested, 2)});
    t.print(std::cout);

    std::ofstream json("BENCH_objective.json");
    json << "{\n"
         << "  \"bench\": \"micro_objective_eval\",\n"
         << "  \"network\": \"" << net.name() << "\",\n"
         << "  \"workload\": \"" << w.name << "\",\n"
         << "  \"direct_evals_per_sec\": " << direct << ",\n"
         << "  \"nested_evals_per_sec\": " << nested << ",\n"
         << "  \"soa_evals_per_sec\": " << soa << ",\n"
         << "  \"soa_speedup_vs_nested\": " << soa / nested << "\n"
         << "}\n";
    std::cout << "\nWrote BENCH_objective.json (SoA speedup "
              << Table::num(soa / nested, 2) << "x vs nested).\n";
}

} // namespace
} // namespace libra

int
main()
{
    libra::setInformEnabled(false);
    libra::run();
    return 0;
}
