/**
 * @file
 * Compiled-objective evaluation throughput: the function every solver
 * iteration bottoms out in. Measures evaluations/sec of the legacy
 * nested compiled layout, the scalar SoA fast path, the SIMD-batched
 * candidate-major kernel, and the incremental coordinate-move
 * evaluator (plus the uncompiled direct estimator for reference) and
 * emits machine-readable BENCH_objective.json for CI tracking.
 */

#include <algorithm>
#include <chrono>

#include "bench_util.hh"
#include "common/random.hh"
#include "core/estimator.hh"
#include "core/incremental.hh"
#include "topology/zoo.hh"
#include "workload/zoo.hh"

namespace libra {
namespace {

/** Deterministic pool of bandwidth points to cycle through. */
std::vector<BwConfig>
makeBwPool(std::size_t dims, std::size_t count)
{
    Rng rng(0xBE7C4);
    std::vector<BwConfig> pool;
    for (std::size_t i = 0; i < count; ++i) {
        BwConfig bw = rng.simplexPoint(dims, 800.0);
        for (auto& b : bw)
            b = std::max(b, 1.0);
        pool.push_back(std::move(bw));
    }
    return pool;
}

/**
 * Evaluations/sec of @p call (which performs @p evalsPerCall
 * evaluations), self-timed to ~targetSeconds. The measurement batch is
 * calibrated from the warm-up round: a fixed batch would make slow
 * paths overshoot the budget by a whole oversized final batch, so each
 * batch is sized to ~2% of the budget instead.
 */
template <typename Call>
double
measure(const Call& call, std::size_t evalsPerCall,
        double targetSeconds, volatile double* sink)
{
    using Clock = std::chrono::steady_clock;

    const std::size_t warmCalls =
        std::max<std::size_t>(1, 1000 / evalsPerCall);
    double acc = 0.0;
    auto warmBegin = Clock::now();
    for (std::size_t i = 0; i < warmCalls; ++i)
        acc += call(i);
    std::chrono::duration<double> warm = Clock::now() - warmBegin;

    const double perCall =
        warm.count() / static_cast<double>(warmCalls);
    std::size_t batch = warmCalls;
    if (perCall > 0.0) {
        batch = static_cast<std::size_t>(
            std::clamp(targetSeconds * 0.02 / perCall, 1.0, 1e7));
    }

    std::size_t calls = 0;
    auto begin = Clock::now();
    for (;;) {
        for (std::size_t i = 0; i < batch; ++i)
            acc += call(calls + i);
        calls += batch;
        std::chrono::duration<double> elapsed = Clock::now() - begin;
        if (elapsed.count() >= targetSeconds) {
            *sink = acc;
            return static_cast<double>(calls * evalsPerCall) /
                   elapsed.count();
        }
    }
}

void
run()
{
    bench::banner("micro", "compiled objective evaluation throughput "
                           "(nested vs SoA vs SIMD vs incremental)");

    Network net = topo::threeD512();
    Workload w = wl::msft1T(net.npus());
    TrainingEstimator est(net);
    CompiledWorkload cw = est.compile(w);
    const std::size_t dims = net.numDims();
    std::vector<BwConfig> pool = makeBwPool(dims, 64);

    volatile double sink = 0.0;
    const double budget = 1.0; // Seconds per variant.
    double direct = measure(
        [&](std::size_t i) {
            return est.estimate(w, pool[i % pool.size()]);
        },
        1, budget, &sink);
    double nested = measure(
        [&](std::size_t i) {
            return cw.estimateNested(pool[i % pool.size()]);
        },
        1, budget, &sink);
    double soa = measure(
        [&](std::size_t i) {
            return cw.estimate(pool[i % pool.size()]);
        },
        1, budget, &sink);

    // Candidate-major SIMD batches over the whole pool per call.
    std::vector<Seconds> out(pool.size(), 0.0);
    double batched = measure(
        [&](std::size_t i) {
            cw.estimateBatch(pool.data(), pool.size(), out.data());
            return out[i % out.size()];
        },
        pool.size(), budget, &sink);

    // Incremental single-coordinate probes off a fixed base,
    // cycling the probed dimension and value.
    WorkloadIncremental inc(cw);
    inc.setBase(pool[0]);
    double incremental = measure(
        [&](std::size_t i) {
            const std::size_t d = i % dims;
            return inc.probe(d, pool[i % pool.size()][d]);
        },
        1, budget, &sink);

    Table t;
    t.header({"Path", "evals/sec", "speedup vs nested"});
    t.row({"direct estimator", Table::num(direct, 0),
           Table::num(direct / nested, 2)});
    t.row({"compiled nested", Table::num(nested, 0), "1.00"});
    t.row({"compiled SoA", Table::num(soa, 0),
           Table::num(soa / nested, 2)});
    t.row({std::string("SIMD batched (") + activeSimdKernel() + ")",
           Table::num(batched, 0), Table::num(batched / nested, 2)});
    t.row({"incremental probe", Table::num(incremental, 0),
           Table::num(incremental / nested, 2)});
    t.print(std::cout);

    Json j = Json::object();
    j["bench"] = "micro_objective_eval";
    j["network"] = net.name();
    j["workload"] = w.name;
    j["simd_kernel"] = activeSimdKernel();
    j["direct_evals_per_sec"] = direct;
    j["nested_evals_per_sec"] = nested;
    j["soa_evals_per_sec"] = soa;
    j["soa_speedup_vs_nested"] = soa / nested;
    j["batch_evals_per_sec"] = batched;
    j["batch_speedup_vs_soa"] = batched / soa;
    j["incremental_evals_per_sec"] = incremental;
    j["incremental_speedup_vs_soa"] = incremental / soa;
    bench::writeBenchJson("BENCH_objective.json", j);
    std::cout << "\nWrote BENCH_objective.json (SIMD batch speedup "
              << Table::num(batched / soa, 2) << "x vs scalar SoA, "
              << "incremental " << Table::num(incremental / soa, 2)
              << "x).\n";
}

} // namespace
} // namespace libra

int
main()
{
    libra::setInformEnabled(false);
    libra::run();
    return 0;
}
