/**
 * @file
 * Fig. 18: cost-model sensitivity — perf-per-cost benefit of
 * PerfPerCostOptBW over EqualBW on 4D-4K at 1,000 GB/s per NPU while
 * sweeping the inter-Package link cost from $1 to $5 per GBps.
 *
 * Reproduced claim: the benefit persists across the sweep (paper avg
 * 4.06x, max 5.59x), demonstrating that the user-defined cost model is
 * a first-class input.
 */

#include "bench_util.hh"
#include "common/thread_pool.hh"
#include "core/optimizer.hh"
#include "topology/zoo.hh"
#include "workload/zoo.hh"

namespace libra {
namespace {

void
run()
{
    bench::banner("Fig. 18", "inter-Package link cost sweep "
                             "($1-$5/GBps, 4D-4K @ 1,000 GB/s)");

    Network net = topo::fourD4K();
    Workload w = wl::msft1T(net.npus());

    Table t;
    t.header({"Pkg link $/GBps", "ppc gain vs EqualBW", "BW config",
              "Network cost"});

    // Each cost-model point is an independent study; sweep on the pool
    // and reduce in price order.
    std::vector<double> sweep{1.0, 2.0, 3.0, 4.0, 5.0};
    struct PricePoint
    {
        OptimizationResult ppc, base;
    };
    std::vector<PricePoint> results =
        parallelMap(sweep, [&](const double& price) {
            CostModel cm = CostModel::defaultModel();
            ComponentCost pkg = cm.levelCost(PhysicalLevel::Package);
            pkg.link = price;
            cm.setLevelCost(PhysicalLevel::Package, pkg);

            BwOptimizer opt(net, cm);
            std::vector<TargetWorkload> targets{{w, 1.0}};
            OptimizerConfig cfg;
            cfg.objective = OptimizationObjective::PerfPerCostOpt;
            cfg.totalBw = 1000.0;
            cfg.search = bench::benchSearch();

            PricePoint r;
            r.ppc = opt.optimize(targets, cfg);
            r.base = opt.baseline(targets, cfg);
            return r;
        });

    double sum = 0.0, best = 0.0;
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        double gain =
            bench::perfPerCostGain(results[i].base, results[i].ppc);
        sum += gain;
        best = std::max(best, gain);
        t.row({Table::num(sweep[i], 0), Table::num(gain, 2),
               bwConfigToString(results[i].ppc.bw, 0),
               dollarsToString(results[i].ppc.cost)});
    }
    t.print(std::cout);
    std::cout << "\nAverage gain "
              << Table::num(sum / static_cast<double>(sweep.size()), 2)
              << "x, max " << Table::num(best, 2)
              << "x (paper: 4.06x avg, 5.59x max).\n";
}

} // namespace
} // namespace libra

int
main()
{
    libra::setInformEnabled(false);
    libra::run();
    return 0;
}
