/**
 * @file
 * Fig. 18: cost-model sensitivity — perf-per-cost benefit of
 * PerfPerCostOptBW over EqualBW on 4D-4K at 1,000 GB/s per NPU while
 * sweeping the inter-Package link cost from $1 to $5 per GBps.
 *
 * The study is the registered "fig18" scenario (src/study/scenarios.cc).
 */

#include "bench_util.hh"

int
main()
{
    return libra::bench::runScenarioMain("fig18");
}
