/**
 * @file
 * Fig. 20: LIBRA composed with the TACOS collective synthesizer.
 * A 1 GB All-Reduce with 8 chunks on the 3D-Torus (RI(4)_RI(4)_RI(4))
 * at 1,000 GB/s per NPU. Three systems, normalized to EqualBW+TACOS:
 *
 *  - EqualBW + TACOS  (runtime optimization only)
 *  - LIBRA-only       (design-time optimization, multi-rail collective)
 *  - LIBRA + TACOS    (both)
 *
 * Reproduced claims: LIBRA+TACOS beats LIBRA-only on performance
 * (paper: 1.25x) and wins perf-per-cost over TACOS-only thanks to the
 * cheaper LIBRA allocation (paper: 1.36x).
 */

#include "bench_util.hh"
#include "core/optimizer.hh"
#include "runtime/tacos.hh"
#include "sim/chunk_timeline.hh"
#include "topology/zoo.hh"

namespace libra {
namespace {

void
run()
{
    bench::banner("Fig. 20", "LIBRA + TACOS (1 GB All-Reduce, 8 chunks, "
                             "3D-Torus @ 1,000 GB/s)");

    Network net = topo::threeDTorus();
    CostModel cm = CostModel::defaultModel();
    const Bytes m = 1e9;
    const int chunks = 8;
    auto spans = mapGroupToDims(net, 1, net.npus());

    // LIBRA PerfOpt allocation for the All-Reduce.
    Workload arWorkload;
    arWorkload.name = "AllReduce-1GB";
    arWorkload.strategy = {1, net.npus()};
    Layer l;
    l.wgComm.push_back({CollectiveType::AllReduce, CommScope::Dp, m});
    arWorkload.layers.push_back(l);

    BwOptimizer opt(net, cm);
    OptimizerConfig cfg;
    cfg.objective = OptimizationObjective::PerfOpt;
    cfg.totalBw = 1000.0;
    cfg.search = bench::benchSearch();
    BwConfig libraBw =
        opt.optimize({{arWorkload, 1.0}}, cfg).bw;
    BwConfig equalBw = net.equalBw(1000.0);

    auto railTime = [&](const BwConfig& bw) {
        ChunkTimeline tl(net.numDims(), bw);
        CollectiveJob j;
        j.type = CollectiveType::AllReduce;
        j.size = m;
        j.spans = spans;
        j.numChunks = chunks;
        return tl.collectiveTime(j);
    };
    auto tacosTime = [&](const BwConfig& bw) {
        return TacosSynthesizer(net, bw)
            .synthesizeAllReduce(m, chunks)
            .time;
    };

    struct Row
    {
        const char* name;
        Seconds time;
        Dollars cost;
    };
    std::vector<Row> rows{
        {"EqualBW+TACOS", tacosTime(equalBw),
         cm.networkCost(net, equalBw)},
        {"LIBRA-only", railTime(libraBw), cm.networkCost(net, libraBw)},
        {"LIBRA+TACOS", tacosTime(libraBw),
         cm.networkCost(net, libraBw)},
    };

    const Row& base = rows[0];
    Table t;
    t.header({"System", "AR time", "Cost", "Perf (norm)", "ppc (norm)"});
    for (const auto& r : rows) {
        t.row({r.name, secondsToString(r.time), dollarsToString(r.cost),
               Table::num(base.time / r.time, 2),
               Table::num((base.time * base.cost) / (r.time * r.cost),
                          2)});
    }
    t.print(std::cout);

    std::cout << "\nLIBRA+TACOS vs LIBRA-only speedup: "
              << Table::num(rows[1].time / rows[2].time, 2)
              << "x (paper: 1.25x)\n"
              << "LIBRA+TACOS vs TACOS-only perf-per-cost: "
              << Table::num((rows[0].time * rows[0].cost) /
                                (rows[2].time * rows[2].cost),
                            2)
              << "x (paper: 1.36x)\n"
              << "LIBRA BW config: " << bwConfigToString(libraBw, 0)
              << "\n";
}

} // namespace
} // namespace libra

int
main()
{
    libra::setInformEnabled(false);
    libra::run();
    return 0;
}
