/**
 * @file
 * Exploration-strategy efficiency benchmark on the Fig. 16 space.
 *
 * The headline claim of the explore layer's "prune" strategy is that a
 * cheap screening pass ranks the discrete design axes well enough that
 * only a fraction of the candidates ever pays for a full-budget
 * optimization — without changing the answer. This bench runs the
 * fig16 topology-exploration space (3 shapes x 4 budgets x 2
 * objectives = 24 candidates) under "exhaustive" and under "prune",
 * counts full-budget and screening optimize() calls for each, and
 * checks that prune's per-objective winners match the exhaustive
 * winners — at two thread counts, asserting bit-identical winner sets
 * and winning bandwidth configurations.
 *
 * A second section benchmarks scale-out sharding (docs/SHARDING.md):
 * the frontier-xl scenario (120 candidates, deliberately larger than
 * explore-frontier's 80) runs through the real libra_cli binary
 * single-process and with `--workers 2`, asserting the emitted matrix
 * JSON is byte-identical — which pins the Pareto winners — and
 * reporting both wall clocks. Speedup needs multiple cores; on a
 * single-core host the numbers simply document the protocol overhead.
 *
 * A third section does the same for *adaptive* exploration: frontier-xl
 * under `--explore prune`, whose screening and promotion rounds cross
 * the wire as eval frames on the warm worker pool instead of recipe
 * slot indices. It records both wall clocks, the detected core count,
 * and `shard_adaptive_byte_identical` — the acceptance flag that the
 * sharded adaptive run emits the single-process bytes.
 *
 * Emits machine-readable BENCH_explore.json for CI tracking next to
 * BENCH_objective/solver/backend.json. The acceptance contract:
 * `prune_matches_exhaustive_winner` true with
 * `prune_full_runs <= 0.5 * exhaustive_full_runs`,
 * `shard_byte_identical` true, and `shard_adaptive_byte_identical`
 * true (with >= 1.3x `shard_prune_speedup` expected on multi-core
 * hosts).
 */

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <thread>

#include "bench_util.hh"
#include "common/json.hh"
#include "common/thread_pool.hh"
#include "explore/explore.hh"
#include "study/scenario_util.hh"

namespace libra {
namespace {

/** The registered fig16 scenario's own space: no drift possible. */
DesignSpace
fig16Space()
{
    const Scenario* s = ScenarioRegistry::global().find("fig16");
    if (!s || !s->space)
        fatal("fig16 is not a design-space scenario");
    return s->space();
}

struct StrategyRun
{
    ExploreResult result;
    std::size_t sweepPoints = 0; ///< Total optimize() calls issued.
};

StrategyRun
runStrategy(const std::vector<Candidate>& candidates,
            const std::string& spec)
{
    StrategyRun run;
    ExploreSweepFn sweep = [&](const std::vector<LibraInputs>& batch) {
        run.sweepPoints += batch.size();
        return runLibraSweep(batch);
    };
    run.result = exploreCandidates(candidates, spec, sweep);
    return run;
}

/** "net@bw:objective=bwConfig" winner fingerprint for comparisons. */
std::string
winnerFingerprint(const ExploreResult& r)
{
    std::string out;
    for (std::size_t w : r.winners) {
        const ExploreOutcome& o = r.outcomes[w];
        out += o.candidate.topology + "@" + bwLabel(o.candidate.budget) +
               ":" + objectiveName(o.candidate.objective) + "=" +
               bwConfigToString(o.report.optimized.bw) + "; ";
    }
    return out;
}

/** Slurp one emitted file; "" when unreadable. */
std::string
slurpFile(const std::string& path)
{
    std::ifstream f(path);
    std::ostringstream os;
    os << f.rdbuf();
    return os.str();
}

/**
 * Scale-out section: frontier-xl through the real CLI, single-process
 * vs `--workers 2`, byte-identity asserted (it pins the Pareto
 * winners), wall clocks recorded into @p j.
 */
void
shardSection(Json* j)
{
#ifdef LIBRA_CLI_PATH
    bench::banner("micro",
                  "sharded frontier-xl (single-process vs --workers 2, "
                  "byte-identity + wall clock)");

    const std::string dir =
        (std::filesystem::temp_directory_path() / "libra-bench-shard")
            .string();
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    auto timedRun = [&](const std::string& extra,
                        const std::string& out) -> double {
        std::string cmd = std::string(LIBRA_CLI_PATH) +
                          " run-matrix frontier-xl --emit json --out " +
                          out + extra + " 2>/dev/null";
        auto t0 = std::chrono::steady_clock::now();
        int status = std::system(cmd.c_str());
        auto t1 = std::chrono::steady_clock::now();
        if (status != 0)
            fatal("bench: '", cmd, "' failed");
        return std::chrono::duration<double>(t1 - t0).count();
    };

    const std::string single = dir + "/single.json";
    const std::string sharded = dir + "/workers2.json";
    double singleSec = timedRun("", single);
    double shardedSec = timedRun(" --workers 2", sharded);

    const std::string singleBytes = slurpFile(single);
    bool identical =
        !singleBytes.empty() && singleBytes == slurpFile(sharded);
    if (!identical)
        fatal("bench: sharded frontier-xl output diverged from "
              "single-process (sharding must be byte-transparent)");

    Table t;
    t.header({"Execution", "wall s", "output"});
    t.row({"single-process", Table::num(singleSec, 2),
           "reference"});
    t.row({"--workers 2", Table::num(shardedSec, 2),
           "byte-identical"});
    t.print(std::cout);
    std::cout << "sharded/single wall-clock ratio: "
              << Table::num(shardedSec / singleSec, 2)
              << " (speedup needs >1 core; identity is the "
                 "contract)\n";

    (*j)["shard_space"] = "frontier-xl";
    (*j)["shard_single_seconds"] = singleSec;
    (*j)["shard_workers2_seconds"] = shardedSec;
    (*j)["shard_byte_identical"] = identical;

    std::filesystem::remove_all(dir);
#else
    (void)j;
    std::cout << "\n(sharded section skipped: built without "
                 "LIBRA_CLI_PATH)\n";
#endif
}

/**
 * Sharded adaptive exploration: frontier-xl under `--explore prune`,
 * single-process vs `--workers 2`. The prune rounds are synthesized
 * mid-search, so the pool serves them as eval frames (serialized wire
 * points) rather than recipe slot indices — this section pins that
 * path's byte-transparency and records its wall clocks. The speedup is
 * reported, not asserted: it needs >= 2 cores, so the detected core
 * count lands in the JSON next to it.
 */
void
shardPruneSection(Json* j)
{
#ifdef LIBRA_CLI_PATH
    bench::banner("micro",
                  "sharded adaptive prune on frontier-xl "
                  "(single-process vs --workers 2 eval frames)");

    const std::string dir = (std::filesystem::temp_directory_path() /
                             "libra-bench-shard-prune")
                                .string();
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    auto timedRun = [&](const std::string& extra,
                        const std::string& out) -> double {
        std::string cmd = std::string(LIBRA_CLI_PATH) +
                          " run-matrix frontier-xl --explore prune "
                          "--emit json --out " +
                          out + extra + " 2>/dev/null";
        auto t0 = std::chrono::steady_clock::now();
        int status = std::system(cmd.c_str());
        auto t1 = std::chrono::steady_clock::now();
        if (status != 0)
            fatal("bench: '", cmd, "' failed");
        return std::chrono::duration<double>(t1 - t0).count();
    };

    const std::string single = dir + "/single.json";
    const std::string sharded = dir + "/workers2.json";
    double singleSec = timedRun("", single);
    double shardedSec = timedRun(" --workers 2", sharded);

    const std::string singleBytes = slurpFile(single);
    bool identical =
        !singleBytes.empty() && singleBytes == slurpFile(sharded);
    if (!identical)
        fatal("bench: sharded adaptive prune output diverged from "
              "single-process (eval frames must be byte-transparent)");

    const unsigned cores = std::thread::hardware_concurrency();
    const double speedup =
        shardedSec > 0.0 ? singleSec / shardedSec : 0.0;

    Table t;
    t.header({"Execution", "wall s", "output"});
    t.row({"single-process prune", Table::num(singleSec, 2),
           "reference"});
    t.row({"--workers 2 prune", Table::num(shardedSec, 2),
           "byte-identical"});
    t.print(std::cout);
    std::cout << "adaptive prune speedup: " << Table::num(speedup, 2)
              << "x on " << cores
              << " detected core(s) (>= 1.3x expected with 2+ "
                 "cores; identity is the contract)\n";

    (*j)["shard_prune_single_seconds"] = singleSec;
    (*j)["shard_prune_workers2_seconds"] = shardedSec;
    (*j)["shard_prune_speedup"] = speedup;
    (*j)["detected_cores"] = static_cast<double>(cores);
    (*j)["shard_adaptive_byte_identical"] = identical;

    std::filesystem::remove_all(dir);
#else
    (void)j;
    std::cout << "\n(sharded adaptive section skipped: built without "
                 "LIBRA_CLI_PATH)\n";
#endif
}

void
run()
{
    bench::banner("micro",
                  "exploration-strategy efficiency on the fig16 space "
                  "(exhaustive vs prune)");

    std::vector<Candidate> candidates = expandDesignSpace(fig16Space());

    ThreadPool::setGlobalThreads(2);
    StrategyRun exhaustive = runStrategy(candidates, "");
    StrategyRun prune = runStrategy(candidates, "prune");

    // The determinism contract: the prune result must be bit-identical
    // at any thread count (rankings reduce in candidate-index order).
    ThreadPool::setGlobalThreads(5);
    StrategyRun prune5 = runStrategy(candidates, "prune");
    bool threadStable =
        winnerFingerprint(prune.result) ==
            winnerFingerprint(prune5.result) &&
        prune.result.fullRuns == prune5.result.fullRuns;

    bool winnersMatch =
        prune.result.winners.size() ==
        exhaustive.result.winners.size();
    for (std::size_t i = 0; winnersMatch &&
                            i < prune.result.winners.size(); ++i) {
        winnersMatch = prune.result.winners[i] ==
                       exhaustive.result.winners[i];
    }

    Table t;
    t.header({"Strategy", "full runs", "screen runs", "optimize calls",
              "winners"});
    t.row({"exhaustive", std::to_string(exhaustive.result.fullRuns),
           std::to_string(exhaustive.result.screenRuns),
           std::to_string(exhaustive.sweepPoints),
           winnerFingerprint(exhaustive.result)});
    t.row({"prune", std::to_string(prune.result.fullRuns),
           std::to_string(prune.result.screenRuns),
           std::to_string(prune.sweepPoints),
           winnerFingerprint(prune.result)});
    t.print(std::cout);

    double fullFraction =
        static_cast<double>(prune.result.fullRuns) /
        static_cast<double>(exhaustive.result.fullRuns);
    std::cout << "prune full-budget fraction: "
              << Table::num(fullFraction * 100.0, 1)
              << "% of exhaustive; winners match: "
              << (winnersMatch ? "yes" : "NO")
              << "; thread-stable: " << (threadStable ? "yes" : "NO")
              << "\n";

    Json j = Json::object();
    j["bench"] = "micro_explore";
    j["space"] = "fig16";
    j["candidates"] = candidates.size();
    j["exhaustive_full_runs"] = exhaustive.result.fullRuns;
    j["prune_full_runs"] = prune.result.fullRuns;
    j["prune_screen_runs"] = prune.result.screenRuns;
    j["prune_full_fraction"] = fullFraction;
    j["prune_matches_exhaustive_winner"] = winnersMatch;
    j["prune_thread_stable"] = threadStable;
    j["exhaustive_winners"] = winnerFingerprint(exhaustive.result);
    j["prune_winners"] = winnerFingerprint(prune.result);

    shardSection(&j);
    shardPruneSection(&j);

    bench::writeBenchJson("BENCH_explore.json", j);
    std::cout << "\nWrote BENCH_explore.json (prune reached the "
                 "exhaustive winners with "
              << Table::num(fullFraction * 100.0, 0)
              << "% of the full-budget optimize() calls).\n";
}

} // namespace
} // namespace libra

int
main()
{
    libra::setInformEnabled(false);
    libra::run();
    return 0;
}
