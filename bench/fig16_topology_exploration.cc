/**
 * @file
 * Fig. 16: MSFT-1T over the 3D-512, 3D-1K, and 4D-2K topologies —
 * speedup and perf-per-cost versus each network's own EqualBW baseline.
 *
 * Reproduced claim: LIBRA generalizes across network shapes, sizes, and
 * dimensionalities.
 */

#include "bench_util.hh"
#include "common/thread_pool.hh"
#include "core/optimizer.hh"
#include "topology/zoo.hh"
#include "workload/zoo.hh"

namespace libra {
namespace {

/** One (topology, budget) sweep point. */
struct Point
{
    std::string label;
    Network net;
    double bw = 0.0;
};

/** The three optimizations the figure plots per point. */
struct PointResult
{
    OptimizationResult perf, base, ppc;
};

void
run()
{
    bench::banner("Fig. 16",
                  "MSFT-1T on 3D-512 / 3D-1K / 4D-2K topologies");

    std::vector<topo::NamedNetwork> nets{{"3D-512", topo::threeD512()},
                                         {"3D-1K", topo::threeD1K()},
                                         {"4D-2K", topo::fourD2K()}};

    // Every (topology, budget) point is an independent optimize();
    // evaluate them all on the pool, then print in sweep order.
    std::vector<Point> points;
    for (const auto& [label, net] : nets)
        for (double bw : bench::bwSweep())
            points.push_back({label, net, bw});

    std::vector<PointResult> results =
        parallelMap(points, [](const Point& p) {
            BwOptimizer opt(p.net, CostModel::defaultModel());
            std::vector<TargetWorkload> targets{
                {wl::msft1T(p.net.npus()), 1.0}};
            OptimizerConfig cfg;
            cfg.totalBw = p.bw;
            cfg.search = bench::benchSearch();

            PointResult r;
            cfg.objective = OptimizationObjective::PerfOpt;
            r.perf = opt.optimize(targets, cfg);
            r.base = opt.baseline(targets, cfg);
            cfg.objective = OptimizationObjective::PerfPerCostOpt;
            r.ppc = opt.optimize(targets, cfg);
            return r;
        });

    Table t;
    t.header({"Net", "BW/NPU", "PerfOpt x", "PerfPerCost x",
              "PerfOpt ppc x", "PerfPerCost ppc x"});
    for (std::size_t i = 0; i < points.size(); ++i) {
        const auto& [perf, base, ppc] = results[i];
        t.row({points[i].label, Table::num(points[i].bw, 0),
               Table::num(base.weightedTime / perf.weightedTime, 2),
               Table::num(base.weightedTime / ppc.weightedTime, 2),
               Table::num(bench::perfPerCostGain(base, perf), 2),
               Table::num(bench::perfPerCostGain(base, ppc), 2)});
    }
    t.print(std::cout);
    std::cout << "\nClaim check: PerfOpt speedup >= 1x and PerfPerCost "
                 "ppc > 1x on every topology shape/scale.\n";
}

} // namespace
} // namespace libra

int
main()
{
    libra::setInformEnabled(false);
    libra::run();
    return 0;
}
