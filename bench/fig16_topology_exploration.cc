/**
 * @file
 * Fig. 16: MSFT-1T over the 3D-512, 3D-1K, and 4D-2K topologies —
 * speedup and perf-per-cost versus each network's own EqualBW baseline.
 *
 * The study is the registered "fig16" scenario (src/study/scenarios.cc);
 * all points run as one sharded runLibraSweep batch.
 */

#include "bench_util.hh"

int
main()
{
    return libra::bench::runScenarioMain("fig16");
}
