/**
 * @file
 * Fig. 16: MSFT-1T over the 3D-512, 3D-1K, and 4D-2K topologies —
 * speedup and perf-per-cost versus each network's own EqualBW baseline.
 *
 * Reproduced claim: LIBRA generalizes across network shapes, sizes, and
 * dimensionalities.
 */

#include "bench_util.hh"
#include "core/optimizer.hh"
#include "topology/zoo.hh"
#include "workload/zoo.hh"

namespace libra {
namespace {

void
run()
{
    bench::banner("Fig. 16",
                  "MSFT-1T on 3D-512 / 3D-1K / 4D-2K topologies");

    std::vector<topo::NamedNetwork> nets{{"3D-512", topo::threeD512()},
                                         {"3D-1K", topo::threeD1K()},
                                         {"4D-2K", topo::fourD2K()}};

    Table t;
    t.header({"Net", "BW/NPU", "PerfOpt x", "PerfPerCost x",
              "PerfOpt ppc x", "PerfPerCost ppc x"});

    for (const auto& [label, net] : nets) {
        Workload w = wl::msft1T(net.npus());
        for (double bw : bench::bwSweep()) {
            BwOptimizer opt(net, CostModel::defaultModel());
            std::vector<TargetWorkload> targets{{w, 1.0}};
            OptimizerConfig cfg;
            cfg.totalBw = bw;
            cfg.search = bench::benchSearch();

            cfg.objective = OptimizationObjective::PerfOpt;
            OptimizationResult perf = opt.optimize(targets, cfg);
            OptimizationResult base = opt.baseline(targets, cfg);
            cfg.objective = OptimizationObjective::PerfPerCostOpt;
            OptimizationResult ppc = opt.optimize(targets, cfg);

            t.row({label, Table::num(bw, 0),
                   Table::num(base.weightedTime / perf.weightedTime, 2),
                   Table::num(base.weightedTime / ppc.weightedTime, 2),
                   Table::num(bench::perfPerCostGain(base, perf), 2),
                   Table::num(bench::perfPerCostGain(base, ppc), 2)});
        }
    }
    t.print(std::cout);
    std::cout << "\nClaim check: PerfOpt speedup >= 1x and PerfPerCost "
                 "ppc > 1x on every topology shape/scale.\n";
}

} // namespace
} // namespace libra

int
main()
{
    libra::setInformEnabled(false);
    libra::run();
    return 0;
}
