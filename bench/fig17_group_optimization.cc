/**
 * @file
 * Fig. 17: optimizing a network for one workload vs for a group.
 * 4D-4K at 1,000 GB/s per NPU, PerfOptBW. For every optimization
 * target (each single workload + the normalized group) we train every
 * workload and report speedup over EqualBW and slowdown relative to
 * that workload's own optimized network.
 *
 * Reproduced claims: single-target networks can slow other workloads
 * down (paper: up to 1.77x); the group-optimized network is
 * near-optimal for every member (paper: avg slowdown 1.01x).
 */

#include "bench_util.hh"
#include "common/thread_pool.hh"
#include "core/optimizer.hh"
#include "topology/zoo.hh"
#include "workload/zoo.hh"

namespace libra {
namespace {

void
study(const std::string& title, const std::vector<Workload>& members)
{
    Network net = topo::fourD4K();
    BwOptimizer opt(net, CostModel::defaultModel());
    TrainingEstimator est(net);
    const double budget = 1000.0;

    OptimizerConfig cfg;
    cfg.objective = OptimizationObjective::PerfOpt;
    cfg.totalBw = budget;
    cfg.search = bench::benchSearch();

    // Per-workload optimized networks and the group-optimized network
    // are independent optimize() calls; run them all on the pool.
    // Index members.size() is the group target.
    std::vector<TargetWorkload> group;
    for (const auto& w : members)
        group.push_back({w, 1.0});
    group = normalizeWeights(est, group, budget);

    std::vector<BwConfig> solved(members.size() + 1);
    parallelFor(solved.size(), [&](std::size_t i) {
        if (i < members.size())
            solved[i] = opt.optimize({{members[i], 1.0}}, cfg).bw;
        else
            solved[i] = opt.optimize(group, cfg).bw;
    });
    std::vector<BwConfig> ownBw(solved.begin(),
                                solved.begin() + members.size());
    BwConfig groupBw = solved.back();

    BwConfig equal = net.equalBw(budget);

    std::cout << "\n--- " << title << " ---\n";
    Table t;
    t.header({"Opt target", "Trained workload", "Speedup vs EqualBW",
              "Slowdown vs own-opt"});

    double groupSlowdownSum = 0.0;
    double maxCrossSlowdown = 1.0;
    auto evalRow = [&](const std::string& target, const BwConfig& bw,
                       bool isGroup) {
        for (std::size_t i = 0; i < members.size(); ++i) {
            Seconds tEq = est.estimate(members[i], equal);
            Seconds tOwn = est.estimate(members[i], ownBw[i]);
            Seconds tX = est.estimate(members[i], bw);
            double slowdown = tX / tOwn;
            if (isGroup)
                groupSlowdownSum += slowdown;
            else
                maxCrossSlowdown = std::max(maxCrossSlowdown, slowdown);
            t.row({target, members[i].name, Table::num(tEq / tX, 2),
                   Table::num(slowdown, 2)});
        }
    };
    for (std::size_t i = 0; i < members.size(); ++i)
        evalRow(members[i].name, ownBw[i], false);
    evalRow("Group-Opt", groupBw, true);
    t.print(std::cout);

    std::cout << "Max cross-workload slowdown (single-target nets): "
              << Table::num(maxCrossSlowdown, 2)
              << "x (paper: up to 1.77x)\n"
              << "Group-optimized avg slowdown: "
              << Table::num(groupSlowdownSum /
                                static_cast<double>(members.size()),
                            2)
              << "x (paper: 1.01x)\n";
}

void
run()
{
    bench::banner("Fig. 17", "single-target vs group network "
                             "optimization (4D-4K @ 1,000 GB/s)");
    long n = topo::fourD4K().npus();
    study("(a) group-optimizing LLMs",
          {wl::turingNlg(n), wl::gpt3(n), wl::msft1T(n)});
    study("(b) group-optimizing a DNN mixture",
          {wl::msft1T(n), wl::dlrm(n), wl::resnet50(n)});
}

} // namespace
} // namespace libra

int
main()
{
    libra::setInformEnabled(false);
    libra::run();
    return 0;
}
