/**
 * @file
 * Fig. 17: optimizing a network for one workload vs for a group.
 * 4D-4K at 1,000 GB/s per NPU, PerfOptBW. For every optimization
 * target (each single workload + the normalized group) every workload
 * trains and reports speedup over EqualBW and slowdown relative to its
 * own optimized network.
 *
 * The study is the registered "fig17" scenario (src/study/scenarios.cc).
 */

#include "bench_util.hh"

int
main()
{
    return libra::bench::runScenarioMain("fig17");
}
