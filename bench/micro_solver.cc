/**
 * @file
 * Search-strategy quality/efficiency benchmark on the Fig. 13 grid.
 *
 * For the grid's hard design points — the 4D-4K network (most
 * dimensions, so the largest search space) under the non-convex
 * PerfPerCostOptBW objective — every registered pipeline runs from the
 * same starts, and we record the objective-evaluation count at which
 * each one first reaches the default chain's final objective
 * ("evals to reference") plus its own final value. The point where the
 * best pipeline improves most over the default chain is flagged as
 * the grid's hardest; the headline table prints that point.
 *
 * Emits machine-readable BENCH_solver.json for CI tracking, so solver
 * regressions (quality or efficiency) show up in the perf trajectory
 * next to BENCH_objective.json. Runs are fully deterministic (fixed
 * seeds, single-threaded eval counting).
 */

#include <algorithm>
#include <limits>

#include "bench_util.hh"
#include "common/json.hh"
#include "common/thread_pool.hh"
#include "core/objective.hh"
#include "solver/multistart.hh"
#include "solver/qp.hh"
#include "solver/strategy.hh"
#include "topology/zoo.hh"
#include "workload/zoo.hh"

namespace libra {
namespace {

/** The pipelines under comparison ("" = the default chain). */
const std::vector<std::pair<std::string, std::string>> kPipelines{
    {"default-chain", ""},
    {"cmaes", "cmaes"},
    {"cmaes+polish", "cmaes,pattern-search"},
    {"de", "de"},
    {"de+polish", "de,pattern-search"},
};

struct StrategyOutcome
{
    std::string label;
    double finalObjective = 0.0;
    long long totalEvals = 0;
    long long evalsToReference = -1; // -1 = never reached.
    bool beatsDefault = false;
};

struct PointOutcome
{
    std::string workload;
    double totalBw = 0.0;
    double referenceObjective = 0.0; // Default chain's final value.
    std::vector<StrategyOutcome> strategies;
};

/** One pipeline's run with its improvement trajectory recorded. */
struct PipelineRun
{
    StrategyOutcome outcome;
    /** (eval count, new best value) at every improvement. */
    std::vector<std::pair<long long, double>> trajectory;
};

/**
 * Run one pipeline on one design point recording the improvement
 * trajectory, so evals-to-reference for any reference can be derived
 * afterwards without re-running.
 */
PipelineRun
runPipeline(const std::string& label, const std::string& spec,
            const ScalarObjective& f, const ConstraintSet& cs,
            const Vec& hint)
{
    // Serial counting wrapper: the harness pins the pool to one
    // thread, so the improvement trajectory is well ordered.
    PipelineRun run;
    long long evals = 0;
    double best = std::numeric_limits<double>::infinity();
    ScalarObjective counted = [&](const Vec& x) {
        double v = f(x);
        ++evals;
        if (v < best) {
            best = v;
            run.trajectory.emplace_back(evals, v);
        }
        return v;
    };

    MultistartOptions options = bench::benchSearch();
    if (!spec.empty())
        options.pipeline = parseSolverSpec(spec);
    SearchResult r = multistartMinimize(counted, cs, hint, options);

    run.outcome.label = label;
    run.outcome.finalObjective = r.value;
    run.outcome.totalEvals = evals;
    return run;
}

/** First eval count whose best value reaches @p reference. */
long long
evalsToReach(const std::vector<std::pair<long long, double>>& trajectory,
             double reference)
{
    const double leeway = 1.0 + 1e-9;
    for (const auto& [evals, value] : trajectory)
        if (value <= reference * leeway)
            return evals;
    return -1;
}

PointOutcome
runPoint(const Network& net, const Workload& w, double total_bw)
{
    TrainingEstimator estimator(net);
    CostModel costModel = CostModel::defaultModel();
    std::vector<TargetWorkload> targets{{w, 1.0}};
    ScalarObjective f =
        makeObjective(OptimizationObjective::PerfPerCostOpt, estimator,
                      costModel, targets);
    ConstraintSet cs(net.numDims());
    cs.addTotalBw(total_bw);
    cs.addLowerBounds(0.1);
    Vec hint = net.equalBw(total_bw);

    PointOutcome out;
    out.workload = w.name;
    out.totalBw = total_bw;

    // The default chain's final value defines the reference; each
    // run's evals-to-reference comes from its recorded trajectory.
    std::vector<PipelineRun> runs;
    for (const auto& [label, spec] : kPipelines)
        runs.push_back(runPipeline(label, spec, f, cs, hint));
    out.referenceObjective = runs[0].outcome.finalObjective;
    for (std::size_t i = 0; i < runs.size(); ++i) {
        StrategyOutcome s = runs[i].outcome;
        s.evalsToReference =
            evalsToReach(runs[i].trajectory, out.referenceObjective);
        s.beatsDefault =
            i > 0 && s.finalObjective < out.referenceObjective;
        out.strategies.push_back(std::move(s));
    }
    return out;
}

void
run()
{
    bench::banner("micro",
                  "search-strategy quality on the Fig. 13 grid "
                  "(4D-4K, PerfPerCostOptBW)");

    // Deterministic trajectories: one eval at a time, in order.
    ThreadPool::setGlobalThreads(1);

    Network net = topo::fourD4K();
    std::vector<Workload> workloads{wl::turingNlg(net.npus()),
                                    wl::gpt3(net.npus()),
                                    wl::msft1T(net.npus())};

    std::vector<PointOutcome> points;
    for (const auto& w : workloads)
        for (double bw : {100.0, 1000.0})
            points.push_back(runPoint(net, w, bw));

    // Hardest point: where the best pipeline improves most over the
    // default chain (largest relative headroom the chain left behind).
    std::size_t hardest = 0;
    double worstHeadroom = -1.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
        double best = points[i].referenceObjective;
        for (const auto& s : points[i].strategies)
            best = std::min(best, s.finalObjective);
        double headroom =
            points[i].referenceObjective / std::max(best, 1e-300) - 1.0;
        if (headroom > worstHeadroom) {
            worstHeadroom = headroom;
            hardest = i;
        }
    }

    const PointOutcome& hp = points[hardest];
    std::cout << "\nHardest design point: " << hp.workload << " @ "
              << hp.totalBw << " GB/s per NPU (default chain leaves "
              << Table::num(worstHeadroom * 100.0, 2)
              << "% objective headroom)\n";
    Table t;
    t.header({"Pipeline", "final objective", "vs default", "evals",
              "evals to ref"});
    for (const auto& s : hp.strategies) {
        t.row({s.label, Table::num(s.finalObjective, 6),
               Table::num(hp.referenceObjective / s.finalObjective, 4),
               std::to_string(s.totalEvals),
               s.evalsToReference < 0
                   ? "never"
                   : std::to_string(s.evalsToReference)});
    }
    t.print(std::cout);

    Json j = Json::object();
    j["bench"] = "micro_solver";
    j["network"] = net.name();
    j["objective"] = "PERF_PER_COST";
    j["hardest_workload"] = hp.workload;
    j["hardest_total_bw"] = hp.totalBw;
    j["hardest_headroom_pct"] = worstHeadroom * 100.0;
    Json pts = Json::array();
    bool cmaesWins = false;
    bool deWins = false;
    for (const auto& p : points) {
        Json pj = Json::object();
        pj["workload"] = p.workload;
        pj["total_bw"] = p.totalBw;
        pj["reference_objective"] = p.referenceObjective;
        Json arr = Json::array();
        for (const auto& s : p.strategies) {
            Json sj = Json::object();
            sj["pipeline"] = s.label;
            sj["final_objective"] = s.finalObjective;
            sj["total_evals"] = static_cast<double>(s.totalEvals);
            sj["evals_to_reference"] =
                static_cast<double>(s.evalsToReference);
            sj["beats_default"] = s.beatsDefault;
            arr.push(std::move(sj));
            if (s.beatsDefault && s.label.rfind("cmaes", 0) == 0)
                cmaesWins = true;
            if (s.beatsDefault && s.label.rfind("de", 0) == 0)
                deWins = true;
        }
        pj["strategies"] = std::move(arr);
        pts.push(std::move(pj));
    }
    j["points"] = std::move(pts);
    j["cmaes_beats_default_somewhere"] = cmaesWins;
    j["de_beats_default_somewhere"] = deWins;

    bench::writeBenchJson("BENCH_solver.json", j);
    std::cout << "\nWrote BENCH_solver.json (cmaes beats default "
                 "somewhere: "
              << (cmaesWins ? "yes" : "no")
              << "; de beats default somewhere: "
              << (deWins ? "yes" : "no") << ").\n";
}

} // namespace
} // namespace libra

int
main()
{
    libra::setInformEnabled(false);
    libra::run();
    return 0;
}
