/**
 * @file
 * Ablation: pipeline parallelism (the paper's §IV-C extension).
 * GPT-3 on 4D-4K at a fixed global batch, sweeping HP-(16, pp, dp):
 * deeper pipelines cut per-NPU ZeRO-2 gradient traffic but pay the
 * fill/drain bubble and stage-boundary point-to-point transfers —
 * and LIBRA reallocates bandwidth accordingly.
 */

#include "bench_util.hh"
#include "core/optimizer.hh"
#include "topology/zoo.hh"
#include "workload/zoo.hh"

namespace libra {
namespace {

void
run()
{
    bench::banner("Ablation", "pipeline parallelism depth "
                              "(GPT-3, 4D-4K @ 500 GB/s)");

    Network net = topo::fourD4K();
    const double budget = 500.0;
    TrainingEstimator est(net);
    BwConfig equal = net.equalBw(budget);
    Seconds tBase =
        est.estimate(wl::gpt3WithStrategy(16, 1, 256), equal);

    Table t;
    t.header({"Strategy", "Time (EqualBW)", "vs PP-1",
              "LIBRA speedup", "LIBRA BW config"});
    for (long pp : {1L, 2L, 4L, 8L, 16L}) {
        Workload w = wl::gpt3WithStrategy(16, pp, 256 / pp);
        Seconds tEq = est.estimate(w, equal);

        BwOptimizer opt(net, CostModel::defaultModel());
        OptimizerConfig cfg;
        cfg.totalBw = budget;
        cfg.search = bench::benchSearch();
        OptimizationResult r = opt.optimize({{w, 1.0}}, cfg);

        t.row({w.strategy.name(), secondsToString(tEq),
               Table::num(tBase / tEq, 2),
               Table::num(tEq / r.weightedTime, 2),
               bwConfigToString(r.bw, 0)});
    }
    t.print(std::cout);
    std::cout << "\nDeeper pipelines shrink DP gradient sync but pay "
                 "bubbles, boundary P2P, and (at fixed global batch) "
                 "larger per-stage activation ARs — for TP-heavy GPT-3 "
                 "the flat HP-(16, 256) wins, and LIBRA's allocation "
                 "tracks the traffic shift at every depth.\n";
}

} // namespace
} // namespace libra

int
main()
{
    libra::setInformEnabled(false);
    libra::run();
    return 0;
}
