/**
 * @file
 * Timing-backend throughput microbenchmark.
 *
 * Measures the cost of the pluggable collective-timing seam along the
 * axes that matter for study runtime:
 *
 *  - per-collective queries/sec of the analytical backend vs the
 *    chunk-sim backend, with the sim's per-thread memo cache cold
 *    (every query a fresh simulation) and warm (repeated identical
 *    collectives, the layered-workload pattern the memo exists for);
 *  - full objective evaluations/sec under each backend on a
 *    Turing-NLG study point (analytical uses the compiled SoA fast
 *    path; chunk-sim necessarily runs the direct estimator).
 *
 * Emits machine-readable BENCH_backend.json for CI tracking next to
 * BENCH_objective.json and BENCH_solver.json, so sim-backend
 * throughput regressions show up in the perf trajectory.
 */

#include <chrono>

#include "bench_util.hh"
#include "common/json.hh"
#include "common/random.hh"
#include "common/thread_pool.hh"
#include "core/objective.hh"
#include "core/timing_backend.hh"
#include "topology/zoo.hh"
#include "workload/zoo.hh"

namespace libra {
namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Queries/sec of @p backend over @p iters collective-timing calls.
 *  @p vary_size defeats the memo cache (every query unique). */
double
timingQueriesPerSec(const TimingBackend* backend, int iters,
                    const std::vector<DimSpan>& spans,
                    const BwConfig& bw, bool vary_size)
{
    // Warm-up (and memo fill for the repeated-query case).
    backend->timing(CollectiveType::AllReduce, 1e9, spans, bw, false);
    double sink = 0.0;
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
        Bytes size = vary_size ? 1e9 + static_cast<double>(i) : 1e9;
        sink += backend
                    ->timing(CollectiveType::AllReduce, size, spans, bw,
                             false)
                    .time;
    }
    double elapsed = secondsSince(start);
    if (sink < 0.0) // Defeat dead-code elimination of the query loop.
        std::cout << "";
    return elapsed > 0.0 ? iters / elapsed : 0.0;
}

/** Objective evaluations/sec for @p backendName on the bench point. */
double
objectiveEvalsPerSec(const Network& net,
                     const std::vector<TargetWorkload>& targets,
                     const std::string& backendName, int evals)
{
    EstimatorOptions opt;
    opt.timingBackend = backendName;
    TrainingEstimator estimator(net, opt);
    CostModel costModel = CostModel::defaultModel();
    ScalarObjective f = makeObjective(OptimizationObjective::PerfOpt,
                                      estimator, costModel, targets);

    Rng rng(0xBEAC'4E11ull);
    std::vector<Vec> points;
    points.reserve(16);
    for (int i = 0; i < 16; ++i)
        points.push_back(rng.simplexPoint(net.numDims(), 300.0));

    f(points[0]); // Warm-up (compile / memo fill).
    double sink = 0.0;
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < evals; ++i)
        sink += f(points[static_cast<std::size_t>(i) % points.size()]);
    double elapsed = secondsSince(start);
    if (sink < 0.0)
        std::cout << "";
    return elapsed > 0.0 ? evals / elapsed : 0.0;
}

void
run()
{
    bench::banner("micro",
                  "timing-backend throughput (analytical vs chunk-sim, "
                  "memo cold/warm)");

    // Single-threaded so queries/sec measures the seam, not the pool.
    ThreadPool::setGlobalThreads(1);

    Network net = Network::parse("RI(4)_FC(4)_SW(4)");
    auto spans = mapGroupToDims(net, 1, net.npus());
    BwConfig bw = net.equalBw(300.0);
    const TimingBackend* analytical =
        resolveTimingBackend(kAnalyticalTimingBackendName);
    const TimingBackend* chunkSim =
        resolveTimingBackend(kChunkSimTimingBackendName);

    double anaQps = timingQueriesPerSec(analytical, 200000, spans, bw,
                                        true);
    setChunkSimMemoEnabled(false);
    double simColdQps =
        timingQueriesPerSec(chunkSim, 2000, spans, bw, true);
    setChunkSimMemoEnabled(true);
    double simFreshQps =
        timingQueriesPerSec(chunkSim, 2000, spans, bw, true);
    double simWarmQps =
        timingQueriesPerSec(chunkSim, 200000, spans, bw, false);

    std::vector<TargetWorkload> targets{
        {wl::turingNlg(net.npus()), 1.0}};
    double anaEvals = objectiveEvalsPerSec(
        net, targets, kAnalyticalTimingBackendName, 20000);
    double simEvals = objectiveEvalsPerSec(
        net, targets, kChunkSimTimingBackendName, 200);

    Table t;
    t.header({"Path", "throughput/s"});
    t.row({"analytical query", Table::num(anaQps, 0)});
    t.row({"chunk-sim query (memo off)", Table::num(simColdQps, 0)});
    t.row({"chunk-sim query (memo miss)", Table::num(simFreshQps, 0)});
    t.row({"chunk-sim query (memo hit)", Table::num(simWarmQps, 0)});
    t.row({"objective eval, analytical (SoA)", Table::num(anaEvals, 0)});
    t.row({"objective eval, chunk-sim", Table::num(simEvals, 0)});
    t.print(std::cout);
    std::cout << "memo hit speedup over fresh sim: "
              << Table::num(simWarmQps / simFreshQps, 1)
              << "x; analytical-vs-sim eval ratio: "
              << Table::num(anaEvals / simEvals, 1) << "x\n";

    Json j = Json::object();
    j["bench"] = "micro_backend";
    j["network"] = net.name();
    j["workload"] = targets[0].workload.name;
    j["analytical_queries_per_sec"] = anaQps;
    j["chunk_sim_queries_per_sec_memo_off"] = simColdQps;
    j["chunk_sim_queries_per_sec_memo_miss"] = simFreshQps;
    j["chunk_sim_queries_per_sec_memo_hit"] = simWarmQps;
    j["memo_hit_speedup"] = simWarmQps / simFreshQps;
    j["objective_evals_per_sec_analytical"] = anaEvals;
    j["objective_evals_per_sec_chunk_sim"] = simEvals;
    j["analytical_over_chunk_sim_eval_ratio"] = anaEvals / simEvals;

    bench::writeBenchJson("BENCH_backend.json", j);
    std::cout << "\nWrote BENCH_backend.json.\n";
}

} // namespace
} // namespace libra

int
main()
{
    libra::setInformEnabled(false);
    libra::run();
    return 0;
}
