/**
 * @file
 * Fig. 10: end-to-end MSFT-1T training time vs average network BW
 * utilization on 2D/3D/4D networks at 300 GB/s per NPU with EqualBW,
 * compared to the workload-aware (LIBRA) allocation and the pure-compute
 * floor.
 *
 * Reproduced claims: EqualBW utilizations are well below 100% (paper:
 * 57.5% / 39.0% / 66.7% for 2D/3D/4D) and reaching full utilization
 * would speed training by 1.29-1.83x.
 */

#include "bench_util.hh"
#include "core/optimizer.hh"
#include "sim/training_sim.hh"
#include "topology/zoo.hh"
#include "workload/zoo.hh"

namespace libra {
namespace {

void
run()
{
    bench::banner("Fig. 10", "MSFT-1T runtime vs network BW utilization "
                             "(300 GB/s per NPU)");

    const double budget = 300.0;
    std::vector<topo::NamedNetwork> nets{
        {"2D", topo::twoD4K()},
        {"3D", topo::threeD4K()},
        {"4D", topo::fourD4K()},
    };

    Table t;
    t.header({"Net", "Alloc", "Runtime(norm)", "BW util(%)",
              "Speedup vs EqualBW"});

    for (const auto& [label, net] : nets) {
        Workload w = wl::msft1T(net.npus());
        TrainingSim sim(net, {});
        TrainingSimResult equal = sim.simulate(w, net.equalBw(budget));

        // Workload-aware allocation via the optimizer.
        BwOptimizer opt(net, CostModel::defaultModel());
        OptimizerConfig cfg;
        cfg.objective = OptimizationObjective::PerfOpt;
        cfg.totalBw = budget;
        cfg.search = bench::benchSearch();
        OptimizationResult best = opt.optimize({{w, 1.0}}, cfg);
        TrainingSimResult tuned = sim.simulate(w, best.bw);

        t.row({label, "EqualBW", Table::num(1.0, 3),
               Table::num(equal.avgBwUtilization * 100.0, 2),
               Table::num(1.0, 2)});
        t.row({label, "LIBRA", Table::num(tuned.total / equal.total, 3),
               Table::num(tuned.avgBwUtilization * 100.0, 2),
               Table::num(equal.total / tuned.total, 2)});
        t.row({label, "PureCompute",
               Table::num(equal.computeTotal / equal.total, 3), "-",
               Table::num(equal.total / equal.computeTotal, 2)});
    }
    t.print(std::cout);

    std::cout << "\nClaim check: EqualBW utilization is far below 100%; "
                 "the workload-aware allocation raises utilization and "
                 "yields >1x speedup (paper: up to 1.83x on 3D).\n";
}

} // namespace
} // namespace libra

int
main()
{
    libra::setInformEnabled(false);
    libra::run();
    return 0;
}
