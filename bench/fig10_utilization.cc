/**
 * @file
 * Fig. 10: end-to-end MSFT-1T training time vs average network BW
 * utilization on 2D/3D/4D networks at 300 GB/s per NPU with EqualBW,
 * compared to the workload-aware (LIBRA) allocation and the
 * pure-compute floor.
 *
 * The study is the registered "fig10" scenario (src/study/scenarios.cc);
 * its utilization metrics are pinned by tests/test_golden_figures.cc.
 */

#include "bench_util.hh"

int
main()
{
    return libra::bench::runScenarioMain("fig10");
}
