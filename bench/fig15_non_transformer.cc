/**
 * @file
 * Fig. 15: speedup and perf-per-cost for the non-transformer workloads
 * (ResNet-50 and DLRM) on the 4D-4K network.
 *
 * The study is the registered "fig15" scenario (src/study/scenarios.cc).
 */

#include "bench_util.hh"

int
main()
{
    return libra::bench::runScenarioMain("fig15");
}
