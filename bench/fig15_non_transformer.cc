/**
 * @file
 * Fig. 15: speedup and perf-per-cost for the non-transformer workloads
 * (ResNet-50 and DLRM) on the 4D-4K network.
 *
 * Reproduced claims: LIBRA needs no modification for non-transformer
 * models; small models show modest speedups but large perf-per-cost
 * gains; PerfPerCostOptBW networks are cheaper than PerfOptBW ones
 * (paper: 15.4% cheaper on average for these workloads).
 */

#include "bench_util.hh"
#include "core/optimizer.hh"
#include "topology/zoo.hh"
#include "workload/zoo.hh"

namespace libra {
namespace {

void
run()
{
    bench::banner("Fig. 15",
                  "ResNet-50 and DLRM on 4D-4K (speedup and "
                  "perf-per-cost over EqualBW)");

    Network net = topo::fourD4K();
    Table t;
    t.header({"Workload", "BW/NPU", "PerfOpt x", "PerfPerCost x",
              "PerfOpt ppc x", "PerfPerCost ppc x", "Cost saving"});

    double sumSaving = 0.0;
    int points = 0;
    for (const auto& w : {wl::resnet50(net.npus()),
                          wl::dlrm(net.npus())}) {
        for (double bw : bench::bwSweep()) {
            BwOptimizer opt(net, CostModel::defaultModel());
            std::vector<TargetWorkload> targets{{w, 1.0}};
            OptimizerConfig cfg;
            cfg.totalBw = bw;
            cfg.search = bench::benchSearch();

            cfg.objective = OptimizationObjective::PerfOpt;
            OptimizationResult perf = opt.optimize(targets, cfg);
            OptimizationResult base = opt.baseline(targets, cfg);
            cfg.objective = OptimizationObjective::PerfPerCostOpt;
            OptimizationResult ppc = opt.optimize(targets, cfg);

            double saving = 1.0 - ppc.cost / perf.cost;
            sumSaving += saving;
            ++points;

            t.row({w.name, Table::num(bw, 0),
                   Table::num(base.weightedTime / perf.weightedTime, 2),
                   Table::num(base.weightedTime / ppc.weightedTime, 2),
                   Table::num(bench::perfPerCostGain(base, perf), 2),
                   Table::num(bench::perfPerCostGain(base, ppc), 2),
                   Table::num(saving * 100.0, 1) + "%"});
        }
    }
    t.print(std::cout);
    std::cout << "\nPerfPerCostOptBW networks are "
              << Table::num(sumSaving / points * 100.0, 1)
              << "% cheaper than PerfOptBW on average (paper: 15.41%).\n";
}

} // namespace
} // namespace libra

int
main()
{
    libra::setInformEnabled(false);
    libra::run();
    return 0;
}
