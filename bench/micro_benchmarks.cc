/**
 * @file
 * google-benchmark microbenchmarks for the performance-critical kernels:
 * objective evaluation (compiled and direct), projection, a full
 * optimizer run, the chunk-timeline simulator, and TACOS synthesis.
 */

#include <benchmark/benchmark.h>

#include "core/optimizer.hh"
#include "runtime/tacos.hh"
#include "sim/chunk_timeline.hh"
#include "solver/qp.hh"
#include "topology/zoo.hh"
#include "workload/zoo.hh"

namespace libra {
namespace {

void
BM_EstimateDirect(benchmark::State& state)
{
    Network net = topo::fourD4K();
    TrainingEstimator est(net);
    Workload w = wl::msft1T(net.npus());
    BwConfig bw = net.equalBw(300.0);
    for (auto _ : state)
        benchmark::DoNotOptimize(est.estimate(w, bw));
}
BENCHMARK(BM_EstimateDirect);

void
BM_EstimateCompiled(benchmark::State& state)
{
    Network net = topo::fourD4K();
    TrainingEstimator est(net);
    CompiledWorkload cw = est.compile(wl::msft1T(net.npus()));
    BwConfig bw = net.equalBw(300.0);
    for (auto _ : state)
        benchmark::DoNotOptimize(cw.estimate(bw));
}
BENCHMARK(BM_EstimateCompiled);

void
BM_Projection(benchmark::State& state)
{
    ConstraintSet cs(4);
    cs.addTotalBw(1000.0);
    cs.addLowerBounds(0.1);
    cs.addUpperBound(3, 50.0);
    Vec q{900.0, 200.0, -20.0, 80.0};
    for (auto _ : state)
        benchmark::DoNotOptimize(projectOntoConstraints(cs, q));
}
BENCHMARK(BM_Projection);

void
BM_OptimizePerfOpt(benchmark::State& state)
{
    Network net = topo::fourD4K();
    BwOptimizer opt(net, CostModel::defaultModel());
    std::vector<TargetWorkload> targets{{wl::msft1T(net.npus()), 1.0}};
    OptimizerConfig cfg;
    cfg.totalBw = 500.0;
    cfg.search.starts = 1;
    for (auto _ : state)
        benchmark::DoNotOptimize(opt.optimize(targets, cfg));
}
BENCHMARK(BM_OptimizePerfOpt)->Unit(benchmark::kMillisecond);

void
BM_ChunkTimeline(benchmark::State& state)
{
    std::vector<DimSpan> spans{{0, 4}, {1, 8}, {2, 4}, {3, 32}};
    ChunkTimeline tl(4, {400.0, 120.0, 50.0, 30.0});
    CollectiveJob job;
    job.type = CollectiveType::AllReduce;
    job.size = 1e9;
    job.spans = spans;
    job.numChunks = static_cast<int>(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(tl.run({job}));
}
BENCHMARK(BM_ChunkTimeline)->Arg(8)->Arg(64)->Unit(
    benchmark::kMicrosecond);

void
BM_TacosSynthesis(benchmark::State& state)
{
    Network net = topo::threeDTorus();
    TacosSynthesizer tacos(net, net.equalBw(1000.0));
    for (auto _ : state)
        benchmark::DoNotOptimize(
            tacos.synthesizeAllReduce(1e9, static_cast<int>(
                                               state.range(0))));
}
BENCHMARK(BM_TacosSynthesis)->Arg(1)->Arg(8)->Unit(
    benchmark::kMillisecond);

} // namespace
} // namespace libra
