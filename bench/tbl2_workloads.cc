/**
 * @file
 * Table II: the evaluation workloads — parameter counts, TP sizes, and
 * the per-iteration compute/communication profile our analytical
 * builders generate for them on 4,096 NPUs.
 */

#include "bench_util.hh"
#include "core/estimator.hh"
#include "topology/zoo.hh"
#include "workload/zoo.hh"

namespace libra {
namespace {

std::string
paramsToString(double p)
{
    if (p >= 1e12)
        return Table::num(p / 1e12, 2) + "T";
    if (p >= 1e9)
        return Table::num(p / 1e9, 1) + "B";
    return Table::num(p / 1e6, 1) + "M";
}

void
run()
{
    bench::banner("Table II", "workload specifications (4,096 NPUs)");

    Network net = topo::fourD4K();
    TrainingEstimator est(net);
    BwConfig bw = net.equalBw(300.0);

    Table t;
    t.header({"Workload", "Params", "TP", "DP", "Layers",
              "Compute/iter", "Comm payload/iter"});
    for (const auto& w : wl::tableTwo(net.npus())) {
        t.row({w.name, paramsToString(w.parameters),
               std::to_string(w.strategy.tp),
               std::to_string(w.strategy.dp),
               std::to_string(w.layers.size()),
               secondsToString(w.totalCompute()),
               bytesToString(w.totalCommPayload())});
    }
    t.print(std::cout);

    std::cout << "\nPer-iteration time at EqualBW 300 GB/s (no overlap):\n";
    Table t2;
    t2.header({"Workload", "Total", "Exposed comm", "Comm fraction"});
    for (const auto& w : wl::tableTwo(net.npus())) {
        EstimateDetail d = est.detail(w, bw);
        t2.row({w.name, secondsToString(d.total),
                secondsToString(d.exposedComm),
                Table::num(d.exposedComm / d.total * 100.0, 1) + "%"});
    }
    t2.print(std::cout);
}

} // namespace
} // namespace libra

int
main()
{
    libra::setInformEnabled(false);
    libra::run();
    return 0;
}
