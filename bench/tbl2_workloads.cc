/**
 * @file
 * Table II: the evaluation workloads — parameter counts, TP sizes, and
 * the per-iteration compute/communication profile our analytical
 * builders generate for them on 4,096 NPUs.
 *
 * The study is the registered "tbl2" scenario (src/study/scenarios.cc).
 */

#include "bench_util.hh"

int
main()
{
    return libra::bench::runScenarioMain("tbl2");
}
