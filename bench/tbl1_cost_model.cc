/**
 * @file
 * Table I + Fig. 12: the default network cost model and the worked
 * 3-NPU inter-Pod switch example ($1,722 at 10 GB/s).
 *
 * The study is the registered "tbl1" scenario (src/study/scenarios.cc);
 * its cost rows are pinned by tests/test_golden_figures.cc.
 */

#include "bench_util.hh"

int
main()
{
    return libra::bench::runScenarioMain("tbl1");
}
