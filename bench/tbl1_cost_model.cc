/**
 * @file
 * Table I + Fig. 12: the default network cost model and the worked
 * 3-NPU inter-Pod switch example ($1,722 at 10 GB/s).
 */

#include "bench_util.hh"
#include "cost/cost_model.hh"
#include "topology/zoo.hh"

namespace libra {
namespace {

void
run()
{
    bench::banner("Table I / Fig. 12", "network cost model ($/GBps)");

    CostModel m = CostModel::defaultModel();
    Table t;
    t.header({"Level", "Link", "Switch", "NIC"});
    auto row = [&](PhysicalLevel level) {
        ComponentCost c = m.levelCost(level);
        auto cell = [](double v) {
            return v > 0.0 ? Table::num(v, 1) : std::string("-");
        };
        t.row({physicalLevelName(level), cell(c.link), cell(c.switch_),
               cell(c.nic)});
    };
    row(PhysicalLevel::Chiplet);
    row(PhysicalLevel::Package);
    row(PhysicalLevel::Node);
    row(PhysicalLevel::Pod);
    t.print(std::cout);

    std::cout << "\nFig. 12 worked example: 3-NPU inter-Pod switch "
                 "network at 10 GB/s\n";
    Network net = Network::parse("SW(3)");
    auto breakdown = m.breakdown(net, {10.0});
    Table e;
    e.header({"Component", "Cost"});
    e.row({"Links", dollarsToString(breakdown[0].linkCost)});
    e.row({"Switch", dollarsToString(breakdown[0].switchCost)});
    e.row({"NICs", dollarsToString(breakdown[0].nicCost)});
    e.row({"Total", dollarsToString(breakdown[0].total())});
    e.print(std::cout);
    std::cout << "Paper value: $1,722. Match: "
              << (std::abs(breakdown[0].total() - 1722.0) < 1e-6
                      ? "EXACT"
                      : "MISMATCH")
              << "\n";
}

} // namespace
} // namespace libra

int
main()
{
    libra::setInformEnabled(false);
    libra::run();
    return 0;
}
