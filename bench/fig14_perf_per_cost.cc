/**
 * @file
 * Fig. 14: perf-per-cost benefit over the EqualBW baseline for the
 * same grid as Fig. 13.
 *
 * Reproduced claims: PerfPerCostOptBW achieves the best perf-per-cost
 * everywhere (paper avg 9.16x, max 13.02x over EqualBW); PerfOptBW also
 * beats EqualBW on perf-per-cost (paper avg 5.40x).
 */

#include "bench_util.hh"
#include "core/optimizer.hh"
#include "topology/zoo.hh"
#include "workload/zoo.hh"

namespace libra {
namespace {

void
run()
{
    bench::banner("Fig. 14",
                  "perf-per-cost benefit over EqualBW baseline");

    std::vector<topo::NamedNetwork> nets{{"3D", topo::threeD4K()},
                                         {"4D", topo::fourD4K()}};

    Table t;
    t.header({"Workload", "Net", "BW/NPU", "PerfOpt ppc x",
              "PerfPerCost ppc x", "PerfPerCost cost"});

    double sumPerf = 0.0, sumPpc = 0.0, maxPpc = 0.0;
    int points = 0;

    for (const auto& [label, net] : nets) {
        std::vector<Workload> workloads{wl::turingNlg(net.npus()),
                                        wl::gpt3(net.npus()),
                                        wl::msft1T(net.npus())};
        for (const auto& w : workloads) {
            for (double bw : bench::bwSweep()) {
                BwOptimizer opt(net, CostModel::defaultModel());
                std::vector<TargetWorkload> targets{{w, 1.0}};
                OptimizerConfig cfg;
                cfg.totalBw = bw;
                cfg.search = bench::benchSearch();

                cfg.objective = OptimizationObjective::PerfOpt;
                OptimizationResult perf = opt.optimize(targets, cfg);
                OptimizationResult base = opt.baseline(targets, cfg);

                cfg.objective = OptimizationObjective::PerfPerCostOpt;
                OptimizationResult ppc = opt.optimize(targets, cfg);

                double gPerf = bench::perfPerCostGain(base, perf);
                double gPpc = bench::perfPerCostGain(base, ppc);
                sumPerf += gPerf;
                sumPpc += gPpc;
                maxPpc = std::max(maxPpc, gPpc);
                ++points;

                t.row({w.name, label, Table::num(bw, 0),
                       Table::num(gPerf, 2), Table::num(gPpc, 2),
                       dollarsToString(ppc.cost)});
            }
        }
    }
    t.print(std::cout);
    std::cout << "\nPerf-per-cost over EqualBW: PerfOpt avg "
              << Table::num(sumPerf / points, 2) << "x; PerfPerCost avg "
              << Table::num(sumPpc / points, 2) << "x, max "
              << Table::num(maxPpc, 2)
              << "x (paper: 5.40x / 9.16x / 13.02x).\n"
              << "Claim check: PerfPerCostOptBW wins perf-per-cost at "
                 "every design point.\n";
}

} // namespace
} // namespace libra

int
main()
{
    libra::setInformEnabled(false);
    libra::run();
    return 0;
}
