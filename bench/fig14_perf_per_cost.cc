/**
 * @file
 * Fig. 14: perf-per-cost benefit over the EqualBW baseline for the
 * same grid as Fig. 13.
 *
 * The study is the registered "fig14" scenario (src/study/scenarios.cc).
 * It builds the identical design-point grid as fig13, so the matrix
 * runner optimizes each point once when both figures run together. The
 * headline metrics are pinned by tests/test_golden_figures.cc.
 */

#include "bench_util.hh"

int
main()
{
    return libra::bench::runScenarioMain("fig14");
}
