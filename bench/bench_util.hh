/**
 * @file
 * Shared helpers for the figure/table reproduction harness.
 *
 * Every bench binary prints the series the corresponding paper figure
 * plots (or the table's rows), using the same normalizations the paper
 * uses (speedup over EqualBW, perf-per-cost over EqualBW).
 */

#ifndef LIBRA_BENCH_BENCH_UTIL_HH
#define LIBRA_BENCH_BENCH_UTIL_HH

#include <iostream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/table.hh"
#include "core/framework.hh"
#include "core/report.hh"

namespace libra {
namespace bench {

/** BW-per-NPU sweep used across Figs. 13-16 (paper: 100-1,000 GB/s). */
inline std::vector<double>
bwSweep()
{
    return {100.0, 250.0, 500.0, 1000.0};
}

/** Search options sized for the harness (deterministic, fast). */
inline MultistartOptions
benchSearch()
{
    MultistartOptions opt;
    opt.starts = 3;
    return opt;
}

/** Print a standard figure banner. */
inline void
banner(const std::string& fig, const std::string& what)
{
    std::cout << "\n############################################\n"
              << "# " << fig << ": " << what << "\n"
              << "############################################\n";
}

/** Perf-per-cost of a design point relative to another. */
inline double
perfPerCostGain(const OptimizationResult& base,
                const OptimizationResult& opt)
{
    double baseRecip = base.weightedTime * base.cost;
    double optRecip = opt.weightedTime * opt.cost;
    return optRecip > 0.0 ? baseRecip / optRecip : 0.0;
}

} // namespace bench
} // namespace libra

#endif // LIBRA_BENCH_BENCH_UTIL_HH
