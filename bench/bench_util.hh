/**
 * @file
 * Shared helpers for the figure/table reproduction harness.
 *
 * Every bench binary prints the series the corresponding paper figure
 * plots (or the table's rows), using the same normalizations the paper
 * uses (speedup over EqualBW, perf-per-cost over EqualBW).
 */

#ifndef LIBRA_BENCH_BENCH_UTIL_HH
#define LIBRA_BENCH_BENCH_UTIL_HH

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "core/framework.hh"
#include "core/report.hh"
#include "study/matrix.hh"

namespace libra {
namespace bench {

/**
 * Entry point of the figure/table benches ported onto the scenario
 * registry: run one named scenario through the matrix engine (no
 * cache) and print it in the paper-style table format. The shared
 * table/summary/notes rendering lives in printScenarioRun(), which
 * replaced the per-bench row-printing each binary used to hand-roll.
 */
inline int
runScenarioMain(const std::string& name)
{
    setInformEnabled(false);
    try {
        MatrixResult result = runScenarioMatrix({name});
        printScenarioRun(result.scenarios.front(), std::cout);
        return 0;
    } catch (const FatalError& e) {
        std::cerr << "bench: " << e.what() << "\n";
        return 1;
    }
}

/**
 * BW-per-NPU sweep used across Figs. 13-16 (paper: 100-1,000 GB/s).
 * Forwards to the scenario engine's definition so the remaining
 * standalone benches share one grid with the registered scenarios.
 */
inline std::vector<double>
bwSweep()
{
    return paperBwSweep();
}

/** Search options sized for the harness (deterministic, fast). */
inline MultistartOptions
benchSearch()
{
    return paperSearchOptions();
}

/** Print a standard figure banner. */
inline void
banner(const std::string& fig, const std::string& what)
{
    std::cout << "\n############################################\n"
              << "# " << fig << ": " << what << "\n"
              << "############################################\n";
}

/**
 * Write a BENCH_*.json metrics file through the deterministic Json
 * writer: insertion-ordered members and shortest-round-trip number
 * formatting, so the same metrics always serialize to the same bytes
 * (and every emitter renders numbers identically — no hand-rolled
 * operator<< streams with locale/precision drift).
 */
inline void
writeBenchJson(const std::string& path, const Json& metrics)
{
    std::ofstream out(path);
    out << metrics.dump(1) << "\n";
}

/** Perf-per-cost of a design point relative to another. */
inline double
perfPerCostGain(const OptimizationResult& base,
                const OptimizationResult& opt)
{
    double baseRecip = base.weightedTime * base.cost;
    double optRecip = opt.weightedTime * opt.cost;
    return optRecip > 0.0 ? baseRecip / optRecip : 0.0;
}

} // namespace bench
} // namespace libra

#endif // LIBRA_BENCH_BENCH_UTIL_HH
