/**
 * @file
 * A realistic design study: size the fabric of a 1,024-NPU training
 * cluster that must serve a *family* of workloads (an LLM, a
 * recommender, and a vision model) under engineering constraints:
 *
 *  - 600 GB/s total network bandwidth per NPU,
 *  - the scale-out (Pod) dimension capped at 50 GB/s (NIC limit),
 *  - scale-up dimensions must be monotonically non-increasing outward
 *    (pin/SerDes budget shrinks with distance).
 *
 * Compares PerfOptBW and PerfPerCostOptBW, prints the winning design
 * with its full dollar breakdown.
 */

#include <iostream>

#include "core/optimizer.hh"
#include "core/report.hh"
#include "topology/zoo.hh"
#include "workload/zoo.hh"

int
main()
{
    using namespace libra;

    Network net = Network::parse("FC(8)_RI(16)_SW(8)"); // 3D-1K.
    CostModel cm = CostModel::defaultModel();
    TrainingEstimator est(net);
    BwOptimizer opt(net, cm);
    const double budget = 600.0;

    // The workload family with EqualBW-normalized importance.
    std::vector<TargetWorkload> family{
        {wl::gpt3(net.npus()), 1.0},
        {wl::dlrm(net.npus()), 1.0},
        {wl::resnet50(net.npus()), 1.0},
    };
    family = normalizeWeights(est, family, budget);

    OptimizerConfig cfg;
    cfg.totalBw = budget;
    cfg.constraints = {"B3 <= 50", "B1 >= B2 >= B3"};

    std::cout << "Designing " << net.name() << " (" << net.npus()
              << " NPUs) for {GPT-3, DLRM, ResNet-50}\n"
              << "Constraints: total = 600 GB/s, B3 <= 50, "
                 "B1 >= B2 >= B3\n\n";

    OptimizationResult equal = opt.baseline(family, cfg);
    std::cout << "EqualBW baseline : " << bwConfigToString(equal.bw)
              << ", cost " << dollarsToString(equal.cost) << "\n\n";

    for (auto objective : {OptimizationObjective::PerfOpt,
                           OptimizationObjective::PerfPerCostOpt}) {
        cfg.objective = objective;
        OptimizationResult r = opt.optimize(family, cfg);
        std::cout << objectiveName(objective) << ":\n"
                  << "  BW config : " << bwConfigToString(r.bw) << "\n"
                  << "  cost      : " << dollarsToString(r.cost) << "\n"
                  << "  speedup vs EqualBW (weighted): "
                  << equal.weightedTime / r.weightedTime << "x\n";
        for (std::size_t i = 0; i < family.size(); ++i) {
            std::cout << "    " << family[i].workload.name << ": "
                      << secondsToString(r.perWorkloadTime[i])
                      << "/iter (EqualBW "
                      << secondsToString(equal.perWorkloadTime[i])
                      << ")\n";
        }

        std::cout << "  dollar breakdown:\n";
        for (const auto& b : cm.breakdown(net, r.bw)) {
            std::cout << "    dim " << b.dim + 1 << " ("
                      << physicalLevelName(b.level)
                      << "): links " << dollarsToString(b.linkCost)
                      << ", switches " << dollarsToString(b.switchCost)
                      << ", NICs " << dollarsToString(b.nicCost) << "\n";
        }
        std::cout << "\n";
    }
    return 0;
}
