/**
 * @file
 * Quickstart: optimize the bandwidth split of a 4D network for GPT-3
 * training and compare against the EqualBW baseline.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <iostream>

#include "core/framework.hh"
#include "core/report.hh"
#include "workload/zoo.hh"

int
main()
{
    using namespace libra;

    // 1. Describe the system: a 4,096-NPU 4D network (Fig. 2's
    //    Chiplet / Package / Node / Pod hierarchy) with a total budget
    //    of 500 GB/s of network bandwidth per NPU.
    LibraInputs inputs;
    inputs.networkShape = "RI(4)_FC(8)_RI(4)_SW(32)";
    inputs.config.totalBw = 500.0;

    // 2. Pick the target workload: GPT-3 with Table II's TP-16, the
    //    rest of the machine running data parallelism.
    inputs.targets.push_back({wl::gpt3(4096), 1.0});

    // 3. Choose the objective. PerfOpt maximizes training speed;
    //    PerfPerCostOpt balances speed against network dollars.
    inputs.config.objective = OptimizationObjective::PerfOpt;

    // 4. Optional design constraints in the LIBRA constraint language.
    inputs.config.constraints.push_back("B4 <= 100");

    // 5. Run.
    LibraReport report = runLibra(inputs);

    std::cout << "Network            : " << inputs.networkShape << "\n"
              << "Workload           : GPT-3, "
              << inputs.targets[0].workload.strategy.name() << "\n"
              << "EqualBW            : "
              << bwConfigToString(report.equalBw.bw) << " -> "
              << secondsToString(report.equalBw.weightedTime)
              << "/iter, " << dollarsToString(report.equalBw.cost)
              << "\n"
              << "LIBRA PerfOptBW    : "
              << bwConfigToString(report.optimized.bw) << " -> "
              << secondsToString(report.optimized.weightedTime)
              << "/iter, " << dollarsToString(report.optimized.cost)
              << "\n"
              << "Speedup            : " << report.speedup << "x\n"
              << "Perf-per-cost gain : " << report.perfPerCostGain
              << "x\n";
    return 0;
}
