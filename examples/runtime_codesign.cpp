/**
 * @file
 * Design-time x runtime co-optimization demo (paper §VI-D): compose
 * LIBRA's bandwidth allocation with the Themis greedy chunk scheduler
 * and the TACOS collective synthesizer on a 64-NPU 3D torus, and show
 * that runtime optimizers work best on a well-designed network.
 */

#include <iostream>

#include "core/optimizer.hh"
#include "core/report.hh"
#include "runtime/tacos.hh"
#include "runtime/themis.hh"
#include "sim/chunk_timeline.hh"
#include "topology/zoo.hh"

int
main()
{
    using namespace libra;

    Network net = topo::threeDTorus();
    CostModel cm = CostModel::defaultModel();
    const Bytes m = 1e9;
    const int chunks = 8;
    auto spans = mapGroupToDims(net, 1, net.npus());

    // A 1 GB All-Reduce "workload" for the optimizer.
    Workload ar;
    ar.strategy = {1, net.npus()};
    Layer l;
    l.wgComm.push_back({CollectiveType::AllReduce, CommScope::Dp, m});
    ar.layers.push_back(l);

    BwOptimizer opt(net, cm);
    OptimizerConfig cfg;
    cfg.totalBw = 1000.0;
    BwConfig libraBw = opt.optimize({{ar, 1.0}}, cfg).bw;
    BwConfig equalBw = net.equalBw(1000.0);

    std::cout << "3D torus " << net.name() << ", 1 GB All-Reduce, "
              << chunks << " chunks\n"
              << "EqualBW: " << bwConfigToString(equalBw) << " ("
              << dollarsToString(cm.networkCost(net, equalBw)) << ")\n"
              << "LIBRA  : " << bwConfigToString(libraBw) << " ("
              << dollarsToString(cm.networkCost(net, libraBw))
              << ")\n\n";

    auto timeline = [&](const BwConfig& bw, SchedulePolicy policy) {
        ChunkTimeline tl(net.numDims(), bw);
        CollectiveJob j;
        j.type = CollectiveType::AllReduce;
        j.size = m;
        j.spans = spans;
        j.numChunks = chunks;
        j.policy = policy;
        return tl.collectiveTime(j);
    };

    std::cout << "Collective time by design x runtime combination:\n";
    for (auto [name, bw] :
         {std::pair<const char*, BwConfig>{"EqualBW", equalBw},
          std::pair<const char*, BwConfig>{"LIBRA  ", libraBw}}) {
        Seconds rail = timeline(bw, SchedulePolicy::FixedAscending);
        Seconds themis =
            themisCollectiveTiming(net.numDims(),
                                   CollectiveType::AllReduce, m, spans,
                                   bw, chunks)
                .time;
        Seconds tacos =
            TacosSynthesizer(net, bw).synthesizeAllReduce(m, chunks)
                .time;
        std::cout << "  " << name
                  << "  multi-rail: " << secondsToString(rail)
                  << "  +Themis: " << secondsToString(themis)
                  << "  +TACOS: " << secondsToString(tacos) << "\n";
    }

    std::cout << "\nTakeaway: runtime schedulers (Themis, TACOS) raise "
                 "utilization on any network, but the LIBRA-designed "
                 "fabric is also several-x cheaper — design-time and "
                 "runtime optimization compose.\n";
    return 0;
}
