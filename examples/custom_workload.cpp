/**
 * @file
 * Bring-your-own-workload: feed LIBRA a profiled workload through the
 * text format (the Fig. 3 "Workload Parser" path) instead of the
 * built-in analytical builders — e.g. layer timings captured from a
 * real training run.
 */

#include <iostream>

#include "core/optimizer.hh"
#include "core/report.hh"
#include "workload/parser.hh"

namespace {

// A profiled MoE-style model: a few heavy expert layers synchronized
// with All-to-All, dense layers with ZeRO-2 gradient sync. 512 NPUs as
// TP-8 x DP-64.
const char* kProfiledWorkload = R"(
WORKLOAD moe-demo
PARAMS 4.2e10
STRATEGY TP 8 PP 1 DP 64

LAYER dense-0
  FWD_COMPUTE 0.004
  IG_COMPUTE 0.004
  WG_COMPUTE 0.004
  FWD_COMM ALLREDUCE TP 4.1e8
  IG_COMM ALLREDUCE TP 4.1e8
  WG_COMM REDUCESCATTER DP 1.3e8
  WG_COMM ALLGATHER DP 1.3e8
END

LAYER expert-0
  FWD_COMPUTE 0.009
  IG_COMPUTE 0.009
  WG_COMPUTE 0.009
  FWD_COMM ALLTOALL ALL 2.6e8
  IG_COMM ALLTOALL ALL 2.6e8
  WG_COMM REDUCESCATTER DP 5.2e8
  WG_COMM ALLGATHER DP 5.2e8
END

LAYER dense-1
  FWD_COMPUTE 0.004
  IG_COMPUTE 0.004
  WG_COMPUTE 0.004
  FWD_COMM ALLREDUCE TP 4.1e8
  IG_COMM ALLREDUCE TP 4.1e8
  WG_COMM REDUCESCATTER DP 1.3e8
  WG_COMM ALLGATHER DP 1.3e8
END
)";

} // namespace

int
main()
{
    using namespace libra;

    Workload w = parseWorkloadString(kProfiledWorkload);
    std::cout << "Parsed workload '" << w.name << "': "
              << w.layers.size() << " layers, strategy "
              << w.strategy.name() << "\n";

    Network net = Network::parse("FC(8)_RI(8)_SW(8)"); // 512 NPUs.
    BwOptimizer opt(net, CostModel::defaultModel());
    OptimizerConfig cfg;
    cfg.totalBw = 400.0;
    cfg.constraints.push_back("B3 <= 50");

    OptimizationResult base = opt.baseline({{w, 1.0}}, cfg);
    OptimizationResult best = opt.optimize({{w, 1.0}}, cfg);

    std::cout << "Network " << net.name() << ", 400 GB/s per NPU, "
              << "B3 <= 50\n"
              << "  EqualBW : " << bwConfigToString(base.bw) << " -> "
              << secondsToString(base.weightedTime) << "/iter\n"
              << "  LIBRA   : " << bwConfigToString(best.bw) << " -> "
              << secondsToString(best.weightedTime) << "/iter\n"
              << "  speedup : "
              << base.weightedTime / best.weightedTime << "x, cost "
              << dollarsToString(best.cost) << " (EqualBW "
              << dollarsToString(base.cost) << ")\n";

    // Round-trip: serialize the workload back out (e.g. to archive the
    // design study's exact input).
    std::cout << "\nSerialized form round-trips losslessly: "
              << (serializeWorkload(parseWorkloadString(
                      serializeWorkload(w))) == serializeWorkload(w)
                      ? "yes"
                      : "NO")
              << "\n";
    return 0;
}
