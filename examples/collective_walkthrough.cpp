/**
 * @file
 * Executable version of the paper's Fig. 8: a multi-rail All-Reduce on
 * a 3x2 network, carrying real data. Prints every NPU's buffer after
 * each Reduce-Scatter / All-Gather stage, then shows the same
 * collective as a pipelined chunk timeline (Fig. 9 style).
 */

#include <iomanip>
#include <iostream>

#include "sim/chunk_timeline.hh"
#include "sim/collective_sim.hh"
#include "topology/network.hh"

namespace {

using namespace libra;

void
printState(const CollectiveSim& sim, const Network& net,
           const std::string& title)
{
    std::cout << "\n" << title << "\n";
    for (long id = 0; id < net.npus(); ++id) {
        auto [lo, hi] = sim.activeRange(id);
        std::cout << "  NPU " << id + 1 << ": [";
        const auto& d = sim.data(id);
        for (std::size_t i = 0; i < d.size(); ++i) {
            if (i)
                std::cout << ' ';
            if (i >= lo && i < hi)
                std::cout << std::setw(3) << d[i];
            else
                std::cout << "  ."; // Stale outside the active range.
        }
        std::cout << " ]\n";
    }
}

} // namespace

int
main()
{
    using namespace libra;

    // Fig. 8(a): 6 NPUs in a 3x2 arrangement, 6 values each.
    Network net = Network::parse("RI(3)_RI(2)");
    CollectiveSim sim(net, {10.0, 10.0});
    const double vals[6][6] = {
        {1, 2, 3, -6, -4, -2},  {4, 5, 6, -5, -3, -1},
        {1, 3, 5, -2, -3, -5},  {2, 4, 6, -1, -4, -6},
        {6, 3, 2, 4, 2, 6},     {5, 4, 1, 1, 5, 3},
    };
    sim.init(6,
             [&vals](long npu, std::size_t i) { return vals[npu][i]; });

    std::cout << "Multi-rail All-Reduce on " << net.name() << " ("
              << net.npus() << " NPUs), following paper Fig. 8\n";
    printState(sim, net, "(a) initial placement");

    sim.runReduceScatter();
    printState(sim, net,
               "(b-c) after Reduce-Scatter on Dim 1 then Dim 2 "
               "(each NPU owns one reduced element)");

    sim.runAllGather();
    printState(sim, net,
               "(d-e) after All-Gather on Dim 2 then Dim 1 "
               "(every NPU holds the full reduced vector)");

    std::cout << "\nVerified: "
              << (sim.verifyAllReduce() ? "every NPU holds the exact "
                                          "elementwise sum"
                                        : "MISMATCH!")
              << "\nSequential stage time: "
              << sim.elapsed() * 1e3 << " ms\n";

    // The same collective, pipelined chunk-by-chunk (Fig. 9 view).
    std::cout << "\nPipelined chunk view (4 chunks, digits = RS, "
                 "letters = AG):\n";
    ChunkTimeline tl(2, {10.0, 10.0});
    CollectiveJob job;
    job.type = CollectiveType::AllReduce;
    job.size = 6 * kFp32Bytes;
    job.spans = {{0, 3}, {1, 2}};
    job.numChunks = 4;
    TimelineResult r = tl.run({job});
    std::cout << r.render(2, 64);
    return 0;
}
