#include "topology/building_block.hh"

#include "common/logging.hh"

namespace libra {

std::string
unitTopologyToken(UnitTopology t)
{
    switch (t) {
      case UnitTopology::Ring:
        return "RI";
      case UnitTopology::FullyConnected:
        return "FC";
      case UnitTopology::Switch:
        return "SW";
    }
    panic("unknown unit topology");
}

std::string
unitTopologyName(UnitTopology t)
{
    switch (t) {
      case UnitTopology::Ring:
        return "Ring";
      case UnitTopology::FullyConnected:
        return "FullyConnected";
      case UnitTopology::Switch:
        return "Switch";
    }
    panic("unknown unit topology");
}

UnitTopology
parseUnitTopology(const std::string& token)
{
    if (token == "RI" || token == "ri")
        return UnitTopology::Ring;
    if (token == "FC" || token == "fc")
        return UnitTopology::FullyConnected;
    if (token == "SW" || token == "sw")
        return UnitTopology::Switch;
    fatal("unknown unit topology token '", token,
          "' (expected RI, FC, or SW)");
}

DimAlgorithm
canonicalAlgorithm(UnitTopology t)
{
    switch (t) {
      case UnitTopology::Ring:
        return DimAlgorithm::Ring;
      case UnitTopology::FullyConnected:
        return DimAlgorithm::Direct;
      case UnitTopology::Switch:
        return DimAlgorithm::HalvingDoubling;
    }
    panic("unknown unit topology");
}

std::string
dimAlgorithmName(DimAlgorithm a)
{
    switch (a) {
      case DimAlgorithm::Ring:
        return "Ring";
      case DimAlgorithm::Direct:
        return "Direct";
      case DimAlgorithm::HalvingDoubling:
        return "HalvingDoubling";
    }
    panic("unknown dim algorithm");
}

int
linksPerNpu(UnitTopology t, int size)
{
    switch (t) {
      case UnitTopology::Ring:
        return size > 2 ? 2 : (size - 1);
      case UnitTopology::FullyConnected:
        return size - 1;
      case UnitTopology::Switch:
        return 1; // Uplink to the switch.
    }
    panic("unknown unit topology");
}

bool
needsSwitch(UnitTopology t)
{
    return t == UnitTopology::Switch;
}

} // namespace libra
