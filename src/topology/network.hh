/**
 * @file
 * Multi-dimensional network representation (paper §IV-A).
 *
 * A network is an ordered stack of unit-topology dimensions, written
 * "RI(4)_FC(8)_RI(4)_SW(32)" — dim 1 innermost (closest to the NPU),
 * last dim the scale-out fabric. Each dimension carries a physical
 * connotation (Chiplet / Package / Node / Pod, Fig. 2b) assigned
 * outside-in: the outermost dimension is always the Pod (NIC-based
 * scale-out), the next ones inward are Node, Package, and any remaining
 * inner dimensions are Chiplet-level.
 */

#ifndef LIBRA_TOPOLOGY_NETWORK_HH
#define LIBRA_TOPOLOGY_NETWORK_HH

#include <string>
#include <vector>

#include "solver/matrix.hh"
#include "topology/building_block.hh"

namespace libra {

/** Physical packaging level a network dimension lives at (Fig. 2b). */
enum class PhysicalLevel { Chiplet, Package, Node, Pod };

/** Human-readable level name. */
std::string physicalLevelName(PhysicalLevel level);

/** One dimension of a multi-dimensional network. */
struct NetworkDim
{
    UnitTopology type = UnitTopology::Ring;
    int size = 1;                 ///< NPUs per group in this dimension.
    PhysicalLevel level = PhysicalLevel::Pod;

    /**
     * Switch levels *within* this dimension (paper Fig. 4): "SW(8:2)"
     * is one 8-NPU dimension implemented as a 2-level switch
     * hierarchy. Hierarchy is an implementation choice — it does not
     * add parallel connectivity, so the performance model is unchanged
     * — but every level adds a layer of switch ports to the bill.
     */
    int switchLevels = 1;
};

/** Per-dimension bandwidth configuration (GB/s per NPU per dim). */
using BwConfig = Vec;

/** An N-dimensional network of NPUs. */
class Network
{
  public:
    /** Build from explicit dimensions (levels are re-derived). */
    explicit Network(std::vector<NetworkDim> dims);

    /**
     * Parse the "RI(4)_FC(8)_RI(4)_SW(32)" notation. Switch dims may
     * carry a hierarchy depth, e.g. "SW(8:2)" (Fig. 4b).
     * @throws FatalError on malformed input or sizes < 2.
     */
    static Network parse(const std::string& text);

    /** Canonical name in the notation, e.g. "RI(4)_FC(8)_SW(32)". */
    std::string name() const;

    std::size_t numDims() const { return dims_.size(); }
    const NetworkDim& dim(std::size_t i) const { return dims_[i]; }
    const std::vector<NetworkDim>& dims() const { return dims_; }

    /** Total NPU count (product of dimension sizes). */
    long npus() const;

    /** Product of dimension sizes 0..i-1 (prefix product, p0 = 1). */
    long prefixProduct(std::size_t i) const;

    /** Dimension sizes as a vector. */
    std::vector<int> sizes() const;

    /**
     * NPU id -> mixed-radix coordinate, dim 0 fastest-varying
     * (matches Fig. 8: consecutive ids are neighbours in dim 1).
     */
    std::vector<int> coordsOf(long npu) const;

    /** Mixed-radix coordinate -> NPU id. */
    long npuOf(const std::vector<int>& coords) const;

    /** EqualBW baseline: @p total split equally across dimensions. */
    BwConfig equalBw(double total) const;

  private:
    void assignLevels();

    std::vector<NetworkDim> dims_;
};

} // namespace libra

#endif // LIBRA_TOPOLOGY_NETWORK_HH
