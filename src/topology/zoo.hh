/**
 * @file
 * Topology zoo: the evaluation networks of Table III plus the real-system
 * examples of Fig. 11, available by name.
 */

#ifndef LIBRA_TOPOLOGY_ZOO_HH
#define LIBRA_TOPOLOGY_ZOO_HH

#include <string>
#include <vector>

#include "topology/network.hh"

namespace libra {
namespace topo {

/** 4D-4K: RI(4)_FC(8)_RI(4)_SW(32), 4,096 NPUs. */
Network fourD4K();

/** 3D-4K: RI(16)_FC(8)_SW(32) — the 4D-4K with its rings merged. */
Network threeD4K();

/** 2D-4K: RI(128)_SW(32) — the 3D-4K merged once more (Fig. 10). */
Network twoD4K();

/** 3D-512: SW(16)_SW(8)_SW(4). */
Network threeD512();

/** 3D-1K: FC(8)_RI(16)_SW(8). */
Network threeD1K();

/** 4D-2K: RI(4)_SW(4)_SW(8)_SW(16). */
Network fourD2K();

/** 3D-Torus: RI(4)_RI(4)_RI(4), 64 NPUs (TACOS case study). */
Network threeDTorus();

/** A named (label, network) pair for table-style listings. */
struct NamedNetwork
{
    std::string label;
    Network network;
};

/** All Table III evaluation topologies in paper order. */
std::vector<NamedNetwork> tableThree();

/** Fig. 11 real-system shapes (TPUv4, DGX, HLS-1, Zion, ...). */
std::vector<NamedNetwork> realSystems();

} // namespace topo
} // namespace libra

#endif // LIBRA_TOPOLOGY_ZOO_HH
