#include "topology/network.hh"

#include <cctype>
#include <sstream>

#include "common/logging.hh"

namespace libra {

std::string
physicalLevelName(PhysicalLevel level)
{
    switch (level) {
      case PhysicalLevel::Chiplet:
        return "Chiplet";
      case PhysicalLevel::Package:
        return "Package";
      case PhysicalLevel::Node:
        return "Node";
      case PhysicalLevel::Pod:
        return "Pod";
    }
    panic("unknown physical level");
}

Network::Network(std::vector<NetworkDim> dims) : dims_(std::move(dims))
{
    if (dims_.empty())
        fatal("network must have at least one dimension");
    for (const auto& d : dims_) {
        if (d.size < 2)
            fatal("network dimension size must be >= 2, got ", d.size);
    }
    assignLevels();
}

void
Network::assignLevels()
{
    // Outside-in: Pod, Node, Package, then Chiplet for the rest (Fig. 2b).
    const PhysicalLevel outer[3] = {PhysicalLevel::Pod, PhysicalLevel::Node,
                                    PhysicalLevel::Package};
    std::size_t n = dims_.size();
    for (std::size_t i = 0; i < n; ++i) {
        std::size_t fromOuter = n - 1 - i;
        dims_[i].level = fromOuter < 3 ? outer[fromOuter]
                                       : PhysicalLevel::Chiplet;
    }
}

Network
Network::parse(const std::string& text)
{
    std::vector<NetworkDim> dims;
    std::size_t pos = 0;
    while (pos < text.size()) {
        // Token: two letters.
        std::size_t tokStart = pos;
        while (pos < text.size() &&
               std::isalpha(static_cast<unsigned char>(text[pos])))
            ++pos;
        std::string token = text.substr(tokStart, pos - tokStart);
        if (pos >= text.size() || text[pos] != '(')
            fatal("network '", text, "': expected '(' after '", token, "'");
        ++pos;
        std::size_t numStart = pos;
        while (pos < text.size() &&
               std::isdigit(static_cast<unsigned char>(text[pos])))
            ++pos;
        if (numStart == pos)
            fatal("network '", text, "': expected size after '(', dim ",
                  dims.size() + 1);
        int size = std::stoi(text.substr(numStart, pos - numStart));
        int levels = 1;
        if (pos < text.size() && text[pos] == ':') {
            ++pos;
            std::size_t lvlStart = pos;
            while (pos < text.size() &&
                   std::isdigit(static_cast<unsigned char>(text[pos])))
                ++pos;
            if (lvlStart == pos)
                fatal("network '", text,
                      "': expected hierarchy depth after ':'");
            levels = std::stoi(text.substr(lvlStart, pos - lvlStart));
            if (levels < 1)
                fatal("network '", text, "': hierarchy depth must be "
                      ">= 1");
        }
        if (pos >= text.size() || text[pos] != ')')
            fatal("network '", text, "': expected ')'");
        ++pos;
        UnitTopology type = parseUnitTopology(token);
        if (levels > 1 && type != UnitTopology::Switch) {
            fatal("network '", text, "': hierarchy depth only applies "
                  "to SW dimensions (Fig. 4)");
        }
        dims.push_back({type, size, PhysicalLevel::Pod, levels});
        if (pos < text.size()) {
            if (text[pos] != '_')
                fatal("network '", text, "': expected '_' between dims");
            ++pos;
        }
    }
    if (dims.empty())
        fatal("network '", text, "': no dimensions found");
    return Network(std::move(dims));
}

std::string
Network::name() const
{
    std::ostringstream oss;
    for (std::size_t i = 0; i < dims_.size(); ++i) {
        if (i)
            oss << '_';
        oss << unitTopologyToken(dims_[i].type) << '(' << dims_[i].size;
        if (dims_[i].switchLevels > 1)
            oss << ':' << dims_[i].switchLevels;
        oss << ')';
    }
    return oss.str();
}

long
Network::npus() const
{
    long n = 1;
    for (const auto& d : dims_)
        n *= d.size;
    return n;
}

long
Network::prefixProduct(std::size_t i) const
{
    long p = 1;
    for (std::size_t k = 0; k < i && k < dims_.size(); ++k)
        p *= dims_[k].size;
    return p;
}

std::vector<int>
Network::sizes() const
{
    std::vector<int> s;
    s.reserve(dims_.size());
    for (const auto& d : dims_)
        s.push_back(d.size);
    return s;
}

std::vector<int>
Network::coordsOf(long npu) const
{
    if (npu < 0 || npu >= npus())
        panic("npu id ", npu, " out of range (", npus(), " NPUs)");
    std::vector<int> coords(dims_.size());
    for (std::size_t i = 0; i < dims_.size(); ++i) {
        coords[i] = static_cast<int>(npu % dims_[i].size);
        npu /= dims_[i].size;
    }
    return coords;
}

long
Network::npuOf(const std::vector<int>& coords) const
{
    if (coords.size() != dims_.size())
        panic("coordinate rank ", coords.size(), " != ", dims_.size());
    long id = 0;
    for (std::size_t i = dims_.size(); i-- > 0;) {
        if (coords[i] < 0 || coords[i] >= dims_[i].size)
            panic("coordinate ", coords[i], " out of range in dim ", i);
        id = id * dims_[i].size + coords[i];
    }
    return id;
}

BwConfig
Network::equalBw(double total) const
{
    return BwConfig(dims_.size(),
                    total / static_cast<double>(dims_.size()));
}

} // namespace libra
