#include "topology/zoo.hh"

namespace libra {
namespace topo {

Network
fourD4K()
{
    return Network::parse("RI(4)_FC(8)_RI(4)_SW(32)");
}

Network
threeD4K()
{
    return Network::parse("RI(16)_FC(8)_SW(32)");
}

Network
twoD4K()
{
    return Network::parse("RI(128)_SW(32)");
}

Network
threeD512()
{
    return Network::parse("SW(16)_SW(8)_SW(4)");
}

Network
threeD1K()
{
    return Network::parse("FC(8)_RI(16)_SW(8)");
}

Network
fourD2K()
{
    return Network::parse("RI(4)_SW(4)_SW(8)_SW(16)");
}

Network
threeDTorus()
{
    return Network::parse("RI(4)_RI(4)_RI(4)");
}

std::vector<NamedNetwork>
tableThree()
{
    return {
        {"4D-4K", fourD4K()},     {"3D-4K", threeD4K()},
        {"3D-512", threeD512()},  {"3D-1K", threeD1K()},
        {"4D-2K", fourD2K()},     {"3D-Torus", threeDTorus()},
    };
}

std::vector<NamedNetwork>
realSystems()
{
    return {
        {"Google TPUv4 (RI(4)_RI(2)_RI(2))",
         Network::parse("RI(4)_RI(2)_RI(2)")},
        {"Google TPUv2/v3 (RI(4)_RI(2))", Network::parse("RI(4)_RI(2)")},
        {"NVIDIA DGX-2 / DGX-A100 (SW(3)_SW(2))",
         Network::parse("SW(3)_SW(2)")},
        {"Intel Habana HLS-1 / NVIDIA HGX-H100 (FC(4)_SW(2))",
         Network::parse("FC(4)_SW(2)")},
        {"Meta Zion / NVIDIA DGX-1 (RI(4)_SW(2))",
         Network::parse("RI(4)_SW(2)")},
    };
}

} // namespace topo
} // namespace libra
