/**
 * @file
 * Unit network building blocks (paper Fig. 7).
 *
 * Each dimension of a multi-dimensional network instantiates one of three
 * unit topologies — Ring (RI), FullyConnected (FC), or Switch (SW) — and
 * runs that topology's contention-free collective algorithm (Ring, Direct,
 * Halving-Doubling) within the dimension.
 */

#ifndef LIBRA_TOPOLOGY_BUILDING_BLOCK_HH
#define LIBRA_TOPOLOGY_BUILDING_BLOCK_HH

#include <string>

namespace libra {

/** Unit topology of one network dimension. */
enum class UnitTopology { Ring, FullyConnected, Switch };

/** Topology-aware collective algorithm run within one dimension. */
enum class DimAlgorithm { Ring, Direct, HalvingDoubling };

/** Two-letter token used in the network notation ("RI"/"FC"/"SW"). */
std::string unitTopologyToken(UnitTopology t);

/** Human-readable name ("Ring"/"FullyConnected"/"Switch"). */
std::string unitTopologyName(UnitTopology t);

/**
 * Parse a notation token into a unit topology.
 * @throws FatalError on unknown tokens.
 */
UnitTopology parseUnitTopology(const std::string& token);

/** Canonical contention-free algorithm for a unit topology (Fig. 7b). */
DimAlgorithm canonicalAlgorithm(UnitTopology t);

/** Human-readable algorithm name. */
std::string dimAlgorithmName(DimAlgorithm a);

/**
 * Number of point-to-point links each NPU owns inside one dimension of
 * @p size NPUs (0 for Switch, where NPUs connect through the switch).
 */
int linksPerNpu(UnitTopology t, int size);

/** True when the dimension needs a physical switch component. */
bool needsSwitch(UnitTopology t);

} // namespace libra

#endif // LIBRA_TOPOLOGY_BUILDING_BLOCK_HH
