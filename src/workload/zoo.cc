#include "workload/zoo.hh"

#include "common/logging.hh"
#include "workload/dlrm.hh"
#include "workload/resnet.hh"
#include "workload/transformer.hh"

namespace libra {
namespace wl {

namespace {

long
dpOf(long npus, long tp, const char* name)
{
    if (npus % tp != 0)
        fatal(name, ": TP size ", tp, " does not divide ", npus, " NPUs");
    return npus / tp;
}

} // namespace

Workload
turingNlg(long npus)
{
    TransformerConfig c;
    c.name = "Turing-NLG";
    c.numLayers = 78;
    c.hidden = 4256;
    c.seqLen = 1024;
    c.batchPerGroup = 8;
    c.strategy = {1, dpOf(npus, 1, "Turing-NLG")};
    return buildTransformer(c);
}

Workload
gpt3(long npus)
{
    TransformerConfig c;
    c.name = "GPT-3";
    c.numLayers = 96;
    c.hidden = 12288;
    c.seqLen = 2048;
    c.batchPerGroup = 32;
    c.strategy = {16, dpOf(npus, 16, "GPT-3")};
    return buildTransformer(c);
}

Workload
gpt3WithStrategy(long tp, long pp, long dp)
{
    TransformerConfig c;
    c.name = "GPT-3";
    c.numLayers = 96;
    c.hidden = 12288;
    c.seqLen = 2048;
    // Fixed global batch: the TP-16/DP-256 default processes 32
    // sequences per replica group, i.e. 8,192 sequences globally.
    const double globalBatch = 8192.0;
    c.batchPerGroup = globalBatch / static_cast<double>(dp);
    c.strategy = {tp, pp, dp};
    return buildTransformer(c);
}

Workload
msft1T(long npus)
{
    TransformerConfig c;
    c.name = "MSFT-1T";
    c.numLayers = 128;
    c.hidden = 25600;
    c.seqLen = 2048;
    c.batchPerGroup = 32;
    c.strategy = {128, dpOf(npus, 128, "MSFT-1T")};
    return buildTransformer(c);
}

Workload
msft1TWithStrategy(long tp, long dp)
{
    TransformerConfig c;
    c.name = "MSFT-1T";
    c.numLayers = 128;
    c.hidden = 25600;
    c.seqLen = 2048;
    // The co-design study (Fig. 21) varies HP-(tp, dp) at a fixed
    // *global* batch: each DP replica group then processes global/dp
    // sequences, so larger TP means bigger activation collectives —
    // the TP-vs-DP communication interplay the paper highlights. The
    // constant is chosen so the Table II default HP-(128, 32) matches
    // msft1T()'s 32 sequences per group.
    const double globalBatch = 1024.0;
    c.batchPerGroup = globalBatch / static_cast<double>(dp);
    c.strategy = {tp, dp};
    return buildTransformer(c);
}

Workload
dlrm(long npus)
{
    DlrmConfig c;
    c.npus = npus;
    return buildDlrm(c);
}

Workload
resnet50(long npus)
{
    ResnetConfig c;
    c.npus = npus;
    return buildResnet(c);
}

std::vector<Workload>
tableTwo(long npus)
{
    return {turingNlg(npus), gpt3(npus), msft1T(npus), dlrm(npus),
            resnet50(npus)};
}

} // namespace wl
} // namespace libra
