#include "workload/parser.hh"

#include <iomanip>
#include <istream>
#include <sstream>
#include <vector>

#include "common/logging.hh"

namespace libra {

namespace {

std::string
collectiveToken(CollectiveType t)
{
    switch (t) {
      case CollectiveType::AllReduce:
        return "ALLREDUCE";
      case CollectiveType::ReduceScatter:
        return "REDUCESCATTER";
      case CollectiveType::AllGather:
        return "ALLGATHER";
      case CollectiveType::AllToAll:
        return "ALLTOALL";
      case CollectiveType::PointToPoint:
        return "P2P";
    }
    panic("unknown collective type");
}

CollectiveType
parseCollective(const std::string& token, int line)
{
    if (token == "ALLREDUCE")
        return CollectiveType::AllReduce;
    if (token == "REDUCESCATTER")
        return CollectiveType::ReduceScatter;
    if (token == "ALLGATHER")
        return CollectiveType::AllGather;
    if (token == "ALLTOALL")
        return CollectiveType::AllToAll;
    if (token == "P2P")
        return CollectiveType::PointToPoint;
    fatal("workload line ", line, ": unknown collective '", token, "'");
}

CommScope
parseScope(const std::string& token, int line)
{
    if (token == "TP")
        return CommScope::Tp;
    if (token == "PP")
        return CommScope::Pp;
    if (token == "DP")
        return CommScope::Dp;
    if (token == "ALL")
        return CommScope::All;
    fatal("workload line ", line, ": unknown scope '", token, "'");
}

double
parseNumber(const std::string& token, int line, const char* what)
{
    try {
        std::size_t used = 0;
        double v = std::stod(token, &used);
        if (used != token.size())
            throw std::invalid_argument(token);
        return v;
    } catch (const std::exception&) {
        fatal("workload line ", line, ": bad ", what, " '", token, "'");
    }
}

} // namespace

Workload
parseWorkload(std::istream& in)
{
    Workload w;
    Layer* layer = nullptr;
    Layer current;
    bool sawWorkload = false;

    std::string rawLine;
    int lineNo = 0;
    while (std::getline(in, rawLine)) {
        ++lineNo;
        // Strip comments.
        auto hash = rawLine.find('#');
        if (hash != std::string::npos)
            rawLine.erase(hash);
        std::istringstream line(rawLine);
        std::string keyword;
        if (!(line >> keyword))
            continue; // Blank line.

        auto wantToken = [&](const char* what) {
            std::string t;
            if (!(line >> t))
                fatal("workload line ", lineNo, ": expected ", what);
            return t;
        };

        if (keyword == "WORKLOAD") {
            w.name = wantToken("workload name");
            sawWorkload = true;
        } else if (keyword == "PARAMS") {
            w.parameters =
                parseNumber(wantToken("parameter count"), lineNo,
                            "parameter count");
        } else if (keyword == "STRATEGY") {
            std::string key;
            while (line >> key) {
                long v = static_cast<long>(parseNumber(
                    wantToken("strategy size"), lineNo, "strategy size"));
                if (key == "TP")
                    w.strategy.tp = v;
                else if (key == "PP")
                    w.strategy.pp = v;
                else if (key == "DP")
                    w.strategy.dp = v;
                else
                    fatal("workload line ", lineNo,
                          ": unknown strategy key '", key, "'");
            }
        } else if (keyword == "LAYER") {
            if (layer)
                fatal("workload line ", lineNo,
                      ": LAYER inside LAYER (missing END?)");
            current = Layer{};
            current.name = wantToken("layer name");
            layer = &current;
        } else if (keyword == "END") {
            if (!layer)
                fatal("workload line ", lineNo, ": END without LAYER");
            w.layers.push_back(std::move(current));
            layer = nullptr;
        } else if (keyword == "FWD_COMPUTE" || keyword == "IG_COMPUTE" ||
                   keyword == "WG_COMPUTE") {
            if (!layer)
                fatal("workload line ", lineNo, ": ", keyword,
                      " outside LAYER");
            double v = parseNumber(wantToken("compute time"), lineNo,
                                   "compute time");
            if (keyword == "FWD_COMPUTE")
                layer->fwdCompute = v;
            else if (keyword == "IG_COMPUTE")
                layer->igCompute = v;
            else
                layer->wgCompute = v;
        } else if (keyword == "FWD_COMM" || keyword == "IG_COMM" ||
                   keyword == "WG_COMM") {
            if (!layer)
                fatal("workload line ", lineNo, ": ", keyword,
                      " outside LAYER");
            CommOp op;
            op.type =
                parseCollective(wantToken("collective type"), lineNo);
            op.scope = parseScope(wantToken("comm scope"), lineNo);
            op.size = parseNumber(wantToken("collective size"), lineNo,
                                  "collective size");
            if (keyword == "FWD_COMM")
                layer->fwdComm.push_back(op);
            else if (keyword == "IG_COMM")
                layer->igComm.push_back(op);
            else
                layer->wgComm.push_back(op);
        } else {
            fatal("workload line ", lineNo, ": unknown keyword '",
                  keyword, "'");
        }
    }
    if (layer)
        fatal("workload ended inside LAYER '", current.name, "'");
    if (!sawWorkload)
        fatal("workload text has no WORKLOAD header");
    if (w.layers.empty())
        fatal("workload '", w.name, "' has no layers");
    return w;
}

Workload
parseWorkloadString(const std::string& text)
{
    std::istringstream in(text);
    return parseWorkload(in);
}

std::string
serializeWorkload(const Workload& w)
{
    std::ostringstream out;
    out << std::setprecision(17);
    out << "WORKLOAD " << w.name << "\n";
    out << "PARAMS " << w.parameters << "\n";
    out << "STRATEGY TP " << w.strategy.tp << " PP " << w.strategy.pp
        << " DP " << w.strategy.dp << "\n";
    for (const auto& layer : w.layers) {
        out << "LAYER " << layer.name << "\n";
        out << "  FWD_COMPUTE " << layer.fwdCompute << "\n";
        out << "  IG_COMPUTE " << layer.igCompute << "\n";
        out << "  WG_COMPUTE " << layer.wgCompute << "\n";
        auto emit = [&out](const char* phase,
                           const std::vector<CommOp>& ops) {
            for (const auto& op : ops) {
                out << "  " << phase << " " << collectiveToken(op.type)
                    << " " << commScopeName(op.scope) << " " << op.size
                    << "\n";
            }
        };
        emit("FWD_COMM", layer.fwdComm);
        emit("IG_COMM", layer.igComm);
        emit("WG_COMM", layer.wgComm);
        out << "END\n";
    }
    return out.str();
}

} // namespace libra
