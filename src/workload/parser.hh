/**
 * @file
 * Text-format workload parser/serializer (the "Workload Parser" input
 * stage of the paper's Fig. 3 architecture).
 *
 * The format is line-oriented, ASTRA-sim-inspired:
 *
 *     # comments and blank lines are ignored
 *     WORKLOAD GPT-3
 *     PARAMS 1.75e11
 *     STRATEGY TP 16 PP 1 DP 256
 *     LAYER decoder-0
 *       FWD_COMPUTE 0.019
 *       IG_COMPUTE 0.019
 *       WG_COMPUTE 0.019
 *       FWD_COMM ALLREDUCE TP 3.36e9
 *       IG_COMM  ALLREDUCE TP 3.36e9
 *       WG_COMM  REDUCESCATTER DP 2.26e8
 *       WG_COMM  ALLGATHER DP 2.26e8
 *     END
 *
 * Collective tokens: ALLREDUCE, REDUCESCATTER, ALLGATHER, ALLTOALL,
 * P2P. Scope tokens: TP, PP, DP, ALL. Compute times are seconds;
 * collective sizes are bytes.
 */

#ifndef LIBRA_WORKLOAD_PARSER_HH
#define LIBRA_WORKLOAD_PARSER_HH

#include <iosfwd>
#include <string>

#include "workload/workload.hh"

namespace libra {

/**
 * Parse a workload from text.
 * @throws FatalError with a line number on malformed input.
 */
Workload parseWorkload(std::istream& in);

/** Convenience overload over a string. */
Workload parseWorkloadString(const std::string& text);

/** Serialize a workload to the same text format (round-trippable). */
std::string serializeWorkload(const Workload& w);

} // namespace libra

#endif // LIBRA_WORKLOAD_PARSER_HH
