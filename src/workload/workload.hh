/**
 * @file
 * Workload intermediate representation.
 *
 * A workload is a list of layers; each layer carries three phases in the
 * style of the paper's training loop (Fig. 5): forward (compute + comm),
 * input-gradient / TP backward (compute + comm), and weight-gradient / DP
 * backward (compute + comm). Communication is a list of collectives with
 * a *scope* — the communicator group they run over — resolved against a
 * concrete network and parallelization at estimation time.
 */

#ifndef LIBRA_WORKLOAD_WORKLOAD_HH
#define LIBRA_WORKLOAD_WORKLOAD_HH

#include <string>
#include <vector>

#include "collective/multi_rail.hh"
#include "common/units.hh"

namespace libra {

/** Communicator group a collective runs over. */
enum class CommScope
{
    Tp,  ///< The tensor-parallel group (innermost ranks).
    Pp,  ///< The pipeline-parallel group (stride = TP size).
    Dp,  ///< The data-parallel group (stride = TP*PP size).
    All, ///< Every NPU in the system (e.g. DLRM embedding All-to-All).
};

/** Human-readable scope name. */
std::string commScopeName(CommScope scope);

/** One collective issued by a layer phase. */
struct CommOp
{
    CollectiveType type = CollectiveType::AllReduce;
    CommScope scope = CommScope::Dp;
    Bytes size = 0.0;
};

/** One model layer with per-phase compute times and collectives. */
struct Layer
{
    std::string name;

    Seconds fwdCompute = 0.0; ///< Forward pass compute.
    Seconds igCompute = 0.0;  ///< Input-gradient (TP backward) compute.
    Seconds wgCompute = 0.0;  ///< Weight-gradient (DP backward) compute.

    std::vector<CommOp> fwdComm; ///< Forward-pass collectives.
    std::vector<CommOp> igComm;  ///< TP backward collectives.
    std::vector<CommOp> wgComm;  ///< DP gradient-sync collectives.
};

/**
 * Hybrid parallelization strategy HP-(tp, pp, dp): the model is sharded
 * tp-way (consecutive ranks), cut into pp pipeline stages above that,
 * and the dataset is split dp-way at the top. Plain HP-(tp, dp) is the
 * pp == 1 special case.
 */
struct Parallelization
{
    long tp = 1;
    long pp = 1;
    long dp = 1;

    Parallelization() = default;
    Parallelization(long tp_size, long dp_size)
        : tp(tp_size), dp(dp_size)
    {}
    Parallelization(long tp_size, long pp_size, long dp_size)
        : tp(tp_size), pp(pp_size), dp(dp_size)
    {}

    long npus() const { return tp * pp * dp; }
    std::string name() const;
};

/** A full training workload. */
struct Workload
{
    std::string name;
    double parameters = 0.0; ///< Total model parameter count.
    Parallelization strategy;
    std::vector<Layer> layers;

    /** Sum of compute seconds over all layers and phases. */
    Seconds totalCompute() const;

    /** Sum of collective payload bytes over all layers and phases. */
    Bytes totalCommPayload() const;

    /** All comm ops of a layer across the three phases. */
    static std::vector<CommOp> allOps(const Layer& layer);
};

/**
 * Append a canonical, collision-safe text form of @p w to @p out:
 * every content field (name, parameters, strategy, per-layer compute
 * and collectives) in a fixed order, with length-prefixed strings and
 * shortest round-trip doubles. This is the single source of truth for
 * workload content identity — the study result cache keys on it, and
 * deep equality (workloadsEqual) is defined as equal canonical text —
 * so a new result-relevant Workload/Layer/CommOp field must be added
 * here (and only here) to reach both.
 */
void appendCanonicalText(std::string& out, const Workload& w);

/** Deep content equality via canonical text. */
bool workloadsEqual(const Workload& a, const Workload& b);

} // namespace libra

#endif // LIBRA_WORKLOAD_WORKLOAD_HH
