#include "workload/dlrm.hh"

#include "common/logging.hh"

namespace libra {

Workload
buildDlrm(const DlrmConfig& config)
{
    if (config.npus < 2)
        fatal("DLRM needs at least 2 NPUs, got ", config.npus);

    Workload w;
    w.name = config.name;
    w.parameters = config.mlpParameters;
    // MLPs are data-parallel across every NPU; embeddings are
    // model-parallel "across all NPUs" (Table II), exercised via the
    // All-scope All-to-All.
    w.strategy = {1, config.npus};

    // Embedding exchange: each NPU contributes one embedding vector per
    // table per sample, FP16.
    const Bytes a2aBytes = config.batchPerNpu * config.numTables *
                           config.embeddingDim * kFp16Bytes;

    Layer emb;
    emb.name = "embedding";
    // Lookup cost is memory-bound and tiny; model as zero compute.
    emb.fwdComm.push_back(
        {CollectiveType::AllToAll, CommScope::All, a2aBytes});
    emb.igComm.push_back(
        {CollectiveType::AllToAll, CommScope::All, a2aBytes});
    w.layers.push_back(std::move(emb));

    const double paramsPerLayer =
        config.mlpParameters / config.numMlpLayers;
    const Bytes gradBytes = paramsPerLayer * kFp16Bytes;
    const double fwdFlops = 2.0 * paramsPerLayer * config.batchPerNpu;
    const Seconds fwdT = computeTime(fwdFlops, config.effectiveTflops);

    for (int l = 0; l < config.numMlpLayers; ++l) {
        Layer layer;
        layer.name = "mlp-" + std::to_string(l);
        layer.fwdCompute = fwdT;
        layer.igCompute = fwdT;
        layer.wgCompute = fwdT;
        layer.wgComm.push_back(
            {CollectiveType::AllReduce, CommScope::Dp, gradBytes});
        w.layers.push_back(std::move(layer));
    }
    return w;
}

} // namespace libra
