/**
 * @file
 * Analytical transformer-LLM workload builder.
 *
 * Generates per-layer compute times and collective sizes for a decoder
 * transformer trained with Megatron-style tensor parallelism [45] plus
 * ZeRO-2 data parallelism [43]:
 *
 *  - Each transformer layer holds ~12 h^2 parameters (attention 4 h^2,
 *    MLP 8 h^2).
 *  - Megatron TP: 2 activation All-Reduces of b*s*h elements per layer in
 *    the forward pass and 2 more in the backward pass (TP group).
 *  - ZeRO-2 DP: per layer, a gradient Reduce-Scatter plus a parameter
 *    All-Gather of params/tp elements (DP group).
 *  - Compute: 2 FLOPs per parameter per token forward; backward is 2x
 *    forward, split evenly between input-grad and weight-grad phases.
 */

#ifndef LIBRA_WORKLOAD_TRANSFORMER_HH
#define LIBRA_WORKLOAD_TRANSFORMER_HH

#include "workload/workload.hh"

namespace libra {

/** Hyper-parameters of a decoder-transformer training job. */
struct TransformerConfig
{
    std::string name = "transformer";
    int numLayers = 24;
    double hidden = 1024;       ///< Model (hidden) dimension h.
    double seqLen = 1024;       ///< Tokens per sequence s.
    double batchPerGroup = 32;  ///< Sequences per DP replica group b.
    Parallelization strategy;
    double effectiveTflops = 234.0; ///< A100 at 75% efficacy (paper §V-B).

    /**
     * Microbatches per iteration when pipeline parallelism is used
     * (strategy.pp > 1). The GPipe-style bubble inflates compute by
     * 1 + (pp-1)/microbatches, and each stage boundary moves the whole
     * batch's activations point-to-point, once forward and once
     * backward (paper §IV-C's PP extension).
     */
    double microbatches = 8;

    /** Approximate parameter count: layers * 12 h^2. */
    double parameters() const { return numLayers * 12.0 * hidden * hidden; }
};

/**
 * Build the workload IR for @p config.
 * @throws FatalError when TP/DP sizes are invalid.
 */
Workload buildTransformer(const TransformerConfig& config);

} // namespace libra

#endif // LIBRA_WORKLOAD_TRANSFORMER_HH
