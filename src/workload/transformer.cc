#include "workload/transformer.hh"

#include "common/logging.hh"

namespace libra {

Workload
buildTransformer(const TransformerConfig& config)
{
    const long tp = config.strategy.tp;
    const long pp = config.strategy.pp;
    const long dp = config.strategy.dp;
    if (tp < 1 || pp < 1 || dp < 1)
        fatal("invalid parallelization ", config.strategy.name());
    if (config.numLayers % pp != 0) {
        fatal(config.name, ": ", config.numLayers,
              " layers do not split into ", pp, " pipeline stages");
    }

    Workload w;
    w.name = config.name;
    w.parameters = config.parameters();
    w.strategy = config.strategy;

    const double h = config.hidden;
    const double paramsPerLayer = 12.0 * h * h;
    const double tokens = config.batchPerGroup * config.seqLen;

    // GPipe-style pipeline bubble: the exposed fraction of the pipeline
    // fill/drain, amortized over the microbatches.
    const double bubble =
        pp > 1 ? 1.0 + static_cast<double>(pp - 1) / config.microbatches
               : 1.0;

    // Forward matmul FLOPs per layer per NPU: 2 per param per token,
    // sharded tp-way; inflated by the pipeline bubble.
    const double fwdFlops =
        2.0 * paramsPerLayer * tokens / static_cast<double>(tp);
    const Seconds fwdT =
        computeTime(fwdFlops, config.effectiveTflops) * bubble;

    // Megatron activation All-Reduce payload: b*s*h elements, FP16.
    const Bytes actBytes = tokens * h * kFp16Bytes;

    // ZeRO-2 gradient RS / parameter AG payload per layer per DP rank.
    const Bytes gradBytes =
        paramsPerLayer / static_cast<double>(tp) * kFp16Bytes;

    // With PP, each NPU hosts one stage's worth of layers; the IR lists
    // the layers a single NPU executes per iteration.
    const int layersPerStage = config.numLayers / static_cast<int>(pp);

    for (int l = 0; l < layersPerStage; ++l) {
        Layer layer;
        layer.name = "decoder-" + std::to_string(l);
        layer.fwdCompute = fwdT;
        // Backward = 2x forward, split between input-grad and weight-grad.
        layer.igCompute = fwdT;
        layer.wgCompute = fwdT;

        if (tp > 1) {
            // Megatron f/g conjugate operators: 2 ARs forward, 2 backward.
            for (int i = 0; i < 2; ++i) {
                layer.fwdComm.push_back({CollectiveType::AllReduce,
                                         CommScope::Tp, actBytes});
                layer.igComm.push_back({CollectiveType::AllReduce,
                                        CommScope::Tp, actBytes});
            }
        }
        if (pp > 1 && l == layersPerStage - 1) {
            // Stage boundary: the whole batch's activations hop to the
            // next stage forward, gradients hop back in the backward.
            layer.fwdComm.push_back({CollectiveType::PointToPoint,
                                     CommScope::Pp, actBytes});
            layer.igComm.push_back({CollectiveType::PointToPoint,
                                    CommScope::Pp, actBytes});
        }
        if (dp > 1) {
            layer.wgComm.push_back({CollectiveType::ReduceScatter,
                                    CommScope::Dp, gradBytes});
            layer.wgComm.push_back({CollectiveType::AllGather,
                                    CommScope::Dp, gradBytes});
        }
        w.layers.push_back(std::move(layer));
    }
    return w;
}

} // namespace libra
