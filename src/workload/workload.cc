#include "workload/workload.hh"

#include "common/json.hh"
#include "common/logging.hh"

namespace libra {

std::string
commScopeName(CommScope scope)
{
    switch (scope) {
      case CommScope::Tp:
        return "TP";
      case CommScope::Pp:
        return "PP";
      case CommScope::Dp:
        return "DP";
      case CommScope::All:
        return "ALL";
    }
    panic("unknown comm scope");
}

std::string
Parallelization::name() const
{
    if (pp == 1) {
        return "HP-(" + std::to_string(tp) + ", " + std::to_string(dp) +
               ")";
    }
    return "HP-(" + std::to_string(tp) + ", " + std::to_string(pp) +
           ", " + std::to_string(dp) + ")";
}

Seconds
Workload::totalCompute() const
{
    Seconds t = 0.0;
    for (const auto& l : layers)
        t += l.fwdCompute + l.igCompute + l.wgCompute;
    return t;
}

Bytes
Workload::totalCommPayload() const
{
    Bytes b = 0.0;
    for (const auto& l : layers)
        for (const auto& op : allOps(l))
            b += op.size;
    return b;
}

std::vector<CommOp>
Workload::allOps(const Layer& layer)
{
    std::vector<CommOp> ops;
    ops.insert(ops.end(), layer.fwdComm.begin(), layer.fwdComm.end());
    ops.insert(ops.end(), layer.igComm.begin(), layer.igComm.end());
    ops.insert(ops.end(), layer.wgComm.begin(), layer.wgComm.end());
    return ops;
}

namespace {

void
appendOps(std::string& out, const std::vector<CommOp>& ops)
{
    out += std::to_string(ops.size());
    out += '[';
    for (const auto& op : ops) {
        out += std::to_string(static_cast<int>(op.type));
        out += ',';
        out += std::to_string(static_cast<int>(op.scope));
        out += ',';
        appendCanonicalNumber(out, op.size);
    }
    out += ']';
}

} // namespace

void
appendCanonicalText(std::string& out, const Workload& w)
{
    appendCanonicalString(out, w.name);
    appendCanonicalNumber(out, w.parameters);
    out += "hp(";
    out += std::to_string(w.strategy.tp);
    out += ',';
    out += std::to_string(w.strategy.pp);
    out += ',';
    out += std::to_string(w.strategy.dp);
    out += ") ";
    out += std::to_string(w.layers.size());
    out += "layers ";
    for (const auto& layer : w.layers) {
        appendCanonicalString(out, layer.name);
        appendCanonicalNumber(out, layer.fwdCompute);
        appendCanonicalNumber(out, layer.igCompute);
        appendCanonicalNumber(out, layer.wgCompute);
        appendOps(out, layer.fwdComm);
        appendOps(out, layer.igComm);
        appendOps(out, layer.wgComm);
    }
}

bool
workloadsEqual(const Workload& a, const Workload& b)
{
    // Canonical text is injective on content (length-prefixed strings,
    // shortest round-trip doubles), so text equality is deep equality.
    std::string ta, tb;
    appendCanonicalText(ta, a);
    appendCanonicalText(tb, b);
    return ta == tb;
}

} // namespace libra
