#include "workload/workload.hh"

#include "common/logging.hh"

namespace libra {

std::string
commScopeName(CommScope scope)
{
    switch (scope) {
      case CommScope::Tp:
        return "TP";
      case CommScope::Pp:
        return "PP";
      case CommScope::Dp:
        return "DP";
      case CommScope::All:
        return "ALL";
    }
    panic("unknown comm scope");
}

std::string
Parallelization::name() const
{
    if (pp == 1) {
        return "HP-(" + std::to_string(tp) + ", " + std::to_string(dp) +
               ")";
    }
    return "HP-(" + std::to_string(tp) + ", " + std::to_string(pp) +
           ", " + std::to_string(dp) + ")";
}

Seconds
Workload::totalCompute() const
{
    Seconds t = 0.0;
    for (const auto& l : layers)
        t += l.fwdCompute + l.igCompute + l.wgCompute;
    return t;
}

Bytes
Workload::totalCommPayload() const
{
    Bytes b = 0.0;
    for (const auto& l : layers)
        for (const auto& op : allOps(l))
            b += op.size;
    return b;
}

std::vector<CommOp>
Workload::allOps(const Layer& layer)
{
    std::vector<CommOp> ops;
    ops.insert(ops.end(), layer.fwdComm.begin(), layer.fwdComm.end());
    ops.insert(ops.end(), layer.igComm.begin(), layer.igComm.end());
    ops.insert(ops.end(), layer.wgComm.begin(), layer.wgComm.end());
    return ops;
}

} // namespace libra
