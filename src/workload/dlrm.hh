/**
 * @file
 * Analytical DLRM workload builder [14].
 *
 * DLRM training combines:
 *  - embedding-table lookups sharded across *all* NPUs, exchanged with an
 *    All-to-All in the forward pass and another in the backward pass;
 *  - bottom/top MLP stacks (the paper's Table II counts MLP layers only:
 *    57M parameters) replicated data-parallel across all NPUs, with
 *    per-layer gradient All-Reduce.
 */

#ifndef LIBRA_WORKLOAD_DLRM_HH
#define LIBRA_WORKLOAD_DLRM_HH

#include "workload/workload.hh"

namespace libra {

/** Hyper-parameters of a DLRM training job. */
struct DlrmConfig
{
    std::string name = "DLRM";
    double mlpParameters = 57e6; ///< MLP parameters (Table II).
    int numMlpLayers = 8;        ///< Bottom (3) + top (5) MLP stacks.
    double batchPerNpu = 512;    ///< Samples per NPU per iteration.
    double numTables = 64;       ///< Embedding tables contributing to A2A.
    double embeddingDim = 128;   ///< Embedding vector width.
    long npus = 4096;            ///< System size (DP across all NPUs).
    double effectiveTflops = 234.0;
};

/** Build the workload IR for @p config. */
Workload buildDlrm(const DlrmConfig& config);

} // namespace libra

#endif // LIBRA_WORKLOAD_DLRM_HH
