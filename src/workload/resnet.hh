/**
 * @file
 * Analytical ResNet-50 workload builder [62].
 *
 * Vision training is pure data parallelism (Table II: TP size 1). The
 * builder approximates the ResNet-50 stage structure — four residual
 * stages of increasing width plus stem and classifier — distributing the
 * 25.6M parameters and ~4 GFLOPs/image forward cost across stages in
 * realistic proportions, and issues a per-layer gradient All-Reduce over
 * the DP group.
 */

#ifndef LIBRA_WORKLOAD_RESNET_HH
#define LIBRA_WORKLOAD_RESNET_HH

#include "workload/workload.hh"

namespace libra {

/** Hyper-parameters of a ResNet-50 training job. */
struct ResnetConfig
{
    std::string name = "ResNet-50";
    double parameters = 25.6e6;
    double flopsPerImage = 4.1e9; ///< Forward FLOPs per image.
    double batchPerNpu = 32;
    long npus = 4096;             ///< DP across all NPUs.
    double effectiveTflops = 234.0;
};

/** Build the workload IR for @p config. */
Workload buildResnet(const ResnetConfig& config);

} // namespace libra

#endif // LIBRA_WORKLOAD_RESNET_HH
