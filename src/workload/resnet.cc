#include "workload/resnet.hh"

#include "common/logging.hh"

namespace libra {

namespace {

/** One ResNet-50 stage: share of params, share of FLOPs, block count. */
struct StageShape
{
    const char* name;
    double paramShare;
    double flopShare;
    int blocks;
};

// Approximate ResNet-50 proportions: early stages are FLOP-heavy on
// large feature maps; late stages hold most of the parameters.
constexpr StageShape kStages[] = {
    {"stem", 0.01, 0.10, 1},  {"conv2", 0.05, 0.20, 3},
    {"conv3", 0.12, 0.25, 4}, {"conv4", 0.35, 0.30, 6},
    {"conv5", 0.39, 0.13, 3}, {"fc", 0.08, 0.02, 1},
};

} // namespace

Workload
buildResnet(const ResnetConfig& config)
{
    if (config.npus < 2)
        fatal("ResNet DP needs at least 2 NPUs, got ", config.npus);

    Workload w;
    w.name = config.name;
    w.parameters = config.parameters;
    w.strategy = {1, config.npus};

    for (const auto& stage : kStages) {
        const double stageParams = config.parameters * stage.paramShare;
        const double stageFwdFlops = config.flopsPerImage *
                                     stage.flopShare * config.batchPerNpu;
        for (int b = 0; b < stage.blocks; ++b) {
            Layer layer;
            layer.name =
                std::string(stage.name) + "-" + std::to_string(b);
            const Seconds fwdT = computeTime(stageFwdFlops / stage.blocks,
                                             config.effectiveTflops);
            layer.fwdCompute = fwdT;
            layer.igCompute = fwdT;
            layer.wgCompute = fwdT;
            layer.wgComm.push_back(
                {CollectiveType::AllReduce, CommScope::Dp,
                 stageParams / stage.blocks * kFp16Bytes});
            w.layers.push_back(std::move(layer));
        }
    }
    return w;
}

} // namespace libra
