/**
 * @file
 * Workload zoo: the five Table II evaluation workloads, parameterized by
 * system size. TP sizes follow Table II (Turing-NLG 1, GPT-3 16,
 * MSFT-1T 128, DLRM across all NPUs, ResNet-50 1); the remaining NPUs
 * form the DP group.
 */

#ifndef LIBRA_WORKLOAD_ZOO_HH
#define LIBRA_WORKLOAD_ZOO_HH

#include <vector>

#include "workload/workload.hh"

namespace libra {
namespace wl {

/** Turing-NLG: 17B params, 78 layers, hidden 4256, TP-1. */
Workload turingNlg(long npus);

/** GPT-3: 175B params, 96 layers, hidden 12288, TP-16. */
Workload gpt3(long npus);

/**
 * GPT-3 with an explicit HP-(tp, pp, dp) strategy — exercises the
 * pipeline-parallel extension (paper §IV-C). Global batch is held at
 * the TP-16/DP-256 default so strategies are comparable.
 */
Workload gpt3WithStrategy(long tp, long pp, long dp);

/** MSFT-1T: 1T params, 128 layers, hidden 25600, TP-128. */
Workload msft1T(long npus);

/**
 * MSFT-1T with an explicit HP-(tp, dp) strategy — the co-optimization
 * study of Fig. 21 (assumes extended memory, e.g. CXL, so any TP works).
 */
Workload msft1TWithStrategy(long tp, long dp);

/** DLRM: 57M MLP params, embedding All-to-All across all NPUs. */
Workload dlrm(long npus);

/** ResNet-50: 25.6M params, pure DP. */
Workload resnet50(long npus);

/** All Table II workloads in paper order. */
std::vector<Workload> tableTwo(long npus);

} // namespace wl
} // namespace libra

#endif // LIBRA_WORKLOAD_ZOO_HH
