#include "runtime/graph.hh"

#include "common/logging.hh"

namespace libra {

TopologyGraph::TopologyGraph(const Network& net, const BwConfig& bw)
{
    if (bw.size() != net.numDims())
        panic("bw rank ", bw.size(), " != dims ", net.numDims());
    numNodes_ = net.npus();
    out_.resize(static_cast<std::size_t>(numNodes_));
    for (std::size_t d = 0; d < net.numDims(); ++d)
        expandDim(net, d, bw[d]);
}

void
TopologyGraph::expandDim(const Network& net, std::size_t d, GBps bw)
{
    const long stride = net.prefixProduct(d);
    const int g = net.dim(d).size;
    const UnitTopology type = net.dim(d).type;

    // Shared uplink/downlink ids for switch dims, per (npu, dim).
    std::vector<long> egressId(static_cast<std::size_t>(numNodes_), -1);
    std::vector<long> ingressId(static_cast<std::size_t>(numNodes_), -1);

    auto addLink = [&](long src, long dst, GBps link_bw) {
        GraphLink link;
        link.src = src;
        link.dst = dst;
        link.dim = d;
        link.bw = link_bw;
        if (type == UnitTopology::Switch) {
            auto s = static_cast<std::size_t>(src);
            auto t = static_cast<std::size_t>(dst);
            if (egressId[s] < 0)
                egressId[s] = nextSharedGroup_++;
            if (ingressId[t] < 0)
                ingressId[t] = nextSharedGroup_++;
            link.egressGroup = egressId[s];
            link.ingressGroup = ingressId[t];
        }
        out_[static_cast<std::size_t>(src)].push_back(links_.size());
        links_.push_back(link);
    };

    std::vector<bool> seen(static_cast<std::size_t>(numNodes_), false);
    for (long id = 0; id < numNodes_; ++id) {
        if (seen[static_cast<std::size_t>(id)])
            continue;
        auto coords = net.coordsOf(id);
        long base = id - coords[d] * stride;
        std::vector<long> group;
        for (int j = 0; j < g; ++j) {
            long member = base + j * stride;
            group.push_back(member);
            seen[static_cast<std::size_t>(member)] = true;
        }
        switch (type) {
          case UnitTopology::Ring:
            for (int j = 0; j < g; ++j) {
                long next = group[static_cast<std::size_t>((j + 1) % g)];
                long cur = group[static_cast<std::size_t>(j)];
                if (g == 2) {
                    // A 2-ring degenerates to one full-BW wire pair.
                    addLink(cur, next, bw);
                } else {
                    addLink(cur, next, bw / 2.0);
                    addLink(next, cur, bw / 2.0);
                }
            }
            break;
          case UnitTopology::FullyConnected:
            for (int a = 0; a < g; ++a)
                for (int b = 0; b < g; ++b) {
                    if (a == b)
                        continue;
                    addLink(group[static_cast<std::size_t>(a)],
                            group[static_cast<std::size_t>(b)],
                            bw / static_cast<double>(g - 1));
                }
            break;
          case UnitTopology::Switch:
            for (int a = 0; a < g; ++a)
                for (int b = 0; b < g; ++b) {
                    if (a == b)
                        continue;
                    addLink(group[static_cast<std::size_t>(a)],
                            group[static_cast<std::size_t>(b)], bw);
                }
            break;
        }
    }
}

const std::vector<std::size_t>&
TopologyGraph::outLinks(long npu) const
{
    return out_.at(static_cast<std::size_t>(npu));
}

} // namespace libra
