#include "runtime/themis.hh"

namespace libra {

CollectiveTiming
themisCollectiveTiming(std::size_t num_dims, CollectiveType type,
                       Bytes size, const std::vector<DimSpan>& spans,
                       const BwConfig& bw, int chunks)
{
    CollectiveTiming timing;
    if (spans.empty())
        return timing;

    ChunkTimeline timeline(num_dims, bw);
    CollectiveJob job;
    job.type = type;
    job.size = size;
    job.spans = spans;
    job.numChunks = chunks;
    job.policy = SchedulePolicy::Greedy;
    TimelineResult result = timeline.run({job});

    // Themis rebalances only when it helps: on allocations that are
    // already matched to the traffic profile, the canonical ascending
    // order is optimal and the scheduler keeps it.
    job.policy = SchedulePolicy::FixedAscending;
    TimelineResult fixed = timeline.run({job});
    if (fixed.makespan < result.makespan)
        result = fixed;

    timing.time = result.makespan;
    timing.trafficPerDim.assign(spans.size(), 0.0);
    timing.timePerDim.assign(spans.size(), 0.0);
    for (std::size_t s = 0; s < spans.size(); ++s) {
        std::size_t d = spans[s].dim;
        timing.timePerDim[s] = result.dimBusy[d];
        timing.trafficPerDim[s] =
            result.dimBusy[d] * bw[d] * kGiga;
    }
    // Bottleneck = the busiest spanned dimension.
    std::size_t arg = 0;
    for (std::size_t s = 1; s < spans.size(); ++s) {
        if (timing.timePerDim[s] > timing.timePerDim[arg])
            arg = s;
    }
    timing.bottleneckSpan = arg;
    return timing;
}

CommTimeFn
makeThemisCommTimeFn(std::size_t num_dims, int chunks)
{
    return [num_dims, chunks](CollectiveType type, Bytes size,
                              const std::vector<DimSpan>& spans,
                              const BwConfig& bw, bool /*in_network*/) {
        return themisCollectiveTiming(num_dims, type, size, spans, bw,
                                      chunks);
    };
}

} // namespace libra
