/**
 * @file
 * NPU-level link graph of a multi-dimensional network.
 *
 * Expands each dimension's unit topology into directed point-to-point
 * links for link-level algorithms (the TACOS synthesizer):
 *
 *  - Ring: two directed neighbour links per NPU, each at B/2.
 *  - FullyConnected: links to all group peers, each at B/(g-1).
 *  - Switch: modeled as a non-blocking crossbar — any-to-any links at
 *    the full dimension bandwidth B, but each NPU can drive only one
 *    send and one receive at a time through its uplink (enforced via
 *    the shared egress/ingress id carried on the link).
 */

#ifndef LIBRA_RUNTIME_GRAPH_HH
#define LIBRA_RUNTIME_GRAPH_HH

#include <cstddef>
#include <vector>

#include "common/units.hh"
#include "topology/network.hh"

namespace libra {

/** One directed link of the expanded graph. */
struct GraphLink
{
    long src = 0;
    long dst = 0;
    std::size_t dim = 0;
    GBps bw = 0.0;
    /**
     * Shared-resource ids, or -1 when the link is a dedicated wire.
     * Switch links share their NPU's single uplink/downlink.
     */
    long egressGroup = -1;
    long ingressGroup = -1;
};

/** Expanded directed-link view of a network. */
class TopologyGraph
{
  public:
    TopologyGraph(const Network& net, const BwConfig& bw);

    long numNodes() const { return numNodes_; }
    const std::vector<GraphLink>& links() const { return links_; }

    /** Indices into links() leaving @p npu. */
    const std::vector<std::size_t>& outLinks(long npu) const;

    /** Number of shared egress/ingress resources allocated. */
    long numSharedGroups() const { return nextSharedGroup_; }

  private:
    void expandDim(const Network& net, std::size_t d, GBps bw);

    long numNodes_ = 0;
    long nextSharedGroup_ = 0;
    std::vector<GraphLink> links_;
    std::vector<std::vector<std::size_t>> out_;
};

} // namespace libra

#endif // LIBRA_RUNTIME_GRAPH_HH
