/**
 * @file
 * Themis-style runtime collective scheduler [39] (paper §VI-D).
 *
 * Themis raises network utilization by scheduling chunks across the
 * dimensions of a multi-dimensional network greedily instead of in the
 * fixed ascending multi-rail order: a chunk's next Reduce-Scatter stage
 * goes to the dimension that finishes it earliest (the All-Gather phase
 * mirrors each chunk's RS order). Since earlier stages carry larger,
 * less-reduced payloads, reordering shifts load toward whichever
 * dimensions have spare bandwidth — recovering utilization on networks
 * whose BW split is imbalanced for the workload.
 *
 * The scheduler itself lives in ChunkTimeline (SchedulePolicy::Greedy);
 * this header packages it as a CommTimeFn so the TrainingEstimator can
 * estimate end-to-end training with Themis enabled (Fig. 19). Like the
 * real scheduler, it never does worse than the canonical ascending
 * order: per collective it keeps the better of the greedy and fixed
 * schedules.
 */

#ifndef LIBRA_RUNTIME_THEMIS_HH
#define LIBRA_RUNTIME_THEMIS_HH

#include "core/estimator.hh"
#include "sim/chunk_timeline.hh"

namespace libra {

/**
 * Collective time under the greedy Themis scheduler.
 *
 * @param num_dims Total network dimensions (for the timeline).
 * @param chunks   Chunks per collective (paper default: 64).
 */
CollectiveTiming themisCollectiveTiming(std::size_t num_dims,
                                        CollectiveType type, Bytes size,
                                        const std::vector<DimSpan>& spans,
                                        const BwConfig& bw, int chunks);

/**
 * A CommTimeFn plugging Themis timing into TrainingEstimator.
 * Capture-free of external state besides @p num_dims and @p chunks.
 */
CommTimeFn makeThemisCommTimeFn(std::size_t num_dims, int chunks = 64);

} // namespace libra

#endif // LIBRA_RUNTIME_THEMIS_HH
