#include "runtime/tacos.hh"

#include <algorithm>
#include <queue>

#include "common/logging.hh"

namespace libra {

TacosSynthesizer::TacosSynthesizer(const Network& net, const BwConfig& bw,
                                   Seconds link_latency)
    : net_(net), graph_(net, bw), latency_(link_latency)
{}

TacosResult
TacosSynthesizer::synthesizeAllGather(Bytes chunk_bytes,
                                      int chunks_per_npu) const
{
    const long n = graph_.numNodes();
    const long numChunks = n * chunks_per_npu;
    const auto& links = graph_.links();

    // Ownership and in-flight state.
    std::vector<std::vector<char>> owned(
        static_cast<std::size_t>(n),
        std::vector<char>(static_cast<std::size_t>(numChunks), 0));
    std::vector<std::vector<char>> inflight = owned;
    std::vector<long> ownerCount(static_cast<std::size_t>(numChunks), 0);
    long remaining = numChunks * n; // Chunk-at-node pairs still missing.

    for (long npu = 0; npu < n; ++npu) {
        for (int c = 0; c < chunks_per_npu; ++c) {
            long chunk = npu * chunks_per_npu + c;
            owned[static_cast<std::size_t>(npu)]
                 [static_cast<std::size_t>(chunk)] = 1;
            ownerCount[static_cast<std::size_t>(chunk)] = 1;
            --remaining;
        }
    }

    std::vector<Seconds> linkFree(links.size(), 0.0);
    std::vector<Seconds> sharedFree(
        static_cast<std::size_t>(graph_.numSharedGroups()), 0.0);

    // Fast-region precomputation. A link of dimension d should only
    // carry chunks that genuinely need to cross d: once one copy exists
    // anywhere in the sub-network reachable from the destination via
    // *strictly faster* dimensions, those wires spread it locally at a
    // fraction of the cost and another d-crossing is pure waste. The
    // region of (node, d) is therefore every node whose coordinates
    // match on all dimensions that are not faster than d. This is what
    // keeps greedy synthesis efficient on skewed (LIBRA-optimized)
    // allocations, where slow wires must be reserved for irreducible
    // crossing traffic.
    const std::size_t numDims = net_.numDims();
    std::vector<GBps> dimLinkBw(numDims, 0.0);
    for (const auto& link : links)
        dimLinkBw[link.dim] = std::max(dimLinkBw[link.dim], link.bw);

    // region[d][node] = nodes reachable from node via dims faster than d
    // (excluding the node itself).
    std::vector<std::vector<std::vector<long>>> region(
        numDims, std::vector<std::vector<long>>(
                     static_cast<std::size_t>(n)));
    for (std::size_t d = 0; d < numDims; ++d) {
        std::vector<bool> faster(numDims, false);
        for (std::size_t d2 = 0; d2 < numDims; ++d2)
            faster[d2] = dimLinkBw[d2] > dimLinkBw[d] * 1.001;
        for (long node = 0; node < n; ++node) {
            auto base = net_.coordsOf(node);
            for (long other = 0; other < n; ++other) {
                if (other == node)
                    continue;
                auto coords = net_.coordsOf(other);
                bool inRegion = true;
                for (std::size_t d2 = 0; d2 < numDims; ++d2) {
                    if (!faster[d2] && coords[d2] != base[d2]) {
                        inRegion = false;
                        break;
                    }
                }
                if (inRegion)
                    region[d][static_cast<std::size_t>(node)].push_back(
                        other);
            }
        }
    }

    // Links indexed by shared ingress group, to re-arm blocked senders.
    std::vector<std::vector<std::size_t>> byIngress(
        static_cast<std::size_t>(graph_.numSharedGroups()));
    for (std::size_t li = 0; li < links.size(); ++li) {
        if (links[li].ingressGroup >= 0)
            byIngress[static_cast<std::size_t>(links[li].ingressGroup)]
                .push_back(li);
    }

    struct Completion
    {
        Seconds when;
        std::size_t link;
        long chunk;
        bool operator>(const Completion& o) const { return when > o.when; }
    };
    std::priority_queue<Completion, std::vector<Completion>,
                        std::greater<Completion>>
        events;

    TacosResult result;
    result.dimBusy.assign(net_.numDims(), 0.0);

    auto tryLink = [&](std::size_t li, Seconds now) {
        const GraphLink& link = links[li];
        if (linkFree[li] > now)
            return;
        if (link.egressGroup >= 0 &&
            sharedFree[static_cast<std::size_t>(link.egressGroup)] > now)
            return;
        if (link.ingressGroup >= 0 &&
            sharedFree[static_cast<std::size_t>(link.ingressGroup)] > now)
            return;

        // Pick the rarest chunk src can give dst (lowest id on ties),
        // skipping chunks the dst's faster neighbourhood already covers.
        const auto& srcOwn = owned[static_cast<std::size_t>(link.src)];
        const auto& dstOwn = owned[static_cast<std::size_t>(link.dst)];
        const auto& dstFly = inflight[static_cast<std::size_t>(link.dst)];
        const auto& fastRegion =
            region[link.dim][static_cast<std::size_t>(link.dst)];
        auto coveredNearby = [&](std::size_t ci) {
            for (long node : fastRegion) {
                auto ni = static_cast<std::size_t>(node);
                if (owned[ni][ci] || inflight[ni][ci])
                    return true;
            }
            return false;
        };
        long best = -1;
        long bestCount = 0;
        for (long c = 0; c < numChunks; ++c) {
            auto ci = static_cast<std::size_t>(c);
            if (!srcOwn[ci] || dstOwn[ci] || dstFly[ci])
                continue;
            if (coveredNearby(ci))
                continue;
            if (best < 0 || ownerCount[ci] < bestCount) {
                best = c;
                bestCount = ownerCount[ci];
            }
        }
        if (best < 0)
            return;

        Seconds dur = transferTime(chunk_bytes, link.bw) + latency_;
        Seconds end = now + dur;
        linkFree[li] = end;
        if (link.egressGroup >= 0)
            sharedFree[static_cast<std::size_t>(link.egressGroup)] = end;
        if (link.ingressGroup >= 0)
            sharedFree[static_cast<std::size_t>(link.ingressGroup)] = end;
        inflight[static_cast<std::size_t>(link.dst)]
                [static_cast<std::size_t>(best)] = 1;
        result.dimBusy[link.dim] += dur;
        ++result.transfers;
        events.push({end, li, best});
    };

    // Seed: try every link at time zero.
    for (std::size_t li = 0; li < links.size(); ++li)
        tryLink(li, 0.0);

    Seconds lastSweep = -1.0;
    while (remaining > 0) {
        if (events.empty()) {
            // Event-driven re-arming is a heuristic subset; sweep all
            // links once before concluding the synthesis is stuck.
            Seconds now = std::max(result.time, 0.0);
            if (now > lastSweep) {
                lastSweep = now;
                for (std::size_t li = 0; li < links.size(); ++li)
                    tryLink(li, now);
                if (!events.empty())
                    continue;
            }
            panic("TACOS synthesis stalled with ", remaining,
                  " deliveries left — disconnected topology?");
        }
        Completion ev = events.top();
        events.pop();
        const GraphLink& link = links[ev.link];
        auto dst = static_cast<std::size_t>(link.dst);
        auto ci = static_cast<std::size_t>(ev.chunk);
        inflight[dst][ci] = 0;
        if (!owned[dst][ci]) {
            owned[dst][ci] = 1;
            ++ownerCount[ci];
            --remaining;
        }
        result.time = std::max(result.time, ev.when);
        if (remaining == 0)
            break;

        // Re-arm: the freed wire, everything the receiver can now send,
        // and any sender that was blocked on the shared ports involved.
        tryLink(ev.link, ev.when);
        for (std::size_t li : graph_.outLinks(link.dst))
            tryLink(li, ev.when);
        for (std::size_t li : graph_.outLinks(link.src))
            tryLink(li, ev.when);
        if (link.ingressGroup >= 0) {
            for (std::size_t li :
                 byIngress[static_cast<std::size_t>(link.ingressGroup)])
                tryLink(li, ev.when);
        }
    }
    return result;
}

TacosResult
TacosSynthesizer::synthesizeAllReduce(Bytes total_bytes,
                                      int num_chunks) const
{
    const double n = static_cast<double>(graph_.numNodes());
    // One All-Reduce chunk Reduce-Scatters down to total/chunks/n per
    // NPU; the gather of those shards is exactly an All-Gather with
    // num_chunks chunks per NPU. RS is the AG time-mirror.
    Bytes shard = total_bytes / static_cast<double>(num_chunks) / n;
    TacosResult ag = synthesizeAllGather(shard, num_chunks);

    TacosResult ar;
    ar.time = 2.0 * ag.time;
    ar.transfers = 2 * ag.transfers;
    ar.dimBusy.reserve(ag.dimBusy.size());
    for (Seconds b : ag.dimBusy)
        ar.dimBusy.push_back(2.0 * b);
    return ar;
}

} // namespace libra
