/**
 * @file
 * TACOS-style topology-aware collective synthesizer [63] (paper §VI-D).
 *
 * TACOS synthesizes a collective algorithm for an arbitrary topology by
 * expanding it in time: whenever a link is free and its source holds a
 * chunk its destination still needs, a transfer is scheduled — choosing
 * the globally rarest chunk first (ties to the lowest id) so coverage
 * grows evenly. Synthesis runs on the NPU-level link graph, so it
 * exploits every wire of every dimension concurrently instead of the
 * staged multi-rail schedule.
 *
 * All-Gather is synthesized directly; Reduce-Scatter is its time-mirror
 * (identical schedule with reversed edges), and All-Reduce is RS + AG.
 */

#ifndef LIBRA_RUNTIME_TACOS_HH
#define LIBRA_RUNTIME_TACOS_HH

#include <vector>

#include "common/units.hh"
#include "runtime/graph.hh"
#include "topology/network.hh"

namespace libra {

/** Result of one synthesis run. */
struct TacosResult
{
    Seconds time = 0.0;    ///< Completion time of the collective.
    long transfers = 0;    ///< Point-to-point transfers scheduled.
    std::vector<Seconds> dimBusy; ///< Link-busy seconds per dimension.
};

/** Time-expanded greedy collective synthesizer. */
class TacosSynthesizer
{
  public:
    /**
     * @param net          Network to synthesize over.
     * @param bw           Per-dimension bandwidth (GB/s per NPU).
     * @param link_latency Fixed per-transfer latency (seconds).
     */
    TacosSynthesizer(const Network& net, const BwConfig& bw,
                     Seconds link_latency = 0.0);

    /**
     * Synthesize an All-Gather where every NPU starts with
     * @p chunks_per_npu chunks of @p chunk_bytes and finishes holding
     * all chunks of all NPUs.
     */
    TacosResult synthesizeAllGather(Bytes chunk_bytes,
                                    int chunks_per_npu) const;

    /**
     * All-Reduce of @p total_bytes split into @p num_chunks chunks:
     * Reduce-Scatter (the AG time-mirror) followed by All-Gather, on
     * per-chunk payloads of total/num_chunks/npus.
     */
    TacosResult synthesizeAllReduce(Bytes total_bytes,
                                    int num_chunks) const;

  private:
    Network net_;
    TopologyGraph graph_;
    Seconds latency_;
};

} // namespace libra

#endif // LIBRA_RUNTIME_TACOS_HH
