/**
 * @file
 * Analytical multi-rail collective model (paper §IV-C).
 *
 * On a multi-dimensional network a collective executes as a sequence of
 * per-dimension stages (Reduce-Scatter ascending, then All-Gather
 * descending for All-Reduce). Because chunks pipeline through the stages,
 * the steady-state collective time is governed by the bottleneck
 * dimension:
 *
 *   t = max_i  traffic_i / B_i
 *
 * with per-NPU per-dimension traffic for a collective of m bytes over
 * span group sizes (g_1..g_k), prefix products q_i = g_1*...*g_i:
 *
 *   All-Reduce     : 2 m (g_i - 1) / q_i
 *   RS / AG        :   m (g_i - 1) / q_i
 *   All-to-All     :   m (g_i - 1) / g_i
 *   In-network AR  : time_i = m / (q_{i-1} B_i)   (switch offload)
 */

#ifndef LIBRA_COLLECTIVE_MULTI_RAIL_HH
#define LIBRA_COLLECTIVE_MULTI_RAIL_HH

#include <string>
#include <vector>

#include "collective/mapping.hh"
#include "common/units.hh"
#include "topology/network.hh"

namespace libra {

/**
 * Collective communication patterns (paper Fig. 6), plus the direct
 * NPU-to-NPU transfer pipeline parallelism issues between adjacent
 * stages (paper §IV-C: "captured in terms of network BW, e.g. m/B_i").
 * A PointToPoint op loads only the first spanned dimension — adjacent
 * pipeline stages differ in the lowest coordinate of the PP span.
 */
enum class CollectiveType
{
    AllReduce,
    ReduceScatter,
    AllGather,
    AllToAll,
    PointToPoint,
};

/** Human-readable collective name. */
std::string collectiveTypeName(CollectiveType t);

/** Timing detail of one collective under a bandwidth configuration. */
struct CollectiveTiming
{
    Seconds time = 0.0;                ///< Bottleneck (pipelined) time.
    std::vector<Bytes> trafficPerDim;  ///< Indexed like the span list.
    std::vector<Seconds> timePerDim;   ///< traffic_i / B_i.
    std::size_t bottleneckSpan = 0;    ///< Index into the span list.
};

/**
 * Per-NPU traffic each spanned dimension must carry (bytes).
 *
 * @param type  Collective pattern.
 * @param size  Collective payload m in bytes.
 * @param spans Dimension spans from mapGroupToDims().
 */
std::vector<Bytes> multiRailTraffic(CollectiveType type, Bytes size,
                                    const std::vector<DimSpan>& spans);

/**
 * Bottleneck-time model of one multi-rail collective.
 *
 * @param type       Collective pattern.
 * @param size       Payload in bytes.
 * @param spans      Dimension spans of the communicator group.
 * @param bw         Per-dimension bandwidth config of the whole network.
 * @param in_network Model switch-offloaded (in-network) execution:
 *                   All-Reduce traffic on dim i drops to m / q_{i-1}.
 */
CollectiveTiming multiRailTime(CollectiveType type, Bytes size,
                               const std::vector<DimSpan>& spans,
                               const BwConfig& bw,
                               bool in_network = false);

/**
 * Total bytes moved per NPU (sum over dims) — the "communication size"
 * metric of paper Fig. 1.
 */
Bytes totalTraffic(CollectiveType type, Bytes size,
                   const std::vector<DimSpan>& spans);

} // namespace libra

#endif // LIBRA_COLLECTIVE_MULTI_RAIL_HH
