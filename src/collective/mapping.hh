/**
 * @file
 * Mapping of communicator groups onto network dimensions.
 *
 * A parallelization strategy defines groups of NPUs that communicate
 * (the TP group, the DP group, or all NPUs). With rank-order placement —
 * NPU ids laid out mixed-radix with dim 1 fastest-varying — a group of
 * @c groupSize members whose ranks are strided by @c innerStride occupies
 * a *span* of network dimensions, each either fully or partially. For
 * example TP-16 on RI(4)_FC(8)_RI(4)_SW(32) occupies all of dim 1 and
 * half of dim 2 — the "mismatching TP size" situation the paper calls out
 * for GPT-3 on the 4D-4K network.
 */

#ifndef LIBRA_COLLECTIVE_MAPPING_HH
#define LIBRA_COLLECTIVE_MAPPING_HH

#include <cstddef>
#include <vector>

#include "topology/network.hh"

namespace libra {

/** Portion of one network dimension used by a communicator group. */
struct DimSpan
{
    std::size_t dim = 0;  ///< Network dimension index (0-based).
    int groupSize = 1;    ///< Members of the group along this dimension.

    /**
     * Fraction of the per-NPU dimension bandwidth the group can
     * physically exploit. 1.0 for whole dimensions and any Switch
     * subset (non-blocking crossbar). For partial spans:
     *  - FullyConnected(n): a g-subset uses g-1 of the n-1 per-peer
     *    links, so (g-1)/(n-1);
     *  - Ring(n): a stride-s subset of g members dilutes the ring,
     *    g*s/n.
     * This is the physical effect behind the paper's GPT-3-on-4D-4K
     * observation: "the training process cannot leverage all Dim 2 BW
     * resources LIBRA assigned, due to the mismatching TP size".
     */
    double efficiency = 1.0;

    bool operator==(const DimSpan&) const = default;
};

/**
 * Compute the dimension spans of a communicator group.
 *
 * @param net         The network.
 * @param inner_stride Rank stride between consecutive group members
 *                    (1 for TP; the TP size for DP groups above TP).
 * @param group_size   Number of NPUs in the group.
 * @param model_efficiency When false, partial spans report
 *                    efficiency 1.0 — the idealized model the paper's
 *                    (efficiency-blind) optimizer uses.
 * @return Spans in ascending dimension order; empty when group_size == 1.
 * @throws FatalError when the group cannot be laid out on whole
 *         power-of-dimension boundaries (sizes must divide).
 */
std::vector<DimSpan> mapGroupToDims(const Network& net, long inner_stride,
                                    long group_size,
                                    bool model_efficiency = true);

} // namespace libra

#endif // LIBRA_COLLECTIVE_MAPPING_HH
