#include "collective/mapping.hh"

#include "common/logging.hh"

namespace libra {

namespace {

/** Physically achievable BW share of a (sub, take) subset of one dim. */
double
spanEfficiency(const NetworkDim& dim, long sub, long take)
{
    if (take == dim.size)
        return 1.0;
    switch (dim.type) {
      case UnitTopology::FullyConnected:
        // g-1 of the n-1 equal per-peer links are usable.
        return static_cast<double>(take - 1) /
               static_cast<double>(dim.size - 1);
      case UnitTopology::Ring:
        // A stride-`sub` subset of g members occupies g*sub of the n
        // ring positions; hops through non-members dilute bandwidth.
        return static_cast<double>(take * sub) /
               static_cast<double>(dim.size);
      case UnitTopology::Switch:
        // Non-blocking crossbar: any subset gets full uplink BW.
        return 1.0;
    }
    panic("unknown unit topology");
}

} // namespace

std::vector<DimSpan>
mapGroupToDims(const Network& net, long inner_stride, long group_size,
               bool model_efficiency)
{
    std::vector<DimSpan> spans;
    if (group_size <= 1)
        return spans;
    if (inner_stride < 1)
        fatal("inner stride must be >= 1, got ", inner_stride);
    if (inner_stride * group_size > net.npus()) {
        fatal("group of ", group_size, " with stride ", inner_stride,
              " does not fit in ", net.npus(), " NPUs");
    }

    long stride = inner_stride;
    long remaining = group_size;
    for (std::size_t i = 0; i < net.numDims() && remaining > 1; ++i) {
        long p = net.prefixProduct(i);
        long pNext = p * net.dim(i).size;
        if (stride >= pNext)
            continue; // Dimension fully inside the inner stride.
        if (stride % p != 0) {
            fatal("group stride ", inner_stride,
                  " is misaligned with dimension ", i + 1, " of ",
                  net.name());
        }
        long sub = stride / p; // Stride expressed in dim-i hops.
        long avail = net.dim(i).size / sub;
        if (net.dim(i).size % sub != 0) {
            fatal("group stride ", inner_stride,
                  " does not divide dimension ", i + 1, " of ", net.name());
        }
        long take = std::min<long>(avail, remaining);
        if (avail % take != 0 || remaining % take != 0) {
            fatal("group of ", group_size, " (stride ", inner_stride,
                  ") does not tile dimension ", i + 1, " of ", net.name(),
                  ": ", take, " of ", avail, " slots");
        }
        double efficiency =
            model_efficiency ? spanEfficiency(net.dim(i), sub, take)
                             : 1.0;
        spans.push_back({i, static_cast<int>(take), efficiency});
        remaining /= take;
        stride *= take;
    }
    if (remaining > 1) {
        fatal("group of ", group_size, " with stride ", inner_stride,
              " exceeds network ", net.name());
    }
    return spans;
}

} // namespace libra
