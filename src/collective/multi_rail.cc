#include "collective/multi_rail.hh"

#include <algorithm>

#include "common/logging.hh"

namespace libra {

std::string
collectiveTypeName(CollectiveType t)
{
    switch (t) {
      case CollectiveType::AllReduce:
        return "All-Reduce";
      case CollectiveType::ReduceScatter:
        return "Reduce-Scatter";
      case CollectiveType::AllGather:
        return "All-Gather";
      case CollectiveType::AllToAll:
        return "All-to-All";
      case CollectiveType::PointToPoint:
        return "Point-to-Point";
    }
    panic("unknown collective type");
}

std::vector<Bytes>
multiRailTraffic(CollectiveType type, Bytes size,
                 const std::vector<DimSpan>& spans)
{
    std::vector<Bytes> traffic;
    traffic.reserve(spans.size());
    double prefix = 1.0;
    for (const auto& span : spans) {
        double g = static_cast<double>(span.groupSize);
        switch (type) {
          case CollectiveType::AllReduce:
            prefix *= g;
            traffic.push_back(2.0 * size * (g - 1.0) / prefix);
            break;
          case CollectiveType::ReduceScatter:
          case CollectiveType::AllGather:
            prefix *= g;
            traffic.push_back(size * (g - 1.0) / prefix);
            break;
          case CollectiveType::AllToAll:
            traffic.push_back(size * (g - 1.0) / g);
            break;
          case CollectiveType::PointToPoint:
            // One hop across the lowest spanned dimension (pipeline
            // stage boundary); upper dims are untouched.
            traffic.push_back(traffic.empty() ? size : 0.0);
            break;
        }
    }
    return traffic;
}

CollectiveTiming
multiRailTime(CollectiveType type, Bytes size,
              const std::vector<DimSpan>& spans, const BwConfig& bw,
              bool in_network)
{
    CollectiveTiming timing;
    if (spans.empty())
        return timing; // Single-NPU group: no communication.

    if (in_network && type == CollectiveType::AllReduce) {
        // Switch offload: each dimension forwards the (already locally
        // reduced) m / q_{i-1} payload once; the switch reduces in-fabric.
        double prefix = 1.0;
        for (const auto& span : spans) {
            timing.trafficPerDim.push_back(size / prefix);
            prefix *= static_cast<double>(span.groupSize);
        }
    } else {
        timing.trafficPerDim = multiRailTraffic(type, size, spans);
    }

    for (std::size_t i = 0; i < spans.size(); ++i) {
        double b = bw.at(spans[i].dim) * spans[i].efficiency;
        if (b <= 0.0)
            fatal("dimension ", spans[i].dim + 1, " has non-positive BW ",
                  b);
        timing.timePerDim.push_back(
            transferTime(timing.trafficPerDim[i], b));
    }

    auto it = std::max_element(timing.timePerDim.begin(),
                               timing.timePerDim.end());
    timing.bottleneckSpan =
        static_cast<std::size_t>(it - timing.timePerDim.begin());
    timing.time = *it;
    return timing;
}

Bytes
totalTraffic(CollectiveType type, Bytes size,
             const std::vector<DimSpan>& spans)
{
    Bytes total = 0.0;
    for (Bytes t : multiRailTraffic(type, size, spans))
        total += t;
    return total;
}

} // namespace libra
