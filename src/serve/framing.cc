#include "serve/framing.hh"

#include <sys/socket.h>

#include <cerrno>
#include <cmath>
#include <utility>

#include "common/logging.hh"

namespace libra {

std::string
frameMessage(Json status, const std::string& payload)
{
    status["bytes"] = payload.size();
    return status.dump() + "\n" + payload;
}

std::string
frameErrorMessage(const std::string& error)
{
    Json status = Json::object();
    status["ok"] = false;
    status["error"] = error;
    return frameMessage(std::move(status), "");
}

std::size_t
framePayloadBytes(const Json& status, const char* who)
{
    if (!status.has("bytes"))
        return 0;
    const Json& field = status.at("bytes");
    if (!field.isNumber())
        fatal(who, ": status-line 'bytes' is not a number: ",
              field.dump());
    const double value = field.asNumber();
    // NaN fails the >= 0 comparison; negatives and fractions are
    // rejected explicitly. Only then is the size_t cast safe.
    if (!(value >= 0.0) || value != std::floor(value))
        fatal(who, ": status-line 'bytes' is not a nonnegative "
              "integer: ", field.dump());
    if (value > static_cast<double>(kMaxFramePayload))
        fatal(who, ": status-line 'bytes' exceeds the ",
              kMaxFramePayload, "-byte payload cap: ", field.dump());
    return static_cast<std::size_t>(value);
}

void
FrameBuffer::append(const char* data, std::size_t n)
{
    data_.append(data, n);
}

std::optional<Frame>
FrameBuffer::next()
{
    const std::size_t eol = data_.find('\n');
    if (eol == std::string::npos) {
        if (data_.size() > kMaxFrameLine)
            fatal(who_, ": status line exceeds ", kMaxFrameLine,
                  " bytes without a newline");
        return std::nullopt;
    }
    if (eol > kMaxFrameLine)
        fatal(who_, ": status line exceeds ", kMaxFrameLine, " bytes");

    Frame frame;
    try {
        frame.status = Json::parse(data_.substr(0, eol));
    } catch (const FatalError&) {
        fatal(who_, ": malformed status line from peer");
    }
    const std::size_t bytes = framePayloadBytes(frame.status, who_);
    if (data_.size() - (eol + 1) < bytes)
        return std::nullopt; // Payload still in flight.
    frame.payload = data_.substr(eol + 1, bytes);
    data_.erase(0, eol + 1 + bytes);
    return frame;
}

bool
sendAllFd(int fd, const std::string& data)
{
    std::size_t sent = 0;
    while (sent < data.size()) {
        ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                           MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

Frame
readFrameFd(int fd, FrameBuffer& buffer, const char* who)
{
    for (;;) {
        if (std::optional<Frame> frame = buffer.next())
            return std::move(*frame);
        char buf[4096];
        ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            fatal(who, ": connection closed mid-frame (",
                  buffer.pending(), " bytes buffered)");
        buffer.append(buf, static_cast<std::size_t>(n));
    }
}

} // namespace libra
