/**
 * @file
 * Single-flight computation dedup for the serve subsystem
 * (docs/SERVE.md).
 *
 * N concurrent requests that miss the caches on the same canonical
 * study key must trigger exactly one optimize() run: the first claimer
 * becomes the *owner* and computes; everyone else becomes a *waiter*
 * and blocks for the owner's published result. Evaluation is
 * deterministic, so a shared result — success or failure — is
 * bit-identical to what the waiter would have computed itself.
 *
 * Protocol (enforced with panics — a violation is a caller bug, not a
 * recoverable condition):
 *
 *   claim(key) -> Owner   : compute, then publish(key, ...) exactly
 *                           once, success or failure.
 *   claim(key) -> Waiter  : await(key, ...) exactly once.
 *
 * A slot lives from the owning claim until both the owner has
 * published and every waiter has collected — whichever comes last —
 * then disappears, so a later claim of the same key starts a fresh
 * flight (the caches, not this class, remember results).
 */

#ifndef LIBRA_SERVE_SINGLE_FLIGHT_HH
#define LIBRA_SERVE_SINGLE_FLIGHT_HH

#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/framework.hh"

namespace libra {

/** Keyed in-flight computation registry; see file comment. */
class SingleFlight
{
  public:
    enum class Role
    {
        Owner,  ///< Caller computes; must publish() exactly once.
        Waiter, ///< Another caller computes; must await() exactly once.
    };

    /** Join (or start) the flight for @p key. */
    Role claim(const std::string& key);

    /**
     * Resolve an owned flight with the computed outcome and wake every
     * waiter. @p status may be a failure; waiters share it verbatim.
     */
    void publish(const std::string& key, const PointStatus& status,
                 const LibraReport& report);

    /** Block until @p key's owner publishes; copies the outcome out. */
    void await(const std::string& key, PointStatus* status,
               LibraReport* report);

    /** Flights currently registered (tests/stats). */
    std::size_t inFlight() const;

  private:
    struct Slot
    {
        std::condition_variable cv;
        bool done = false;
        std::size_t waiters = 0;
        PointStatus status;
        LibraReport report;
    };

    mutable std::mutex mutex_;
    std::unordered_map<std::string, std::shared_ptr<Slot>> slots_;
};

} // namespace libra

#endif // LIBRA_SERVE_SINGLE_FLIGHT_HH
