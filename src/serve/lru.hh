/**
 * @file
 * Bounded in-memory LRU over study-point reports (docs/SERVE.md).
 *
 * The serve subsystem layers this cache above the content-addressed
 * disk ResultCache so hot studies never touch disk: entries are keyed
 * by the full canonical study key text (the same identity the disk
 * cache verifies, so a hash collision can never alias two points), and
 * values are in-memory LibraReport copies — trivially bit-identical to
 * the reports that produced them, so a matrix served from this cache
 * emits byte-identical output to a fresh or disk-cached run.
 *
 * Two independent bounds, each optional (0 = unbounded on that axis):
 * a capacity in entries and a byte budget over the resident entries'
 * estimated memory (key text + report vectors + bookkeeping). Crossing
 * either bound evicts from the cold end until both hold again; an
 * entry larger than the whole byte budget is simply not retained. With
 * both bounds 0 the cache is disabled (get always misses, put no-ops),
 * preserving the pre-budget `capacity == 0` contract.
 *
 * Thread-safe: one internal mutex guards the recency list and index
 * (every operation is a few pointer moves — far below the cost of the
 * optimize() calls the cache amortizes).
 */

#ifndef LIBRA_SERVE_LRU_HH
#define LIBRA_SERVE_LRU_HH

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "core/framework.hh"

namespace libra {

/** Bounded most-recently-used report cache; see file comment. */
class LruCache
{
  public:
    /** Operation counters, exposed for tests and the stats op. */
    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
        std::size_t entries = 0;  ///< Current resident entries.
        std::size_t capacity = 0;
        std::size_t bytes = 0;    ///< Estimated resident bytes.
        std::size_t maxBytes = 0; ///< Byte budget; 0 = unbounded.
    };

    /**
     * @p capacity bounds entries, @p maxBytes bounds estimated
     * resident bytes; 0 leaves that axis unbounded, both 0 disables
     * the cache.
     */
    explicit LruCache(std::size_t capacity, std::size_t maxBytes = 0)
        : capacity_(capacity), maxBytes_(maxBytes)
    {}

    /**
     * Look up @p key; a hit copies the report into @p out and marks
     * the entry most recently used.
     * @return hit/miss.
     */
    bool get(const std::string& key, LibraReport* out);

    /**
     * Insert (or refresh) @p key -> @p report as the most recently
     * used entry, evicting from the cold end until both bounds hold.
     */
    void put(const std::string& key, const LibraReport& report);

    /**
     * Estimated resident cost of one entry: list/index bookkeeping
     * plus the key text and the report's heap vectors. An estimate is
     * enough — the budget protects against runaway growth, not an
     * allocator-exact accounting.
     */
    static std::size_t entryBytes(const std::string& key,
                                  const LibraReport& report);

    /** Counter snapshot since construction. */
    Stats stats() const;

  private:
    using Entry = std::pair<std::string, LibraReport>;

    bool disabled() const { return capacity_ == 0 && maxBytes_ == 0; }
    bool overBudget() const;
    void evictColdest();

    std::size_t capacity_;
    std::size_t maxBytes_;

    mutable std::mutex mutex_;
    std::list<Entry> order_; ///< Front = most recently used.
    std::unordered_map<std::string, std::list<Entry>::iterator> index_;
    std::size_t bytes_ = 0;  ///< Sum of entryBytes over residents.
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
};

} // namespace libra

#endif // LIBRA_SERVE_LRU_HH
