#include "serve/single_flight.hh"

#include "common/logging.hh"

namespace libra {

SingleFlight::Role
SingleFlight::claim(const std::string& key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = slots_.try_emplace(key, nullptr);
    if (inserted) {
        it->second = std::make_shared<Slot>();
        return Role::Owner;
    }
    ++it->second->waiters;
    return Role::Waiter;
}

void
SingleFlight::publish(const std::string& key, const PointStatus& status,
                      const LibraReport& report)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = slots_.find(key);
    if (it == slots_.end())
        panic("single-flight publish without a claim (key ",
              key.substr(0, 32), "...)");
    Slot& slot = *it->second;
    if (slot.done)
        panic("single-flight double publish (key ", key.substr(0, 32),
              "...)");
    slot.done = true;
    slot.status = status;
    slot.report = report;
    slot.cv.notify_all();
    // With no waiter pinning it the flight is over; the caches carry
    // the result from here on.
    if (slot.waiters == 0)
        slots_.erase(it);
}

void
SingleFlight::await(const std::string& key, PointStatus* status,
                    LibraReport* report)
{
    std::unique_lock<std::mutex> lock(mutex_);
    auto it = slots_.find(key);
    if (it == slots_.end())
        panic("single-flight await without a claim (key ",
              key.substr(0, 32), "...)");
    // Hold the slot alive across the wait: the map entry can only be
    // erased by the last collector, which might be another waiter.
    std::shared_ptr<Slot> slot = it->second;
    slot->cv.wait(lock, [&] { return slot->done; });
    *status = slot->status;
    *report = slot->report;
    if (--slot->waiters == 0)
        slots_.erase(key);
}

std::size_t
SingleFlight::inFlight() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return slots_.size();
}

} // namespace libra
