/**
 * @file
 * libra_cli's study service: a long-lived Unix-domain-socket server
 * answering scenario-matrix requests without paying process startup,
 * registry construction, or disk-cache traffic per call
 * (docs/SERVE.md).
 *
 * Protocol (newline-delimited JSON requests, framed responses):
 *
 *   request  := one JSON object on one line, e.g.
 *              {"scenario": ["fig13"], "emit": "json"}
 *   response := one compact JSON status line, then exactly
 *              status.bytes raw payload bytes.
 *
 * The payload is byte-identical to what `libra_cli run-matrix` with
 * the same parameters writes to stdout — fresh, disk-cached, or
 * LRU-served, at any thread count — because emission is fully
 * deterministic and cached reports round-trip bit-exactly. The
 * explicit byte count (instead of line framing) is what lets the
 * multi-line pretty-JSON payload cross a line-oriented protocol
 * untouched.
 *
 * Concurrency: one thread per connection; concurrent requests share
 * one ServeStore — a bounded in-memory LRU (serve/lru.hh) over the
 * content-addressed disk cache, with single-flight dedup
 * (serve/single_flight.hh) so N identical concurrent requests compute
 * each unique design point exactly once. Request errors (unknown
 * scenario, malformed JSON, FatalError from evaluation) are answered
 * as `{"ok":false,...}` responses; they never terminate the server.
 */

#ifndef LIBRA_SERVE_SERVER_HH
#define LIBRA_SERVE_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_set>

#include "common/json.hh"
#include "serve/lru.hh"
#include "serve/single_flight.hh"
#include "study/cache.hh"
#include "study/matrix.hh"

namespace libra {

/**
 * The serve-mode StudyStore: an in-memory LRU in front of the disk
 * ResultCache, with single-flight claim coordination across concurrent
 * requests. Layering on load is LRU -> disk (a disk hit is promoted
 * into the LRU); stores write through to both. claimCompute() re-probes
 * the LRU after winning a claim, closing the race where another
 * request published a key between this request's load miss and its
 * claim — the only residual recompute window is LRU eviction plus a
 * disabled/absent disk cache, which costs work but never correctness.
 */
class ServeStore : public StudyStore
{
  public:
    /** Layered counters for the stats op and tests. */
    struct Stats
    {
        LruCache::Stats lru;
        std::uint64_t diskHits = 0;   ///< Loads served by the disk cache.
        std::uint64_t misses = 0;     ///< Loads neither layer served.
        std::uint64_t coalesced = 0;  ///< Claims joined as waiters.
        std::size_t inFlight = 0;     ///< Currently claimed keys.
    };

    /**
     * @p cacheDir empty runs memory-only (no disk layer);
     * @p lruCapacity / @p lruBytes bound the LRU in entries / bytes
     * (0 = unbounded on that axis; both 0 disables it — disk-only).
     */
    ServeStore(const std::string& cacheDir, std::size_t lruCapacity,
               std::size_t lruBytes = 0);

    bool load(std::uint64_t key, const std::string& canonical,
              LibraReport* out) override;
    bool store(std::uint64_t key, const std::string& canonical,
               const LibraReport& report) override;
    Claim claimCompute(const std::string& canonical, PointStatus* status,
                       LibraReport* report) override;
    void publishCompute(const std::string& canonical,
                        const PointStatus& status,
                        const LibraReport& report) override;
    void awaitCompute(const std::string& canonical, PointStatus* status,
                      LibraReport* report) override;

    Stats stats() const;

    /** The disk layer, when one is configured (tests). */
    const ResultCache* disk() const
    {
        return disk_ ? &*disk_ : nullptr;
    }

  private:
    LruCache lru_;
    std::optional<ResultCache> disk_;
    SingleFlight flight_;
    std::atomic<std::uint64_t> diskHits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> coalesced_{0};
};

/** Server configuration (the `libra_cli serve` flags). */
struct ServeOptions
{
    std::string socketPath;      ///< AF_UNIX path; created on start.
    std::string cacheDir;        ///< "" = memory-only store.
    std::size_t lruCapacity = 1024;
    std::size_t lruBytes = 0;    ///< LRU byte budget; 0 = unbounded.

    /** Default FailMode for requests without a "failMode" field. */
    FailMode failMode = FailMode::Abort;

    /**
     * Cap on the optional per-request "workers" field — the
     * `--max-workers` flag. Requests asking for more are clamped; the
     * default of 1 means requests never shard. Responses are
     * byte-identical at any effective worker count (docs/SHARDING.md),
     * so the cap is purely a resource-control knob.
     */
    std::size_t maxWorkers = 1;

    /** Executable exec'd as `... worker` for sharded requests. */
    std::string workerExe;
};

/**
 * The study server; see file comment for protocol and concurrency.
 * Construction builds the store; start() binds/listens and spawns the
 * accept loop; stop() (idempotent, also run by the destructor) shuts
 * every live connection down and joins.
 */
class Server
{
  public:
    /** Cumulative request counters. */
    struct Stats
    {
        std::uint64_t requests = 0; ///< Lines answered (any op).
        std::uint64_t errors = 0;   ///< Of which ok:false.
    };

    explicit Server(ServeOptions options);
    ~Server();

    /**
     * Bind the socket and start accepting. Also warms the scenario/
     * strategy/backend/explore registries so concurrent first requests
     * race on work, not on registration.
     * @throws FatalError when the socket cannot be bound.
     */
    void start();

    /** Shut down: close the listener and every connection, join. */
    void stop();

    /** Block until stop() completes (a shutdown op triggers it). */
    void waitUntilStopped();

    bool running() const { return running_.load(); }

    ServeStore& store() { return store_; }
    const std::string& socketPath() const { return options_.socketPath; }
    Stats stats() const;

    /**
     * The protocol core, public so tests can drive it without a
     * socket: parse one request line, run it, and return the framed
     * response bytes (status line + payload). Sets @p shutdown for a
     * `{"op":"shutdown"}` request; the socket layer then stops the
     * server after answering.
     */
    std::string handleLine(const std::string& line, bool* shutdown);

  private:
    void acceptLoop();
    void handleConnection(int fd);

    ServeOptions options_;
    ServeStore store_;

    std::atomic<bool> running_{false};
    std::atomic<bool> stopping_{false};
    int listenFd_ = -1;
    std::thread acceptThread_;

    mutable std::mutex mutex_;
    std::condition_variable idle_;       ///< Signaled at connections==0.
    std::unordered_set<int> connections_; ///< Live connection fds.

    /** Serializes stop() (shutdown op vs. destructor vs. caller). */
    std::mutex stopMutex_;

    std::atomic<std::uint64_t> requests_{0};
    std::atomic<std::uint64_t> errors_{0};
};

/** One framed reply, as seen by a client. */
struct ServeReply
{
    Json status;         ///< The parsed status line.
    std::string payload; ///< Exactly status.bytes raw bytes.
};

/**
 * Client helper: connect to @p socketPath, send @p requestLine (one
 * JSON object; the trailing newline is added), read one framed reply.
 * @throws FatalError on connect/protocol failure.
 */
ServeReply serveRequest(const std::string& socketPath,
                        const std::string& requestLine);

} // namespace libra

#endif // LIBRA_SERVE_SERVER_HH
