/**
 * @file
 * Newline-JSON framing shared by the serve protocol and the sharded
 * matrix executor (docs/SERVE.md, docs/SHARDING.md).
 *
 * One frame is a compact JSON status line terminated by '\n', followed
 * by exactly `status.bytes` raw payload bytes. The explicit byte count
 * (instead of line framing) is what lets a multi-line pretty-JSON
 * payload cross a line-oriented protocol untouched.
 *
 * Both consumers of incoming frames — the serve client and the shard
 * master — parse through FrameBuffer, so the `bytes` field is
 * validated in exactly one place: it must be a nonnegative integer no
 * larger than kMaxFramePayload, or the frame is rejected with a
 * FatalError. A corrupt or malicious peer can therefore never turn a
 * status line into a giant allocation or a silently truncated read.
 */

#ifndef LIBRA_SERVE_FRAMING_HH
#define LIBRA_SERVE_FRAMING_HH

#include <cstddef>
#include <optional>
#include <string>

#include "common/json.hh"

namespace libra {

/**
 * Hard ceiling on one frame's payload (1 GiB). Far above any real
 * matrix emission, far below an allocation that could take the
 * process down.
 */
inline constexpr std::size_t kMaxFramePayload =
    std::size_t{1} << 30;

/** Ceiling on one status/request line (1 MiB); see docs/SERVE.md. */
inline constexpr std::size_t kMaxFrameLine = std::size_t{1} << 20;

/** One parsed frame: the status line plus its raw payload bytes. */
struct Frame
{
    Json status;
    std::string payload;
};

/**
 * Serialize a frame: `status` gains a trailing "bytes" member set to
 * the payload size, is dumped compactly onto one line, and the raw
 * payload follows.
 */
std::string frameMessage(Json status, const std::string& payload);

/** frameMessage for an `{ok:false, error}` status with no payload. */
std::string frameErrorMessage(const std::string& error);

/**
 * Validate a status line's "bytes" member: absent counts as 0; present
 * it must be a nonnegative integral number no larger than
 * kMaxFramePayload.
 * @throws FatalError (prefixed with @p who) otherwise — a negative,
 * NaN, fractional, or absurd value from a corrupt peer must never
 * reach an allocation or a size_t cast.
 */
std::size_t framePayloadBytes(const Json& status, const char* who);

/**
 * Incremental frame parser: feed received bytes with append(), take
 * complete frames with next(). Bytes beyond a complete frame are kept
 * for the following one, so pipelined frames on one stream parse
 * cleanly.
 */
class FrameBuffer
{
  public:
    /** @p who prefixes parse/validation error messages ("serve", …). */
    explicit FrameBuffer(const char* who) : who_(who) {}

    /** Append raw received bytes. */
    void append(const char* data, std::size_t n);

    /**
     * Extract the next complete frame, if the buffer holds one.
     * @throws FatalError on an over-long status line, a malformed
     * status line, or an invalid "bytes" field.
     */
    std::optional<Frame> next();

    /** Buffered bytes not yet consumed by a complete frame. */
    std::size_t pending() const { return data_.size(); }

  private:
    const char* who_;
    std::string data_;
};

/**
 * Write all of @p data to socket @p fd (MSG_NOSIGNAL, so a dead peer
 * is an error return, not a process-killing SIGPIPE).
 * @return false on any send failure.
 */
bool sendAllFd(int fd, const std::string& data);

/**
 * Blocking-read exactly one frame from socket @p fd through @p buffer
 * (leftover bytes stay buffered for the next call).
 * @throws FatalError when the peer closes mid-frame or sends an
 * invalid frame.
 */
Frame readFrameFd(int fd, FrameBuffer& buffer, const char* who);

} // namespace libra

#endif // LIBRA_SERVE_FRAMING_HH
