#include "serve/server.hh"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <sstream>
#include <utility>

#include "common/logging.hh"
#include "core/timing_backend.hh"
#include "serve/framing.hh"
#include "explore/explore.hh"
#include "solver/strategy.hh"
#include "study/scenario.hh"

namespace libra {

// ---------------------------------------------------------------------
// ServeStore
// ---------------------------------------------------------------------

ServeStore::ServeStore(const std::string& cacheDir,
                       std::size_t lruCapacity, std::size_t lruBytes)
    : lru_(lruCapacity, lruBytes)
{
    if (!cacheDir.empty())
        disk_.emplace(cacheDir);
}

bool
ServeStore::load(std::uint64_t key, const std::string& canonical,
                 LibraReport* out)
{
    if (lru_.get(canonical, out))
        return true;
    if (disk_ && disk_->load(key, canonical, out)) {
        // Promote: the point is hot now; the next identical request
        // must not pay disk I/O again.
        lru_.put(canonical, *out);
        diskHits_.fetch_add(1, std::memory_order_relaxed);
        return true;
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
}

bool
ServeStore::store(std::uint64_t key, const std::string& canonical,
                  const LibraReport& report)
{
    lru_.put(canonical, report);
    if (disk_)
        return disk_->store(key, canonical, report);
    return true;
}

StudyStore::Claim
ServeStore::claimCompute(const std::string& canonical,
                         PointStatus* status, LibraReport* report)
{
    if (flight_.claim(canonical) == SingleFlight::Role::Waiter) {
        coalesced_.fetch_add(1, std::memory_order_relaxed);
        return Claim::Shared;
    }
    // We own the flight. Another request may have published this key
    // between our load miss and the claim; re-probing the LRU here
    // closes that race (the publish path stores before it publishes,
    // so a finished flight is always visible in the LRU by now).
    if (lru_.get(canonical, report)) {
        status->ok = true;
        status->error.clear();
        flight_.publish(canonical, *status, *report);
        return Claim::Cached;
    }
    return Claim::Owned;
}

void
ServeStore::publishCompute(const std::string& canonical,
                           const PointStatus& status,
                           const LibraReport& report)
{
    flight_.publish(canonical, status, report);
}

void
ServeStore::awaitCompute(const std::string& canonical,
                         PointStatus* status, LibraReport* report)
{
    flight_.await(canonical, status, report);
}

ServeStore::Stats
ServeStore::stats() const
{
    Stats s;
    s.lru = lru_.stats();
    s.diskHits = diskHits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.coalesced = coalesced_.load(std::memory_order_relaxed);
    s.inFlight = flight_.inFlight();
    return s;
}

// ---------------------------------------------------------------------
// Protocol
// ---------------------------------------------------------------------

namespace {

/** FatalError messages carry a "fatal: " prefix; responses do not. */
std::string
stripFatalPrefix(std::string msg)
{
    const std::string prefix = "fatal: ";
    if (msg.rfind(prefix, 0) == 0)
        msg.erase(0, prefix.size());
    return msg;
}

/** A request's scenario field: one name or an array of names. */
std::vector<std::string>
scenarioNames(const Json& field)
{
    std::vector<std::string> names;
    if (field.isString()) {
        names.push_back(field.asString());
    } else if (field.isArray()) {
        for (const Json& n : field.items())
            names.push_back(n.asString());
    } else {
        fatal("'scenario' must be a name or an array of names");
    }
    return names;
}

} // namespace

std::string
Server::handleLine(const std::string& line, bool* shutdown)
{
    requests_.fetch_add(1, std::memory_order_relaxed);
    try {
        Json req = Json::parse(line);
        if (!req.isObject())
            fatal("request must be a JSON object");
        // Reject unknown fields: a typo'd field name silently falling
        // back to a default would serve the wrong matrix.
        for (const auto& [key, value] : req.members()) {
            (void)value;
            if (key != "op" && key != "scenario" && key != "solver" &&
                key != "backend" && key != "explore" && key != "emit" &&
                key != "failMode" && key != "workers") {
                fatal("unknown request field '", key, "'");
            }
        }

        const std::string op =
            req.has("op") ? req.at("op").asString() : "run";
        if (op == "ping") {
            Json status = Json::object();
            status["ok"] = true;
            status["op"] = "ping";
            return frameMessage(std::move(status), "");
        }
        if (op == "shutdown") {
            *shutdown = true;
            Json status = Json::object();
            status["ok"] = true;
            status["op"] = "shutdown";
            return frameMessage(std::move(status), "");
        }
        if (op == "stats") {
            ServeStore::Stats s = store_.stats();
            Json j = Json::object();
            j["schema"] = "libra-serve-stats-v1";
            j["requests"] = requests_.load(std::memory_order_relaxed);
            j["errors"] = errors_.load(std::memory_order_relaxed);
            j["lruHits"] = s.lru.hits;
            j["lruEntries"] = s.lru.entries;
            j["lruCapacity"] = s.lru.capacity;
            j["lruEvictions"] = s.lru.evictions;
            j["lruBytes"] = s.lru.bytes;
            j["lruMaxBytes"] = s.lru.maxBytes;
            j["diskHits"] = s.diskHits;
            j["misses"] = s.misses;
            j["coalesced"] = s.coalesced;
            j["inFlight"] = s.inFlight;
            Json status = Json::object();
            status["ok"] = true;
            status["op"] = "stats";
            return frameMessage(std::move(status), j.dump(1) + "\n");
        }
        if (op != "run")
            fatal("unknown op '", op, "'");

        if (!req.has("scenario"))
            fatal("request needs a 'scenario' field");
        std::vector<std::string> names =
            expandScenarioGroups(scenarioNames(req.at("scenario")));

        const std::string emit =
            req.has("emit") ? req.at("emit").asString() : "json";
        if (emit != "json" && emit != "csv")
            fatal("'emit' must be json or csv");

        MatrixOptions options;
        options.store = &store_;
        if (req.has("solver"))
            options.solverPipeline =
                parseSolverSpec(req.at("solver").asString());
        if (req.has("backend"))
            options.timingBackend = req.at("backend").asString();
        if (req.has("explore"))
            options.exploreSpec = req.at("explore").asString();
        options.failMode = options_.failMode;
        if (req.has("failMode")) {
            const std::string& mode = req.at("failMode").asString();
            if (mode == "abort")
                options.failMode = FailMode::Abort;
            else if (mode == "isolate")
                options.failMode = FailMode::Isolate;
            else
                fatal("'failMode' must be abort or isolate");
        }
        if (req.has("workers")) {
            const Json& w = req.at("workers");
            if (!w.isNumber())
                fatal("'workers' must be a number");
            double v = w.asNumber();
            if (!(v >= 1.0 && v <= 256.0) || v != std::floor(v))
                fatal("'workers' must be an integer in [1, 256]");
            // Clamp to the server's cap; 1 (or a cap of 1) keeps the
            // classic in-process sweep. Either way the response bytes
            // are identical — sharding never changes emission.
            std::size_t workers = std::min(
                static_cast<std::size_t>(v), options_.maxWorkers);
            if (workers > 1) {
                if (options_.workerExe.empty())
                    fatal("server has no worker executable configured");
                options.workers = workers;
                options.workerExe = options_.workerExe;
            }
        }

        MatrixResult result = runScenarioMatrix(names, options);

        // Exactly the bytes run-matrix would write to stdout.
        std::ostringstream payload;
        if (emit == "csv")
            emitMatrixCsv(result, payload);
        else
            emitMatrixJson(result, payload);

        Json status = Json::object();
        status["ok"] = true;
        status["points"] = result.points;
        status["unique"] = result.unique;
        status["fromCache"] = result.fromCache;
        status["coalesced"] = result.coalesced;
        status["computed"] = result.computed;
        status["failed"] = result.failed;
        return frameMessage(std::move(status), payload.str());
    } catch (const FatalError& e) {
        // A request error (bad JSON, unknown scenario, a failing
        // design point under abort mode) is this request's problem;
        // the server keeps serving.
        errors_.fetch_add(1, std::memory_order_relaxed);
        return frameErrorMessage(stripFatalPrefix(e.what()));
    } catch (const std::exception& e) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        return frameErrorMessage(std::string("internal error: ") + e.what());
    }
}

// ---------------------------------------------------------------------
// Socket plumbing
// ---------------------------------------------------------------------

namespace {

void
fillSocketAddress(const std::string& path, sockaddr_un* addr)
{
    if (path.empty())
        fatal("serve: empty socket path");
    if (path.size() >= sizeof(addr->sun_path))
        fatal("serve: socket path too long (", path.size(), " >= ",
              sizeof(addr->sun_path), "): ", path);
    std::memset(addr, 0, sizeof(*addr));
    addr->sun_family = AF_UNIX;
    std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
}

} // namespace

Server::Server(ServeOptions options)
    : options_(std::move(options)),
      store_(options_.cacheDir, options_.lruCapacity,
             options_.lruBytes)
{}

Server::~Server()
{
    stop();
}

void
Server::start()
{
    if (running_.load())
        panic("serve: start() on a running server");

    // Warm every registry before the first connection: magic statics
    // make concurrent first use safe, but eager construction keeps
    // first-request latency flat and failures (a broken registration)
    // at startup where they belong.
    ScenarioRegistry::global();
    StrategyRegistry::global();
    TimingBackendRegistry::global();
    ExploreRegistry::global();

    sockaddr_un addr;
    fillSocketAddress(options_.socketPath, &addr);

    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        fatal("serve: cannot create socket: ", std::strerror(errno));
    // A previous server instance may have left its socket file behind;
    // binding over it needs the unlink (stale files never answer).
    ::unlink(options_.socketPath.c_str());
    if (::bind(listenFd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
        int err = errno;
        ::close(listenFd_);
        listenFd_ = -1;
        fatal("serve: cannot bind '", options_.socketPath,
              "': ", std::strerror(err));
    }
    if (::listen(listenFd_, 64) != 0) {
        int err = errno;
        ::close(listenFd_);
        listenFd_ = -1;
        ::unlink(options_.socketPath.c_str());
        fatal("serve: cannot listen on '", options_.socketPath,
              "': ", std::strerror(err));
    }

    stopping_.store(false);
    running_.store(true);
    acceptThread_ = std::thread(&Server::acceptLoop, this);
}

void
Server::acceptLoop()
{
    for (;;) {
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (stopping_.load())
                break;
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            warn("serve: accept failed: ", std::strerror(errno));
            break;
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (stopping_.load()) {
                ::close(fd);
                break;
            }
            connections_.insert(fd);
        }
        // Plain detached threads, NOT pool workers: a handler runs
        // whole matrix sweeps, and parallelFor degrades to serial
        // inside a pool thread. stop() joins via the connection set.
        std::thread(&Server::handleConnection, this, fd).detach();
    }
}

void
Server::handleConnection(int fd)
{
    std::string pending;
    char buf[4096];
    bool open = true;
    while (open) {
        ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            break;
        pending.append(buf, static_cast<std::size_t>(n));
        std::size_t eol;
        while (open && (eol = pending.find('\n')) != std::string::npos) {
            std::string line = pending.substr(0, eol);
            pending.erase(0, eol + 1);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            if (line.empty())
                continue;
            bool shutdown = false;
            std::string response = handleLine(line, &shutdown);
            if (!sendAllFd(fd, response))
                open = false;
            if (shutdown) {
                // stop() waits for this very connection to drain, so
                // it must run elsewhere; the handler just exits.
                std::thread([this] { stop(); }).detach();
                open = false;
            }
        }
        // Every complete line has been consumed above, so leftover
        // bytes are one partial request line. A peer streaming more
        // than kMaxFrameLine without a newline would otherwise grow
        // `pending` without bound — answer an error and hang up.
        if (open && pending.size() > kMaxFrameLine) {
            errors_.fetch_add(1, std::memory_order_relaxed);
            sendAllFd(fd, frameErrorMessage(detail::concat(
                              "request line exceeds ", kMaxFrameLine,
                              " bytes")));
            open = false;
        }
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        connections_.erase(fd);
        idle_.notify_all();
    }
    ::close(fd);
}

void
Server::stop()
{
    std::lock_guard<std::mutex> stopGuard(stopMutex_);
    if (!running_.load())
        return;
    stopping_.store(true);

    // Wake the accept loop, then every in-flight connection.
    ::shutdown(listenFd_, SHUT_RDWR);
    if (acceptThread_.joinable())
        acceptThread_.join();
    ::close(listenFd_);
    listenFd_ = -1;

    {
        std::unique_lock<std::mutex> lock(mutex_);
        for (int fd : connections_)
            ::shutdown(fd, SHUT_RDWR);
        idle_.wait(lock, [&] { return connections_.empty(); });
        running_.store(false);
        idle_.notify_all(); // waitUntilStopped watches running_.
    }
    ::unlink(options_.socketPath.c_str());
}

void
Server::waitUntilStopped()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [&] { return !running_.load(); });
}

Server::Stats
Server::stats() const
{
    Stats s;
    s.requests = requests_.load(std::memory_order_relaxed);
    s.errors = errors_.load(std::memory_order_relaxed);
    return s;
}

// ---------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------

ServeReply
serveRequest(const std::string& socketPath,
             const std::string& requestLine)
{
    sockaddr_un addr;
    fillSocketAddress(socketPath, &addr);

    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        fatal("serve: cannot create socket: ", std::strerror(errno));
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
        int err = errno;
        ::close(fd);
        fatal("serve: cannot connect to '", socketPath,
              "': ", std::strerror(err));
    }
    if (!sendAllFd(fd, requestLine + "\n")) {
        int err = errno;
        ::close(fd);
        fatal("serve: send failed: ", std::strerror(err));
    }

    // Read one framed reply. The FrameBuffer validates the status
    // line's `bytes` field (nonnegative integer under the payload
    // cap), so a corrupt server can never drive a giant allocation or
    // a truncating size_t cast here.
    FrameBuffer buffer("serve");
    Frame frame;
    try {
        frame = readFrameFd(fd, buffer, "serve");
    } catch (const FatalError&) {
        ::close(fd);
        throw;
    }
    ::close(fd);
    if (buffer.pending() != 0)
        fatal("serve: payload overrun (", buffer.pending(),
              " bytes past the framed reply)");
    return ServeReply{std::move(frame.status),
                      std::move(frame.payload)};
}

} // namespace libra
