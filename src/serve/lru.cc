#include "serve/lru.hh"

namespace libra {

namespace {

std::size_t
resultHeapBytes(const OptimizationResult& result)
{
    return result.bw.size() * sizeof(double) +
           result.perWorkloadTime.size() * sizeof(Seconds);
}

} // namespace

std::size_t
LruCache::entryBytes(const std::string& key, const LibraReport& report)
{
    // List node + two index pointers approximated by the Entry itself
    // plus a fixed bookkeeping constant; heap payload counted exactly.
    return sizeof(Entry) + 4 * sizeof(void*) + key.size() +
           resultHeapBytes(report.optimized) +
           resultHeapBytes(report.equalBw);
}

bool
LruCache::overBudget() const
{
    if (capacity_ != 0 && order_.size() > capacity_)
        return true;
    return maxBytes_ != 0 && bytes_ > maxBytes_;
}

void
LruCache::evictColdest()
{
    bytes_ -= entryBytes(order_.back().first, order_.back().second);
    index_.erase(order_.back().first);
    order_.pop_back();
    ++evictions_;
}

bool
LruCache::get(const std::string& key, LibraReport* out)
{
    if (disabled())
        return false;
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it == index_.end()) {
        ++misses_;
        return false;
    }
    order_.splice(order_.begin(), order_, it->second);
    ++hits_;
    *out = it->second->second;
    return true;
}

void
LruCache::put(const std::string& key, const LibraReport& report)
{
    if (disabled())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it != index_.end()) {
        // Refresh in place; the report for a canonical key is unique
        // (evaluation is deterministic), but overwriting keeps the
        // cache correct even if a future caller violates that.
        order_.splice(order_.begin(), order_, it->second);
        bytes_ -= entryBytes(key, it->second->second);
        it->second->second = report;
        bytes_ += entryBytes(key, report);
    } else {
        order_.emplace_front(key, report);
        index_.emplace(key, order_.begin());
        bytes_ += entryBytes(key, report);
    }
    // Evicting from the cold end restores both bounds; an entry whose
    // own size exceeds the whole byte budget ends up evicting itself
    // (the loop drains down to it, then takes it too).
    while (overBudget() && !order_.empty())
        evictColdest();
}

LruCache::Stats
LruCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Stats s;
    s.hits = hits_;
    s.misses = misses_;
    s.evictions = evictions_;
    s.entries = order_.size();
    s.capacity = capacity_;
    s.bytes = bytes_;
    s.maxBytes = maxBytes_;
    return s;
}

} // namespace libra
