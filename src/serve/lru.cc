#include "serve/lru.hh"

namespace libra {

bool
LruCache::get(const std::string& key, LibraReport* out)
{
    if (capacity_ == 0)
        return false;
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it == index_.end()) {
        ++misses_;
        return false;
    }
    order_.splice(order_.begin(), order_, it->second);
    ++hits_;
    *out = it->second->second;
    return true;
}

void
LruCache::put(const std::string& key, const LibraReport& report)
{
    if (capacity_ == 0)
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it != index_.end()) {
        // Refresh in place; the report for a canonical key is unique
        // (evaluation is deterministic), but overwriting keeps the
        // cache correct even if a future caller violates that.
        order_.splice(order_.begin(), order_, it->second);
        it->second->second = report;
        return;
    }
    order_.emplace_front(key, report);
    index_.emplace(key, order_.begin());
    if (order_.size() > capacity_) {
        index_.erase(order_.back().first);
        order_.pop_back();
        ++evictions_;
    }
}

LruCache::Stats
LruCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Stats s;
    s.hits = hits_;
    s.misses = misses_;
    s.evictions = evictions_;
    s.entries = order_.size();
    s.capacity = capacity_;
    return s;
}

} // namespace libra
