/**
 * @file
 * Minimal fixed-width table printer used by the benchmark harness to emit
 * paper-style rows/series on stdout, plus a CSV writer for plotting.
 */

#ifndef LIBRA_COMMON_TABLE_HH
#define LIBRA_COMMON_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace libra {

/** Column-aligned text table with an optional title and header rule. */
class Table
{
  public:
    explicit Table(std::string title = "");

    /** Set the header row. Column count is inferred from it. */
    void header(std::vector<std::string> cells);

    /** Append a data row; must match the header width if one was set. */
    void row(std::vector<std::string> cells);

    /** Convenience: format doubles with @p precision digits. */
    static std::string num(double v, int precision = 2);

    /** Render the table to @p os. */
    void print(std::ostream& os) const;

    /** Render the table as comma-separated values. */
    void printCsv(std::ostream& os) const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace libra

#endif // LIBRA_COMMON_TABLE_HH
