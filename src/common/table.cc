#include "common/table.hh"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/logging.hh"

namespace libra {

Table::Table(std::string title) : title_(std::move(title)) {}

void
Table::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
Table::row(std::vector<std::string> cells)
{
    if (!header_.empty() && cells.size() != header_.size()) {
        panic("table row width ", cells.size(), " != header width ",
              header_.size());
    }
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double v, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << v;
    return oss.str();
}

void
Table::print(std::ostream& os) const
{
    std::vector<std::size_t> widths;
    auto grow = [&widths](const std::vector<std::string>& cells) {
        if (widths.size() < cells.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(header_);
    for (const auto& r : rows_)
        grow(r);

    auto emit = [&](const std::vector<std::string>& cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            os << std::left << std::setw(static_cast<int>(widths[i]) + 2)
               << cells[i];
        }
        os << '\n';
    };

    if (!title_.empty())
        os << "== " << title_ << " ==\n";
    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (auto w : widths)
            total += w + 2;
        os << std::string(total, '-') << '\n';
    }
    for (const auto& r : rows_)
        emit(r);
}

void
Table::printCsv(std::ostream& os) const
{
    auto emit = [&os](const std::vector<std::string>& cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (i)
                os << ',';
            os << cells[i];
        }
        os << '\n';
    };
    if (!header_.empty())
        emit(header_);
    for (const auto& r : rows_)
        emit(r);
}

} // namespace libra
