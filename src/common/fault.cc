#include "common/fault.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace libra {

namespace {

constexpr const char* kSiteNames[kNumFaultSites] = {
    "cache-open",
    "cache-load-read",
    "cache-store-write",
    "cache-store-rename",
    "point-eval",
};

/**
 * The armed configuration plus its counters. Guarded by the install
 * contract (no concurrent installFaults/clearFaults with checks);
 * counters are atomics because checks do run concurrently.
 */
struct FaultState
{
    FaultConfig config;
    std::array<std::atomic<std::uint64_t>, kNumFaultSites> checks{};
    std::array<std::atomic<std::uint64_t>, kNumFaultSites> injected{};
    std::array<std::atomic<std::uint64_t>, kNumFaultSites> sequence{};
};

FaultState&
state()
{
    static FaultState s;
    return s;
}

/**
 * splitmix64 finalizer over (seed, site, key) — the same mixing the
 * multistart engine uses for per-start RNG streams, so draws at
 * different sites (or keys) are decorrelated while staying a pure
 * function of their inputs.
 */
std::uint64_t
mixDraw(std::uint64_t seed, int site, std::uint64_t key)
{
    std::uint64_t z = seed +
                      0x9E3779B97F4A7C15ull *
                          (static_cast<std::uint64_t>(site) + 1) +
                      key;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    z ^= z >> 31;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

} // namespace

const char*
faultSiteName(FaultSite site)
{
    return kSiteNames[static_cast<int>(site)];
}

std::vector<std::string>
faultSiteNames()
{
    return {kSiteNames, kSiteNames + kNumFaultSites};
}

bool
FaultConfig::any() const
{
    for (double r : rate) {
        if (r > 0.0)
            return true;
    }
    return false;
}

FaultConfig
parseFaultSpec(const std::string& text)
{
    FaultConfig config;
    if (text.empty())
        fatal("empty fault spec (expected site=rate[,...][,seed=N])");

    std::array<bool, kNumFaultSites> seen{};
    bool seenSeed = false;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        std::size_t comma = text.find(',', pos);
        if (comma == std::string::npos)
            comma = text.size();
        std::string token = text.substr(pos, comma - pos);
        pos = comma + 1;

        std::size_t eq = token.find('=');
        if (eq == std::string::npos || eq == 0 ||
            eq + 1 >= token.size()) {
            fatal("fault spec token '", token,
                  "' is not site=rate or seed=N");
        }
        std::string name = token.substr(0, eq);
        std::string value = token.substr(eq + 1);

        if (name == "seed") {
            if (seenSeed)
                fatal("fault spec sets seed twice");
            char* end = nullptr;
            unsigned long long v =
                std::strtoull(value.c_str(), &end, 10);
            if (end == value.c_str() || *end != '\0')
                fatal("fault spec seed '", value,
                      "' is not an integer");
            config.seed = v;
            seenSeed = true;
            continue;
        }

        int site = -1;
        for (int s = 0; s < kNumFaultSites; ++s) {
            if (name == kSiteNames[s])
                site = s;
        }
        if (site < 0) {
            std::string known;
            for (const auto& n : faultSiteNames())
                known += known.empty() ? n : (", " + n);
            fatal("unknown fault site '", name, "' (known: ", known,
                  ")");
        }
        if (seen[static_cast<std::size_t>(site)])
            fatal("fault spec sets site '", name, "' twice");
        seen[static_cast<std::size_t>(site)] = true;

        char* end = nullptr;
        double rate = std::strtod(value.c_str(), &end);
        if (end == value.c_str() || *end != '\0')
            fatal("fault rate '", value, "' for site '", name,
                  "' is not a number");
        if (!(rate >= 0.0 && rate <= 1.0))
            fatal("fault rate ", rate, " for site '", name,
                  "' is outside [0, 1]");
        config.rate[static_cast<std::size_t>(site)] = rate;

        if (comma == text.size())
            break;
    }
    return config;
}

std::string
faultSpecToString(const FaultConfig& config)
{
    std::string out;
    for (int s = 0; s < kNumFaultSites; ++s) {
        double r = config.rate[static_cast<std::size_t>(s)];
        if (r <= 0.0)
            continue;
        if (!out.empty())
            out += ',';
        out += kSiteNames[s];
        out += '=';
        // Shortest form that round-trips through strtod.
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", r);
        double back = std::strtod(buf, nullptr);
        for (int prec = 1; prec < 17; ++prec) {
            char shorter[32];
            std::snprintf(shorter, sizeof(shorter), "%.*g", prec, r);
            if (std::strtod(shorter, nullptr) == back) {
                std::snprintf(buf, sizeof(buf), "%s", shorter);
                break;
            }
        }
        out += buf;
    }
    out += out.empty() ? "seed=" : ",seed=";
    out += std::to_string(config.seed);
    return out;
}

void
installFaults(const FaultConfig& config)
{
    FaultState& s = state();
    s.config = config;
    for (int i = 0; i < kNumFaultSites; ++i) {
        s.checks[static_cast<std::size_t>(i)].store(0);
        s.injected[static_cast<std::size_t>(i)].store(0);
        s.sequence[static_cast<std::size_t>(i)].store(0);
    }
    detail::faultsArmedFlag.store(config.any());
}

void
clearFaults()
{
    installFaults(FaultConfig{});
}

bool
faultsArmed()
{
    return detail::faultsArmedFlag.load();
}

FaultStats
faultStats()
{
    FaultState& s = state();
    FaultStats out;
    for (int i = 0; i < kNumFaultSites; ++i) {
        out.checks[static_cast<std::size_t>(i)] =
            s.checks[static_cast<std::size_t>(i)].load();
        out.injected[static_cast<std::size_t>(i)] =
            s.injected[static_cast<std::size_t>(i)].load();
    }
    return out;
}

namespace detail {

std::atomic<bool> faultsArmedFlag{false};

bool
injectFaultSlow(FaultSite site, std::uint64_t key)
{
    FaultState& s = state();
    const auto idx = static_cast<std::size_t>(site);
    s.checks[idx].fetch_add(1, std::memory_order_relaxed);
    const double rate = s.config.rate[idx];
    if (rate <= 0.0)
        return false;
    bool fire = rate >= 1.0;
    if (!fire) {
        std::uint64_t z =
            mixDraw(s.config.seed, static_cast<int>(site), key);
        // Top 53 bits -> uniform double in [0, 1).
        fire = static_cast<double>(z >> 11) * 0x1.0p-53 < rate;
    }
    if (fire)
        s.injected[idx].fetch_add(1, std::memory_order_relaxed);
    return fire;
}

std::uint64_t
nextFaultSequence(FaultSite site)
{
    return state()
        .sequence[static_cast<std::size_t>(site)]
        .fetch_add(1, std::memory_order_relaxed);
}

} // namespace detail

} // namespace libra
