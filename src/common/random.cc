#include "common/random.hh"

#include <numeric>

namespace libra {

double
Rng::uniform(double lo, double hi)
{
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
}

int
Rng::uniformInt(int lo, int hi)
{
    std::uniform_int_distribution<int> dist(lo, hi);
    return dist(engine_);
}

double
Rng::normal()
{
    // A fresh distribution each call discards the Box-Muller spare,
    // trading one wasted draw for draw-count independence: the stream
    // position after n calls never depends on distribution state.
    std::normal_distribution<double> dist(0.0, 1.0);
    return dist(engine_);
}

std::vector<double>
Rng::uniformVec(std::size_t n, double lo, double hi)
{
    std::vector<double> v(n);
    for (auto& x : v)
        x = uniform(lo, hi);
    return v;
}

std::vector<double>
Rng::simplexPoint(std::size_t n, double total)
{
    // Exponential spacings normalized to the simplex give a uniform
    // distribution over the scaled simplex.
    std::exponential_distribution<double> dist(1.0);
    std::vector<double> v(n);
    double sum = 0.0;
    for (auto& x : v) {
        x = dist(engine_);
        sum += x;
    }
    for (auto& x : v)
        x *= total / sum;
    return v;
}

} // namespace libra
