/**
 * @file
 * Status / error reporting in the gem5 idiom.
 *
 * fatal() is for user errors (bad configuration, infeasible constraints):
 * it throws a FatalError that callers (and tests) may catch.
 * panic() is for internal invariant violations: it aborts.
 * inform()/warn() report status without stopping; their emission is
 * line-atomic (a process-wide mutex), so messages from concurrent
 * sweep workers never interleave mid-line on stderr.
 * See docs/ROBUSTNESS.md for the full failure taxonomy.
 */

#ifndef LIBRA_COMMON_LOGGING_HH
#define LIBRA_COMMON_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace libra {

/** Exception thrown by fatal(): the condition is the user's to fix. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string& msg)
        : std::runtime_error(msg)
    {}
};

namespace detail {

/** Fold a parameter pack into one message string. */
template <typename... Args>
std::string
concat(Args&&... args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

[[noreturn]] void fatalImpl(const std::string& msg);
[[noreturn]] void panicImpl(const std::string& msg);
void informImpl(const std::string& msg);
void warnImpl(const std::string& msg);

} // namespace detail

/**
 * Stop because the user asked for something impossible
 * (e.g. contradictory bandwidth constraints). Throws FatalError.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args&&... args)
{
    detail::fatalImpl(detail::concat(std::forward<Args>(args)...));
}

/** Stop because LIBRA itself is broken. Aborts the process. */
template <typename... Args>
[[noreturn]] void
panic(Args&&... args)
{
    detail::panicImpl(detail::concat(std::forward<Args>(args)...));
}

/** Informational status message on stderr. */
template <typename... Args>
void
inform(Args&&... args)
{
    detail::informImpl(detail::concat(std::forward<Args>(args)...));
}

/** Warning: results may be degraded but execution continues. */
template <typename... Args>
void
warn(Args&&... args)
{
    detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

/** Enable/disable inform() output (benches silence it). */
void setInformEnabled(bool enabled);

} // namespace libra

#endif // LIBRA_COMMON_LOGGING_HH
