#include "common/json.hh"

#include <cctype>
#include <charconv>
#include <cmath>

#include "common/logging.hh"

namespace libra {

std::string
jsonNumberToString(double v)
{
    if (!std::isfinite(v))
        fatal("cannot serialize non-finite number to JSON");
    // Integers up to 2^53 print without an exponent or decimal point,
    // keeping labels and counts readable in emitted files.
    if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
        char buf[32];
        auto [end, ec] = std::to_chars(
            buf, buf + sizeof(buf), static_cast<long long>(v));
        (void)ec;
        return std::string(buf, end);
    }
    char buf[32];
    auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
    (void)ec;
    return std::string(buf, end);
}

bool
Json::asBool() const
{
    if (kind_ != Kind::Bool)
        fatal("JSON value is not a bool");
    return bool_;
}

double
Json::asNumber() const
{
    if (kind_ != Kind::Number)
        fatal("JSON value is not a number");
    return num_;
}

const std::string&
Json::asString() const
{
    if (kind_ != Kind::String)
        fatal("JSON value is not a string");
    return str_;
}

const Json::Array&
Json::items() const
{
    if (kind_ != Kind::Array)
        fatal("JSON value is not an array");
    return arr_;
}

const Json::Object&
Json::members() const
{
    if (kind_ != Kind::Object)
        fatal("JSON value is not an object");
    return obj_;
}

void
Json::push(Json v)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Array;
    if (kind_ != Kind::Array)
        fatal("JSON push on a non-array value");
    arr_.push_back(std::move(v));
}

Json&
Json::operator[](const std::string& key)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Object;
    if (kind_ != Kind::Object)
        fatal("JSON [] on a non-object value");
    for (auto& [k, v] : obj_) {
        if (k == key)
            return v;
    }
    obj_.emplace_back(key, Json());
    return obj_.back().second;
}

bool
Json::has(const std::string& key) const
{
    if (kind_ != Kind::Object)
        return false;
    for (const auto& [k, v] : obj_) {
        if (k == key)
            return true;
    }
    return false;
}

const Json&
Json::at(const std::string& key) const
{
    for (const auto& [k, v] : members()) {
        if (k == key)
            return v;
    }
    fatal("JSON object has no member '", key, "'");
}

namespace {

void
appendEscaped(std::string& out, const std::string& s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                static const char* hex = "0123456789abcdef";
                out += "\\u00";
                out += hex[(c >> 4) & 0xf];
                out += hex[c & 0xf];
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
appendNewline(std::string& out, int indent, int depth)
{
    if (indent < 0)
        return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * depth), ' ');
}

} // namespace

void
Json::dumpTo(std::string& out, int indent, int depth) const
{
    switch (kind_) {
      case Kind::Null:
        out += "null";
        return;
      case Kind::Bool:
        out += bool_ ? "true" : "false";
        return;
      case Kind::Number:
        out += jsonNumberToString(num_);
        return;
      case Kind::String:
        appendEscaped(out, str_);
        return;
      case Kind::Array:
        if (arr_.empty()) {
            out += "[]";
            return;
        }
        out += '[';
        for (std::size_t i = 0; i < arr_.size(); ++i) {
            if (i)
                out += ',';
            appendNewline(out, indent, depth + 1);
            arr_[i].dumpTo(out, indent, depth + 1);
        }
        appendNewline(out, indent, depth);
        out += ']';
        return;
      case Kind::Object:
        if (obj_.empty()) {
            out += "{}";
            return;
        }
        out += '{';
        for (std::size_t i = 0; i < obj_.size(); ++i) {
            if (i)
                out += ',';
            appendNewline(out, indent, depth + 1);
            appendEscaped(out, obj_[i].first);
            out += indent < 0 ? ":" : ": ";
            obj_[i].second.dumpTo(out, indent, depth + 1);
        }
        appendNewline(out, indent, depth);
        out += '}';
        return;
    }
    panic("unknown JSON kind");
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

namespace {

/** Recursive-descent JSON parser over a string view. */
class Parser
{
  public:
    explicit Parser(const std::string& text) : text_(text) {}

    Json
    parse()
    {
        Json v = value();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const char* what) const
    {
        fatal("JSON parse error at offset ", pos_, ": ", what);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail("unexpected character");
        ++pos_;
    }

    bool
    consumeLiteral(const char* lit)
    {
        std::size_t n = std::string(lit).size();
        if (text_.compare(pos_, n, lit) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            char e = text_[pos_++];
            switch (e) {
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case '/':
                out += '/';
                break;
              case 'n':
                out += '\n';
                break;
              case 't':
                out += '\t';
                break;
              case 'r':
                out += '\r';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code += static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code += static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code += static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape");
                }
                if (code > 0x7f)
                    fail("non-ASCII \\u escapes are not supported");
                out += static_cast<char>(code);
                break;
              }
              default:
                fail("unknown escape");
            }
        }
    }

    Json
    number()
    {
        std::size_t start = pos_;
        if (text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        // from_chars is locale-independent, matching the to_chars
        // writer (strtod would honor LC_NUMERIC decimal separators).
        const char* begin = text_.data() + start;
        const char* limit = text_.data() + pos_;
        double v = 0.0;
        auto [end, ec] = std::from_chars(begin, limit, v);
        if (ec != std::errc() || end != limit)
            fail("bad number");
        return Json(v);
    }

    Json
    value()
    {
        char c = peek();
        if (c == '{') {
            ++pos_;
            Json obj = Json::object();
            if (peek() == '}') {
                ++pos_;
                return obj;
            }
            while (true) {
                skipWs();
                std::string key = string();
                expect(':');
                obj[key] = value();
                char sep = peek();
                ++pos_;
                if (sep == '}')
                    return obj;
                if (sep != ',')
                    fail("expected ',' or '}'");
            }
        }
        if (c == '[') {
            ++pos_;
            Json arr = Json::array();
            if (peek() == ']') {
                ++pos_;
                return arr;
            }
            while (true) {
                arr.push(value());
                char sep = peek();
                ++pos_;
                if (sep == ']')
                    return arr;
                if (sep != ',')
                    fail("expected ',' or ']'");
            }
        }
        if (c == '"')
            return Json(string());
        if (consumeLiteral("true"))
            return Json(true);
        if (consumeLiteral("false"))
            return Json(false);
        if (consumeLiteral("null"))
            return Json();
        if (c == '-' || std::isdigit(static_cast<unsigned char>(c)))
            return number();
        fail("unexpected character");
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

} // namespace

Json
Json::parse(const std::string& text)
{
    return Parser(text).parse();
}

} // namespace libra
