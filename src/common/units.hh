/**
 * @file
 * Scalar unit aliases and conversion helpers used throughout LIBRA.
 *
 * LIBRA's analytical models operate on continuous quantities (bytes,
 * seconds, GB/s, dollars), so all units are plain doubles with descriptive
 * aliases. The discrete-event simulator uses integer picosecond ticks
 * (see sim/event_queue.hh).
 */

#ifndef LIBRA_COMMON_UNITS_HH
#define LIBRA_COMMON_UNITS_HH

#include <cstdint>

namespace libra {

/** Payload size in bytes. Double so multi-TB sizes divide cleanly. */
using Bytes = double;

/** Wall-clock duration in seconds. */
using Seconds = double;

/** Bandwidth in gigabytes per second (1 GB/s = 1e9 bytes/s). */
using GBps = double;

/** Dollar cost. */
using Dollars = double;

/** Floating-point operations. */
using Flops = double;

constexpr double kKilo = 1e3;
constexpr double kMega = 1e6;
constexpr double kGiga = 1e9;
constexpr double kTera = 1e12;

constexpr Bytes kKB = 1e3;
constexpr Bytes kMB = 1e6;
constexpr Bytes kGB = 1e9;
constexpr Bytes kTB = 1e12;

/** Bytes per FP16 element, the datatype assumed across the paper. */
constexpr Bytes kFp16Bytes = 2.0;

/** Bytes per FP32 element (optimizer states in ZeRO). */
constexpr Bytes kFp32Bytes = 4.0;

/**
 * Serialization time of @p size bytes over a @p bw GB/s channel.
 *
 * @param size Payload size in bytes.
 * @param bw   Channel bandwidth in GB/s; must be positive.
 * @return Transfer time in seconds.
 */
inline Seconds
transferTime(Bytes size, GBps bw)
{
    return size / (bw * kGiga);
}

/**
 * Execution time of @p flops floating-point operations at @p tflops
 * effective teraflops.
 */
inline Seconds
computeTime(Flops flops, double tflops)
{
    return flops / (tflops * kTera);
}

} // namespace libra

#endif // LIBRA_COMMON_UNITS_HH
