/**
 * @file
 * Deterministic, seeded fault injection for exercising failure paths
 * on demand (docs/ROBUSTNESS.md).
 *
 * Every best-effort seam in the study stack carries a *named injection
 * site*: the cache I/O operations (open, load-read, store-write,
 * store-rename) and the point-evaluation seam of the cached sweep.
 * A site check is a pure function of (seed, site, key):
 *
 *     injectFault(site, key) == splitmix64(seed, site, key) < rate
 *
 * so a given fault either always or never fires for a given key at a
 * given seed — independent of thread count, scheduling, or whether the
 * surrounding run was fresh or cached. Call sites key by the content
 * hash at hand (a cache entry's key, a design point's canonical hash,
 * a retry attempt's salted key); seams with no content identity use
 * the keyless overload, which draws from a per-site arrival counter
 * and is therefore only count-deterministic.
 *
 * Configuration is a spec string, `site=rate[,site=rate...][,seed=N]`
 * (the `--faults` CLI flag / LIBRA_FAULTS environment variable), e.g.
 *
 *     cache-load-read=0.25,cache-store-write=0.25,seed=11
 *
 * Unconfigured, every check is a single relaxed atomic load of the
 * armed flag — effectively free, safe to leave in hot paths.
 */

#ifndef LIBRA_COMMON_FAULT_HH
#define LIBRA_COMMON_FAULT_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace libra {

/** Named injection sites; docs/ROBUSTNESS.md catalogs the seams. */
enum class FaultSite : int {
    CacheOpen = 0,    ///< ResultCache directory creation.
    CacheLoadRead,    ///< Reading a cache entry file.
    CacheStoreWrite,  ///< Writing a cache tmp file.
    CacheStoreRename, ///< Publishing tmp -> final rename.
    PointEval,        ///< Evaluating one design point in cachedSweep.
};

inline constexpr int kNumFaultSites = 5;

/** Stable spec name of @p site (e.g. "cache-load-read"). */
const char* faultSiteName(FaultSite site);

/** All site names in enum order (spec grammar, error messages). */
std::vector<std::string> faultSiteNames();

/** Parsed fault configuration: a rate per site plus the draw seed. */
struct FaultConfig
{
    /** Injection probability per site in [0, 1]; 0 = never. */
    std::array<double, kNumFaultSites> rate{};

    std::uint64_t seed = 1;

    /** True when any site has a nonzero rate. */
    bool any() const;
};

/**
 * Parse `site=rate[,site=rate...][,seed=N]`.
 * @throws FatalError on an unknown site, a duplicate site or seed, a
 * rate outside [0, 1], or a malformed number.
 */
FaultConfig parseFaultSpec(const std::string& text);

/** Canonical text form of @p config (parse round-trips through it). */
std::string faultSpecToString(const FaultConfig& config);

/**
 * Arm fault injection process-wide. Not thread-safe against concurrent
 * injectFault() checks — install before starting a run (the CLI does
 * it at startup; tests install between runs).
 */
void installFaults(const FaultConfig& config);

/** Disarm all sites and reset the keyless arrival counters. */
void clearFaults();

/** True when installFaults armed at least one site. */
bool faultsArmed();

/** Per-site counters of checks made and faults injected while armed. */
struct FaultStats
{
    std::array<std::uint64_t, kNumFaultSites> checks{};
    std::array<std::uint64_t, kNumFaultSites> injected{};
};

/** Snapshot of the counters accumulated since the last install/clear. */
FaultStats faultStats();

/**
 * Salt @p key for retry attempt @p attempt, so a bounded-retry loop
 * draws independently per attempt while staying a pure function of
 * (key, attempt). Attempt 0 is the unsalted key.
 */
inline std::uint64_t
faultRetryKey(std::uint64_t key, int attempt)
{
    return key ^ (static_cast<std::uint64_t>(attempt) *
                  0x9E3779B97F4A7C15ull);
}

namespace detail {

extern std::atomic<bool> faultsArmedFlag;

bool injectFaultSlow(FaultSite site, std::uint64_t key);
std::uint64_t nextFaultSequence(FaultSite site);

} // namespace detail

/**
 * Keyed check: should the fault at @p site fire for content @p key?
 * Deterministic (see file comment); a no-op while disarmed.
 */
inline bool
injectFault(FaultSite site, std::uint64_t key)
{
    if (!detail::faultsArmedFlag.load(std::memory_order_relaxed))
        return false;
    return detail::injectFaultSlow(site, key);
}

/**
 * Keyless check for seams with no content identity: keys by the site's
 * arrival counter, so only the *count* of injected faults is
 * deterministic, not their assignment across threads.
 */
inline bool
injectFault(FaultSite site)
{
    if (!detail::faultsArmedFlag.load(std::memory_order_relaxed))
        return false;
    return detail::injectFaultSlow(site,
                                   detail::nextFaultSequence(site));
}

} // namespace libra

#endif // LIBRA_COMMON_FAULT_HH
