/**
 * @file
 * Deterministic pseudo-random source for the multistart optimizer and
 * randomized property tests. Wraps a fixed-seed Mersenne engine so every
 * run of the benches is reproducible.
 */

#ifndef LIBRA_COMMON_RANDOM_HH
#define LIBRA_COMMON_RANDOM_HH

#include <cstdint>
#include <random>
#include <vector>

namespace libra {

/** Seedable RNG with the handful of draws LIBRA needs. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x11BAa) : engine_(seed) {}

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. */
    int uniformInt(int lo, int hi);

    /** Standard normal draw (CMA-ES sampling). */
    double normal();

    /** Vector of n uniform draws in [lo, hi). */
    std::vector<double> uniformVec(std::size_t n, double lo, double hi);

    /** Point on the positive simplex scaled to sum to @p total. */
    std::vector<double> simplexPoint(std::size_t n, double total);

  private:
    std::mt19937_64 engine_;
};

} // namespace libra

#endif // LIBRA_COMMON_RANDOM_HH
