/**
 * @file
 * Minimal self-contained JSON value type for the study engine.
 *
 * Used for structured scenario-matrix emission, the content-addressed
 * result cache, and the golden-figure files — all places where output
 * must be deterministic and byte-stable:
 *
 *  - objects preserve insertion order (no sorting, no hash maps), so
 *    dumping the same value twice yields identical bytes;
 *  - numbers are rendered with std::to_chars shortest round-trip
 *    formatting, so dump() -> parse() reproduces every double
 *    bit-exactly (the property the result cache relies on);
 *  - no locale dependence anywhere.
 *
 * Deliberately small: null/bool/number/string/array/object, parse and
 * dump. Not a general-purpose JSON library (no comments, no \u escapes
 * beyond ASCII pass-through on output).
 */

#ifndef LIBRA_COMMON_JSON_HH
#define LIBRA_COMMON_JSON_HH

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace libra {

/** Shortest string that strtod parses back to exactly @p v. */
std::string jsonNumberToString(double v);

/**
 * Canonical-text field encoders, shared by every canonical
 * serialization that feeds content identity (the study cache key and
 * the deep-equality helpers defined as equal canonical text). One
 * definition so the encoding can never diverge between sites.
 */
inline void
appendCanonicalNumber(std::string& out, double v)
{
    out += jsonNumberToString(v);
    out += ' ';
}

/** Length-prefixed, so field sequences cannot collide by concatenation. */
inline void
appendCanonicalString(std::string& out, const std::string& s)
{
    out += std::to_string(s.size());
    out += ':';
    out += s;
    out += ' ';
}

/** Insertion-ordered JSON value. */
class Json
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    using Array = std::vector<Json>;
    using Object = std::vector<std::pair<std::string, Json>>;

    Json() = default;
    Json(bool b) : kind_(Kind::Bool), bool_(b) {}
    Json(double v) : kind_(Kind::Number), num_(v) {}
    Json(int v) : kind_(Kind::Number), num_(v) {}
    Json(long v) : kind_(Kind::Number), num_(static_cast<double>(v)) {}
    Json(std::size_t v)
        : kind_(Kind::Number), num_(static_cast<double>(v))
    {}
    Json(const char* s) : kind_(Kind::String), str_(s) {}
    Json(std::string s) : kind_(Kind::String), str_(std::move(s)) {}

    static Json array() { return Json(Kind::Array); }
    static Json object() { return Json(Kind::Object); }

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** Typed accessors; throw FatalError on kind mismatch. */
    bool asBool() const;
    double asNumber() const;
    const std::string& asString() const;
    const Array& items() const;
    const Object& members() const;

    /** Append to an array value (converts a Null to an Array). */
    void push(Json v);

    /**
     * Object member access; appends a null member when the key is
     * absent (converts a Null value to an Object).
     */
    Json& operator[](const std::string& key);

    /** True when an object has member @p key. */
    bool has(const std::string& key) const;

    /** Object member lookup; throws FatalError when absent. */
    const Json& at(const std::string& key) const;

    /**
     * Serialize. @p indent < 0 renders compact one-line JSON;
     * @p indent >= 0 pretty-prints with that many spaces per level.
     * Same value always renders the same bytes.
     */
    std::string dump(int indent = -1) const;

    /** Parse @p text. @throws FatalError on malformed input. */
    static Json parse(const std::string& text);

  private:
    explicit Json(Kind kind) : kind_(kind) {}

    void dumpTo(std::string& out, int indent, int depth) const;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    Array arr_;
    Object obj_;
};

} // namespace libra

#endif // LIBRA_COMMON_JSON_HH
