#include "common/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace libra {

namespace {

std::atomic<bool> informEnabled{true};

/**
 * Serializes message emission: inform()/warn() are called from
 * concurrent sweep workers (cache misses, degraded-mode warnings), and
 * without a lock two messages can interleave mid-line on stderr.
 * fatal() throws and panic() aborts, so only the non-stopping paths
 * need it.
 */
std::mutex&
emitMutex()
{
    static std::mutex m;
    return m;
}

} // namespace

void
setInformEnabled(bool enabled)
{
    informEnabled.store(enabled);
}

namespace detail {

void
fatalImpl(const std::string& msg)
{
    throw FatalError("fatal: " + msg);
}

void
panicImpl(const std::string& msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
informImpl(const std::string& msg)
{
    if (!informEnabled.load())
        return;
    std::lock_guard<std::mutex> lock(emitMutex());
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
warnImpl(const std::string& msg)
{
    std::lock_guard<std::mutex> lock(emitMutex());
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

} // namespace detail

} // namespace libra
