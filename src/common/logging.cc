#include "common/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace libra {

namespace {

std::atomic<bool> informEnabled{true};

} // namespace

void
setInformEnabled(bool enabled)
{
    informEnabled.store(enabled);
}

namespace detail {

void
fatalImpl(const std::string& msg)
{
    throw FatalError("fatal: " + msg);
}

void
panicImpl(const std::string& msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
informImpl(const std::string& msg)
{
    if (informEnabled.load())
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
warnImpl(const std::string& msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

} // namespace detail

} // namespace libra
