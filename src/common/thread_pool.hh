/**
 * @file
 * Fixed-size thread pool powering LIBRA's parallel evaluation engine.
 *
 * Two entry points:
 *
 *  - parallelFor(n, fn): run fn(0..n-1) across the pool. The calling
 *    thread participates, so a pool sized 1 degenerates to a plain
 *    serial loop with no queueing overhead. Nested calls (fn itself
 *    calling parallelFor, e.g. a parallel study sweep whose points run
 *    parallel multistart searches) execute inline in the calling
 *    worker — the outer level already saturates the pool, and inlining
 *    makes nesting deadlock-free by construction.
 *  - submit(fn): future-based one-shot task for irregular work.
 *
 * Determinism contract: parallelFor imposes no ordering, so callers
 * must write results into per-index slots and reduce them in index
 * order afterwards. Every parallel site in LIBRA follows that pattern,
 * which is why optimizer results are bit-identical at any thread count.
 *
 * The global pool is sized by (in priority order) setGlobalThreads(),
 * the LIBRA_THREADS environment variable, then hardware concurrency.
 */

#ifndef LIBRA_COMMON_THREAD_POOL_HH
#define LIBRA_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace libra {

/** Fixed-size worker pool; see file comment for the usage contract. */
class ThreadPool
{
  public:
    /**
     * Create a pool providing @p threads-way parallelism. The calling
     * thread counts as one lane, so @p threads == 1 spawns no workers
     * and runs everything inline.
     */
    explicit ThreadPool(std::size_t threads = 1);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Parallelism degree (worker threads + the calling thread). */
    std::size_t threadCount() const { return workers_.size() + 1; }

    /**
     * Run fn(i) for every i in [0, n). Blocks until all indices have
     * executed. Every index runs even when some throw (coverage is
     * always complete); one of the thrown exceptions is rethrown here
     * (on the pooled path, whichever was captured first — not
     * necessarily the lowest index).
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)>& fn);

    /**
     * Queue one task; the future carries its result or exception.
     * On a pool with no workers the task runs inline immediately.
     */
    template <typename Fn>
    auto
    submit(Fn fn) -> std::future<std::invoke_result_t<Fn>>
    {
        using R = std::invoke_result_t<Fn>;
        auto task =
            std::make_shared<std::packaged_task<R()>>(std::move(fn));
        std::future<R> future = task->get_future();
        enqueue([task] { (*task)(); });
        return future;
    }

    /** True when the current thread is executing pool work. */
    static bool insidePool();

    /** The process-wide pool used by all LIBRA parallel sites. */
    static ThreadPool& global();

    /**
     * Resize the global pool (the --threads / LIBRA_THREADS knob).
     * Must not be called from inside pool work. A replaced pool is
     * retired, not destroyed, so global() references held by other
     * threads stay valid across a resize (their work just keeps
     * running on the old pool's threads).
     */
    static void setGlobalThreads(std::size_t threads);

    /** Parallelism degree of the global pool. */
    static std::size_t globalThreadCount();

  private:
    struct ForJob;

    void enqueue(std::function<void()> task);
    void workerLoop();

    std::vector<std::thread> workers_;
    std::mutex mutex_;
    std::condition_variable cv_;
    std::queue<std::function<void()>> tasks_;
    bool stop_ = false;
};

/** parallelFor on the global pool. */
inline void
parallelFor(std::size_t n, const std::function<void(std::size_t)>& fn)
{
    ThreadPool::global().parallelFor(n, fn);
}

/**
 * Map @p fn over @p items on the global pool; results come back in
 * input order (the determinism pattern from the file comment). The
 * result type must be default-constructible.
 */
template <typename T, typename Fn>
auto
parallelMap(const std::vector<T>& items, Fn fn)
    -> std::vector<std::invoke_result_t<Fn, const T&>>
{
    std::vector<std::invoke_result_t<Fn, const T&>> out(items.size());
    ThreadPool::global().parallelFor(
        items.size(), [&](std::size_t i) { out[i] = fn(items[i]); });
    return out;
}

} // namespace libra

#endif // LIBRA_COMMON_THREAD_POOL_HH
