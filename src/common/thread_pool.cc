#include "common/thread_pool.hh"

#include <atomic>
#include <cstdlib>
#include <string>

#include "common/logging.hh"

namespace libra {

namespace {

/** Depth of pool work on this thread (workers and parallelFor lanes). */
thread_local int tlsPoolDepth = 0;

/** RAII marker for a thread executing pool work. */
struct PoolWorkScope
{
    PoolWorkScope() { ++tlsPoolDepth; }
    ~PoolWorkScope() { --tlsPoolDepth; }
};

std::size_t
defaultThreadCount()
{
    if (const char* env = std::getenv("LIBRA_THREADS")) {
        char* end = nullptr;
        long v = std::strtol(env, &end, 10);
        // Same [1, 4096] bound as --threads and the THREADS study
        // line, so every entry point for the knob behaves alike.
        if (end != env && *end == '\0' && v >= 1 && v <= 4096)
            return static_cast<std::size_t>(v);
        warn("ignoring malformed LIBRA_THREADS='", env,
             "' (expected 1..4096)");
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

} // namespace

/** Shared state of one parallelFor call. */
struct ThreadPool::ForJob
{
    std::atomic<std::size_t> next{0}; ///< Next index to claim.
    std::atomic<std::size_t> done{0}; ///< Indices fully executed.
    std::size_t n = 0;
    const std::function<void(std::size_t)>* fn = nullptr;

    std::mutex mutex;
    std::condition_variable cv;
    std::exception_ptr error;

    /** Claim and run indices until none remain. */
    void
    drain()
    {
        PoolWorkScope scope;
        for (;;) {
            std::size_t i = next.fetch_add(1);
            if (i >= n)
                return;
            try {
                (*fn)(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(mutex);
                if (!error)
                    error = std::current_exception();
            }
            if (done.fetch_add(1) + 1 == n) {
                std::lock_guard<std::mutex> lock(mutex);
                cv.notify_all();
            }
        }
    }
};

ThreadPool::ThreadPool(std::size_t threads)
{
    if (threads == 0)
        threads = 1;
    workers_.reserve(threads - 1);
    for (std::size_t t = 0; t + 1 < threads; ++t)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_)
        w.join();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
            if (tasks_.empty())
                return; // stop_ set and queue drained.
            task = std::move(tasks_.front());
            tasks_.pop();
        }
        PoolWorkScope scope;
        task();
    }
}

void
ThreadPool::enqueue(std::function<void()> task)
{
    // Submitting from inside pool work must not queue-and-wait: the
    // waiting worker may be the only one free, deadlocking the pool.
    // Mirror parallelFor's nested behavior and run inline.
    if (!insidePool()) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!workers_.empty() && !stop_) {
            tasks_.push(std::move(task));
            cv_.notify_one();
            return;
        }
    }
    // Inline execution happens outside the lock, so a task that
    // itself submits work cannot relock mutex_.
    PoolWorkScope scope;
    task();
}

bool
ThreadPool::insidePool()
{
    return tlsPoolDepth > 0;
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)>& fn)
{
    if (n == 0)
        return;
    // Serial fast path: tiny trip counts, worker-less pools, and nested
    // calls (the outer parallel level already owns the threads). Same
    // exception contract as the pooled path: every index runs, the
    // first failure is rethrown at the end.
    if (n == 1 || workers_.empty() || insidePool()) {
        PoolWorkScope scope;
        std::exception_ptr error;
        for (std::size_t i = 0; i < n; ++i) {
            try {
                fn(i);
            } catch (...) {
                if (!error)
                    error = std::current_exception();
            }
        }
        if (error)
            std::rethrow_exception(error);
        return;
    }

    auto job = std::make_shared<ForJob>();
    job->n = n;
    job->fn = &fn;

    std::size_t helpers = std::min(workers_.size(), n - 1);
    for (std::size_t h = 0; h < helpers; ++h)
        enqueue([job] { job->drain(); });

    // The caller is a lane too; with all indices claimed it falls
    // through to the wait below.
    job->drain();

    std::unique_lock<std::mutex> lock(job->mutex);
    job->cv.wait(lock,
                 [&] { return job->done.load() == job->n; });
    if (job->error)
        std::rethrow_exception(job->error);
}

namespace {

std::mutex gGlobalMutex;
std::unique_ptr<ThreadPool> gGlobalPool;

/**
 * Pools replaced by setGlobalThreads. References returned by global()
 * may still be in use on other threads when a resize happens, so
 * retired pools stay alive (workers parked on their empty queues)
 * until process exit instead of being destroyed under a caller.
 */
std::vector<std::unique_ptr<ThreadPool>> gRetiredPools;

} // namespace

ThreadPool&
ThreadPool::global()
{
    std::lock_guard<std::mutex> lock(gGlobalMutex);
    if (!gGlobalPool)
        gGlobalPool = std::make_unique<ThreadPool>(defaultThreadCount());
    return *gGlobalPool;
}

void
ThreadPool::setGlobalThreads(std::size_t threads)
{
    if (insidePool())
        panic("setGlobalThreads called from inside pool work");
    std::size_t want = std::max<std::size_t>(threads, 1);
    std::lock_guard<std::mutex> lock(gGlobalMutex);
    if (gGlobalPool && gGlobalPool->threadCount() == want)
        return;
    if (gGlobalPool)
        gRetiredPools.push_back(std::move(gGlobalPool));
    // Reuse a retired pool of the right size before building a new
    // one, bounding growth at one pool per distinct size even when a
    // caller alternates thread counts.
    for (auto& retired : gRetiredPools) {
        if (retired && retired->threadCount() == want) {
            gGlobalPool = std::move(retired);
            return;
        }
    }
    // Build the replacement from the clamped size, not the raw
    // argument, so the early-return size check, the retired-pool reuse
    // scan, and the pool actually built can never disagree.
    gGlobalPool = std::make_unique<ThreadPool>(want);
}

std::size_t
ThreadPool::globalThreadCount()
{
    return global().threadCount();
}

} // namespace libra
