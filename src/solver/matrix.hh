/**
 * @file
 * Small dense linear-algebra kernel backing the QP solver.
 *
 * LIBRA's optimization problems are tiny (a handful of network dimensions
 * plus a handful of constraints), so a straightforward row-major matrix
 * with partial-pivot LU and a ridge-regularized least-squares fallback is
 * both sufficient and dependency-free.
 */

#ifndef LIBRA_SOLVER_MATRIX_HH
#define LIBRA_SOLVER_MATRIX_HH

#include <cstddef>
#include <vector>

namespace libra {

/** Dense column vector. */
using Vec = std::vector<double>;

/** Dot product of equally sized vectors. */
double dot(const Vec& a, const Vec& b);

/** Euclidean norm. */
double norm(const Vec& a);

/** Infinity norm. */
double normInf(const Vec& a);

/** a + s*b, elementwise. */
Vec axpy(const Vec& a, double s, const Vec& b);

/** a - b, elementwise. */
Vec sub(const Vec& a, const Vec& b);

/** s * a, elementwise. */
Vec scale(double s, const Vec& a);

/** Dense row-major matrix. */
class Matrix
{
  public:
    Matrix() = default;

    /** rows x cols zero matrix. */
    Matrix(std::size_t rows, std::size_t cols);

    /** Identity of size n. */
    static Matrix identity(std::size_t n);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
    double at(std::size_t r, std::size_t c) const
    {
        return data_[r * cols_ + c];
    }

    /** Append a row; the matrix must be empty or have matching width. */
    void appendRow(const Vec& row);

    /** Matrix-vector product. */
    Vec mul(const Vec& x) const;

    /** Transposed matrix-vector product. */
    Vec mulTransposed(const Vec& x) const;

    /** Matrix-matrix product. */
    Matrix mul(const Matrix& other) const;

    Matrix transposed() const;

    /**
     * Solve A x = b via LU with partial pivoting.
     *
     * @param b Right-hand side, length rows() (matrix must be square).
     * @param ok Set to false when the matrix is numerically singular.
     * @return Solution vector (garbage when !ok).
     */
    Vec solve(const Vec& b, bool* ok = nullptr) const;

    /**
     * Minimum-norm-biased least-squares solve via ridge-regularized
     * normal equations: (AtA + ridge*I) x = At b. Used as a fallback when
     * the KKT system of a degenerate working set is singular.
     */
    Vec solveLeastSquares(const Vec& b, double ridge = 1e-10) const;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

/**
 * Eigendecomposition of a symmetric matrix by cyclic Jacobi rotations:
 * a = eigvecs * diag(eigvals) * eigvecs'. Deterministic (fixed sweep
 * order) and exact to ~machine precision for the tiny matrices LIBRA
 * uses; the CMA-ES covariance update is the main client.
 *
 * @param a        Symmetric input (only the upper triangle is read).
 * @param eigvecs  Columns receive the eigenvectors.
 * @param eigvals  Receives the eigenvalues, aligned with the columns.
 */
void symmetricEigen(const Matrix& a, Matrix* eigvecs, Vec* eigvals);

} // namespace libra

#endif // LIBRA_SOLVER_MATRIX_HH
