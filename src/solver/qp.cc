#include "solver/qp.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"
#include "solver/feasible.hh"

namespace libra {

QpSolver::QpSolver(Matrix q, Vec c, Matrix a_eq, Vec b_eq, Matrix g_le,
                   Vec h_le, QpOptions options)
    : q_(std::move(q)), c_(std::move(c)), aEq_(std::move(a_eq)),
      bEq_(std::move(b_eq)), gLe_(std::move(g_le)), hLe_(std::move(h_le)),
      options_(options)
{}

bool
QpSolver::solveKkt(const Vec& x, const std::vector<std::size_t>& working,
                   Vec* p, Vec* ineq_multipliers) const
{
    const std::size_t n = c_.size();
    const std::size_t me = aEq_.rows();
    const std::size_t mw = working.size();
    const std::size_t dim = n + me + mw;

    // KKT system:
    //   [ Q   A'  Gw' ] [ p   ]   [ -(Qx + c) ]
    //   [ A   0   0   ] [ lam ] = [ 0         ]
    //   [ Gw  0   0   ] [ mu  ]   [ 0         ]
    Matrix k(dim, dim);
    Vec rhs(dim, 0.0);

    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            k.at(i, j) = q_.at(i, j);
    for (std::size_t r = 0; r < me; ++r)
        for (std::size_t j = 0; j < n; ++j) {
            k.at(n + r, j) = aEq_.at(r, j);
            k.at(j, n + r) = aEq_.at(r, j);
        }
    for (std::size_t wi = 0; wi < mw; ++wi) {
        std::size_t r = working[wi];
        for (std::size_t j = 0; j < n; ++j) {
            k.at(n + me + wi, j) = gLe_.at(r, j);
            k.at(j, n + me + wi) = gLe_.at(r, j);
        }
    }

    Vec qx = q_.mul(x);
    for (std::size_t i = 0; i < n; ++i)
        rhs[i] = -(qx[i] + c_[i]);

    bool ok = false;
    Vec z = k.solve(rhs, &ok);
    if (!ok) {
        // Degenerate working set (linearly dependent rows): regularized
        // least squares still yields a usable step direction.
        z = k.solveLeastSquares(rhs);
    }

    p->assign(z.begin(), z.begin() + static_cast<long>(n));
    ineq_multipliers->assign(z.begin() + static_cast<long>(n + me),
                             z.end());
    return true;
}

QpResult
QpSolver::solve(const Vec& x0) const
{
    const std::size_t n = c_.size();
    const double tol = options_.tol;
    Vec x = x0;

    // Initialize the working set with inequality rows active at x0.
    std::vector<std::size_t> working;
    for (std::size_t r = 0; r < gLe_.rows(); ++r) {
        Vec row(n);
        for (std::size_t j = 0; j < n; ++j)
            row[j] = gLe_.at(r, j);
        if (std::abs(dot(row, x) - hLe_[r]) <= 1e-8)
            working.push_back(r);
    }

    QpResult result;
    for (int iter = 0; iter < options_.maxIterations; ++iter) {
        result.iterations = iter + 1;
        Vec p, mu;
        solveKkt(x, working, &p, &mu);

        if (normInf(p) <= tol) {
            // Stationary on the working set; check dual feasibility.
            double muMin = 0.0;
            std::size_t drop = 0;
            bool found = false;
            for (std::size_t wi = 0; wi < mu.size(); ++wi) {
                if (mu[wi] < muMin - tol) {
                    muMin = mu[wi];
                    drop = wi;
                    found = true;
                }
            }
            if (!found) {
                result.converged = true;
                break;
            }
            working.erase(working.begin() + static_cast<long>(drop));
            continue;
        }

        // Line search to the nearest blocking inequality.
        double alpha = 1.0;
        std::size_t blocking = std::numeric_limits<std::size_t>::max();
        for (std::size_t r = 0; r < gLe_.rows(); ++r) {
            if (std::find(working.begin(), working.end(), r) !=
                working.end())
                continue;
            Vec row(n);
            for (std::size_t j = 0; j < n; ++j)
                row[j] = gLe_.at(r, j);
            double gp = dot(row, p);
            if (gp > tol) {
                double slack = hLe_[r] - dot(row, x);
                double a = slack / gp;
                if (a < alpha) {
                    alpha = std::max(0.0, a);
                    blocking = r;
                }
            }
        }

        x = axpy(x, alpha, p);
        if (blocking != std::numeric_limits<std::size_t>::max())
            working.push_back(blocking);
    }

    result.x = x;
    Vec qx = q_.mul(x);
    result.objective = 0.5 * dot(x, qx) + dot(c_, x);
    return result;
}

Vec
projectOntoConstraints(const ConstraintSet& constraints, const Vec& point)
{
    const std::size_t n = constraints.numVars();

    // Phase 1: alternating projections reach a feasible neighbourhood.
    Vec start = findFeasiblePoint(constraints, point);
    if (!constraints.feasible(start, 1e-5)) {
        fatal("constraint set is infeasible (residual ",
              constraints.maxViolation(start), ")");
    }

    Matrix aEq, gLe;
    Vec bEq, hLe;
    constraints.canonical(&aEq, &bEq, &gLe, &hLe);

    // Phase 2: exact projection: min 1/2||x||^2 - point'x.
    QpSolver qp(Matrix::identity(n), scale(-1.0, point), aEq, bEq, gLe,
                hLe);
    QpResult res = qp.solve(start);
    if (constraints.feasible(res.x, 1e-6))
        return res.x;
    return start;
}

} // namespace libra
