#include "solver/water_fill.hh"

#include <cmath>

#include "common/logging.hh"

namespace libra {

namespace {

Vec
shareAllocation(const Vec& weights, double total, double floor)
{
    if (total <= 0.0)
        fatal("allocation total must be positive, got ", total);
    double sum = 0.0;
    for (double w : weights) {
        if (w < 0.0)
            fatal("allocation weights must be non-negative");
        sum += w;
    }
    if (sum <= 0.0)
        fatal("allocation needs at least one positive weight");

    // Zero-weight entries take the floor; the rest shares what's left.
    double reserved = 0.0;
    for (double w : weights) {
        if (w == 0.0)
            reserved += floor;
    }
    if (reserved >= total)
        fatal("floor ", floor, " leaves no budget for active dims");

    Vec out(weights.size());
    for (std::size_t i = 0; i < weights.size(); ++i) {
        out[i] = weights[i] == 0.0
                     ? floor
                     : (total - reserved) * weights[i] / sum;
    }
    return out;
}

} // namespace

Vec
proportionalAllocation(const Vec& a, double total, double floor)
{
    return shareAllocation(a, total, floor);
}

Vec
waterFillAllocation(const Vec& a, double total, double floor)
{
    Vec roots(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i] < 0.0)
            fatal("water-fill weights must be non-negative");
        roots[i] = std::sqrt(a[i]);
    }
    return shareAllocation(roots, total, floor);
}

} // namespace libra
