#include "solver/constraint_set.hh"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "common/logging.hh"

namespace libra {

double
LinearConstraint::violation(const Vec& x) const
{
    double lhs = dot(coeffs, x);
    switch (rel) {
      case Relation::Eq:
        return std::abs(lhs - rhs);
      case Relation::Le:
        return std::max(0.0, lhs - rhs);
      case Relation::Ge:
        return std::max(0.0, rhs - lhs);
    }
    return 0.0;
}

ConstraintSet::ConstraintSet(std::size_t num_vars) : numVars_(num_vars) {}

void
ConstraintSet::add(LinearConstraint c)
{
    if (c.coeffs.size() != numVars_) {
        panic("constraint width ", c.coeffs.size(), " != numVars ",
              numVars_);
    }
    constraints_.push_back(std::move(c));
}

void
ConstraintSet::add(const Vec& coeffs, Relation rel, double rhs,
                   std::string label)
{
    add(LinearConstraint{coeffs, rel, rhs, std::move(label)});
}

void
ConstraintSet::addTotalBw(double total, Relation rel)
{
    add(Vec(numVars_, 1.0), rel, total, "total-bw");
}

void
ConstraintSet::addLowerBounds(double lo)
{
    for (std::size_t i = 0; i < numVars_; ++i) {
        Vec c(numVars_, 0.0);
        c[i] = 1.0;
        add(c, Relation::Ge, lo, "lb-B" + std::to_string(i + 1));
    }
}

void
ConstraintSet::addUpperBound(std::size_t idx, double hi)
{
    if (idx >= numVars_)
        fatal("upper bound on B", idx + 1, " but only ", numVars_, " dims");
    Vec c(numVars_, 0.0);
    c[idx] = 1.0;
    add(c, Relation::Le, hi, "ub-B" + std::to_string(idx + 1));
}

namespace {

/** Linear expression: coefficient per variable plus a constant. */
struct LinExpr
{
    Vec coeffs;
    double constant = 0.0;
};

/** Tokenizer/parser state for the tiny constraint grammar. */
class ConstraintParser
{
  public:
    ConstraintParser(const std::string& text, std::size_t num_vars)
        : text_(text), numVars_(num_vars)
    {}

    /** expr (rel expr)+, expanded pairwise for chains. */
    std::vector<LinearConstraint>
    parse()
    {
        std::vector<LinExpr> exprs;
        std::vector<Relation> rels;
        exprs.push_back(parseExpr());
        while (true) {
            skipWs();
            if (pos_ >= text_.size())
                break;
            rels.push_back(parseRelation());
            exprs.push_back(parseExpr());
        }
        if (rels.empty())
            fatal("constraint '", text_, "' has no relation");

        std::vector<LinearConstraint> out;
        for (std::size_t i = 0; i < rels.size(); ++i) {
            // lhs - rhs (rel) 0 → coeffs (rel) rhs-constant
            LinearConstraint c;
            c.coeffs = Vec(numVars_, 0.0);
            for (std::size_t v = 0; v < numVars_; ++v)
                c.coeffs[v] = exprs[i].coeffs[v] - exprs[i + 1].coeffs[v];
            c.rel = rels[i];
            c.rhs = exprs[i + 1].constant - exprs[i].constant;
            c.label = text_;
            out.push_back(std::move(c));
        }
        return out;
    }

  private:
    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    peekIs(char c)
    {
        skipWs();
        return pos_ < text_.size() && text_[pos_] == c;
    }

    Relation
    parseRelation()
    {
        skipWs();
        if (pos_ >= text_.size())
            fatal("constraint '", text_, "': expected relation");
        char c = text_[pos_];
        if (c == '=') {
            ++pos_;
            if (pos_ < text_.size() && text_[pos_] == '=')
                ++pos_;
            return Relation::Eq;
        }
        if (c == '<' || c == '>') {
            ++pos_;
            if (pos_ < text_.size() && text_[pos_] == '=')
                ++pos_;
            return c == '<' ? Relation::Le : Relation::Ge;
        }
        fatal("constraint '", text_, "': bad relation at '", c, "'");
    }

    double
    parseNumber()
    {
        skipWs();
        std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' ||
                ((text_[pos_] == '+' || text_[pos_] == '-') && pos_ > start &&
                 (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E'))))
            ++pos_;
        if (pos_ == start)
            fatal("constraint '", text_, "': expected number at pos ",
                  start);
        return std::stod(text_.substr(start, pos_ - start));
    }

    /** term := [number ['*']] Bk | number */
    void
    parseTerm(LinExpr* e, double sign)
    {
        skipWs();
        double coeff = 1.0;
        bool sawNumber = false;
        if (pos_ < text_.size() &&
            (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
             text_[pos_] == '.')) {
            coeff = parseNumber();
            sawNumber = true;
            skipWs();
            if (peekIs('*')) {
                ++pos_;
                skipWs();
            }
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'B' || text_[pos_] == 'b')) {
            ++pos_;
            std::size_t start = pos_;
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_])))
                ++pos_;
            if (pos_ == start)
                fatal("constraint '", text_, "': 'B' without index");
            std::size_t idx =
                static_cast<std::size_t>(
                    std::stoul(text_.substr(start, pos_ - start)));
            if (idx < 1 || idx > numVars_) {
                fatal("constraint '", text_, "': B", idx,
                      " out of range (network has ", numVars_, " dims)");
            }
            e->coeffs[idx - 1] += sign * coeff;
        } else if (sawNumber) {
            e->constant += sign * coeff;
        } else {
            fatal("constraint '", text_, "': expected term at pos ", pos_);
        }
    }

    LinExpr
    parseExpr()
    {
        LinExpr e;
        e.coeffs = Vec(numVars_, 0.0);
        double sign = 1.0;
        skipWs();
        if (peekIs('-')) {
            sign = -1.0;
            ++pos_;
        } else if (peekIs('+')) {
            ++pos_;
        }
        parseTerm(&e, sign);
        while (true) {
            skipWs();
            if (pos_ >= text_.size())
                break;
            char c = text_[pos_];
            if (c == '+' || c == '-') {
                ++pos_;
                parseTerm(&e, c == '+' ? 1.0 : -1.0);
            } else {
                break;
            }
        }
        return e;
    }

    const std::string& text_;
    std::size_t numVars_;
    std::size_t pos_ = 0;
};

} // namespace

void
ConstraintSet::addParsed(const std::string& text)
{
    ConstraintParser parser(text, numVars_);
    for (auto& c : parser.parse())
        add(std::move(c));
}

double
ConstraintSet::maxViolation(const Vec& x) const
{
    double worst = 0.0;
    for (const auto& c : constraints_)
        worst = std::max(worst, c.violation(x));
    return worst;
}

bool
ConstraintSet::feasible(const Vec& x, double tol) const
{
    return maxViolation(x) <= tol;
}

void
ConstraintSet::canonical(Matrix* a_eq, Vec* b_eq, Matrix* g_le,
                         Vec* h_le) const
{
    *a_eq = Matrix();
    *g_le = Matrix();
    b_eq->clear();
    h_le->clear();
    for (const auto& c : constraints_) {
        switch (c.rel) {
          case Relation::Eq:
            a_eq->appendRow(c.coeffs);
            b_eq->push_back(c.rhs);
            break;
          case Relation::Le:
            g_le->appendRow(c.coeffs);
            h_le->push_back(c.rhs);
            break;
          case Relation::Ge:
            g_le->appendRow(scale(-1.0, c.coeffs));
            h_le->push_back(-c.rhs);
            break;
        }
    }
}

} // namespace libra
