/**
 * @file
 * Projected subgradient descent for convex objectives over a polyhedron.
 *
 * The PerfOptBW objective — a weighted sum over layers of
 * max_i(traffic_i / B_i) terms — is convex in B on the positive orthant,
 * so projected subgradient with diminishing steps converges to the global
 * optimum. Subgradients are taken numerically (central differences), which
 * is exact almost everywhere for this piecewise-smooth objective.
 */

#ifndef LIBRA_SOLVER_SUBGRADIENT_HH
#define LIBRA_SOLVER_SUBGRADIENT_HH

#include <functional>

#include "solver/constraint_set.hh"
#include "solver/matrix.hh"

namespace libra {

/** Scalar objective over the bandwidth vector. */
using ScalarObjective = std::function<double(const Vec&)>;

/** Default relative step of the central-difference gradient. */
inline constexpr double kGradientRelStep = 1e-6;

/** Central-difference gradient of @p f at @p x with relative step. */
Vec numericGradient(const ScalarObjective& f, const Vec& x,
                    double rel_step = kGradientRelStep);

/** Result of an iterative minimization. */
struct SearchResult
{
    Vec x;
    double value = 0.0;
    int iterations = 0;
};

/** Options for the projected subgradient loop. */
struct SubgradientOptions
{
    int maxIterations = 600;
    double initialStep = 0.25;   ///< Relative to ||x0||.
    double tol = 1e-10;          ///< Stop when best stops improving.
    int patience = 120;          ///< Iterations without improvement.
};

/**
 * Minimize convex @p f over @p constraints starting from feasible @p x0.
 * Tracks and returns the best feasible iterate.
 */
SearchResult projectedSubgradient(const ScalarObjective& f,
                                  const ConstraintSet& constraints,
                                  const Vec& x0,
                                  SubgradientOptions options = {});

} // namespace libra

#endif // LIBRA_SOLVER_SUBGRADIENT_HH
