/**
 * @file
 * Linear design constraints over the per-dimension bandwidth vector.
 *
 * This is LIBRA's constraint language (paper §IV-F): the system designer
 * expresses restrictions such as a fixed total bandwidth per NPU
 * ("B1 + B2 + B3 + B4 = 1000"), per-dimension caps ("B4 <= 50"), or
 * orderings ("B1 >= B2 >= B3"). Constraints can be built programmatically
 * or parsed from text.
 */

#ifndef LIBRA_SOLVER_CONSTRAINT_SET_HH
#define LIBRA_SOLVER_CONSTRAINT_SET_HH

#include <cstddef>
#include <string>
#include <vector>

#include "solver/matrix.hh"

namespace libra {

/** Relation of a linear constraint. */
enum class Relation { Eq, Le, Ge };

/** One linear constraint: coeffs . x (rel) rhs. */
struct LinearConstraint
{
    Vec coeffs;
    Relation rel = Relation::Eq;
    double rhs = 0.0;
    std::string label;

    /** Signed violation: positive means the constraint is violated. */
    double violation(const Vec& x) const;
};

/**
 * A conjunction of linear constraints over n bandwidth variables
 * B1..Bn (1-based in the text syntax, 0-based in code).
 */
class ConstraintSet
{
  public:
    explicit ConstraintSet(std::size_t num_vars);

    std::size_t numVars() const { return numVars_; }

    /** Add a fully formed constraint. */
    void add(LinearConstraint c);

    /** Add coeffs . x (rel) rhs. */
    void add(const Vec& coeffs, Relation rel, double rhs,
             std::string label = "");

    /**
     * Parse and add constraints from text, e.g.
     *   "B1 + 2*B2 <= 500"
     *   "B2 + B3 = B4"
     *   "25 <= B3 <= 150"      (chained relations expand pairwise)
     *   "B1 >= B2 >= B3"
     *
     * Variables are B1..Bn; bare numbers are constants; terms may carry
     * multiplicative coefficients ("2*B1" or "2 B1").
     *
     * @throws FatalError on syntax errors or out-of-range variables.
     */
    void addParsed(const std::string& text);

    /** Sum of all variables (rel) total — the per-NPU BW budget. */
    void addTotalBw(double total, Relation rel = Relation::Eq);

    /** Every variable >= lo (BW cannot be negative or zero). */
    void addLowerBounds(double lo);

    /** Cap one variable: B[idx] <= hi. */
    void addUpperBound(std::size_t idx, double hi);

    const std::vector<LinearConstraint>& constraints() const
    {
        return constraints_;
    }

    /** Largest violation across constraints (0 when feasible). */
    double maxViolation(const Vec& x) const;

    /** True when all constraints hold within @p tol. */
    bool feasible(const Vec& x, double tol = 1e-7) const;

    /**
     * Canonical split used by the QP solver: equalities A x = b and
     * inequalities G x <= h (Ge rows are negated into Le form).
     */
    void canonical(Matrix* a_eq, Vec* b_eq, Matrix* g_le, Vec* h_le) const;

  private:
    std::size_t numVars_;
    std::vector<LinearConstraint> constraints_;
};

} // namespace libra

#endif // LIBRA_SOLVER_CONSTRAINT_SET_HH
