#include "solver/feasible.hh"

#include <cmath>

namespace libra {

namespace {

/** Project x onto one constraint in place; no-op when satisfied. */
void
projectOne(const LinearConstraint& c, Vec* x)
{
    double a2 = dot(c.coeffs, c.coeffs);
    if (a2 <= 0.0)
        return;
    double lhs = dot(c.coeffs, *x);
    double shift = 0.0;
    switch (c.rel) {
      case Relation::Eq:
        shift = (c.rhs - lhs) / a2;
        break;
      case Relation::Le:
        if (lhs > c.rhs)
            shift = (c.rhs - lhs) / a2;
        break;
      case Relation::Ge:
        if (lhs < c.rhs)
            shift = (c.rhs - lhs) / a2;
        break;
    }
    if (shift != 0.0)
        *x = axpy(*x, shift, c.coeffs);
}

} // namespace

Vec
findFeasiblePoint(const ConstraintSet& constraints, const Vec& hint,
                  double tol, int max_sweeps)
{
    Vec x = hint;
    x.resize(constraints.numVars(), 0.0);

    for (int sweep = 0; sweep < max_sweeps; ++sweep) {
        for (const auto& c : constraints.constraints())
            projectOne(c, &x);
        if (constraints.maxViolation(x) <= tol)
            break;
    }
    return x;
}

} // namespace libra
