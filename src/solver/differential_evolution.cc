#include "solver/differential_evolution.hh"

#include <algorithm>
#include <cmath>

#include "common/random.hh"
#include "common/thread_pool.hh"
#include "solver/batch_eval.hh"
#include "solver/qp.hh"

namespace libra {

SearchResult
differentialEvolutionSearch(const ScalarObjective& f,
                            const ConstraintSet& constraints,
                            const Vec& x0,
                            const DifferentialEvolutionOptions& options)
{
    const std::size_t n = x0.size();
    // rand/1 mutation needs i plus three distinct partners.
    const std::size_t np =
        options.populationSize > 0
            ? std::max<std::size_t>(
                  4, static_cast<std::size_t>(options.populationSize))
            : std::clamp<std::size_t>(8 * n, 16, 48);

    Rng rng(options.seed);
    long long evals = 0;
    auto budgetLeft = [&](std::size_t wanted) {
        return options.maxEvals <= 0 ||
               evals + static_cast<long long>(wanted) <= options.maxEvals;
    };

    // Member 0 is the caller's start; the rest sample the scaled
    // simplex (the multistart driver's diversity scheme) and repair.
    std::vector<Vec> pop(np);
    pop[0] = x0;
    for (std::size_t i = 1; i < np; ++i)
        pop[i] = projectOntoConstraints(
            constraints, rng.simplexPoint(n, options.scale));

    Vec values(np, 0.0);
    if (!budgetLeft(np)) {
        // Budget cannot even cover the initial population; score the
        // start alone and return it.
        return SearchResult{x0, f(x0), 1};
    }
    // The compiled objective streams whole generations through the
    // SIMD kernels (bit-identical to per-candidate calls); plain
    // objectives fan out per candidate.
    const BatchEvaluable* batch = batchFacet(f);
    if (batch)
        batch->evaluateBatch(pop.data(), np, values.data());
    else
        parallelFor(np, [&](std::size_t i) { values[i] = f(pop[i]); });
    evals += static_cast<long long>(np);

    std::vector<Vec> trials(np);
    Vec trialValues(np, 0.0);
    const double fw = options.differentialWeight;

    for (int gen = 0; gen < options.generations && budgetLeft(np);
         ++gen) {
        // Build every trial serially (all randomness happens here),
        // then evaluate the generation in one batched dispatch.
        for (std::size_t i = 0; i < np; ++i) {
            std::size_t r1, r2, r3;
            do {
                r1 = static_cast<std::size_t>(rng.uniformInt(
                    0, static_cast<int>(np) - 1));
            } while (r1 == i);
            do {
                r2 = static_cast<std::size_t>(rng.uniformInt(
                    0, static_cast<int>(np) - 1));
            } while (r2 == i || r2 == r1);
            do {
                r3 = static_cast<std::size_t>(rng.uniformInt(
                    0, static_cast<int>(np) - 1));
            } while (r3 == i || r3 == r1 || r3 == r2);

            Vec trial = pop[i];
            std::size_t forced = static_cast<std::size_t>(
                rng.uniformInt(0, static_cast<int>(n) - 1));
            for (std::size_t k = 0; k < n; ++k) {
                bool cross = rng.uniform(0.0, 1.0) <
                                 options.crossoverRate ||
                             k == forced;
                if (cross)
                    trial[k] = pop[r1][k] +
                               fw * (pop[r2][k] - pop[r3][k]);
            }
            trials[i] = projectOntoConstraints(constraints, trial);
        }

        if (batch)
            batch->evaluateBatch(trials.data(), np, trialValues.data());
        else
            parallelFor(np, [&](std::size_t i) {
                trialValues[i] = f(trials[i]);
            });
        evals += static_cast<long long>(np);

        // Greedy one-to-one selection: index i only ever competes
        // with trial i, so the outcome is scheduling-independent.
        for (std::size_t i = 0; i < np; ++i) {
            if (trialValues[i] < values[i]) {
                pop[i] = trials[i];
                values[i] = trialValues[i];
            }
        }
    }

    // Winner in index order, ties toward the lower slot.
    std::size_t bestIdx = 0;
    for (std::size_t i = 1; i < np; ++i)
        if (values[i] < values[bestIdx])
            bestIdx = i;
    return SearchResult{pop[bestIdx], values[bestIdx],
                        static_cast<int>(
                            std::min<long long>(evals, 1ll << 30))};
}

} // namespace libra
