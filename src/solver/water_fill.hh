/**
 * @file
 * Closed-form bandwidth allocation for single-bottleneck objectives.
 *
 * When the objective is a single max-of-ratios term —
 * min max_i(a_i / B_i) s.t. sum B_i = T, B_i > 0 — the optimum
 * equalizes every ratio: B_i = T * a_i / sum(a).
 *
 * For a *sum* of independent inverse terms — min sum_i(a_i / B_i) —
 * the optimum is the square-root water-filling split
 * B_i = T * sqrt(a_i) / sum(sqrt(a)).
 *
 * Both closed forms serve as ground truth for the iterative solvers in
 * tests, and as high-quality warm starts for the optimizer.
 */

#ifndef LIBRA_SOLVER_WATER_FILL_HH
#define LIBRA_SOLVER_WATER_FILL_HH

#include "solver/matrix.hh"

namespace libra {

/**
 * Allocation equalizing a_i / B_i under sum B = total.
 * Entries with a_i == 0 receive @p floor (they still need a link).
 *
 * @throws FatalError when total is non-positive or all a_i are zero.
 */
Vec proportionalAllocation(const Vec& a, double total,
                           double floor = 0.0);

/**
 * Allocation minimizing sum_i a_i / B_i under sum B = total
 * (square-root water filling).
 */
Vec waterFillAllocation(const Vec& a, double total, double floor = 0.0);

} // namespace libra

#endif // LIBRA_SOLVER_WATER_FILL_HH
