#include "solver/strategy.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"
#include "solver/cmaes.hh"
#include "solver/differential_evolution.hh"
#include "solver/nelder_mead.hh"
#include "solver/pattern_search.hh"

namespace libra {

namespace {

/** Projected subgradient descent; its result tracks the best feasible
 *  iterate including the start, so it is never worse than the start. */
class SubgradientStrategy final : public SearchStrategy
{
  public:
    std::string name() const override { return "subgradient"; }

    std::string
    description() const override
    {
        return "projected subgradient descent (global optimum on the "
               "convex PerfOpt objective)";
    }

    SearchResult
    search(const ScalarObjective& f, const ConstraintSet& constraints,
           const StartPoint& start, EvalBudget& budget) const override
    {
        // Each iteration costs a central-difference gradient (2n
        // evals) plus the step evaluation, after one initial f(x0)
        // score; clamp the iteration count so the worst case fits the
        // remaining budget exactly.
        const long long perIter =
            2 * static_cast<long long>(start.x.size()) + 1;
        SubgradientOptions opt;
        opt.maxIterations = static_cast<int>(std::clamp<long long>(
            (budget.remaining() - 1) / perIter, 0,
            opt.maxIterations));
        if (opt.maxIterations == 0)
            return SearchResult{start.x, f(start.x), 0};
        SearchResult r =
            projectedSubgradient(f, constraints, start.x, opt);
        budget.charge(static_cast<long long>(r.iterations) * perIter +
                      1);
        return r;
    }
};

/** Projected compass search; never worse than its start by design. */
class PatternSearchStrategy final : public SearchStrategy
{
  public:
    std::string name() const override { return "pattern-search"; }

    std::string
    description() const override
    {
        return "projected compass search (derivative-free local "
               "polish, monotone improvement)";
    }

    SearchResult
    search(const ScalarObjective& f, const ConstraintSet& constraints,
           const StartPoint& start, EvalBudget& budget) const override
    {
        // One initial f(x0) score, then iterations == poll evals.
        // patternSearch can overshoot its cap by one poll (the +/-
        // pair only re-checks between coordinates), so reserve two.
        PatternSearchOptions opt;
        opt.maxIterations = static_cast<int>(std::clamp<long long>(
            budget.remaining() - 2, 0, opt.maxIterations));
        if (opt.maxIterations == 0)
            return SearchResult{start.x, f(start.x), 0};
        SearchResult r = patternSearch(f, constraints, start.x, opt);
        budget.charge(r.iterations + 1);
        return r;
    }
};

/**
 * Penalized Nelder-Mead. The simplex can wander, so the wrapper keeps
 * the historical chain semantics: accept the simplex result only when
 * it beats the start's objective value, otherwise return the start.
 */
class NelderMeadStrategy final : public SearchStrategy
{
  public:
    std::string name() const override { return "nelder-mead"; }

    std::string
    description() const override
    {
        return "penalized Nelder-Mead simplex (escapes valleys "
               "axis-aligned polling cannot)";
    }

    SearchResult
    search(const ScalarObjective& f, const ConstraintSet& constraints,
           const StartPoint& start, EvalBudget& budget) const override
    {
        double startValue = f(start.x);
        // Worst case: the start comparison, n + 1 initial vertices,
        // up to 2 + n penalized evaluations per iteration (a shrink
        // re-scores every vertex), and the final projection's score.
        const long long n = static_cast<long long>(start.x.size());
        const long long fixed = n + 3;
        const long long perIter = n + 2;
        NelderMeadOptions opt;
        opt.maxIterations = static_cast<int>(std::clamp<long long>(
            (budget.remaining() - fixed) / perIter, 0,
            opt.maxIterations));
        if (opt.maxIterations == 0)
            return SearchResult{start.x, startValue, 0};
        SearchResult r = nelderMead(f, constraints, start.x, opt);
        budget.charge(static_cast<long long>(r.iterations) * perIter +
                      fixed);
        if (r.value < startValue)
            return r;
        return SearchResult{start.x, startValue, r.iterations};
    }
};

/** CMA-ES with batched per-generation evaluation. */
class CmaesStrategy final : public SearchStrategy
{
  public:
    std::string name() const override { return "cmaes"; }

    std::string
    description() const override
    {
        return "CMA-ES global search (batched population evaluation, "
               "repair by projection)";
    }

    SearchResult
    search(const ScalarObjective& f, const ConstraintSet& constraints,
           const StartPoint& start, EvalBudget& budget) const override
    {
        CmaesOptions opt;
        opt.scale = start.scale;
        opt.seed = start.rngSeed;
        opt.maxEvals = budget.remaining();
        if (opt.maxEvals == 0)
            return SearchResult{start.x, f(start.x), 0};
        SearchResult r = cmaesSearch(f, constraints, start.x, opt);
        budget.charge(r.iterations); // iterations == evaluations.
        return r;
    }
};

/** Differential evolution with batched per-generation evaluation. */
class DifferentialEvolutionStrategy final : public SearchStrategy
{
  public:
    std::string name() const override { return "de"; }

    std::string
    description() const override
    {
        return "differential evolution rand/1/bin (batched trial "
               "evaluation, repair by projection)";
    }

    SearchResult
    search(const ScalarObjective& f, const ConstraintSet& constraints,
           const StartPoint& start, EvalBudget& budget) const override
    {
        DifferentialEvolutionOptions opt;
        opt.scale = start.scale;
        opt.seed = start.rngSeed;
        opt.maxEvals = budget.remaining();
        if (opt.maxEvals == 0)
            return SearchResult{start.x, f(start.x), 0};
        SearchResult r =
            differentialEvolutionSearch(f, constraints, start.x, opt);
        budget.charge(r.iterations); // iterations == evaluations.
        return r;
    }
};

} // namespace

StrategyRegistry&
StrategyRegistry::global()
{
    static StrategyRegistry* registry = [] {
        auto* r = new StrategyRegistry;
        r->add(std::make_unique<SubgradientStrategy>());
        r->add(std::make_unique<PatternSearchStrategy>());
        r->add(std::make_unique<NelderMeadStrategy>());
        r->add(std::make_unique<CmaesStrategy>());
        r->add(std::make_unique<DifferentialEvolutionStrategy>());
        return r;
    }();
    return *registry;
}

void
StrategyRegistry::add(std::unique_ptr<const SearchStrategy> strategy)
{
    if (!strategy)
        fatal("cannot register a null search strategy");
    if (find(strategy->name()))
        fatal("search strategy '", strategy->name(),
              "' is already registered");
    strategies_.push_back(std::move(strategy));
}

const SearchStrategy*
StrategyRegistry::find(const std::string& name) const
{
    for (const auto& s : strategies_)
        if (s->name() == name)
            return s.get();
    return nullptr;
}

std::vector<std::string>
StrategyRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(strategies_.size());
    for (const auto& s : strategies_)
        out.push_back(s->name());
    return out;
}

std::vector<const SearchStrategy*>
resolveStrategyPipeline(const std::vector<std::string>& names)
{
    if (names.empty())
        fatal("solver pipeline is empty");
    std::vector<const SearchStrategy*> pipeline;
    pipeline.reserve(names.size());
    for (const auto& name : names) {
        const SearchStrategy* s = StrategyRegistry::global().find(name);
        if (!s) {
            std::string known;
            for (const auto& k : StrategyRegistry::global().names())
                known += (known.empty() ? "" : ", ") + k;
            fatal("unknown search strategy '", name, "' (registered: ",
                  known, ")");
        }
        pipeline.push_back(s);
    }
    return pipeline;
}

std::vector<std::string>
parseSolverSpec(const std::string& spec)
{
    std::vector<std::string> names;
    std::size_t begin = 0;
    while (begin <= spec.size()) {
        std::size_t comma = spec.find(',', begin);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string token = spec.substr(begin, comma - begin);
        auto first = token.find_first_not_of(" \t");
        if (first == std::string::npos)
            fatal("empty strategy name in solver spec '", spec, "'");
        auto last = token.find_last_not_of(" \t");
        names.push_back(token.substr(first, last - first + 1));
        begin = comma + 1;
    }
    resolveStrategyPipeline(names); // Validate every name.
    return names;
}

std::string
solverSpecToString(const std::vector<std::string>& names)
{
    std::string out;
    for (const auto& name : names)
        out += (out.empty() ? "" : ",") + name;
    return out;
}

} // namespace libra
