#include "solver/nelder_mead.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "solver/qp.hh"

namespace libra {

SearchResult
nelderMead(const ScalarObjective& f, const ConstraintSet& constraints,
           const Vec& x0, NelderMeadOptions options)
{
    const std::size_t n = x0.size();

    auto penalized = [&](const Vec& x) {
        double v = constraints.maxViolation(x);
        // Guard against negative bandwidths reaching the raw objective.
        Vec clipped = x;
        for (auto& c : clipped)
            c = std::max(c, 1e-9);
        return f(clipped) + options.penaltyWeight * v * v;
    };

    double base = 1.0;
    for (double v : x0)
        base = std::max(base, std::abs(v));
    double edge = options.initialScale * base;

    // Initial simplex: x0 plus one offset vertex per coordinate.
    std::vector<Vec> simplex;
    simplex.push_back(x0);
    for (std::size_t i = 0; i < n; ++i) {
        Vec v = x0;
        v[i] += edge;
        simplex.push_back(v);
    }
    std::vector<double> values;
    values.reserve(simplex.size());
    for (const auto& v : simplex)
        values.push_back(penalized(v));

    auto order = [&]() {
        std::vector<std::size_t> idx(simplex.size());
        std::iota(idx.begin(), idx.end(), 0);
        std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
            return values[a] < values[b];
        });
        std::vector<Vec> s2;
        std::vector<double> v2;
        for (auto i : idx) {
            s2.push_back(simplex[i]);
            v2.push_back(values[i]);
        }
        simplex.swap(s2);
        values.swap(v2);
    };

    int iter = 0;
    for (; iter < options.maxIterations; ++iter) {
        order();
        if (values.back() - values.front() <=
            options.tol * (std::abs(values.front()) + 1e-30))
            break;

        // Centroid of all but the worst vertex.
        Vec centroid(n, 0.0);
        for (std::size_t v = 0; v + 1 < simplex.size(); ++v)
            for (std::size_t i = 0; i < n; ++i)
                centroid[i] += simplex[v][i];
        for (auto& c : centroid)
            c /= static_cast<double>(simplex.size() - 1);

        const Vec& worst = simplex.back();
        Vec reflected = axpy(centroid, 1.0, sub(centroid, worst));
        double fr = penalized(reflected);

        if (fr < values.front()) {
            Vec expanded = axpy(centroid, 2.0, sub(centroid, worst));
            double fe = penalized(expanded);
            if (fe < fr) {
                simplex.back() = expanded;
                values.back() = fe;
            } else {
                simplex.back() = reflected;
                values.back() = fr;
            }
        } else if (fr < values[values.size() - 2]) {
            simplex.back() = reflected;
            values.back() = fr;
        } else {
            Vec contracted = axpy(centroid, 0.5, sub(worst, centroid));
            double fc = penalized(contracted);
            if (fc < values.back()) {
                simplex.back() = contracted;
                values.back() = fc;
            } else {
                // Shrink towards the best vertex.
                for (std::size_t v = 1; v < simplex.size(); ++v) {
                    simplex[v] = axpy(simplex.front(), 0.5,
                                      sub(simplex[v], simplex.front()));
                    values[v] = penalized(simplex[v]);
                }
            }
        }
    }
    order();

    Vec projected = projectOntoConstraints(constraints, simplex.front());
    return SearchResult{projected, f(projected), iter};
}

} // namespace libra
