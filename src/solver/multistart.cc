#include "solver/multistart.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/random.hh"
#include "common/thread_pool.hh"
#include "solver/nelder_mead.hh"
#include "solver/pattern_search.hh"
#include "solver/qp.hh"

namespace libra {

namespace {

/**
 * splitmix64 finalizer: decorrelates the per-start RNG streams so start
 * s's point depends only on (seed, s), never on how many starts ran
 * before it.
 */
std::uint64_t
mixSeed(std::uint64_t seed, std::uint64_t stream)
{
    std::uint64_t z = seed + 0x9E3779B97F4A7C15ull * (stream + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

/** Outcome of one restart's search chain. */
struct StartResult
{
    Vec x;
    double value = std::numeric_limits<double>::infinity();
    bool feasible = false;
};

/** Subgradient -> pattern search -> Nelder-Mead from one point. */
StartResult
searchFromStart(const ScalarObjective& f, const ConstraintSet& constraints,
                const Vec& x0, const MultistartOptions& options)
{
    Vec x = x0;
    if (options.useSubgradient) {
        SearchResult sg = projectedSubgradient(f, constraints, x);
        x = sg.x;
    }
    SearchResult ps = patternSearch(f, constraints, x);
    x = ps.x;
    if (options.useNelderMead) {
        SearchResult nm = nelderMead(f, constraints, x);
        if (nm.value < ps.value)
            x = nm.x;
    }
    StartResult r;
    r.x = std::move(x);
    r.value = f(r.x);
    r.feasible = constraints.feasible(r.x, 1e-5);
    return r;
}

} // namespace

SearchResult
multistartMinimize(const ScalarObjective& f,
                   const ConstraintSet& constraints, const Vec& hint,
                   MultistartOptions options)
{
    const std::size_t n = constraints.numVars();
    double total = 0.0;
    for (double v : hint)
        total += std::abs(v);
    if (total <= 0.0)
        total = 1.0;

    // Start 0 is the caller's hint; start s > 0 draws from its own
    // RNG stream so the point set is independent of evaluation order.
    std::vector<Vec> starts;
    starts.push_back(projectOntoConstraints(constraints, hint));
    for (int s = 0; s < options.starts; ++s) {
        Rng rng(mixSeed(options.seed, static_cast<std::uint64_t>(s)));
        starts.push_back(projectOntoConstraints(
            constraints, rng.simplexPoint(n, total)));
    }

    // Restarts are independent; fan out on the pool. Results land in
    // per-start slots, so the reduction below is order-independent.
    std::vector<StartResult> results(starts.size());
    auto runOne = [&](std::size_t i) {
        results[i] = searchFromStart(f, constraints, starts[i], options);
    };
    if (options.parallel) {
        ThreadPool::global().parallelFor(starts.size(), runOne);
    } else {
        for (std::size_t i = 0; i < starts.size(); ++i)
            runOne(i);
    }

    // Deterministic winner: best feasible value, ties broken toward
    // the lower start index (strict < scans in index order).
    SearchResult best;
    best.value = std::numeric_limits<double>::infinity();
    for (const auto& r : results) {
        if (r.feasible && r.value < best.value) {
            best.value = r.value;
            best.x = r.x;
        }
    }

    // Final polish from the overall winner.
    PatternSearchOptions polish;
    polish.initialStep = 0.02;
    SearchResult final = patternSearch(f, constraints, best.x, polish);
    if (final.value < best.value) {
        best.value = final.value;
        best.x = final.x;
    }
    return best;
}

} // namespace libra
