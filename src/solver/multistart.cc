#include "solver/multistart.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/random.hh"
#include "common/thread_pool.hh"
#include "solver/pattern_search.hh"
#include "solver/qp.hh"
#include "solver/strategy.hh"

namespace libra {

namespace {

/**
 * splitmix64 finalizer: decorrelates the per-start RNG streams so start
 * s's point depends only on (seed, s), never on how many starts ran
 * before it.
 */
std::uint64_t
mixSeed(std::uint64_t seed, std::uint64_t stream)
{
    std::uint64_t z = seed + 0x9E3779B97F4A7C15ull * (stream + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

/**
 * Stream ids < `starts` draw the start points; stage streams live in a
 * disjoint block so a stochastic strategy can never replay a start
 * point's draws.
 */
constexpr std::uint64_t kStageStreamBase = 0x10000;
constexpr std::uint64_t kStageStreamStride = 64;

/** Outcome of one restart's pipeline. */
struct StartResult
{
    Vec x;
    double value = std::numeric_limits<double>::infinity();
    bool feasible = false;
};

/**
 * Run the strategy pipeline from one point. Every stage receives the
 * previous stage's result (strategies guarantee "no worse than the
 * start", so chaining is monotone) plus its own deterministic RNG
 * stream and the start's shared evaluation budget.
 */
StartResult
searchFromStart(const ScalarObjective& f, const ConstraintSet& constraints,
                const std::vector<const SearchStrategy*>& pipeline,
                const Vec& x0, double scale, std::size_t start_index,
                const MultistartOptions& options)
{
    EvalBudget budget(options.maxEvalsPerStart);
    Vec x = x0;
    double value = std::numeric_limits<double>::infinity();
    for (std::size_t stage = 0; stage < pipeline.size(); ++stage) {
        StartPoint start;
        start.x = std::move(x);
        start.rngSeed = mixSeed(
            options.seed, kStageStreamBase +
                              start_index * kStageStreamStride + stage);
        start.scale = scale;
        SearchResult r =
            pipeline[stage]->search(f, constraints, start, budget);
        x = std::move(r.x);
        value = r.value;
    }
    StartResult r;
    r.x = std::move(x);
    // Strategies return a value consistent with their point (f is
    // pure), so the last stage's value is exactly f(r.x) — no
    // re-evaluation needed.
    r.value = value;
    r.feasible = constraints.feasible(r.x, 1e-5);
    return r;
}

} // namespace

std::vector<std::string>
multistartPipelineNames(const MultistartOptions& options)
{
    if (!options.pipeline.empty())
        return options.pipeline;
    // The historical hard-wired chain, expressed as a pipeline.
    std::vector<std::string> names;
    if (options.useSubgradient)
        names.push_back("subgradient");
    names.push_back("pattern-search");
    if (options.useNelderMead)
        names.push_back("nelder-mead");
    return names;
}

MultistartOptions
screeningOptions(MultistartOptions full, int starts, long long max_evals)
{
    full.starts = starts;
    full.maxEvalsPerStart = max_evals;
    return full;
}

SearchResult
multistartMinimize(const ScalarObjective& f,
                   const ConstraintSet& constraints, const Vec& hint,
                   MultistartOptions options)
{
    const std::size_t n = constraints.numVars();
    const std::vector<const SearchStrategy*> pipeline =
        resolveStrategyPipeline(multistartPipelineNames(options));

    double total = 0.0;
    for (double v : hint)
        total += std::abs(v);
    if (total <= 0.0)
        total = 1.0;

    // Start 0 is the caller's hint; start s > 0 draws from its own
    // RNG stream so the point set is independent of evaluation order.
    std::vector<Vec> starts;
    starts.push_back(projectOntoConstraints(constraints, hint));
    for (int s = 0; s < options.starts; ++s) {
        Rng rng(mixSeed(options.seed, static_cast<std::uint64_t>(s)));
        starts.push_back(projectOntoConstraints(
            constraints, rng.simplexPoint(n, total)));
    }

    // Restarts are independent; fan out on the pool. Results land in
    // per-start slots, so the reduction below is order-independent.
    std::vector<StartResult> results(starts.size());
    auto runOne = [&](std::size_t i) {
        results[i] = searchFromStart(f, constraints, pipeline,
                                     starts[i], total, i, options);
    };
    if (options.parallel) {
        ThreadPool::global().parallelFor(starts.size(), runOne);
    } else {
        for (std::size_t i = 0; i < starts.size(); ++i)
            runOne(i);
    }

    // Deterministic winner: best feasible value, ties broken toward
    // the lower start index (strict < scans in index order).
    SearchResult best;
    best.value = std::numeric_limits<double>::infinity();
    for (const auto& r : results) {
        if (r.feasible && r.value < best.value) {
            best.value = r.value;
            best.x = r.x;
        }
    }

    // Final polish from the overall winner. The polish is one extra
    // budgeted stage: without the cap it could spend up to its 4000
    // default polls, dwarfing tightly budgeted pipelines.
    PatternSearchOptions polish;
    polish.initialStep = 0.02;
    if (options.maxEvalsPerStart > 0) {
        polish.maxIterations = static_cast<int>(std::min<long long>(
            polish.maxIterations, options.maxEvalsPerStart));
    }
    SearchResult final = patternSearch(f, constraints, best.x, polish);
    if (final.value < best.value) {
        best.value = final.value;
        best.x = final.x;
    }
    return best;
}

} // namespace libra
