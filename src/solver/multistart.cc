#include "solver/multistart.hh"

#include <algorithm>
#include <cmath>

#include "common/random.hh"
#include "solver/nelder_mead.hh"
#include "solver/pattern_search.hh"
#include "solver/qp.hh"

namespace libra {

SearchResult
multistartMinimize(const ScalarObjective& f,
                   const ConstraintSet& constraints, const Vec& hint,
                   MultistartOptions options)
{
    Rng rng(options.seed);
    const std::size_t n = constraints.numVars();
    double total = 0.0;
    for (double v : hint)
        total += std::abs(v);
    if (total <= 0.0)
        total = 1.0;

    std::vector<Vec> starts;
    starts.push_back(projectOntoConstraints(constraints, hint));
    for (int s = 0; s < options.starts; ++s) {
        Vec p = rng.simplexPoint(n, total);
        starts.push_back(projectOntoConstraints(constraints, p));
    }

    SearchResult best;
    best.value = std::numeric_limits<double>::infinity();
    for (const auto& x0 : starts) {
        Vec x = x0;
        if (options.useSubgradient) {
            SearchResult sg = projectedSubgradient(f, constraints, x);
            x = sg.x;
        }
        SearchResult ps = patternSearch(f, constraints, x);
        x = ps.x;
        if (options.useNelderMead) {
            SearchResult nm = nelderMead(f, constraints, x);
            if (nm.value < ps.value)
                x = nm.x;
        }
        double fx = f(x);
        if (fx < best.value && constraints.feasible(x, 1e-5)) {
            best.value = fx;
            best.x = x;
        }
    }

    // Final polish from the overall winner.
    PatternSearchOptions polish;
    polish.initialStep = 0.02;
    SearchResult final = patternSearch(f, constraints, best.x, polish);
    if (final.value < best.value) {
        best.value = final.value;
        best.x = final.x;
    }
    return best;
}

} // namespace libra
