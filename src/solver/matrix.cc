#include "solver/matrix.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace libra {

double
dot(const Vec& a, const Vec& b)
{
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        s += a[i] * b[i];
    return s;
}

double
norm(const Vec& a)
{
    return std::sqrt(dot(a, a));
}

double
normInf(const Vec& a)
{
    double m = 0.0;
    for (double x : a)
        m = std::max(m, std::abs(x));
    return m;
}

Vec
axpy(const Vec& a, double s, const Vec& b)
{
    Vec r(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        r[i] = a[i] + s * b[i];
    return r;
}

Vec
sub(const Vec& a, const Vec& b)
{
    Vec r(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        r[i] = a[i] - b[i];
    return r;
}

Vec
scale(double s, const Vec& a)
{
    Vec r(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        r[i] = s * a[i];
    return r;
}

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0)
{}

Matrix
Matrix::identity(std::size_t n)
{
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i)
        m.at(i, i) = 1.0;
    return m;
}

void
Matrix::appendRow(const Vec& row)
{
    if (rows_ == 0 && cols_ == 0)
        cols_ = row.size();
    if (row.size() != cols_)
        panic("appendRow width ", row.size(), " != ", cols_);
    data_.insert(data_.end(), row.begin(), row.end());
    ++rows_;
}

Vec
Matrix::mul(const Vec& x) const
{
    Vec r(rows_, 0.0);
    for (std::size_t i = 0; i < rows_; ++i)
        for (std::size_t j = 0; j < cols_; ++j)
            r[i] += at(i, j) * x[j];
    return r;
}

Vec
Matrix::mulTransposed(const Vec& x) const
{
    Vec r(cols_, 0.0);
    for (std::size_t i = 0; i < rows_; ++i)
        for (std::size_t j = 0; j < cols_; ++j)
            r[j] += at(i, j) * x[i];
    return r;
}

Matrix
Matrix::mul(const Matrix& other) const
{
    Matrix r(rows_, other.cols_);
    for (std::size_t i = 0; i < rows_; ++i)
        for (std::size_t k = 0; k < cols_; ++k) {
            double aik = at(i, k);
            if (aik == 0.0)
                continue;
            for (std::size_t j = 0; j < other.cols_; ++j)
                r.at(i, j) += aik * other.at(k, j);
        }
    return r;
}

Matrix
Matrix::transposed() const
{
    Matrix r(cols_, rows_);
    for (std::size_t i = 0; i < rows_; ++i)
        for (std::size_t j = 0; j < cols_; ++j)
            r.at(j, i) = at(i, j);
    return r;
}

Vec
Matrix::solve(const Vec& b, bool* ok) const
{
    if (rows_ != cols_)
        panic("solve on non-square matrix ", rows_, "x", cols_);
    const std::size_t n = rows_;
    Matrix a = *this;
    Vec x = b;
    std::vector<std::size_t> perm(n);
    for (std::size_t i = 0; i < n; ++i)
        perm[i] = i;

    bool singular = false;
    for (std::size_t col = 0; col < n; ++col) {
        // Partial pivot.
        std::size_t pivot = col;
        double best = std::abs(a.at(col, col));
        for (std::size_t r = col + 1; r < n; ++r) {
            double v = std::abs(a.at(r, col));
            if (v > best) {
                best = v;
                pivot = r;
            }
        }
        if (best < 1e-300) {
            singular = true;
            break;
        }
        if (pivot != col) {
            for (std::size_t j = 0; j < n; ++j)
                std::swap(a.at(col, j), a.at(pivot, j));
            std::swap(x[col], x[pivot]);
        }
        for (std::size_t r = col + 1; r < n; ++r) {
            double f = a.at(r, col) / a.at(col, col);
            if (f == 0.0)
                continue;
            for (std::size_t j = col; j < n; ++j)
                a.at(r, j) -= f * a.at(col, j);
            x[r] -= f * x[col];
        }
    }
    if (singular) {
        if (ok)
            *ok = false;
        return Vec(n, 0.0);
    }
    for (std::size_t ri = n; ri-- > 0;) {
        double s = x[ri];
        for (std::size_t j = ri + 1; j < n; ++j)
            s -= a.at(ri, j) * x[j];
        x[ri] = s / a.at(ri, ri);
    }
    if (ok)
        *ok = true;
    return x;
}

Vec
Matrix::solveLeastSquares(const Vec& b, double ridge) const
{
    Matrix at = transposed();
    Matrix ata = at.mul(*this);
    // Scale the ridge with the matrix magnitude for numerical robustness.
    double diagMax = 0.0;
    for (std::size_t i = 0; i < ata.rows(); ++i)
        diagMax = std::max(diagMax, std::abs(ata.at(i, i)));
    double eps = ridge * std::max(1.0, diagMax);
    for (std::size_t i = 0; i < ata.rows(); ++i)
        ata.at(i, i) += eps;
    Vec atb = at.mul(b);
    bool ok = false;
    Vec x = ata.solve(atb, &ok);
    if (!ok) {
        // Extremely degenerate; fall back to a heavier ridge.
        for (std::size_t i = 0; i < ata.rows(); ++i)
            ata.at(i, i) += 1e-6 * std::max(1.0, diagMax);
        x = ata.solve(atb, &ok);
    }
    return x;
}

void
symmetricEigen(const Matrix& a, Matrix* eigvecs, Vec* eigvals)
{
    const std::size_t n = a.rows();
    if (a.cols() != n)
        fatal("symmetricEigen needs a square matrix, got ", a.rows(),
              "x", a.cols());

    // Work on a copy of the upper triangle mirrored symmetric.
    Matrix w(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i; j < n; ++j) {
            w.at(i, j) = a.at(i, j);
            w.at(j, i) = a.at(i, j);
        }
    Matrix v = Matrix::identity(n);

    // Cyclic-by-row Jacobi: fixed pivot order keeps the result
    // deterministic. Convergence is quadratic; 32 sweeps is far more
    // than the 2-8 dimensional matrices here ever need.
    for (int sweep = 0; sweep < 32; ++sweep) {
        double off = 0.0;
        for (std::size_t p = 0; p < n; ++p)
            for (std::size_t q = p + 1; q < n; ++q)
                off += w.at(p, q) * w.at(p, q);
        if (off <= 1e-30)
            break;
        for (std::size_t p = 0; p < n; ++p) {
            for (std::size_t q = p + 1; q < n; ++q) {
                double apq = w.at(p, q);
                if (std::abs(apq) <= 1e-300)
                    continue;
                double theta =
                    (w.at(q, q) - w.at(p, p)) / (2.0 * apq);
                double t = (theta >= 0.0 ? 1.0 : -1.0) /
                           (std::abs(theta) +
                            std::sqrt(theta * theta + 1.0));
                double c = 1.0 / std::sqrt(t * t + 1.0);
                double s = t * c;
                for (std::size_t k = 0; k < n; ++k) {
                    double wkp = w.at(k, p);
                    double wkq = w.at(k, q);
                    w.at(k, p) = c * wkp - s * wkq;
                    w.at(k, q) = s * wkp + c * wkq;
                }
                for (std::size_t k = 0; k < n; ++k) {
                    double wpk = w.at(p, k);
                    double wqk = w.at(q, k);
                    w.at(p, k) = c * wpk - s * wqk;
                    w.at(q, k) = s * wpk + c * wqk;
                }
                for (std::size_t k = 0; k < n; ++k) {
                    double vkp = v.at(k, p);
                    double vkq = v.at(k, q);
                    v.at(k, p) = c * vkp - s * vkq;
                    v.at(k, q) = s * vkp + c * vkq;
                }
            }
        }
    }

    eigvals->assign(n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        (*eigvals)[i] = w.at(i, i);
    *eigvecs = std::move(v);
}

} // namespace libra
