/**
 * @file
 * Projected compass (pattern) search.
 *
 * Derivative-free polish step used on both objectives: polls +/- steps
 * along every coordinate, projects each poll point back onto the design
 * constraints, and shrinks the step when no poll improves. Works on the
 * non-convex PerfPerCostOptBW objective where gradient methods can stall.
 */

#ifndef LIBRA_SOLVER_PATTERN_SEARCH_HH
#define LIBRA_SOLVER_PATTERN_SEARCH_HH

#include "solver/constraint_set.hh"
#include "solver/subgradient.hh"

namespace libra {

/** Options for projected compass search. */
struct PatternSearchOptions
{
    double initialStep = 0.25;  ///< Relative to max(|x0|, 1) per coord.
    double minStep = 1e-7;      ///< Relative stop threshold.
    int maxIterations = 4000;   ///< Total poll evaluations cap.
};

/**
 * Minimize @p f over @p constraints from feasible @p x0 by projected
 * compass search. Always returns a feasible point no worse than x0.
 */
SearchResult patternSearch(const ScalarObjective& f,
                           const ConstraintSet& constraints, const Vec& x0,
                           PatternSearchOptions options = {});

} // namespace libra

#endif // LIBRA_SOLVER_PATTERN_SEARCH_HH
