/**
 * @file
 * Differential evolution (DE/rand/1/bin) over the design polyhedron.
 *
 * The second global strategy next to CMA-ES: a population of feasible
 * points evolves by scaled difference vectors and binomial crossover,
 * every trial is repaired by Euclidean projection onto the
 * constraints, and each generation's trials are evaluated in one
 * batched parallelFor dispatch (per-candidate slots, index-ordered
 * greedy selection) — many candidates per dispatch for the
 * SoA-compiled objective fast path.
 *
 * Deterministic: mutation partners and crossover masks are drawn on a
 * single serial stream from the caller's seed before evaluation fans
 * out, and selection compares trial i against parent i only —
 * bit-identical results at any thread count.
 */

#ifndef LIBRA_SOLVER_DIFFERENTIAL_EVOLUTION_HH
#define LIBRA_SOLVER_DIFFERENTIAL_EVOLUTION_HH

#include <cstdint>

#include "solver/constraint_set.hh"
#include "solver/subgradient.hh"

namespace libra {

/** Options for the DE/rand/1/bin loop. */
struct DifferentialEvolutionOptions
{
    int populationSize = 0;     ///< 0 = clamp(8 * n, 16, 48).
    int generations = 80;       ///< Generation cap.
    double differentialWeight = 0.7; ///< F, the mutation scale.
    double crossoverRate = 0.9; ///< CR, per-coordinate inheritance.
    double scale = 1.0;         ///< Coordinate magnitude (~sum of x0).
    std::uint64_t seed = 0x11BAa;
    long long maxEvals = 0;     ///< Objective-evaluation cap (0 = none).
};

/**
 * Minimize @p f over @p constraints from feasible @p x0 (always a
 * population member, so the result is never worse than the start).
 * SearchResult::iterations counts objective evaluations.
 */
SearchResult
differentialEvolutionSearch(const ScalarObjective& f,
                            const ConstraintSet& constraints,
                            const Vec& x0,
                            const DifferentialEvolutionOptions& options =
                                {});

} // namespace libra

#endif // LIBRA_SOLVER_DIFFERENTIAL_EVOLUTION_HH
