#include "solver/subgradient.hh"

#include <cmath>
#include <memory>

#include "solver/batch_eval.hh"
#include "solver/qp.hh"

namespace libra {

namespace {

/**
 * numericGradient through an incremental evaluator whose base is x:
 * every finite-difference point is a single-coordinate move, so each
 * f-call collapses to a probe. Same h, same probe points, same
 * divisions as the full-evaluation path — bit-identical gradients.
 */
Vec
incrementalGradient(IncrementalEval& inc, const Vec& x, double rel_step)
{
    Vec g(x.size(), 0.0);
    for (std::size_t i = 0; i < x.size(); ++i) {
        double h = rel_step * std::max(std::abs(x[i]), 1e-3);
        double xp = x[i] + h;
        double xm = std::max(x[i] - h, 1e-12);
        g[i] = (inc.probe(i, xp) - inc.probe(i, xm)) / (xp - xm);
    }
    return g;
}

} // namespace

Vec
numericGradient(const ScalarObjective& f, const Vec& x, double rel_step)
{
    Vec g(x.size(), 0.0);
    for (std::size_t i = 0; i < x.size(); ++i) {
        double h = rel_step * std::max(std::abs(x[i]), 1e-3);
        Vec xp = x;
        Vec xm = x;
        xp[i] += h;
        xm[i] = std::max(xm[i] - h, 1e-12);
        g[i] = (f(xp) - f(xm)) / (xp[i] - xm[i]);
    }
    return g;
}

SearchResult
projectedSubgradient(const ScalarObjective& f,
                     const ConstraintSet& constraints, const Vec& x0,
                     SubgradientOptions options)
{
    // The compiled objective evaluates finite-difference probes
    // incrementally (each is a one-coordinate move off the iterate);
    // plain objectives pay the full evaluation per probe. Either way
    // every number computed is bit-identical.
    const BatchEvaluable* batch = batchFacet(f);
    std::unique_ptr<IncrementalEval> inc;
    if (batch)
        inc = batch->makeIncremental();

    Vec x = x0;
    SearchResult best{x, f(x), 0};
    double fx = best.value;
    double scaleBase = std::max(norm(x0), 1.0) * options.initialStep;
    int sinceImprove = 0;

    for (int k = 1; k <= options.maxIterations; ++k) {
        best.iterations = k;
        Vec g;
        if (inc) {
            inc->setBase(x, &fx);
            g = incrementalGradient(*inc, x, kGradientRelStep);
        } else {
            g = numericGradient(f, x);
        }
        double gn = norm(g);
        if (gn <= 0.0)
            break;
        double step = scaleBase / (std::sqrt(static_cast<double>(k)) * gn);
        Vec candidate = axpy(x, -step, g);
        x = projectOntoConstraints(constraints, candidate);
        fx = inc ? inc->evaluate(x) : f(x);
        if (fx < best.value - options.tol * std::abs(best.value)) {
            best.value = fx;
            best.x = x;
            sinceImprove = 0;
        } else {
            if (++sinceImprove >= options.patience)
                break;
        }
    }
    return best;
}

} // namespace libra
