/**
 * @file
 * Feasible-point search via cyclic alternating projections.
 *
 * Each linear constraint admits a closed-form Euclidean projection
 * (hyperplane for equalities, half-space for inequalities); cycling those
 * projections converges to a point of the intersection whenever the
 * polyhedron is non-empty (von Neumann / Bregman). The QP solver uses the
 * result as its phase-1 starting point.
 */

#ifndef LIBRA_SOLVER_FEASIBLE_HH
#define LIBRA_SOLVER_FEASIBLE_HH

#include "solver/constraint_set.hh"
#include "solver/matrix.hh"

namespace libra {

/**
 * Find a point satisfying @p constraints, starting near @p hint.
 *
 * @param constraints Polyhedron to land in.
 * @param hint        Starting point (any vector of the right width).
 * @param tol         Target max violation.
 * @param max_sweeps  Cyclic projection sweeps before giving up.
 * @return Point with maxViolation <= tol when the set is non-empty;
 *         otherwise the best point found (callers must re-check).
 */
Vec findFeasiblePoint(const ConstraintSet& constraints, const Vec& hint,
                      double tol = 1e-10, int max_sweeps = 20000);

} // namespace libra

#endif // LIBRA_SOLVER_FEASIBLE_HH
