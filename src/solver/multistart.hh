/**
 * @file
 * Deterministic multistart driver over an ordered strategy pipeline.
 *
 * PerfPerCostOptBW (time x dollars) is non-convex, so a single descent
 * can land in a local minimum; the driver seeds a pipeline of
 * registered search strategies (see solver/strategy.hh) from several
 * deterministic random feasible points (plus the caller's hint) and
 * keeps the best feasible result. The default pipeline is the classic
 * subgradient -> pattern-search -> Nelder-Mead chain; study files and
 * the CLI can select any registered pipeline (e.g. "cmaes" or
 * "de,pattern-search") without touching the driver.
 *
 * Restarts are independent, so they run concurrently on the global
 * thread pool. Each start draws its point from its own seeded RNG
 * stream (derived from `seed` and the start index), every pipeline
 * stage is deterministic given its StartPoint (stochastic strategies
 * seed from the same stream scheme), and the winner is selected in
 * start-index order with ties broken toward the lower index — so the
 * result is bit-identical at any thread count. Requires the objective
 * to be const-callable from multiple threads (true for all built-in
 * objectives).
 */

#ifndef LIBRA_SOLVER_MULTISTART_HH
#define LIBRA_SOLVER_MULTISTART_HH

#include <string>
#include <vector>

#include "solver/constraint_set.hh"
#include "solver/subgradient.hh"

namespace libra {

/** Options for the multistart driver. */
struct MultistartOptions
{
    int starts = 8;              ///< Random starts besides the hint.
    std::uint64_t seed = 0x11BAa;
    bool useSubgradient = true;  ///< Run subgradient first (convex f).
    bool useNelderMead = true;

    /**
     * Run starts on the global thread pool. Disable only for
     * objectives that are not thread-safe; results are identical
     * either way.
     */
    bool parallel = true;

    /**
     * Ordered strategy-pipeline spec (registry names, run in order
     * from each start). Empty selects the default chain implied by
     * useSubgradient / useNelderMead — exactly the historical
     * behavior, bit for bit.
     */
    std::vector<std::string> pipeline;

    /**
     * Objective-evaluation budget per start, shared by that start's
     * pipeline stages (see EvalBudget); it also caps the driver's
     * final polish stage. 0 = unlimited: the strategies' own
     * iteration caps bind first.
     */
    long long maxEvalsPerStart = 0;
};

/** The pipeline names `options` resolves to (default chain if empty). */
std::vector<std::string>
multistartPipelineNames(const MultistartOptions& options);

/**
 * Derive a cheap screening configuration from @p full: @p starts
 * random starts (besides the hint) and @p max_evals objective
 * evaluations per start, with the seed, pipeline, and every other
 * knob unchanged — so a screening run explores a prefix of the same
 * deterministic search the full budget would. The exploration layer's
 * "prune" strategy ranks candidates with these before promoting the
 * survivors to the full budget.
 */
MultistartOptions screeningOptions(MultistartOptions full, int starts,
                                   long long max_evals);

/**
 * Minimize @p f over @p constraints. @p hint provides both the first
 * start and the magnitude scale for random starts.
 */
SearchResult multistartMinimize(const ScalarObjective& f,
                                const ConstraintSet& constraints,
                                const Vec& hint,
                                MultistartOptions options = {});

} // namespace libra

#endif // LIBRA_SOLVER_MULTISTART_HH
