/**
 * @file
 * Deterministic multistart driver combining the individual searches.
 *
 * PerfPerCostOptBW (time x dollars) is non-convex, so a single descent can
 * land in a local minimum; the driver seeds pattern search + Nelder-Mead
 * from several deterministic random feasible points (plus the caller's
 * hint) and keeps the best feasible result.
 *
 * Restarts are independent, so they run concurrently on the global
 * thread pool. Each start draws its point from its own seeded RNG
 * stream (derived from `seed` and the start index), every start's
 * search is deterministic given its point, and the winner is selected
 * in start-index order with ties broken toward the lower index — so
 * the result is bit-identical at any thread count. Requires the
 * objective to be const-callable from multiple threads (true for all
 * built-in objectives).
 */

#ifndef LIBRA_SOLVER_MULTISTART_HH
#define LIBRA_SOLVER_MULTISTART_HH

#include "solver/constraint_set.hh"
#include "solver/subgradient.hh"

namespace libra {

/** Options for the multistart driver. */
struct MultistartOptions
{
    int starts = 8;              ///< Random starts besides the hint.
    std::uint64_t seed = 0x11BAa;
    bool useSubgradient = true;  ///< Run subgradient first (convex f).
    bool useNelderMead = true;

    /**
     * Run starts on the global thread pool. Disable only for
     * objectives that are not thread-safe; results are identical
     * either way.
     */
    bool parallel = true;
};

/**
 * Minimize @p f over @p constraints. @p hint provides both the first
 * start and the magnitude scale for random starts.
 */
SearchResult multistartMinimize(const ScalarObjective& f,
                                const ConstraintSet& constraints,
                                const Vec& hint,
                                MultistartOptions options = {});

} // namespace libra

#endif // LIBRA_SOLVER_MULTISTART_HH
