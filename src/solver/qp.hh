/**
 * @file
 * Primal active-set solver for small convex quadratic programs.
 *
 *     minimize   1/2 x'Qx + c'x
 *     subject to A x  = b
 *                G x <= h
 *
 * This is the in-repo replacement for the commercial QP solver the paper
 * uses (Gurobi): LIBRA's bandwidth-allocation searches only ever need
 * projections onto the linear design-constraint polyhedron (Q = I) and
 * small quadratic subproblems, both of which this solver handles exactly.
 */

#ifndef LIBRA_SOLVER_QP_HH
#define LIBRA_SOLVER_QP_HH

#include "solver/constraint_set.hh"
#include "solver/matrix.hh"

namespace libra {

/** Outcome of a QP solve. */
struct QpResult
{
    Vec x;                  ///< Final iterate.
    double objective = 0.0; ///< 1/2 x'Qx + c'x at x.
    bool converged = false; ///< KKT conditions met within tolerance.
    int iterations = 0;     ///< Active-set iterations used.
};

/** Working-set tolerance and iteration cap for the QP solver. */
struct QpOptions
{
    double tol = 1e-9;
    int maxIterations = 200;
};

/** Convex QP over explicit matrices. Q must be positive definite. */
class QpSolver
{
  public:
    QpSolver(Matrix q, Vec c, Matrix a_eq, Vec b_eq, Matrix g_le, Vec h_le,
             QpOptions options = {});

    /**
     * Run the active-set method from a feasible start.
     *
     * @param x0 Feasible initial point (see findFeasiblePoint()).
     */
    QpResult solve(const Vec& x0) const;

  private:
    /**
     * Solve the equality-constrained subproblem on the working set:
     * step p and multipliers for the rows in @p working.
     */
    bool solveKkt(const Vec& x, const std::vector<std::size_t>& working,
                  Vec* p, Vec* ineq_multipliers) const;

    Matrix q_;
    Vec c_;
    Matrix aEq_;
    Vec bEq_;
    Matrix gLe_;
    Vec hLe_;
    QpOptions options_;
};

/**
 * Euclidean projection of @p point onto the polyhedron described by
 * @p constraints: argmin ||x - point||^2 s.t. constraints. Solved as a QP
 * with Q = I starting from an alternating-projection feasible point.
 *
 * @throws FatalError when the constraint set is (numerically) infeasible.
 */
Vec projectOntoConstraints(const ConstraintSet& constraints,
                           const Vec& point);

} // namespace libra

#endif // LIBRA_SOLVER_QP_HH
