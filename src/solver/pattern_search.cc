#include "solver/pattern_search.hh"

#include <algorithm>
#include <cmath>
#include <memory>

#include "solver/batch_eval.hh"
#include "solver/qp.hh"

namespace libra {

SearchResult
patternSearch(const ScalarObjective& f, const ConstraintSet& constraints,
              const Vec& x0, PatternSearchOptions options)
{
    const std::size_t n = x0.size();
    double base = 1.0;
    for (double v : x0)
        base = std::max(base, std::abs(v));
    double step = options.initialStep * base;
    const double minStep = options.minStep * base;

    // Compass polls move one coordinate off the incumbent (projection
    // usually leaves the others untouched), which the compiled
    // objective re-evaluates incrementally; the evaluator detects the
    // actual diff after projection and falls back to a full evaluation
    // when clipping coupled other coordinates. Plain objectives pay a
    // full evaluation per poll. Every value is bit-identical.
    const BatchEvaluable* batch = batchFacet(f);
    std::unique_ptr<IncrementalEval> inc;
    if (batch)
        inc = batch->makeIncremental();

    SearchResult best{x0, f(x0), 0};
    if (inc)
        inc->setBase(x0, &best.value);
    int evals = 0;

    while (step > minStep && evals < options.maxIterations) {
        bool improved = false;
        for (std::size_t i = 0; i < n && evals < options.maxIterations;
             ++i) {
            for (double sign : {+1.0, -1.0}) {
                Vec cand = best.x;
                cand[i] += sign * step;
                cand = projectOntoConstraints(constraints, cand);
                double fv = inc ? inc->evaluate(cand) : f(cand);
                ++evals;
                if (fv < best.value) {
                    best.value = fv;
                    best.x = cand;
                    improved = true;
                    if (inc)
                        inc->setBase(cand, &fv);
                }
            }
        }
        if (!improved)
            step *= 0.5;
    }
    best.iterations = evals;
    return best;
}

} // namespace libra
