/**
 * @file
 * CMA-ES (covariance matrix adaptation evolution strategy) over the
 * design polyhedron.
 *
 * A global, derivative-free search for the non-convex PerfPerCostOptBW
 * landscape: each generation samples a population from an adapted
 * multivariate normal, repairs every candidate by Euclidean projection
 * onto the constraints, and evaluates the whole population in one
 * batched parallelFor dispatch (per-candidate slots, index-ordered
 * reduction) so the SoA-compiled objective fast path sees many
 * candidates per generation. The rank-mu + rank-one covariance update
 * uses the repaired steps, which keeps the search distribution inside
 * the feasible cone.
 *
 * Deterministic: all sampling comes from the caller's seed on a single
 * serial stream, evaluation order never feeds back into the state, and
 * ranking ties break toward the lower candidate index — bit-identical
 * results at any thread count.
 */

#ifndef LIBRA_SOLVER_CMAES_HH
#define LIBRA_SOLVER_CMAES_HH

#include <cstdint>

#include "solver/constraint_set.hh"
#include "solver/subgradient.hh"

namespace libra {

/** Options for the CMA-ES loop. */
struct CmaesOptions
{
    int populationSize = 0;  ///< 0 = 4 + floor(3 ln n), the CMA default.
    int generations = 120;   ///< Generation cap.
    double initialSigma = 0.0; ///< 0 = 0.3 * scale / n.
    double scale = 1.0;      ///< Coordinate magnitude (~sum of x0).
    std::uint64_t seed = 0x11BAa;
    long long maxEvals = 0;  ///< Objective-evaluation cap (0 = none).
};

/**
 * Minimize @p f over @p constraints from feasible @p x0. Returns the
 * best projected (feasible) point ever evaluated — never worse than
 * the start. SearchResult::iterations counts objective evaluations.
 */
SearchResult cmaesSearch(const ScalarObjective& f,
                         const ConstraintSet& constraints, const Vec& x0,
                         const CmaesOptions& options = {});

} // namespace libra

#endif // LIBRA_SOLVER_CMAES_HH
