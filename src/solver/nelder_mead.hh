/**
 * @file
 * Nelder-Mead simplex search with a quadratic constraint penalty.
 *
 * Complements compass search in the multistart driver: the reflective
 * simplex moves escape narrow valleys of the PerfPerCost objective that
 * axis-aligned polling cannot, while the penalty keeps iterates near the
 * design polyhedron (the driver re-projects the result exactly).
 */

#ifndef LIBRA_SOLVER_NELDER_MEAD_HH
#define LIBRA_SOLVER_NELDER_MEAD_HH

#include "solver/constraint_set.hh"
#include "solver/subgradient.hh"

namespace libra {

/** Options for the penalized Nelder-Mead loop. */
struct NelderMeadOptions
{
    int maxIterations = 2000;
    double initialScale = 0.15;  ///< Simplex edge relative to max(|x0|,1).
    double tol = 1e-12;          ///< Simplex value-spread stop threshold.
    double penaltyWeight = 1e6;  ///< Quadratic infeasibility penalty.
};

/**
 * Minimize @p f near @p constraints from @p x0. The returned point is
 * re-projected onto the constraints and guaranteed feasible.
 */
SearchResult nelderMead(const ScalarObjective& f,
                        const ConstraintSet& constraints, const Vec& x0,
                        NelderMeadOptions options = {});

} // namespace libra

#endif // LIBRA_SOLVER_NELDER_MEAD_HH
