/**
 * @file
 * Batched / incremental evaluation facets of a scalar objective.
 *
 * Every solver takes a type-erased `ScalarObjective`; the compiled
 * analytical objective (core/objective.cc) additionally supports two
 * much faster evaluation modes:
 *
 *  - whole-population batches through the SIMD candidate-major kernels
 *    (CompiledWorkload::estimateBatch), and
 *  - incremental re-evaluation of coordinate-local moves (pattern
 *    search polls and subgradient probes change one dimension).
 *
 * Both modes are bit-identical to calling the scalar objective — they
 * are pure evaluation-order-preserving reformulations — so a solver
 * may use them opportunistically without changing any result.
 *
 * The facets ride inside the `std::function`: `makeObjective` returns
 * a `BatchableObjective` wrapper, and solvers recover it with
 * `batchFacet()` (`std::function::target`). Objectives that are plain
 * lambdas — custom timing models, counting wrappers, tests — simply
 * yield no facet and every solver falls back to per-call evaluation.
 */

#ifndef LIBRA_SOLVER_BATCH_EVAL_HH
#define LIBRA_SOLVER_BATCH_EVAL_HH

#include <cstddef>
#include <memory>

#include "solver/subgradient.hh"

namespace libra {

/**
 * Incremental re-evaluation around a movable base point.
 *
 * Mutable and strictly single-threaded: each solver invocation builds
 * its own instance (the shared objective stays immutable). Heavy
 * per-dimension caches are built lazily on the first probe, so
 * rebasing after an accepted move costs one vector copy.
 */
class IncrementalEval
{
  public:
    virtual ~IncrementalEval() = default;

    /**
     * Move the base point to @p x. Pass @p knownValue when f(x) was
     * already computed; otherwise the value is evaluated on demand.
     */
    virtual void setBase(const Vec& x,
                         const double* knownValue = nullptr) = 0;

    /** Objective value at the current base point. */
    virtual double baseValue() = 0;

    /**
     * f(base with coordinate @p dim set to @p value) — bit-identical
     * to a full evaluation at that point. Does not move the base.
     */
    virtual double probe(std::size_t dim, double value) = 0;

    /**
     * Evaluate @p x, choosing the cheapest exact path: the cached base
     * value when x == base, a probe when x differs from the base in
     * exactly one coordinate, and a full evaluation (which rebases to
     * x) otherwise. Always bit-identical to f(x).
     */
    virtual double evaluate(const Vec& x) = 0;
};

/** The batched/incremental evaluation facet of an objective. */
class BatchEvaluable
{
  public:
    virtual ~BatchEvaluable() = default;

    /** Scalar evaluation; the std::function call forwards here. */
    virtual double evaluateOne(const Vec& x) const = 0;

    /**
     * Evaluate @p n candidates into @p out (per-candidate slots, so
     * results are deterministic at any thread count). Bit-identical
     * per candidate to evaluateOne.
     */
    virtual void evaluateBatch(const Vec* xs, std::size_t n,
                               double* out) const = 0;

    /** New single-threaded incremental evaluator over this objective. */
    virtual std::unique_ptr<IncrementalEval> makeIncremental() const = 0;
};

/**
 * The concrete callable `makeObjective` stores in the ScalarObjective
 * when the fast facets are available. Copyable (shared impl), so the
 * std::function stays cheap to pass around.
 */
struct BatchableObjective
{
    std::shared_ptr<const BatchEvaluable> impl;

    double
    operator()(const Vec& x) const
    {
        return impl->evaluateOne(x);
    }
};

/**
 * Recover the batched-evaluation facet of @p f, or nullptr when @p f
 * is a plain callable. The facet shares @p f's lifetime.
 */
inline const BatchEvaluable*
batchFacet(const ScalarObjective& f)
{
    const auto* wrapper = f.target<BatchableObjective>();
    return wrapper ? wrapper->impl.get() : nullptr;
}

} // namespace libra

#endif // LIBRA_SOLVER_BATCH_EVAL_HH
