/**
 * @file
 * Pluggable search-strategy layer for the bandwidth optimizer.
 *
 * Every iterative search LIBRA knows — the classic subgradient /
 * pattern-search / Nelder-Mead chain plus the global CMA-ES and
 * differential-evolution solvers — implements one interface:
 *
 *     search(objective, constraints, start, budget) -> SearchResult
 *
 * and registers itself in the process-wide StrategyRegistry under a
 * stable name ("subgradient", "pattern-search", "nelder-mead",
 * "cmaes", "de"). The multistart driver is generic over an ordered
 * pipeline of registered strategies, so adding a solver or comparing
 * solver quality per scenario never touches the driver again: study
 * files select pipelines with `SOLVER <name>[,<name>...]` and the CLI
 * with `--solver`.
 *
 * Determinism contract (see docs/SOLVERS.md): a strategy must be
 * a pure function of (objective, constraints, start) — including
 * start.rngSeed for stochastic strategies — and must be bit-identical
 * at any thread count. Strategies are shared across concurrently
 * running starts, so search() must be const and carry no mutable
 * state; population evaluations may fan out on the global thread pool
 * but must write into per-candidate slots and reduce in index order.
 */

#ifndef LIBRA_SOLVER_STRATEGY_HH
#define LIBRA_SOLVER_STRATEGY_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "solver/constraint_set.hh"
#include "solver/subgradient.hh"

namespace libra {

/** One restart's starting state, handed to every pipeline stage. */
struct StartPoint
{
    Vec x;                      ///< Feasible starting point.
    std::uint64_t rngSeed = 0;  ///< Deterministic per-start stream.
    double scale = 1.0;         ///< Magnitude for sampling (~sum |x|).
};

/**
 * Objective-evaluation budget shared by the stages of one start's
 * pipeline. A strategy caps its own iteration count by remaining()
 * before running and charges what it actually spent afterwards, so a
 * later stage sees what an earlier one used. The budget is per start
 * (never shared across threads), which keeps results independent of
 * scheduling. A zero limit means unlimited — the strategies' own
 * iteration caps bind first, preserving historical behavior.
 */
class EvalBudget
{
  public:
    explicit EvalBudget(long long limit = 0)
        : limit_(limit > 0 ? limit : kUnlimited)
    {}

    /** Evaluations left before the budget is exhausted. */
    long long
    remaining() const
    {
        return used_ >= limit_ ? 0 : limit_ - used_;
    }

    bool exhausted() const { return remaining() == 0; }

    /** Record @p evals objective evaluations. */
    void charge(long long evals) { used_ += evals; }

    long long used() const { return used_; }

  private:
    static constexpr long long kUnlimited = 1ll << 62;

    long long limit_;
    long long used_ = 0;
};

/** One registered search algorithm; see the file comment's contract. */
class SearchStrategy
{
  public:
    virtual ~SearchStrategy() = default;

    /** Registry key, e.g. "pattern-search". */
    virtual std::string name() const = 0;

    /** One-line description for `libra_cli list-solvers`. */
    virtual std::string description() const = 0;

    /**
     * Minimize @p f over @p constraints from @p start within
     * @p budget. Must return a feasible point no worse than the start
     * (strategies that can wander, like Nelder-Mead, compare against
     * f(start.x) internally and fall back to the start).
     */
    virtual SearchResult search(const ScalarObjective& f,
                                const ConstraintSet& constraints,
                                const StartPoint& start,
                                EvalBudget& budget) const = 0;
};

/** Name-keyed strategy collection, iterated in registration order. */
class StrategyRegistry
{
  public:
    /**
     * The process-wide registry with every built-in strategy
     * registered on first use. Do not mutate concurrently with
     * running searches (registration happens at startup in practice).
     */
    static StrategyRegistry& global();

    /** Register a strategy. @throws FatalError on a duplicate name. */
    void add(std::unique_ptr<const SearchStrategy> strategy);

    /** Look up by name; nullptr when absent. */
    const SearchStrategy* find(const std::string& name) const;

    /** All names in registration order. */
    std::vector<std::string> names() const;

    std::size_t size() const { return strategies_.size(); }

  private:
    std::vector<std::unique_ptr<const SearchStrategy>> strategies_;
};

/**
 * Resolve an ordered pipeline spec against the global registry.
 * @throws FatalError naming the unknown strategy and the known ones.
 */
std::vector<const SearchStrategy*>
resolveStrategyPipeline(const std::vector<std::string>& names);

/**
 * Parse a comma-separated solver spec ("cmaes,pattern-search") into
 * pipeline names. Validates every name against the global registry.
 * @throws FatalError on an empty spec or an unknown name.
 */
std::vector<std::string> parseSolverSpec(const std::string& spec);

/** Join pipeline names back into the comma-separated spec form. */
std::string solverSpecToString(const std::vector<std::string>& names);

} // namespace libra

#endif // LIBRA_SOLVER_STRATEGY_HH
