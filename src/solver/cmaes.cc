#include "solver/cmaes.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/random.hh"
#include "common/thread_pool.hh"
#include "solver/batch_eval.hh"
#include "solver/matrix.hh"
#include "solver/qp.hh"

namespace libra {

SearchResult
cmaesSearch(const ScalarObjective& f, const ConstraintSet& constraints,
            const Vec& x0, const CmaesOptions& options)
{
    const std::size_t n = x0.size();
    const double nd = static_cast<double>(n);

    const int lambda =
        options.populationSize > 0
            ? options.populationSize
            : 4 + static_cast<int>(std::floor(3.0 * std::log(nd)));
    const std::size_t lam = static_cast<std::size_t>(lambda);
    const std::size_t mu = lam / 2;

    // Log-rank recombination weights and the standard CMA constants
    // (Hansen, "The CMA evolution strategy: a tutorial").
    Vec weights(mu);
    double wSum = 0.0;
    for (std::size_t i = 0; i < mu; ++i) {
        weights[i] = std::log(static_cast<double>(mu) + 0.5) -
                     std::log(static_cast<double>(i) + 1.0);
        wSum += weights[i];
    }
    double muEff = 0.0;
    for (auto& w : weights) {
        w /= wSum;
        muEff += w * w;
    }
    muEff = 1.0 / muEff;

    const double cSigma = (muEff + 2.0) / (nd + muEff + 5.0);
    const double dSigma =
        1.0 + cSigma +
        2.0 * std::max(0.0, std::sqrt((muEff - 1.0) / (nd + 1.0)) - 1.0);
    const double cc =
        (4.0 + muEff / nd) / (nd + 4.0 + 2.0 * muEff / nd);
    const double c1 = 2.0 / ((nd + 1.3) * (nd + 1.3) + muEff);
    const double cMu = std::min(
        1.0 - c1, 2.0 * (muEff - 2.0 + 1.0 / muEff) /
                      ((nd + 2.0) * (nd + 2.0) + muEff));
    const double chiN =
        std::sqrt(nd) *
        (1.0 - 1.0 / (4.0 * nd) + 1.0 / (21.0 * nd * nd));

    Rng rng(options.seed);
    Vec mean = x0;
    double sigma = options.initialSigma > 0.0
                       ? options.initialSigma
                       : 0.3 * options.scale / nd;
    const double sigmaFloor = 1e-12 * std::max(options.scale, 1.0);
    Matrix cov = Matrix::identity(n);
    Vec pSigma(n, 0.0);
    Vec pc(n, 0.0);

    SearchResult best{x0, f(x0), 1};
    long long evals = 1;
    // A generation only runs when its whole population fits the
    // remaining budget, so `evals` never exceeds maxEvals.
    auto budgetLeft = [&] {
        return options.maxEvals <= 0 ||
               evals + static_cast<long long>(lam) <= options.maxEvals;
    };

    std::vector<Vec> cands(lam);
    std::vector<Vec> steps(lam); // Repaired y_i = (x_i - mean) / sigma.
    Vec values(lam, 0.0);
    const BatchEvaluable* batch = batchFacet(f);

    for (int gen = 0;
         gen < options.generations && budgetLeft() && sigma > sigmaFloor;
         ++gen) {
        // Eigendecompose C = B diag(d^2) B' once per generation.
        Matrix b;
        Vec d2;
        symmetricEigen(cov, &b, &d2);
        Vec d(n);
        for (std::size_t i = 0; i < n; ++i)
            d[i] = std::sqrt(std::max(d2[i], 1e-20));

        // Draw the whole population serially so the stream position
        // never depends on evaluation scheduling, then repair.
        for (std::size_t i = 0; i < lam; ++i) {
            Vec z(n);
            for (auto& zi : z)
                zi = rng.normal();
            Vec y(n, 0.0);
            for (std::size_t r = 0; r < n; ++r)
                for (std::size_t c = 0; c < n; ++c)
                    y[r] += b.at(r, c) * d[c] * z[c];
            cands[i] =
                projectOntoConstraints(constraints, axpy(mean, sigma, y));
            steps[i] = scale(1.0 / sigma, sub(cands[i], mean));
        }

        // Batched evaluation: one dispatch per generation, results in
        // per-candidate slots. The compiled objective streams the
        // whole generation through the SIMD kernels (bit-identical to
        // per-candidate calls); plain objectives fan out per candidate.
        if (batch)
            batch->evaluateBatch(cands.data(), lam, values.data());
        else
            parallelFor(lam,
                        [&](std::size_t i) { values[i] = f(cands[i]); });
        evals += static_cast<long long>(lam);

        // Rank with ties toward the lower candidate index.
        std::vector<std::size_t> order(lam);
        std::iota(order.begin(), order.end(), 0);
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t c) {
                      if (values[a] != values[c])
                          return values[a] < values[c];
                      return a < c;
                  });
        if (values[order[0]] < best.value) {
            best.value = values[order[0]];
            best.x = cands[order[0]];
        }

        // Recombine the top-mu repaired steps.
        Vec yw(n, 0.0);
        for (std::size_t i = 0; i < mu; ++i)
            for (std::size_t k = 0; k < n; ++k)
                yw[k] += weights[i] * steps[order[i]][k];
        mean = axpy(mean, sigma, yw);

        // Step-size path needs C^{-1/2} yw = B diag(1/d) B' yw.
        Vec tmp(n, 0.0);
        for (std::size_t c = 0; c < n; ++c)
            for (std::size_t r = 0; r < n; ++r)
                tmp[c] += b.at(r, c) * yw[r];
        Vec cInvHalfYw(n, 0.0);
        for (std::size_t r = 0; r < n; ++r)
            for (std::size_t c = 0; c < n; ++c)
                cInvHalfYw[r] += b.at(r, c) * tmp[c] / d[c];
        double pathScale = std::sqrt(cSigma * (2.0 - cSigma) * muEff);
        for (std::size_t k = 0; k < n; ++k)
            pSigma[k] = (1.0 - cSigma) * pSigma[k] +
                        pathScale * cInvHalfYw[k];

        double pSigmaNorm = norm(pSigma);
        double denom = std::sqrt(
            1.0 - std::pow(1.0 - cSigma, 2.0 * (gen + 1)));
        bool hSigma = pSigmaNorm / denom / chiN < 1.4 + 2.0 / (nd + 1.0);
        double ccScale =
            hSigma ? std::sqrt(cc * (2.0 - cc) * muEff) : 0.0;
        for (std::size_t k = 0; k < n; ++k)
            pc[k] = (1.0 - cc) * pc[k] + ccScale * yw[k];

        // Rank-one + rank-mu covariance update on the repaired steps.
        double c1a =
            c1 * (1.0 - (hSigma ? 0.0 : 1.0) * cc * (2.0 - cc));
        for (std::size_t r = 0; r < n; ++r) {
            for (std::size_t c = r; c < n; ++c) {
                double rankMu = 0.0;
                for (std::size_t i = 0; i < mu; ++i)
                    rankMu += weights[i] * steps[order[i]][r] *
                              steps[order[i]][c];
                double v = (1.0 - c1a - cMu) * cov.at(r, c) +
                           c1 * pc[r] * pc[c] + cMu * rankMu;
                cov.at(r, c) = v;
                cov.at(c, r) = v;
            }
        }

        sigma *= std::exp(cSigma / dSigma * (pSigmaNorm / chiN - 1.0));
    }

    best.iterations = static_cast<int>(
        std::min<long long>(evals, 1ll << 30));
    return best;
}

} // namespace libra
