#include "explore/design_space.hh"

#include "common/logging.hh"
#include "topology/network.hh"

namespace libra {

namespace {

void
validateSpace(const DesignSpace& space)
{
    if (space.topologies.empty())
        fatal("design space has no topology axis values");
    if (space.workloads.empty())
        fatal("design space has no workload axis values");
    if (space.budgets.empty())
        fatal("design space has no budget axis values");
    if (space.objectives.empty())
        fatal("design space has no objective axis values");
    for (const auto& w : space.workloads) {
        if (!w.targets)
            fatal("design-space workload variant '", w.label,
                  "' has no target builder");
    }
}

} // namespace

std::size_t
candidateCount(const DesignSpace& space)
{
    validateSpace(space);
    std::size_t costs = space.costs.empty() ? 1 : space.costs.size();
    return space.topologies.size() * space.workloads.size() * costs *
           space.budgets.size() * space.objectives.size();
}

Candidate
candidateAt(const DesignSpace& space, std::size_t index)
{
    const std::size_t count = candidateCount(space);
    if (index >= count)
        fatal("design-space candidate index ", index,
              " out of range (", count, " candidates)");

    // Mixed-radix decode of the fixed axis order: objectives vary
    // fastest, then budgets, costs, workloads, topologies.
    std::size_t rest = index;
    const std::size_t nObj = space.objectives.size();
    const std::size_t nBud = space.budgets.size();
    const std::size_t nCost = space.costs.empty() ? 1 : space.costs.size();
    const std::size_t nWl = space.workloads.size();
    std::size_t iObj = rest % nObj;
    rest /= nObj;
    std::size_t iBud = rest % nBud;
    rest /= nBud;
    std::size_t iCost = rest % nCost;
    rest /= nCost;
    std::size_t iWl = rest % nWl;
    rest /= nWl;
    std::size_t iTopo = rest;

    const TopologyChoice& topo = space.topologies[iTopo];
    const WorkloadChoice& wl = space.workloads[iWl];

    Candidate c;
    c.index = index;
    c.topology = topo.label;
    c.workload = wl.label;
    c.budget = space.budgets[iBud];
    c.objective = space.objectives[iObj];

    Network net = Network::parse(topo.shape);
    c.inputs.networkShape = net.name();
    c.inputs.targets = wl.targets(net.npus());
    c.inputs.normalizeTargetWeights = wl.normalizeWeights;
    if (!space.costs.empty()) {
        c.cost = space.costs[iCost].label;
        c.inputs.costModel = space.costs[iCost].model;
    }
    c.inputs.config.objective = c.objective;
    c.inputs.config.totalBw = c.budget;
    c.inputs.config.search = space.search;
    c.inputs.config.estimator = space.estimator;
    return c;
}

std::vector<Candidate>
expandDesignSpace(const DesignSpace& space)
{
    std::vector<Candidate> out;
    const std::size_t count = candidateCount(space);
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        out.push_back(candidateAt(space, i));
    return out;
}

} // namespace libra
