/**
 * @file
 * Pluggable outer-loop exploration strategies over a DesignSpace.
 *
 * Every way LIBRA can search a discrete design space implements one
 * interface:
 *
 *     explore(candidates, params, sweep) -> ExploreResult
 *
 * and registers itself in the process-wide ExploreRegistry under a
 * stable name, mirroring the SOLVER (StrategyRegistry) and BACKEND
 * (TimingBackendRegistry) layers:
 *
 *  - "exhaustive" (the default): every candidate runs at its full
 *    search budget in one sweep batch — bit-identical to the
 *    historical hand-enumerated scenarios, so golden figures and
 *    version-1 cache keys are untouched.
 *  - "prune": bound-based successive halving. Every candidate is
 *    ranked by a cheap screening pass (few starts, capped objective
 *    evaluations); only the surviving fraction of each objective
 *    stratum is promoted to the next round and, finally, to the
 *    full-budget optimization. Reaches the exhaustive winner with a
 *    fraction of the full-budget optimize() calls (bench/micro_explore
 *    tracks this in BENCH_explore.json).
 *
 * Study files select strategies with `EXPLORE <name>[,key=value...]`
 * and the CLI with `--explore` / `list-explorers`.
 *
 * Determinism contract (see docs/EXPLORE.md): a strategy must be a
 * pure function of (candidates, params, sweep results). All candidate
 * evaluation goes through the provided sweep function (which is the
 * deterministic, thread-count-independent runLibraSweep, optionally
 * wrapped with the study cache), rankings reduce in candidate-index
 * order with ties toward the lower index, and per-candidate RNG
 * streams come from each candidate's own search seed — so an
 * exploration is bit-identical at any thread count, fresh or cached.
 */

#ifndef LIBRA_EXPLORE_EXPLORE_HH
#define LIBRA_EXPLORE_EXPLORE_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "explore/design_space.hh"

namespace libra {

/** The default strategy: run every candidate at full budget. */
inline constexpr const char* kExhaustiveExploreName = "exhaustive";

/** The successive-halving screening strategy. */
inline constexpr const char* kPruneExploreName = "prune";

/** One declared strategy parameter with its default and legal range. */
struct ExploreParamSpec
{
    std::string key;
    double defaultValue = 0.0;
    double min = 0.0;
    double max = 0.0;

    /**
     * Reject fractional values. Integral parameters (round counts,
     * eval budgets) would otherwise truncate silently while their
     * fractional text still reaches the canonical spec — two tags for
     * one behavior, defeating the cache.
     */
    bool integer = false;
};

/** Batch evaluator handed to strategies (runLibraSweep, maybe cached). */
using ExploreSweepFn = std::function<std::vector<LibraReport>(
    const std::vector<LibraInputs>&)>;

/** One candidate's exploration outcome. */
struct ExploreOutcome
{
    Candidate candidate;
    LibraReport report;   ///< Full-budget, or the last screening pass.
    bool fullBudget = false;
    int roundsSurvived = 0; ///< Screening rounds this candidate passed.
};

/** Result of exploring one design space. */
struct ExploreResult
{
    /** Outcomes in candidate-index order, one per candidate. */
    std::vector<ExploreOutcome> outcomes;

    /**
     * Best full-budget candidate per objective stratum (objective
     * values are comparable within an objective, not across), in
     * first-seen candidate order; ties toward the lower index.
     */
    std::vector<std::size_t> winners;

    std::size_t fullRuns = 0;   ///< Candidates optimized at full budget.
    std::size_t screenRuns = 0; ///< Screening-pass optimizations.
};

/** One registered exploration strategy; see the file comment. */
class ExploreStrategy
{
  public:
    virtual ~ExploreStrategy() = default;

    /** Registry key, e.g. "prune". */
    virtual std::string name() const = 0;

    /** One-line description for `libra_cli list-explorers`. */
    virtual std::string description() const = 0;

    /** Declared parameters in canonical spec order (may be empty). */
    virtual std::vector<ExploreParamSpec> params() const { return {}; }

    /**
     * Explore @p candidates, evaluating only through @p sweep.
     * @p params is aligned with params(), defaults filled in.
     * Must return one outcome per candidate, in index order.
     */
    virtual ExploreResult explore(const std::vector<Candidate>& candidates,
                                  const std::vector<double>& params,
                                  const ExploreSweepFn& sweep) const = 0;
};

/** Name-keyed strategy collection, iterated in registration order. */
class ExploreRegistry
{
  public:
    /**
     * The process-wide registry with the built-in strategies
     * registered on first use. Do not mutate concurrently with
     * running explorations (registration happens at startup).
     */
    static ExploreRegistry& global();

    /** Register a strategy. @throws FatalError on a duplicate name. */
    void add(std::unique_ptr<const ExploreStrategy> strategy);

    /** Look up by name; nullptr when absent. */
    const ExploreStrategy* find(const std::string& name) const;

    /** All names in registration order. */
    std::vector<std::string> names() const;

    std::size_t size() const { return strategies_.size(); }

  private:
    std::vector<std::unique_ptr<const ExploreStrategy>> strategies_;
};

/** A parsed `EXPLORE` spec: strategy plus its full parameter vector. */
struct ExploreSpec
{
    const ExploreStrategy* strategy = nullptr;
    std::vector<double> params; ///< Aligned with strategy->params().
};

/**
 * Parse an explore spec: `name[,key=value...]` with keys from the
 * strategy's declared parameters. An empty string selects exhaustive.
 * @throws FatalError on an unknown strategy, unknown/duplicate key,
 * or an out-of-range value.
 */
ExploreSpec parseExploreSpec(const std::string& text);

/**
 * Canonical text form of @p text: strategy name plus only the
 * non-default parameters, each rendered in shortest round-trip form,
 * in declared order — and "" for the default strategy with default
 * parameters. The canonical form is its own fixpoint; it is the
 * study-file serialization and the cache-key tag.
 * @throws FatalError on an invalid spec.
 */
std::string canonicalExploreSpec(const std::string& text);

/**
 * Run @p spec (canonical or raw; "" = exhaustive) over @p candidates
 * using @p sweep for every optimization batch.
 */
ExploreResult exploreCandidates(const std::vector<Candidate>& candidates,
                                const std::string& spec,
                                const ExploreSweepFn& sweep);

/**
 * Assemble the exhaustive result from already aligned full-budget
 * reports — the path the matrix runner uses when a design-space
 * scenario's candidates ran inside the shared batch.
 */
ExploreResult
exhaustiveResultFromReports(std::vector<Candidate> candidates,
                            const std::vector<LibraReport>& reports);

} // namespace libra

#endif // LIBRA_EXPLORE_EXPLORE_HH
