/**
 * @file
 * Design-space declaration for outer-loop exploration studies.
 *
 * The paper's headline explorations (Fig. 16 topology shapes, Fig. 17
 * workload groups, Fig. 18 cost sensitivity, Fig. 21 parallelization
 * co-design) are all discrete outer loops wrapped around the continuous
 * bandwidth optimizer. A DesignSpace reifies that outer loop as data:
 * it declares the discrete axes — topology shape (building-block
 * composition per dimension, which also fixes the NPU scale), workload
 * variant (including parallelization strategy and group membership),
 * cost model, per-NPU bandwidth budget, and objective — and expands
 * lazily to candidate LibraInputs.
 *
 * Expansion order is fixed and documented: topologies (slowest), then
 * workloads, then costs, then budgets, then objectives (fastest). The
 * registered paper scenarios rely on this order matching their
 * historical hand-rolled nested loops bit for bit, so the matrix
 * runner's dedup/caching and the golden figures are unaffected by the
 * refactor onto this layer.
 *
 * Every candidate carries its axis labels, so formatters emit explicit
 * per-row identity instead of re-deriving it from index arithmetic.
 */

#ifndef LIBRA_EXPLORE_DESIGN_SPACE_HH
#define LIBRA_EXPLORE_DESIGN_SPACE_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "core/framework.hh"

namespace libra {

/** One topology-shape candidate (the composition fixes the scale). */
struct TopologyChoice
{
    std::string label; ///< Row label, e.g. "3D-512".
    std::string shape; ///< Composition, e.g. "SW(16)_SW(8)_SW(4)".
};

/**
 * One workload variant: a target-list builder at the candidate
 * network's NPU count. Multi-member lists express group-optimization
 * candidates (Fig. 17); @p normalizeWeights selects the 1/T_EqualBW
 * importance weighting for them.
 */
struct WorkloadChoice
{
    std::string label;
    std::function<std::vector<TargetWorkload>(long npus)> targets;
    bool normalizeWeights = false;
};

/** One cost-model variant (Fig. 18's price sweep). */
struct CostChoice
{
    std::string label;
    CostModel model = CostModel::defaultModel();
};

/**
 * The declared axes of one exploration study. topologies, workloads,
 * budgets, and objectives must be non-empty; an empty costs axis means
 * the default cost model (and contributes no label).
 */
struct DesignSpace
{
    std::vector<TopologyChoice> topologies;
    std::vector<WorkloadChoice> workloads;
    std::vector<CostChoice> costs;
    std::vector<double> budgets;
    std::vector<OptimizationObjective> objectives;

    /** Search configuration applied to every candidate. */
    MultistartOptions search;

    /** Estimator options applied to every candidate. */
    EstimatorOptions estimator;
};

/** One expanded candidate: axis labels plus ready-to-run inputs. */
struct Candidate
{
    std::size_t index = 0;   ///< Position in expansion order.
    std::string topology;    ///< TopologyChoice label.
    std::string workload;    ///< WorkloadChoice label.
    std::string cost;        ///< CostChoice label ("" = default model).
    double budget = 0.0;
    OptimizationObjective objective = OptimizationObjective::PerfOpt;
    LibraInputs inputs;
};

/**
 * Number of candidates @p space expands to.
 * @throws FatalError when a required axis is empty.
 */
std::size_t candidateCount(const DesignSpace& space);

/**
 * Lazily materialize candidate @p index (mixed-radix decode of the
 * fixed axis order; objectives vary fastest, topologies slowest).
 * @throws FatalError when @p index is out of range.
 */
Candidate candidateAt(const DesignSpace& space, std::size_t index);

/** Materialize every candidate in expansion order. */
std::vector<Candidate> expandDesignSpace(const DesignSpace& space);

} // namespace libra

#endif // LIBRA_EXPLORE_DESIGN_SPACE_HH
