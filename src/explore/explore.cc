#include "explore/explore.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/json.hh"
#include "common/logging.hh"
#include "solver/multistart.hh"

namespace libra {

namespace {

std::string
trimmed(const std::string& s)
{
    auto begin = s.find_first_not_of(" \t");
    if (begin == std::string::npos)
        return "";
    auto end = s.find_last_not_of(" \t");
    return s.substr(begin, end - begin + 1);
}

std::string
knownStrategies()
{
    std::string known;
    for (const auto& n : ExploreRegistry::global().names())
        known += known.empty() ? n : (", " + n);
    return known;
}

/**
 * Objective strata in first-seen candidate order: objective values are
 * comparable within one objective (same figure of merit), never across.
 */
std::vector<OptimizationObjective>
objectiveStrata(const std::vector<Candidate>& candidates)
{
    std::vector<OptimizationObjective> strata;
    for (const auto& c : candidates) {
        if (std::find(strata.begin(), strata.end(), c.objective) ==
            strata.end()) {
            strata.push_back(c.objective);
        }
    }
    return strata;
}

/** Best full-budget outcome per stratum; ties toward the lower index. */
std::vector<std::size_t>
computeWinners(const std::vector<ExploreOutcome>& outcomes)
{
    std::vector<Candidate> candidates;
    candidates.reserve(outcomes.size());
    for (const auto& o : outcomes)
        candidates.push_back(o.candidate);

    std::vector<std::size_t> winners;
    for (OptimizationObjective obj : objectiveStrata(candidates)) {
        std::size_t best = outcomes.size();
        for (std::size_t i = 0; i < outcomes.size(); ++i) {
            if (outcomes[i].candidate.objective != obj ||
                !outcomes[i].fullBudget) {
                continue;
            }
            if (best == outcomes.size() ||
                outcomes[i].report.optimized.objectiveValue <
                    outcomes[best].report.optimized.objectiveValue) {
                best = i;
            }
        }
        if (best < outcomes.size())
            winners.push_back(best);
    }
    return winners;
}

// --- Exhaustive --------------------------------------------------------

class ExhaustiveExplore : public ExploreStrategy
{
  public:
    std::string name() const override { return kExhaustiveExploreName; }

    std::string
    description() const override
    {
        return "run every candidate at full budget in one batch (the "
               "default; bit-identical to hand enumeration)";
    }

    ExploreResult
    explore(const std::vector<Candidate>& candidates,
            const std::vector<double>&,
            const ExploreSweepFn& sweep) const override
    {
        std::vector<LibraInputs> batch;
        batch.reserve(candidates.size());
        for (const auto& c : candidates)
            batch.push_back(c.inputs);
        std::vector<LibraReport> reports = sweep(batch);
        return exhaustiveResultFromReports(candidates, reports);
    }
};

// --- Prune (successive halving) ----------------------------------------

/** Parameter order defines the canonical spec order. */
enum PruneParam
{
    kKeep = 0,        ///< Surviving fraction per stratum per round.
    kRounds,          ///< Screening rounds before the full budget.
    kScreenEvals,     ///< Round-0 objective evaluations per start.
    kScreenStarts,    ///< Random starts besides the hint per screen.
    kNumPruneParams,
};

class PruneExplore : public ExploreStrategy
{
  public:
    std::string name() const override { return kPruneExploreName; }

    std::string
    description() const override
    {
        return "successive halving: rank candidates with cheap "
               "screening passes, promote the top fraction of each "
               "objective stratum to the full budget";
    }

    std::vector<ExploreParamSpec>
    params() const override
    {
        return {{"keep", 0.5, 1e-6, 1.0, false},
                {"rounds", 1.0, 1.0, 8.0, true},
                {"screen-evals", 120.0, 1.0, 1e9, true},
                {"screen-starts", 1.0, 0.0, 64.0, true}};
    }

    ExploreResult
    explore(const std::vector<Candidate>& candidates,
            const std::vector<double>& params,
            const ExploreSweepFn& sweep) const override
    {
        const double keep = params[kKeep];
        const int rounds = static_cast<int>(params[kRounds]);
        const long long screenEvals =
            static_cast<long long>(params[kScreenEvals]);
        const int screenStarts = static_cast<int>(params[kScreenStarts]);

        ExploreResult result;
        result.outcomes.reserve(candidates.size());
        for (const auto& c : candidates)
            result.outcomes.push_back({c, {}, false, 0});

        // Alive set, maintained in candidate-index order throughout so
        // every reduction below is order-deterministic.
        std::vector<std::size_t> alive(candidates.size());
        for (std::size_t i = 0; i < alive.size(); ++i)
            alive[i] = i;

        for (int round = 0; round < rounds; ++round) {
            // Screening budget doubles each round as the field narrows
            // (classic successive halving: total screening cost stays
            // roughly flat per round).
            const long long evals = screenEvals << round;
            std::vector<LibraInputs> batch;
            batch.reserve(alive.size());
            for (std::size_t i : alive) {
                LibraInputs p = candidates[i].inputs;
                p.config.search = screeningOptions(p.config.search,
                                                   screenStarts, evals);
                batch.push_back(std::move(p));
            }
            std::vector<LibraReport> reports = sweep(batch);
            result.screenRuns += batch.size();
            for (std::size_t k = 0; k < alive.size(); ++k)
                result.outcomes[alive[k]].report = reports[k];

            // Rank each objective stratum by screened objective value;
            // keep the top fraction (at least one). Sorting (value,
            // index) pairs keeps ties deterministic at the lower index.
            std::vector<std::size_t> next;
            for (OptimizationObjective obj :
                 objectiveStrata(candidates)) {
                std::vector<std::pair<double, std::size_t>> ranked;
                for (std::size_t i : alive) {
                    if (candidates[i].objective == obj) {
                        ranked.emplace_back(
                            result.outcomes[i]
                                .report.optimized.objectiveValue,
                            i);
                    }
                }
                if (ranked.empty())
                    continue;
                std::sort(ranked.begin(), ranked.end());
                std::size_t kept = static_cast<std::size_t>(std::ceil(
                    static_cast<double>(ranked.size()) * keep));
                kept = std::max<std::size_t>(kept, 1);
                kept = std::min(kept, ranked.size());
                for (std::size_t k = 0; k < kept; ++k) {
                    next.push_back(ranked[k].second);
                    result.outcomes[ranked[k].second].roundsSurvived =
                        round + 1;
                }
            }
            std::sort(next.begin(), next.end());
            alive = std::move(next);
        }

        // Promote the survivors to their full search budget.
        std::vector<LibraInputs> finals;
        finals.reserve(alive.size());
        for (std::size_t i : alive)
            finals.push_back(candidates[i].inputs);
        std::vector<LibraReport> reports = sweep(finals);
        result.fullRuns += finals.size();
        for (std::size_t k = 0; k < alive.size(); ++k) {
            result.outcomes[alive[k]].report = reports[k];
            result.outcomes[alive[k]].fullBudget = true;
        }

        result.winners = computeWinners(result.outcomes);
        return result;
    }
};

} // namespace

ExploreResult
exhaustiveResultFromReports(std::vector<Candidate> candidates,
                            const std::vector<LibraReport>& reports)
{
    if (candidates.size() != reports.size())
        fatal("exhaustive exploration expects one report per candidate "
              "(got ", reports.size(), " for ", candidates.size(), ")");
    ExploreResult result;
    result.outcomes.reserve(candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        result.outcomes.push_back(
            {std::move(candidates[i]), reports[i], true, 0});
    }
    result.fullRuns = result.outcomes.size();
    result.winners = computeWinners(result.outcomes);
    return result;
}

ExploreRegistry&
ExploreRegistry::global()
{
    static ExploreRegistry* registry = [] {
        auto* r = new ExploreRegistry();
        r->add(std::make_unique<ExhaustiveExplore>());
        r->add(std::make_unique<PruneExplore>());
        return r;
    }();
    return *registry;
}

void
ExploreRegistry::add(std::unique_ptr<const ExploreStrategy> strategy)
{
    if (!strategy || strategy->name().empty())
        fatal("exploration strategy has no name");
    if (find(strategy->name()))
        fatal("duplicate exploration strategy '", strategy->name(), "'");
    strategies_.push_back(std::move(strategy));
}

const ExploreStrategy*
ExploreRegistry::find(const std::string& name) const
{
    for (const auto& s : strategies_) {
        if (s->name() == name)
            return s.get();
    }
    return nullptr;
}

std::vector<std::string>
ExploreRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(strategies_.size());
    for (const auto& s : strategies_)
        out.push_back(s->name());
    return out;
}

ExploreSpec
parseExploreSpec(const std::string& text)
{
    std::vector<std::string> tokens;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        std::size_t comma = text.find(',', pos);
        if (comma == std::string::npos)
            comma = text.size();
        tokens.push_back(trimmed(text.substr(pos, comma - pos)));
        pos = comma + 1;
    }

    ExploreSpec spec;
    const std::string name =
        tokens.empty() || tokens[0].empty() ? kExhaustiveExploreName
                                            : tokens[0];
    spec.strategy = ExploreRegistry::global().find(name);
    if (!spec.strategy)
        fatal("unknown exploration strategy '", name, "' (known: ",
              knownStrategies(), ")");

    const std::vector<ExploreParamSpec> declared =
        spec.strategy->params();
    spec.params.reserve(declared.size());
    for (const auto& p : declared)
        spec.params.push_back(p.defaultValue);

    std::vector<bool> seen(declared.size(), false);
    for (std::size_t t = 1; t < tokens.size(); ++t) {
        const std::string& token = tokens[t];
        if (token.empty())
            fatal("empty parameter in explore spec '", text, "'");
        std::size_t eq = token.find('=');
        if (eq == std::string::npos)
            fatal("explore parameter '", token,
                  "' is not key=value in spec '", text, "'");
        std::string key = trimmed(token.substr(0, eq));
        std::string valueText = trimmed(token.substr(eq + 1));
        std::size_t index = declared.size();
        for (std::size_t d = 0; d < declared.size(); ++d) {
            if (declared[d].key == key)
                index = d;
        }
        if (index == declared.size()) {
            std::string known;
            for (const auto& p : declared)
                known += known.empty() ? p.key : (", " + p.key);
            fatal("strategy '", name, "' has no parameter '", key,
                  "'", declared.empty()
                          ? ""
                          : (" (known: " + known + ")"));
        }
        if (seen[index])
            fatal("duplicate explore parameter '", key, "' in spec '",
                  text, "'");
        seen[index] = true;

        char* end = nullptr;
        double v = std::strtod(valueText.c_str(), &end);
        if (valueText.empty() || end != valueText.c_str() +
                                            valueText.size() ||
            !std::isfinite(v)) {
            fatal("bad value '", valueText, "' for explore parameter '",
                  key, "'");
        }
        if (v < declared[index].min || v > declared[index].max) {
            fatal("explore parameter '", key, "' = ", v,
                  " out of range [", declared[index].min, ", ",
                  declared[index].max, "]");
        }
        if (declared[index].integer && v != std::floor(v))
            fatal("explore parameter '", key, "' = ", v,
                  " must be an integer");
        spec.params[index] = v;
    }
    return spec;
}

std::string
canonicalExploreSpec(const std::string& text)
{
    ExploreSpec spec = parseExploreSpec(text);
    const std::vector<ExploreParamSpec> declared =
        spec.strategy->params();
    std::string out;
    for (std::size_t i = 0; i < declared.size(); ++i) {
        if (spec.params[i] == declared[i].defaultValue)
            continue;
        out += ',';
        out += declared[i].key;
        out += '=';
        out += jsonNumberToString(spec.params[i]);
    }
    // The default strategy at default parameters canonicalizes to ""
    // (like the analytical BACKEND), keeping default cache keys and
    // serializations byte-identical to the pre-explore engine.
    if (out.empty() && spec.strategy->name() == kExhaustiveExploreName)
        return "";
    return spec.strategy->name() + out;
}

ExploreResult
exploreCandidates(const std::vector<Candidate>& candidates,
                  const std::string& spec,
                  const ExploreSweepFn& sweep)
{
    ExploreSpec parsed = parseExploreSpec(spec);
    ExploreResult result =
        parsed.strategy->explore(candidates, parsed.params, sweep);
    if (result.outcomes.size() != candidates.size())
        fatal("exploration strategy '", parsed.strategy->name(),
              "' returned ", result.outcomes.size(), " outcomes for ",
              candidates.size(), " candidates");
    return result;
}

} // namespace libra
