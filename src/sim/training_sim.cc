#include "sim/training_sim.hh"

#include <algorithm>

#include "common/logging.hh"

namespace libra {

TrainingSim::TrainingSim(Network net, TrainingSimOptions options)
    : net_(std::move(net)), options_(options)
{}

std::vector<CollectiveJob>
TrainingSim::jobsFor(const std::vector<CommOp>& ops,
                     const Parallelization& strategy,
                     Seconds release) const
{
    std::vector<CollectiveJob> jobs;
    for (const auto& op : ops) {
        std::vector<DimSpan> spans;
        bool eff = options_.modelPartialDimEfficiency;
        switch (op.scope) {
          case CommScope::Tp:
            spans = mapGroupToDims(net_, 1, strategy.tp, eff);
            break;
          case CommScope::Pp:
            spans = mapGroupToDims(net_, strategy.tp, strategy.pp, eff);
            break;
          case CommScope::Dp:
            spans = mapGroupToDims(net_, strategy.tp * strategy.pp,
                                   strategy.dp, eff);
            break;
          case CommScope::All:
            spans = mapGroupToDims(net_, 1, net_.npus(), eff);
            break;
        }
        if (spans.empty())
            continue;
        CollectiveJob job;
        job.type = op.type;
        job.size = op.size;
        job.spans = std::move(spans);
        job.numChunks = options_.chunksPerCollective;
        job.releaseTime = release;
        job.policy = options_.policy;
        jobs.push_back(std::move(job));
    }
    return jobs;
}

TrainingSimResult
TrainingSim::simulate(const Workload& w, const BwConfig& bw) const
{
    if (w.strategy.npus() != net_.npus()) {
        fatal("workload ", w.name, " uses ", w.strategy.npus(),
              " NPUs but network ", net_.name(), " has ", net_.npus());
    }
    ChunkTimeline timeline(net_.numDims(), bw);
    TrainingSimResult result;
    result.dimBusy.assign(net_.numDims(), 0.0);

    auto accumulate = [&result](const TimelineResult& tl) {
        for (std::size_t d = 0; d < tl.dimBusy.size(); ++d)
            result.dimBusy[d] += tl.dimBusy[d];
        result.commTime += tl.makespan;
        return tl.makespan;
    };

    auto runSequential = [&](const std::vector<CollectiveJob>& jobs) {
        Seconds t = 0.0;
        for (const auto& job : jobs) {
            CollectiveJob j = job;
            j.releaseTime = 0.0;
            t += accumulate(timeline.run({j}));
        }
        return t;
    };

    for (const auto& layer : w.layers) {
        // Forward: compute then communication, always exclusive.
        result.total += layer.fwdCompute;
        result.computeTotal += layer.fwdCompute;
        result.total +=
            runSequential(jobsFor(layer.fwdComm, w.strategy, 0.0));

        switch (options_.loop) {
          case TrainingLoop::NoOverlap: {
            result.total += layer.igCompute;
            result.computeTotal += layer.igCompute;
            result.total +=
                runSequential(jobsFor(layer.igComm, w.strategy, 0.0));
            result.total += layer.wgCompute;
            result.computeTotal += layer.wgCompute;
            result.total +=
                runSequential(jobsFor(layer.wgComm, w.strategy, 0.0));
            break;
          }
          case TrainingLoop::TpDpOverlap: {
            // TP comm starts when input-grad compute retires; DP comm
            // waits for the weight-grad compute. Both share the fabric.
            result.total += layer.igCompute;
            result.computeTotal +=
                layer.igCompute + layer.wgCompute;
            auto jobs = jobsFor(layer.igComm, w.strategy, 0.0);
            auto wgJobs =
                jobsFor(layer.wgComm, w.strategy, layer.wgCompute);
            jobs.insert(jobs.end(), wgJobs.begin(), wgJobs.end());
            Seconds tail;
            if (jobs.empty()) {
                tail = layer.wgCompute;
            } else {
                TimelineResult tl = timeline.run(jobs);
                tail = std::max(accumulate(tl), layer.wgCompute);
            }
            result.total += tail;
            break;
          }
        }
    }

    double sumBw = 0.0;
    double weighted = 0.0;
    for (std::size_t d = 0; d < net_.numDims(); ++d) {
        sumBw += bw[d];
        weighted += result.dimBusy[d] * bw[d];
    }
    if (result.commTime > 0.0 && sumBw > 0.0) {
        result.avgBwUtilization =
            weighted / (result.commTime * sumBw);
    }
    return result;
}

} // namespace libra
