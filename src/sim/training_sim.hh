/**
 * @file
 * Event-driven training-loop simulator.
 *
 * Replays a workload's layers through the chunk-level network pipeline:
 * every collective becomes a ChunkTimeline job, and under the TP-DP
 * overlap loop the TP and DP collectives of a layer's backward pass run
 * *concurrently* in one timeline — so dimension contention between
 * overlapping collectives is simulated rather than max()-approximated.
 * This is the repo's ASTRA-sim stand-in for validating the analytical
 * estimator and producing utilization numbers (Fig. 10).
 */

#ifndef LIBRA_SIM_TRAINING_SIM_HH
#define LIBRA_SIM_TRAINING_SIM_HH

#include "core/estimator.hh"
#include "sim/chunk_timeline.hh"

namespace libra {

/** Simulator options. */
struct TrainingSimOptions
{
    TrainingLoop loop = TrainingLoop::NoOverlap;
    int chunksPerCollective = 64; ///< Paper §V-B: 64 chunks.
    SchedulePolicy policy = SchedulePolicy::FixedAscending;
    bool modelPartialDimEfficiency = true; ///< See DimSpan::efficiency.
};

/** Result of simulating one training iteration. */
struct TrainingSimResult
{
    Seconds total = 0.0;          ///< Iteration time.
    Seconds commTime = 0.0;       ///< Wall time with comm in flight.
    Seconds computeTotal = 0.0;
    std::vector<Seconds> dimBusy; ///< Busy seconds per dimension.
    double avgBwUtilization = 0.0;///< BW-weighted, over comm wall time.
};

/** Chunk-granularity training-iteration simulator. */
class TrainingSim
{
  public:
    TrainingSim(Network net, TrainingSimOptions options = {});

    /** Simulate one iteration of @p w under @p bw. */
    TrainingSimResult simulate(const Workload& w, const BwConfig& bw) const;

  private:
    /** Build timeline jobs for a list of comm ops. */
    std::vector<CollectiveJob>
    jobsFor(const std::vector<CommOp>& ops, const Parallelization& strategy,
            Seconds release) const;

    Network net_;
    TrainingSimOptions options_;
};

} // namespace libra

#endif // LIBRA_SIM_TRAINING_SIM_HH
