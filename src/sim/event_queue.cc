#include "sim/event_queue.hh"

#include <cmath>

#include "common/logging.hh"

namespace libra {

Tick
toTicks(Seconds s)
{
    return static_cast<Tick>(std::llround(s * kTicksPerSecond));
}

Seconds
toSeconds(Tick t)
{
    return static_cast<Seconds>(t) / kTicksPerSecond;
}

void
EventQueue::schedule(Tick when, std::function<void()> callback)
{
    if (when < now_)
        panic("scheduling event at ", when, " before now ", now_);
    std::uint32_t slot;
    if (!freeSlots_.empty()) {
        slot = freeSlots_.back();
        freeSlots_.pop_back();
        slots_[slot] = std::move(callback);
    } else {
        slot = static_cast<std::uint32_t>(slots_.size());
        slots_.push_back(std::move(callback));
    }
    queue_.push({when, nextSeq_++, slot});
}

void
EventQueue::scheduleAfter(Tick delay, std::function<void()> callback)
{
    schedule(now_ + delay, std::move(callback));
}

bool
EventQueue::step()
{
    if (queue_.empty())
        return false;
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.when;
    // Move the callback out and free its slot before running: the
    // callback may schedule new events that reuse the slot.
    std::function<void()> callback = std::move(slots_[ev.slot]);
    slots_[ev.slot] = nullptr;
    freeSlots_.push_back(ev.slot);
    callback();
    return true;
}

void
EventQueue::run()
{
    while (step()) {
    }
}

} // namespace libra
