#include "sim/event_queue.hh"

#include <cmath>

#include "common/logging.hh"

namespace libra {

Tick
toTicks(Seconds s)
{
    return static_cast<Tick>(std::llround(s * kTicksPerSecond));
}

Seconds
toSeconds(Tick t)
{
    return static_cast<Seconds>(t) / kTicksPerSecond;
}

void
EventQueue::schedule(Tick when, std::function<void()> callback)
{
    if (when < now_)
        panic("scheduling event at ", when, " before now ", now_);
    queue_.push({when, nextSeq_++, std::move(callback)});
}

void
EventQueue::scheduleAfter(Tick delay, std::function<void()> callback)
{
    schedule(now_ + delay, std::move(callback));
}

bool
EventQueue::step()
{
    if (queue_.empty())
        return false;
    // priority_queue::top() is const; the callback is moved out after the
    // copy below, so take it by value.
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.when;
    ev.callback();
    return true;
}

void
EventQueue::run()
{
    while (step()) {
    }
}

} // namespace libra
