/**
 * @file
 * Message-level, data-carrying collective simulator.
 *
 * Executes real multi-rail Reduce-Scatter / All-Gather / All-Reduce
 * semantics over every NPU of a network, carrying actual element values —
 * the executable version of the paper's Fig. 8 worked example. Each NPU
 * owns a buffer; Reduce-Scatter over a dimension partitions each group
 * member's active range and reduces it across the group, All-Gather
 * mirrors the partition back. Timing uses the per-dimension algorithm
 * (Ring / Direct / Halving-Doubling) with a latency-bandwidth cost per
 * stage; stages execute sequentially (chunk pipelining is modeled by
 * ChunkTimeline, data correctness here).
 *
 * Restriction: dimension groups must span whole dimensions (the All
 * scope). Partial spans are a timing-only concept handled analytically.
 */

#ifndef LIBRA_SIM_COLLECTIVE_SIM_HH
#define LIBRA_SIM_COLLECTIVE_SIM_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "common/units.hh"
#include "topology/network.hh"

namespace libra {

/** Timing record of one per-dimension stage. */
struct StageResult
{
    std::size_t dim = 0;
    bool allGather = false;
    Seconds time = 0.0;
    Bytes bytesPerNpu = 0.0; ///< Bytes each NPU moved this stage.
    int steps = 0;           ///< Algorithm steps (latency multiplier).
};

/** Data-carrying multi-rail collective executor. */
class CollectiveSim
{
  public:
    /**
     * @param net          Network (all dimensions participate).
     * @param bw           Per-dimension bandwidth, GB/s per NPU.
     * @param link_latency Per-algorithm-step latency (seconds).
     * @param elem_bytes   Wire size per element (default FP32).
     */
    CollectiveSim(Network net, BwConfig bw, Seconds link_latency = 0.0,
                  double elem_bytes = kFp32Bytes);

    /**
     * (Re)initialize per-NPU buffers of @p elems elements with
     * @p init(npu, index). @p elems must be divisible by the NPU count.
     */
    void init(std::size_t elems,
              const std::function<double(long, std::size_t)>& init);

    /** Run Reduce-Scatter over dims ascending. @return elapsed time. */
    Seconds runReduceScatter();

    /** Run All-Gather over dims descending. @return elapsed time. */
    Seconds runAllGather();

    /** Run the full multi-rail All-Reduce. @return elapsed time. */
    Seconds runAllReduce();

    /** Buffer of one NPU (stale outside its active range after RS). */
    const std::vector<double>& data(long npu) const;

    /** Active range [lo, hi) of one NPU. */
    std::pair<std::size_t, std::size_t> activeRange(long npu) const;

    /** Stage-by-stage timing log of everything run so far. */
    const std::vector<StageResult>& stages() const { return stages_; }

    /** Total simulated time so far. */
    Seconds elapsed() const { return elapsed_; }

    /**
     * True when every NPU's active range covers the whole buffer and
     * equals the elementwise sum of all initial buffers within @p tol.
     */
    bool verifyAllReduce(double tol = 1e-9) const;

    /**
     * True when the active ranges tile the buffer per dimension group
     * and hold the correct sums (post-Reduce-Scatter check).
     */
    bool verifyReduceScatter(double tol = 1e-9) const;

  private:
    struct NpuState
    {
        std::vector<double> data;
        std::size_t lo = 0;
        std::size_t hi = 0;
    };

    /** Member NPU ids of every group along dimension @p d. */
    std::vector<std::vector<long>> groupsOfDim(std::size_t d) const;

    void rsStage(std::size_t d);
    void agStage(std::size_t d);

    /** Algorithm steps for a group of @p g in dimension @p d. */
    int stepsOf(std::size_t d, int g) const;

    Network net_;
    BwConfig bw_;
    Seconds latency_;
    double elemBytes_;
    std::size_t elems_ = 0;
    std::vector<NpuState> npus_;
    std::vector<double> reference_; ///< Elementwise sum of init buffers.
    std::vector<StageResult> stages_;
    Seconds elapsed_ = 0.0;
};

} // namespace libra

#endif // LIBRA_SIM_COLLECTIVE_SIM_HH
