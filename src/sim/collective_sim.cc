#include "sim/collective_sim.hh"

#include <cmath>

#include "common/logging.hh"

namespace libra {

CollectiveSim::CollectiveSim(Network net, BwConfig bw,
                             Seconds link_latency, double elem_bytes)
    : net_(std::move(net)), bw_(std::move(bw)), latency_(link_latency),
      elemBytes_(elem_bytes)
{
    if (bw_.size() != net_.numDims())
        panic("bw rank ", bw_.size(), " != dims ", net_.numDims());
}

void
CollectiveSim::init(std::size_t elems,
                    const std::function<double(long, std::size_t)>& init)
{
    long n = net_.npus();
    if (elems == 0 || elems % static_cast<std::size_t>(n) != 0) {
        fatal("element count ", elems, " must be a positive multiple of ",
              n, " NPUs");
    }
    elems_ = elems;
    npus_.assign(static_cast<std::size_t>(n), {});
    reference_.assign(elems, 0.0);
    for (long id = 0; id < n; ++id) {
        NpuState& s = npus_[static_cast<std::size_t>(id)];
        s.data.resize(elems);
        s.lo = 0;
        s.hi = elems;
        for (std::size_t i = 0; i < elems; ++i) {
            s.data[i] = init(id, i);
            reference_[i] += s.data[i];
        }
    }
    stages_.clear();
    elapsed_ = 0.0;
}

std::vector<std::vector<long>>
CollectiveSim::groupsOfDim(std::size_t d) const
{
    const long stride = net_.prefixProduct(d);
    const int g = net_.dim(d).size;
    std::vector<std::vector<long>> groups;
    std::vector<bool> seen(static_cast<std::size_t>(net_.npus()), false);
    for (long id = 0; id < net_.npus(); ++id) {
        if (seen[static_cast<std::size_t>(id)])
            continue;
        std::vector<long> group;
        auto coords = net_.coordsOf(id);
        long base = id - coords[d] * stride;
        for (int j = 0; j < g; ++j) {
            long member = base + j * stride;
            group.push_back(member);
            seen[static_cast<std::size_t>(member)] = true;
        }
        groups.push_back(std::move(group));
    }
    return groups;
}

int
CollectiveSim::stepsOf(std::size_t d, int g) const
{
    switch (canonicalAlgorithm(net_.dim(d).type)) {
      case DimAlgorithm::Ring:
        return g - 1;
      case DimAlgorithm::Direct:
        return 1;
      case DimAlgorithm::HalvingDoubling:
        return static_cast<int>(std::ceil(std::log2(g)));
    }
    panic("unknown algorithm");
}

void
CollectiveSim::rsStage(std::size_t d)
{
    const int g = net_.dim(d).size;
    Bytes bytesPerNpu = 0.0;
    for (const auto& group : groupsOfDim(d)) {
        const NpuState& first = npus_[static_cast<std::size_t>(group[0])];
        const std::size_t lo = first.lo;
        const std::size_t len = first.hi - first.lo;
        if (len % static_cast<std::size_t>(g) != 0) {
            fatal("active range ", len, " not divisible by group ", g,
                  " in dim ", d + 1);
        }
        const std::size_t part = len / static_cast<std::size_t>(g);

        // Reduce part j across the group; member j keeps it.
        std::vector<double> sums(len, 0.0);
        for (long member : group) {
            const NpuState& s = npus_[static_cast<std::size_t>(member)];
            if (s.lo != lo || s.hi != lo + len)
                panic("group members disagree on active range in dim ",
                      d + 1);
            for (std::size_t i = 0; i < len; ++i)
                sums[i] += s.data[lo + i];
        }
        for (std::size_t j = 0; j < group.size(); ++j) {
            NpuState& s = npus_[static_cast<std::size_t>(group[j])];
            s.lo = lo + j * part;
            s.hi = s.lo + part;
            for (std::size_t i = s.lo; i < s.hi; ++i)
                s.data[i] = sums[i - lo];
        }
        bytesPerNpu = static_cast<double>(part) * elemBytes_ *
                      static_cast<double>(g - 1);
    }
    int steps = stepsOf(d, g);
    Seconds t = transferTime(bytesPerNpu, bw_[d]) + steps * latency_;
    stages_.push_back({d, false, t, bytesPerNpu, steps});
    elapsed_ += t;
}

void
CollectiveSim::agStage(std::size_t d)
{
    const int g = net_.dim(d).size;
    Bytes bytesPerNpu = 0.0;
    for (const auto& group : groupsOfDim(d)) {
        // Members own consecutive sub-parts of a common parent range.
        std::size_t parentLo = npus_[static_cast<std::size_t>(
                                         group[0])].lo;
        std::size_t partLen = 0;
        for (long member : group) {
            const NpuState& s = npus_[static_cast<std::size_t>(member)];
            parentLo = std::min(parentLo, s.lo);
            partLen = s.hi - s.lo;
        }
        const std::size_t parentLen =
            partLen * static_cast<std::size_t>(g);
        if (parentLo + parentLen > elems_) {
            fatal("All-Gather on dim ", d + 1, " without a matching "
                  "Reduce-Scatter: group ranges are not sibling "
                  "sub-parts");
        }
        // Members must own disjoint consecutive parts of the parent.
        for (long member : group) {
            const NpuState& s = npus_[static_cast<std::size_t>(member)];
            if (s.hi - s.lo != partLen || (s.lo - parentLo) % partLen) {
                fatal("All-Gather on dim ", d + 1, " with misaligned "
                      "member ranges (run Reduce-Scatter first)");
            }
        }

        // Every member copies every sibling's owned part.
        for (long member : group) {
            NpuState& s = npus_[static_cast<std::size_t>(member)];
            for (long sibling : group) {
                if (sibling == member)
                    continue;
                const NpuState& src =
                    npus_[static_cast<std::size_t>(sibling)];
                for (std::size_t i = src.lo; i < src.hi; ++i)
                    s.data[i] = src.data[i];
            }
            s.lo = parentLo;
            s.hi = parentLo + parentLen;
        }
        bytesPerNpu = static_cast<double>(partLen) * elemBytes_ *
                      static_cast<double>(g - 1);
    }
    int steps = stepsOf(d, g);
    Seconds t = transferTime(bytesPerNpu, bw_[d]) + steps * latency_;
    stages_.push_back({d, true, t, bytesPerNpu, steps});
    elapsed_ += t;
}

Seconds
CollectiveSim::runReduceScatter()
{
    if (npus_.empty())
        fatal("CollectiveSim::init must be called first");
    Seconds before = elapsed_;
    for (std::size_t d = 0; d < net_.numDims(); ++d)
        rsStage(d);
    return elapsed_ - before;
}

Seconds
CollectiveSim::runAllGather()
{
    if (npus_.empty())
        fatal("CollectiveSim::init must be called first");
    Seconds before = elapsed_;
    for (std::size_t d = net_.numDims(); d-- > 0;)
        agStage(d);
    return elapsed_ - before;
}

Seconds
CollectiveSim::runAllReduce()
{
    Seconds t = runReduceScatter();
    return t + runAllGather();
}

const std::vector<double>&
CollectiveSim::data(long npu) const
{
    return npus_.at(static_cast<std::size_t>(npu)).data;
}

std::pair<std::size_t, std::size_t>
CollectiveSim::activeRange(long npu) const
{
    const NpuState& s = npus_.at(static_cast<std::size_t>(npu));
    return {s.lo, s.hi};
}

bool
CollectiveSim::verifyAllReduce(double tol) const
{
    for (const auto& s : npus_) {
        if (s.lo != 0 || s.hi != elems_)
            return false;
        for (std::size_t i = 0; i < elems_; ++i) {
            if (std::abs(s.data[i] - reference_[i]) > tol)
                return false;
        }
    }
    return true;
}

bool
CollectiveSim::verifyReduceScatter(double tol) const
{
    // Each NPU's active range must hold the global sums, and ranges of
    // all NPUs must tile [0, elems) exactly npus/elems-per-npu times.
    std::vector<int> coverage(elems_, 0);
    for (const auto& s : npus_) {
        if (s.hi <= s.lo)
            return false;
        for (std::size_t i = s.lo; i < s.hi; ++i) {
            if (std::abs(s.data[i] - reference_[i]) > tol)
                return false;
            ++coverage[i];
        }
    }
    for (int c : coverage) {
        if (c != coverage[0])
            return false;
    }
    return true;
}

} // namespace libra
