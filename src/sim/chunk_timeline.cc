#include "sim/chunk_timeline.hh"

#include <algorithm>
#include <deque>
#include <iomanip>
#include <memory>
#include <sstream>

#include "common/logging.hh"

namespace libra {

namespace {

/** Phase a chunk is in. */
enum class Phase { ReduceScatter, AllGatherMirror, AllGather, AllToAll,
                   Done };

/** Mutable per-chunk state while flowing through the pipeline. */
struct ChunkState
{
    int job = 0;
    int chunk = 0;
    Phase phase = Phase::ReduceScatter;
    double fraction = 1.0;       ///< Payload share left after reductions.
    double gatherProduct = 1.0;  ///< Product of groups not yet gathered.
    std::vector<std::size_t> remaining; ///< Span indices not yet visited.
    /** Visited RS stages (span index, duration) for the AG mirror. */
    std::vector<std::pair<std::size_t, Seconds>> rsStages;
    std::size_t a2aNext = 0; ///< Next span index for All-to-All.
};

} // namespace

ChunkTimeline::ChunkTimeline(std::size_t num_dims, BwConfig bw)
    : numDims_(num_dims), bw_(std::move(bw))
{
    if (bw_.size() != numDims_)
        panic("bw rank ", bw_.size(), " != dims ", numDims_);
}

TimelineResult
ChunkTimeline::run(const std::vector<CollectiveJob>& jobs) const
{
    EventQueue eq;
    TimelineResult result;
    result.dimBusy.assign(numDims_, 0.0);

    struct PendingOp
    {
        ChunkState* chunk;
        std::size_t spanIdx;
        Seconds duration;
        bool allGather;
    };

    std::vector<std::unique_ptr<ChunkState>> chunks;
    std::vector<std::deque<PendingOp>> waiting(numDims_);
    std::vector<bool> busy(numDims_, false);
    // Estimated drain time of each dimension's queue, for greedy choice.
    std::vector<Seconds> queueEnd(numDims_, 0.0);

    auto chunkBytes = [&jobs](const ChunkState& c) {
        return jobs[c.job].size /
               static_cast<double>(jobs[c.job].numChunks);
    };

    /**
     * Bytes this chunk moves over span @p s in its *next* stage.
     *  RS       : share * fraction * (g-1)/g  (fraction = 1/q_visited)
     *  AG alone : share * (g-1) / gatherProduct
     *  A2A      : share * (g-1)/g             (order-independent)
     */
    auto stageDuration = [&](const ChunkState& c, std::size_t s) {
        const CollectiveJob& job = jobs[c.job];
        double g = static_cast<double>(job.spans[s].groupSize);
        Bytes moved = 0.0;
        switch (c.phase) {
          case Phase::ReduceScatter:
            moved = chunkBytes(c) * c.fraction * (g - 1.0) / g;
            break;
          case Phase::AllGather:
            moved = chunkBytes(c) * (g - 1.0) / c.gatherProduct;
            break;
          case Phase::AllToAll:
            if (job.type == CollectiveType::PointToPoint)
                moved = chunkBytes(c); // One full hop per chunk.
            else
                moved = chunkBytes(c) * (g - 1.0) / g;
            break;
          default:
            panic("stageDuration in phase without volume rule");
        }
        return transferTime(moved, bw_[job.spans[s].dim] *
                                       job.spans[s].efficiency);
    };

    std::function<void(ChunkState*)> advance;
    std::function<void(std::size_t)> startNext;

    auto enqueue = [&](ChunkState* c, std::size_t spanIdx,
                       Seconds duration, bool ag) {
        std::size_t dim = jobs[c->job].spans[spanIdx].dim;
        waiting[dim].push_back({c, spanIdx, duration, ag});
        queueEnd[dim] =
            std::max(queueEnd[dim], toSeconds(eq.now())) + duration;
        if (!busy[dim])
            startNext(dim);
    };

    startNext = [&](std::size_t dim) {
        if (waiting[dim].empty()) {
            busy[dim] = false;
            return;
        }
        busy[dim] = true;
        PendingOp op = waiting[dim].front();
        waiting[dim].pop_front();
        Seconds start = toSeconds(eq.now());
        Seconds end = start + op.duration;
        result.records.push_back({op.chunk->job, op.chunk->chunk, dim,
                                  op.allGather, start, end});
        result.dimBusy[dim] += op.duration;
        eq.schedule(toTicks(end), [&, dim, op]() {
            startNext(dim);
            advance(op.chunk);
        });
    };

    /** Pick the next span index position within c->remaining. */
    auto pickNext = [&](ChunkState* c) -> std::size_t {
        const CollectiveJob& job = jobs[c->job];
        if (job.policy != SchedulePolicy::Greedy || c->remaining.size() < 2)
            return 0;
        std::size_t pick = 0;
        Seconds bestEnd = 0.0;
        for (std::size_t i = 0; i < c->remaining.size(); ++i) {
            std::size_t s = c->remaining[i];
            std::size_t dim = job.spans[s].dim;
            Seconds dur = stageDuration(*c, s);
            Seconds end =
                std::max(queueEnd[dim], toSeconds(eq.now())) + dur;
            if (i == 0 || end < bestEnd) {
                bestEnd = end;
                pick = i;
            }
        }
        return pick;
    };

    advance = [&](ChunkState* c) {
        const CollectiveJob& job = jobs[c->job];
        switch (c->phase) {
          case Phase::ReduceScatter: {
            if (!c->remaining.empty()) {
                std::size_t pick = pickNext(c);
                std::size_t s = c->remaining[pick];
                c->remaining.erase(c->remaining.begin() +
                                   static_cast<long>(pick));
                Seconds dur = stageDuration(*c, s);
                c->rsStages.emplace_back(s, dur);
                c->fraction /=
                    static_cast<double>(job.spans[s].groupSize);
                enqueue(c, s, dur, false);
                return;
            }
            if (job.type == CollectiveType::AllReduce) {
                c->phase = Phase::AllGatherMirror;
                advance(c);
                return;
            }
            c->phase = Phase::Done;
            return;
          }
          case Phase::AllGatherMirror: {
            if (!c->rsStages.empty()) {
                auto [s, dur] = c->rsStages.back();
                c->rsStages.pop_back();
                enqueue(c, s, dur, true);
                return;
            }
            c->phase = Phase::Done;
            return;
          }
          case Phase::AllGather: {
            if (!c->remaining.empty()) {
                std::size_t pick = pickNext(c);
                std::size_t s = c->remaining[pick];
                c->remaining.erase(c->remaining.begin() +
                                   static_cast<long>(pick));
                Seconds dur = stageDuration(*c, s);
                c->gatherProduct /=
                    static_cast<double>(job.spans[s].groupSize);
                enqueue(c, s, dur, true);
                return;
            }
            c->phase = Phase::Done;
            return;
          }
          case Phase::AllToAll: {
            // Point-to-point hops cross only the first spanned dim.
            std::size_t stage_limit =
                job.type == CollectiveType::PointToPoint
                    ? 1
                    : job.spans.size();
            if (c->a2aNext < stage_limit) {
                std::size_t s = c->a2aNext++;
                enqueue(c, s, stageDuration(*c, s), false);
                return;
            }
            c->phase = Phase::Done;
            return;
          }
          case Phase::Done:
            return;
        }
    };

    for (std::size_t j = 0; j < jobs.size(); ++j) {
        const CollectiveJob& job = jobs[j];
        if (job.spans.empty())
            continue;
        if (job.numChunks < 1)
            fatal("job ", j, " has ", job.numChunks, " chunks");
        for (int ch = 0; ch < job.numChunks; ++ch) {
            auto state = std::make_unique<ChunkState>();
            state->job = static_cast<int>(j);
            state->chunk = ch;
            for (std::size_t s = 0; s < job.spans.size(); ++s) {
                state->remaining.push_back(s);
                state->gatherProduct *=
                    static_cast<double>(job.spans[s].groupSize);
            }
            switch (job.type) {
              case CollectiveType::AllReduce:
              case CollectiveType::ReduceScatter:
                state->phase = Phase::ReduceScatter;
                break;
              case CollectiveType::AllGather:
                state->phase = Phase::AllGather;
                // Canonical standalone AG visits dims descending.
                std::reverse(state->remaining.begin(),
                             state->remaining.end());
                break;
              case CollectiveType::AllToAll:
              case CollectiveType::PointToPoint:
                state->phase = Phase::AllToAll;
                break;
            }
            ChunkState* raw = state.get();
            chunks.push_back(std::move(state));
            eq.schedule(toTicks(job.releaseTime),
                        [&, raw]() { advance(raw); });
        }
    }

    eq.run();

    for (const auto& rec : result.records)
        result.makespan = std::max(result.makespan, rec.end);

    double sumBw = 0.0;
    double weighted = 0.0;
    for (std::size_t d = 0; d < numDims_; ++d) {
        sumBw += bw_[d];
        weighted += result.dimBusy[d] * bw_[d];
    }
    if (result.makespan > 0.0 && sumBw > 0.0)
        result.avgBwUtilization = weighted / (result.makespan * sumBw);
    return result;
}

Seconds
ChunkTimeline::collectiveTime(const CollectiveJob& job) const
{
    TimelineResult r = run({job});
    return r.makespan - job.releaseTime;
}

std::string
TimelineResult::render(std::size_t num_dims, int width) const
{
    if (makespan <= 0.0)
        return "(empty timeline)\n";
    std::vector<std::string> rows(num_dims, std::string(width, '.'));
    for (const auto& rec : records) {
        int from = static_cast<int>(rec.start / makespan * width);
        int to = static_cast<int>(rec.end / makespan * width);
        from = std::clamp(from, 0, width - 1);
        to = std::clamp(to, from + 1, width);
        char mark = rec.allGather
                        ? static_cast<char>('A' + rec.chunk % 26)
                        : static_cast<char>('1' + rec.chunk % 9);
        for (int x = from; x < to; ++x)
            rows[rec.dim][x] = mark;
    }
    std::ostringstream oss;
    for (std::size_t d = 0; d < num_dims; ++d) {
        double busyPct =
            d < dimBusy.size() ? dimBusy[d] / makespan * 100.0 : 0.0;
        oss << "Dim" << d + 1 << " |" << rows[d] << "| " << std::fixed
            << std::setprecision(1) << busyPct << "% busy\n";
    }
    return oss.str();
}

} // namespace libra
