/**
 * @file
 * Chunk-level multi-rail collective pipeline simulator (paper Fig. 9).
 *
 * Collectives split into chunks that flow through per-dimension stages:
 * Reduce-Scatter ascending then All-Gather descending for All-Reduce.
 * Each network dimension is a serial resource (one chunk-stage at a
 * time), so an under-provisioned dimension backs the pipeline up exactly
 * as in Fig. 9(a)/(b). The simulator supports two scheduling policies:
 *
 *  - FixedAscending: the canonical multi-rail order (dim 1..N for RS).
 *  - Greedy: a Themis-style scheduler [39] that picks, per chunk, the
 *    dimension with the earliest completion time for its next stage —
 *    traffic per dimension depends on the visit order (earlier stages
 *    carry bigger, less-reduced payloads), which is precisely the degree
 *    of freedom Themis exploits to rebalance load.
 *
 * Output is a full op-level timeline with per-dimension busy time and
 * the BW-weighted average network utilization (the Fig. 10 metric).
 */

#ifndef LIBRA_SIM_CHUNK_TIMELINE_HH
#define LIBRA_SIM_CHUNK_TIMELINE_HH

#include <string>
#include <vector>

#include "collective/multi_rail.hh"
#include "sim/event_queue.hh"
#include "topology/network.hh"

namespace libra {

/** Chunk scheduling policy across dimensions. */
enum class SchedulePolicy { FixedAscending, Greedy };

/** One collective injected into the timeline. */
struct CollectiveJob
{
    CollectiveType type = CollectiveType::AllReduce;
    Bytes size = 0.0;            ///< Whole-collective payload.
    std::vector<DimSpan> spans;  ///< Dimensions the group occupies.
    int numChunks = 64;          ///< Pipelining granularity (§V-B).
    Seconds releaseTime = 0.0;   ///< Injection time.
    SchedulePolicy policy = SchedulePolicy::FixedAscending;
};

/** One executed chunk-stage, for timeline rendering. */
struct TimelineRecord
{
    int job = 0;
    int chunk = 0;
    std::size_t dim = 0;
    bool allGather = false; ///< False: RS (or the only phase); true: AG.
    Seconds start = 0.0;
    Seconds end = 0.0;
};

/** Aggregate result of a timeline run. */
struct TimelineResult
{
    Seconds makespan = 0.0;          ///< Last completion time.
    std::vector<Seconds> dimBusy;    ///< Busy seconds per network dim.
    std::vector<TimelineRecord> records;

    /**
     * BW-weighted average utilization over the makespan:
     * sum_d busy_d * B_d / (makespan * sum_d B_d).
     */
    double avgBwUtilization = 0.0;

    /** ASCII rendering of the per-dimension timeline (Fig. 9 style). */
    std::string render(std::size_t num_dims, int width = 72) const;
};

/** Chunk-granularity simulator over one network's dimensions. */
class ChunkTimeline
{
  public:
    ChunkTimeline(std::size_t num_dims, BwConfig bw);

    /** Simulate all jobs to completion. */
    TimelineResult run(const std::vector<CollectiveJob>& jobs) const;

    /** Convenience: single job, returns its completion time. */
    Seconds collectiveTime(const CollectiveJob& job) const;

  private:
    std::size_t numDims_;
    BwConfig bw_;
};

} // namespace libra

#endif // LIBRA_SIM_CHUNK_TIMELINE_HH
