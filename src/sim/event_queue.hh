/**
 * @file
 * Tick-based discrete-event engine.
 *
 * Ticks are integer picoseconds so event ordering is exact and runs are
 * bit-reproducible; ties break by insertion order (FIFO), the convention
 * simulators like gem5 and ASTRA-sim follow.
 */

#ifndef LIBRA_SIM_EVENT_QUEUE_HH
#define LIBRA_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/units.hh"

namespace libra {

/** Simulation time in picoseconds. */
using Tick = std::uint64_t;

constexpr double kTicksPerSecond = 1e12;

/** Seconds -> ticks (rounded). */
Tick toTicks(Seconds s);

/** Ticks -> seconds. */
Seconds toSeconds(Tick t);

/** A chronological queue of callbacks. */
class EventQueue
{
  public:
    EventQueue() = default;

    Tick now() const { return now_; }

    /**
     * Schedule @p callback at absolute time @p when (>= now()).
     * @throws FatalError when scheduling into the past.
     */
    void schedule(Tick when, std::function<void()> callback);

    /** Schedule @p delay after now(). */
    void scheduleAfter(Tick delay, std::function<void()> callback);

    bool empty() const { return queue_.empty(); }

    /** Pop and run the next event; returns false when empty. */
    bool step();

    /** Run until the queue drains. */
    void run();

  private:
    /**
     * Heap entries carry only ordering keys plus a slot index; the
     * callbacks live in a side vector so heap sifts shuffle 24-byte
     * PODs and step() moves (never copies) the std::function out of
     * priority_queue::top()'s const reference.
     */
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        std::uint32_t slot;
    };
    struct Later
    {
        bool
        operator()(const Event& a, const Event& b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::priority_queue<Event, std::vector<Event>, Later> queue_;
    std::vector<std::function<void()>> slots_; ///< Keyed by Event::slot.
    std::vector<std::uint32_t> freeSlots_;     ///< Recyclable slots.
};

} // namespace libra

#endif // LIBRA_SIM_EVENT_QUEUE_HH
