#include "study/checkpoint.hh"

#include <fcntl.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace libra {

namespace {

constexpr const char* kHeader = "libra-checkpoint-v1";

/** Parse one 16-hex manifest line; nullopt for anything else. */
bool
parseHashLine(const std::string& line, std::uint64_t* out)
{
    if (line.size() != 16)
        return false;
    std::uint64_t value = 0;
    for (char c : line) {
        int digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (c >= 'a' && c <= 'f')
            digit = c - 'a' + 10;
        else
            return false;
        value = (value << 4) | static_cast<std::uint64_t>(digit);
    }
    *out = value;
    return true;
}

std::string
hashLine(std::uint64_t hash)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%016llx\n",
                  static_cast<unsigned long long>(hash));
    return buf;
}

} // namespace

CheckpointLog::CheckpointLog(const std::string& path) : path_(path)
{
    bool existed = false;
    {
        std::ifstream in(path_);
        if (in.is_open()) {
            existed = true;
            std::string line;
            bool first = true;
            while (std::getline(in, line)) {
                if (!line.empty() && line.back() == '\r')
                    line.pop_back();
                if (first) {
                    first = false;
                    if (line != kHeader)
                        fatal("checkpoint: '", path_,
                              "' is not a libra checkpoint manifest "
                              "(header '", line, "')");
                    continue;
                }
                std::uint64_t hash;
                if (!parseHashLine(line, &hash)) {
                    // A torn tail is the expected shape of a kill -9
                    // mid-append; everything before it is intact.
                    warn("checkpoint: skipping malformed line in '",
                         path_, "'");
                    continue;
                }
                if (done_.insert(hash).second)
                    ++resumed_;
            }
            // An empty existing file (e.g. `touch`ed) is treated as a
            // fresh manifest: nothing recorded, header written below.
            if (first)
                existed = false;
        }
    }

    fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd_ < 0)
        fatal("checkpoint: cannot open '", path_,
              "': ", std::strerror(errno));
    if (!existed) {
        std::string header = std::string(kHeader) + "\n";
        if (::write(fd_, header.data(), header.size()) !=
                static_cast<ssize_t>(header.size()) ||
            ::fsync(fd_) != 0) {
            int err = errno;
            ::close(fd_);
            fd_ = -1;
            fatal("checkpoint: cannot write header to '", path_,
                  "': ", std::strerror(err));
        }
    }
}

CheckpointLog::~CheckpointLog()
{
    if (fd_ >= 0)
        ::close(fd_);
}

bool
CheckpointLog::contains(std::uint64_t hash) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return done_.count(hash) != 0;
}

void
CheckpointLog::append(std::uint64_t hash)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!done_.insert(hash).second)
        return;
    if (fd_ < 0)
        return;
    const std::string line = hashLine(hash);
    if (::write(fd_, line.data(), line.size()) !=
            static_cast<ssize_t>(line.size()) ||
        ::fsync(fd_) != 0) {
        // Losing the manifest loses resumability, never results; warn
        // once and stop writing (every later append would fail too).
        warn("checkpoint: write to '", path_, "' failed (",
             std::strerror(errno), "); resumability degraded");
        ::close(fd_);
        fd_ = -1;
    }
}

} // namespace libra
