#include "study/cache.hh"

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/logging.hh"
#include "core/timing_backend.hh"
#include "explore/explore.hh"
#include "solver/strategy.hh"

namespace libra {

// Field encoding comes from common/json.hh (appendCanonicalNumber /
// appendCanonicalString) so it cannot diverge from the workload and
// cost-model canonical serializations.

bool
studyPointCacheable(const LibraInputs& inputs)
{
    return !inputs.config.estimator.commTimeFn;
}

std::string
canonicalStudyKey(const LibraInputs& inputs)
{
    if (!studyPointCacheable(inputs))
        fatal("study points with a custom commTimeFn have no canonical "
              "content and cannot be cached");

    std::string out;
    out.reserve(512);
    out += "libra-study-v";
    out += std::to_string(kStudyCacheVersion);
    out += ' ';
    // Parse-and-rename canonicalizes cosmetic shape differences.
    appendCanonicalString(out, Network::parse(inputs.networkShape).name());

    const OptimizerConfig& cfg = inputs.config;
    out += "obj";
    out += std::to_string(static_cast<int>(cfg.objective));
    out += ' ';
    appendCanonicalNumber(out, cfg.totalBw);
    appendCanonicalNumber(out, cfg.minDimBw);
    appendCanonicalNumber(out, cfg.budgetCap);
    out += cfg.relaxTotalBw ? "relax " : "pin ";
    out += std::to_string(cfg.constraints.size());
    out += "constraints ";
    for (const auto& c : cfg.constraints)
        appendCanonicalString(out, c);

    out += "loop";
    out += std::to_string(static_cast<int>(cfg.estimator.loop));
    out += cfg.estimator.inNetworkCollectives ? " innet " : " swdis ";
    out += cfg.estimator.modelPartialDimEfficiency ? "eff " : "blind ";

    out += "search(";
    out += std::to_string(cfg.search.starts);
    out += ',';
    out += std::to_string(cfg.search.seed);
    out += ',';
    out += cfg.search.useSubgradient ? '1' : '0';
    out += ',';
    out += cfg.search.useNelderMead ? '1' : '0';
    out += ") ";
    // The solver pipeline and eval budget are appended only when
    // non-default so every pre-existing cache key (and the golden
    // figures pinned against version 1) stays byte-identical.
    if (!cfg.search.pipeline.empty()) {
        out += "solver(";
        out += solverSpecToString(cfg.search.pipeline);
        out += ") ";
    }
    if (cfg.search.maxEvalsPerStart != 0) {
        out += "evals(";
        out += std::to_string(cfg.search.maxEvalsPerStart);
        out += ") ";
    }
    // Likewise the timing backend: folded only when non-default, so
    // every analytical cache key stays byte-identical and no
    // kStudyCacheVersion bump is needed. The backend's cacheKeyTag
    // (name + semantic parameters, e.g. "chunk-sim/64") is the
    // content, so parameter changes invalidate stale entries.
    if (timingBackendOrDefault(cfg.estimator.timingBackend) !=
        kAnalyticalTimingBackendName) {
        out += "timing(";
        out += resolveTimingBackend(cfg.estimator.timingBackend)
                   ->cacheKeyTag();
        out += ") ";
    }
    // And the exploration strategy, same only-when-non-default rule:
    // the canonical spec (name + non-default parameters) is the tag,
    // so prune-screened candidates can never be served to (or poison)
    // an exhaustive run, while default keys stay byte-identical.
    {
        std::string tag = canonicalExploreSpec(inputs.explore);
        if (!tag.empty()) {
            out += "explore(";
            out += tag;
            out += ") ";
        }
    }
    // search.parallel and inputs.threads are deliberately excluded:
    // results are bit-identical at any thread count (see docs/PERF.md).

    // Workload and cost-model content text comes from the single
    // canonical serialization next to each struct, shared with the
    // deep-equality helpers — new fields only need adding there.
    appendCanonicalText(out, inputs.costModel);

    out += inputs.normalizeTargetWeights ? "norm " : "raw ";
    out += std::to_string(inputs.targets.size());
    out += "targets ";
    for (const auto& t : inputs.targets) {
        appendCanonicalNumber(out, t.weight);
        appendCanonicalText(out, t.workload);
    }
    return out;
}

std::uint64_t
studyCacheHashOfKey(const std::string& canonical)
{
    std::uint64_t h = 0xcbf29ce484222325ull; // FNV-1a offset basis.
    for (unsigned char c : canonical) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

std::uint64_t
studyCacheHash(const LibraInputs& inputs)
{
    return studyCacheHashOfKey(canonicalStudyKey(inputs));
}

namespace {

Json
resultToJson(const OptimizationResult& r)
{
    Json j = Json::object();
    Json bw = Json::array();
    for (double b : r.bw)
        bw.push(b);
    j["bw"] = std::move(bw);
    j["weightedTime"] = r.weightedTime;
    j["cost"] = r.cost;
    j["objectiveValue"] = r.objectiveValue;
    Json per = Json::array();
    for (double t : r.perWorkloadTime)
        per.push(t);
    j["perWorkloadTime"] = std::move(per);
    return j;
}

OptimizationResult
resultFromJson(const Json& j)
{
    OptimizationResult r;
    for (const Json& b : j.at("bw").items())
        r.bw.push_back(b.asNumber());
    r.weightedTime = j.at("weightedTime").asNumber();
    r.cost = j.at("cost").asNumber();
    r.objectiveValue = j.at("objectiveValue").asNumber();
    for (const Json& t : j.at("perWorkloadTime").items())
        r.perWorkloadTime.push_back(t.asNumber());
    return r;
}

} // namespace

Json
reportToJson(const LibraReport& report)
{
    Json j = Json::object();
    j["optimized"] = resultToJson(report.optimized);
    j["equalBw"] = resultToJson(report.equalBw);
    j["speedup"] = report.speedup;
    j["perfPerCostGain"] = report.perfPerCostGain;
    return j;
}

LibraReport
reportFromJson(const Json& json)
{
    LibraReport report;
    report.optimized = resultFromJson(json.at("optimized"));
    report.equalBw = resultFromJson(json.at("equalBw"));
    report.speedup = json.at("speedup").asNumber();
    report.perfPerCostGain = json.at("perfPerCostGain").asNumber();
    return report;
}

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir))
{
    if (dir_.empty())
        fatal("result cache needs a directory");
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec)
        fatal("cannot create cache directory '", dir_, "': ",
              ec.message());
}

std::string
ResultCache::path(std::uint64_t key) const
{
    char name[32];
    std::snprintf(name, sizeof(name), "%016llx.json",
                  static_cast<unsigned long long>(key));
    return dir_ + "/" + name;
}

bool
ResultCache::load(std::uint64_t key, const std::string& canonical,
                  LibraReport* out) const
{
    std::ifstream file(path(key));
    if (!file)
        return false;
    std::ostringstream text;
    text << file.rdbuf();
    try {
        Json j = Json::parse(text.str());
        if (j.at("version").asNumber() !=
            static_cast<double>(kStudyCacheVersion)) {
            return false; // Entry from another engine version.
        }
        if (j.at("inputs").asString() != canonical) {
            // 64-bit hash collision between distinct inputs: treat as
            // a miss (the colliding entry stays; last writer wins).
            warn("cache key collision on ", path(key),
                 "; recomputing the point");
            return false;
        }
        *out = reportFromJson(j.at("report"));
        return true;
    } catch (const FatalError& e) {
        warn("ignoring corrupt cache entry ", path(key), ": ", e.what());
        return false;
    }
}

void
ResultCache::store(std::uint64_t key, const std::string& canonical,
                   const LibraReport& report) const
{
    Json j = Json::object();
    j["version"] = static_cast<double>(kStudyCacheVersion);
    j["inputs"] = canonical;
    j["report"] = reportToJson(report);

    // Write-then-rename so concurrent runs never observe a torn file;
    // the tmp name is per-process so two runs storing the same key
    // cannot interleave writes into one tmp file.
    // The cache may only ever amortize work, never break a run: a
    // read-only or full cache directory degrades to a warning and the
    // batch simply recomputes the point next time.
    const std::string finalPath = path(key);
    const std::string tmpPath =
        finalPath + ".tmp." + std::to_string(::getpid());
    {
        std::ofstream file(tmpPath);
        if (!file) {
            warn("cannot write cache entry '", tmpPath,
                 "'; continuing without the cache");
            return;
        }
        file << j.dump(1) << "\n";
        file.flush();
        if (!file) {
            warn("cannot write cache entry '", tmpPath,
                 "'; continuing without the cache");
            std::error_code ec;
            std::filesystem::remove(tmpPath, ec);
            return;
        }
    }
    std::error_code ec;
    std::filesystem::rename(tmpPath, finalPath, ec);
    if (ec) {
        warn("cannot publish cache entry '", finalPath, "': ",
             ec.message(), "; continuing without the cache");
        std::filesystem::remove(tmpPath, ec);
    }
}

} // namespace libra
