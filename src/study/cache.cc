#include "study/cache.hh"

#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "common/fault.hh"
#include "common/logging.hh"
#include "core/timing_backend.hh"
#include "explore/explore.hh"
#include "solver/strategy.hh"

namespace libra {

void
StudyStore::awaitCompute(const std::string& canonical,
                         PointStatus* status, LibraReport* report)
{
    (void)status;
    (void)report;
    // A plain store never answers Shared, so a wait here means the
    // sweep and the store implementation disagree about the protocol.
    panic("awaitCompute on a store that never shares claims (key ",
          canonical.substr(0, 32), "...)");
}

// Field encoding comes from common/json.hh (appendCanonicalNumber /
// appendCanonicalString) so it cannot diverge from the workload and
// cost-model canonical serializations.

bool
studyPointCacheable(const LibraInputs& inputs)
{
    return !inputs.config.estimator.commTimeFn;
}

std::string
canonicalStudyKey(const LibraInputs& inputs)
{
    if (!studyPointCacheable(inputs))
        fatal("study points with a custom commTimeFn have no canonical "
              "content and cannot be cached");

    std::string out;
    out.reserve(512);
    out += "libra-study-v";
    out += std::to_string(kStudyCacheVersion);
    out += ' ';
    // Parse-and-rename canonicalizes cosmetic shape differences.
    appendCanonicalString(out, Network::parse(inputs.networkShape).name());

    const OptimizerConfig& cfg = inputs.config;
    out += "obj";
    out += std::to_string(static_cast<int>(cfg.objective));
    out += ' ';
    appendCanonicalNumber(out, cfg.totalBw);
    appendCanonicalNumber(out, cfg.minDimBw);
    appendCanonicalNumber(out, cfg.budgetCap);
    out += cfg.relaxTotalBw ? "relax " : "pin ";
    out += std::to_string(cfg.constraints.size());
    out += "constraints ";
    for (const auto& c : cfg.constraints)
        appendCanonicalString(out, c);

    out += "loop";
    out += std::to_string(static_cast<int>(cfg.estimator.loop));
    out += cfg.estimator.inNetworkCollectives ? " innet " : " swdis ";
    out += cfg.estimator.modelPartialDimEfficiency ? "eff " : "blind ";

    out += "search(";
    out += std::to_string(cfg.search.starts);
    out += ',';
    out += std::to_string(cfg.search.seed);
    out += ',';
    out += cfg.search.useSubgradient ? '1' : '0';
    out += ',';
    out += cfg.search.useNelderMead ? '1' : '0';
    out += ") ";
    // The solver pipeline and eval budget are appended only when
    // non-default so every pre-existing cache key (and the golden
    // figures pinned against version 1) stays byte-identical.
    if (!cfg.search.pipeline.empty()) {
        out += "solver(";
        out += solverSpecToString(cfg.search.pipeline);
        out += ") ";
    }
    if (cfg.search.maxEvalsPerStart != 0) {
        out += "evals(";
        out += std::to_string(cfg.search.maxEvalsPerStart);
        out += ") ";
    }
    // Likewise the timing backend: folded only when non-default, so
    // every analytical cache key stays byte-identical and no
    // kStudyCacheVersion bump is needed. The backend's cacheKeyTag
    // (name + semantic parameters, e.g. "chunk-sim/64") is the
    // content, so parameter changes invalidate stale entries.
    if (timingBackendOrDefault(cfg.estimator.timingBackend) !=
        kAnalyticalTimingBackendName) {
        out += "timing(";
        out += resolveTimingBackend(cfg.estimator.timingBackend)
                   ->cacheKeyTag();
        out += ") ";
    }
    // And the exploration strategy, same only-when-non-default rule:
    // the canonical spec (name + non-default parameters) is the tag,
    // so prune-screened candidates can never be served to (or poison)
    // an exhaustive run, while default keys stay byte-identical.
    {
        std::string tag = canonicalExploreSpec(inputs.explore);
        if (!tag.empty()) {
            out += "explore(";
            out += tag;
            out += ") ";
        }
    }
    // search.parallel and inputs.threads are deliberately excluded:
    // results are bit-identical at any thread count (see docs/PERF.md).

    // Workload and cost-model content text comes from the single
    // canonical serialization next to each struct, shared with the
    // deep-equality helpers — new fields only need adding there.
    appendCanonicalText(out, inputs.costModel);

    out += inputs.normalizeTargetWeights ? "norm " : "raw ";
    out += std::to_string(inputs.targets.size());
    out += "targets ";
    for (const auto& t : inputs.targets) {
        appendCanonicalNumber(out, t.weight);
        appendCanonicalText(out, t.workload);
    }
    return out;
}

std::uint64_t
studyCacheHashOfKey(const std::string& canonical)
{
    std::uint64_t h = 0xcbf29ce484222325ull; // FNV-1a offset basis.
    for (unsigned char c : canonical) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

std::uint64_t
studyCacheHash(const LibraInputs& inputs)
{
    return studyCacheHashOfKey(canonicalStudyKey(inputs));
}

namespace {

Json
resultToJson(const OptimizationResult& r)
{
    Json j = Json::object();
    Json bw = Json::array();
    for (double b : r.bw)
        bw.push(b);
    j["bw"] = std::move(bw);
    j["weightedTime"] = r.weightedTime;
    j["cost"] = r.cost;
    j["objectiveValue"] = r.objectiveValue;
    Json per = Json::array();
    for (double t : r.perWorkloadTime)
        per.push(t);
    j["perWorkloadTime"] = std::move(per);
    return j;
}

OptimizationResult
resultFromJson(const Json& j)
{
    OptimizationResult r;
    for (const Json& b : j.at("bw").items())
        r.bw.push_back(b.asNumber());
    r.weightedTime = j.at("weightedTime").asNumber();
    r.cost = j.at("cost").asNumber();
    r.objectiveValue = j.at("objectiveValue").asNumber();
    for (const Json& t : j.at("perWorkloadTime").items())
        r.perWorkloadTime.push_back(t.asNumber());
    return r;
}

} // namespace

Json
reportToJson(const LibraReport& report)
{
    Json j = Json::object();
    j["optimized"] = resultToJson(report.optimized);
    j["equalBw"] = resultToJson(report.equalBw);
    j["speedup"] = report.speedup;
    j["perfPerCostGain"] = report.perfPerCostGain;
    return j;
}

LibraReport
reportFromJson(const Json& json)
{
    LibraReport report;
    report.optimized = resultFromJson(json.at("optimized"));
    report.equalBw = resultFromJson(json.at("equalBw"));
    report.speedup = json.at("speedup").asNumber();
    report.perfPerCostGain = json.at("perfPerCostGain").asNumber();
    return report;
}

namespace {

/** Hex form of the FNV-1a checksum stored in the entry envelope. */
std::string
checksumHex(const std::string& text)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(
                      studyCacheHashOfKey(text)));
    return buf;
}

/**
 * Bounded retry with backoff for a best-effort filesystem operation.
 * Each attempt first consults the fault injector (salted per attempt,
 * so an injected transient fault can be absorbed by the retries), then
 * runs @p op. Sleeps 1 ms / 4 ms between the three attempts — long
 * enough to ride out transient EAGAIN-class conditions, short enough
 * to be invisible next to an optimize() call.
 */
template <typename Op>
bool
retryIo(FaultSite site, std::uint64_t key, const Op& op)
{
    constexpr int kAttempts = 3;
    for (int attempt = 0; attempt < kAttempts; ++attempt) {
        if (attempt > 0) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1 << (2 * (attempt - 1))));
        }
        if (injectFault(site, faultRetryKey(key, attempt)))
            continue; // Simulated transient failure of this attempt.
        if (op())
            return true;
    }
    return false;
}

/**
 * True when the `.tmp.<pid>[.<seq>]` suffix of @p name belongs to a
 * process that no longer exists (or never parsed at all) — a tmp file
 * leaked by a crashed run, safe to reap. The optional `.<seq>` part is
 * the per-writer counter concurrent stores append so two threads of
 * one process can never share a tmp file; ownership is still decided
 * by the pid alone.
 */
bool
tmpFileIsStale(const std::string& name)
{
    const std::string marker = ".tmp.";
    std::size_t at = name.rfind(marker);
    if (at == std::string::npos)
        return false; // Not a tmp file.
    std::string pidText = name.substr(at + marker.size());
    char* end = nullptr;
    long pid = std::strtol(pidText.c_str(), &end, 10);
    if (end == pidText.c_str() || pid <= 0)
        return true; // Garbage suffix: nothing owns it.
    if (*end == '.') {
        // Per-writer sequence suffix: must be a nonempty digit run.
        const char* seq = end + 1;
        char* seqEnd = nullptr;
        std::strtol(seq, &seqEnd, 10);
        if (seqEnd == seq || *seqEnd != '\0')
            return true; // Garbage sequence: nothing owns it.
    } else if (*end != '\0') {
        return true; // Garbage after the pid: nothing owns it.
    }
    // Signal 0 probes existence. EPERM means the pid exists but is not
    // ours — leave its tmp file alone.
    return ::kill(static_cast<pid_t>(pid), 0) != 0 && errno == ESRCH;
}

} // namespace

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir))
{
    if (dir_.empty())
        fatal("result cache needs a directory");
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec || injectFault(FaultSite::CacheOpen,
                          studyCacheHashOfKey(dir_))) {
        warn("cannot create cache directory '", dir_, "'",
             ec ? ": " + ec.message() : std::string(),
             "; continuing without the cache");
        enabled_ = false;
        return;
    }
    reapStaleTmp();
}

void
ResultCache::reapStaleTmp()
{
    // Crashed runs leak `.tmp.<pid>` files forever (the rename that
    // would consume them never happened). Reap any whose owning
    // process is gone; a live process's in-flight tmp file is kept.
    std::error_code ec;
    std::filesystem::directory_iterator it(dir_, ec);
    if (ec)
        return;
    for (const auto& entry : it) {
        std::error_code fileEc;
        if (!entry.is_regular_file(fileEc) || fileEc)
            continue;
        std::string name = entry.path().filename().string();
        if (!tmpFileIsStale(name))
            continue;
        std::filesystem::remove(entry.path(), fileEc);
        if (!fileEc) {
            reapedTmp_.fetch_add(1, std::memory_order_relaxed);
            inform("reaped stale cache tmp file ", name);
        }
    }
}

ResultCache::Stats
ResultCache::stats() const
{
    Stats s;
    s.reapedTmp = reapedTmp_.load(std::memory_order_relaxed);
    s.quarantined = quarantined_.load(std::memory_order_relaxed);
    s.loadFailures = loadFailures_.load(std::memory_order_relaxed);
    s.storeFailures = storeFailures_.load(std::memory_order_relaxed);
    s.collisions = collisions_.load(std::memory_order_relaxed);
    return s;
}

std::string
ResultCache::path(std::uint64_t key) const
{
    char name[32];
    std::snprintf(name, sizeof(name), "%016llx.json",
                  static_cast<unsigned long long>(key));
    return dir_ + "/" + name;
}

void
ResultCache::quarantine(const std::string& file,
                        const std::string& why)
{
    // Move the damaged entry aside instead of deleting it: the
    // `.corrupt` file is diagnostic evidence, and the rename frees the
    // key so the recomputed result can be stored cleanly.
    quarantined_.fetch_add(1, std::memory_order_relaxed);
    warn("quarantining cache entry ", file, " (", why,
         "); recomputing the point");
    std::error_code ec;
    std::filesystem::rename(file, file + ".corrupt", ec);
    if (ec) {
        std::filesystem::remove(file, ec);
        if (ec)
            warn("cannot quarantine or remove ", file, ": ",
                 ec.message());
    }
}

bool
ResultCache::load(std::uint64_t key, const std::string& canonical,
                  LibraReport* out)
{
    if (!enabled_)
        return false;
    // Serialize same-key I/O against concurrent stores of this
    // process: a reader can then never observe the quarantine-and-
    // recompute window of a writer it races with.
    std::lock_guard<std::mutex> lock(shard(key));
    const std::string file = path(key);
    if (injectFault(FaultSite::CacheLoadRead, key)) {
        loadFailures_.fetch_add(1, std::memory_order_relaxed);
        warn("cannot read cache entry ", file,
             " (injected fault); recomputing the point");
        return false;
    }
    std::ifstream in(file);
    if (!in) {
        std::error_code ec;
        if (!std::filesystem::exists(file, ec))
            return false; // Clean miss: never cached.
        loadFailures_.fetch_add(1, std::memory_order_relaxed);
        warn("cannot read cache entry ", file,
             "; recomputing the point");
        return false;
    }
    std::ostringstream text;
    text << in.rdbuf();
    if (in.bad()) {
        loadFailures_.fetch_add(1, std::memory_order_relaxed);
        warn("read error on cache entry ", file,
             "; recomputing the point");
        return false;
    }
    try {
        Json j = Json::parse(text.str());
        const Json& body = j.at("body");
        if (j.at("fnv").asString() != checksumHex(body.dump(1))) {
            quarantine(file, "checksum mismatch");
            return false;
        }
        if (body.at("version").asNumber() !=
            static_cast<double>(kStudyCacheVersion)) {
            quarantine(file, "engine version skew");
            return false;
        }
        if (body.at("inputs").asString() != canonical) {
            // 64-bit hash collision between distinct inputs: treat as
            // a miss (the colliding entry stays; last writer wins).
            collisions_.fetch_add(1, std::memory_order_relaxed);
            warn("cache key collision on ", file,
                 "; recomputing the point");
            return false;
        }
        *out = reportFromJson(body.at("report"));
        return true;
    } catch (const FatalError& e) {
        // Truncated, non-JSON, or structurally wrong (including
        // pre-envelope legacy entries): quarantine and recompute.
        quarantine(file, e.what());
        return false;
    }
}

bool
ResultCache::store(std::uint64_t key, const std::string& canonical,
                   const LibraReport& report)
{
    if (!enabled_)
        return false;

    Json body = Json::object();
    body["version"] = static_cast<double>(kStudyCacheVersion);
    body["inputs"] = canonical;
    body["report"] = reportToJson(report);
    std::string bodyText = body.dump(1);

    Json j = Json::object();
    j["fnv"] = checksumHex(bodyText);
    j["body"] = std::move(body);
    const std::string payload = j.dump(1) + "\n";

    // Write-then-rename so concurrent runs never observe a torn file;
    // the tmp name is per-writer — pid for cross-process uniqueness
    // plus a process-wide store sequence for cross-thread uniqueness —
    // so two stores of the same key can never interleave writes into
    // one tmp file (tmpFileIsStale understands the extended suffix).
    // The cache may only ever amortize work, never break a run: a
    // read-only or full cache directory degrades to a warning and the
    // batch simply recomputes the point next time.
    static std::atomic<std::uint64_t> storeSeq{0};
    const std::string finalPath = path(key);
    const std::string tmpPath =
        finalPath + ".tmp." + std::to_string(::getpid()) + "." +
        std::to_string(storeSeq.fetch_add(1, std::memory_order_relaxed));

    std::lock_guard<std::mutex> lock(shard(key));
    bool ok = retryIo(FaultSite::CacheStoreWrite, key, [&] {
        std::ofstream file(tmpPath);
        if (!file)
            return false;
        file << payload;
        file.flush();
        return static_cast<bool>(file);
    });
    if (ok) {
        ok = retryIo(FaultSite::CacheStoreRename, key, [&] {
            std::error_code ec;
            std::filesystem::rename(tmpPath, finalPath, ec);
            return !ec;
        });
    }
    if (!ok) {
        storeFailures_.fetch_add(1, std::memory_order_relaxed);
        warn("cannot store cache entry '", finalPath,
             "'; continuing without the cache");
        std::error_code ec;
        std::filesystem::remove(tmpPath, ec);
        return false;
    }
    return true;
}

} // namespace libra
