/**
 * @file
 * Scenario-matrix runner: execute any subset of registered scenarios as
 * one batched, cached, sharded study.
 *
 * The runner concatenates every selected scenario's design points,
 * deduplicates them by content hash (figures that share design points —
 * e.g. Fig. 13 and Fig. 14 plot the same grid — are optimized once),
 * serves previously seen points from the ResultCache, and runs the
 * remaining unique points as a single runLibraSweep batch on the global
 * thread pool. Each scenario then formats its aligned report slice.
 *
 * Determinism: runLibraSweep results are bit-identical at any thread
 * count, report JSON round-trips bit-exactly through the cache, and all
 * emission is insertion-ordered — so a matrix run emits byte-identical
 * JSON whether its points were computed or loaded from cache.
 *
 * Fault tolerance (docs/ROBUSTNESS.md): under FailMode::Isolate a
 * design point whose evaluation throws FatalError becomes a recorded
 * PointFailure on its scenario instead of unwinding the run; scenarios
 * without failures emit byte-identical output to an all-ok run.
 */

#ifndef LIBRA_STUDY_MATRIX_HH
#define LIBRA_STUDY_MATRIX_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "common/json.hh"
#include "study/cache.hh"
#include "study/scenario.hh"

namespace libra {

/**
 * What a design point's FatalError does to the rest of a matrix run.
 * Abort preserves the classic unwind (the lowest-index failing point's
 * error, deterministically); Isolate records the failure per scenario
 * and keeps every other scenario's rows byte-identical to an all-ok
 * run. See docs/ROBUSTNESS.md.
 */
enum class FailMode
{
    Abort,
    Isolate,
};

/** Matrix runner options. */
struct MatrixOptions
{
    /** Cache directory; empty disables the result cache. */
    std::string cacheDir;

    /**
     * Externally owned study store used instead of opening @ref
     * cacheDir — the serve subsystem passes its shared LRU + single-
     * flight + disk layering here so every concurrent request runs
     * against one store (src/serve/, docs/SERVE.md). Null keeps the
     * classic behavior (a per-run ResultCache when cacheDir is set).
     */
    StudyStore* store = nullptr;

    /** Store freshly computed points back into the cache. */
    bool updateCache = true;

    /**
     * Solver-pipeline override (registry names) applied to every
     * design point before dedup/caching — the `--solver` flag. Empty
     * keeps each point's own pipeline (the scenario default).
     */
    std::vector<std::string> solverPipeline;

    /**
     * Timing-backend override (registry name) applied to every design
     * point before dedup/caching — the `--backend` flag, for re-running
     * whole matrices under simulation. Empty keeps each point's own
     * backend (the scenario default, usually analytical).
     */
    std::string timingBackend;

    /**
     * Exploration-strategy override (an `EXPLORE` spec, e.g.
     * "prune,keep=0.25") applied to every design-space scenario in the
     * run — the `--explore` flag. Empty keeps each scenario's own
     * default. Scenarios without a design space are unaffected (there
     * is no outer loop to search).
     */
    std::string exploreSpec;

    /** Failure handling for design-point evaluation (see FailMode). */
    FailMode failMode = FailMode::Abort;

    /**
     * Shard owned computation across this many forked worker
     * processes — the `--workers` flag (docs/SHARDING.md). 0 or 1
     * keeps the classic in-process sweep. The pool is warm: workers
     * fork and handshake once per run, serve the shared batch by slot
     * index, and serve adaptive (non-default EXPLORE) rounds as
     * serialized wire points (eval frames). Results merge by index
     * through the content-addressed cache, so emitted bytes are
     * identical at any worker count. Points without a study-file wire
     * form (custom commTimeFn, non-zoo workloads) stay in-process.
     */
    std::size_t workers = 0;

    /**
     * Executable exec'd as `<workerExe> worker` for sharded runs
     * (normally libra_cli itself). Required when workers > 1.
     */
    std::string workerExe;

    /** Threads per worker; 0 = hardware concurrency / workers. */
    int workerThreads = 0;

    /**
     * Checkpoint manifest path — the `--checkpoint` flag. Every
     * completed slot's content hash is appended (fsynced) after its
     * report reaches the cache, so a killed run resumes without
     * recomputing finished slots. Requires a cache (store or
     * cacheDir); "" disables checkpointing.
     */
    std::string checkpointPath;

    /**
     * In-process sub-batch size when a checkpoint is armed — the
     * `--checkpoint-chunk` flag. Completed slots must reach the cache
     * + manifest incrementally, not after the whole batch, or a kill
     * loses everything; smaller chunks checkpoint (and fsync) more
     * often, larger ones batch better. Chunking cannot change results
     * — evaluation is a pure function of each point. Must be >= 1.
     */
    std::size_t checkpointChunk = 8;
};

/** One failed design point inside a scenario (FailMode::Isolate). */
struct PointFailure
{
    std::size_t index = 0; ///< Point index within the scenario.
    std::string label;     ///< Human handle (network shape, or phase).
    std::string error;     ///< FatalError message, prefix stripped.
};

/** One executed scenario with its provenance counters. */
struct ScenarioRun
{
    std::string name;
    std::string title;
    ScenarioOutput output;
    std::size_t points = 0;     ///< Design points this scenario built.
    std::size_t fromCache = 0;  ///< Points served from the cache.

    /**
     * Failed points (FailMode::Isolate only; always empty under
     * Abort). A scenario with failures emits no rows/summary — a
     * partial table would silently misalign figure columns — only
     * this list.
     */
    std::vector<PointFailure> failures;
};

/** Result of one matrix execution. */
struct MatrixResult
{
    std::vector<ScenarioRun> scenarios;
    std::size_t points = 0;    ///< Total points across scenarios.
    std::size_t unique = 0;    ///< Distinct points after dedup.
    std::size_t fromCache = 0; ///< Points served from the cache.
    std::size_t computed = 0;  ///< Points this run optimized itself.
    std::size_t coalesced = 0; ///< Points awaited from another run's
                               ///< in-flight computation (serve mode).
    std::size_t failed = 0;    ///< Failed points (Isolate mode).
};

/**
 * Run @p names (registry keys) under @p options.
 * @throws FatalError on an unknown scenario name.
 */
MatrixResult runScenarioMatrix(const std::vector<std::string>& names,
                               const MatrixOptions& options = {});

/**
 * Build the matrix's phase-1 shared batch: every selected scenario's
 * design points (exhaustive design spaces expanded through the explore
 * layer) with @p options' solver/backend/explore overrides applied, in
 * scenario order. Deterministic — shard workers call this with the
 * master's recipe to rebuild the identical point list, so the master
 * only ever ships slot indices (src/study/shard.hh).
 * @throws FatalError on an unknown scenario name or invalid override.
 */
std::vector<LibraInputs>
buildMatrixSharedBatch(const std::vector<std::string>& names,
                       const MatrixOptions& options);

/**
 * Stable JSON form of a matrix result. Contains only run-independent
 * content (no cache counters or timings), so two runs of the same
 * matrix — cached or not — dump byte-identical text.
 */
Json matrixToJson(const MatrixResult& result);

/** JSON form of one scenario run (the golden-file payload). */
Json scenarioRunToJson(const ScenarioRun& run);

/** Emit matrixToJson with a trailing newline. */
void emitMatrixJson(const MatrixResult& result, std::ostream& os);

/**
 * CSV emission: one row per scenario row; header is the union of the
 * scenario's label and metric keys, prefixed by the scenario name.
 * Summary metrics follow as `summary` rows.
 */
void emitMatrixCsv(const MatrixResult& result, std::ostream& os);

/**
 * Paper-style human rendering of one scenario run: banner, aligned
 * table (label columns then metric columns), summary lines, notes.
 * Used by the ported bench binaries and libra_cli's default output.
 */
void printScenarioRun(const ScenarioRun& run, std::ostream& os);

/** printScenarioRun over every scenario, plus cache statistics. */
void printMatrixHuman(const MatrixResult& result, std::ostream& os);

} // namespace libra

#endif // LIBRA_STUDY_MATRIX_HH
