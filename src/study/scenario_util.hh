/**
 * @file
 * Shared helpers for scenario definitions: the point factory, label
 * formatting, and the per-figure network/workload lists.
 *
 * These used to live as near-identical clones inside the anonymous
 * namespace of scenarios.cc (and, for the BW sweep, bench_util.hh).
 * One definition here keeps scenario builders, design-space
 * declarations, formatters, tests, and benches from drifting apart —
 * the fig16 candidate grid and the fig16 golden rows are provably the
 * same list because both come from fig16Nets().
 */

#ifndef LIBRA_STUDY_SCENARIO_UTIL_HH
#define LIBRA_STUDY_SCENARIO_UTIL_HH

#include <string>
#include <utility>
#include <vector>

#include "common/table.hh"
#include "study/scenario.hh"
#include "topology/zoo.hh"
#include "workload/zoo.hh"

namespace libra {

/** One design point on @p net with the harness search settings. */
inline LibraInputs
makeStudyPoint(const Network& net, std::vector<TargetWorkload> targets,
               OptimizationObjective objective, double total_bw)
{
    LibraInputs p;
    p.networkShape = net.name();
    p.targets = std::move(targets);
    p.config.objective = objective;
    p.config.totalBw = total_bw;
    p.config.search = paperSearchOptions();
    return p;
}

/** Integer-formatted BW label ("250"), the row-identity convention. */
inline std::string
bwLabel(double bw)
{
    return Table::num(bw, 0);
}

/** The Fig. 10 networks — shared by build() and format(). */
inline std::vector<topo::NamedNetwork>
fig10Nets()
{
    return {{"2D", topo::twoD4K()},
            {"3D", topo::threeD4K()},
            {"4D", topo::fourD4K()}};
}

/** The Fig. 16 topologies — the shape/scale exploration axis. */
inline std::vector<topo::NamedNetwork>
fig16Nets()
{
    return {{"3D-512", topo::threeD512()},
            {"3D-1K", topo::threeD1K()},
            {"4D-2K", topo::fourD2K()}};
}

/** The two Fig. 17 ensembles at @p npus; (a) LLMs, (b) a DNN mixture. */
inline std::vector<std::vector<Workload>>
fig17Studies(long npus)
{
    return {{wl::turingNlg(npus), wl::gpt3(npus), wl::msft1T(npus)},
            {wl::msft1T(npus), wl::dlrm(npus), wl::resnet50(npus)}};
}

/** The Fig. 21 tensor-parallel degrees (DP fills the rest). */
inline const std::vector<long>&
fig21TpDegrees()
{
    static const std::vector<long> degrees{8, 16, 32, 64, 128, 256};
    return degrees;
}

/**
 * Append a provenance note when a non-exhaustive strategy pruned part
 * of the space: rows built from screened outcomes reflect
 * screening-budget results, not full-budget optimizations, and paper
 * claim checks should not be read off them. Under the exhaustive
 * default this appends nothing, keeping the output byte-identical.
 */
inline void
noteScreenedOutcomes(ScenarioOutput& out, const ExploreResult& r)
{
    std::size_t screened = 0;
    for (const auto& o : r.outcomes)
        screened += o.fullBudget ? 0 : 1;
    if (screened == 0)
        return;
    out.notes.push_back(
        "NOTE: " + std::to_string(screened) + " of " +
        std::to_string(r.outcomes.size()) +
        " candidates were pruned after a screening pass; rows built "
        "from them carry screening-budget results, not full-budget "
        "optimizations (run with the exhaustive strategy for the "
        "paper figures).");
}

} // namespace libra

#endif // LIBRA_STUDY_SCENARIO_UTIL_HH
