#include "study/matrix.hh"

#include <cstdio>
#include <iterator>
#include <optional>
#include <ostream>
#include <unordered_map>

#include "common/logging.hh"
#include "common/table.hh"
#include "core/timing_backend.hh"
#include "solver/strategy.hh"
#include "study/cache.hh"

namespace libra {

MatrixResult
runScenarioMatrix(const std::vector<std::string>& names,
                  const MatrixOptions& options)
{
    const ScenarioRegistry& registry = ScenarioRegistry::global();

    std::vector<const Scenario*> scenarios;
    scenarios.reserve(names.size());
    for (const auto& name : names) {
        const Scenario* s = registry.find(name);
        if (!s) {
            std::string known;
            for (const auto& n : registry.names())
                known += known.empty() ? n : (", " + n);
            fatal("unknown scenario '", name, "' (known: ", known, ")");
        }
        scenarios.push_back(s);
    }

    // Phase 1: build every scenario's design points into one batch.
    struct Slice
    {
        std::size_t begin = 0;
        std::size_t count = 0;
    };
    std::vector<LibraInputs> points;
    std::vector<Slice> slices;
    slices.reserve(scenarios.size());
    for (const Scenario* s : scenarios) {
        Slice slice;
        slice.begin = points.size();
        if (s->build) {
            std::vector<LibraInputs> built = s->build();
            slice.count = built.size();
            for (auto& p : built)
                points.push_back(std::move(p));
        }
        slices.push_back(slice);
    }

    // A solver or timing-backend override rewrites every point before
    // dedup/caching, so the cache keys (and therefore the stored
    // reports) are those of the overridden configuration.
    if (!options.solverPipeline.empty()) {
        resolveStrategyPipeline(options.solverPipeline); // Validate.
        for (auto& p : points)
            p.config.search.pipeline = options.solverPipeline;
    }
    if (!options.timingBackend.empty()) {
        resolveTimingBackend(options.timingBackend); // Validate.
        for (auto& p : points)
            p.config.estimator.timingBackend = options.timingBackend;
    }

    // Phase 2: deduplicate by content. Scenarios plotting the same
    // grid (fig13/fig14) collapse onto one optimization per point.
    // Identity is the full canonical key text — the hash only names
    // the cache file — so a 64-bit collision cannot merge distinct
    // points. Points with a custom commTimeFn get a private slot (no
    // content identity) and never touch the cache.
    std::vector<std::size_t> slotOf(points.size());
    std::vector<std::string> slotKey; // Canonical text; "" = private.
    std::vector<std::size_t> slotRep; // Slot -> representative point.
    std::unordered_map<std::string, std::size_t> slotByKey;
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (!studyPointCacheable(points[i])) {
            slotOf[i] = slotRep.size();
            slotKey.emplace_back();
            slotRep.push_back(i);
            continue;
        }
        std::string key = canonicalStudyKey(points[i]);
        auto [it, inserted] =
            slotByKey.try_emplace(std::move(key), slotRep.size());
        if (inserted) {
            slotKey.push_back(it->first);
            slotRep.push_back(i);
        }
        slotOf[i] = it->second;
    }

    // Phase 3: serve slots from the cache where possible.
    std::optional<ResultCache> cache;
    if (!options.cacheDir.empty())
        cache.emplace(options.cacheDir);

    const std::size_t slots = slotRep.size();
    std::vector<LibraReport> slotReport(slots);
    std::vector<bool> slotCached(slots, false);
    std::vector<std::size_t> missing;
    for (std::size_t s = 0; s < slots; ++s) {
        if (cache && !slotKey[s].empty() &&
            cache->load(studyCacheHashOfKey(slotKey[s]), slotKey[s],
                        &slotReport[s])) {
            slotCached[s] = true;
        } else {
            missing.push_back(s);
        }
    }

    // Phase 4: one sharded sweep over every missing unique point.
    std::vector<LibraInputs> batch;
    batch.reserve(missing.size());
    for (std::size_t s : missing)
        batch.push_back(points[slotRep[s]]);
    std::vector<LibraReport> computed = runLibraSweep(batch);
    for (std::size_t k = 0; k < missing.size(); ++k) {
        std::size_t s = missing[k];
        slotReport[s] = std::move(computed[k]);
        if (cache && options.updateCache && !slotKey[s].empty()) {
            cache->store(studyCacheHashOfKey(slotKey[s]), slotKey[s],
                         slotReport[s]);
        }
    }

    // Phase 5: hand every scenario its aligned report slice.
    MatrixResult result;
    result.points = points.size();
    result.unique = slots;
    result.computed = missing.size();
    // Cache hits are counted in point terms (what the user asked for).
    for (std::size_t i = 0; i < points.size(); ++i)
        result.fromCache += slotCached[slotOf[i]] ? 1 : 0;

    for (std::size_t si = 0; si < scenarios.size(); ++si) {
        const Slice& slice = slices[si];
        // Slices partition `points` and nothing reads a point after
        // its scenario is formatted, so move the workload IR out
        // instead of deep-copying it.
        auto begin =
            points.begin() + static_cast<std::ptrdiff_t>(slice.begin);
        std::vector<LibraInputs> slicePoints(
            std::make_move_iterator(begin),
            std::make_move_iterator(
                begin + static_cast<std::ptrdiff_t>(slice.count)));
        std::vector<LibraReport> sliceReports;
        sliceReports.reserve(slice.count);
        ScenarioRun run;
        run.name = scenarios[si]->name;
        run.title = scenarios[si]->title;
        run.points = slice.count;
        for (std::size_t i = 0; i < slice.count; ++i) {
            std::size_t slot = slotOf[slice.begin + i];
            sliceReports.push_back(slotReport[slot]);
            run.fromCache += slotCached[slot] ? 1 : 0;
        }
        run.output = scenarios[si]->format(slicePoints, sliceReports);
        result.scenarios.push_back(std::move(run));
    }
    return result;
}

namespace {

Json
pairsToJson(const std::vector<std::pair<std::string, double>>& pairs)
{
    Json j = Json::object();
    for (const auto& [k, v] : pairs)
        j[k] = v;
    return j;
}

} // namespace

Json
scenarioRunToJson(const ScenarioRun& run)
{
    Json j = Json::object();
    j["name"] = run.name;
    j["title"] = run.title;
    Json rows = Json::array();
    for (const ScenarioRow& row : run.output.rows) {
        Json r = Json::object();
        Json labels = Json::object();
        for (const auto& [k, v] : row.labels)
            labels[k] = v;
        r["labels"] = std::move(labels);
        r["metrics"] = pairsToJson(row.metrics);
        rows.push(std::move(r));
    }
    j["rows"] = std::move(rows);
    j["summary"] = pairsToJson(run.output.summary);
    Json notes = Json::array();
    for (const auto& note : run.output.notes)
        notes.push(note);
    j["notes"] = std::move(notes);
    return j;
}

Json
matrixToJson(const MatrixResult& result)
{
    Json j = Json::object();
    j["schema"] = "libra-study-matrix-v1";
    j["engineVersion"] = static_cast<double>(kStudyCacheVersion);
    Json scenarios = Json::array();
    for (const ScenarioRun& run : result.scenarios)
        scenarios.push(scenarioRunToJson(run));
    j["scenarios"] = std::move(scenarios);
    return j;
}

void
emitMatrixJson(const MatrixResult& result, std::ostream& os)
{
    os << matrixToJson(result).dump(1) << "\n";
}

namespace {

std::string
csvEscape(const std::string& s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

/** Union of row keys in first-seen order. */
template <typename Value>
std::vector<std::string>
keyUnion(const std::vector<ScenarioRow>& rows,
         std::vector<std::pair<std::string, Value>> ScenarioRow::*field)
{
    std::vector<std::string> keys;
    for (const ScenarioRow& row : rows) {
        for (const auto& [k, v] : row.*field) {
            bool seen = false;
            for (const auto& existing : keys)
                seen |= existing == k;
            if (!seen)
                keys.push_back(k);
        }
    }
    return keys;
}

template <typename Value>
const Value*
findKey(const std::vector<std::pair<std::string, Value>>& pairs,
        const std::string& key)
{
    for (const auto& [k, v] : pairs) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

/** Compact human form: fixed notation for a sane column width. */
std::string
formatMetric(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4g", v);
    return buf;
}

} // namespace

void
printScenarioRun(const ScenarioRun& run, std::ostream& os)
{
    os << "\n############################################\n"
       << "# " << run.name << ": " << run.title << "\n"
       << "############################################\n";

    if (!run.output.rows.empty()) {
        auto labelKeys = keyUnion(run.output.rows, &ScenarioRow::labels);
        auto metricKeys =
            keyUnion(run.output.rows, &ScenarioRow::metrics);
        Table t;
        std::vector<std::string> header = labelKeys;
        header.insert(header.end(), metricKeys.begin(),
                      metricKeys.end());
        t.header(header);
        for (const ScenarioRow& row : run.output.rows) {
            std::vector<std::string> cells;
            for (const auto& k : labelKeys) {
                const std::string* v = findKey(row.labels, k);
                cells.push_back(v ? *v : "-");
            }
            for (const auto& k : metricKeys) {
                const double* v = findKey(row.metrics, k);
                cells.push_back(v ? formatMetric(*v) : "-");
            }
            t.row(cells);
        }
        t.print(os);
    }
    for (const auto& [k, v] : run.output.summary)
        os << k << " = " << formatMetric(v) << "\n";
    for (const auto& note : run.output.notes)
        os << "\n" << note << "\n";
}

void
printMatrixHuman(const MatrixResult& result, std::ostream& os)
{
    for (const ScenarioRun& run : result.scenarios)
        printScenarioRun(run, os);
    os << "\nmatrix: " << result.scenarios.size() << " scenarios, "
       << result.points << " design points (" << result.unique
       << " unique, " << result.fromCache << " from cache, "
       << result.computed << " computed)\n";
}

void
emitMatrixCsv(const MatrixResult& result, std::ostream& os)
{
    bool first = true;
    for (const ScenarioRun& run : result.scenarios) {
        if (!first)
            os << "\n";
        first = false;

        auto labelKeys = keyUnion(run.output.rows, &ScenarioRow::labels);
        auto metricKeys =
            keyUnion(run.output.rows, &ScenarioRow::metrics);

        os << "scenario,kind";
        for (const auto& k : labelKeys)
            os << ',' << csvEscape(k);
        for (const auto& k : metricKeys)
            os << ',' << csvEscape(k);
        os << "\n";

        for (const ScenarioRow& row : run.output.rows) {
            os << csvEscape(run.name) << ",row";
            for (const auto& k : labelKeys) {
                const std::string* v = findKey(row.labels, k);
                os << ',' << (v ? csvEscape(*v) : "");
            }
            for (const auto& k : metricKeys) {
                const double* v = findKey(row.metrics, k);
                os << ',' << (v ? jsonNumberToString(*v) : "");
            }
            os << "\n";
        }
        for (const auto& [k, v] : run.output.summary) {
            os << csvEscape(run.name) << ",summary," << csvEscape(k)
               << ',' << jsonNumberToString(v) << "\n";
        }
    }
}

} // namespace libra
