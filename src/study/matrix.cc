#include "study/matrix.hh"

#include <cstdio>
#include <iterator>
#include <optional>
#include <ostream>
#include <unordered_map>
#include <unordered_set>

#include "common/fault.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "core/study_config.hh"
#include "core/timing_backend.hh"
#include "explore/explore.hh"
#include "solver/strategy.hh"
#include "study/cache.hh"
#include "study/checkpoint.hh"
#include "study/shard.hh"

namespace libra {

namespace {

/** Per-point outcome of one deduped, cache-aware sweep. */
struct SweepBatch
{
    std::vector<LibraReport> reports; ///< Aligned with the input points.
    std::vector<bool> fromCache;      ///< Per point: served from cache.
    std::vector<PointStatus> status;  ///< Per point: ok or failed.
    std::size_t unique = 0;           ///< Distinct points after dedup.
    std::size_t computed = 0;         ///< Points this sweep optimized.
    std::size_t coalesced = 0;        ///< Points awaited from another
                                      ///< sweep's in-flight claim.
    std::size_t failed = 0;           ///< Points whose evaluation failed.
};

/**
 * The warm worker pool for one run-matrix invocation. Workers are
 * forked and handshaken at most once — on the first sweep with work to
 * dispatch — then reused by the shared batch and every adaptive
 * explore round, paying fork/exec/handshake once per run instead of
 * once per round (docs/SHARDING.md). The handshake expectation is the
 * *shared-batch* slot map (what workers rebuild from the recipe),
 * recorded by the phase-2 sweep before any dispatch.
 */
struct ShardRuntime
{
    ShardOptions options;
    std::size_t expectedSlots = 0;
    std::string expectedFingerprint;
    std::optional<ShardPool> pool;

    ShardPool& ensurePool()
    {
        if (!pool)
            pool.emplace(options, expectedSlots, expectedFingerprint);
        return *pool;
    }

    void shutdown()
    {
        if (pool)
            pool->shutdown();
    }
};

/**
 * Execution add-ons for one cached sweep: a warm shard pool evaluates
 * the owned batch in worker processes (by slot index for the shared
 * batch, by serialized wire point for adaptive rounds), and a
 * checkpoint log records completed slots durably.
 */
struct SweepContext
{
    ShardRuntime* shard = nullptr; ///< Null = in-process only.
    bool shardByRecipe = false;    ///< Ship recipe slot indices
                                   ///< (the phase-2 shared batch).
    CheckpointLog* checkpoint = nullptr;
    std::size_t checkpointChunk = 8;
};

/**
 * Deduplicate @p points by content, serve what the store already has,
 * and run the rest as one runLibraSweep batch. Shared by the static
 * scenario batch and every round of an adaptive exploration, so both
 * paths get identical dedup/caching semantics.
 *
 * Identity is the full canonical key text — the hash only names the
 * cache file — so a 64-bit collision cannot merge distinct points.
 * Points with a custom commTimeFn get a private slot (no content
 * identity) and never touch the store.
 *
 * Concurrency: missed keys are claimed through the store's single-
 * flight seam (StudyStore::claimCompute). Owned keys are computed here
 * and *published before any await*, so two sweeps waiting on each
 * other's claims can never deadlock; Shared keys block on the owner's
 * published result, which — evaluation being deterministic — is
 * bit-identical to recomputing. A plain ResultCache grants every
 * claim, collapsing this to the classic single-process flow.
 *
 * Failure semantics: points run through runLibraSweepIsolated, and
 * the `point-eval` fault-injection site fires here, keyed by each
 * cacheable slot's content hash — a pure function of the point, so
 * fault assignment is identical at any thread count and unaffected by
 * dedup order (private slots get no injection: they have no content
 * key). Under Isolate the per-point statuses come back in the batch;
 * under Abort the lowest-index failing point's error unwinds,
 * deterministically. Failed slots are never stored to the cache, but
 * their status is still published so waiters observe the same failure.
 *
 * Sharded execution (ctx.shard) changes only *where* owned slots are
 * evaluated, never what: fault injection runs here before dispatch,
 * results merge by slot index as they arrive (store + publish +
 * checkpoint per slot), and the final assembly below is index-ordered
 * — so emitted bytes are identical at any worker count.
 */
SweepBatch
cachedSweep(const std::vector<LibraInputs>& points, StudyStore* store,
            bool update_cache, FailMode failMode,
            const SweepContext& ctx = {})
{
    SlotMap map = buildSlotMap(points);
    const std::vector<std::size_t>& slotOf = map.slotOf;
    const std::vector<std::string>& slotKey = map.slotKey;
    const std::vector<std::size_t>& slotRep = map.slotRep;

    const std::size_t slots = slotRep.size();
    std::vector<LibraReport> slotReport(slots);
    std::vector<PointStatus> slotStatus(slots);
    std::vector<bool> slotCached(slots, false);
    std::vector<std::size_t> missing;
    for (std::size_t s = 0; s < slots; ++s) {
        if (store && !slotKey[s].empty() &&
            store->load(studyCacheHashOfKey(slotKey[s]), slotKey[s],
                        &slotReport[s])) {
            slotCached[s] = true;
        } else {
            missing.push_back(s);
        }
    }

    // A checkpointed slot is promised to be cache-servable (manifest
    // entries are appended only after the store). Missing one means
    // the cache was wiped or degraded underneath the manifest — a
    // recompute costs work, never correctness.
    if (ctx.checkpoint) {
        std::size_t lost = 0;
        for (std::size_t s : missing) {
            if (!slotKey[s].empty() &&
                ctx.checkpoint->contains(
                    studyCacheHashOfKey(slotKey[s])))
                ++lost;
        }
        if (lost > 0)
            warn("checkpoint: ", lost, " recorded slots missing from "
                 "the cache; recomputing them");
    }

    // Claim phase: ask the store who computes each missed key. Keys
    // another sweep is already computing are awaited *after* our own
    // batch publishes (publish-before-await keeps this deadlock-free).
    std::vector<std::size_t> owned;
    std::vector<std::size_t> awaited;
    for (std::size_t s : missing) {
        if (!store || slotKey[s].empty()) {
            owned.push_back(s);
            continue;
        }
        switch (store->claimCompute(slotKey[s], &slotStatus[s],
                                    &slotReport[s])) {
          case StudyStore::Claim::Cached:
            slotCached[s] = true;
            break;
          case StudyStore::Claim::Shared:
            awaited.push_back(s);
            break;
          case StudyStore::Claim::Owned:
            owned.push_back(s);
            break;
        }
    }

    // Compute phase: one sharded sweep over every owned point.
    // Injected point-eval faults replace the evaluation (keyed by
    // content, so the same points fail fresh or cached, at any thread
    // count); their failure is published like any other outcome.
    std::vector<LibraInputs> batch;
    std::vector<std::size_t> batchSlot;
    batch.reserve(owned.size());
    for (std::size_t s : owned) {
        if (!slotKey[s].empty() &&
            injectFault(FaultSite::PointEval,
                        studyCacheHashOfKey(slotKey[s]))) {
            slotStatus[s].ok = false;
            slotStatus[s].error = "injected point-eval fault";
            if (store)
                store->publishCompute(slotKey[s], slotStatus[s],
                                      slotReport[s]);
            continue;
        }
        batch.push_back(points[slotRep[s]]);
        batchSlot.push_back(s);
    }
    // Per-batch-slot completion flags: sharded results arrive in
    // completion order, not index order, so a plain counter cannot
    // tell resolved slots from abandoned ones in the unwind below.
    std::vector<char> done(batchSlot.size(), 0);
    auto finishSlot = [&](std::size_t k, PointStatus status,
                          LibraReport report) {
        const std::size_t s = batchSlot[k];
        slotStatus[s] = std::move(status);
        if (slotStatus[s].ok) {
            slotReport[s] = std::move(report);
            if (store && update_cache && !slotKey[s].empty()) {
                const std::uint64_t hash =
                    studyCacheHashOfKey(slotKey[s]);
                store->store(hash, slotKey[s], slotReport[s]);
                // Store first, then record: manifest ⊆ cache, so a
                // recorded slot is always servable on resume.
                if (ctx.checkpoint)
                    ctx.checkpoint->append(hash);
            }
        }
        if (store && !slotKey[s].empty())
            store->publishCompute(slotKey[s], slotStatus[s],
                                  slotReport[s]);
        done[k] = 1;
    };
    try {
        if (ctx.shard && ctx.shardByRecipe) {
            // The shared batch defines the handshake: workers rebuild
            // exactly this slot map from the recipe. Record it even
            // when everything was cached — a later adaptive round may
            // be the first to actually need the pool.
            ctx.shard->expectedSlots = map.slots();
            ctx.shard->expectedFingerprint = slotMapFingerprint(map);
        }
        if (ctx.shard && ctx.shardByRecipe && !batchSlot.empty()) {
            // Sharded shared batch: ship slot indices to worker
            // processes; merge each result as it lands. Workers
            // rebuild the identical point list, so `batch` itself
            // never crosses the wire.
            std::unordered_map<std::size_t, std::size_t> batchIndex;
            batchIndex.reserve(batchSlot.size());
            for (std::size_t k = 0; k < batchSlot.size(); ++k)
                batchIndex.emplace(batchSlot[k], k);
            ctx.shard->ensurePool().evaluate(
                batchSlot,
                [&](std::size_t slot, PointStatus status,
                    LibraReport report) {
                    auto it = batchIndex.find(slot);
                    if (it == batchIndex.end())
                        fatal("shard: result for undispatched slot ",
                              slot);
                    finishSlot(it->second, std::move(status),
                               std::move(report));
                });
        } else if (ctx.shard && !batchSlot.empty()) {
            // Sharded adaptive round: no recipe describes these
            // points, so each ships as its studyConfigToString wire
            // form (an eval frame). The rare point without a wire
            // form — custom commTimeFn, non-zoo workload — stays
            // in-process; both legs merge through finishSlot, so
            // store/publish/checkpoint semantics are identical.
            std::vector<WirePoint> wire;
            std::vector<std::size_t> local;
            for (std::size_t k = 0; k < batchSlot.size(); ++k) {
                if (studyConfigSerializable(batch[k])) {
                    WirePoint wp;
                    wp.index = k;
                    wp.text = studyConfigToString(batch[k]);
                    wp.key = pointWireKey(batch[k]);
                    wire.push_back(std::move(wp));
                } else {
                    local.push_back(k);
                }
            }
            if (!wire.empty()) {
                ctx.shard->ensurePool().evaluatePoints(
                    wire,
                    [&](std::size_t k, PointStatus status,
                        LibraReport report) {
                        if (k >= batchSlot.size())
                            fatal("shard: eval result for unknown "
                                  "item ", k);
                        finishSlot(k, std::move(status),
                                   std::move(report));
                    });
            }
            if (!local.empty()) {
                const std::size_t chunkSize =
                    ctx.checkpoint ? ctx.checkpointChunk
                                   : local.size();
                for (std::size_t base = 0; base < local.size();
                     base += chunkSize) {
                    const std::size_t count =
                        std::min(chunkSize, local.size() - base);
                    std::vector<LibraInputs> chunk;
                    chunk.reserve(count);
                    for (std::size_t j = 0; j < count; ++j)
                        chunk.push_back(batch[local[base + j]]);
                    SweepOutcome computed =
                        runLibraSweepIsolated(chunk);
                    for (std::size_t j = 0; j < count; ++j)
                        finishSlot(local[base + j],
                                   std::move(computed.status[j]),
                                   std::move(computed.reports[j]));
                }
            }
        } else if (ctx.checkpoint &&
                   batchSlot.size() > ctx.checkpointChunk) {
            // Checkpointed in-process run: compute in chunks so
            // progress reaches the cache + manifest as it happens.
            // Sub-batching cannot change results — evaluation is a
            // pure function of each point (the property the
            // content-addressed cache already relies on).
            for (std::size_t base = 0; base < batchSlot.size();
                 base += ctx.checkpointChunk) {
                const std::size_t count = std::min(
                    ctx.checkpointChunk, batchSlot.size() - base);
                std::vector<LibraInputs> chunk(
                    batch.begin() +
                        static_cast<std::ptrdiff_t>(base),
                    batch.begin() +
                        static_cast<std::ptrdiff_t>(base + count));
                SweepOutcome computed = runLibraSweepIsolated(chunk);
                for (std::size_t j = 0; j < count; ++j)
                    finishSlot(base + j,
                               std::move(computed.status[j]),
                               std::move(computed.reports[j]));
            }
        } else {
            SweepOutcome computed = runLibraSweepIsolated(batch);
            for (std::size_t k = 0; k < batchSlot.size(); ++k)
                finishSlot(k, std::move(computed.status[k]),
                           std::move(computed.reports[k]));
        }
    } catch (...) {
        // An internal error is unwinding this sweep. Every owned claim
        // must still be resolved exactly once or waiters in other
        // sweeps would block forever on our abandoned slots; then our
        // own Shared claims are drained (their owners are guaranteed
        // to publish — this very rule — and we publish before waiting,
        // so the drain cannot deadlock) so no slot stays pinned by a
        // waiter that never showed up.
        if (store) {
            for (std::size_t k = 0; k < batchSlot.size(); ++k) {
                if (done[k])
                    continue;
                std::size_t s = batchSlot[k];
                if (slotKey[s].empty())
                    continue;
                PointStatus abandoned;
                abandoned.ok = false;
                abandoned.error = "owning computation aborted";
                store->publishCompute(slotKey[s], abandoned,
                                      slotReport[s]);
            }
            for (std::size_t s : awaited)
                store->awaitCompute(slotKey[s], &slotStatus[s],
                                    &slotReport[s]);
        }
        throw;
    }

    // Await phase: collect the results other sweeps computed.
    for (std::size_t s : awaited)
        store->awaitCompute(slotKey[s], &slotStatus[s],
                            &slotReport[s]);

    if (failMode == FailMode::Abort) {
        // Re-raise the classic unwind: the lowest-index failing
        // *point* (not slot) wins, deterministically.
        for (std::size_t i = 0; i < points.size(); ++i) {
            if (!slotStatus[slotOf[i]].ok)
                fatal(slotStatus[slotOf[i]].error);
        }
    }

    SweepBatch out;
    out.unique = slots;
    out.computed = owned.size();
    out.coalesced = awaited.size();
    out.reports.reserve(points.size());
    out.fromCache.reserve(points.size());
    out.status.reserve(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        out.reports.push_back(slotReport[slotOf[i]]);
        out.fromCache.push_back(slotCached[slotOf[i]]);
        out.status.push_back(slotStatus[slotOf[i]]);
        out.failed += slotStatus[slotOf[i]].ok ? 0 : 1;
    }
    return out;
}

/** One scenario's span of the shared batch (or its adaptive spec). */
struct Slice
{
    std::size_t begin = 0;
    std::size_t count = 0;
    std::vector<Candidate> candidates; ///< Space scenarios only.
    std::string exploreSpec; ///< Non-default strategy; "" = batch.
};

/** Resolved scenarios + the phase-1 shared batch and its slices. */
struct MatrixPlan
{
    std::vector<const Scenario*> scenarios;
    std::vector<LibraInputs> points;
    std::vector<Slice> slices;
};

/**
 * Phase 1: resolve @p names, validate overrides, and build every
 * scenario's design points into one batch. Fully deterministic — the
 * property shard workers rely on to rebuild the master's batch from
 * nothing but the (names, options) recipe.
 *
 * Design-space scenarios expand through the explore layer: under the
 * exhaustive default their candidates join the shared batch
 * (bit-identical to a hand-built point list in the same order); a
 * non-default strategy runs adaptively in phase 3, through the same
 * cache-aware sweep.
 */
MatrixPlan
buildMatrixPlan(const std::vector<std::string>& names,
                const MatrixOptions& options)
{
    const ScenarioRegistry& registry = ScenarioRegistry::global();

    MatrixPlan plan;
    plan.scenarios.reserve(names.size());
    for (const auto& name : names) {
        const Scenario* s = registry.find(name);
        if (!s) {
            std::string known;
            for (const auto& n : registry.names())
                known += known.empty() ? n : (", " + n);
            fatal("unknown scenario '", name, "' (known: ", known, ")");
        }
        plan.scenarios.push_back(s);
    }

    // Validate overrides once, up front.
    if (!options.solverPipeline.empty())
        resolveStrategyPipeline(options.solverPipeline);
    if (!options.timingBackend.empty())
        resolveTimingBackend(options.timingBackend);
    const std::string exploreOverride =
        canonicalExploreSpec(options.exploreSpec);

    // A solver or timing-backend override rewrites every point before
    // dedup/caching, so the cache keys (and therefore the stored
    // reports) are those of the overridden configuration.
    auto applyOverrides = [&](LibraInputs& p) {
        if (!options.solverPipeline.empty())
            p.config.search.pipeline = options.solverPipeline;
        if (!options.timingBackend.empty())
            p.config.estimator.timingBackend = options.timingBackend;
    };

    plan.slices.reserve(plan.scenarios.size());
    for (const Scenario* s : plan.scenarios) {
        Slice slice;
        slice.begin = plan.points.size();
        if (s->space) {
            slice.candidates = expandDesignSpace(s->space());
            std::string spec = canonicalExploreSpec(
                !options.exploreSpec.empty() ? exploreOverride
                                             : s->explore);
            for (auto& c : slice.candidates) {
                applyOverrides(c.inputs);
                // Stamp a non-default strategy onto every candidate:
                // screened results must never share cache slots with
                // exhaustive ones (see canonicalStudyKey).
                c.inputs.explore = spec;
            }
            if (spec.empty()) {
                slice.count = slice.candidates.size();
                for (const auto& c : slice.candidates)
                    plan.points.push_back(c.inputs);
            } else {
                slice.exploreSpec = std::move(spec);
            }
        } else if (s->build) {
            std::vector<LibraInputs> built = s->build();
            slice.count = built.size();
            for (auto& p : built) {
                applyOverrides(p);
                plan.points.push_back(std::move(p));
            }
        }
        plan.slices.push_back(std::move(slice));
    }
    return plan;
}

} // namespace

std::vector<LibraInputs>
buildMatrixSharedBatch(const std::vector<std::string>& names,
                       const MatrixOptions& options)
{
    return std::move(buildMatrixPlan(names, options).points);
}

MatrixResult
runScenarioMatrix(const std::vector<std::string>& names,
                  const MatrixOptions& options)
{
    MatrixPlan plan = buildMatrixPlan(names, options);
    std::vector<const Scenario*>& scenarios = plan.scenarios;
    std::vector<LibraInputs>& points = plan.points;
    std::vector<Slice>& slices = plan.slices;

    // An externally owned store (serve mode's shared LRU + single-
    // flight + disk layering) wins over a per-run disk cache.
    std::optional<ResultCache> localCache;
    StudyStore* store = options.store;
    if (!store && !options.cacheDir.empty()) {
        localCache.emplace(options.cacheDir);
        store = &*localCache;
    }

    // A checkpoint without a cache could record completions it can
    // never serve back — reject the combination outright.
    std::optional<CheckpointLog> checkpoint;
    if (!options.checkpointPath.empty()) {
        if (!store)
            fatal("--checkpoint requires a result cache "
                  "(--cache-dir): resume serves recorded slots from "
                  "the cache");
        checkpoint.emplace(options.checkpointPath);
        if (checkpoint->resumedSlots() > 0)
            inform("checkpoint: resuming from '",
                   options.checkpointPath, "' (",
                   checkpoint->resumedSlots(), " slots recorded)");
    }

    ShardRuntime shardRuntime;
    const bool sharded = options.workers > 1;
    if (sharded) {
        if (options.workerExe.empty())
            fatal("sharded execution (--workers > 1) needs the worker "
                  "executable path");
        shardRuntime.options.workers = options.workers;
        shardRuntime.options.workerExe = options.workerExe;
        shardRuntime.options.workerThreads = options.workerThreads;
        shardRuntime.options.scenarios = names;
        shardRuntime.options.solverPipeline = options.solverPipeline;
        shardRuntime.options.timingBackend = options.timingBackend;
        shardRuntime.options.exploreSpec = options.exploreSpec;
    }
    if (options.checkpointChunk == 0)
        fatal("checkpoint chunk size must be >= 1");
    SweepContext mainCtx;
    mainCtx.shard = sharded ? &shardRuntime : nullptr;
    mainCtx.shardByRecipe = true;
    mainCtx.checkpoint = checkpoint ? &*checkpoint : nullptr;
    mainCtx.checkpointChunk = options.checkpointChunk;

    // Phase 2: the shared batch — dedup, cache, one sharded sweep.
    SweepBatch main =
        cachedSweep(points, store, options.updateCache,
                    options.failMode, mainCtx);

    MatrixResult result;
    result.points = points.size();
    result.unique = main.unique;
    result.computed = main.computed;
    result.coalesced = main.coalesced;
    result.failed = main.failed;
    // Cache hits are counted in point terms (what the user asked for).
    for (bool hit : main.fromCache)
        result.fromCache += hit ? 1 : 0;

    // Phase 3: hand every scenario its aligned reports and format.
    for (std::size_t si = 0; si < scenarios.size(); ++si) {
        Slice& slice = slices[si];
        ScenarioRun run;
        run.name = scenarios[si]->name;
        run.title = scenarios[si]->title;

        if (!slice.exploreSpec.empty()) {
            // Adaptive exploration: every optimization batch the
            // strategy requests goes through the same cache-aware
            // sweep; counters aggregate per evaluated point. An
            // adaptive strategy's later rounds depend on earlier
            // results, so isolation is per *scenario* here: any
            // failing point aborts this exploration (deterministic
            // lowest-index error), and under Isolate that error is
            // recorded instead of unwinding the matrix.
            // Adaptive rounds reuse the warm worker pool: batches the
            // recipe cannot describe ship as serialized wire points
            // (eval frames), and completed slots still checkpoint
            // mid-round.
            SweepContext adaptiveCtx = mainCtx;
            adaptiveCtx.shardByRecipe = false;
            ExploreSweepFn sweep =
                [&, adaptiveCtx](const std::vector<LibraInputs>& batch) {
                    SweepBatch b =
                        cachedSweep(batch, store, options.updateCache,
                                    FailMode::Abort, adaptiveCtx);
                    run.points += batch.size();
                    result.points += batch.size();
                    result.unique += b.unique;
                    result.computed += b.computed;
                    result.coalesced += b.coalesced;
                    for (bool hit : b.fromCache) {
                        run.fromCache += hit ? 1 : 0;
                        result.fromCache += hit ? 1 : 0;
                    }
                    return std::move(b.reports);
                };
            if (options.failMode == FailMode::Isolate) {
                try {
                    ExploreResult explored = exploreCandidates(
                        slice.candidates, slice.exploreSpec, sweep);
                    run.output = scenarios[si]->formatSpace(explored);
                } catch (const FatalError& e) {
                    std::string msg = e.what();
                    const std::string prefix = "fatal: ";
                    if (msg.rfind(prefix, 0) == 0)
                        msg.erase(0, prefix.size());
                    run.output = ScenarioOutput{};
                    run.failures.push_back(PointFailure{
                        0, "explore:" + slice.exploreSpec,
                        std::move(msg)});
                    result.failed += 1;
                }
            } else {
                ExploreResult explored = exploreCandidates(
                    slice.candidates, slice.exploreSpec, sweep);
                run.output = scenarios[si]->formatSpace(explored);
            }
        } else {
            // The scenario's candidates/points ran inside the shared
            // batch; reassemble their aligned reports.
            std::vector<LibraReport> sliceReports(
                main.reports.begin() +
                    static_cast<std::ptrdiff_t>(slice.begin),
                main.reports.begin() +
                    static_cast<std::ptrdiff_t>(slice.begin +
                                                slice.count));
            run.points = slice.count;
            for (std::size_t i = 0; i < slice.count; ++i)
                run.fromCache +=
                    main.fromCache[slice.begin + i] ? 1 : 0;
            // Isolation granularity is the scenario's output: any
            // failed point suppresses the formatter (a partial table
            // would silently misalign figure columns) and surfaces as
            // PointFailures; other scenarios are untouched.
            for (std::size_t i = 0; i < slice.count; ++i) {
                const PointStatus& st = main.status[slice.begin + i];
                if (st.ok)
                    continue;
                run.failures.push_back(PointFailure{
                    i, points[slice.begin + i].networkShape,
                    st.error});
            }
            if (!run.failures.empty()) {
                run.output = ScenarioOutput{};
            } else if (scenarios[si]->space) {
                // Exhaustive design space.
                run.output = scenarios[si]->formatSpace(
                    exhaustiveResultFromReports(
                        std::move(slice.candidates), sliceReports));
            } else {
                // Classic scenario. Slices partition `points` and
                // nothing reads a point after its scenario is
                // formatted, so move the workload IR out instead of
                // deep-copying it.
                auto begin = points.begin() +
                             static_cast<std::ptrdiff_t>(slice.begin);
                std::vector<LibraInputs> slicePoints(
                    std::make_move_iterator(begin),
                    std::make_move_iterator(
                        begin +
                        static_cast<std::ptrdiff_t>(slice.count)));
                run.output =
                    scenarios[si]->format(slicePoints, sliceReports);
            }
        }
        result.scenarios.push_back(std::move(run));
    }
    shardRuntime.shutdown();
    return result;
}

namespace {

Json
pairsToJson(const std::vector<std::pair<std::string, double>>& pairs)
{
    Json j = Json::object();
    for (const auto& [k, v] : pairs)
        j[k] = v;
    return j;
}

} // namespace

Json
scenarioRunToJson(const ScenarioRun& run)
{
    Json j = Json::object();
    j["name"] = run.name;
    j["title"] = run.title;
    Json rows = Json::array();
    for (const ScenarioRow& row : run.output.rows) {
        Json r = Json::object();
        Json labels = Json::object();
        for (const auto& [k, v] : row.labels)
            labels[k] = v;
        r["labels"] = std::move(labels);
        r["metrics"] = pairsToJson(row.metrics);
        rows.push(std::move(r));
    }
    j["rows"] = std::move(rows);
    j["summary"] = pairsToJson(run.output.summary);
    Json notes = Json::array();
    for (const auto& note : run.output.notes)
        notes.push(note);
    j["notes"] = std::move(notes);
    // Only present when a point failed (FailMode::Isolate), so all-ok
    // runs — including every golden — emit byte-identical text to the
    // pre-isolation schema.
    if (!run.failures.empty()) {
        Json failures = Json::array();
        for (const PointFailure& f : run.failures) {
            Json e = Json::object();
            e["index"] = static_cast<double>(f.index);
            e["label"] = f.label;
            e["error"] = f.error;
            failures.push(std::move(e));
        }
        j["failures"] = std::move(failures);
    }
    return j;
}

Json
matrixToJson(const MatrixResult& result)
{
    Json j = Json::object();
    j["schema"] = "libra-study-matrix-v1";
    j["engineVersion"] = static_cast<double>(kStudyCacheVersion);
    Json scenarios = Json::array();
    for (const ScenarioRun& run : result.scenarios)
        scenarios.push(scenarioRunToJson(run));
    j["scenarios"] = std::move(scenarios);
    return j;
}

void
emitMatrixJson(const MatrixResult& result, std::ostream& os)
{
    os << matrixToJson(result).dump(1) << "\n";
}

namespace {

std::string
csvEscape(const std::string& s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

/**
 * Union of row keys in first-seen order. The auxiliary set keeps the
 * membership test O(1) — a linear rescan of `keys` per key is
 * O(rows·keys²) and measurably slow on frontier-sized scenarios.
 */
template <typename Value>
std::vector<std::string>
keyUnion(const std::vector<ScenarioRow>& rows,
         std::vector<std::pair<std::string, Value>> ScenarioRow::*field)
{
    std::vector<std::string> keys;
    std::unordered_set<std::string> seen;
    for (const ScenarioRow& row : rows) {
        for (const auto& [k, v] : row.*field) {
            if (seen.insert(k).second)
                keys.push_back(k);
        }
    }
    return keys;
}

template <typename Value>
const Value*
findKey(const std::vector<std::pair<std::string, Value>>& pairs,
        const std::string& key)
{
    for (const auto& [k, v] : pairs) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

/** Compact human form: fixed notation for a sane column width. */
std::string
formatMetric(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4g", v);
    return buf;
}

} // namespace

void
printScenarioRun(const ScenarioRun& run, std::ostream& os)
{
    os << "\n############################################\n"
       << "# " << run.name << ": " << run.title << "\n"
       << "############################################\n";

    if (!run.output.rows.empty()) {
        auto labelKeys = keyUnion(run.output.rows, &ScenarioRow::labels);
        auto metricKeys =
            keyUnion(run.output.rows, &ScenarioRow::metrics);
        Table t;
        std::vector<std::string> header = labelKeys;
        header.insert(header.end(), metricKeys.begin(),
                      metricKeys.end());
        t.header(header);
        for (const ScenarioRow& row : run.output.rows) {
            std::vector<std::string> cells;
            for (const auto& k : labelKeys) {
                const std::string* v = findKey(row.labels, k);
                cells.push_back(v ? *v : "-");
            }
            for (const auto& k : metricKeys) {
                const double* v = findKey(row.metrics, k);
                cells.push_back(v ? formatMetric(*v) : "-");
            }
            t.row(cells);
        }
        t.print(os);
    }
    for (const auto& [k, v] : run.output.summary)
        os << k << " = " << formatMetric(v) << "\n";
    for (const auto& note : run.output.notes)
        os << "\n" << note << "\n";
    for (const PointFailure& f : run.failures) {
        os << "FAILED point " << f.index << " [" << f.label
           << "]: " << f.error << "\n";
    }
}

void
printMatrixHuman(const MatrixResult& result, std::ostream& os)
{
    for (const ScenarioRun& run : result.scenarios)
        printScenarioRun(run, os);
    os << "\nmatrix: " << result.scenarios.size() << " scenarios, "
       << result.points << " design points (" << result.unique
       << " unique, " << result.fromCache << " from cache, "
       << result.computed << " computed)";
    if (result.failed > 0)
        os << " -- " << result.failed << " FAILED";
    os << "\n";
}

void
emitMatrixCsv(const MatrixResult& result, std::ostream& os)
{
    bool first = true;
    for (const ScenarioRun& run : result.scenarios) {
        if (!first)
            os << "\n";
        first = false;

        auto labelKeys = keyUnion(run.output.rows, &ScenarioRow::labels);
        auto metricKeys =
            keyUnion(run.output.rows, &ScenarioRow::metrics);

        os << "scenario,kind";
        for (const auto& k : labelKeys)
            os << ',' << csvEscape(k);
        for (const auto& k : metricKeys)
            os << ',' << csvEscape(k);
        os << "\n";

        for (const ScenarioRow& row : run.output.rows) {
            os << csvEscape(run.name) << ",row";
            for (const auto& k : labelKeys) {
                const std::string* v = findKey(row.labels, k);
                os << ',' << (v ? csvEscape(*v) : "");
            }
            for (const auto& k : metricKeys) {
                const double* v = findKey(row.metrics, k);
                os << ',' << (v ? jsonNumberToString(*v) : "");
            }
            os << "\n";
        }
        for (const auto& [k, v] : run.output.summary) {
            os << csvEscape(run.name) << ",summary," << csvEscape(k)
               << ',' << jsonNumberToString(v) << "\n";
        }
        // Failure rows carry their own columns (index/label/error), so
        // they get a dedicated header instead of riding under the row
        // header above — a strict CSV parser would see misaligned rows.
        // All-ok runs emit no failure section, byte-identical to the
        // pre-isolation output.
        if (!run.failures.empty()) {
            os << "\nscenario,kind,index,label,error\n";
            for (const PointFailure& f : run.failures) {
                os << csvEscape(run.name) << ",failure," << f.index
                   << ',' << csvEscape(f.label) << ','
                   << csvEscape(f.error) << "\n";
            }
        }
    }
}

} // namespace libra
