/**
 * @file
 * Multi-process sharded execution of the scenario matrix
 * (docs/SHARDING.md).
 *
 * One process caps the reachable design-space size; `run-matrix
 * --workers N` forks N worker processes (`libra_cli worker`, a hidden
 * subcommand) and ships deterministic index-ordered batches of work to
 * them over the serve layer's newline-JSON framing
 * (src/serve/framing.hh) on a socketpair.
 *
 * Work crosses the wire in two forms:
 *
 * - **batch frames** ship slot indices into the shared phase-1 batch.
 *   The master sends the *recipe* — scenario names plus the
 *   point-rewriting overrides — in the init frame, and each worker
 *   rebuilds the identical shared batch and slot map through the same
 *   library code (buildMatrixSharedBatch + buildSlotMap, both
 *   deterministic). The handshake compares slot counts and a
 *   fingerprint over every canonical slot key, so a version-skewed or
 *   misconfigured worker is rejected before any result can be merged.
 *
 * - **eval frames** ship serialized design points for work no recipe
 *   describes: the rounds an adaptive ExploreStrategy synthesizes
 *   mid-search. Each point travels as its studyConfigToString text (a
 *   WirePoint) tagged with its canonical-key hash; the worker reparses
 *   the text and verifies the hash, extending the same skew rejection
 *   to points that never appeared in the handshake. Points without a
 *   study-file form (custom commTimeFn, non-zoo workloads) cannot ship
 *   and stay in the master.
 *
 * Either way, results return inline as bit-exact report JSON
 * (reportToJson/reportFromJson) and the master merges them by index
 * and stores them through the content-addressed ResultCache — which is
 * why emitted matrix JSON is cmp-equal to a single-process run at any
 * worker count, fresh or cached.
 *
 * The pool is warm: `run-matrix` forks and handshakes once, then
 * reuses the same workers for the shared batch and every adaptive
 * round, paying fork/exec/handshake once per run instead of once per
 * round.
 *
 * Fault model: a worker that dies mid-batch gets its batch requeued to
 * the survivors (a bounded number of times); losing every worker with
 * work outstanding is fatal. Workers exit on EOF, so a killed master
 * never leaves orphans computing.
 */

#ifndef LIBRA_STUDY_SHARD_HH
#define LIBRA_STUDY_SHARD_HH

#include <sys/types.h>

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "core/framework.hh"
#include "serve/framing.hh"

namespace libra {

/**
 * Content-identity dedup of a point list: every point maps to a slot,
 * equal canonical keys share one slot, and uncacheable points (custom
 * commTimeFn — no content identity) get a private slot each. Built
 * identically by the master's cached sweep and by every worker, so a
 * slot index means the same design point on both sides.
 */
struct SlotMap
{
    std::vector<std::size_t> slotOf;  ///< Point -> slot.
    std::vector<std::string> slotKey; ///< Canonical text; "" = private.
    std::vector<std::size_t> slotRep; ///< Slot -> representative point.

    std::size_t slots() const { return slotRep.size(); }
};

/** Deduplicate @p points by content; see SlotMap. */
SlotMap buildSlotMap(const std::vector<LibraInputs>& points);

/**
 * Order-sensitive fingerprint over a slot map's canonical keys
 * (16-hex). Two processes that agree on it agree on every slot's
 * content identity and position, making slot indices safe to exchange.
 */
std::string slotMapFingerprint(const SlotMap& map);

/**
 * One design point in wire form: the studyConfigToString text plus the
 * 16-hex hash of its canonical study key, under a caller-chosen item
 * index. The text is the authoritative payload — the key only lets the
 * receiver prove its reparse means the same design point (the eval
 * frames' analogue of the handshake fingerprint).
 */
struct WirePoint
{
    std::size_t index = 0; ///< Caller-chosen id echoed back in results.
    std::string text;      ///< studyConfigToString(point).
    std::string key;       ///< pointWireKey(point), 16-hex.
};

/**
 * The 16-hex canonical-key hash of @p inputs
 * (studyCacheHashOfKey over canonicalStudyKey). Only meaningful for
 * points with a wire form (studyConfigSerializable).
 */
std::string pointWireKey(const LibraInputs& inputs);

/** Build the eval-frame payload `{"points":[{index,point,key}...]}`. */
Json evalPayloadJson(const std::vector<WirePoint>& points);

/**
 * Parse and validate an eval-frame payload.
 * @throws FatalError on any malformed shape: missing/ill-typed
 * "points", entries missing index/point/key, fractional or negative
 * indices, or keys that are not 16 lowercase hex digits.
 */
std::vector<WirePoint> parseEvalPayload(const Json& body);

/** How `run-matrix --workers N` spawns and instructs its workers. */
struct ShardOptions
{
    std::size_t workers = 2;   ///< Worker processes (>= 2 to shard).
    std::string workerExe;     ///< Executable exec'd as `... worker`.

    /** Threads per worker; 0 = hardware concurrency / workers. */
    int workerThreads = 0;

    /**
     * The batch recipe workers rebuild from: the expanded scenario
     * names and every override that rewrites points before dedup.
     * Must match what the master's buildMatrixSharedBatch saw.
     */
    std::vector<std::string> scenarios;
    std::vector<std::string> solverPipeline;
    std::string timingBackend;
    std::string exploreSpec;
};

/**
 * The master side: spawns workers, handshakes them against the
 * master's own slot map, and drives batch dispatch; see file comment.
 */
class ShardPool
{
  public:
    /**
     * Result delivery: one call per evaluated item, in completion
     * order (NOT index order — the caller merges by index). For
     * evaluate() the index is a slot; for evaluatePoints() it is the
     * WirePoint's caller-chosen index.
     */
    using ResultFn = std::function<void(
        std::size_t slot, PointStatus status, LibraReport report)>;

    /**
     * Fork and handshake @p options.workers workers against the
     * master's slot map, given as its size and fingerprint (what the
     * handshake actually compares).
     * @throws FatalError when spawning fails or a worker's slot count
     * / fingerprint disagrees with the master's.
     */
    ShardPool(const ShardOptions& options, std::size_t expectedSlots,
              const std::string& expectedFingerprint);

    /** Kills (SIGKILL) and reaps any worker shutdown() didn't. */
    ~ShardPool();

    ShardPool(const ShardPool&) = delete;
    ShardPool& operator=(const ShardPool&) = delete;

    /**
     * Evaluate @p slots across the pool: deterministic index-ordered
     * batches, dispatched dynamically to idle workers. Returns when
     * every slot was delivered through @p onResult exactly once.
     * @throws FatalError when a batch exhausts its retries or every
     * worker died with work outstanding.
     */
    void evaluate(const std::vector<std::size_t>& slots,
                  const ResultFn& onResult);

    /**
     * Evaluate serialized design points across the pool via eval
     * frames — same batching, dispatch, requeue, and delivery
     * contract as evaluate(), with @p onResult receiving each
     * WirePoint's index. Callable any number of times on a warm pool.
     */
    void evaluatePoints(const std::vector<WirePoint>& points,
                        const ResultFn& onResult);

    /** Graceful teardown: send exit, close, reap. Idempotent. */
    void shutdown();

    std::size_t liveWorkers() const;

    /** Live worker pids, for tests that kill one mid-flight. */
    std::vector<pid_t> workerPids() const;

  private:
    struct Worker
    {
        pid_t pid = -1;
        int fd = -1;
        bool alive = false;
        int batch = -1; ///< Outstanding batch id; -1 = idle.
        FrameBuffer buffer{"shard"};
    };

    /**
     * One dispatchable request: the expected result item ids (slot
     * indices or WirePoint indices, in payload order) plus the
     * precomputed request frame — requeues resend the same bytes.
     */
    struct PendingBatch
    {
        std::vector<std::size_t> items;
        std::string frame;
        bool done = false;
    };

    /** Shared dispatch/requeue/merge loop behind both evaluate()s. */
    void runBatches(std::vector<PendingBatch>& batches,
                    const ResultFn& onResult);

    /** Deterministic index-ordered split, ~4 batches per worker. */
    std::vector<std::vector<std::size_t>>
    splitIndices(std::size_t count) const;

    void spawnWorker(Worker* w);
    void workerFailed(Worker* w, std::vector<int>* requeue,
                      std::vector<int>* attempts);
    void reap(Worker* w);

    ShardOptions options_;
    std::vector<Worker> workers_;
};

/**
 * The worker side of the protocol: speak frames on stdin/stdout until
 * an exit op or EOF. The entry point behind `libra_cli worker`.
 * @return process exit code.
 */
int runShardWorker();

} // namespace libra

#endif // LIBRA_STUDY_SHARD_HH
