/**
 * @file
 * Built-in paper scenarios: Table I-III and Figs. 9/10/13-18/21 as
 * registry entries. Each definition replaces a standalone bench binary
 * (the bench/ wrappers now just run these by name); the reproduced
 * claims from the original bench headers live on as `notes`.
 *
 * Grid conventions: figures sharing the paper's evaluation grid
 * (workloads x networks x 100-1,000 GB/s x both objectives) build their
 * points in identical nested-loop order, so the matrix runner's content
 * dedup collapses fig13/fig14 onto a single optimization per point.
 *
 * The outer-loop exploration figures (fig16/17/18/21) are declared as
 * DesignSpaces (see docs/EXPLORE.md): the exhaustive expansion order
 * (objectives fastest, topologies slowest) reproduces their historical
 * hand enumerations bit for bit, and `--explore prune` searches the
 * same spaces adaptively. `explore-frontier` extends the idea past the
 * paper: a larger shape x scale x budget space with a Pareto emitter.
 */

#include <algorithm>
#include <cmath>

#include "common/table.hh"
#include "core/report.hh"
#include "core/timing_backend.hh"
#include "sim/chunk_timeline.hh"
#include "sim/training_sim.hh"
#include "study/scenario_util.hh"

namespace libra {

const std::vector<double>&
paperBwSweep()
{
    static const std::vector<double> sweep{100.0, 250.0, 500.0, 1000.0};
    return sweep;
}

MultistartOptions
paperSearchOptions()
{
    MultistartOptions opt;
    opt.starts = 3;
    return opt;
}

namespace {

/** Single-workload target list for the design-space workload axis. */
WorkloadChoice
soloWorkload(std::string label, Workload (*build)(long))
{
    WorkloadChoice w;
    w.label = std::move(label);
    w.targets = [build](long npus) {
        return std::vector<TargetWorkload>{{build(npus), 1.0}};
    };
    return w;
}

/**
 * The Fig. 13/14 evaluation grid: for every (network, workload, budget)
 * cell, a PerfOpt point immediately followed by a PerfPerCost point.
 */
struct SpeedupGrid
{
    std::vector<topo::NamedNetwork> nets;
    std::vector<Workload> workloadsFor(const Network& net) const
    {
        return {wl::turingNlg(net.npus()), wl::gpt3(net.npus()),
                wl::msft1T(net.npus())};
    }

    std::vector<LibraInputs>
    build() const
    {
        std::vector<LibraInputs> points;
        for (const auto& [label, net] : nets) {
            for (const auto& w : workloadsFor(net)) {
                for (double bw : paperBwSweep()) {
                    points.push_back(makeStudyPoint(
                        net, {{w, 1.0}},
                        OptimizationObjective::PerfOpt, bw));
                    points.push_back(makeStudyPoint(
                        net, {{w, 1.0}},
                        OptimizationObjective::PerfPerCostOpt, bw));
                }
            }
        }
        return points;
    }

    /** Visit cells as (net label, workload, bw, perf report, ppc report). */
    template <typename Fn>
    void
    visit(const std::vector<LibraReport>& reports, Fn fn) const
    {
        std::size_t i = 0;
        for (const auto& [label, net] : nets) {
            for (const auto& w : workloadsFor(net)) {
                for (double bw : paperBwSweep()) {
                    fn(label, w, bw, reports[i], reports[i + 1]);
                    i += 2;
                }
            }
        }
    }
};

SpeedupGrid
mainGrid()
{
    return {{{"3D", topo::threeD4K()}, {"4D", topo::fourD4K()}}};
}

// --- Table I / Fig. 12 -------------------------------------------------

Scenario
tbl1Scenario()
{
    Scenario s;
    s.name = "tbl1";
    s.title = "network cost model ($/GBps) and the Fig. 12 worked "
              "example";
    s.format = [](const std::vector<LibraInputs>&,
                  const std::vector<LibraReport>&) {
        ScenarioOutput out;
        CostModel m = CostModel::defaultModel();
        for (PhysicalLevel level :
             {PhysicalLevel::Chiplet, PhysicalLevel::Package,
              PhysicalLevel::Node, PhysicalLevel::Pod}) {
            ComponentCost c = m.levelCost(level);
            ScenarioRow row;
            row.label("level", physicalLevelName(level));
            row.metric("link", c.link);
            row.metric("switch", c.switch_);
            row.metric("nic", c.nic);
            out.rows.push_back(std::move(row));
        }

        // Fig. 12: the 3-NPU inter-Pod switch network at 10 GB/s.
        Network net = Network::parse("SW(3)");
        auto breakdown = m.breakdown(net, {10.0});
        ScenarioRow example;
        example.label("level", "fig12-example");
        example.metric("links", breakdown[0].linkCost);
        example.metric("switches", breakdown[0].switchCost);
        example.metric("nics", breakdown[0].nicCost);
        example.metric("total", breakdown[0].total());
        out.rows.push_back(std::move(example));

        out.summarize("fig12_total", breakdown[0].total());
        out.summarize("fig12_matches_paper",
                      std::abs(breakdown[0].total() - 1722.0) < 1e-6
                          ? 1.0
                          : 0.0);
        out.notes.push_back(
            "Fig. 12 worked example: paper value $1,722.");
        return out;
    };
    return s;
}

// --- Table II ----------------------------------------------------------

Scenario
tbl2Scenario()
{
    Scenario s;
    s.name = "tbl2";
    s.title = "workload specifications (4,096 NPUs)";
    s.format = [](const std::vector<LibraInputs>&,
                  const std::vector<LibraReport>&) {
        ScenarioOutput out;
        Network net = topo::fourD4K();
        TrainingEstimator est(net);
        BwConfig bw = net.equalBw(300.0);
        for (const auto& w : wl::tableTwo(net.npus())) {
            EstimateDetail d = est.detail(w, bw);
            ScenarioRow row;
            row.label("workload", w.name);
            row.metric("params", w.parameters);
            row.metric("tp", static_cast<double>(w.strategy.tp));
            row.metric("dp", static_cast<double>(w.strategy.dp));
            row.metric("layers", static_cast<double>(w.layers.size()));
            row.metric("compute_per_iter_s", w.totalCompute());
            row.metric("comm_payload_bytes", w.totalCommPayload());
            row.metric("iter_time_s", d.total);
            row.metric("exposed_comm_s", d.exposedComm);
            row.metric("comm_fraction_pct",
                       d.exposedComm / d.total * 100.0);
            out.rows.push_back(std::move(row));
        }
        out.notes.push_back("Iteration times at EqualBW 300 GB/s per "
                            "NPU, NoOverlap loop.");
        return out;
    };
    return s;
}

// --- Table III / Fig. 11 -----------------------------------------------

Scenario
tbl3Scenario()
{
    Scenario s;
    s.name = "tbl3";
    s.title = "multi-dimensional evaluation topologies and Fig. 11 "
              "real systems";
    s.format = [](const std::vector<LibraInputs>&,
                  const std::vector<LibraReport>&) {
        ScenarioOutput out;
        CostModel m = CostModel::defaultModel();
        for (const auto& [label, net] : topo::tableThree()) {
            ScenarioRow row;
            row.label("kind", "evaluation");
            row.label("name", label);
            row.label("shape", net.name());
            row.metric("npus", static_cast<double>(net.npus()));
            row.metric("dims", static_cast<double>(net.numDims()));
            row.metric("equalbw_cost_300",
                       m.networkCost(net, net.equalBw(300.0)));
            out.rows.push_back(std::move(row));
        }
        for (const auto& [label, net] : topo::realSystems()) {
            ScenarioRow row;
            row.label("kind", "real-system");
            row.label("name", label);
            row.label("shape", net.name());
            row.metric("npus", static_cast<double>(net.npus()));
            row.metric("dims", static_cast<double>(net.numDims()));
            out.rows.push_back(std::move(row));
        }
        return out;
    };
    return s;
}

// --- Fig. 9 ------------------------------------------------------------

Scenario
fig09Scenario()
{
    Scenario s;
    s.name = "fig09";
    s.title = "4-chunk All-Reduce on 3D networks with different BW "
              "allocations";
    s.format = [](const std::vector<LibraInputs>&,
                  const std::vector<LibraReport>&) {
        ScenarioOutput out;
        // Traffic shares on a 4x4x4 multi-rail AR are
        // (1.5, 0.375, 0.094)m; see the file comment of fig09's bench.
        const double total = 300.0;
        const double share = 1.5 + 0.375 + 0.09375;
        struct Alloc
        {
            std::string label;
            BwConfig bw;
        };
        std::vector<Alloc> allocs{
            {"underprovisioned-dim1", {30.0, 135.0, 135.0}},
            {"underprovisioned-dim2", {200.0, 10.0, 90.0}},
            {"ideal",
             {total * 1.5 / share, total * 0.375 / share,
              total * 0.09375 / share}},
        };
        for (const auto& alloc : allocs) {
            ChunkTimeline tl(3, alloc.bw);
            CollectiveJob job;
            job.type = CollectiveType::AllReduce;
            job.size = 1e9;
            job.spans = {{0, 4}, {1, 4}, {2, 4}};
            job.numChunks = 4;
            TimelineResult r = tl.run({job});

            ScenarioRow row;
            row.label("allocation", alloc.label);
            row.label("bw_config", bwConfigToString(alloc.bw));
            row.metric("allreduce_time_s", r.makespan);
            row.metric("avg_bw_util_pct", r.avgBwUtilization * 100.0);
            out.rows.push_back(std::move(row));

            out.notes.push_back("--- " + alloc.label + " (B = " +
                                bwConfigToString(alloc.bw) + ") ---\n" +
                                r.render(3, 68));
        }
        out.notes.push_back(
            "Claim check: an underprovisioned dimension saturates while "
            "the others idle; the ideal allocation keeps every "
            "dimension busy outside pipeline bubbles.");
        return out;
    };
    return s;
}

// --- Fig. 10 -----------------------------------------------------------

Scenario
fig10Scenario()
{
    Scenario s;
    s.name = "fig10";
    s.title = "MSFT-1T runtime vs network BW utilization (300 GB/s per "
              "NPU)";
    s.build = [] {
        std::vector<LibraInputs> points;
        for (const auto& [label, net] : fig10Nets()) {
            points.push_back(makeStudyPoint(net,
                                       {{wl::msft1T(net.npus()), 1.0}},
                                       OptimizationObjective::PerfOpt,
                                       300.0));
        }
        return points;
    };
    s.format = [](const std::vector<LibraInputs>& points,
                  const std::vector<LibraReport>& reports) {
        ScenarioOutput out;
        std::vector<topo::NamedNetwork> nets = fig10Nets();
        double maxSpeedup = 0.0;
        for (std::size_t i = 0; i < points.size(); ++i) {
            const Network& net = nets[i].network;
            const std::string& label = nets[i].label;
            const Workload& w = points[i].targets[0].workload;
            TrainingSim sim(net, {});
            TrainingSimResult equal =
                sim.simulate(w, net.equalBw(points[i].config.totalBw));
            TrainingSimResult tuned =
                sim.simulate(w, reports[i].optimized.bw);

            auto row = [&](const std::string& alloc) {
                ScenarioRow r;
                r.label("net", label);
                r.label("alloc", alloc);
                return r;
            };
            ScenarioRow eq = row("EqualBW");
            eq.metric("runtime_norm", 1.0);
            eq.metric("bw_util_pct", equal.avgBwUtilization * 100.0);
            eq.metric("speedup", 1.0);
            out.rows.push_back(std::move(eq));

            ScenarioRow tu = row("LIBRA");
            tu.metric("runtime_norm", tuned.total / equal.total);
            tu.metric("bw_util_pct", tuned.avgBwUtilization * 100.0);
            tu.metric("speedup", equal.total / tuned.total);
            out.rows.push_back(std::move(tu));
            maxSpeedup =
                std::max(maxSpeedup, equal.total / tuned.total);

            ScenarioRow pc = row("PureCompute");
            pc.metric("runtime_norm",
                      equal.computeTotal / equal.total);
            pc.metric("speedup", equal.total / equal.computeTotal);
            out.rows.push_back(std::move(pc));
        }
        out.summarize("max_libra_speedup", maxSpeedup);
        out.notes.push_back(
            "Claim check: EqualBW utilization is far below 100%; the "
            "workload-aware allocation raises utilization and yields "
            ">1x speedup (paper: up to 1.83x on 3D; EqualBW "
            "utilizations 57.5% / 39.0% / 66.7% for 2D/3D/4D).");
        return out;
    };
    return s;
}

// --- Fig. 13 -----------------------------------------------------------

Scenario
fig13Scenario()
{
    Scenario s;
    s.name = "fig13";
    s.title = "training speedup over EqualBW (LIBRA-optimized networks)";
    s.build = [] { return mainGrid().build(); };
    s.format = [](const std::vector<LibraInputs>&,
                  const std::vector<LibraReport>& reports) {
        ScenarioOutput out;
        double sum = 0.0, best = 0.0;
        int n = 0;
        mainGrid().visit(
            reports, [&](const std::string& net, const Workload& w,
                         double bw, const LibraReport& perf,
                         const LibraReport& ppc) {
                ScenarioRow row;
                row.label("workload", w.name);
                row.label("net", net);
                row.label("bw_per_npu", bwLabel(bw));
                row.label("perfopt_bw_config",
                          bwConfigToString(perf.optimized.bw, 0));
                row.metric("speedup_perfopt", perf.speedup);
                row.metric("speedup_perfpercost", ppc.speedup);
                out.rows.push_back(std::move(row));
                sum += perf.speedup;
                best = std::max(best, perf.speedup);
                ++n;
            });
        out.summarize("perfopt_avg_speedup", sum / n);
        out.summarize("perfopt_max_speedup", best);
        out.notes.push_back(
            "PerfOptBW speedup (paper: avg 1.23x, max 2.00x). Claim "
            "check: PerfOpt >= 1x everywhere; GPT-3+4D near 1x (TP-16 "
            "vs dim-2=8 mismatch).");
        return out;
    };
    return s;
}

// --- Fig. 14 -----------------------------------------------------------

Scenario
fig14Scenario()
{
    Scenario s;
    s.name = "fig14";
    s.title = "perf-per-cost benefit over EqualBW baseline";
    s.build = [] { return mainGrid().build(); };
    s.format = [](const std::vector<LibraInputs>&,
                  const std::vector<LibraReport>& reports) {
        ScenarioOutput out;
        double sumPerf = 0.0, sumPpc = 0.0, maxPpc = 0.0;
        int n = 0;
        mainGrid().visit(
            reports, [&](const std::string& net, const Workload& w,
                         double bw, const LibraReport& perf,
                         const LibraReport& ppc) {
                ScenarioRow row;
                row.label("workload", w.name);
                row.label("net", net);
                row.label("bw_per_npu", bwLabel(bw));
                row.label("perfpercost_cost",
                          dollarsToString(ppc.optimized.cost));
                row.metric("ppc_gain_perfopt", perf.perfPerCostGain);
                row.metric("ppc_gain_perfpercost", ppc.perfPerCostGain);
                out.rows.push_back(std::move(row));
                sumPerf += perf.perfPerCostGain;
                sumPpc += ppc.perfPerCostGain;
                maxPpc = std::max(maxPpc, ppc.perfPerCostGain);
                ++n;
            });
        out.summarize("perfopt_avg_ppc_gain", sumPerf / n);
        out.summarize("perfpercost_avg_ppc_gain", sumPpc / n);
        out.summarize("perfpercost_max_ppc_gain", maxPpc);
        out.notes.push_back(
            "Perf-per-cost over EqualBW (paper: PerfOpt avg 5.40x; "
            "PerfPerCost avg 9.16x, max 13.02x). Claim check: "
            "PerfPerCostOptBW wins perf-per-cost at every design "
            "point.");
        return out;
    };
    return s;
}

// --- Fig. 15 -----------------------------------------------------------

Scenario
fig15Scenario()
{
    Scenario s;
    s.name = "fig15";
    s.title = "ResNet-50 and DLRM on 4D-4K (speedup and perf-per-cost "
              "over EqualBW)";
    s.build = [] {
        Network net = topo::fourD4K();
        std::vector<LibraInputs> points;
        for (const auto& w :
             {wl::resnet50(net.npus()), wl::dlrm(net.npus())}) {
            for (double bw : paperBwSweep()) {
                points.push_back(makeStudyPoint(
                    net, {{w, 1.0}}, OptimizationObjective::PerfOpt,
                    bw));
                points.push_back(
                    makeStudyPoint(net, {{w, 1.0}},
                              OptimizationObjective::PerfPerCostOpt,
                              bw));
            }
        }
        return points;
    };
    s.format = [](const std::vector<LibraInputs>& points,
                  const std::vector<LibraReport>& reports) {
        ScenarioOutput out;
        double sumSaving = 0.0;
        int n = 0;
        for (std::size_t i = 0; i + 1 < points.size(); i += 2) {
            const LibraReport& perf = reports[i];
            const LibraReport& ppc = reports[i + 1];
            double saving =
                1.0 - ppc.optimized.cost / perf.optimized.cost;
            sumSaving += saving;
            ++n;

            ScenarioRow row;
            row.label("workload",
                      points[i].targets[0].workload.name);
            row.label("bw_per_npu", bwLabel(points[i].config.totalBw));
            row.metric("speedup_perfopt", perf.speedup);
            row.metric("speedup_perfpercost", ppc.speedup);
            row.metric("ppc_gain_perfopt", perf.perfPerCostGain);
            row.metric("ppc_gain_perfpercost", ppc.perfPerCostGain);
            row.metric("cost_saving_pct", saving * 100.0);
            out.rows.push_back(std::move(row));
        }
        out.summarize("avg_cost_saving_pct", sumSaving / n * 100.0);
        out.notes.push_back(
            "PerfPerCostOptBW networks are cheaper than PerfOptBW ones "
            "(paper: 15.41% on average for these workloads); LIBRA "
            "needs no modification for non-transformer models.");
        return out;
    };
    return s;
}

// --- Fig. 16 -----------------------------------------------------------

/**
 * The Fig. 16 study as a design space: topology shape/scale crossed
 * with the budget sweep and both objectives. Under the default
 * exhaustive strategy the expansion order (topology, then budget, then
 * objective) reproduces the historical hand enumeration bit for bit —
 * the fig16 golden file was generated from the pre-refactor loop and
 * still passes byte-identically.
 */
DesignSpace
fig16Space()
{
    DesignSpace space;
    for (const auto& [label, net] : fig16Nets())
        space.topologies.push_back({label, net.name()});
    space.workloads.push_back(soloWorkload("MSFT-1T", wl::msft1T));
    space.budgets = paperBwSweep();
    space.objectives = {OptimizationObjective::PerfOpt,
                        OptimizationObjective::PerfPerCostOpt};
    space.search = paperSearchOptions();
    return space;
}

Scenario
fig16Scenario()
{
    Scenario s;
    s.name = "fig16";
    s.title = "MSFT-1T on 3D-512 / 3D-1K / 4D-2K topologies";
    s.space = fig16Space;
    s.formatSpace = [](const ExploreResult& r) {
        ScenarioOutput out;
        // Objectives vary fastest, so outcomes pair up as
        // (PerfOpt, PerfPerCost) per (topology, budget) cell; the row
        // identity comes from the candidate labels, not from index
        // arithmetic over the axis sizes.
        for (std::size_t i = 0; i + 1 < r.outcomes.size(); i += 2) {
            const ExploreOutcome& perf = r.outcomes[i];
            const ExploreOutcome& ppc = r.outcomes[i + 1];
            ScenarioRow row;
            row.label("net", perf.candidate.topology);
            row.label("bw_per_npu", bwLabel(perf.candidate.budget));
            row.metric("speedup_perfopt", perf.report.speedup);
            row.metric("speedup_perfpercost", ppc.report.speedup);
            row.metric("ppc_gain_perfopt", perf.report.perfPerCostGain);
            row.metric("ppc_gain_perfpercost",
                       ppc.report.perfPerCostGain);
            out.rows.push_back(std::move(row));
        }
        out.notes.push_back(
            "Claim check: PerfOpt speedup >= 1x and PerfPerCost ppc > "
            "1x on every topology shape/scale — LIBRA generalizes "
            "across network shapes, sizes, and dimensionalities.");
        noteScreenedOutcomes(out, r);
        return out;
    };
    return s;
}

// --- Fig. 17 -----------------------------------------------------------

/**
 * The Fig. 17 study as a design space: one topology/budget/objective,
 * with the workload axis enumerating each ensemble's single-target
 * points followed by its weight-normalized group point — the same
 * order the hand-rolled loop produced.
 */
DesignSpace
fig17Space()
{
    DesignSpace space;
    Network net = topo::fourD4K();
    space.topologies.push_back({"4D-4K", net.name()});
    const std::vector<std::string> studyKeys{"a", "b"};
    const std::vector<std::vector<Workload>> studies =
        fig17Studies(net.npus());
    for (std::size_t study = 0; study < studies.size(); ++study) {
        const std::vector<Workload>& members = studies[study];
        for (std::size_t m = 0; m < members.size(); ++m) {
            WorkloadChoice w;
            w.label = studyKeys[study] + ":" + members[m].name;
            w.targets = [study, m](long npus) {
                std::vector<std::vector<Workload>> studies =
                    fig17Studies(npus);
                return std::vector<TargetWorkload>{
                    {std::move(studies[study][m]), 1.0}};
            };
            space.workloads.push_back(std::move(w));
        }
        WorkloadChoice group;
        group.label = studyKeys[study] + ":Group-Opt";
        group.normalizeWeights = true;
        group.targets = [study](long npus) {
            std::vector<std::vector<Workload>> studies =
                fig17Studies(npus);
            std::vector<TargetWorkload> targets;
            for (auto& w : studies[study])
                targets.push_back({std::move(w), 1.0});
            return targets;
        };
        space.workloads.push_back(std::move(group));
    }
    space.budgets = {1000.0};
    space.objectives = {OptimizationObjective::PerfOpt};
    space.search = paperSearchOptions();
    return space;
}

Scenario
fig17Scenario()
{
    Scenario s;
    s.name = "fig17";
    s.title = "single-target vs group network optimization (4D-4K @ "
              "1,000 GB/s)";
    s.space = fig17Space;
    s.formatSpace = [](const ExploreResult& r) {
        ScenarioOutput out;
        Network net = topo::fourD4K();
        TrainingEstimator est(net);
        BwConfig equal = net.equalBw(1000.0);
        const std::vector<std::string> studyKeys{"a", "b"};

        std::size_t base = 0;
        std::size_t study = 0;
        for (const auto& members : fig17Studies(net.npus())) {
            std::vector<Seconds> tEq, tOwn;
            for (std::size_t i = 0; i < members.size(); ++i) {
                tEq.push_back(est.estimate(members[i], equal));
                tOwn.push_back(est.estimate(
                    members[i],
                    r.outcomes[base + i].report.optimized.bw));
            }

            double groupSlowdownSum = 0.0, maxCross = 1.0;
            auto evalRows = [&](const std::string& target,
                                const BwConfig& bw, bool isGroup) {
                for (std::size_t i = 0; i < members.size(); ++i) {
                    Seconds tX = est.estimate(members[i], bw);
                    double slowdown = tX / tOwn[i];
                    if (isGroup)
                        groupSlowdownSum += slowdown;
                    else
                        maxCross = std::max(maxCross, slowdown);
                    ScenarioRow row;
                    row.label("study", studyKeys[study]);
                    row.label("opt_target", target);
                    row.label("workload", members[i].name);
                    row.metric("speedup_vs_equalbw", tEq[i] / tX);
                    row.metric("slowdown_vs_own_opt", slowdown);
                    out.rows.push_back(std::move(row));
                }
            };
            for (std::size_t i = 0; i < members.size(); ++i) {
                evalRows(members[i].name,
                         r.outcomes[base + i].report.optimized.bw,
                         false);
            }
            evalRows("Group-Opt",
                     r.outcomes[base + members.size()]
                         .report.optimized.bw,
                     true);

            out.summarize(studyKeys[study] + "_max_cross_slowdown",
                          maxCross);
            out.summarize(
                studyKeys[study] + "_group_avg_slowdown",
                groupSlowdownSum /
                    static_cast<double>(members.size()));
            base += members.size() + 1;
            ++study;
        }
        out.notes.push_back(
            "Claim check: single-target networks can slow other "
            "workloads down (paper: up to 1.77x); the group-optimized "
            "network is near-optimal for every member (paper: avg "
            "slowdown 1.01x). Study (a) group-optimizes LLMs, (b) a "
            "DNN mixture.");
        noteScreenedOutcomes(out, r);
        return out;
    };
    return s;
}

// --- Fig. 18 -----------------------------------------------------------

/**
 * The Fig. 18 study as a design space: the cost-model axis sweeps the
 * inter-Package link price; everything else is a single value.
 */
DesignSpace
fig18Space()
{
    DesignSpace space;
    space.topologies.push_back({"4D-4K", topo::fourD4K().name()});
    space.workloads.push_back(soloWorkload("MSFT-1T", wl::msft1T));
    for (double price : {1.0, 2.0, 3.0, 4.0, 5.0}) {
        CostChoice cost;
        cost.label = Table::num(price, 0);
        ComponentCost pkg =
            cost.model.levelCost(PhysicalLevel::Package);
        pkg.link = price;
        cost.model.setLevelCost(PhysicalLevel::Package, pkg);
        space.costs.push_back(std::move(cost));
    }
    space.budgets = {1000.0};
    space.objectives = {OptimizationObjective::PerfPerCostOpt};
    space.search = paperSearchOptions();
    return space;
}

Scenario
fig18Scenario()
{
    Scenario s;
    s.name = "fig18";
    s.title = "inter-Package link cost sweep ($1-$5/GBps, 4D-4K @ "
              "1,000 GB/s)";
    s.space = fig18Space;
    s.formatSpace = [](const ExploreResult& r) {
        ScenarioOutput out;
        double sum = 0.0, best = 0.0;
        for (const ExploreOutcome& o : r.outcomes) {
            double gain = o.report.perfPerCostGain;
            sum += gain;
            best = std::max(best, gain);
            ScenarioRow row;
            row.label("pkg_link_cost", o.candidate.cost);
            row.label("bw_config",
                      bwConfigToString(o.report.optimized.bw, 0));
            row.metric("ppc_gain", gain);
            row.metric("network_cost", o.report.optimized.cost);
            out.rows.push_back(std::move(row));
        }
        out.summarize("avg_ppc_gain",
                      sum / static_cast<double>(r.outcomes.size()));
        out.summarize("max_ppc_gain", best);
        out.notes.push_back(
            "Claim check: the benefit persists across the sweep "
            "(paper avg 4.06x, max 5.59x) — the user-defined cost "
            "model is a first-class input.");
        noteScreenedOutcomes(out, r);
        return out;
    };
    return s;
}

// --- Fig. 21 -----------------------------------------------------------

/**
 * The Fig. 21 study as a design space: the workload axis enumerates
 * the parallelization strategies (TP degree; DP fills the rest).
 */
DesignSpace
fig21Space()
{
    DesignSpace space;
    space.topologies.push_back({"4D-4K", topo::fourD4K().name()});
    for (long tp : fig21TpDegrees()) {
        WorkloadChoice w;
        w.label = "TP-" + std::to_string(tp);
        w.targets = [tp](long npus) {
            return std::vector<TargetWorkload>{
                {wl::msft1TWithStrategy(tp, npus / tp), 1.0}};
        };
        space.workloads.push_back(std::move(w));
    }
    space.budgets = {1000.0};
    space.objectives = {OptimizationObjective::PerfOpt};
    space.search = paperSearchOptions();
    return space;
}

Scenario
fig21Scenario()
{
    Scenario s;
    s.name = "fig21";
    s.title = "network + parallelization co-design (MSFT-1T, 4D-4K @ "
              "1,000 GB/s)";
    s.space = fig21Space;
    s.formatSpace = [](const ExploreResult& r) {
        ScenarioOutput out;
        // Baseline: EqualBW under the Table II default HP-(128, 32) —
        // the tp == 128 candidate's own EqualBW result.
        Seconds tBase = 0.0;
        for (const ExploreOutcome& o : r.outcomes) {
            if (o.candidate.inputs.targets[0].workload.strategy.tp ==
                128) {
                tBase = o.report.equalBw.weightedTime;
            }
        }

        double bestSpeedup = 0.0;
        for (const ExploreOutcome& o : r.outcomes) {
            const Workload& w = o.candidate.inputs.targets[0].workload;
            double speedupEq = tBase / o.report.equalBw.weightedTime;
            double speedupCo =
                tBase / o.report.optimized.weightedTime;
            bestSpeedup = std::max(bestSpeedup, speedupCo);
            ScenarioRow row;
            row.label("strategy", w.strategy.name());
            row.label("codesigned_bw_config",
                      bwConfigToString(o.report.optimized.bw, 0));
            row.metric("speedup_equalbw", speedupEq);
            row.metric("speedup_codesign", speedupCo);
            out.rows.push_back(std::move(row));
        }
        out.summarize("best_codesign_speedup", bestSpeedup);
        out.notes.push_back(
            "Claim check: a mid-range TP (paper: HP-(64,64)) with its "
            "co-optimized network is fastest (paper: 1.19x over the "
            "HP-(128,32)+EqualBW baseline); performance degrades "
            "sharply once TP drops below 32.");
        noteScreenedOutcomes(out, r);
        return out;
    };
    return s;
}

// --- Frontier exploration ----------------------------------------------

/**
 * A strictly larger shape x scale x budget space than any paper
 * figure: eight topology compositions from 512 to 4,096 NPUs (the six
 * zoo evaluation shapes plus two novel compositions), five per-NPU
 * budgets, both objectives — 80 candidates. The formatter emits the
 * time-vs-dollars Pareto frontier over the full-budget designs; under
 * `--explore prune` only the screened survivors reach the full search
 * budget, which is the intended way to run it.
 */
DesignSpace
frontierSpace()
{
    DesignSpace space;
    space.topologies = {{"3D-512", topo::threeD512().name()},
                        {"2D-1K", "RI(32)_SW(32)"},
                        {"3D-1K", topo::threeD1K().name()},
                        {"3D-2K", "RI(8)_FC(8)_SW(32)"},
                        {"4D-2K", topo::fourD2K().name()},
                        {"2D-4K", topo::twoD4K().name()},
                        {"3D-4K", topo::threeD4K().name()},
                        {"4D-4K", topo::fourD4K().name()}};
    space.workloads.push_back(soloWorkload("MSFT-1T", wl::msft1T));
    space.budgets = {100.0, 250.0, 500.0, 750.0, 1000.0};
    space.objectives = {OptimizationObjective::PerfOpt,
                        OptimizationObjective::PerfPerCostOpt};
    space.search = paperSearchOptions();
    return space;
}

/**
 * Shared frontier formatter: the time-vs-dollars Pareto set over the
 * full-budget designs; minimize (iteration time, network dollars). A
 * design survives when no other full-budget design is at least as good
 * on both axes and better on one. Used by explore-frontier and its
 * scaled-up sibling frontier-xl.
 */
ScenarioOutput
formatFrontier(const ExploreResult& r)
{
    ScenarioOutput out;

    auto dominated = [&](const ExploreOutcome& o) {
        for (const ExploreOutcome& other : r.outcomes) {
            if (!other.fullBudget || &other == &o)
                continue;
            double t0 = o.report.optimized.weightedTime;
            double c0 = o.report.optimized.cost;
            double t1 = other.report.optimized.weightedTime;
            double c1 = other.report.optimized.cost;
            if (t1 <= t0 && c1 <= c0 && (t1 < t0 || c1 < c0))
                return true;
        }
        return false;
    };

    std::size_t frontier = 0;
    for (const ExploreOutcome& o : r.outcomes) {
        bool pareto = o.fullBudget && !dominated(o);
        frontier += pareto ? 1 : 0;
        ScenarioRow row;
        row.label("net", o.candidate.topology);
        row.label("bw_per_npu", bwLabel(o.candidate.budget));
        row.label("objective", objectiveName(o.candidate.objective));
        row.label("stage", o.fullBudget ? "full" : "screened");
        row.metric("iter_time_s", o.report.optimized.weightedTime);
        row.metric("network_cost", o.report.optimized.cost);
        row.metric("speedup", o.report.speedup);
        row.metric("pareto", pareto ? 1.0 : 0.0);
        out.rows.push_back(std::move(row));
    }
    out.summarize("candidates",
                  static_cast<double>(r.outcomes.size()));
    out.summarize("full_runs", static_cast<double>(r.fullRuns));
    out.summarize("screen_runs",
                  static_cast<double>(r.screenRuns));
    out.summarize("pareto_size", static_cast<double>(frontier));
    out.notes.push_back(
        "The frontier spans budget-bound small shapes (cheapest) "
        "to 4D-4K at 1,000 GB/s (fastest); dominated shapes never "
        "pay for their dimensionality. Screened rows show the "
        "cheap ranking pass a pruning strategy used; only 'full' "
        "rows are Pareto-eligible.");
    return out;
}

Scenario
frontierScenario()
{
    Scenario s;
    s.name = "explore-frontier";
    s.title = "MSFT-1T shape x scale x budget frontier (time vs "
              "dollars Pareto set)";
    s.space = frontierSpace;
    s.formatSpace = formatFrontier;
    return s;
}

/**
 * frontier-xl: the same study scaled past what one process frontier
 * sweep should have to shoulder — two extra topology compositions and
 * a sixth budget rung, 120 candidates against explore-frontier's 80.
 * The bench harness runs it single-process vs `--workers N` to
 * demonstrate wall-clock scaling at byte-identical output
 * (docs/SHARDING.md); the Pareto winners must not move.
 */
DesignSpace
frontierXlSpace()
{
    DesignSpace space = frontierSpace();
    space.topologies.push_back({"2D-2K", "RI(64)_SW(32)"});
    space.topologies.push_back({"4D-1K", "RI(4)_FC(4)_RI(8)_SW(8)"});
    space.budgets.push_back(375.0);
    return space;
}

Scenario
frontierXlScenario()
{
    Scenario s;
    s.name = "frontier-xl";
    s.title = "scaled-up MSFT-1T frontier (sharded-execution "
              "benchmark space)";
    s.space = frontierXlSpace;
    s.formatSpace = formatFrontier;
    return s;
}

// --- Estimator <-> simulator cross-validation --------------------------

/**
 * The crossval grid: small full-dimension networks the chunk simulator
 * executes in smoke-test time, with one DP-only and one TP+DP workload
 * each, so both whole-dimension and partial-span collectives are
 * exercised.
 */
std::vector<topo::NamedNetwork>
crossvalNets()
{
    return {{"3D-64", Network::parse("RI(4)_FC(4)_SW(4)")},
            {"2D-64", Network::parse("FC(8)_RI(8)")}};
}

std::vector<Workload>
crossvalWorkloads(const Network& net)
{
    return {wl::resnet50(net.npus()), wl::turingNlg(net.npus())};
}

const std::vector<double>&
crossvalBudgets()
{
    static const std::vector<double> budgets{250.0, 500.0};
    return budgets;
}

Scenario
crossvalScenario()
{
    Scenario s;
    s.name = "crossval";
    s.title = "analytical-estimator error vs the chunk-level timing "
              "backend, per design point";
    s.build = [] {
        std::vector<LibraInputs> points;
        for (const auto& [label, net] : crossvalNets()) {
            for (const auto& w : crossvalWorkloads(net)) {
                for (double bw : crossvalBudgets()) {
                    LibraInputs p =
                        makeStudyPoint(net, {{w, 1.0}},
                                  OptimizationObjective::PerfOpt, bw);
                    // Optimize under simulation; the formatter then
                    // cross-evaluates the same designs analytically.
                    p.config.estimator.timingBackend =
                        kChunkSimTimingBackendName;
                    // Simulated evaluations are orders of magnitude
                    // costlier than the SoA fast path; a budget keeps
                    // the scenario smoke-test sized (and is part of
                    // the cache key, so cached runs stay consistent).
                    p.config.search.maxEvalsPerStart = 600;
                    points.push_back(std::move(p));
                }
            }
        }
        return points;
    };
    s.format = [](const std::vector<LibraInputs>& points,
                  const std::vector<LibraReport>& reports) {
        ScenarioOutput out;
        double maxErr = 0.0;
        double sumErr = 0.0;
        for (std::size_t i = 0; i < points.size(); ++i) {
            const LibraInputs& p = points[i];
            const LibraReport& r = reports[i];
            Network net = Network::parse(p.networkShape);

            // Cross-evaluate the backend-optimized designs under the
            // analytical model: same bandwidth configs, same targets,
            // only the timing source differs.
            EstimatorOptions analyticalOpt = p.config.estimator;
            analyticalOpt.timingBackend.clear();
            TrainingEstimator analytical(net, analyticalOpt);
            Seconds anaEqual =
                weightedTime(analytical, p.targets, r.equalBw.bw);
            Seconds anaOpt =
                weightedTime(analytical, p.targets, r.optimized.bw);
            double errEqual =
                anaEqual > 0.0
                    ? std::abs(r.equalBw.weightedTime - anaEqual) /
                          anaEqual
                    : 0.0;
            double errOpt =
                anaOpt > 0.0
                    ? std::abs(r.optimized.weightedTime - anaOpt) /
                          anaOpt
                    : 0.0;
            maxErr = std::max({maxErr, errEqual, errOpt});
            sumErr += errEqual + errOpt;

            ScenarioRow row;
            row.label("net", net.name());
            row.label("workload", p.targets[0].workload.name);
            row.label("backend",
                      timingBackendOrDefault(
                          p.config.estimator.timingBackend));
            row.label("total_bw", bwLabel(p.config.totalBw));
            row.metric("backend_equal_time_s", r.equalBw.weightedTime);
            row.metric("analytical_equal_time_s", anaEqual);
            row.metric("rel_err_equal", errEqual);
            row.metric("backend_opt_time_s", r.optimized.weightedTime);
            row.metric("analytical_opt_time_s", anaOpt);
            row.metric("rel_err_opt", errOpt);
            row.metric("backend_speedup", r.speedup);
            out.rows.push_back(std::move(row));
        }
        if (!points.empty()) {
            out.summarize("max_rel_err", maxErr);
            out.summarize("mean_rel_err",
                          sumErr /
                              (2.0 * static_cast<double>(points.size())));
        }
        out.notes.push_back(
            "Claim check (paper §IV-C premise): the analytical "
            "latency-bandwidth estimator tracks chunk-level simulation "
            "closely enough to drive topology optimization — the "
            "deviation is the pipeline fill/drain ramp, bounded by "
            "sum_i t_i / numChunks per collective (docs/BACKENDS.md).");
        return out;
    };
    return s;
}

} // namespace

void
registerBuiltinScenarios(ScenarioRegistry& registry)
{
    registry.add(tbl1Scenario());
    registry.add(tbl2Scenario());
    registry.add(tbl3Scenario());
    registry.add(fig09Scenario());
    registry.add(fig10Scenario());
    registry.add(fig13Scenario());
    registry.add(fig14Scenario());
    registry.add(fig15Scenario());
    registry.add(fig16Scenario());
    registry.add(fig17Scenario());
    registry.add(fig18Scenario());
    registry.add(fig21Scenario());
    registry.add(frontierScenario());
    registry.add(frontierXlScenario());
    registry.add(crossvalScenario());
}

} // namespace libra
