/**
 * @file
 * Scenario registry: every paper figure/table as a named, machine-
 * checkable study definition.
 *
 * A Scenario contributes two functions:
 *
 *  - build(): the optimization work, expressed as a vector of
 *    LibraInputs design points. The matrix runner concatenates the
 *    points of every selected scenario into ONE runLibraSweep batch
 *    (deduplicated by content hash, served from the result cache when
 *    enabled), so all expensive optimize() calls share the global
 *    thread pool and the cache. Scenarios that need no optimization
 *    (e.g. the cost-model table) return an empty vector.
 *  - format(points, reports): turns the scenario's aligned LibraReport
 *    slice into labeled rows of named numeric metrics plus summary
 *    metrics. Light post-processing (training-sim validation runs,
 *    cross-evaluation of estimates) is allowed here; anything costing
 *    an optimize() belongs in build().
 *
 * Rows carry (label, value) string pairs for identity and (metric,
 * double) pairs for the reproduced numbers — the representation the
 * JSON/CSV emitters and the golden-figure regression suite consume.
 */

#ifndef LIBRA_STUDY_SCENARIO_HH
#define LIBRA_STUDY_SCENARIO_HH

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/framework.hh"
#include "explore/explore.hh"

namespace libra {

/** One emitted row: identity labels plus named numeric metrics. */
struct ScenarioRow
{
    std::vector<std::pair<std::string, std::string>> labels;
    std::vector<std::pair<std::string, double>> metrics;

    ScenarioRow&
    label(std::string key, std::string value)
    {
        labels.emplace_back(std::move(key), std::move(value));
        return *this;
    }

    ScenarioRow&
    metric(std::string key, double value)
    {
        metrics.emplace_back(std::move(key), value);
        return *this;
    }
};

/** Formatted result of one scenario. */
struct ScenarioOutput
{
    std::vector<ScenarioRow> rows;

    /** Scenario-level aggregates (averages, maxima, claim checks). */
    std::vector<std::pair<std::string, double>> summary;

    /** Free-form annotation lines (claim-check text, ASCII timelines). */
    std::vector<std::string> notes;

    void
    summarize(std::string key, double value)
    {
        summary.emplace_back(std::move(key), value);
    }
};

/** A registered figure/table scenario. */
struct Scenario
{
    std::string name;  ///< Registry key, e.g. "fig13".
    std::string title; ///< One-line description (banner text).

    /** Design points to optimize; may be empty. */
    std::function<std::vector<LibraInputs>()> build;

    /** Row formatter over the aligned reports of build()'s points. */
    std::function<ScenarioOutput(const std::vector<LibraInputs>&,
                                 const std::vector<LibraReport>&)>
        format;

    /**
     * Exploration form: a scenario declared as a DesignSpace instead
     * of a hand-built point list (mutually exclusive with
     * build/format). Under the default exhaustive strategy the
     * expanded candidates join the matrix runner's shared batch —
     * bit-identical to a hand-enumerated build() in the same order —
     * while a non-default `EXPLORE` strategy (the scenario's `explore`
     * default or the run-wide `--explore` override) searches the
     * space adaptively through the cache-aware sweep.
     */
    std::function<DesignSpace()> space;

    /** Row formatter over the exploration result (requires space). */
    std::function<ScenarioOutput(const ExploreResult&)> formatSpace;

    /**
     * Default exploration spec for this scenario ("" = exhaustive).
     * Only meaningful with `space`; `--explore` overrides it.
     */
    std::string explore;
};

/** Name-keyed scenario collection, iterated in registration order. */
class ScenarioRegistry
{
  public:
    /**
     * The process-wide registry, with every built-in paper scenario
     * registered on first use. Do not mutate concurrently with matrix
     * runs (registration happens at startup in practice).
     */
    static ScenarioRegistry& global();

    /** Register a scenario. @throws FatalError on a duplicate name. */
    void add(Scenario scenario);

    /** Look up by name; nullptr when absent. */
    const Scenario* find(const std::string& name) const;

    /** All names in registration order. */
    std::vector<std::string> names() const;

    std::size_t size() const { return scenarios_.size(); }

  private:
    std::vector<Scenario> scenarios_;
};

/**
 * Register the built-in paper scenarios (fig09/10/13/14/15/16/17/18/21
 * and tbl1/2/3), the estimator-vs-simulation `crossval` study, and the
 * `explore-frontier` design-space search into @p registry. Called by
 * ScenarioRegistry::global().
 */
void registerBuiltinScenarios(ScenarioRegistry& registry);

/**
 * The scenarios whose headline metrics the golden-figure regression
 * suite pins (Fig. 13 speedups, Fig. 14 perf-per-cost, Table I cost
 * rows, Fig. 10 utilization, and — since the explore-layer refactor —
 * the Fig. 16 and Fig. 21 rows, whose golden files were generated
 * from the pre-refactor hand enumeration).
 */
const std::vector<std::string>& goldenScenarioNames();

/**
 * Expand scenario name groups against the registry: "all" inlines
 * every registered scenario, "golden" inlines goldenScenarioNames(),
 * anything else passes through verbatim (validation happens in
 * runScenarioMatrix). Shared by the CLI and the serve protocol so a
 * served request resolves groups exactly like the one-shot command.
 */
std::vector<std::string>
expandScenarioGroups(const std::vector<std::string>& names);

/**
 * The paper's 100-1,000 GB/s per-NPU budget sweep (Figs. 13-16). The
 * single source of truth for the evaluation grid — the remaining
 * standalone benches (fig19/fig20/ablations) forward to it via
 * bench_util.hh, so benches and scenarios can never drift apart.
 */
const std::vector<double>& paperBwSweep();

/** Harness-sized search options (deterministic, starts = 3). */
MultistartOptions paperSearchOptions();

} // namespace libra

#endif // LIBRA_STUDY_SCENARIO_HH
