#include "study/shard.hh"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <deque>
#include <thread>
#include <unordered_map>

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "core/study_config.hh"
#include "study/cache.hh"
#include "study/matrix.hh"

namespace libra {

// ---------------------------------------------------------------------
// Slot map
// ---------------------------------------------------------------------

SlotMap
buildSlotMap(const std::vector<LibraInputs>& points)
{
    SlotMap map;
    map.slotOf.resize(points.size());
    std::unordered_map<std::string, std::size_t> slotByKey;
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (!studyPointCacheable(points[i])) {
            map.slotOf[i] = map.slotRep.size();
            map.slotKey.emplace_back();
            map.slotRep.push_back(i);
            continue;
        }
        std::string key = canonicalStudyKey(points[i]);
        auto [it, inserted] =
            slotByKey.try_emplace(std::move(key), map.slotRep.size());
        if (inserted) {
            map.slotKey.push_back(it->first);
            map.slotRep.push_back(i);
        }
        map.slotOf[i] = it->second;
    }
    return map;
}

namespace {

std::string
hashHex16(std::uint64_t h)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

} // namespace

std::string
slotMapFingerprint(const SlotMap& map)
{
    // Length-prefixed keys in slot order: equal fingerprints mean
    // equal key sequences, so slot indices carry the same identity in
    // both processes. Private slots contribute their (empty) key and
    // their representative point index — content-free, but position
    // must still agree.
    std::string text;
    text += std::to_string(map.slotOf.size());
    text += '/';
    for (std::size_t s = 0; s < map.slots(); ++s) {
        appendCanonicalString(text, map.slotKey[s]);
        text += std::to_string(map.slotRep[s]);
        text += ' ';
    }
    return hashHex16(studyCacheHashOfKey(text));
}

// ---------------------------------------------------------------------
// Point wire codec
// ---------------------------------------------------------------------

std::string
pointWireKey(const LibraInputs& inputs)
{
    return hashHex16(studyCacheHashOfKey(canonicalStudyKey(inputs)));
}

Json
evalPayloadJson(const std::vector<WirePoint>& points)
{
    Json body = Json::object();
    Json list = Json::array();
    for (const WirePoint& wp : points) {
        Json entry = Json::object();
        entry["index"] = wp.index;
        entry["point"] = wp.text;
        entry["key"] = wp.key;
        list.push(std::move(entry));
    }
    body["points"] = std::move(list);
    return body;
}

std::vector<WirePoint>
parseEvalPayload(const Json& body)
{
    if (!body.isObject() || !body.has("points"))
        fatal("eval frame: payload has no points array");
    const Json& list = body.at("points");
    if (!list.isArray())
        fatal("eval frame: points is not an array");
    std::vector<WirePoint> out;
    for (const Json& entry : list.items()) {
        if (!entry.isObject() || !entry.has("index") ||
            !entry.has("point") || !entry.has("key")) {
            fatal("eval frame: point entry needs index/point/key: ",
                  entry.dump());
        }
        const Json& idx = entry.at("index");
        if (!idx.isNumber())
            fatal("eval frame: point index is not a number");
        double v = idx.asNumber();
        if (!(v >= 0.0 && v <= 1e15) || v != std::floor(v))
            fatal("eval frame: bad point index ", idx.dump());
        WirePoint wp;
        wp.index = static_cast<std::size_t>(v);
        if (!entry.at("point").isString() ||
            !entry.at("key").isString())
            fatal("eval frame: point/key must be strings");
        wp.text = entry.at("point").asString();
        wp.key = entry.at("key").asString();
        if (wp.text.empty())
            fatal("eval frame: empty point text");
        if (wp.key.size() != 16 ||
            wp.key.find_first_not_of("0123456789abcdef") !=
                std::string::npos) {
            fatal("eval frame: bad point key '", wp.key,
                  "' (want 16 hex digits)");
        }
        out.push_back(std::move(wp));
    }
    return out;
}

// ---------------------------------------------------------------------
// Protocol helpers
// ---------------------------------------------------------------------

namespace {

std::string
stripFatalPrefix(std::string msg)
{
    const std::string prefix = "fatal: ";
    if (msg.rfind(prefix, 0) == 0)
        msg.erase(0, prefix.size());
    return msg;
}

Json
okStatus(const char* op)
{
    Json status = Json::object();
    status["ok"] = true;
    status["op"] = op;
    return status;
}

/** Frame status sanity shared by both sides of the protocol. */
std::string
frameOp(const Frame& frame, const char* who)
{
    if (!frame.status.isObject() || !frame.status.has("ok"))
        fatal(who, ": malformed frame status: ", frame.status.dump());
    if (!frame.status.at("ok").asBool()) {
        fatal(who, ": peer reported an error: ",
              frame.status.has("error")
                  ? frame.status.at("error").asString()
                  : std::string("(no message)"));
    }
    if (!frame.status.has("op"))
        fatal(who, ": frame status has no op: ", frame.status.dump());
    return frame.status.at("op").asString();
}

} // namespace

// ---------------------------------------------------------------------
// ShardPool (master side)
// ---------------------------------------------------------------------

ShardPool::ShardPool(const ShardOptions& options,
                     std::size_t expectedSlots,
                     const std::string& expectedFingerprint)
    : options_(options)
{
    if (options_.workers < 2)
        fatal("shard: need at least 2 workers to shard (got ",
              options_.workers, ")");
    if (options_.workerExe.empty())
        fatal("shard: no worker executable configured");

    int threads = options_.workerThreads;
    if (threads <= 0) {
        const std::size_t hw =
            std::max<std::size_t>(std::thread::hardware_concurrency(),
                                  1);
        threads = static_cast<int>(
            std::max<std::size_t>(hw / options_.workers, 1));
    }

    Json body = Json::object();
    Json scenarios = Json::array();
    for (const auto& name : options_.scenarios)
        scenarios.push(name);
    body["scenarios"] = std::move(scenarios);
    Json solver = Json::array();
    for (const auto& name : options_.solverPipeline)
        solver.push(name);
    body["solver"] = std::move(solver);
    body["backend"] = options_.timingBackend;
    body["explore"] = options_.exploreSpec;
    body["threads"] = threads;
    const std::string init =
        frameMessage(okStatus("init"), body.dump());

    workers_.resize(options_.workers);
    for (Worker& w : workers_) {
        spawnWorker(&w);
        if (!sendAllFd(w.fd, init))
            fatal("shard: cannot send init to worker ", w.pid);
    }

    // Handshake: every worker must rebuild the exact slot map this
    // master holds, or slot indices would silently mean different
    // design points.
    for (Worker& w : workers_) {
        Frame ready = readFrameFd(w.fd, w.buffer, "shard");
        if (frameOp(ready, "shard") != "ready")
            fatal("shard: worker sent ", ready.status.dump(),
                  " instead of ready");
        Json info = Json::parse(ready.payload);
        const auto slots =
            static_cast<std::size_t>(info.at("slots").asNumber());
        const std::string& fp = info.at("fingerprint").asString();
        if (slots != expectedSlots || fp != expectedFingerprint) {
            fatal("shard: worker slot map mismatch (worker ", slots,
                  " slots/", fp, ", master ", expectedSlots,
                  " slots/", expectedFingerprint,
                  ") — worker executable out of sync?");
        }
    }
}

ShardPool::~ShardPool()
{
    // Abnormal teardown (shutdown() was not reached): don't wait for
    // a worker mid-batch, kill and reap.
    for (Worker& w : workers_) {
        if (!w.alive)
            continue;
        if (w.fd >= 0)
            ::close(w.fd);
        w.fd = -1;
        ::kill(w.pid, SIGKILL);
        reap(&w);
        w.alive = false;
    }
}

void
ShardPool::spawnWorker(Worker* w)
{
    // CLOEXEC on both ends: a later worker's fork must not inherit an
    // earlier worker's channel (dup2 below clears the flag on the fds
    // the child actually uses).
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, sv) != 0)
        fatal("shard: socketpair failed: ", std::strerror(errno));
    pid_t pid = ::fork();
    if (pid < 0) {
        int err = errno;
        ::close(sv[0]);
        ::close(sv[1]);
        fatal("shard: fork failed: ", std::strerror(err));
    }
    if (pid == 0) {
        ::dup2(sv[1], 0);
        ::dup2(sv[1], 1);
        ::execl(options_.workerExe.c_str(), options_.workerExe.c_str(),
                "worker", static_cast<char*>(nullptr));
        // Still the child: exec failed. stderr is inherited; stdout is
        // the protocol channel, so the master sees EOF and reacts.
        std::fprintf(stderr, "shard worker: cannot exec %s: %s\n",
                     options_.workerExe.c_str(), std::strerror(errno));
        ::_exit(127);
    }
    ::close(sv[1]);
    w->pid = pid;
    w->fd = sv[0];
    w->alive = true;
    w->batch = -1;
}

void
ShardPool::reap(Worker* w)
{
    int status = 0;
    while (::waitpid(w->pid, &status, 0) < 0 && errno == EINTR) {
    }
}

std::size_t
ShardPool::liveWorkers() const
{
    std::size_t n = 0;
    for (const Worker& w : workers_)
        n += w.alive ? 1 : 0;
    return n;
}

std::vector<pid_t>
ShardPool::workerPids() const
{
    std::vector<pid_t> pids;
    for (const Worker& w : workers_)
        if (w.alive)
            pids.push_back(w.pid);
    return pids;
}

void
ShardPool::workerFailed(Worker* w, std::vector<int>* requeue,
                        std::vector<int>* attempts)
{
    if (w->batch >= 0)
        warn("shard: worker ", w->pid,
             " died mid-batch; requeueing its batch");
    else
        warn("shard: worker ", w->pid, " died");
    if (w->fd >= 0)
        ::close(w->fd);
    w->fd = -1;
    reap(w);
    w->alive = false;
    if (w->batch >= 0) {
        const int id = w->batch;
        w->batch = -1;
        if (++(*attempts)[static_cast<std::size_t>(id)] >= 3)
            fatal("shard: batch ", id,
                  " failed on every worker that tried it");
        requeue->push_back(id);
    }
}

std::vector<std::vector<std::size_t>>
ShardPool::splitIndices(std::size_t count) const
{
    // Deterministic index-ordered batches, sized for dynamic balance
    // (~4 batches per worker, so a slow batch doesn't serialize the
    // tail). Assignment to workers is load-driven and nondeterministic
    // — merge-by-index keeps the emitted bytes independent of it.
    const std::size_t batchSize = std::max<std::size_t>(
        1,
        (count + options_.workers * 4 - 1) / (options_.workers * 4));
    std::vector<std::vector<std::size_t>> spans;
    for (std::size_t i = 0; i < count; i += batchSize) {
        std::vector<std::size_t> span;
        for (std::size_t k = i; k < std::min(i + batchSize, count);
             ++k)
            span.push_back(k);
        spans.push_back(std::move(span));
    }
    return spans;
}

void
ShardPool::evaluate(const std::vector<std::size_t>& slots,
                    const ResultFn& onResult)
{
    if (slots.empty())
        return;
    std::vector<PendingBatch> batches;
    for (const std::vector<std::size_t>& span :
         splitIndices(slots.size())) {
        PendingBatch b;
        Json status = okStatus("batch");
        status["id"] = batches.size();
        Json body = Json::object();
        Json list = Json::array();
        for (std::size_t k : span) {
            b.items.push_back(slots[k]);
            list.push(slots[k]);
        }
        body["slots"] = std::move(list);
        b.frame = frameMessage(std::move(status), body.dump());
        batches.push_back(std::move(b));
    }
    runBatches(batches, onResult);
}

void
ShardPool::evaluatePoints(const std::vector<WirePoint>& points,
                          const ResultFn& onResult)
{
    if (points.empty())
        return;
    std::vector<PendingBatch> batches;
    for (const std::vector<std::size_t>& span :
         splitIndices(points.size())) {
        PendingBatch b;
        Json status = okStatus("eval");
        status["id"] = batches.size();
        std::vector<WirePoint> chunk;
        for (std::size_t k : span) {
            b.items.push_back(points[k].index);
            chunk.push_back(points[k]);
        }
        b.frame = frameMessage(std::move(status),
                               evalPayloadJson(chunk).dump());
        batches.push_back(std::move(b));
    }
    runBatches(batches, onResult);
}

void
ShardPool::runBatches(std::vector<PendingBatch>& batches,
                      const ResultFn& onResult)
{
    std::deque<int> queue;
    for (std::size_t i = 0; i < batches.size(); ++i)
        queue.push_back(static_cast<int>(i));
    std::vector<int> attempts(batches.size(), 0);
    std::vector<int> requeue;
    std::size_t doneBatches = 0;

    auto handleResult = [&](Worker& w, const Frame& frame) {
        if (frameOp(frame, "shard") != "result")
            fatal("shard: unexpected frame ", frame.status.dump());
        const int id =
            static_cast<int>(frame.status.at("id").asNumber());
        if (id != w.batch)
            fatal("shard: result for batch ", id, " from a worker on ",
                  w.batch);
        PendingBatch& batch = batches[static_cast<std::size_t>(id)];
        const Json body = Json::parse(frame.payload);
        const Json::Array& results = body.at("results").items();
        if (results.size() != batch.items.size())
            fatal("shard: batch ", id, " returned ", results.size(),
                  " results for ", batch.items.size(), " items");
        for (std::size_t k = 0; k < results.size(); ++k) {
            const Json& entry = results[k];
            const auto slot = static_cast<std::size_t>(
                entry.at("slot").asNumber());
            if (slot != batch.items[k])
                fatal("shard: batch ", id, " result ", k,
                      " is for item ", slot, ", expected ",
                      batch.items[k]);
            PointStatus status;
            LibraReport report;
            if (entry.at("ok").asBool()) {
                status.ok = true;
                report = reportFromJson(entry.at("report"));
            } else {
                status.ok = false;
                status.error = entry.at("error").asString();
            }
            onResult(slot, std::move(status), std::move(report));
        }
        batch.done = true;
        ++doneBatches;
        w.batch = -1;
    };

    while (doneBatches < batches.size()) {
        // Requeued batches jump the line: they were dispatched first,
        // and downstream progress may be waiting on them.
        for (int id : requeue)
            queue.push_front(id);
        requeue.clear();

        // Dispatch to every idle live worker.
        for (Worker& w : workers_) {
            if (!w.alive || w.batch >= 0 || queue.empty())
                continue;
            const int id = queue.front();
            if (!sendAllFd(
                    w.fd,
                    batches[static_cast<std::size_t>(id)].frame)) {
                workerFailed(&w, &requeue, &attempts);
                continue;
            }
            queue.pop_front();
            w.batch = id;
        }
        if (!requeue.empty())
            continue; // A send failed; re-dispatch before polling.

        std::vector<pollfd> fds;
        std::vector<std::size_t> fdWorker;
        for (std::size_t i = 0; i < workers_.size(); ++i) {
            if (workers_[i].alive && workers_[i].batch >= 0) {
                fds.push_back(pollfd{workers_[i].fd, POLLIN, 0});
                fdWorker.push_back(i);
            }
        }
        if (fds.empty()) {
            if (doneBatches < batches.size())
                fatal("shard: every worker died with ",
                      batches.size() - doneBatches,
                      " batches outstanding");
            break;
        }
        if (::poll(fds.data(), fds.size(), -1) < 0) {
            if (errno == EINTR)
                continue;
            fatal("shard: poll failed: ", std::strerror(errno));
        }
        for (std::size_t j = 0; j < fds.size(); ++j) {
            if (fds[j].revents == 0)
                continue;
            Worker& w = workers_[fdWorker[j]];
            char buf[65536];
            ssize_t n = ::recv(w.fd, buf, sizeof(buf), 0);
            if (n < 0 && errno == EINTR)
                continue;
            if (n <= 0) {
                workerFailed(&w, &requeue, &attempts);
                continue;
            }
            w.buffer.append(buf, static_cast<std::size_t>(n));
            while (std::optional<Frame> frame = w.buffer.next())
                handleResult(w, *frame);
        }
    }
}

void
ShardPool::shutdown()
{
    for (Worker& w : workers_) {
        if (!w.alive)
            continue;
        // Best-effort exit op; EOF from the close() is what actually
        // guarantees the worker leaves.
        sendAllFd(w.fd, frameMessage(okStatus("exit"), ""));
        ::close(w.fd);
        w.fd = -1;
        reap(&w);
        w.alive = false;
    }
}

// ---------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------

namespace {

/**
 * Blocking read of one frame from fd 0.
 * @return false on clean EOF at a frame boundary (master gone or done
 * — either way the worker's job is over).
 */
bool
readWorkerFrame(FrameBuffer& buffer, Frame* out)
{
    for (;;) {
        if (std::optional<Frame> frame = buffer.next()) {
            *out = std::move(*frame);
            return true;
        }
        char buf[4096];
        ssize_t n = ::recv(0, buf, sizeof(buf), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n == 0) {
            if (buffer.pending() != 0)
                fatal("worker: master closed mid-frame");
            return false;
        }
        if (n < 0)
            fatal("worker: recv failed: ", std::strerror(errno));
        buffer.append(buf, static_cast<std::size_t>(n));
    }
}

} // namespace

int
runShardWorker()
{
    // stdout is the protocol channel; keep chatty status off it and
    // make a vanished master an error return, not a SIGPIPE death.
    ::signal(SIGPIPE, SIG_IGN);
    setInformEnabled(false);

    FrameBuffer buffer("worker");
    try {
        Frame init;
        if (!readWorkerFrame(buffer, &init))
            return 0;
        if (frameOp(init, "worker") != "init")
            fatal("worker: expected init, got ", init.status.dump());
        const Json config = Json::parse(init.payload);

        std::vector<std::string> names;
        for (const Json& n : config.at("scenarios").items())
            names.push_back(n.asString());
        MatrixOptions options;
        for (const Json& n : config.at("solver").items())
            options.solverPipeline.push_back(n.asString());
        options.timingBackend = config.at("backend").asString();
        options.exploreSpec = config.at("explore").asString();
        ThreadPool::setGlobalThreads(static_cast<std::size_t>(
            config.at("threads").asNumber()));

        // Rebuild the master's shared batch and slot map from the
        // recipe; the fingerprint lets the master verify the rebuild.
        const std::vector<LibraInputs> points =
            buildMatrixSharedBatch(names, options);
        const SlotMap map = buildSlotMap(points);

        Json ready = Json::object();
        ready["slots"] = map.slots();
        ready["fingerprint"] = slotMapFingerprint(map);
        if (!sendAllFd(1, frameMessage(okStatus("ready"),
                                       ready.dump())))
            return 1;

        Frame frame;
        while (readWorkerFrame(buffer, &frame)) {
            const std::string op = frameOp(frame, "worker");
            if (op == "exit")
                return 0;
            if (op != "batch" && op != "eval")
                fatal("worker: unexpected op '", op, "'");
            const Json request = Json::parse(frame.payload);

            std::vector<std::size_t> items;
            std::vector<LibraInputs> batch;
            if (op == "batch") {
                for (const Json& s : request.at("slots").items()) {
                    const auto slot =
                        static_cast<std::size_t>(s.asNumber());
                    if (slot >= map.slots())
                        fatal("worker: slot ", slot,
                              " out of range (", map.slots(),
                              " slots)");
                    items.push_back(slot);
                    batch.push_back(points[map.slotRep[slot]]);
                }
            } else {
                // Serialized design points: reparse each and verify
                // its canonical-key hash, so a version-skewed build
                // is rejected exactly like a fingerprint mismatch in
                // the handshake.
                for (const WirePoint& wp : parseEvalPayload(request)) {
                    LibraInputs p = parseStudyConfigString(wp.text);
                    const std::string key = pointWireKey(p);
                    if (key != wp.key)
                        fatal("worker: eval point ", wp.index,
                              " key mismatch (reparse ", key,
                              ", frame ", wp.key,
                              ") — worker executable out of sync?");
                    items.push_back(wp.index);
                    batch.push_back(std::move(p));
                }
            }
            // Per-point isolation mirrors the in-process sweep: a
            // failing point becomes a status, never a dead worker.
            SweepOutcome outcome = runLibraSweepIsolated(batch);

            Json results = Json::array();
            for (std::size_t k = 0; k < items.size(); ++k) {
                Json entry = Json::object();
                entry["slot"] = items[k];
                entry["ok"] = outcome.status[k].ok;
                if (outcome.status[k].ok)
                    entry["report"] = reportToJson(outcome.reports[k]);
                else
                    entry["error"] = outcome.status[k].error;
                results.push(std::move(entry));
            }
            Json body = Json::object();
            body["results"] = std::move(results);
            Json status = okStatus("result");
            status["id"] = frame.status.at("id");
            if (!sendAllFd(1, frameMessage(std::move(status),
                                           body.dump())))
                return 1; // Master gone; nothing left to do.
        }
        return 0;
    } catch (const FatalError& e) {
        // Tell the master why (best effort), then die loudly enough
        // for its requeue/abort logic to see.
        sendAllFd(1, frameErrorMessage(stripFatalPrefix(e.what())));
        std::fprintf(stderr, "shard worker: %s\n", e.what());
        return 1;
    }
}

} // namespace libra
