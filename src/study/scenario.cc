#include "study/scenario.hh"

#include "common/logging.hh"

namespace libra {

ScenarioRegistry&
ScenarioRegistry::global()
{
    static ScenarioRegistry* registry = [] {
        auto* r = new ScenarioRegistry();
        registerBuiltinScenarios(*r);
        return r;
    }();
    return *registry;
}

void
ScenarioRegistry::add(Scenario scenario)
{
    if (scenario.name.empty())
        fatal("scenario has no name");
    if (!scenario.format)
        fatal("scenario '", scenario.name, "' has no formatter");
    if (find(scenario.name))
        fatal("duplicate scenario '", scenario.name, "'");
    scenarios_.push_back(std::move(scenario));
}

const Scenario*
ScenarioRegistry::find(const std::string& name) const
{
    for (const auto& s : scenarios_) {
        if (s.name == name)
            return &s;
    }
    return nullptr;
}

std::vector<std::string>
ScenarioRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(scenarios_.size());
    for (const auto& s : scenarios_)
        out.push_back(s.name);
    return out;
}

const std::vector<std::string>&
goldenScenarioNames()
{
    static const std::vector<std::string> names{"tbl1", "fig10", "fig13",
                                               "fig14"};
    return names;
}

} // namespace libra
