#include "study/scenario.hh"

#include "common/logging.hh"

namespace libra {

ScenarioRegistry&
ScenarioRegistry::global()
{
    static ScenarioRegistry* registry = [] {
        auto* r = new ScenarioRegistry();
        registerBuiltinScenarios(*r);
        return r;
    }();
    return *registry;
}

void
ScenarioRegistry::add(Scenario scenario)
{
    if (scenario.name.empty())
        fatal("scenario has no name");
    if (scenario.space) {
        if (scenario.build || scenario.format)
            fatal("scenario '", scenario.name, "' declares both a "
                  "design space and a hand-built point list");
        if (!scenario.formatSpace)
            fatal("scenario '", scenario.name,
                  "' has a design space but no formatSpace");
        canonicalExploreSpec(scenario.explore); // Validate.
    } else if (!scenario.format) {
        fatal("scenario '", scenario.name, "' has no formatter");
    }
    if (find(scenario.name))
        fatal("duplicate scenario '", scenario.name, "'");
    scenarios_.push_back(std::move(scenario));
}

const Scenario*
ScenarioRegistry::find(const std::string& name) const
{
    for (const auto& s : scenarios_) {
        if (s.name == name)
            return &s;
    }
    return nullptr;
}

std::vector<std::string>
ScenarioRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(scenarios_.size());
    for (const auto& s : scenarios_)
        out.push_back(s.name);
    return out;
}

std::vector<std::string>
expandScenarioGroups(const std::vector<std::string>& names)
{
    std::vector<std::string> out;
    for (const auto& name : names) {
        if (name == "all") {
            for (const auto& n : ScenarioRegistry::global().names())
                out.push_back(n);
        } else if (name == "golden") {
            for (const auto& n : goldenScenarioNames())
                out.push_back(n);
        } else {
            out.push_back(name);
        }
    }
    return out;
}

const std::vector<std::string>&
goldenScenarioNames()
{
    // fig16/fig21 joined the set when they moved onto the explore
    // layer: their golden files were generated from the pre-refactor
    // hand enumeration, so the suite pins that the exhaustive
    // design-space expansion reproduces the historical rows exactly.
    static const std::vector<std::string> names{
        "tbl1", "fig10", "fig13", "fig14", "fig16", "fig21"};
    return names;
}

} // namespace libra
