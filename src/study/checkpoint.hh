/**
 * @file
 * Resumable checkpoint manifest for long matrix runs
 * (docs/SHARDING.md).
 *
 * The manifest is an append-only text file: a `libra-checkpoint-v1`
 * header line, then one 16-hex content-hash line per completed slot
 * (the same `studyCacheHashOfKey` value that names the slot's
 * ResultCache file). Every append is fsynced, so the set of recorded
 * slots survives a `kill -9` at any instant: a slot's hash is written
 * only *after* its report was stored to the result cache, which keeps
 * the invariant manifest ⊆ cache — a recorded slot can always be
 * served without recomputation on resume.
 *
 * Entries are content-addressed, so a manifest is self-describing:
 * resuming with a different scenario list, or against a different
 * cache, is harmless — hashes that match nothing simply never come up,
 * and stale entries cannot alias new work. A recorded slot that misses
 * the cache on resume (cache wiped, or a degraded store) is only a
 * warning: it is recomputed, costing work but never correctness.
 *
 * Crash tolerance on load: a torn final line (the write raced the
 * kill) is skipped with a warning; a non-empty file whose first line
 * is not the header is rejected with fatal() so a mistyped path can
 * never clobber an unrelated file.
 */

#ifndef LIBRA_STUDY_CHECKPOINT_HH
#define LIBRA_STUDY_CHECKPOINT_HH

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_set>

namespace libra {

/** Append-only, fsynced completed-slot manifest; see file comment. */
class CheckpointLog
{
  public:
    /**
     * Open (or create) the manifest at @p path and load every
     * previously recorded hash.
     * @throws FatalError when the file exists but is not a manifest,
     * or cannot be opened for appending.
     */
    explicit CheckpointLog(const std::string& path);
    ~CheckpointLog();

    CheckpointLog(const CheckpointLog&) = delete;
    CheckpointLog& operator=(const CheckpointLog&) = delete;

    /** Was @p hash recorded (by this run or a previous one)? */
    bool contains(std::uint64_t hash) const;

    /**
     * Record @p hash as completed: append one line and fsync before
     * returning. Idempotent — a hash already present is not rewritten.
     * I/O failure degrades to warn() (the run continues; only
     * resumability is lost), per the cache failure taxonomy.
     */
    void append(std::uint64_t hash);

    /** Hashes loaded from a pre-existing manifest at open. */
    std::size_t resumedSlots() const { return resumed_; }

    const std::string& path() const { return path_; }

  private:
    std::string path_;
    int fd_ = -1;
    std::size_t resumed_ = 0;
    mutable std::mutex mutex_;
    std::unordered_set<std::uint64_t> done_;
};

} // namespace libra

#endif // LIBRA_STUDY_CHECKPOINT_HH
