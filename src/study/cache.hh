/**
 * @file
 * Content-addressed result cache for design-study points.
 *
 * A study point is cached under a key derived from the *content* of its
 * LibraInputs — everything that can influence the resulting LibraReport:
 * the canonicalized network shape, budget/objective/loop/constraint
 * configuration, search options (including a non-default SOLVER
 * pipeline, appended next to the search block so default-pipeline keys
 * are unchanged), a non-default timing BACKEND (same only-when-set
 * rule — registered backends are deterministic, so their name is
 * sufficient content), a non-default EXPLORE strategy (same rule; the
 * canonical spec with its non-default parameters is the tag), the
 * full cost model, and the complete workload
 * IR of every target (not just names — programmatic scenarios build
 * workloads with custom strategies). Fields that provably do not
 * affect results are excluded: `threads` and `search.parallel` (the
 * engine's determinism contract guarantees bit-identical results at any
 * thread count).
 *
 * Key = FNV-1a 64-bit over the canonical text, salted with
 * kStudyCacheVersion. Bump the version whenever estimator, optimizer,
 * or solver *semantics* change (anything that would alter a report for
 * identical inputs); stale entries are then simply never hit again.
 *
 * Storage is one JSON file per key in the cache directory, wrapped in
 * an FNV-checksummed envelope `{"fnv": <hex>, "body": {...}}`. Reports
 * round-trip bit-exactly (shortest round-trip double formatting), so a
 * matrix run served from cache emits byte-identical output to the run
 * that populated it.
 *
 * The cache is strictly best-effort and self-healing
 * (docs/ROBUSTNESS.md): it may only ever amortize work, never break or
 * alter a run. Corrupt, truncated, or version-skewed entries are
 * quarantined to `<name>.corrupt` and recomputed; stale
 * `.tmp.<pid>.<seq>` files left by crashed runs are reaped when the
 * cache opens; store
 * I/O retries with bounded backoff and then degrades to a warning; an
 * uncreatable cache directory disables the cache instead of aborting.
 *
 * Points with a custom commTimeFn are not cacheable (a std::function
 * has no canonical content) — callers must skip the cache for them.
 * Points selecting a named timing backend ARE cacheable: the name is
 * the content, exactly like a solver-pipeline selection.
 */

#ifndef LIBRA_STUDY_CACHE_HH
#define LIBRA_STUDY_CACHE_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/json.hh"
#include "core/framework.hh"

namespace libra {

/** Bump when a semantic change invalidates previously cached reports. */
constexpr std::uint32_t kStudyCacheVersion = 1;

/**
 * Canonical text form of everything result-relevant in @p inputs.
 * @throws FatalError for inputs with a custom commTimeFn.
 */
std::string canonicalStudyKey(const LibraInputs& inputs);

/** True when @p inputs can be cached (no custom commTimeFn). */
bool studyPointCacheable(const LibraInputs& inputs);

/** FNV-1a over an already canonicalized key text. */
std::uint64_t studyCacheHashOfKey(const std::string& canonical);

/** FNV-1a hash of the canonical key, salted with kStudyCacheVersion. */
std::uint64_t studyCacheHash(const LibraInputs& inputs);

/** Bit-exact JSON round-trip of a LibraReport. */
Json reportToJson(const LibraReport& report);
LibraReport reportFromJson(const Json& json);

/**
 * Pluggable study-point store consumed by the matrix runner's cached
 * sweep. ResultCache is the plain disk implementation; the serve
 * subsystem layers an in-memory LRU and single-flight dedup on top
 * (src/serve/, docs/SERVE.md) behind this same seam.
 *
 * Beyond load/store, the interface carries the *single-flight* hooks
 * the sweep calls around computing a missed point:
 *
 *  - claimCompute() asks who computes a missed key. A plain store
 *    always answers Owned (the caller computes, as it always has). A
 *    coordinating store may answer Shared (another thread is already
 *    computing this key; call awaitCompute() to block for its result)
 *    or Cached (the result landed between the load miss and the claim;
 *    it is returned immediately).
 *  - Every Owned claim must be resolved with exactly one
 *    publishCompute() — successes and failures alike — so waiters can
 *    never block forever. Evaluation is deterministic, so sharing a
 *    failure is bit-identical to recomputing it.
 *
 * All methods must be safe to call from concurrent sweeps.
 */
class StudyStore
{
  public:
    /** Who computes a missed key (see class comment). */
    enum class Claim
    {
        Owned,  ///< Caller computes and must publish exactly once.
        Shared, ///< Another thread computes; await its result.
        Cached, ///< Result arrived since the load miss; outputs filled.
    };

    virtual ~StudyStore() = default;

    /** Load the report cached under @p key / @p canonical; hit/miss. */
    virtual bool load(std::uint64_t key, const std::string& canonical,
                      LibraReport* out) = 0;

    /** Store @p report under @p key; false when not published. */
    virtual bool store(std::uint64_t key, const std::string& canonical,
                       const LibraReport& report) = 0;

    /** Claim computation of a missed @p canonical key. */
    virtual Claim
    claimCompute(const std::string& canonical, PointStatus* status,
                 LibraReport* report)
    {
        (void)canonical;
        (void)status;
        (void)report;
        return Claim::Owned;
    }

    /** Resolve an Owned claim (ok or failed); wakes any waiters. */
    virtual void
    publishCompute(const std::string& canonical,
                   const PointStatus& status, const LibraReport& report)
    {
        (void)canonical;
        (void)status;
        (void)report;
    }

    /** Block for the owner's result of a Shared claim. */
    virtual void awaitCompute(const std::string& canonical,
                              PointStatus* status, LibraReport* report);
};

/**
 * One-file-per-key report store under a directory.
 *
 * Safe for concurrent readers and writers: per-key-sharded mutexes
 * serialize same-key file I/O within the process, the self-healing
 * counters are atomic, and tmp files carry a per-writer
 * `.tmp.<pid>.<seq>` suffix so two threads storing the same key can
 * never interleave writes into one tmp file (cross-process safety
 * still comes from write-then-rename).
 */
class ResultCache : public StudyStore
{
  public:
    /** Counters of the self-healing machinery, exposed for tests. */
    struct Stats
    {
        std::size_t reapedTmp = 0;      ///< Stale tmp files removed.
        std::size_t quarantined = 0;    ///< Entries moved to .corrupt.
        std::size_t loadFailures = 0;   ///< Unreadable entries (I/O).
        std::size_t storeFailures = 0;  ///< Stores lost after retries.
        std::size_t collisions = 0;     ///< 64-bit key collisions seen.
    };

    /**
     * Opens (and creates if needed) @p dir, reaping stale
     * `.tmp.<pid>.<seq>` files whose owning process is gone. An
     * uncreatable directory
     * warns and disables the cache (every load misses, every store
     * no-ops) instead of aborting — the cache is best-effort.
     * @throws FatalError only on an empty @p dir (caller bug).
     */
    explicit ResultCache(std::string dir);

    const std::string& dir() const { return dir_; }

    /** False when the directory could not be created/opened. */
    bool enabled() const { return enabled_; }

    /**
     * Load the report cached under @p key. The entry's stored
     * canonical input text must equal @p canonical — a 64-bit hash is
     * not collision-resistant, so identity is always re-verified on
     * load (a mismatch is treated as a miss and warned about).
     * Corrupt, truncated, checksum-mismatched, or version-skewed
     * entries are quarantined to `<name>.corrupt` and reported as
     * misses; unreadable files warn and miss. Never throws for any
     * file content.
     * @return hit/miss.
     */
    bool load(std::uint64_t key, const std::string& canonical,
              LibraReport* out) override;

    /**
     * Store @p report under @p key with its canonical input text
     * (write-then-rename, FNV-checksummed envelope). Transient I/O
     * failures retry with bounded backoff; a store that still fails
     * warns and returns false — it never aborts the run.
     * @return true when the entry was published.
     */
    bool store(std::uint64_t key, const std::string& canonical,
               const LibraReport& report) override;

    /** Snapshot of the self-healing counters since the cache opened. */
    Stats stats() const;

  private:
    /** Lock arity for same-key I/O serialization (power of two). */
    static constexpr std::size_t kShards = 16;

    std::string path(std::uint64_t key) const;
    std::mutex& shard(std::uint64_t key) { return shards_[key % kShards]; }
    void reapStaleTmp();
    void quarantine(const std::string& file, const std::string& why);

    std::string dir_;
    bool enabled_ = true;

    /** Per-key-shard mutexes serializing same-key file I/O. */
    std::array<std::mutex, kShards> shards_;

    /** Atomic twins of Stats (concurrent sweeps bump them freely). */
    std::atomic<std::size_t> reapedTmp_{0};
    std::atomic<std::size_t> quarantined_{0};
    std::atomic<std::size_t> loadFailures_{0};
    std::atomic<std::size_t> storeFailures_{0};
    std::atomic<std::size_t> collisions_{0};
};

} // namespace libra

#endif // LIBRA_STUDY_CACHE_HH
