/**
 * @file
 * Network dollar-cost model (paper §IV-D, Table I, Fig. 12).
 *
 * The user supplies $/GBps prices for links, switches, and NICs at each
 * physical level; LIBRA prices a network as
 *
 *   cost = N_npus * sum_i  Bi * (link_i + switch_i*[dim i is SW]
 *                                       + nic_i*[dim i is Pod])
 *
 * which matches the worked example of Fig. 12: a 3-NPU inter-Pod switch
 * network at 10 GB/s costs 3*(7.8 + 18.0 + 31.6)*10 = $1,722. Inter-Chiplet
 * dimensions are always peer-to-peer, so they never pay a switch price, and
 * only the Pod (scale-out) dimension pays for NICs.
 */

#ifndef LIBRA_COST_COST_MODEL_HH
#define LIBRA_COST_COST_MODEL_HH

#include <map>
#include <string>
#include <vector>

#include "common/units.hh"
#include "topology/network.hh"

namespace libra {

/** $/GBps prices of the components at one physical level. */
struct ComponentCost
{
    double link = 0.0;    ///< Per-NPU link capacity price.
    double switch_ = 0.0; ///< Switch port capacity price (SW dims only).
    double nic = 0.0;     ///< NIC price (Pod level only).
};

/** Per-dimension cost breakdown for reporting. */
struct DimCostBreakdown
{
    std::size_t dim = 0;
    PhysicalLevel level = PhysicalLevel::Pod;
    Dollars linkCost = 0.0;
    Dollars switchCost = 0.0;
    Dollars nicCost = 0.0;

    Dollars total() const { return linkCost + switchCost + nicCost; }
};

/**
 * User-configurable dollar-cost model keyed by physical level.
 */
class CostModel
{
  public:
    /** All-zero model; set prices via setLevelCost(). */
    CostModel() = default;

    /**
     * The paper's default model: the lowest value of each Table I entry.
     *   Chiplet {2.0, -, -}, Package {4.0, 13.0, -},
     *   Node {4.0, 13.0, -}, Pod {7.8, 18.0, 31.6}.
     */
    static CostModel defaultModel();

    /** Override the component prices at one level. */
    void setLevelCost(PhysicalLevel level, ComponentCost cost);

    /** Component prices at one level (zeros if never set). */
    ComponentCost levelCost(PhysicalLevel level) const;

    /**
     * Effective $/GBps per NPU for one network dimension, including the
     * switch term when the dimension is switch-based (never at Chiplet
     * level, where connectivity is always peer-to-peer) and the NIC term
     * at Pod level.
     */
    double dollarPerGBps(const NetworkDim& dim) const;

    /** Total network cost for @p net under bandwidth config @p bw. */
    Dollars networkCost(const Network& net, const BwConfig& bw) const;

    /** Per-dimension component breakdown of networkCost(). */
    std::vector<DimCostBreakdown>
    breakdown(const Network& net, const BwConfig& bw) const;

  private:
    std::map<PhysicalLevel, ComponentCost> levels_;
};

/**
 * Append a canonical text form of every level's component prices to
 * @p out (fixed level order, shortest round-trip doubles). The single
 * source of truth for cost-model content identity: the study result
 * cache keys on it and costModelsEqual compares it.
 */
void appendCanonicalText(std::string& out, const CostModel& model);

/** Deep content equality via canonical text. */
bool costModelsEqual(const CostModel& a, const CostModel& b);

} // namespace libra

#endif // LIBRA_COST_COST_MODEL_HH
