#include "cost/cost_model.hh"

#include "common/json.hh"
#include "common/logging.hh"

namespace libra {

CostModel
CostModel::defaultModel()
{
    CostModel m;
    m.setLevelCost(PhysicalLevel::Chiplet, {2.0, 0.0, 0.0});
    m.setLevelCost(PhysicalLevel::Package, {4.0, 13.0, 0.0});
    m.setLevelCost(PhysicalLevel::Node, {4.0, 13.0, 0.0});
    m.setLevelCost(PhysicalLevel::Pod, {7.8, 18.0, 31.6});
    return m;
}

void
CostModel::setLevelCost(PhysicalLevel level, ComponentCost cost)
{
    levels_[level] = cost;
}

ComponentCost
CostModel::levelCost(PhysicalLevel level) const
{
    auto it = levels_.find(level);
    return it == levels_.end() ? ComponentCost{} : it->second;
}

double
CostModel::dollarPerGBps(const NetworkDim& dim) const
{
    ComponentCost c = levelCost(dim.level);
    double rate = c.link;
    // Chiplets are always connected peer-to-peer (paper §IV-D), so a
    // switch never appears at Chiplet level even for SW-notation dims.
    // A hierarchy within the dimension (Fig. 4b) buys one layer of
    // switch ports per level without adding parallel connectivity.
    if (needsSwitch(dim.type) && dim.level != PhysicalLevel::Chiplet)
        rate += c.switch_ * dim.switchLevels;
    if (dim.level == PhysicalLevel::Pod)
        rate += c.nic;
    return rate;
}

Dollars
CostModel::networkCost(const Network& net, const BwConfig& bw) const
{
    if (bw.size() != net.numDims()) {
        panic("bw config rank ", bw.size(), " != network dims ",
              net.numDims());
    }
    double perNpu = 0.0;
    for (std::size_t i = 0; i < net.numDims(); ++i)
        perNpu += dollarPerGBps(net.dim(i)) * bw[i];
    return perNpu * static_cast<double>(net.npus());
}

std::vector<DimCostBreakdown>
CostModel::breakdown(const Network& net, const BwConfig& bw) const
{
    std::vector<DimCostBreakdown> out;
    double npus = static_cast<double>(net.npus());
    for (std::size_t i = 0; i < net.numDims(); ++i) {
        const NetworkDim& d = net.dim(i);
        ComponentCost c = levelCost(d.level);
        DimCostBreakdown b;
        b.dim = i;
        b.level = d.level;
        b.linkCost = c.link * bw[i] * npus;
        if (needsSwitch(d.type) && d.level != PhysicalLevel::Chiplet)
            b.switchCost = c.switch_ * d.switchLevels * bw[i] * npus;
        if (d.level == PhysicalLevel::Pod)
            b.nicCost = c.nic * bw[i] * npus;
        out.push_back(b);
    }
    return out;
}

void
appendCanonicalText(std::string& out, const CostModel& model)
{
    for (PhysicalLevel level :
         {PhysicalLevel::Chiplet, PhysicalLevel::Package,
          PhysicalLevel::Node, PhysicalLevel::Pod}) {
        ComponentCost c = model.levelCost(level);
        out += jsonNumberToString(c.link);
        out += ' ';
        out += jsonNumberToString(c.switch_);
        out += ' ';
        out += jsonNumberToString(c.nic);
        out += ' ';
    }
}

bool
costModelsEqual(const CostModel& a, const CostModel& b)
{
    std::string ta, tb;
    appendCanonicalText(ta, a);
    appendCanonicalText(tb, b);
    return ta == tb;
}

} // namespace libra
