#include "core/optimizer.hh"

#include "common/logging.hh"
#include "solver/qp.hh"
#include "solver/water_fill.hh"

namespace libra {

BwOptimizer::BwOptimizer(Network net, CostModel cost_model)
    : net_(std::move(net)), costModel_(std::move(cost_model))
{}

ConstraintSet
BwOptimizer::buildConstraints(const OptimizerConfig& config) const
{
    ConstraintSet cs(net_.numDims());
    // Both schemes allocate the full per-NPU budget across dimensions
    // (the paper's problem statement: distribute a given BW resource).
    // PerfPerCost differs in *where* the bandwidth goes, not how much is
    // bought — which is why its speedup can drop below 1 while its
    // perf-per-cost rises. relaxTotalBw turns the budget into a ceiling
    // for dollar-capped (iso-cost) studies.
    Relation rel = config.relaxTotalBw ? Relation::Le : Relation::Eq;
    cs.addTotalBw(config.totalBw, rel);
    cs.addLowerBounds(config.minDimBw);
    for (const auto& text : config.constraints)
        cs.addParsed(text);
    if (config.budgetCap > 0.0) {
        // Dollar cap is linear in B: sum_i rate_i * Bi * npus <= cap.
        Vec coeffs(net_.numDims());
        for (std::size_t i = 0; i < net_.numDims(); ++i) {
            coeffs[i] = costModel_.dollarPerGBps(net_.dim(i)) *
                        static_cast<double>(net_.npus());
        }
        cs.add(coeffs, Relation::Le, config.budgetCap, "dollar-cap");
    }
    return cs;
}

OptimizationResult
BwOptimizer::evaluate(const BwConfig& bw,
                      const std::vector<TargetWorkload>& targets,
                      const OptimizerConfig& config) const
{
    TrainingEstimator estimator(net_, config.estimator);
    OptimizationResult r;
    r.bw = bw;
    r.cost = costModel_.networkCost(net_, bw);
    r.weightedTime = weightedTime(estimator, targets, bw);
    for (const auto& target : targets)
        r.perWorkloadTime.push_back(estimator.estimate(target.workload,
                                                       bw));
    auto f = makeObjective(config.objective, estimator, costModel_,
                           targets);
    r.objectiveValue = f(bw);
    return r;
}

OptimizationResult
BwOptimizer::baseline(const std::vector<TargetWorkload>& targets,
                      const OptimizerConfig& config) const
{
    return evaluate(net_.equalBw(config.totalBw), targets, config);
}

OptimizationResult
BwOptimizer::optimize(const std::vector<TargetWorkload>& targets,
                      const OptimizerConfig& config) const
{
    if (targets.empty())
        fatal("optimizer needs at least one target workload");

    TrainingEstimator estimator(net_, config.estimator);
    auto f = makeObjective(config.objective, estimator, costModel_,
                           targets);
    ConstraintSet cs = buildConstraints(config);

    MultistartOptions search = config.search;
    // The pure-performance objective is convex, so subgradient leads
    // in the default chain; an explicit SOLVER pipeline overrides the
    // chain toggles entirely.
    if (search.pipeline.empty())
        search.useSubgradient = true;
    // An ad-hoc commTimeFn may carry internal state the pool would
    // race on, so it serializes the search. Registered timing
    // backends promise thread safety (core/timing_backend.hh) and
    // keep the parallel fan-out. Results are identical either way.
    if (config.estimator.commTimeFn)
        search.parallel = false;

    // Warm start: size each dimension proportionally to the busy time
    // it accrues under EqualBW — the single-collective closed form,
    // which is near-optimal for collective-dominated workloads.
    Vec hint = net_.equalBw(config.totalBw);
    Vec busy(net_.numDims(), 0.0);
    for (const auto& target : targets) {
        EstimateDetail d = estimator.detail(target.workload, hint);
        for (std::size_t i = 0; i < busy.size(); ++i)
            busy[i] += target.weight * d.dimBusy[i];
    }
    double totalBusy = 0.0;
    for (double b : busy)
        totalBusy += b;
    if (totalBusy > 0.0) {
        hint = proportionalAllocation(busy, config.totalBw,
                                      config.minDimBw);
    }
    SearchResult best = multistartMinimize(f, cs, hint, search);

    // The EqualBW point is always a feasible candidate; never report a
    // design worse than the straw-person.
    Vec equal = net_.equalBw(config.totalBw);
    if (cs.feasible(equal, 1e-9) && f(equal) < best.value)
        best.x = equal;

    return evaluate(best.x, targets, config);
}

} // namespace libra
