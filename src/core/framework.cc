#include "core/framework.hh"

#include "common/logging.hh"

namespace libra {

LibraReport
runLibra(const LibraInputs& inputs)
{
    Network net = Network::parse(inputs.networkShape);
    BwOptimizer optimizer(net, inputs.costModel);

    std::vector<TargetWorkload> targets = inputs.targets;
    if (inputs.normalizeTargetWeights) {
        TrainingEstimator estimator(net, inputs.config.estimator);
        targets = normalizeWeights(estimator, std::move(targets),
                                   inputs.config.totalBw);
    }

    LibraReport report;
    report.equalBw = optimizer.baseline(targets, inputs.config);
    report.optimized = optimizer.optimize(targets, inputs.config);

    if (report.optimized.weightedTime > 0.0) {
        report.speedup =
            report.equalBw.weightedTime / report.optimized.weightedTime;
    }
    double optRecip =
        report.optimized.weightedTime * report.optimized.cost;
    double eqRecip = report.equalBw.weightedTime * report.equalBw.cost;
    if (optRecip > 0.0)
        report.perfPerCostGain = eqRecip / optRecip;
    return report;
}

} // namespace libra
