#include "core/framework.hh"

#include "common/logging.hh"
#include "common/thread_pool.hh"

namespace libra {

namespace {

/** One study point, with the pool left alone (sweeps own the pool). */
LibraReport
runLibraPoint(const LibraInputs& inputs)
{
    Network net = Network::parse(inputs.networkShape);
    BwOptimizer optimizer(net, inputs.costModel);

    std::vector<TargetWorkload> targets = inputs.targets;
    if (inputs.normalizeTargetWeights) {
        TrainingEstimator estimator(net, inputs.config.estimator);
        targets = normalizeWeights(estimator, std::move(targets),
                                   inputs.config.totalBw);
    }

    LibraReport report;
    report.equalBw = optimizer.baseline(targets, inputs.config);
    report.optimized = optimizer.optimize(targets, inputs.config);

    if (report.optimized.weightedTime > 0.0) {
        report.speedup =
            report.equalBw.weightedTime / report.optimized.weightedTime;
    }
    double optRecip =
        report.optimized.weightedTime * report.optimized.cost;
    double eqRecip = report.equalBw.weightedTime * report.equalBw.cost;
    if (optRecip > 0.0)
        report.perfPerCostGain = eqRecip / optRecip;
    return report;
}

} // namespace

LibraReport
runLibra(const LibraInputs& inputs)
{
    if (inputs.threads > 0 && !ThreadPool::insidePool())
        ThreadPool::setGlobalThreads(
            static_cast<std::size_t>(inputs.threads));
    return runLibraPoint(inputs);
}

std::vector<LibraReport>
runLibraSweep(const std::vector<LibraInputs>& points)
{
    // Same guard optimize() applies within a point: ad-hoc
    // collective-timing functions are not guaranteed thread-safe, so
    // never invoke them from sweep workers either. Named timing
    // backends promise thread safety and sweep in parallel.
    bool customTiming = false;
    for (const auto& p : points)
        customTiming |= static_cast<bool>(p.config.estimator.commTimeFn);
    if (customTiming) {
        std::vector<LibraReport> reports;
        reports.reserve(points.size());
        for (const auto& p : points)
            reports.push_back(runLibraPoint(p));
        return reports;
    }
    return parallelMap(points, [](const LibraInputs& p) {
        return runLibraPoint(p);
    });
}

} // namespace libra
