#include "core/framework.hh"

#include "common/logging.hh"
#include "common/thread_pool.hh"

namespace libra {

namespace {

/** One study point, with the pool left alone (sweeps own the pool). */
LibraReport
runLibraPoint(const LibraInputs& inputs)
{
    Network net = Network::parse(inputs.networkShape);
    BwOptimizer optimizer(net, inputs.costModel);

    std::vector<TargetWorkload> targets = inputs.targets;
    if (inputs.normalizeTargetWeights) {
        TrainingEstimator estimator(net, inputs.config.estimator);
        targets = normalizeWeights(estimator, std::move(targets),
                                   inputs.config.totalBw);
    }

    LibraReport report;
    report.equalBw = optimizer.baseline(targets, inputs.config);
    report.optimized = optimizer.optimize(targets, inputs.config);

    if (report.optimized.weightedTime > 0.0) {
        report.speedup =
            report.equalBw.weightedTime / report.optimized.weightedTime;
    }
    double optRecip =
        report.optimized.weightedTime * report.optimized.cost;
    double eqRecip = report.equalBw.weightedTime * report.equalBw.cost;
    if (optRecip > 0.0)
        report.perfPerCostGain = eqRecip / optRecip;
    return report;
}

} // namespace

LibraReport
runLibra(const LibraInputs& inputs)
{
    if (inputs.threads > 0 && !ThreadPool::insidePool())
        ThreadPool::setGlobalThreads(
            static_cast<std::size_t>(inputs.threads));
    return runLibraPoint(inputs);
}

std::vector<LibraReport>
runLibraSweep(const std::vector<LibraInputs>& points)
{
    // Unwind-on-failure semantics, built on the isolated sweep so the
    // surfaced error is deterministic: always the lowest-index failing
    // point, independent of worker scheduling.
    SweepOutcome outcome = runLibraSweepIsolated(points);
    for (std::size_t i = 0; i < outcome.status.size(); ++i) {
        if (!outcome.status[i].ok)
            fatal(outcome.status[i].error);
    }
    return std::move(outcome.reports);
}

SweepOutcome
runLibraSweepIsolated(const std::vector<LibraInputs>& points)
{
    auto evalPoint = [](const LibraInputs& p, LibraReport* report,
                        PointStatus* status) {
        try {
            *report = runLibraPoint(p);
        } catch (const FatalError& e) {
            status->ok = false;
            status->error = e.what();
            // fatalImpl prefixes "fatal: "; strip it so the message
            // reads cleanly in failure rows and re-thrown errors do
            // not double the prefix.
            const std::string prefix = "fatal: ";
            if (status->error.rfind(prefix, 0) == 0)
                status->error.erase(0, prefix.size());
        }
    };

    SweepOutcome out;
    out.reports.resize(points.size());
    out.status.resize(points.size());

    // Same guard optimize() applies within a point: ad-hoc
    // collective-timing functions are not guaranteed thread-safe, so
    // never invoke them from sweep workers either. Named timing
    // backends promise thread safety and sweep in parallel.
    bool customTiming = false;
    for (const auto& p : points)
        customTiming |= static_cast<bool>(p.config.estimator.commTimeFn);
    if (customTiming) {
        for (std::size_t i = 0; i < points.size(); ++i)
            evalPoint(points[i], &out.reports[i], &out.status[i]);
    } else {
        parallelFor(points.size(), [&](std::size_t i) {
            evalPoint(points[i], &out.reports[i], &out.status[i]);
        });
    }
    for (const PointStatus& s : out.status)
        out.failed += s.ok ? 0 : 1;
    return out;
}

} // namespace libra
