/**
 * @file
 * Formatting helpers shared by the benchmark harness and examples.
 */

#ifndef LIBRA_CORE_REPORT_HH
#define LIBRA_CORE_REPORT_HH

#include <string>

#include "common/units.hh"
#include "topology/network.hh"

namespace libra {

/** "[ 750.0, 187.5, 43.8, 18.7 ] GB/s" style rendering. */
std::string bwConfigToString(const BwConfig& bw, int precision = 1);

/** Human-readable byte size ("3.4 GB"). */
std::string bytesToString(Bytes b);

/** Human-readable dollar amount ("$15.2M"). */
std::string dollarsToString(Dollars d);

/** Human-readable duration ("12.3 ms"). */
std::string secondsToString(Seconds s);

} // namespace libra

#endif // LIBRA_CORE_REPORT_HH
