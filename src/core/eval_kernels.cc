/**
 * @file
 * Batched-estimator kernel dispatch.
 *
 * The per-ISA kernels live in their own translation units
 * (eval_kernels_<isa>.cc), compiled only when the LIBRA_SIMD CMake
 * option selects them and always with that ISA's -m flags plus
 * -ffp-contract=off. This file — compiled with the plain target flags
 * — picks the widest compiled-in kernel the running CPU actually
 * supports, falling back to the scalar one-candidate-at-a-time path.
 * Every kernel is bit-identical to CompiledWorkload::estimate(), so
 * the choice is a pure throughput knob: results, goldens, and cache
 * keys never depend on it.
 */

#include "core/estimator.hh"
#include "core/eval_kernels_impl.hh"

namespace libra {
namespace detail {

#if defined(LIBRA_SIMD_HAVE_AVX512)
void estimateBatchAvx512(const CompiledWorkload& cw, const BwConfig* bws,
                         std::size_t n, Seconds* out);
#endif
#if defined(LIBRA_SIMD_HAVE_AVX2)
void estimateBatchAvx2(const CompiledWorkload& cw, const BwConfig* bws,
                       std::size_t n, Seconds* out);
#endif
#if defined(LIBRA_SIMD_HAVE_NEON)
void estimateBatchNeon(const CompiledWorkload& cw, const BwConfig* bws,
                       std::size_t n, Seconds* out);
#endif

} // namespace detail

namespace {

enum class KernelIsa { Scalar, Avx2, Avx512, Neon };

KernelIsa
pickKernel()
{
#if defined(LIBRA_SIMD_HAVE_AVX512)
    if (__builtin_cpu_supports("avx512f"))
        return KernelIsa::Avx512;
#endif
#if defined(LIBRA_SIMD_HAVE_AVX2)
    if (__builtin_cpu_supports("avx2"))
        return KernelIsa::Avx2;
#endif
#if defined(LIBRA_SIMD_HAVE_NEON)
    return KernelIsa::Neon;
#endif
    return KernelIsa::Scalar;
}

const KernelIsa kActiveKernel = pickKernel();

} // namespace

const char*
activeSimdKernel()
{
    switch (kActiveKernel) {
      case KernelIsa::Avx512:
        return "avx512";
      case KernelIsa::Avx2:
        return "avx2";
      case KernelIsa::Neon:
        return "neon";
      case KernelIsa::Scalar:
        return "scalar";
    }
    return "scalar";
}

void
CompiledWorkload::estimateBatch(const BwConfig* bws, std::size_t n,
                                Seconds* out) const
{
    switch (kActiveKernel) {
#if defined(LIBRA_SIMD_HAVE_AVX512)
      case KernelIsa::Avx512:
        detail::estimateBatchAvx512(*this, bws, n, out);
        return;
#endif
#if defined(LIBRA_SIMD_HAVE_AVX2)
      case KernelIsa::Avx2:
        detail::estimateBatchAvx2(*this, bws, n, out);
        return;
#endif
#if defined(LIBRA_SIMD_HAVE_NEON)
      case KernelIsa::Neon:
        detail::estimateBatchNeon(*this, bws, n, out);
        return;
#endif
      default:
        detail::BatchKernel<simd::ScalarLane>::run(*this, bws, n, out);
        return;
    }
}

} // namespace libra
