#include "core/report.hh"

#include <cmath>
#include <iomanip>
#include <sstream>

namespace libra {

std::string
bwConfigToString(const BwConfig& bw, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << "[ ";
    for (std::size_t i = 0; i < bw.size(); ++i) {
        if (i)
            oss << ", ";
        oss << bw[i];
    }
    oss << " ] GB/s";
    return oss.str();
}

namespace {

std::string
scaled(double v, const char* const* suffixes, int count, double step,
       int precision)
{
    int idx = 0;
    while (idx + 1 < count && std::abs(v) >= step) {
        v /= step;
        ++idx;
    }
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << v << ' '
        << suffixes[idx];
    return oss.str();
}

} // namespace

std::string
bytesToString(Bytes b)
{
    static const char* suffixes[] = {"B", "KB", "MB", "GB", "TB", "PB"};
    return scaled(b, suffixes, 6, 1000.0, 2);
}

std::string
dollarsToString(Dollars d)
{
    static const char* suffixes[] = {"", "K", "M", "B"};
    std::string s = scaled(d, suffixes, 4, 1000.0, 2);
    return "$" + s;
}

std::string
secondsToString(Seconds s)
{
    if (std::abs(s) >= 1.0) {
        std::ostringstream oss;
        oss << std::fixed << std::setprecision(3) << s << " s";
        return oss.str();
    }
    static const char* suffixes[] = {"ns", "us", "ms"};
    double v = s * 1e9;
    return scaled(v, suffixes, 3, 1000.0, 3);
}

} // namespace libra
