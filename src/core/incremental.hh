/**
 * @file
 * Incremental (differential) evaluation of a CompiledWorkload around a
 * base bandwidth configuration.
 *
 * Pattern-search polls and subgradient probes move exactly one
 * coordinate of the bandwidth vector, yet the scalar path recomputes
 * every dimension's reciprocal, every singles product, and every
 * multi-span op's bottleneck from scratch. WorkloadIncremental caches
 * all of those partials at the base point; a probe then
 *
 *  1. recomputes the one changed reciprocal,
 *  2. re-maxes only the multi-span ops with an entry on the probed
 *     dimension (per-op winner/runner-up caches make that O(1) per
 *     affected op, with a full per-op rescan only when the op has
 *     several entries on the same dimension), and
 *  3. re-sums every total a changed term feeds *in the original
 *     evaluation order* — changed values override cached addends
 *     in-place during an ordered replay, never by subtracting the old
 *     term out of a running sum.
 *
 * Step 3 is the bit-identity contract: every floating-point operation
 * that contributes to the returned value uses the same operands, in
 * the same order, as CompiledWorkload::estimate() at the probed point,
 * so the result is bit-identical by construction — goldens never move.
 * (The winner/runner-up re-max shortcut yields the same value the
 * entry scan would because every term is nonnegative and finite, where
 * value-equality is bit-equality; NaN edge cases fall out of mirroring
 * the scalar comparisons exactly.)
 *
 * The dimension-to-op index depends only on the compiled workload, so
 * it is built once at construction; moving the base rebuilds just the
 * value caches. Probes never mutate the caches — changed values ride
 * in ordered scratch arrays consumed by merge walks — so a probe is
 * allocation-free after warm-up and the base stays untouched.
 *
 * Instances are single-threaded: each solver invocation owns one (the
 * CompiledWorkload stays shared and immutable). Value caches build
 * lazily on the first probe, so rebasing after an accepted move costs
 * one vector copy.
 */

#ifndef LIBRA_CORE_INCREMENTAL_HH
#define LIBRA_CORE_INCREMENTAL_HH

#include <cstdint>
#include <vector>

#include "core/estimator.hh"

namespace libra {

class WorkloadIncremental
{
  public:
    /** @p cw must outlive this evaluator. */
    explicit WorkloadIncremental(const CompiledWorkload& cw);

    /** Move the base point (cheap; caches rebuild on the next probe). */
    void setBase(const BwConfig& x);

    /** estimate(base), re-summed from the caches — bit-identical. */
    Seconds baseEstimate();

    /**
     * estimate(base with coordinate @p dim set to @p value) —
     * bit-identical to the full evaluation. Does not move the base.
     */
    Seconds probe(std::size_t dim, double value);

  private:
    void buildTopology();
    void rebase();

    /** New bottleneck of the op at index @p i of dim @p d's op list. */
    double opNewWorst(std::uint32_t i, std::size_t d,
                      double newRecip) const;

    Seconds probeNoOverlap(std::size_t dim, double newRecip) const;
    Seconds probeTpDp(std::size_t dim, double newRecip);

    const CompiledWorkload* cw_;
    BwConfig base_;
    bool built_ = false;
    std::size_t numOps_ = 0;

    /** Sentinel: no winning entry / op needs a full entry rescan. */
    static constexpr std::uint32_t kNone = 0xFFFFFFFFu;

    // ---- Topology (depends only on cw_; built once). ----

    /**
     * CSR dimension -> multi-span ops with an entry there, op ids
     * ascending. opByDimK_ holds the op's single entry index on that
     * dimension, or kNone when the op has several entries there (the
     * probe then replays the op's full entry scan).
     */
    std::vector<std::uint32_t> opByDimOffset_;
    std::vector<std::uint32_t> opByDimOp_;
    std::vector<std::uint32_t> opByDimK_;

    /**
     * CSR dimension -> singles rows with nonzero traffic there
     * (TpDpOverlap). Rows with zero traffic keep a bit-equal product
     * under any finite reciprocal, so a probe skips them entirely.
     */
    std::vector<std::uint32_t> rowByDimOffset_;
    std::vector<std::uint32_t> rowByDimRow_;

    /** Op ranges per (layer, phase) in fwd/ig/wg order (TpDpOverlap). */
    std::vector<CompiledWorkload::PhaseRange> phaseRanges_;
    std::vector<std::uint32_t> opPhase_;

    // ---- Value caches (describe the base point; rebuilt on rebase). ----

    std::vector<double> recip_;  ///< 1 / (base[d] * kGiga).
    std::vector<double> worst_;  ///< Per multi-op bottleneck value.
    std::vector<std::uint32_t> winner_; ///< Entry achieving worst_.
    std::vector<double> runner_; ///< Max over entries != winner_.

    // NoOverlap: per-dim products of the whole-workload singles, the
    // multi-op bottleneck sum, and its left-to-right prefix sums
    // (msumPrefix_[i] = sum of the first i ops). A probe whose first
    // changed op is j restarts from msumPrefix_[j] and replays the
    // remaining adds — the same adds, in the same order, the full
    // scan would perform.
    std::vector<double> aprod_;
    double msum_ = 0.0;
    std::vector<double> msumPrefix_;

    // TpDpOverlap: per-(layer, phase) singles products, row sums, and
    // multi-op sums.
    std::vector<double> sprod_;    ///< singles_ layout.
    std::vector<double> rowSums_;  ///< One per singles row.
    std::vector<double> phaseSums_;

    // Probe scratch (TpDpOverlap): ascending (index, new value)
    // override pairs consumed by ordered merge walks. Capacity
    // persists, so steady-state probes never allocate.
    std::vector<std::uint32_t> rowIdx_;
    std::vector<double> rowVal_;
    std::vector<std::uint32_t> phaseIdx_;
    std::vector<double> phaseVal_;
};

} // namespace libra

#endif // LIBRA_CORE_INCREMENTAL_HH
