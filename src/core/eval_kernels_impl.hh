/**
 * @file
 * Generic candidate-major batch kernel for CompiledWorkload.
 *
 * BatchKernel<Lane> evaluates Lane::kWidth bandwidth configurations at
 * once, with the SIMD lanes laid across *candidates*: lane l of every
 * vector operation holds candidate l's value, and the sequence of
 * operations applied to each lane is exactly the sequence
 * CompiledWorkload::estimate() applies to a single candidate — same
 * association, same order, same max-update convention. Combined with
 * the per-lane IEEE guarantees of the Lane wrappers (core/simd.hh) and
 * the no-FMA-contraction build flags on the kernel translation units,
 * every batched result is bit-identical to the scalar path, which is
 * why goldens never move when the SIMD kernels switch on.
 *
 * This header is included by one translation unit per ISA
 * (eval_kernels_<isa>.cc), each compiled with that ISA's -m flags plus
 * -ffp-contract=off; the dispatcher (eval_kernels.cc) picks the widest
 * kernel the running CPU supports.
 */

#ifndef LIBRA_CORE_EVAL_KERNELS_IMPL_HH
#define LIBRA_CORE_EVAL_KERNELS_IMPL_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/estimator.hh"
#include "core/simd.hh"

namespace libra {
namespace detail {

template <typename Lane>
struct BatchKernel
{
    static constexpr std::size_t kWidth = Lane::kWidth;

    /**
     * Evaluate @p n candidates: full kWidth-wide blocks through the
     * lane kernel, remainder candidates through the scalar path (which
     * is bit-identical by the lane contract, so the split is
     * invisible in the results).
     */
    static void
    run(const CompiledWorkload& cw, const BwConfig* bws, std::size_t n,
        Seconds* out)
    {
        constexpr std::size_t kInlineDims = 16;
        alignas(64) double recipInline[kInlineDims * kWidth];
        std::vector<double> recipHeap;
        double* recipT = recipInline;
        if (cw.numDims_ > kInlineDims) {
            recipHeap.resize(cw.numDims_ * kWidth);
            recipT = recipHeap.data();
        }
        std::size_t i = 0;
        if constexpr (kWidth > 1) {
            for (; i + kWidth <= n; i += kWidth)
                block(cw, bws + i, out + i, recipT);
        }
        for (; i < n; ++i)
            out[i] = cw.estimate(bws[i]);
    }

  private:
    /**
     * One kWidth-candidate block. @p recipT is the transposed
     * reciprocal scratch: recipT[d * kWidth + lane].
     */
    static void
    block(const CompiledWorkload& cw, const BwConfig* bws, Seconds* out,
          double* recipT)
    {
        const std::size_t dims = cw.numDims_;

        // recip[d] = 1.0 / (bw[d] * kGiga), one vector mul + div per
        // dimension — the exact scalar operation pair per lane.
        alignas(64) double pack[kWidth];
        const Lane one = Lane::broadcast(1.0);
        const Lane giga = Lane::broadcast(kGiga);
        for (std::size_t d = 0; d < dims; ++d) {
            for (std::size_t l = 0; l < kWidth; ++l)
                pack[l] = bws[l][d];
            (one / (Lane::load(pack) * giga))
                .store(recipT + d * kWidth);
        }

        if (cw.loop_ == TrainingLoop::NoOverlap) {
            Lane total = Lane::broadcast(cw.totalCompute_) +
                         multiOps(cw, cw.allMulti_, recipT);
            for (std::size_t d = 0; d < dims; ++d) {
                total = total + Lane::broadcast(cw.allSingles_[d]) *
                                    Lane::load(recipT + d * kWidth);
            }
            total.store(out);
            return;
        }

        Lane total = Lane::broadcast(0.0);
        const std::uint32_t dims32 = static_cast<std::uint32_t>(dims);
        for (const auto& layer : cw.meta_) {
            Lane fwdComm = singles(cw, layer.singlesRow, recipT) +
                           multiOps(cw, layer.fwd, recipT);
            Lane igComm =
                singles(cw, layer.singlesRow + dims32, recipT) +
                multiOps(cw, layer.ig, recipT);
            Lane wgComm =
                singles(cw, layer.singlesRow + 2 * dims32, recipT) +
                multiOps(cw, layer.wg, recipT);
            // std::max(igComm, rhs) == (rhs > igComm ? rhs : igComm).
            Lane tail = Lane::maxGt(
                Lane::broadcast(layer.wgCompute) + wgComm, igComm);
            total = total +
                    (((Lane::broadcast(layer.fwdCompute) + fwdComm) +
                      Lane::broadcast(layer.igCompute)) +
                     tail);
        }
        total.store(out);
    }

    /** Lane transliteration of CompiledWorkload::multiOpsTime. */
    static Lane
    multiOps(const CompiledWorkload& cw, CompiledWorkload::PhaseRange r,
             const double* recipT)
    {
        const Bytes* traffic = cw.traffic_.data();
        const std::uint32_t* dim = cw.entryDim_.data();
        const std::uint32_t* offset = cw.opOffset_.data();
        Lane total = Lane::broadcast(0.0);
        for (std::uint32_t op = r.begin; op < r.end; ++op) {
            Lane worst = Lane::broadcast(0.0);
            for (std::uint32_t k = offset[op]; k < offset[op + 1];
                 ++k) {
                Lane t = Lane::broadcast(traffic[k]) *
                         Lane::load(recipT + dim[k] * kWidth);
                worst = Lane::maxGt(t, worst);
            }
            total = total + worst;
        }
        return total;
    }

    /** Lane transliteration of CompiledWorkload::singlesTime. */
    static Lane
    singles(const CompiledWorkload& cw, std::uint32_t row,
            const double* recipT)
    {
        const Bytes* s = cw.singles_.data() + row;
        Lane total = Lane::broadcast(0.0);
        for (std::size_t d = 0; d < cw.numDims_; ++d) {
            total = total +
                    Lane::broadcast(s[d]) * Lane::load(recipT + d * kWidth);
        }
        return total;
    }
};

} // namespace detail
} // namespace libra

#endif // LIBRA_CORE_EVAL_KERNELS_IMPL_HH
