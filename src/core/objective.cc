#include "core/objective.hh"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <functional>
#include <memory>

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "core/incremental.hh"

namespace libra {

std::string
objectiveName(OptimizationObjective o)
{
    switch (o) {
      case OptimizationObjective::PerfOpt:
        return "PerfOptBW";
      case OptimizationObjective::PerfPerCostOpt:
        return "PerfPerCostOptBW";
    }
    panic("unknown objective");
}

Seconds
weightedTime(const TrainingEstimator& estimator,
             const std::vector<TargetWorkload>& targets,
             const BwConfig& bw)
{
    Seconds t = 0.0;
    for (const auto& target : targets)
        t += target.weight * estimator.estimate(target.workload, bw);
    return t;
}

CompiledObjective::CompiledObjective(
    OptimizationObjective objective, const TrainingEstimator& estimator,
    const CostModel& cost_model,
    const std::vector<TargetWorkload>& targets)
    : objective_(objective), estimator_(&estimator),
      costModel_(&cost_model)
{
    compiled_.reserve(targets.size());
    for (const auto& target : targets) {
        compiled_.emplace_back(estimator.compile(target.workload),
                               target.weight);
    }
}

double
CompiledObjective::applyCost(Seconds time, const Vec& x) const
{
    if (objective_ == OptimizationObjective::PerfOpt)
        return time;
    Dollars c = costModel_->networkCost(estimator_->network(), x);
    return time * c;
}

double
CompiledObjective::evaluateOne(const Vec& x) const
{
    Seconds t = 0.0;
    for (const auto& [cw, weight] : compiled_)
        t += weight * cw.estimate(x);
    return applyCost(t, x);
}

void
CompiledObjective::evaluateBatch(const Vec* xs, std::size_t n,
                                 double* out) const
{
    // Cache-blocked candidate-major evaluation: each workload's SoA
    // arrays stream once per block through the SIMD kernels, and the
    // weighted sum accumulates per candidate slot in workload order —
    // the same adds, in the same order, as evaluateOne. Blocks fan
    // out across the thread pool; every output has its own slot, so
    // results are deterministic at any thread count.
    constexpr std::size_t kBlock = 32;
    const std::size_t blocks = (n + kBlock - 1) / kBlock;
    parallelFor(blocks, [&](std::size_t b) {
        const std::size_t lo = b * kBlock;
        const std::size_t count = std::min(kBlock, n - lo);
        Seconds tmp[kBlock];
        Seconds acc[kBlock];
        for (std::size_t i = 0; i < count; ++i)
            acc[i] = 0.0;
        for (const auto& [cw, weight] : compiled_) {
            cw.estimateBatch(xs + lo, count, tmp);
            for (std::size_t i = 0; i < count; ++i)
                acc[i] += weight * tmp[i];
        }
        for (std::size_t i = 0; i < count; ++i)
            out[lo + i] = applyCost(acc[i], xs[lo + i]);
    });
}

/**
 * Objective-level incremental evaluator: one WorkloadIncremental per
 * compiled workload, combined with the same weighted sum (and cost
 * multiply) as evaluateOne. evaluate() picks the cheapest exact path
 * by diffing against the base bit-for-bit: bit-equal inputs evaluate
 * identically, so reusing the cached value / probing the single
 * changed coordinate cannot alter any result.
 */
class CompiledObjective::Incremental final : public IncrementalEval
{
  public:
    explicit Incremental(const CompiledObjective& obj) : obj_(&obj)
    {
        subs_.reserve(obj.compiled_.size());
        for (const auto& [cw, weight] : obj.compiled_)
            subs_.emplace_back(cw);
    }

    void
    setBase(const Vec& x, const double* knownValue) override
    {
        base_ = x;
        for (auto& sub : subs_)
            sub.setBase(x);
        haveValue_ = knownValue != nullptr;
        if (knownValue)
            value_ = *knownValue;
    }

    double
    baseValue() override
    {
        if (!haveValue_) {
            value_ = obj_->evaluateOne(base_);
            haveValue_ = true;
        }
        return value_;
    }

    double
    probe(std::size_t dim, double value) override
    {
        Seconds t = 0.0;
        const auto& compiled = obj_->compiled_;
        for (std::size_t i = 0; i < subs_.size(); ++i)
            t += compiled[i].second * subs_[i].probe(dim, value);
        if (obj_->objective_ == OptimizationObjective::PerfOpt)
            return t;
        scratch_ = base_;
        scratch_[dim] = value;
        return obj_->applyCost(t, scratch_);
    }

    double
    evaluate(const Vec& x) override
    {
        std::size_t diffs = 0;
        std::size_t changed = 0;
        if (x.size() == base_.size()) {
            for (std::size_t i = 0; i < x.size() && diffs < 2; ++i) {
                if (std::bit_cast<std::uint64_t>(x[i]) !=
                    std::bit_cast<std::uint64_t>(base_[i])) {
                    ++diffs;
                    changed = i;
                }
            }
        } else {
            diffs = 2;
        }
        if (diffs == 0)
            return baseValue();
        if (diffs == 1)
            return probe(changed, x[changed]);
        const double v = obj_->evaluateOne(x);
        setBase(x, &v);
        return v;
    }

  private:
    const CompiledObjective* obj_;
    std::vector<WorkloadIncremental> subs_;
    Vec base_;
    Vec scratch_;
    double value_ = 0.0;
    bool haveValue_ = false;
};

std::unique_ptr<IncrementalEval>
CompiledObjective::makeIncremental() const
{
    return std::make_unique<Incremental>(*this);
}

ScalarObjective
makeObjective(OptimizationObjective objective,
              const TrainingEstimator& estimator,
              const CostModel& cost_model,
              const std::vector<TargetWorkload>& targets)
{
    // Custom collective-timing models and non-default timing backends
    // cannot be precompiled: fall back to the direct estimator, one
    // call at a time.
    if (!estimator.usesAnalyticalTiming()) {
        std::function<Seconds(const Vec&)> time =
            [&estimator, &targets](const Vec& bw) {
                return weightedTime(estimator, targets, bw);
            };
        switch (objective) {
          case OptimizationObjective::PerfOpt:
            return time;
          case OptimizationObjective::PerfPerCostOpt:
            return [time, &estimator, &cost_model](const Vec& bw) {
                Dollars c =
                    cost_model.networkCost(estimator.network(), bw);
                return time(bw) * c;
            };
        }
        panic("unknown objective");
    }

    // Precompiled path: the solver calls the objective tens of
    // thousands of times, so resolve every collective's per-dimension
    // traffic once up front. Wrapping the CompiledObjective in
    // BatchableObjective lets solvers recover the batched/incremental
    // facets with batchFacet().
    return BatchableObjective{std::make_shared<const CompiledObjective>(
        objective, estimator, cost_model, targets)};
}

std::vector<TargetWorkload>
normalizeWeights(const TrainingEstimator& estimator,
                 std::vector<TargetWorkload> targets, double total_bw)
{
    BwConfig equal = estimator.network().equalBw(total_bw);
    for (auto& target : targets) {
        Seconds t = estimator.estimate(target.workload, equal);
        if (t > 0.0)
            target.weight = 1.0 / t;
    }
    return targets;
}

} // namespace libra
