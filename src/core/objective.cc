#include "core/objective.hh"

#include <functional>
#include <memory>

#include "common/logging.hh"

namespace libra {

std::string
objectiveName(OptimizationObjective o)
{
    switch (o) {
      case OptimizationObjective::PerfOpt:
        return "PerfOptBW";
      case OptimizationObjective::PerfPerCostOpt:
        return "PerfPerCostOptBW";
    }
    panic("unknown objective");
}

Seconds
weightedTime(const TrainingEstimator& estimator,
             const std::vector<TargetWorkload>& targets,
             const BwConfig& bw)
{
    Seconds t = 0.0;
    for (const auto& target : targets)
        t += target.weight * estimator.estimate(target.workload, bw);
    return t;
}

ScalarObjective
makeObjective(OptimizationObjective objective,
              const TrainingEstimator& estimator,
              const CostModel& cost_model,
              const std::vector<TargetWorkload>& targets)
{
    // Precompiled time evaluator: the solver calls the objective tens of
    // thousands of times, so resolve every collective's per-dimension
    // traffic once up front. Custom collective-timing models and
    // non-default timing backends cannot be precompiled and fall back
    // to the direct estimator.
    std::function<Seconds(const Vec&)> time;
    if (!estimator.usesAnalyticalTiming()) {
        time = [&estimator, &targets](const Vec& bw) {
            return weightedTime(estimator, targets, bw);
        };
    } else {
        auto compiled = std::make_shared<
            std::vector<std::pair<CompiledWorkload, double>>>();
        for (const auto& target : targets) {
            compiled->emplace_back(estimator.compile(target.workload),
                                   target.weight);
        }
        time = [compiled](const Vec& bw) {
            Seconds t = 0.0;
            for (const auto& [cw, weight] : *compiled)
                t += weight * cw.estimate(bw);
            return t;
        };
    }

    switch (objective) {
      case OptimizationObjective::PerfOpt:
        return time;
      case OptimizationObjective::PerfPerCostOpt:
        return [time, &estimator, &cost_model](const Vec& bw) {
            Dollars c = cost_model.networkCost(estimator.network(), bw);
            return time(bw) * c;
        };
    }
    panic("unknown objective");
}

std::vector<TargetWorkload>
normalizeWeights(const TrainingEstimator& estimator,
                 std::vector<TargetWorkload> targets, double total_bw)
{
    BwConfig equal = estimator.network().equalBw(total_bw);
    for (auto& target : targets) {
        Seconds t = estimator.estimate(target.workload, equal);
        if (t > 0.0)
            target.weight = 1.0 / t;
    }
    return targets;
}

} // namespace libra
