/**
 * @file
 * Design-study configuration parser: the whole Fig. 3 input set in one
 * text file, for driving LIBRA without writing C++ (see tools/libra_cli).
 *
 *     # design study
 *     NETWORK RI(4)_FC(8)_RI(4)_SW(32)
 *     TOTAL_BW 500
 *     OBJECTIVE PERF            # or PERF_PER_COST
 *     LOOP NO_OVERLAP           # or TP_DP_OVERLAP
 *     CONSTRAINT B4 <= 50
 *     CONSTRAINT B1 >= B2
 *     WORKLOAD gpt3             # zoo names; or WORKLOAD_FILE <path>
 *     WORKLOAD msft1t WEIGHT 2.0
 *     NORMALIZE_WEIGHTS         # 1/T_EqualBW importance weighting
 *     IN_NETWORK                # switch-offloaded All-Reduce
 *     DOLLAR_CAP 1.5e7          # optional; makes TOTAL_BW a ceiling
 *     COST Pod LINK 7.8 SWITCH 18.0 NIC 31.6   # cost-model override
 *     THREADS 8                 # solver parallelism (results are
 *                               # identical at any thread count)
 *     MAX_EVALS 240             # per-start objective-eval budget
 *                               # (0 = unlimited; screening rounds
 *                               # of EXPLORE prune use this)
 *     SOLVER cmaes,pattern-search  # search-strategy pipeline
 *                               # (`libra_cli list-solvers`; default
 *                               # is the subgradient/pattern/NM chain)
 *     BACKEND chunk-sim         # collective-timing backend
 *                               # (`libra_cli list-backends`; default
 *                               # is the analytical model)
 *     EXPLORE prune,keep=0.25   # outer-loop exploration strategy
 *                               # (`libra_cli list-explorers`; default
 *                               # is exhaustive; inert for a single
 *                               # study point, stamps design-space
 *                               # candidates)
 *
 * Zoo names: turing-nlg, gpt3, msft1t, dlrm, resnet50 (each sized to
 * the network's NPU count).
 */

#ifndef LIBRA_CORE_STUDY_CONFIG_HH
#define LIBRA_CORE_STUDY_CONFIG_HH

#include <iosfwd>
#include <string>

#include "core/framework.hh"

namespace libra {

/**
 * Parse a study file into ready-to-run LibraInputs.
 * @throws FatalError with line numbers on malformed input.
 */
LibraInputs parseStudyConfig(std::istream& in);

/** Convenience overload over a string. */
LibraInputs parseStudyConfigString(const std::string& text);

/**
 * Serialize parsed inputs back to study-file text such that
 * parseStudyConfigString(studyConfigToString(in)) reproduces @p inputs
 * exactly (the round-trip property test's contract). Every expressible
 * directive is emitted explicitly — including the full COST model and
 * the search SEED/STARTS — so the text is self-contained.
 *
 * @throws FatalError for inputs the study-file language cannot express:
 * a custom commTimeFn, non-default minDimBw / search-driver toggles /
 * efficiency modeling, relaxTotalBw without a DOLLAR_CAP, or target
 * workloads that are not zoo workloads at the network's NPU count
 * (e.g. WORKLOAD_FILE-loaded or programmatically built ones).
 */
std::string studyConfigToString(const LibraInputs& inputs);

/**
 * True when @p inputs has a study-file form (studyConfigToString would
 * succeed). The shard layer uses this to decide whether a design point
 * can ship to a worker as an eval frame or must run in-process.
 */
bool studyConfigSerializable(const LibraInputs& inputs);

/** Deep equality of two parsed study inputs (round-trip testing). */
bool studyInputsEqual(const LibraInputs& a, const LibraInputs& b);

/** Resolve a zoo workload name ("gpt3", "msft1t", ...) at @p npus. */
Workload zooWorkloadByName(const std::string& name, long npus);

} // namespace libra

#endif // LIBRA_CORE_STUDY_CONFIG_HH
