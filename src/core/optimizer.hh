/**
 * @file
 * The LIBRA bandwidth optimizer (paper §IV-E/F).
 *
 * Given a network shape, a cost model, target workloads, an objective,
 * and user design constraints, finds the per-dimension bandwidth
 * configuration that minimizes the objective. PerfOptBW pins the total
 * per-NPU bandwidth to the budget (spending less can never help);
 * PerfPerCostOptBW may spend less than the budget when the marginal
 * bandwidth costs more than it speeds up.
 */

#ifndef LIBRA_CORE_OPTIMIZER_HH
#define LIBRA_CORE_OPTIMIZER_HH

#include <string>
#include <vector>

#include "core/objective.hh"
#include "cost/cost_model.hh"
#include "solver/multistart.hh"

namespace libra {

/** Optimizer knobs. */
struct OptimizerConfig
{
    OptimizationObjective objective = OptimizationObjective::PerfOpt;
    double totalBw = 1000.0;        ///< Per-NPU BW budget (GB/s).
    double minDimBw = 0.1;          ///< Floor per dimension (GB/s).
    std::vector<std::string> constraints; ///< Extra text constraints.
    EstimatorOptions estimator;     ///< Loop / in-network options.
    MultistartOptions search;       ///< Solver configuration.
    double budgetCap = 0.0;         ///< Optional dollar cap (0 = none).

    /**
     * Treat totalBw as an upper bound even for PerfOpt. Used by
     * iso-cost studies (Fig. 19) where the binding constraint is the
     * dollar cap, not the BW budget.
     */
    bool relaxTotalBw = false;
};

/** A solved design point. */
struct OptimizationResult
{
    BwConfig bw;                    ///< Per-dimension GB/s.
    Seconds weightedTime = 0.0;     ///< Objective-weighted time.
    Dollars cost = 0.0;             ///< Network dollar cost.
    double objectiveValue = 0.0;    ///< Raw objective at bw.
    std::vector<Seconds> perWorkloadTime; ///< Aligned with targets.
};

/** Workload-aware bandwidth optimizer for one network shape. */
class BwOptimizer
{
  public:
    BwOptimizer(Network net, CostModel cost_model);

    const Network& network() const { return net_; }
    const CostModel& costModel() const { return costModel_; }

    /**
     * Optimize the BW split for @p targets under @p config.
     * @throws FatalError on infeasible constraint sets.
     */
    OptimizationResult optimize(const std::vector<TargetWorkload>& targets,
                                const OptimizerConfig& config) const;

    /** The EqualBW straw-person baseline at the same budget. */
    OptimizationResult
    baseline(const std::vector<TargetWorkload>& targets,
             const OptimizerConfig& config) const;

    /** Evaluate an explicit BW config under @p config's estimator. */
    OptimizationResult
    evaluate(const BwConfig& bw,
             const std::vector<TargetWorkload>& targets,
             const OptimizerConfig& config) const;

  private:
    ConstraintSet buildConstraints(const OptimizerConfig& config) const;

    Network net_;
    CostModel costModel_;
};

} // namespace libra

#endif // LIBRA_CORE_OPTIMIZER_HH
