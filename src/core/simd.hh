/**
 * @file
 * Double-precision SIMD lane wrappers for the batched estimator
 * kernels (core/eval_kernels_impl.hh).
 *
 * A Lane holds one IEEE-754 double per candidate and exposes exactly
 * the operations the scalar estimate() path performs: add, mul, div,
 * and the `a > b ? a : b` max-update. Each wrapper guarantees the
 * per-lane result is bit-identical to the corresponding scalar
 * operation — that is the whole contract that lets estimateBatch()
 * share goldens with estimate():
 *
 *  - add/mul/div map to the IEEE-correctly-rounded vector instructions;
 *  - maxGt(a, b) implements `a > b ? a : b` including the NaN/zero
 *    corner cases: x86 MAXPD already returns the second operand on
 *    NaN or equal-zero inputs (matching the false branch of `a > b`),
 *    while NEON's FMAX propagates NaN differently, so the NEON lane
 *    uses an explicit compare+select;
 *  - no FMA contraction: the kernel translation units are compiled
 *    with -ffp-contract=off (and -mno-fma on x86), so a mul followed
 *    by an add never fuses into a differently-rounded fmadd.
 *
 * Each ISA struct is guarded by the compiler's own ISA macro; a
 * translation unit sees exactly the lanes its -m flags enable.
 */

#ifndef LIBRA_CORE_SIMD_HH
#define LIBRA_CORE_SIMD_HH

#include <cstddef>

#if defined(__AVX2__) || defined(__AVX512F__)
#include <immintrin.h>
#endif
#if defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace libra {
namespace simd {

/** One candidate per "lane": the reference semantics, plain scalar. */
struct ScalarLane
{
    static constexpr std::size_t kWidth = 1;
    double v;

    static ScalarLane broadcast(double x) { return {x}; }
    static ScalarLane load(const double* p) { return {*p}; }
    void store(double* p) const { *p = v; }

    friend ScalarLane
    operator+(ScalarLane a, ScalarLane b)
    {
        return {a.v + b.v};
    }

    friend ScalarLane
    operator*(ScalarLane a, ScalarLane b)
    {
        return {a.v * b.v};
    }

    friend ScalarLane
    operator/(ScalarLane a, ScalarLane b)
    {
        return {a.v / b.v};
    }

    /** a > b ? a : b — the scalar `if (t > worst)` update. */
    static ScalarLane
    maxGt(ScalarLane a, ScalarLane b)
    {
        return {a.v > b.v ? a.v : b.v};
    }
};

#if defined(__AVX2__)
/** Four candidates per lane (256-bit AVX2). */
struct Avx2Lane
{
    static constexpr std::size_t kWidth = 4;
    __m256d v;

    static Avx2Lane broadcast(double x) { return {_mm256_set1_pd(x)}; }
    static Avx2Lane load(const double* p) { return {_mm256_loadu_pd(p)}; }
    void store(double* p) const { _mm256_storeu_pd(p, v); }

    friend Avx2Lane
    operator+(Avx2Lane a, Avx2Lane b)
    {
        return {_mm256_add_pd(a.v, b.v)};
    }

    friend Avx2Lane
    operator*(Avx2Lane a, Avx2Lane b)
    {
        return {_mm256_mul_pd(a.v, b.v)};
    }

    friend Avx2Lane
    operator/(Avx2Lane a, Avx2Lane b)
    {
        return {_mm256_div_pd(a.v, b.v)};
    }

    /** VMAXPD computes exactly `a > b ? a : b` per lane. */
    static Avx2Lane
    maxGt(Avx2Lane a, Avx2Lane b)
    {
        return {_mm256_max_pd(a.v, b.v)};
    }
};
#endif // __AVX2__

#if defined(__AVX512F__)
/** Eight candidates per lane (512-bit AVX-512F). */
struct Avx512Lane
{
    static constexpr std::size_t kWidth = 8;
    __m512d v;

    static Avx512Lane broadcast(double x) { return {_mm512_set1_pd(x)}; }
    static Avx512Lane load(const double* p) { return {_mm512_loadu_pd(p)}; }
    void store(double* p) const { _mm512_storeu_pd(p, v); }

    friend Avx512Lane
    operator+(Avx512Lane a, Avx512Lane b)
    {
        return {_mm512_add_pd(a.v, b.v)};
    }

    friend Avx512Lane
    operator*(Avx512Lane a, Avx512Lane b)
    {
        return {_mm512_mul_pd(a.v, b.v)};
    }

    friend Avx512Lane
    operator/(Avx512Lane a, Avx512Lane b)
    {
        return {_mm512_div_pd(a.v, b.v)};
    }

    /** VMAXPD computes exactly `a > b ? a : b` per lane. */
    static Avx512Lane
    maxGt(Avx512Lane a, Avx512Lane b)
    {
        return {_mm512_max_pd(a.v, b.v)};
    }
};
#endif // __AVX512F__

#if defined(__aarch64__)
/** Two candidates per lane (128-bit NEON). */
struct NeonLane
{
    static constexpr std::size_t kWidth = 2;
    float64x2_t v;

    static NeonLane broadcast(double x) { return {vdupq_n_f64(x)}; }
    static NeonLane load(const double* p) { return {vld1q_f64(p)}; }
    void store(double* p) const { vst1q_f64(p, v); }

    friend NeonLane
    operator+(NeonLane a, NeonLane b)
    {
        return {vaddq_f64(a.v, b.v)};
    }

    friend NeonLane
    operator*(NeonLane a, NeonLane b)
    {
        return {vmulq_f64(a.v, b.v)};
    }

    friend NeonLane
    operator/(NeonLane a, NeonLane b)
    {
        return {vdivq_f64(a.v, b.v)};
    }

    /**
     * Explicit compare+select: FMAX would return NaN whenever either
     * input is NaN, where `a > b ? a : b` must return b.
     */
    static NeonLane
    maxGt(NeonLane a, NeonLane b)
    {
        return {vbslq_f64(vcgtq_f64(a.v, b.v), a.v, b.v)};
    }
};
#endif // __aarch64__

} // namespace simd
} // namespace libra

#endif // LIBRA_CORE_SIMD_HH
