/**
 * @file
 * AVX2 instantiation of the batched estimator kernel: four candidates
 * per 256-bit lane. Compiled with -mavx2 -mno-fma -ffp-contract=off
 * (see CMakeLists.txt) so every lane operation is the plain IEEE
 * instruction the scalar path performs.
 */

#include "core/eval_kernels_impl.hh"

#ifndef __AVX2__
#error "eval_kernels_avx2.cc must be compiled with -mavx2"
#endif

namespace libra {
namespace detail {

void
estimateBatchAvx2(const CompiledWorkload& cw, const BwConfig* bws,
                  std::size_t n, Seconds* out)
{
    BatchKernel<simd::Avx2Lane>::run(cw, bws, n, out);
}

} // namespace detail
} // namespace libra
