/**
 * @file
 * Optimization objectives (paper §IV-F).
 *
 * PerfOptBW minimizes the (weighted) end-to-end training time;
 * PerfPerCostOptBW minimizes time x network dollar cost — the reciprocal
 * of perf-per-cost. Multi-workload targets use a weighted sum; the
 * conventional weighting normalizes each workload by its EqualBW time so
 * no single large model dominates the ensemble (§VI-B).
 */

#ifndef LIBRA_CORE_OBJECTIVE_HH
#define LIBRA_CORE_OBJECTIVE_HH

#include <memory>
#include <utility>
#include <vector>

#include "core/estimator.hh"
#include "cost/cost_model.hh"
#include "solver/batch_eval.hh"
#include "solver/subgradient.hh"

namespace libra {

/** Which quantity the optimizer minimizes. */
enum class OptimizationObjective
{
    PerfOpt,        ///< Minimize weighted training time.
    PerfPerCostOpt, ///< Minimize weighted training time x network cost.
};

/** Human-readable objective name. */
std::string objectiveName(OptimizationObjective o);

/** One target workload with its ensemble weight. */
struct TargetWorkload
{
    Workload workload;
    double weight = 1.0;
};

/** Weighted sum of per-workload iteration times at @p bw. */
Seconds weightedTime(const TrainingEstimator& estimator,
                     const std::vector<TargetWorkload>& targets,
                     const BwConfig& bw);

/**
 * Precompiled analytical objective: the weighted-time (optionally
 * x network-cost) function over per-workload CompiledWorkloads.
 *
 * Exposes the fast evaluation facets solvers recover with
 * batchFacet(): candidate-major SIMD batches (evaluateBatch, blocked
 * and fanned across the thread pool) and incremental coordinate-move
 * evaluation (makeIncremental). Both are bit-identical to
 * evaluateOne, which itself performs exactly the historical scalar
 * evaluation-order — one sum over workloads in declaration order,
 * then one cost multiply.
 *
 * Immutable after construction; shared by any number of solver
 * threads. Only valid under the built-in analytical timing model
 * (TrainingEstimator::usesAnalyticalTiming).
 */
class CompiledObjective final : public BatchEvaluable
{
  public:
    /** Compiles every target; @p estimator and @p cost_model must
     *  outlive this objective. */
    CompiledObjective(OptimizationObjective objective,
                      const TrainingEstimator& estimator,
                      const CostModel& cost_model,
                      const std::vector<TargetWorkload>& targets);

    double evaluateOne(const Vec& x) const override;
    void evaluateBatch(const Vec* xs, std::size_t n,
                       double* out) const override;
    std::unique_ptr<IncrementalEval> makeIncremental() const override;

  private:
    class Incremental;

    /** Cost factor under PerfPerCostOpt; 1-free pass for PerfOpt. */
    double applyCost(Seconds time, const Vec& x) const;

    OptimizationObjective objective_;
    const TrainingEstimator* estimator_;
    const CostModel* costModel_;
    std::vector<std::pair<CompiledWorkload, double>> compiled_;
};

/**
 * Build the scalar objective f(B) minimized by the solver.
 * The estimator and targets must outlive the returned callable.
 *
 * Under the built-in analytical timing model the returned callable is
 * a BatchableObjective over a CompiledObjective, so solvers can
 * recover the batched/incremental facets with batchFacet(); custom
 * timing models fall back to a plain per-call lambda.
 */
ScalarObjective makeObjective(OptimizationObjective objective,
                              const TrainingEstimator& estimator,
                              const CostModel& cost_model,
                              const std::vector<TargetWorkload>& targets);

/**
 * Importance weights that normalize each workload by its EqualBW time
 * at @p total_bw, so every ensemble member counts equally.
 */
std::vector<TargetWorkload>
normalizeWeights(const TrainingEstimator& estimator,
                 std::vector<TargetWorkload> targets, double total_bw);

} // namespace libra

#endif // LIBRA_CORE_OBJECTIVE_HH
