/**
 * @file
 * Optimization objectives (paper §IV-F).
 *
 * PerfOptBW minimizes the (weighted) end-to-end training time;
 * PerfPerCostOptBW minimizes time x network dollar cost — the reciprocal
 * of perf-per-cost. Multi-workload targets use a weighted sum; the
 * conventional weighting normalizes each workload by its EqualBW time so
 * no single large model dominates the ensemble (§VI-B).
 */

#ifndef LIBRA_CORE_OBJECTIVE_HH
#define LIBRA_CORE_OBJECTIVE_HH

#include <vector>

#include "core/estimator.hh"
#include "cost/cost_model.hh"
#include "solver/subgradient.hh"

namespace libra {

/** Which quantity the optimizer minimizes. */
enum class OptimizationObjective
{
    PerfOpt,        ///< Minimize weighted training time.
    PerfPerCostOpt, ///< Minimize weighted training time x network cost.
};

/** Human-readable objective name. */
std::string objectiveName(OptimizationObjective o);

/** One target workload with its ensemble weight. */
struct TargetWorkload
{
    Workload workload;
    double weight = 1.0;
};

/** Weighted sum of per-workload iteration times at @p bw. */
Seconds weightedTime(const TrainingEstimator& estimator,
                     const std::vector<TargetWorkload>& targets,
                     const BwConfig& bw);

/**
 * Build the scalar objective f(B) minimized by the solver.
 * The estimator and targets must outlive the returned callable.
 */
ScalarObjective makeObjective(OptimizationObjective objective,
                              const TrainingEstimator& estimator,
                              const CostModel& cost_model,
                              const std::vector<TargetWorkload>& targets);

/**
 * Importance weights that normalize each workload by its EqualBW time
 * at @p total_bw, so every ensemble member counts equally.
 */
std::vector<TargetWorkload>
normalizeWeights(const TrainingEstimator& estimator,
                 std::vector<TargetWorkload> targets, double total_bw);

} // namespace libra

#endif // LIBRA_CORE_OBJECTIVE_HH
