/**
 * @file
 * Pluggable collective-timing backends for the training estimator.
 *
 * Every source of collective timing LIBRA knows implements one
 * interface:
 *
 *     timing(type, size, spans, bw, in_network) -> CollectiveTiming
 *
 * and registers itself in the process-wide TimingBackendRegistry under
 * a stable name:
 *
 *  - "analytical" (the default): the closed-form multi-rail bottleneck
 *    model (multiRailTime) the paper's optimizer is built on. Selecting
 *    it is bit-identical to the historical hard-wired path.
 *  - "chunk-sim": the chunk-granularity pipeline simulator
 *    (ChunkTimeline) run per collective, so whole studies can be
 *    re-executed under simulation and the analytical model's error
 *    quantified across the full scenario matrix (the `crossval`
 *    scenario does exactly that).
 *
 * Study files select backends with `BACKEND <name>` and the CLI with
 * `--backend` / `list-backends`, mirroring the SOLVER strategy layer.
 *
 * Contract (see docs/BACKENDS.md): timing() must be a deterministic
 * pure function of its arguments, const-callable from any number of
 * threads concurrently, and must return a nonnegative, finite
 * CollectiveTiming whose per-dimension vectors align with @p spans —
 * the estimator checks this at the seam and throws FatalError on a
 * violation. Unlike an ad-hoc EstimatorOptions::commTimeFn (which
 * serializes the search and cannot be cached), a registered backend
 * keeps the parallel multistart/sweep fan-out on the global thread
 * pool and is folded into the study-cache key by name.
 */

#ifndef LIBRA_CORE_TIMING_BACKEND_HH
#define LIBRA_CORE_TIMING_BACKEND_HH

#include <memory>
#include <string>
#include <vector>

#include "collective/multi_rail.hh"
#include "topology/network.hh"

namespace libra {

/** The default backend: the analytical multi-rail bottleneck model. */
inline constexpr const char* kAnalyticalTimingBackendName = "analytical";

/** The chunk-level simulation backend. */
inline constexpr const char* kChunkSimTimingBackendName = "chunk-sim";

/**
 * Pipelining granularity of the chunk-sim backend (paper §V-B uses 64
 * chunks). More chunks shrink the pipeline fill/drain ramp — and with
 * it the deviation from the analytical steady-state model — at
 * linearly growing simulation cost.
 */
inline constexpr int kChunkSimNumChunks = 64;

/** One registered timing model; see the file comment's contract. */
class TimingBackend
{
  public:
    virtual ~TimingBackend() = default;

    /** Registry key, e.g. "chunk-sim". */
    virtual std::string name() const = 0;

    /** One-line description for `libra_cli list-backends`. */
    virtual std::string description() const = 0;

    /**
     * Study-cache content tag. canonicalStudyKey folds this (not the
     * bare name) for non-default backends, so a backend must encode
     * every semantic parameter here — chunk-sim tags its chunk count
     * ("chunk-sim/64") — and previously cached results go stale the
     * moment a parameter changes. Algorithmic rewrites at the same
     * parameters still warrant bumping the tag by hand.
     */
    virtual std::string cacheKeyTag() const { return name(); }

    /**
     * Timing of one collective of @p size bytes over @p spans under
     * @p bw. Must be thread-safe and deterministic; @p spans is never
     * empty (the estimator short-circuits empty groups).
     */
    virtual CollectiveTiming timing(CollectiveType type, Bytes size,
                                    const std::vector<DimSpan>& spans,
                                    const BwConfig& bw,
                                    bool in_network) const = 0;
};

/** Name-keyed backend collection, iterated in registration order. */
class TimingBackendRegistry
{
  public:
    /**
     * The process-wide registry with every built-in backend registered
     * on first use. Do not mutate concurrently with running
     * estimations (registration happens at startup in practice).
     */
    static TimingBackendRegistry& global();

    /** Register a backend. @throws FatalError on a duplicate name. */
    void add(std::unique_ptr<const TimingBackend> backend);

    /** Look up by name; nullptr when absent. */
    const TimingBackend* find(const std::string& name) const;

    /** All names in registration order. */
    std::vector<std::string> names() const;

    std::size_t size() const { return backends_.size(); }

  private:
    std::vector<std::unique_ptr<const TimingBackend>> backends_;
};

/** The effective backend name: "" selects the analytical default. */
std::string timingBackendOrDefault(const std::string& name);

/**
 * Resolve a backend name ("" = analytical) against the global
 * registry. @throws FatalError naming the unknown backend and the
 * known ones.
 */
const TimingBackend* resolveTimingBackend(const std::string& name);

/**
 * Enable/disable the chunk-sim backend's per-thread memoization cache
 * (canonical (op, bw) key -> CollectiveTiming). On by default; results
 * are bit-identical either way — the cache only amortizes simulation
 * cost across the repeated identical collectives of layered workloads
 * and across multistart restarts. Intended for tests and benches; do
 * not flip concurrently with running estimations.
 */
void setChunkSimMemoEnabled(bool enabled);
bool chunkSimMemoEnabled();

/**
 * Documented agreement tolerance between the chunk-sim backend and the
 * analytical model for one collective: the simulator reproduces every
 * per-dimension stage's traffic exactly, so the only deviation is the
 * pipeline fill/drain ramp, bounded by one chunk's trip through all
 * stages — sum_i t_i / num_chunks seconds on top of the analytical
 * bottleneck time max_i t_i. Returned as a relative bound on
 * (sim - analytical) / analytical; the randomized cross-validation
 * suite asserts against it.
 */
double chunkSimRelTolerance(const CollectiveTiming& analytical,
                            int num_chunks = kChunkSimNumChunks);

} // namespace libra

#endif // LIBRA_CORE_TIMING_BACKEND_HH
