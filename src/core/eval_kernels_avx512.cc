/**
 * @file
 * AVX-512F instantiation of the batched estimator kernel: eight
 * candidates per 512-bit lane. Compiled with -mavx512f -mno-fma
 * -ffp-contract=off (see CMakeLists.txt) so every lane operation is
 * the plain IEEE instruction the scalar path performs.
 */

#include "core/eval_kernels_impl.hh"

#ifndef __AVX512F__
#error "eval_kernels_avx512.cc must be compiled with -mavx512f"
#endif

namespace libra {
namespace detail {

void
estimateBatchAvx512(const CompiledWorkload& cw, const BwConfig* bws,
                    std::size_t n, Seconds* out)
{
    BatchKernel<simd::Avx512Lane>::run(cw, bws, n, out);
}

} // namespace detail
} // namespace libra
