/**
 * @file
 * NEON instantiation of the batched estimator kernel: two candidates
 * per 128-bit lane. Compiled with -ffp-contract=off (see
 * CMakeLists.txt); the max-update uses compare+select because FMAX's
 * NaN propagation differs from the scalar `t > worst` convention.
 */

#include "core/eval_kernels_impl.hh"

#ifndef __aarch64__
#error "eval_kernels_neon.cc must be compiled for aarch64"
#endif

namespace libra {
namespace detail {

void
estimateBatchNeon(const CompiledWorkload& cw, const BwConfig* bws,
                  std::size_t n, Seconds* out)
{
    BatchKernel<simd::NeonLane>::run(cw, bws, n, out);
}

} // namespace detail
} // namespace libra
