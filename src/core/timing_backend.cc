#include "core/timing_backend.hh"

#include <atomic>
#include <unordered_map>
#include <utility>

#include "common/json.hh"
#include "common/logging.hh"
#include "sim/chunk_timeline.hh"

namespace libra {

namespace {

/** The historical hard-wired path, now the default registry entry. */
class AnalyticalTimingBackend final : public TimingBackend
{
  public:
    std::string name() const override
    {
        return kAnalyticalTimingBackendName;
    }

    std::string
    description() const override
    {
        return "closed-form multi-rail bottleneck model (paper §IV-C; "
               "precompilable, the default)";
    }

    CollectiveTiming
    timing(CollectiveType type, Bytes size,
           const std::vector<DimSpan>& spans, const BwConfig& bw,
           bool in_network) const override
    {
        return multiRailTime(type, size, spans, bw, in_network);
    }
};

std::atomic<bool> gChunkSimMemo{true};

/**
 * Canonical memo key of one (collective, bandwidth) query. Built from
 * the shared canonical field encoders, so distinct queries cannot
 * collide by concatenation.
 */
std::string
chunkSimMemoKey(CollectiveType type, Bytes size,
                const std::vector<DimSpan>& spans, const BwConfig& bw,
                bool in_network)
{
    std::string key;
    key.reserve(64 + 32 * spans.size() + 16 * bw.size());
    key += std::to_string(static_cast<int>(type));
    key += in_network ? "i " : "d ";
    appendCanonicalNumber(key, size);
    key += std::to_string(spans.size());
    key += "spans ";
    for (const auto& span : spans) {
        key += std::to_string(span.dim);
        key += ',';
        key += std::to_string(span.groupSize);
        key += ',';
        appendCanonicalNumber(key, span.efficiency);
    }
    key += std::to_string(bw.size());
    key += "bw ";
    for (double b : bw)
        appendCanonicalNumber(key, b);
    return key;
}

/** One chunk-pipelined collective through ChunkTimeline. */
CollectiveTiming
chunkSimCollectiveTiming(CollectiveType type, Bytes size,
                         const std::vector<DimSpan>& spans,
                         const BwConfig& bw, bool in_network)
{
    CollectiveTiming timing;
    if (spans.empty())
        return timing; // Single-NPU group: no communication.

    // The chunk simulator has no switch-reduction mode (the same
    // restriction CollectiveSim documents), so the in-network
    // All-Reduce keeps its analytical closed form m / q_{i-1}.
    if (in_network && type == CollectiveType::AllReduce)
        return multiRailTime(type, size, spans, bw, true);

    ChunkTimeline timeline(bw.size(), bw);
    CollectiveJob job;
    job.type = type;
    job.size = size;
    job.spans = spans;
    job.numChunks = kChunkSimNumChunks;
    job.policy = SchedulePolicy::FixedAscending;
    TimelineResult result = timeline.run({job});

    timing.time = result.makespan;
    timing.trafficPerDim = multiRailTraffic(type, size, spans);
    timing.timePerDim.assign(spans.size(), 0.0);
    for (std::size_t s = 0; s < spans.size(); ++s)
        timing.timePerDim[s] = result.dimBusy[spans[s].dim];
    std::size_t arg = 0;
    for (std::size_t s = 1; s < spans.size(); ++s) {
        if (timing.timePerDim[s] > timing.timePerDim[arg])
            arg = s;
    }
    timing.bottleneckSpan = arg;
    return timing;
}

/**
 * Chunk-granularity pipeline simulation per collective. Each query is
 * an independent single-threaded discrete-event run, so the backend is
 * trivially thread-safe and the parallel multistart/sweep fan-out on
 * the global pool batches many simulations at once. A per-thread
 * memoization cache (layered workloads issue the same collective
 * hundreds of times per evaluation, and multistart restarts revisit
 * the same bandwidth points) amortizes the sim cost without any shared
 * mutable state.
 */
class ChunkSimTimingBackend final : public TimingBackend
{
  public:
    std::string name() const override
    {
        return kChunkSimTimingBackendName;
    }

    std::string
    description() const override
    {
        return "chunk-level pipeline simulation (ChunkTimeline, 64 "
               "chunks; memoized per thread)";
    }

    std::string
    cacheKeyTag() const override
    {
        return name() + "/" + std::to_string(kChunkSimNumChunks);
    }

    CollectiveTiming
    timing(CollectiveType type, Bytes size,
           const std::vector<DimSpan>& spans, const BwConfig& bw,
           bool in_network) const override
    {
        if (!chunkSimMemoEnabled()) {
            return chunkSimCollectiveTiming(type, size, spans, bw,
                                            in_network);
        }
        // Per-thread, so pool workers never contend; bounded so a long
        // sweep over ever-changing bandwidth points cannot grow it
        // without limit (clearing never changes results — the sim is a
        // pure function of the key).
        constexpr std::size_t kMemoCapacity = 1u << 15;
        thread_local std::unordered_map<std::string, CollectiveTiming>
            memo;
        std::string key =
            chunkSimMemoKey(type, size, spans, bw, in_network);
        auto it = memo.find(key);
        if (it != memo.end())
            return it->second;
        if (memo.size() >= kMemoCapacity)
            memo.clear();
        CollectiveTiming timing =
            chunkSimCollectiveTiming(type, size, spans, bw, in_network);
        memo.emplace(std::move(key), timing);
        return timing;
    }
};

} // namespace

TimingBackendRegistry&
TimingBackendRegistry::global()
{
    static TimingBackendRegistry* registry = [] {
        auto* r = new TimingBackendRegistry;
        r->add(std::make_unique<AnalyticalTimingBackend>());
        r->add(std::make_unique<ChunkSimTimingBackend>());
        return r;
    }();
    return *registry;
}

void
TimingBackendRegistry::add(std::unique_ptr<const TimingBackend> backend)
{
    if (!backend)
        fatal("cannot register a null timing backend");
    if (find(backend->name()))
        fatal("timing backend '", backend->name(),
              "' is already registered");
    backends_.push_back(std::move(backend));
}

const TimingBackend*
TimingBackendRegistry::find(const std::string& name) const
{
    for (const auto& b : backends_)
        if (b->name() == name)
            return b.get();
    return nullptr;
}

std::vector<std::string>
TimingBackendRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(backends_.size());
    for (const auto& b : backends_)
        out.push_back(b->name());
    return out;
}

std::string
timingBackendOrDefault(const std::string& name)
{
    return name.empty() ? kAnalyticalTimingBackendName : name;
}

const TimingBackend*
resolveTimingBackend(const std::string& name)
{
    std::string effective = timingBackendOrDefault(name);
    const TimingBackend* b =
        TimingBackendRegistry::global().find(effective);
    if (!b) {
        std::string known;
        for (const auto& k : TimingBackendRegistry::global().names())
            known += (known.empty() ? "" : ", ") + k;
        fatal("unknown timing backend '", effective,
              "' (registered: ", known, ")");
    }
    return b;
}

void
setChunkSimMemoEnabled(bool enabled)
{
    gChunkSimMemo.store(enabled, std::memory_order_relaxed);
}

bool
chunkSimMemoEnabled()
{
    return gChunkSimMemo.load(std::memory_order_relaxed);
}

double
chunkSimRelTolerance(const CollectiveTiming& analytical, int num_chunks)
{
    if (analytical.time <= 0.0 || num_chunks < 1)
        return 0.0;
    Seconds sum = 0.0;
    for (Seconds t : analytical.timePerDim)
        sum += t;
    // Ramp bound: one chunk's full trip through every stage, relative
    // to the steady-state bottleneck; plus headroom for the
    // simulator's picosecond event grid (a few hundred quantized
    // event times) and FP summation order.
    return sum / (analytical.time * static_cast<double>(num_chunks)) +
           1e-6;
}

} // namespace libra
