#include "core/study_config.hh"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <fstream>
#include <istream>
#include <sstream>

#include "common/json.hh"
#include "common/logging.hh"
#include "core/timing_backend.hh"
#include "explore/explore.hh"
#include "solver/strategy.hh"
#include "workload/parser.hh"
#include "workload/zoo.hh"

namespace libra {

namespace {

std::string
lowered(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return s;
}

PhysicalLevel
parseLevel(const std::string& token, int line)
{
    std::string t = lowered(token);
    if (t == "chiplet")
        return PhysicalLevel::Chiplet;
    if (t == "package")
        return PhysicalLevel::Package;
    if (t == "node")
        return PhysicalLevel::Node;
    if (t == "pod")
        return PhysicalLevel::Pod;
    fatal("study line ", line, ": unknown physical level '", token, "'");
}

/**
 * Re-throw a nested validation FatalError with the study line number,
 * dropping the inner "fatal: " prefix fatal() would otherwise nest.
 */
[[noreturn]] void
refatalWithLine(int line, const FatalError& e)
{
    std::string msg = e.what();
    if (msg.rfind("fatal: ", 0) == 0)
        msg.erase(0, 7);
    fatal("study line ", line, ": ", msg);
}

double
parseNumber(const std::string& token, int line, const char* what)
{
    try {
        std::size_t used = 0;
        double v = std::stod(token, &used);
        if (used != token.size())
            throw std::invalid_argument(token);
        return v;
    } catch (const std::exception&) {
        fatal("study line ", line, ": bad ", what, " '", token, "'");
    }
}

} // namespace

Workload
zooWorkloadByName(const std::string& name, long npus)
{
    std::string n = lowered(name);
    if (n == "turing-nlg" || n == "turingnlg" || n == "tnlg")
        return wl::turingNlg(npus);
    if (n == "gpt3" || n == "gpt-3")
        return wl::gpt3(npus);
    if (n == "msft1t" || n == "msft-1t")
        return wl::msft1T(npus);
    if (n == "dlrm")
        return wl::dlrm(npus);
    if (n == "resnet50" || n == "resnet-50")
        return wl::resnet50(npus);
    fatal("unknown zoo workload '", name,
          "' (expected turing-nlg, gpt3, msft1t, dlrm, or resnet50)");
}

LibraInputs
parseStudyConfig(std::istream& in)
{
    LibraInputs inputs;
    // Workloads are resolved after the network is known (zoo builders
    // need the NPU count), so stash directives first.
    struct PendingWorkload
    {
        bool fromFile = false;
        std::string nameOrPath;
        double weight = 1.0;
        int line = 0;
    };
    std::vector<PendingWorkload> pending;
    bool sawNetwork = false;

    std::string rawLine;
    int lineNo = 0;
    while (std::getline(in, rawLine)) {
        ++lineNo;
        auto hash = rawLine.find('#');
        if (hash != std::string::npos)
            rawLine.erase(hash);
        std::istringstream line(rawLine);
        std::string keyword;
        if (!(line >> keyword))
            continue;

        auto wantToken = [&](const char* what) {
            std::string t;
            if (!(line >> t))
                fatal("study line ", lineNo, ": expected ", what);
            return t;
        };

        if (keyword == "NETWORK") {
            inputs.networkShape = wantToken("network shape");
            sawNetwork = true;
        } else if (keyword == "TOTAL_BW") {
            inputs.config.totalBw = parseNumber(
                wantToken("total BW"), lineNo, "total BW");
        } else if (keyword == "OBJECTIVE") {
            std::string obj = wantToken("objective");
            if (obj == "PERF")
                inputs.config.objective = OptimizationObjective::PerfOpt;
            else if (obj == "PERF_PER_COST")
                inputs.config.objective =
                    OptimizationObjective::PerfPerCostOpt;
            else
                fatal("study line ", lineNo, ": unknown objective '",
                      obj, "' (PERF or PERF_PER_COST)");
        } else if (keyword == "LOOP") {
            std::string loop = wantToken("loop");
            if (loop == "NO_OVERLAP")
                inputs.config.estimator.loop = TrainingLoop::NoOverlap;
            else if (loop == "TP_DP_OVERLAP")
                inputs.config.estimator.loop =
                    TrainingLoop::TpDpOverlap;
            else
                fatal("study line ", lineNo, ": unknown loop '", loop,
                      "' (NO_OVERLAP or TP_DP_OVERLAP)");
        } else if (keyword == "CONSTRAINT") {
            std::string rest;
            std::getline(line, rest);
            if (rest.find_first_not_of(" \t") == std::string::npos)
                fatal("study line ", lineNo, ": empty constraint");
            inputs.config.constraints.push_back(rest);
        } else if (keyword == "WORKLOAD") {
            PendingWorkload p;
            p.nameOrPath = wantToken("workload name");
            p.line = lineNo;
            std::string extra;
            if (line >> extra) {
                if (extra != "WEIGHT")
                    fatal("study line ", lineNo,
                          ": expected WEIGHT, got '", extra, "'");
                p.weight = parseNumber(wantToken("weight"), lineNo,
                                       "weight");
            }
            pending.push_back(std::move(p));
        } else if (keyword == "WORKLOAD_FILE") {
            PendingWorkload p;
            p.fromFile = true;
            p.nameOrPath = wantToken("workload file path");
            p.line = lineNo;
            std::string extra;
            if (line >> extra) {
                if (extra != "WEIGHT")
                    fatal("study line ", lineNo,
                          ": expected WEIGHT, got '", extra, "'");
                p.weight = parseNumber(wantToken("weight"), lineNo,
                                       "weight");
            }
            pending.push_back(std::move(p));
        } else if (keyword == "NORMALIZE_WEIGHTS") {
            inputs.normalizeTargetWeights = true;
        } else if (keyword == "IN_NETWORK") {
            inputs.config.estimator.inNetworkCollectives = true;
        } else if (keyword == "DOLLAR_CAP") {
            inputs.config.budgetCap = parseNumber(
                wantToken("dollar cap"), lineNo, "dollar cap");
            inputs.config.relaxTotalBw = true;
        } else if (keyword == "THREADS") {
            double v = parseNumber(wantToken("thread count"), lineNo,
                                   "thread count");
            // The range check also rejects NaN (all comparisons
            // false) before the double-to-int cast could be UB.
            if (!(v >= 1.0 && v <= 4096.0) || v != std::floor(v))
                fatal("study line ", lineNo,
                      ": THREADS must be an integer in [1, 4096], "
                      "got ", v);
            inputs.threads = static_cast<int>(v);
        } else if (keyword == "SOLVER") {
            // Take the whole rest of the line (not one token) so
            // `SOLVER de cmaes` errors loudly instead of silently
            // running {de}; spaces around commas are tolerated.
            std::string rest;
            std::getline(line, rest);
            auto first = rest.find_first_not_of(" \t");
            if (first == std::string::npos)
                fatal("study line ", lineNo,
                      ": expected solver pipeline");
            auto last = rest.find_last_not_of(" \t");
            try {
                inputs.config.search.pipeline = parseSolverSpec(
                    rest.substr(first, last - first + 1));
            } catch (const FatalError& e) {
                refatalWithLine(lineNo, e);
            }
        } else if (keyword == "BACKEND") {
            std::string name = wantToken("timing backend name");
            try {
                resolveTimingBackend(name); // Validate.
            } catch (const FatalError& e) {
                refatalWithLine(lineNo, e);
            }
            inputs.config.estimator.timingBackend = name;
        } else if (keyword == "EXPLORE") {
            // Whole rest of the line, like SOLVER: parameters are
            // comma-separated and may contain spaces around commas.
            std::string rest;
            std::getline(line, rest);
            auto first = rest.find_first_not_of(" \t");
            if (first == std::string::npos)
                fatal("study line ", lineNo,
                      ": expected exploration strategy");
            auto last = rest.find_last_not_of(" \t");
            try {
                // Canonicalize at parse time ("exhaustive" with
                // default parameters normalizes to the "" default).
                inputs.explore = canonicalExploreSpec(
                    rest.substr(first, last - first + 1));
            } catch (const FatalError& e) {
                refatalWithLine(lineNo, e);
            }
        } else if (keyword == "SEED") {
            inputs.config.search.seed = static_cast<std::uint64_t>(
                parseNumber(wantToken("seed"), lineNo, "seed"));
        } else if (keyword == "STARTS") {
            inputs.config.search.starts = static_cast<int>(parseNumber(
                wantToken("start count"), lineNo, "start count"));
        } else if (keyword == "MAX_EVALS") {
            double v = parseNumber(wantToken("eval budget"), lineNo,
                                   "eval budget");
            // Same NaN-safe range idiom as THREADS; 0 means
            // unlimited, matching the in-memory default.
            if (!(v >= 0.0 && v <= 1e15) || v != std::floor(v))
                fatal("study line ", lineNo,
                      ": MAX_EVALS must be an integer in [0, 1e15], "
                      "got ", v);
            inputs.config.search.maxEvalsPerStart =
                static_cast<long long>(v);
        } else if (keyword == "COST") {
            PhysicalLevel level =
                parseLevel(wantToken("physical level"), lineNo);
            ComponentCost cost =
                inputs.costModel.levelCost(level);
            std::string key;
            while (line >> key) {
                double v = parseNumber(wantToken("cost value"), lineNo,
                                       "cost value");
                if (key == "LINK")
                    cost.link = v;
                else if (key == "SWITCH")
                    cost.switch_ = v;
                else if (key == "NIC")
                    cost.nic = v;
                else
                    fatal("study line ", lineNo,
                          ": unknown cost component '", key, "'");
            }
            inputs.costModel.setLevelCost(level, cost);
        } else {
            fatal("study line ", lineNo, ": unknown keyword '", keyword,
                  "'");
        }
    }

    if (!sawNetwork)
        fatal("study config has no NETWORK line");
    if (pending.empty())
        fatal("study config has no WORKLOAD lines");

    long npus = Network::parse(inputs.networkShape).npus();
    for (const auto& p : pending) {
        Workload w;
        if (p.fromFile) {
            std::ifstream file(p.nameOrPath);
            if (!file)
                fatal("study line ", p.line, ": cannot open workload "
                      "file '", p.nameOrPath, "'");
            w = parseWorkload(file);
        } else {
            w = zooWorkloadByName(p.nameOrPath, npus);
        }
        inputs.targets.push_back({std::move(w), p.weight});
    }
    return inputs;
}

LibraInputs
parseStudyConfigString(const std::string& text)
{
    std::istringstream in(text);
    return parseStudyConfig(in);
}

namespace {

/** The study-file token of a zoo workload, or "" when not a zoo match. */
std::string
zooNameOf(const Workload& w, long npus)
{
    for (const char* token :
         {"turing-nlg", "gpt3", "msft1t", "dlrm", "resnet50"}) {
        try {
            if (workloadsEqual(w, zooWorkloadByName(token, npus)))
                return token;
        } catch (const FatalError&) {
            // Candidate cannot even be built at this NPU count (e.g.
            // MSFT-1T's TP-128 on a small network) — not a match.
        }
    }
    return "";
}

std::string
trimmed(const std::string& s)
{
    auto begin = s.find_first_not_of(" \t");
    if (begin == std::string::npos)
        return "";
    auto end = s.find_last_not_of(" \t");
    return s.substr(begin, end - begin + 1);
}

} // namespace

bool
studyInputsEqual(const LibraInputs& a, const LibraInputs& b)
{
    if (a.networkShape != b.networkShape ||
        a.normalizeTargetWeights != b.normalizeTargetWeights ||
        a.threads != b.threads || !costModelsEqual(a.costModel,
                                                   b.costModel)) {
        return false;
    }
    const OptimizerConfig& ca = a.config;
    const OptimizerConfig& cb = b.config;
    std::vector<std::string> consA, consB;
    for (const auto& c : ca.constraints)
        consA.push_back(trimmed(c));
    for (const auto& c : cb.constraints)
        consB.push_back(trimmed(c));
    if (ca.objective != cb.objective || ca.totalBw != cb.totalBw ||
        ca.minDimBw != cb.minDimBw || consA != consB ||
        ca.budgetCap != cb.budgetCap ||
        ca.relaxTotalBw != cb.relaxTotalBw ||
        ca.estimator.loop != cb.estimator.loop ||
        ca.estimator.inNetworkCollectives !=
            cb.estimator.inNetworkCollectives ||
        ca.estimator.modelPartialDimEfficiency !=
            cb.estimator.modelPartialDimEfficiency ||
        timingBackendOrDefault(ca.estimator.timingBackend) !=
            timingBackendOrDefault(cb.estimator.timingBackend) ||
        canonicalExploreSpec(a.explore) !=
            canonicalExploreSpec(b.explore) ||
        ca.search.starts != cb.search.starts ||
        ca.search.seed != cb.search.seed ||
        ca.search.useSubgradient != cb.search.useSubgradient ||
        ca.search.useNelderMead != cb.search.useNelderMead ||
        ca.search.pipeline != cb.search.pipeline ||
        ca.search.maxEvalsPerStart != cb.search.maxEvalsPerStart) {
        return false;
    }
    if (a.targets.size() != b.targets.size())
        return false;
    for (std::size_t i = 0; i < a.targets.size(); ++i) {
        if (a.targets[i].weight != b.targets[i].weight ||
            !workloadsEqual(a.targets[i].workload,
                            b.targets[i].workload)) {
            return false;
        }
    }
    return true;
}

std::string
studyConfigToString(const LibraInputs& inputs)
{
    const OptimizerConfig& cfg = inputs.config;
    const LibraInputs defaults;
    if (cfg.estimator.commTimeFn)
        fatal("cannot serialize a study with a custom commTimeFn");
    if (!cfg.estimator.modelPartialDimEfficiency)
        fatal("cannot serialize a study with partial-dim efficiency "
              "modeling disabled (no study-file directive)");
    if (cfg.minDimBw != defaults.config.minDimBw)
        fatal("cannot serialize a non-default minDimBw (no study-file "
              "directive)");
    if (cfg.search.useSubgradient !=
            defaults.config.search.useSubgradient ||
        cfg.search.useNelderMead !=
            defaults.config.search.useNelderMead ||
        cfg.search.parallel != defaults.config.search.parallel) {
        fatal("cannot serialize non-default search-driver toggles (no "
              "study-file directive)");
    }
    if (cfg.relaxTotalBw && cfg.budgetCap <= 0.0)
        fatal("cannot serialize relaxTotalBw without a DOLLAR_CAP "
              "(only DOLLAR_CAP implies it in the study language)");
    if (!cfg.relaxTotalBw && cfg.budgetCap > 0.0)
        fatal("cannot serialize a DOLLAR_CAP with relaxTotalBw unset "
              "(DOLLAR_CAP always relaxes the budget on parse)");

    // Doubles print in shortest round-trip form, so reparsing with
    // strtod reproduces every value bit-exactly.
    std::ostringstream out;
    out << "# LIBRA design study (generated by studyConfigToString)\n";
    out << "NETWORK " << inputs.networkShape << "\n";
    out << "TOTAL_BW " << jsonNumberToString(cfg.totalBw) << "\n";
    out << "OBJECTIVE "
        << (cfg.objective == OptimizationObjective::PerfOpt
                ? "PERF"
                : "PERF_PER_COST")
        << "\n";
    out << "LOOP "
        << (cfg.estimator.loop == TrainingLoop::NoOverlap
                ? "NO_OVERLAP"
                : "TP_DP_OVERLAP")
        << "\n";
    if (cfg.estimator.inNetworkCollectives)
        out << "IN_NETWORK\n";
    if (inputs.normalizeTargetWeights)
        out << "NORMALIZE_WEIGHTS\n";
    if (cfg.budgetCap > 0.0)
        out << "DOLLAR_CAP " << jsonNumberToString(cfg.budgetCap)
            << "\n";
    if (inputs.threads > 0)
        out << "THREADS " << inputs.threads << "\n";
    out << "SEED " << cfg.search.seed << "\n";
    out << "STARTS " << cfg.search.starts << "\n";
    if (cfg.search.maxEvalsPerStart != 0)
        out << "MAX_EVALS " << cfg.search.maxEvalsPerStart << "\n";
    if (!cfg.search.pipeline.empty())
        out << "SOLVER " << solverSpecToString(cfg.search.pipeline)
            << "\n";
    if (timingBackendOrDefault(cfg.estimator.timingBackend) !=
        kAnalyticalTimingBackendName) {
        out << "BACKEND " << cfg.estimator.timingBackend << "\n";
    }
    {
        // Canonicalization validates the spec (FatalError on garbage)
        // and drops the exhaustive-with-defaults case entirely.
        std::string explore = canonicalExploreSpec(inputs.explore);
        if (!explore.empty())
            out << "EXPLORE " << explore << "\n";
    }
    for (const auto& constraint : cfg.constraints)
        out << "CONSTRAINT " << trimmed(constraint) << "\n";
    for (PhysicalLevel level :
         {PhysicalLevel::Chiplet, PhysicalLevel::Package,
          PhysicalLevel::Node, PhysicalLevel::Pod}) {
        ComponentCost c = inputs.costModel.levelCost(level);
        out << "COST " << physicalLevelName(level) << " LINK "
            << jsonNumberToString(c.link) << " SWITCH "
            << jsonNumberToString(c.switch_) << " NIC "
            << jsonNumberToString(c.nic) << "\n";
    }

    long npus = Network::parse(inputs.networkShape).npus();
    for (const auto& target : inputs.targets) {
        std::string token = zooNameOf(target.workload, npus);
        if (token.empty())
            fatal("cannot serialize workload '", target.workload.name,
                  "': not a zoo workload at ", npus,
                  " NPUs (WORKLOAD_FILE inputs and programmatic "
                  "strategies have no study-file name)");
        out << "WORKLOAD " << token << " WEIGHT "
            << jsonNumberToString(target.weight) << "\n";
    }
    return out.str();
}

bool
studyConfigSerializable(const LibraInputs& inputs)
{
    try {
        studyConfigToString(inputs);
        return true;
    } catch (const FatalError&) {
        return false;
    }
}

} // namespace libra
