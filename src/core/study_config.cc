#include "core/study_config.hh"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <fstream>
#include <istream>
#include <sstream>

#include "common/logging.hh"
#include "workload/parser.hh"
#include "workload/zoo.hh"

namespace libra {

namespace {

std::string
lowered(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return s;
}

PhysicalLevel
parseLevel(const std::string& token, int line)
{
    std::string t = lowered(token);
    if (t == "chiplet")
        return PhysicalLevel::Chiplet;
    if (t == "package")
        return PhysicalLevel::Package;
    if (t == "node")
        return PhysicalLevel::Node;
    if (t == "pod")
        return PhysicalLevel::Pod;
    fatal("study line ", line, ": unknown physical level '", token, "'");
}

double
parseNumber(const std::string& token, int line, const char* what)
{
    try {
        std::size_t used = 0;
        double v = std::stod(token, &used);
        if (used != token.size())
            throw std::invalid_argument(token);
        return v;
    } catch (const std::exception&) {
        fatal("study line ", line, ": bad ", what, " '", token, "'");
    }
}

} // namespace

Workload
zooWorkloadByName(const std::string& name, long npus)
{
    std::string n = lowered(name);
    if (n == "turing-nlg" || n == "turingnlg" || n == "tnlg")
        return wl::turingNlg(npus);
    if (n == "gpt3" || n == "gpt-3")
        return wl::gpt3(npus);
    if (n == "msft1t" || n == "msft-1t")
        return wl::msft1T(npus);
    if (n == "dlrm")
        return wl::dlrm(npus);
    if (n == "resnet50" || n == "resnet-50")
        return wl::resnet50(npus);
    fatal("unknown zoo workload '", name,
          "' (expected turing-nlg, gpt3, msft1t, dlrm, or resnet50)");
}

LibraInputs
parseStudyConfig(std::istream& in)
{
    LibraInputs inputs;
    // Workloads are resolved after the network is known (zoo builders
    // need the NPU count), so stash directives first.
    struct PendingWorkload
    {
        bool fromFile = false;
        std::string nameOrPath;
        double weight = 1.0;
        int line = 0;
    };
    std::vector<PendingWorkload> pending;
    bool sawNetwork = false;

    std::string rawLine;
    int lineNo = 0;
    while (std::getline(in, rawLine)) {
        ++lineNo;
        auto hash = rawLine.find('#');
        if (hash != std::string::npos)
            rawLine.erase(hash);
        std::istringstream line(rawLine);
        std::string keyword;
        if (!(line >> keyword))
            continue;

        auto wantToken = [&](const char* what) {
            std::string t;
            if (!(line >> t))
                fatal("study line ", lineNo, ": expected ", what);
            return t;
        };

        if (keyword == "NETWORK") {
            inputs.networkShape = wantToken("network shape");
            sawNetwork = true;
        } else if (keyword == "TOTAL_BW") {
            inputs.config.totalBw = parseNumber(
                wantToken("total BW"), lineNo, "total BW");
        } else if (keyword == "OBJECTIVE") {
            std::string obj = wantToken("objective");
            if (obj == "PERF")
                inputs.config.objective = OptimizationObjective::PerfOpt;
            else if (obj == "PERF_PER_COST")
                inputs.config.objective =
                    OptimizationObjective::PerfPerCostOpt;
            else
                fatal("study line ", lineNo, ": unknown objective '",
                      obj, "' (PERF or PERF_PER_COST)");
        } else if (keyword == "LOOP") {
            std::string loop = wantToken("loop");
            if (loop == "NO_OVERLAP")
                inputs.config.estimator.loop = TrainingLoop::NoOverlap;
            else if (loop == "TP_DP_OVERLAP")
                inputs.config.estimator.loop =
                    TrainingLoop::TpDpOverlap;
            else
                fatal("study line ", lineNo, ": unknown loop '", loop,
                      "' (NO_OVERLAP or TP_DP_OVERLAP)");
        } else if (keyword == "CONSTRAINT") {
            std::string rest;
            std::getline(line, rest);
            if (rest.find_first_not_of(" \t") == std::string::npos)
                fatal("study line ", lineNo, ": empty constraint");
            inputs.config.constraints.push_back(rest);
        } else if (keyword == "WORKLOAD") {
            PendingWorkload p;
            p.nameOrPath = wantToken("workload name");
            p.line = lineNo;
            std::string extra;
            if (line >> extra) {
                if (extra != "WEIGHT")
                    fatal("study line ", lineNo,
                          ": expected WEIGHT, got '", extra, "'");
                p.weight = parseNumber(wantToken("weight"), lineNo,
                                       "weight");
            }
            pending.push_back(std::move(p));
        } else if (keyword == "WORKLOAD_FILE") {
            PendingWorkload p;
            p.fromFile = true;
            p.nameOrPath = wantToken("workload file path");
            p.line = lineNo;
            std::string extra;
            if (line >> extra) {
                if (extra != "WEIGHT")
                    fatal("study line ", lineNo,
                          ": expected WEIGHT, got '", extra, "'");
                p.weight = parseNumber(wantToken("weight"), lineNo,
                                       "weight");
            }
            pending.push_back(std::move(p));
        } else if (keyword == "NORMALIZE_WEIGHTS") {
            inputs.normalizeTargetWeights = true;
        } else if (keyword == "IN_NETWORK") {
            inputs.config.estimator.inNetworkCollectives = true;
        } else if (keyword == "DOLLAR_CAP") {
            inputs.config.budgetCap = parseNumber(
                wantToken("dollar cap"), lineNo, "dollar cap");
            inputs.config.relaxTotalBw = true;
        } else if (keyword == "THREADS") {
            double v = parseNumber(wantToken("thread count"), lineNo,
                                   "thread count");
            // The range check also rejects NaN (all comparisons
            // false) before the double-to-int cast could be UB.
            if (!(v >= 1.0 && v <= 4096.0) || v != std::floor(v))
                fatal("study line ", lineNo,
                      ": THREADS must be an integer in [1, 4096], "
                      "got ", v);
            inputs.threads = static_cast<int>(v);
        } else if (keyword == "SEED") {
            inputs.config.search.seed = static_cast<std::uint64_t>(
                parseNumber(wantToken("seed"), lineNo, "seed"));
        } else if (keyword == "STARTS") {
            inputs.config.search.starts = static_cast<int>(parseNumber(
                wantToken("start count"), lineNo, "start count"));
        } else if (keyword == "COST") {
            PhysicalLevel level =
                parseLevel(wantToken("physical level"), lineNo);
            ComponentCost cost =
                inputs.costModel.levelCost(level);
            std::string key;
            while (line >> key) {
                double v = parseNumber(wantToken("cost value"), lineNo,
                                       "cost value");
                if (key == "LINK")
                    cost.link = v;
                else if (key == "SWITCH")
                    cost.switch_ = v;
                else if (key == "NIC")
                    cost.nic = v;
                else
                    fatal("study line ", lineNo,
                          ": unknown cost component '", key, "'");
            }
            inputs.costModel.setLevelCost(level, cost);
        } else {
            fatal("study line ", lineNo, ": unknown keyword '", keyword,
                  "'");
        }
    }

    if (!sawNetwork)
        fatal("study config has no NETWORK line");
    if (pending.empty())
        fatal("study config has no WORKLOAD lines");

    long npus = Network::parse(inputs.networkShape).npus();
    for (const auto& p : pending) {
        Workload w;
        if (p.fromFile) {
            std::ifstream file(p.nameOrPath);
            if (!file)
                fatal("study line ", p.line, ": cannot open workload "
                      "file '", p.nameOrPath, "'");
            w = parseWorkload(file);
        } else {
            w = zooWorkloadByName(p.nameOrPath, npus);
        }
        inputs.targets.push_back({std::move(w), p.weight});
    }
    return inputs;
}

LibraInputs
parseStudyConfigString(const std::string& text)
{
    std::istringstream in(text);
    return parseStudyConfig(in);
}

} // namespace libra
