#include "core/incremental.hh"

#include <cmath>

#include "common/units.hh"

namespace libra {

WorkloadIncremental::WorkloadIncremental(const CompiledWorkload& cw)
    : cw_(&cw)
{
    buildTopology();
}

void
WorkloadIncremental::setBase(const BwConfig& x)
{
    base_ = x;
    built_ = false;
}

void
WorkloadIncremental::buildTopology()
{
    const CompiledWorkload& cw = *cw_;
    const std::size_t dims = cw.numDims_;
    numOps_ = cw.opOffset_.size() - 1;

    // CSR dimension -> ops. Walk ops in order, bucketing per touched
    // dimension, so each dimension's op list comes out ascending.
    std::vector<std::vector<std::uint32_t>> ops(dims);
    std::vector<std::vector<std::uint32_t>> ks(dims);
    std::vector<std::uint32_t> touched;
    std::vector<std::uint32_t> count(dims, 0);
    std::vector<std::uint32_t> firstK(dims, 0);
    for (std::size_t op = 0; op < numOps_; ++op) {
        touched.clear();
        for (std::uint32_t k = cw.opOffset_[op];
             k < cw.opOffset_[op + 1]; ++k) {
            const std::uint32_t d = cw.entryDim_[k];
            if (count[d]++ == 0) {
                firstK[d] = k;
                touched.push_back(d);
            }
        }
        for (std::uint32_t d : touched) {
            ops[d].push_back(static_cast<std::uint32_t>(op));
            ks[d].push_back(count[d] == 1 ? firstK[d] : kNone);
            count[d] = 0;
        }
    }
    opByDimOffset_.assign(dims + 1, 0);
    for (std::size_t d = 0; d < dims; ++d) {
        opByDimOffset_[d + 1] =
            opByDimOffset_[d] +
            static_cast<std::uint32_t>(ops[d].size());
    }
    opByDimOp_.clear();
    opByDimK_.clear();
    opByDimOp_.reserve(opByDimOffset_[dims]);
    opByDimK_.reserve(opByDimOffset_[dims]);
    for (std::size_t d = 0; d < dims; ++d) {
        opByDimOp_.insert(opByDimOp_.end(), ops[d].begin(), ops[d].end());
        opByDimK_.insert(opByDimK_.end(), ks[d].begin(), ks[d].end());
    }

    if (cw.loop_ == TrainingLoop::TpDpOverlap) {
        // Rows with nonzero traffic on each dimension: all a probe can
        // change. (Zero-traffic products stay +0.0 under any finite
        // reciprocal; the nonfinite case falls back to a full scan.)
        const std::size_t rows =
            dims == 0 ? 0 : cw.singles_.size() / dims;
        rowByDimOffset_.assign(dims + 1, 0);
        for (std::size_t r = 0; r < rows; ++r) {
            for (std::size_t d = 0; d < dims; ++d) {
                if (cw.singles_[r * dims + d] != 0.0)
                    ++rowByDimOffset_[d + 1];
            }
        }
        for (std::size_t d = 0; d < dims; ++d)
            rowByDimOffset_[d + 1] += rowByDimOffset_[d];
        rowByDimRow_.resize(rowByDimOffset_[dims]);
        std::vector<std::uint32_t> cursor(rowByDimOffset_.begin(),
                                          rowByDimOffset_.end() - 1);
        for (std::size_t r = 0; r < rows; ++r) {
            for (std::size_t d = 0; d < dims; ++d) {
                if (cw.singles_[r * dims + d] != 0.0) {
                    rowByDimRow_[cursor[d]++] =
                        static_cast<std::uint32_t>(r);
                }
            }
        }

        // Phase op ranges in layer order (fwd, ig, wg) and the
        // reverse op -> phase routing.
        phaseRanges_.clear();
        phaseRanges_.reserve(cw.meta_.size() * 3);
        for (const auto& layer : cw.meta_) {
            phaseRanges_.push_back(layer.fwd);
            phaseRanges_.push_back(layer.ig);
            phaseRanges_.push_back(layer.wg);
        }
        opPhase_.assign(numOps_, 0);
        for (std::size_t p = 0; p < phaseRanges_.size(); ++p) {
            for (std::uint32_t op = phaseRanges_[p].begin;
                 op < phaseRanges_[p].end; ++op) {
                opPhase_[op] = static_cast<std::uint32_t>(p);
            }
        }
    }
}

void
WorkloadIncremental::rebase()
{
    const CompiledWorkload& cw = *cw_;
    const std::size_t dims = cw.numDims_;

    recip_.resize(dims);
    for (std::size_t d = 0; d < dims; ++d)
        recip_[d] = 1.0 / (base_[d] * kGiga);

    // Per multi-span op: bottleneck value, the entry achieving it, and
    // the best of the remaining entries. The runner-up lets a probe
    // that changes the winning entry re-max in O(1): the new bottleneck
    // is max(newT, runner) because every term is nonnegative.
    worst_.resize(numOps_);
    winner_.resize(numOps_);
    runner_.resize(numOps_);
    for (std::size_t op = 0; op < numOps_; ++op) {
        double w = 0.0;
        std::uint32_t wk = kNone;
        for (std::uint32_t k = cw.opOffset_[op];
             k < cw.opOffset_[op + 1]; ++k) {
            double t = cw.traffic_[k] * recip_[cw.entryDim_[k]];
            if (t > w) {
                w = t;
                wk = k;
            }
        }
        worst_[op] = w;
        winner_[op] = wk;
        double r = 0.0;
        for (std::uint32_t k = cw.opOffset_[op];
             k < cw.opOffset_[op + 1]; ++k) {
            if (k == wk)
                continue;
            double t = cw.traffic_[k] * recip_[cw.entryDim_[k]];
            if (t > r)
                r = t;
        }
        runner_[op] = r;
    }

    if (cw.loop_ == TrainingLoop::NoOverlap) {
        aprod_.resize(dims);
        for (std::size_t d = 0; d < dims; ++d)
            aprod_[d] = cw.allSingles_[d] * recip_[d];
        const std::size_t numMulti =
            cw.allMulti_.end - cw.allMulti_.begin;
        msumPrefix_.resize(numMulti + 1);
        Seconds msum = 0.0;
        msumPrefix_[0] = msum;
        for (std::size_t i = 0; i < numMulti; ++i) {
            msum += worst_[cw.allMulti_.begin + i];
            msumPrefix_[i + 1] = msum;
        }
        msum_ = msum;
    } else {
        // Singles products in the singles_ layout, plus per-row sums
        // accumulated left to right exactly like singlesTime().
        sprod_.resize(cw.singles_.size());
        const std::size_t rows =
            dims == 0 ? 0 : cw.singles_.size() / dims;
        rowSums_.resize(rows);
        for (std::size_t r = 0; r < rows; ++r) {
            const Bytes* s = cw.singles_.data() + r * dims;
            double* p = sprod_.data() + r * dims;
            Seconds total = 0.0;
            for (std::size_t d = 0; d < dims; ++d) {
                p[d] = s[d] * recip_[d];
                total += p[d];
            }
            rowSums_[r] = total;
        }

        // Phase sums mirroring multiOpsTime() over each phase range.
        phaseSums_.resize(phaseRanges_.size());
        for (std::size_t p = 0; p < phaseRanges_.size(); ++p) {
            Seconds total = 0.0;
            for (std::uint32_t op = phaseRanges_[p].begin;
                 op < phaseRanges_[p].end; ++op) {
                total += worst_[op];
            }
            phaseSums_[p] = total;
        }
    }

    built_ = true;
}

double
WorkloadIncremental::opNewWorst(std::uint32_t i, std::size_t d,
                                double newRecip) const
{
    const CompiledWorkload& cw = *cw_;
    const std::uint32_t op = opByDimOp_[i];
    const std::uint32_t k = opByDimK_[i];
    if (k != kNone) {
        const double t = cw.traffic_[k] * newRecip;
        if (k == winner_[op])
            return t > runner_[op] ? t : runner_[op];
        return t > worst_[op] ? t : worst_[op];
    }
    // Several entries of this op sit on d: replay the full entry scan
    // with the probed reciprocal substituted.
    double w = 0.0;
    for (std::uint32_t e = cw.opOffset_[op]; e < cw.opOffset_[op + 1];
         ++e) {
        const std::uint32_t ed = cw.entryDim_[e];
        double t = cw.traffic_[e] * (ed == d ? newRecip : recip_[ed]);
        if (t > w)
            w = t;
    }
    return w;
}

Seconds
WorkloadIncremental::probeNoOverlap(std::size_t d,
                                    double newRecip) const
{
    const CompiledWorkload& cw = *cw_;

    // Find the first op whose bottleneck actually changes, then
    // restart the sum from the cached prefix just before it and replay
    // the remaining adds in order, substituting recomputed bottlenecks
    // for the ops on d as the walk passes them.
    const std::uint32_t iEnd = opByDimOffset_[d + 1];
    std::uint32_t i = opByDimOffset_[d];
    double firstW = 0.0;
    while (i < iEnd) {
        firstW = opNewWorst(i, d, newRecip);
        if (firstW != worst_[opByDimOp_[i]])
            break;
        ++i;
    }
    Seconds msum = msum_;
    if (i < iEnd) {
        const std::uint32_t firstOp = opByDimOp_[i];
        msum = msumPrefix_[firstOp - cw.allMulti_.begin] + firstW;
        ++i;
        for (std::uint32_t op = firstOp + 1; op < cw.allMulti_.end;
             ++op) {
            double w;
            if (i < iEnd && opByDimOp_[i] == op) {
                w = opNewWorst(i, d, newRecip);
                ++i;
            } else {
                w = worst_[op];
            }
            msum += w;
        }
    }

    Seconds total = cw.totalCompute_ + msum;
    for (std::size_t d2 = 0; d2 < cw.numDims_; ++d2)
        total += d2 == d ? cw.allSingles_[d2] * newRecip : aprod_[d2];
    return total;
}

Seconds
WorkloadIncremental::probeTpDp(std::size_t d, double newRecip)
{
    const CompiledWorkload& cw = *cw_;
    const std::size_t dims = cw.numDims_;

    // Rows whose column-d product changes, re-summed left to right
    // with the new product substituted in place.
    rowIdx_.clear();
    rowVal_.clear();
    auto patchRow = [&](std::size_t r) {
        const double np = cw.singles_[r * dims + d] * newRecip;
        if (np != sprod_[r * dims + d]) {
            const double* p = sprod_.data() + r * dims;
            Seconds total = 0.0;
            for (std::size_t k = 0; k < dims; ++k)
                total += k == d ? np : p[k];
            rowIdx_.push_back(static_cast<std::uint32_t>(r));
            rowVal_.push_back(total);
        }
    };
    if (std::isfinite(newRecip)) {
        for (std::uint32_t i = rowByDimOffset_[d];
             i < rowByDimOffset_[d + 1]; ++i) {
            patchRow(rowByDimRow_[i]);
        }
    } else {
        const std::size_t rows = dims == 0 ? 0 : sprod_.size() / dims;
        for (std::size_t r = 0; r < rows; ++r)
            patchRow(r);
    }

    // Phases holding a changed op, re-summed in op order with the
    // recomputed bottlenecks substituted as the walk passes them.
    // Ops on d ascend, so phases come out ascending too.
    phaseIdx_.clear();
    phaseVal_.clear();
    const std::uint32_t iEnd = opByDimOffset_[d + 1];
    std::uint32_t i = opByDimOffset_[d];
    while (i < iEnd) {
        const std::uint32_t op = opByDimOp_[i];
        if (opNewWorst(i, d, newRecip) == worst_[op]) {
            ++i;
            continue;
        }
        const std::uint32_t p = opPhase_[op];
        Seconds total = 0.0;
        for (std::uint32_t op2 = phaseRanges_[p].begin;
             op2 < phaseRanges_[p].end; ++op2) {
            double w;
            if (i < iEnd && opByDimOp_[i] == op2) {
                w = opNewWorst(i, d, newRecip);
                ++i;
            } else {
                w = worst_[op2];
            }
            total += w;
        }
        phaseIdx_.push_back(p);
        phaseVal_.push_back(total);
    }

    // Layer walk with the row/phase overrides merged in: rows and
    // phases both ascend with the layer index.
    Seconds total = 0.0;
    std::size_t ri = 0;
    std::size_t pi = 0;
    std::size_t phase = 0;
    auto rowSum = [&](std::size_t row) {
        if (ri < rowIdx_.size() && rowIdx_[ri] == row)
            return rowVal_[ri++];
        return rowSums_[row];
    };
    auto phaseSum = [&](std::size_t p) {
        if (pi < phaseIdx_.size() && phaseIdx_[pi] == p)
            return phaseVal_[pi++];
        return phaseSums_[p];
    };
    for (const auto& layer : cw.meta_) {
        const std::size_t row = layer.singlesRow / dims;
        Seconds fwdComm = rowSum(row) + phaseSum(phase);
        Seconds igComm = rowSum(row + 1) + phaseSum(phase + 1);
        Seconds wgComm = rowSum(row + 2) + phaseSum(phase + 2);
        Seconds dpPath = layer.wgCompute + wgComm;
        total += layer.fwdCompute + fwdComm + layer.igCompute +
                 (igComm < dpPath ? dpPath : igComm);
        phase += 3;
    }
    return total;
}

Seconds
WorkloadIncremental::baseEstimate()
{
    if (!built_)
        rebase();
    const CompiledWorkload& cw = *cw_;
    if (cw.loop_ == TrainingLoop::NoOverlap) {
        Seconds total = cw.totalCompute_ + msum_;
        for (std::size_t d = 0; d < cw.numDims_; ++d)
            total += aprod_[d];
        return total;
    }
    Seconds total = 0.0;
    const std::size_t dims = cw.numDims_;
    std::size_t phase = 0;
    for (const auto& layer : cw.meta_) {
        const std::size_t row = layer.singlesRow / dims;
        Seconds fwdComm = rowSums_[row] + phaseSums_[phase];
        Seconds igComm = rowSums_[row + 1] + phaseSums_[phase + 1];
        Seconds wgComm = rowSums_[row + 2] + phaseSums_[phase + 2];
        Seconds dpPath = layer.wgCompute + wgComm;
        total += layer.fwdCompute + fwdComm + layer.igCompute +
                 (igComm < dpPath ? dpPath : igComm);
        phase += 3;
    }
    return total;
}

Seconds
WorkloadIncremental::probe(std::size_t dim, double value)
{
    if (!built_)
        rebase();
    const double newRecip = 1.0 / (value * kGiga);
    if (cw_->loop_ == TrainingLoop::NoOverlap)
        return probeNoOverlap(dim, newRecip);
    return probeTpDp(dim, newRecip);
}

} // namespace libra
