#include "core/estimator.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "core/timing_backend.hh"

namespace libra {

namespace {

/**
 * Contract check at the pluggable-timing seam: whatever a custom
 * commTimeFn or non-default backend returns must be nonnegative and
 * finite, with per-dimension vectors aligned with the span list (the
 * detail() accumulators index them by span). The built-in analytical
 * path skips this — it constructs valid timings by definition.
 */
const CollectiveTiming&
checkedTiming(const CollectiveTiming& t,
              const std::vector<DimSpan>& spans, const char* source)
{
    if (!(std::isfinite(t.time) && t.time >= 0.0)) {
        fatal("timing model '", source, "' returned invalid collective "
              "time ", t.time, " (must be nonnegative and finite)");
    }
    if (t.timePerDim.size() != spans.size() ||
        t.trafficPerDim.size() != spans.size()) {
        fatal("timing model '", source, "' returned ",
              t.timePerDim.size(), " per-dim times / ",
              t.trafficPerDim.size(), " per-dim traffics for ",
              spans.size(), " spans");
    }
    for (std::size_t i = 0; i < spans.size(); ++i) {
        if (!(std::isfinite(t.timePerDim[i]) && t.timePerDim[i] >= 0.0 &&
              std::isfinite(t.trafficPerDim[i]) &&
              t.trafficPerDim[i] >= 0.0)) {
            fatal("timing model '", source, "' returned invalid "
                  "time/traffic for span ", i, " (dim ",
                  spans[i].dim + 1, "): ", t.timePerDim[i], " s / ",
                  t.trafficPerDim[i], " bytes");
        }
    }
    return t;
}

} // namespace

TrainingEstimator::TrainingEstimator(Network net, EstimatorOptions options)
    : net_(std::move(net)), options_(std::move(options))
{
    // Resolve (and validate) a non-default backend once up front;
    // the default keeps backend_ null so the analytical path is
    // bit-identical to the historical hard-wired one.
    if (timingBackendOrDefault(options_.timingBackend) !=
        kAnalyticalTimingBackendName) {
        backend_ = resolveTimingBackend(options_.timingBackend);
    }
}

std::vector<DimSpan>
TrainingEstimator::spansFor(const Parallelization& strategy,
                            CommScope scope) const
{
    bool eff = options_.modelPartialDimEfficiency;
    switch (scope) {
      case CommScope::Tp:
        return mapGroupToDims(net_, 1, strategy.tp, eff);
      case CommScope::Pp:
        return mapGroupToDims(net_, strategy.tp, strategy.pp, eff);
      case CommScope::Dp:
        return mapGroupToDims(net_, strategy.tp * strategy.pp,
                              strategy.dp, eff);
      case CommScope::All:
        return mapGroupToDims(net_, 1, net_.npus(), eff);
    }
    panic("unknown comm scope");
}

Seconds
TrainingEstimator::commTime(const CommOp& op,
                            const Parallelization& strategy,
                            const BwConfig& bw) const
{
    auto spans = spansFor(strategy, op.scope);
    if (spans.empty())
        return 0.0;
    return timingOf(op.type, op.size, spans, bw).time;
}

CollectiveTiming
TrainingEstimator::timingOf(CollectiveType type, Bytes size,
                            const std::vector<DimSpan>& spans,
                            const BwConfig& bw) const
{
    if (options_.commTimeFn) {
        return checkedTiming(
            options_.commTimeFn(type, size, spans, bw,
                                options_.inNetworkCollectives),
            spans, "commTimeFn");
    }
    if (backend_) {
        return checkedTiming(
            backend_->timing(type, size, spans, bw,
                             options_.inNetworkCollectives),
            spans, backend_->name().c_str());
    }
    return multiRailTime(type, size, spans, bw,
                         options_.inNetworkCollectives);
}

TrainingEstimator::ScopeSpans
TrainingEstimator::spansForAll(const Parallelization& strategy) const
{
    ScopeSpans all;
    for (CommScope scope : {CommScope::Tp, CommScope::Pp, CommScope::Dp,
                            CommScope::All}) {
        all[static_cast<std::size_t>(scope)] = spansFor(strategy, scope);
    }
    return all;
}

Seconds
TrainingEstimator::commListTime(const std::vector<CommOp>& ops,
                                const ScopeSpans& scopeSpans,
                                const BwConfig& bw,
                                EstimateDetail* detail) const
{
    Seconds total = 0.0;
    for (const auto& op : ops) {
        const auto& spans =
            scopeSpans[static_cast<std::size_t>(op.scope)];
        if (spans.empty())
            continue;
        auto timing = timingOf(op.type, op.size, spans, bw);
        total += timing.time;
        if (detail) {
            for (std::size_t s = 0; s < spans.size(); ++s) {
                detail->dimBusy[spans[s].dim] += timing.timePerDim[s];
                detail->dimTraffic[spans[s].dim] +=
                    timing.trafficPerDim[s];
            }
        }
    }
    return total;
}

Seconds
TrainingEstimator::estimate(const Workload& w, const BwConfig& bw) const
{
    if (bw.size() != net_.numDims())
        panic("bw rank ", bw.size(), " != network dims ", net_.numDims());
    if (w.strategy.npus() != net_.npus()) {
        fatal("workload ", w.name, " uses ", w.strategy.npus(),
              " NPUs but network ", net_.name(), " has ", net_.npus());
    }

    ScopeSpans spans = spansForAll(w.strategy);
    Seconds total = 0.0;
    for (const auto& layer : w.layers) {
        Seconds fwdComm =
            commListTime(layer.fwdComm, spans, bw, nullptr);
        Seconds igComm = commListTime(layer.igComm, spans, bw, nullptr);
        Seconds wgComm = commListTime(layer.wgComm, spans, bw, nullptr);

        total += layer.fwdCompute + fwdComm;
        switch (options_.loop) {
          case TrainingLoop::NoOverlap:
            total += layer.igCompute + igComm + layer.wgCompute + wgComm;
            break;
          case TrainingLoop::TpDpOverlap:
            total += layer.igCompute +
                     std::max(igComm, layer.wgCompute + wgComm);
            break;
        }
    }
    return total;
}

Seconds
CompiledWorkload::opsTime(const std::vector<Op>& ops, const BwConfig& bw)
{
    Seconds total = 0.0;
    for (const auto& op : ops) {
        Seconds worst = 0.0;
        for (const auto& [dim, traffic] : op) {
            Seconds t = transferTime(traffic, bw[dim]);
            if (t > worst)
                worst = t;
        }
        total += worst;
    }
    return total;
}

Seconds
CompiledWorkload::estimateNested(const BwConfig& bw) const
{
    Seconds total = 0.0;
    for (const auto& layer : layers_) {
        total += layer.fwdCompute + opsTime(layer.fwd, bw);
        switch (loop_) {
          case TrainingLoop::NoOverlap:
            total += layer.igCompute + opsTime(layer.ig, bw) +
                     layer.wgCompute + opsTime(layer.wg, bw);
            break;
          case TrainingLoop::TpDpOverlap:
            total += layer.igCompute +
                     std::max(opsTime(layer.ig, bw),
                              layer.wgCompute + opsTime(layer.wg, bw));
            break;
        }
    }
    return total;
}

void
CompiledWorkload::buildSoA()
{
    traffic_.clear();
    entryDim_.clear();
    opOffset_.clear();
    meta_.clear();
    singles_.clear();
    opOffset_.push_back(0);
    totalCompute_ = 0.0;
    allSingles_.assign(numDims_, 0.0);

    // Single-span ops need no bottleneck max: pre-sum their traffic
    // per dimension. Only genuinely multi-span ops keep per-op extents.
    auto flattenPhase = [&](const std::vector<Op>& ops,
                            Bytes* singlesRow) {
        PhaseRange r;
        r.begin = static_cast<std::uint32_t>(opOffset_.size() - 1);
        for (const auto& op : ops) {
            if (op.size() == 1) {
                singlesRow[op.front().first] += op.front().second;
                continue;
            }
            for (const auto& [dim, traffic] : op) {
                entryDim_.push_back(static_cast<std::uint32_t>(dim));
                traffic_.push_back(traffic);
            }
            opOffset_.push_back(
                static_cast<std::uint32_t>(traffic_.size()));
        }
        r.end = static_cast<std::uint32_t>(opOffset_.size() - 1);
        return r;
    };

    for (const auto& layer : layers_) {
        LayerMeta m;
        m.fwdCompute = layer.fwdCompute;
        m.igCompute = layer.igCompute;
        m.wgCompute = layer.wgCompute;
        m.singlesRow = static_cast<std::uint32_t>(singles_.size());
        singles_.resize(singles_.size() + 3 * numDims_, 0.0);
        Bytes* rows = singles_.data() + m.singlesRow;
        m.fwd = flattenPhase(layer.fwd, rows);
        m.ig = flattenPhase(layer.ig, rows + numDims_);
        m.wg = flattenPhase(layer.wg, rows + 2 * numDims_);
        meta_.push_back(m);

        totalCompute_ +=
            layer.fwdCompute + layer.igCompute + layer.wgCompute;
    }

    // NoOverlap collapse: all phase times add, so fold every layer's
    // singles into one per-dim vector and span all multi ops at once.
    for (std::size_t row = 0; row < singles_.size(); ++row)
        allSingles_[row % numDims_] += singles_[row];
    allMulti_.begin = 0;
    allMulti_.end = static_cast<std::uint32_t>(opOffset_.size() - 1);
}

Seconds
CompiledWorkload::multiOpsTime(PhaseRange r, const double* recip) const
{
    const Bytes* traffic = traffic_.data();
    const std::uint32_t* dim = entryDim_.data();
    const std::uint32_t* offset = opOffset_.data();
    Seconds total = 0.0;
    for (std::uint32_t op = r.begin; op < r.end; ++op) {
        Seconds worst = 0.0;
        for (std::uint32_t k = offset[op]; k < offset[op + 1]; ++k) {
            Seconds t = traffic[k] * recip[dim[k]];
            if (t > worst)
                worst = t;
        }
        total += worst;
    }
    return total;
}

Seconds
CompiledWorkload::singlesTime(std::uint32_t row, const double* recip) const
{
    const Bytes* s = singles_.data() + row;
    Seconds total = 0.0;
    for (std::size_t d = 0; d < numDims_; ++d)
        total += s[d] * recip[d];
    return total;
}

Seconds
CompiledWorkload::estimate(const BwConfig& bw) const
{
    // Per-dimension reciprocal scaling, computed once per call: the
    // hot loops are then pure multiply-and-max over flat arrays.
    constexpr std::size_t kInlineDims = 16;
    double recipInline[kInlineDims];
    std::vector<double> recipHeap;
    double* recip = recipInline;
    if (numDims_ > kInlineDims) {
        recipHeap.resize(numDims_);
        recip = recipHeap.data();
    }
    for (std::size_t d = 0; d < numDims_; ++d)
        recip[d] = 1.0 / (bw[d] * kGiga);

    if (loop_ == TrainingLoop::NoOverlap) {
        // Everything adds: no layer loop, just the global aggregates.
        Seconds total = totalCompute_ + multiOpsTime(allMulti_, recip);
        for (std::size_t d = 0; d < numDims_; ++d)
            total += allSingles_[d] * recip[d];
        return total;
    }

    Seconds total = 0.0;
    const std::uint32_t dims = static_cast<std::uint32_t>(numDims_);
    for (const auto& layer : meta_) {
        Seconds fwdComm = singlesTime(layer.singlesRow, recip) +
                          multiOpsTime(layer.fwd, recip);
        Seconds igComm = singlesTime(layer.singlesRow + dims, recip) +
                         multiOpsTime(layer.ig, recip);
        Seconds wgComm =
            singlesTime(layer.singlesRow + 2 * dims, recip) +
            multiOpsTime(layer.wg, recip);
        total += layer.fwdCompute + fwdComm + layer.igCompute +
                 std::max(igComm, layer.wgCompute + wgComm);
    }
    return total;
}

CompiledWorkload
TrainingEstimator::compile(const Workload& w) const
{
    if (options_.commTimeFn) {
        fatal("cannot compile a workload under a custom collective "
              "timing model");
    }
    if (backend_) {
        fatal("cannot compile a workload under the '",
              options_.timingBackend,
              "' timing backend (only the analytical model "
              "precompiles)");
    }
    if (w.strategy.npus() != net_.npus()) {
        fatal("workload ", w.name, " uses ", w.strategy.npus(),
              " NPUs but network ", net_.name(), " has ", net_.npus());
    }

    ScopeSpans scopeSpans = spansForAll(w.strategy);
    auto compileOps = [&](const std::vector<CommOp>& ops) {
        std::vector<CompiledWorkload::Op> out;
        for (const auto& op : ops) {
            const auto& spans =
                scopeSpans[static_cast<std::size_t>(op.scope)];
            if (spans.empty())
                continue;
            CollectiveTiming timing =
                multiRailTime(op.type, op.size, spans,
                              BwConfig(net_.numDims(), 1.0),
                              options_.inNetworkCollectives);
            CompiledWorkload::Op compiled;
            for (std::size_t s = 0; s < spans.size(); ++s) {
                // Fold the partial-span efficiency into the traffic so
                // evaluation stays a plain traffic/BW division.
                compiled.emplace_back(spans[s].dim,
                                      timing.trafficPerDim[s] /
                                          spans[s].efficiency);
            }
            out.push_back(std::move(compiled));
        }
        return out;
    };

    CompiledWorkload cw;
    cw.loop_ = options_.loop;
    cw.numDims_ = net_.numDims();
    for (const auto& layer : w.layers) {
        CompiledWorkload::CompiledLayer cl;
        cl.fwdCompute = layer.fwdCompute;
        cl.igCompute = layer.igCompute;
        cl.wgCompute = layer.wgCompute;
        cl.fwd = compileOps(layer.fwdComm);
        cl.ig = compileOps(layer.igComm);
        cl.wg = compileOps(layer.wgComm);
        cw.layers_.push_back(std::move(cl));
    }
    cw.buildSoA();
    return cw;
}

EstimateDetail
TrainingEstimator::detail(const Workload& w, const BwConfig& bw) const
{
    EstimateDetail d;
    d.dimBusy.assign(net_.numDims(), 0.0);
    d.dimTraffic.assign(net_.numDims(), 0.0);

    ScopeSpans spans = spansForAll(w.strategy);
    for (const auto& layer : w.layers) {
        Seconds fwdComm = commListTime(layer.fwdComm, spans, bw, &d);
        Seconds igComm = commListTime(layer.igComm, spans, bw, &d);
        Seconds wgComm = commListTime(layer.wgComm, spans, bw, &d);

        d.fwdCompute += layer.fwdCompute;
        d.fwdComm += fwdComm;
        d.igCompute += layer.igCompute;
        d.igComm += igComm;
        d.wgCompute += layer.wgCompute;
        d.wgComm += wgComm;

        d.total += layer.fwdCompute + fwdComm;
        switch (options_.loop) {
          case TrainingLoop::NoOverlap:
            d.total += layer.igCompute + igComm + layer.wgCompute + wgComm;
            d.exposedComm += fwdComm + igComm + wgComm;
            break;
          case TrainingLoop::TpDpOverlap: {
            Seconds bwdTail = std::max(igComm, layer.wgCompute + wgComm);
            d.total += layer.igCompute + bwdTail;
            d.exposedComm += fwdComm + bwdTail -
                             std::min(bwdTail, layer.wgCompute);
            break;
          }
        }
    }
    d.computeTotal = d.fwdCompute + d.igCompute + d.wgCompute;

    // Fig. 10 metric: bytes actually moved over the byte-capacity the
    // whole fabric offers while communication is in flight.
    double sumBw = 0.0;
    for (double b : bw)
        sumBw += b;
    Bytes moved = 0.0;
    for (Bytes t : d.dimTraffic)
        moved += t;
    Seconds commTime = d.fwdComm + d.igComm + d.wgComm;
    if (commTime > 0.0 && sumBw > 0.0) {
        d.avgBwUtilization =
            moved / (sumBw * kGiga * commTime);
    }
    return d;
}

} // namespace libra
