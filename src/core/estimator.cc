#include "core/estimator.hh"

#include <algorithm>

#include "common/logging.hh"

namespace libra {

TrainingEstimator::TrainingEstimator(Network net, EstimatorOptions options)
    : net_(std::move(net)), options_(options)
{}

std::vector<DimSpan>
TrainingEstimator::spansFor(const Parallelization& strategy,
                            CommScope scope) const
{
    bool eff = options_.modelPartialDimEfficiency;
    switch (scope) {
      case CommScope::Tp:
        return mapGroupToDims(net_, 1, strategy.tp, eff);
      case CommScope::Pp:
        return mapGroupToDims(net_, strategy.tp, strategy.pp, eff);
      case CommScope::Dp:
        return mapGroupToDims(net_, strategy.tp * strategy.pp,
                              strategy.dp, eff);
      case CommScope::All:
        return mapGroupToDims(net_, 1, net_.npus(), eff);
    }
    panic("unknown comm scope");
}

Seconds
TrainingEstimator::commTime(const CommOp& op,
                            const Parallelization& strategy,
                            const BwConfig& bw) const
{
    auto spans = spansFor(strategy, op.scope);
    if (spans.empty())
        return 0.0;
    return timingOf(op.type, op.size, spans, bw).time;
}

CollectiveTiming
TrainingEstimator::timingOf(CollectiveType type, Bytes size,
                            const std::vector<DimSpan>& spans,
                            const BwConfig& bw) const
{
    if (options_.commTimeFn) {
        return options_.commTimeFn(type, size, spans, bw,
                                   options_.inNetworkCollectives);
    }
    return multiRailTime(type, size, spans, bw,
                         options_.inNetworkCollectives);
}

Seconds
TrainingEstimator::commListTime(const std::vector<CommOp>& ops,
                                const Parallelization& strategy,
                                const BwConfig& bw,
                                EstimateDetail* detail) const
{
    Seconds total = 0.0;
    for (const auto& op : ops) {
        auto spans = spansFor(strategy, op.scope);
        if (spans.empty())
            continue;
        auto timing = timingOf(op.type, op.size, spans, bw);
        total += timing.time;
        if (detail) {
            for (std::size_t s = 0; s < spans.size(); ++s) {
                detail->dimBusy[spans[s].dim] += timing.timePerDim[s];
                detail->dimTraffic[spans[s].dim] +=
                    timing.trafficPerDim[s];
            }
        }
    }
    return total;
}

Seconds
TrainingEstimator::estimate(const Workload& w, const BwConfig& bw) const
{
    if (bw.size() != net_.numDims())
        panic("bw rank ", bw.size(), " != network dims ", net_.numDims());
    if (w.strategy.npus() != net_.npus()) {
        fatal("workload ", w.name, " uses ", w.strategy.npus(),
              " NPUs but network ", net_.name(), " has ", net_.npus());
    }

    Seconds total = 0.0;
    for (const auto& layer : w.layers) {
        Seconds fwdComm =
            commListTime(layer.fwdComm, w.strategy, bw, nullptr);
        Seconds igComm =
            commListTime(layer.igComm, w.strategy, bw, nullptr);
        Seconds wgComm =
            commListTime(layer.wgComm, w.strategy, bw, nullptr);

        total += layer.fwdCompute + fwdComm;
        switch (options_.loop) {
          case TrainingLoop::NoOverlap:
            total += layer.igCompute + igComm + layer.wgCompute + wgComm;
            break;
          case TrainingLoop::TpDpOverlap:
            total += layer.igCompute +
                     std::max(igComm, layer.wgCompute + wgComm);
            break;
        }
    }
    return total;
}

Seconds
CompiledWorkload::opsTime(const std::vector<Op>& ops, const BwConfig& bw)
{
    Seconds total = 0.0;
    for (const auto& op : ops) {
        Seconds worst = 0.0;
        for (const auto& [dim, traffic] : op) {
            Seconds t = transferTime(traffic, bw[dim]);
            if (t > worst)
                worst = t;
        }
        total += worst;
    }
    return total;
}

Seconds
CompiledWorkload::estimate(const BwConfig& bw) const
{
    Seconds total = 0.0;
    for (const auto& layer : layers_) {
        total += layer.fwdCompute + opsTime(layer.fwd, bw);
        switch (loop_) {
          case TrainingLoop::NoOverlap:
            total += layer.igCompute + opsTime(layer.ig, bw) +
                     layer.wgCompute + opsTime(layer.wg, bw);
            break;
          case TrainingLoop::TpDpOverlap:
            total += layer.igCompute +
                     std::max(opsTime(layer.ig, bw),
                              layer.wgCompute + opsTime(layer.wg, bw));
            break;
        }
    }
    return total;
}

CompiledWorkload
TrainingEstimator::compile(const Workload& w) const
{
    if (options_.commTimeFn) {
        fatal("cannot compile a workload under a custom collective "
              "timing model");
    }
    if (w.strategy.npus() != net_.npus()) {
        fatal("workload ", w.name, " uses ", w.strategy.npus(),
              " NPUs but network ", net_.name(), " has ", net_.npus());
    }

    auto compileOps = [&](const std::vector<CommOp>& ops) {
        std::vector<CompiledWorkload::Op> out;
        for (const auto& op : ops) {
            auto spans = spansFor(w.strategy, op.scope);
            if (spans.empty())
                continue;
            CollectiveTiming timing =
                multiRailTime(op.type, op.size, spans,
                              BwConfig(net_.numDims(), 1.0),
                              options_.inNetworkCollectives);
            CompiledWorkload::Op compiled;
            for (std::size_t s = 0; s < spans.size(); ++s) {
                // Fold the partial-span efficiency into the traffic so
                // evaluation stays a plain traffic/BW division.
                compiled.emplace_back(spans[s].dim,
                                      timing.trafficPerDim[s] /
                                          spans[s].efficiency);
            }
            out.push_back(std::move(compiled));
        }
        return out;
    };

    CompiledWorkload cw;
    cw.loop_ = options_.loop;
    for (const auto& layer : w.layers) {
        CompiledWorkload::CompiledLayer cl;
        cl.fwdCompute = layer.fwdCompute;
        cl.igCompute = layer.igCompute;
        cl.wgCompute = layer.wgCompute;
        cl.fwd = compileOps(layer.fwdComm);
        cl.ig = compileOps(layer.igComm);
        cl.wg = compileOps(layer.wgComm);
        cw.layers_.push_back(std::move(cl));
    }
    return cw;
}

EstimateDetail
TrainingEstimator::detail(const Workload& w, const BwConfig& bw) const
{
    EstimateDetail d;
    d.dimBusy.assign(net_.numDims(), 0.0);
    d.dimTraffic.assign(net_.numDims(), 0.0);

    for (const auto& layer : w.layers) {
        Seconds fwdComm = commListTime(layer.fwdComm, w.strategy, bw, &d);
        Seconds igComm = commListTime(layer.igComm, w.strategy, bw, &d);
        Seconds wgComm = commListTime(layer.wgComm, w.strategy, bw, &d);

        d.fwdCompute += layer.fwdCompute;
        d.fwdComm += fwdComm;
        d.igCompute += layer.igCompute;
        d.igComm += igComm;
        d.wgCompute += layer.wgCompute;
        d.wgComm += wgComm;

        d.total += layer.fwdCompute + fwdComm;
        switch (options_.loop) {
          case TrainingLoop::NoOverlap:
            d.total += layer.igCompute + igComm + layer.wgCompute + wgComm;
            d.exposedComm += fwdComm + igComm + wgComm;
            break;
          case TrainingLoop::TpDpOverlap: {
            Seconds bwdTail = std::max(igComm, layer.wgCompute + wgComm);
            d.total += layer.igCompute + bwdTail;
            d.exposedComm += fwdComm + bwdTail -
                             std::min(bwdTail, layer.wgCompute);
            break;
          }
        }
    }
    d.computeTotal = d.fwdCompute + d.igCompute + d.wgCompute;

    // Fig. 10 metric: bytes actually moved over the byte-capacity the
    // whole fabric offers while communication is in flight.
    double sumBw = 0.0;
    for (double b : bw)
        sumBw += b;
    Bytes moved = 0.0;
    for (Bytes t : d.dimTraffic)
        moved += t;
    Seconds commTime = d.fwdComm + d.igComm + d.wgComm;
    if (commTime > 0.0 && sumBw > 0.0) {
        d.avgBwUtilization =
            moved / (sumBw * kGiga * commTime);
    }
    return d;
}

} // namespace libra
