/**
 * @file
 * End-to-end training-time estimation (paper §IV-C).
 *
 * The estimator turns a workload IR plus a bandwidth configuration into
 * an end-to-end iteration time under a chosen training loop:
 *
 *  - NoOverlap (Fig. 5b): every compute and communication stage runs
 *    exclusively; times add up.
 *  - TpDpOverlap (Fig. 5c): in the backward pass, TP communication
 *    overlaps DP compute + DP communication:
 *      t_bwd(layer) = TP_comp + max(TP_comm, DP_comp + DP_comm).
 *
 * All communication times are functions of the per-dimension bandwidth
 * vector only — the property LIBRA's optimizer exploits.
 */

#ifndef LIBRA_CORE_ESTIMATOR_HH
#define LIBRA_CORE_ESTIMATOR_HH

#include <functional>
#include <vector>

#include "collective/mapping.hh"
#include "collective/multi_rail.hh"
#include "topology/network.hh"
#include "workload/workload.hh"

namespace libra {

/** Compute/communication scheduling policy (paper Fig. 5). */
enum class TrainingLoop { NoOverlap, TpDpOverlap };

/**
 * Pluggable collective-time model. The default is the analytical
 * multi-rail bottleneck model; runtime optimizers (e.g. Themis) install
 * their own timing here.
 */
using CommTimeFn = std::function<CollectiveTiming(
    CollectiveType, Bytes, const std::vector<DimSpan>&, const BwConfig&,
    bool in_network)>;

/** Full timing breakdown of one training iteration. */
struct EstimateDetail
{
    Seconds total = 0.0;        ///< End-to-end iteration time.
    Seconds computeTotal = 0.0; ///< All compute across phases.
    Seconds exposedComm = 0.0;  ///< Communication on the critical path.

    Seconds fwdCompute = 0.0;
    Seconds fwdComm = 0.0;
    Seconds igCompute = 0.0;    ///< TP backward compute.
    Seconds igComm = 0.0;       ///< TP backward communication.
    Seconds wgCompute = 0.0;    ///< DP backward compute.
    Seconds wgComm = 0.0;       ///< DP gradient-sync communication.

    /** Per-network-dimension busy seconds summed over all collectives. */
    std::vector<Seconds> dimBusy;

    /** Per-network-dimension bytes moved (per NPU). */
    std::vector<Bytes> dimTraffic;

    /**
     * Fraction of total network byte-capacity used while communication
     * is in flight: sum(traffic) / (sum(B) * comm time). The Fig. 10
     * "average network BW utilization" metric.
     */
    double avgBwUtilization = 0.0;
};

/** Estimator options. */
struct EstimatorOptions
{
    TrainingLoop loop = TrainingLoop::NoOverlap;
    bool inNetworkCollectives = false; ///< Switch-offloaded All-Reduce.
    CommTimeFn commTimeFn;             ///< Empty = analytical model.

    /**
     * Model the achievable-BW penalty of communicator groups that span
     * a dimension only partially (see DimSpan::efficiency). Disable to
     * reproduce the paper's efficiency-blind optimizer behaviour.
     */
    bool modelPartialDimEfficiency = true;
};

/**
 * Precompiled evaluation form of one workload on one network.
 *
 * The optimizer evaluates the training-time objective tens of thousands
 * of times; compiling resolves every collective to its per-dimension
 * traffic once, so an evaluation is a handful of divisions and max()
 * operations per layer. Produces bit-identical results to
 * TrainingEstimator::estimate() for the default analytical model.
 */
class CompiledWorkload
{
  public:
    /** Iteration time under @p bw (GB/s per dimension). */
    Seconds estimate(const BwConfig& bw) const;

  private:
    friend class TrainingEstimator;

    /** One collective resolved to (dimension, bytes) pairs. */
    using Op = std::vector<std::pair<std::size_t, Bytes>>;

    struct CompiledLayer
    {
        Seconds fwdCompute = 0.0;
        Seconds igCompute = 0.0;
        Seconds wgCompute = 0.0;
        std::vector<Op> fwd, ig, wg;
    };

    static Seconds opsTime(const std::vector<Op>& ops, const BwConfig& bw);

    TrainingLoop loop_ = TrainingLoop::NoOverlap;
    std::vector<CompiledLayer> layers_;
};

/** Estimates training time for workloads on one network. */
class TrainingEstimator
{
  public:
    TrainingEstimator(Network net, EstimatorOptions options = {});

    const Network& network() const { return net_; }
    const EstimatorOptions& options() const { return options_; }

    /** Dimension spans of a comm scope under @p strategy. */
    std::vector<DimSpan> spansFor(const Parallelization& strategy,
                                  CommScope scope) const;

    /** Time of one collective op under @p bw. */
    Seconds commTime(const CommOp& op, const Parallelization& strategy,
                     const BwConfig& bw) const;

    /** End-to-end iteration time. */
    Seconds estimate(const Workload& w, const BwConfig& bw) const;

    /**
     * Precompile @p w for fast repeated evaluation. Only valid for the
     * built-in analytical model (no custom commTimeFn).
     */
    CompiledWorkload compile(const Workload& w) const;

    /** Full breakdown (slower; for reporting). */
    EstimateDetail detail(const Workload& w, const BwConfig& bw) const;

  private:
    /** Timing of one collective via the configured model. */
    CollectiveTiming timingOf(CollectiveType type, Bytes size,
                              const std::vector<DimSpan>& spans,
                              const BwConfig& bw) const;

    Seconds commListTime(const std::vector<CommOp>& ops,
                         const Parallelization& strategy,
                         const BwConfig& bw,
                         EstimateDetail* detail) const;

    Network net_;
    EstimatorOptions options_;
};

} // namespace libra

#endif // LIBRA_CORE_ESTIMATOR_HH
