/**
 * @file
 * End-to-end training-time estimation (paper §IV-C).
 *
 * The estimator turns a workload IR plus a bandwidth configuration into
 * an end-to-end iteration time under a chosen training loop:
 *
 *  - NoOverlap (Fig. 5b): every compute and communication stage runs
 *    exclusively; times add up.
 *  - TpDpOverlap (Fig. 5c): in the backward pass, TP communication
 *    overlaps DP compute + DP communication:
 *      t_bwd(layer) = TP_comp + max(TP_comm, DP_comp + DP_comm).
 *
 * All communication times are functions of the per-dimension bandwidth
 * vector only — the property LIBRA's optimizer exploits.
 */

#ifndef LIBRA_CORE_ESTIMATOR_HH
#define LIBRA_CORE_ESTIMATOR_HH

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "collective/mapping.hh"
#include "collective/multi_rail.hh"
#include "topology/network.hh"
#include "workload/workload.hh"

namespace libra {

/** Compute/communication scheduling policy (paper Fig. 5). */
enum class TrainingLoop { NoOverlap, TpDpOverlap };

class TimingBackend;
class WorkloadIncremental;

namespace detail {
template <typename Lane> struct BatchKernel;
} // namespace detail

/**
 * Name of the SIMD kernel estimateBatch dispatches full-width blocks
 * to: "avx512", "avx2", "neon", or "scalar". Decided once at startup
 * from the kernels compiled in (the LIBRA_SIMD CMake option) and what
 * the running CPU supports. Purely informational — every kernel is
 * bit-identical to the scalar path.
 */
const char* activeSimdKernel();

/**
 * Pluggable collective-time model. The default is the analytical
 * multi-rail bottleneck model; runtime optimizers (e.g. Themis) install
 * their own timing here.
 *
 * Thread-safety contract: one TrainingEstimator is shared by every
 * solver thread, so an installed CommTimeFn MUST be const-callable
 * from multiple threads concurrently and carry no unsynchronized
 * mutable state. The engine cannot verify this, so it plays safe: a
 * custom fn serializes the multistart/sweep fan-out (see
 * BwOptimizer::optimize and runLibraSweep) and makes the study point
 * uncacheable. Named TimingBackend registrations promise thread
 * safety and keep both (docs/BACKENDS.md) — prefer them for any
 * reusable timing model.
 *
 * Whatever the source, a returned CollectiveTiming must be
 * nonnegative and finite, with per-dimension vectors aligned with the
 * span list; the estimator checks this at the seam and throws
 * FatalError on a violation.
 */
using CommTimeFn = std::function<CollectiveTiming(
    CollectiveType, Bytes, const std::vector<DimSpan>&, const BwConfig&,
    bool in_network)>;

/** Full timing breakdown of one training iteration. */
struct EstimateDetail
{
    Seconds total = 0.0;        ///< End-to-end iteration time.
    Seconds computeTotal = 0.0; ///< All compute across phases.
    Seconds exposedComm = 0.0;  ///< Communication on the critical path.

    Seconds fwdCompute = 0.0;
    Seconds fwdComm = 0.0;
    Seconds igCompute = 0.0;    ///< TP backward compute.
    Seconds igComm = 0.0;       ///< TP backward communication.
    Seconds wgCompute = 0.0;    ///< DP backward compute.
    Seconds wgComm = 0.0;       ///< DP gradient-sync communication.

    /** Per-network-dimension busy seconds summed over all collectives. */
    std::vector<Seconds> dimBusy;

    /** Per-network-dimension bytes moved (per NPU). */
    std::vector<Bytes> dimTraffic;

    /**
     * Fraction of total network byte-capacity used while communication
     * is in flight: sum(traffic) / (sum(B) * comm time). The Fig. 10
     * "average network BW utilization" metric.
     */
    double avgBwUtilization = 0.0;
};

/** Estimator options. */
struct EstimatorOptions
{
    TrainingLoop loop = TrainingLoop::NoOverlap;
    bool inNetworkCollectives = false; ///< Switch-offloaded All-Reduce.
    CommTimeFn commTimeFn;             ///< Empty = timingBackend below.

    /**
     * Registered timing-backend name ("" or "analytical" = the
     * default closed-form model, bit-identical to the historical
     * path; "chunk-sim" = per-collective pipeline simulation). See
     * core/timing_backend.hh; an explicit commTimeFn wins over the
     * backend. Resolved (and validated) when the estimator is built.
     */
    std::string timingBackend;

    /**
     * Model the achievable-BW penalty of communicator groups that span
     * a dimension only partially (see DimSpan::efficiency). Disable to
     * reproduce the paper's efficiency-blind optimizer behaviour.
     */
    bool modelPartialDimEfficiency = true;
};

/**
 * Precompiled evaluation form of one workload on one network.
 *
 * The optimizer evaluates the training-time objective tens of thousands
 * of times; compiling resolves every collective to its per-dimension
 * traffic once. Evaluation runs over a flat structure-of-arrays layout:
 *
 *  - Ops spanning a single dimension need no bottleneck max, and their
 *    times simply add — so their traffic is pre-summed per (layer,
 *    phase, dim) at compile time. Under NoOverlap the whole workload
 *    further collapses to one per-dim traffic vector plus a compute
 *    constant, making an evaluation O(dims + multi-span entries) with
 *    no layer loop at all.
 *  - Ops spanning several dimensions keep per-op extents into one
 *    contiguous (traffic, dim) entry array for the max reduction.
 *
 * Per call the bandwidth vector is inverted once (reciprocal GB/s
 * scaling), so the hot loop is a branch-light multiply-and-max over
 * contiguous memory — no pointer chasing, no divisions. Aggregation
 * reorders floating-point additions, so results agree with
 * TrainingEstimator::estimate() to summation rounding (~n*eps; the
 * property tests assert 1e-12 relative), and are always bit-identical
 * run-to-run at any thread count.
 *
 * CompiledWorkload is immutable after compile() and estimate() is pure,
 * so one instance may be shared by any number of solver threads.
 */
class CompiledWorkload
{
  public:
    /** Iteration time under @p bw (GB/s per dimension); SoA fast path. */
    Seconds estimate(const BwConfig& bw) const;

    /**
     * Evaluate @p n bandwidth configurations into @p out, SIMD lanes
     * laid across candidates (core/eval_kernels_impl.hh). Each out[i]
     * is bit-identical to estimate(bws[i]); candidates beyond the last
     * full SIMD block take the scalar path directly.
     */
    void estimateBatch(const BwConfig* bws, std::size_t n,
                       Seconds* out) const;

    /** Convenience overload of the batched evaluator. */
    std::vector<Seconds>
    estimateBatch(const std::vector<BwConfig>& bws) const
    {
        std::vector<Seconds> out(bws.size(), 0.0);
        estimateBatch(bws.data(), bws.size(), out.data());
        return out;
    }

    /**
     * Iteration time via the legacy nested (vector-of-vector-of-pairs)
     * layout. Kept as the A/B reference for bench/micro_objective_eval
     * and the equivalence tests; same math, slower memory walk.
     */
    Seconds estimateNested(const BwConfig& bw) const;

    /** Network rank this workload was compiled against. */
    std::size_t numDims() const { return numDims_; }

  private:
    friend class TrainingEstimator;

    /** The batched SIMD kernels evaluate the SoA arrays directly. */
    template <typename Lane> friend struct detail::BatchKernel;

    /** The incremental evaluator caches per-op/per-dim partials. */
    friend class WorkloadIncremental;

    /** One collective resolved to (dimension, bytes) pairs. */
    using Op = std::vector<std::pair<std::size_t, Bytes>>;

    struct CompiledLayer
    {
        Seconds fwdCompute = 0.0;
        Seconds igCompute = 0.0;
        Seconds wgCompute = 0.0;
        std::vector<Op> fwd, ig, wg;
    };

    /** Half-open multi-span-op range [begin, end) into opOffset_. */
    struct PhaseRange
    {
        std::uint32_t begin = 0;
        std::uint32_t end = 0;
    };

    /**
     * SoA per-layer record (TpDpOverlap path): compute times,
     * multi-span op ranges, and the index of this layer's per-dim
     * single-span traffic rows in singles_.
     */
    struct LayerMeta
    {
        Seconds fwdCompute = 0.0;
        Seconds igCompute = 0.0;
        Seconds wgCompute = 0.0;
        PhaseRange fwd, ig, wg;
        std::uint32_t singlesRow = 0; ///< fwd row; ig/wg follow.
    };

    static Seconds opsTime(const std::vector<Op>& ops, const BwConfig& bw);

    /** Bottleneck-time sum of the multi-span ops in @p r. */
    Seconds multiOpsTime(PhaseRange r, const double* recip) const;

    /** Dot of a singles_ row with the reciprocal-bandwidth vector. */
    Seconds singlesTime(std::uint32_t row, const double* recip) const;

    /** Build the flat arrays from layers_. */
    void buildSoA();

    TrainingLoop loop_ = TrainingLoop::NoOverlap;
    std::vector<CompiledLayer> layers_; ///< Nested reference layout.

    // SoA evaluation layout (derived from layers_ by buildSoA).
    std::size_t numDims_ = 0;
    std::vector<Bytes> traffic_;         ///< Multi-span op traffic.
    std::vector<std::uint32_t> entryDim_; ///< Dim of each traffic entry.
    std::vector<std::uint32_t> opOffset_; ///< Entry extents; numOps + 1.
    std::vector<LayerMeta> meta_;

    /**
     * Per-dim traffic sums of single-span ops, numDims_ values per
     * row: one row per (layer, phase) for TpDpOverlap.
     */
    std::vector<Bytes> singles_;

    // NoOverlap whole-workload aggregates: every phase time adds, so
    // evaluation needs no layer loop at all.
    Seconds totalCompute_ = 0.0;
    std::vector<Bytes> allSingles_;    ///< numDims_ traffic sums.
    PhaseRange allMulti_;              ///< All multi-span ops.
};

/**
 * Estimates training time for workloads on one network.
 *
 * All query methods are const and touch no mutable state, so a single
 * estimator may be shared across solver threads (provided any custom
 * commTimeFn is itself thread-safe; the built-in analytical model is).
 */
class TrainingEstimator
{
  public:
    TrainingEstimator(Network net, EstimatorOptions options = {});

    const Network& network() const { return net_; }
    const EstimatorOptions& options() const { return options_; }

    /**
     * True when timing comes from the built-in analytical model (no
     * custom commTimeFn, default backend) — the precondition for
     * compile() and the SoA objective fast path.
     */
    bool
    usesAnalyticalTiming() const
    {
        return !options_.commTimeFn && backend_ == nullptr;
    }

    /** Dimension spans of a comm scope under @p strategy. */
    std::vector<DimSpan> spansFor(const Parallelization& strategy,
                                  CommScope scope) const;

    /**
     * Span vectors of all four comm scopes, indexed by CommScope.
     * Computed once per estimate()/detail()/compile() call so the
     * per-op group-to-dimension mapping is not redone for every op of
     * every layer.
     */
    using ScopeSpans = std::array<std::vector<DimSpan>, 4>;
    ScopeSpans spansForAll(const Parallelization& strategy) const;

    /** Time of one collective op under @p bw. */
    Seconds commTime(const CommOp& op, const Parallelization& strategy,
                     const BwConfig& bw) const;

    /** End-to-end iteration time. */
    Seconds estimate(const Workload& w, const BwConfig& bw) const;

    /**
     * Precompile @p w for fast repeated evaluation. Only valid for the
     * built-in analytical model (no custom commTimeFn, default
     * timing backend).
     */
    CompiledWorkload compile(const Workload& w) const;

    /** Full breakdown (slower; for reporting). */
    EstimateDetail detail(const Workload& w, const BwConfig& bw) const;

  private:
    /** Timing of one collective via the configured model. */
    CollectiveTiming timingOf(CollectiveType type, Bytes size,
                              const std::vector<DimSpan>& spans,
                              const BwConfig& bw) const;

    Seconds commListTime(const std::vector<CommOp>& ops,
                         const ScopeSpans& spans, const BwConfig& bw,
                         EstimateDetail* detail) const;

    Network net_;
    EstimatorOptions options_;

    /**
     * Resolved non-default timing backend; nullptr for the default
     * analytical model, so the historical hot path is untouched.
     */
    const TimingBackend* backend_ = nullptr;
};

} // namespace libra

#endif // LIBRA_CORE_ESTIMATOR_HH
