/**
 * @file
 * The LIBRA framework facade (paper Fig. 3).
 *
 * Bundles the full input set — network shape, target workloads, cost
 * model, training loop, objective, and design constraints — and produces
 * the optimized design point together with the EqualBW baseline and the
 * headline comparison metrics (speedup and perf-per-cost gain).
 */

#ifndef LIBRA_CORE_FRAMEWORK_HH
#define LIBRA_CORE_FRAMEWORK_HH

#include <string>
#include <vector>

#include "core/optimizer.hh"

namespace libra {

/** Everything LIBRA needs for one design study (the Fig. 3 obrounds). */
struct LibraInputs
{
    std::string networkShape;             ///< e.g. "RI(4)_FC(8)_SW(32)".
    std::vector<TargetWorkload> targets;  ///< Workloads + weights.
    CostModel costModel = CostModel::defaultModel();
    OptimizerConfig config;
    bool normalizeTargetWeights = false;  ///< 1/T_EqualBW weighting.
};

/** Optimized point, baseline, and derived comparison metrics. */
struct LibraReport
{
    OptimizationResult optimized;
    OptimizationResult equalBw;

    /** EqualBW time / optimized time (>1 means LIBRA is faster). */
    double speedup = 0.0;

    /**
     * Perf-per-cost gain over EqualBW:
     * (1/(t*c))_optimized / (1/(t*c))_equalBW.
     */
    double perfPerCostGain = 0.0;
};

/** Run a full LIBRA design study. */
LibraReport runLibra(const LibraInputs& inputs);

} // namespace libra

#endif // LIBRA_CORE_FRAMEWORK_HH
