/**
 * @file
 * The LIBRA framework facade (paper Fig. 3).
 *
 * Bundles the full input set — network shape, target workloads, cost
 * model, training loop, objective, and design constraints — and produces
 * the optimized design point together with the EqualBW baseline and the
 * headline comparison metrics (speedup and perf-per-cost gain).
 */

#ifndef LIBRA_CORE_FRAMEWORK_HH
#define LIBRA_CORE_FRAMEWORK_HH

#include <string>
#include <vector>

#include "core/optimizer.hh"

namespace libra {

/** Everything LIBRA needs for one design study (the Fig. 3 obrounds). */
struct LibraInputs
{
    std::string networkShape;             ///< e.g. "RI(4)_FC(8)_SW(32)".
    std::vector<TargetWorkload> targets;  ///< Workloads + weights.
    CostModel costModel = CostModel::defaultModel();
    OptimizerConfig config;
    bool normalizeTargetWeights = false;  ///< 1/T_EqualBW weighting.

    /**
     * Parallelism for this study (the THREADS / --threads knob).
     * 0 keeps the current global pool size (LIBRA_THREADS or hardware
     * concurrency). Results are identical at any value.
     */
    int threads = 0;

    /**
     * Canonical exploration-strategy spec (the EXPLORE / --explore
     * knob; see explore/explore.hh). "" selects the exhaustive
     * default. For a single study point the spec is inert identity
     * (one candidate has nothing to prune), but design-space scenarios
     * evaluated under a non-default strategy stamp it onto every
     * candidate so their cache keys never collide with exhaustive
     * runs' keys.
     */
    std::string explore;
};

/** Optimized point, baseline, and derived comparison metrics. */
struct LibraReport
{
    OptimizationResult optimized;
    OptimizationResult equalBw;

    /** EqualBW time / optimized time (>1 means LIBRA is faster). */
    double speedup = 0.0;

    /**
     * Perf-per-cost gain over EqualBW:
     * (1/(t*c))_optimized / (1/(t*c))_equalBW.
     */
    double perfPerCostGain = 0.0;
};

/** Run a full LIBRA design study. */
LibraReport runLibra(const LibraInputs& inputs);

/**
 * Run a batch of independent design studies — a topology / budget /
 * workload-mix sweep — concurrently on the global thread pool. Reports
 * come back aligned with @p points, and each report is bit-identical
 * to a standalone runLibra() of the same point. Per-point `threads`
 * fields are ignored (the sweep itself owns the pool).
 * @throws FatalError when any point's evaluation fails (the failure of
 * the lowest-index failing point, deterministically).
 */
std::vector<LibraReport>
runLibraSweep(const std::vector<LibraInputs>& points);

/**
 * Outcome status of one design point in an isolated sweep: ok, or
 * failed with the FatalError message (the "fatal: " prefix stripped).
 */
struct PointStatus
{
    bool ok = true;
    std::string error;
};

/** Result of an isolated sweep: aligned reports plus per-point status. */
struct SweepOutcome
{
    /** Aligned with the input points; default-valued where !ok. */
    std::vector<LibraReport> reports;
    std::vector<PointStatus> status;
    std::size_t failed = 0; ///< Points whose evaluation failed.
};

/**
 * runLibraSweep with per-point failure isolation: a point whose
 * evaluation throws FatalError (infeasible constraints, a malformed
 * workload) yields a failed PointStatus instead of unwinding the
 * batch, so one bad design point cannot kill a whole matrix run.
 * Internal invariant violations (panic) still abort. Ok points are
 * bit-identical to runLibraSweep's reports at any thread count.
 */
SweepOutcome
runLibraSweepIsolated(const std::vector<LibraInputs>& points);

} // namespace libra

#endif // LIBRA_CORE_FRAMEWORK_HH
