/**
 * @file
 * libra_cli — run LIBRA design studies: single study files or whole
 * scenario matrices.
 *
 * Usage:
 *   libra_cli [--threads N] [--solver SPEC] [--backend NAME]
 *             [--explore SPEC] <study-file>
 *   libra_cli --example        # print a template study file and exit
 *   libra_cli list             # list registered paper scenarios
 *   libra_cli list-solvers     # list registered search strategies
 *   libra_cli list-backends    # list registered timing backends
 *   libra_cli list-explorers   # list registered exploration strategies
 *   libra_cli run-matrix <names...|all|golden> [options]
 *   libra_cli serve --socket PATH [options]
 *   libra_cli serve-request --socket PATH <request-json>
 *
 * Every list command accepts `--emit json` for a byte-stable,
 * insertion-ordered registry dump external tooling can consume.
 *
 * run-matrix options:
 *   --cache-dir DIR    content-addressed result cache: re-running a
 *                      matrix recomputes only changed design points
 *   --emit json|csv    structured emission instead of tables (stats go
 *                      to stderr; stdout is byte-stable across runs)
 *   --out FILE         write the emission/tables to FILE
 *   --solver SPEC      solver-pipeline override for every design point
 *                      (comma-separated strategy names; see
 *                      `list-solvers`), e.g. --solver cmaes,pattern-search
 *   --backend NAME     timing-backend override for every design point
 *                      (see `list-backends`), e.g. --backend chunk-sim
 *                      to re-run a whole matrix under simulation
 *   --explore SPEC     exploration-strategy override for every
 *                      design-space scenario in the run (see
 *                      `list-explorers`), e.g. --explore prune to
 *                      screen-and-promote instead of exhausting the
 *                      space; scenarios without a design space are
 *                      unaffected
 *   --fail-mode MODE   abort (default): a failing design point unwinds
 *                      the run with the lowest-index point's error;
 *                      isolate: failures become per-scenario failure
 *                      rows and the rest of the matrix completes
 *                      (docs/ROBUSTNESS.md)
 *   --faults SPEC      arm the deterministic fault injector, e.g.
 *                      --faults cache-load-read=0.25,seed=7 (the
 *                      LIBRA_FAULTS environment variable is the
 *                      fallback; the flag wins)
 *   --workers N        shard the shared batch's owned computation
 *                      across N forked worker processes
 *                      (docs/SHARDING.md); emitted bytes are identical
 *                      at any worker count. 1 = classic in-process
 *   --worker-threads N solver threads per worker (default: hardware
 *                      concurrency / workers)
 *   --checkpoint FILE  append every completed design point's content
 *                      hash to FILE (fsynced), so a killed run resumes
 *                      without recomputing finished points; requires
 *                      --cache-dir
 *   --checkpoint-chunk N  in-process sub-batch size for checkpointed
 *                      runs (default 8): smaller chunks fsync progress
 *                      more often, larger ones batch better; requires
 *                      --checkpoint
 *   --update-golden    rewrite the golden-figure files for the golden
 *                      scenarios included in this run
 *   --golden-dir DIR   golden file directory (default: tests/golden)
 *
 * serve options (docs/SERVE.md): a long-lived study service on a
 * Unix-domain socket, answering newline-delimited JSON requests with
 * the exact bytes run-matrix would emit — backed by an in-memory LRU
 * over the disk cache, with single-flight dedup across concurrent
 * identical requests:
 *   --socket PATH      socket path (required; created on start)
 *   --cache-dir DIR    disk result cache under the LRU (optional)
 *   --lru N            in-memory LRU capacity in entries (default
 *                      1024; 0 disables the LRU)
 *   --lru-bytes N      LRU byte budget: evict from the cold end until
 *                      resident entries fit (0 = unbounded, the
 *                      default; combines with --lru, either limit
 *                      evicts)
 *   --threads N        size the shared evaluation pool
 *   --fail-mode MODE   default failMode for requests that set none
 *   --max-workers N    cap on the optional per-request "workers" field
 *                      (default 1 = requests never shard; requests
 *                      asking for more are clamped)
 *   --faults SPEC      arm the fault injector (tests, CI)
 *
 * serve-request sends one request line to a running server, writes the
 * payload to stdout and the status line to stderr (exit 0 ok, 1 error,
 * 3 ok-with-failed-points — mirroring run-matrix).
 *
 * Exit codes: 0 success; 1 user error (bad configuration, FatalError);
 * 2 internal error; 3 partial failure (an isolate-mode matrix run that
 * completed with failed design points).
 *
 * --solver / --backend on a single study file override its SOLVER /
 * BACKEND lines the same way --threads overrides THREADS.
 *
 * --threads N (or the LIBRA_THREADS environment variable, or a THREADS
 * line in the study file; flag wins) sizes the parallel evaluation
 * engine. Results are bit-identical at any thread count, and matrix
 * JSON is byte-identical whether points were computed or cached.
 */

#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/fault.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "common/thread_pool.hh"
#include "core/report.hh"
#include "core/study_config.hh"
#include "core/timing_backend.hh"
#include "explore/explore.hh"
#include "serve/server.hh"
#include "solver/strategy.hh"
#include "study/matrix.hh"
#include "study/shard.hh"

namespace {

const char* kTemplate = R"(# LIBRA design study
NETWORK RI(4)_FC(8)_RI(4)_SW(32)
TOTAL_BW 500
OBJECTIVE PERF            # PERF or PERF_PER_COST
LOOP NO_OVERLAP           # NO_OVERLAP or TP_DP_OVERLAP
CONSTRAINT B4 <= 50
WORKLOAD gpt3
WORKLOAD msft1t WEIGHT 1.0
NORMALIZE_WEIGHTS
# THREADS 8                # solver parallelism (deterministic)
# SOLVER cmaes,pattern-search  # strategy pipeline (list-solvers)
# BACKEND chunk-sim        # timing backend (list-backends)
# EXPLORE prune,keep=0.25  # exploration strategy (list-explorers)
# COST Pod LINK 7.8 SWITCH 18.0 NIC 31.6
# DOLLAR_CAP 1.5e7
# WORKLOAD_FILE my_profiled_model.wl
)";

int
runStudy(const std::string& path, int threads,
         const std::string& solverSpec, const std::string& backend,
         const std::string& explore)
{
    using namespace libra;

    std::ifstream file(path);
    if (!file) {
        std::cerr << "libra_cli: cannot open '" << path << "'\n";
        return 1;
    }
    LibraInputs inputs = parseStudyConfig(file);
    if (threads > 0)
        inputs.threads = threads; // Flag wins over the THREADS line.
    if (!solverSpec.empty())     // Flag wins over the SOLVER line.
        inputs.config.search.pipeline = parseSolverSpec(solverSpec);
    if (!backend.empty()) {      // Flag wins over the BACKEND line.
        resolveTimingBackend(backend); // Validate.
        inputs.config.estimator.timingBackend = backend;
    }
    if (!explore.empty())        // Flag wins over the EXPLORE line.
        inputs.explore = canonicalExploreSpec(explore);

    std::cout << "Study: " << inputs.networkShape << " @ "
              << inputs.config.totalBw << " GB/s per NPU, "
              << objectiveName(inputs.config.objective) << "\n";
    for (const auto& t : inputs.targets) {
        std::cout << "  target: " << t.workload.name << " "
                  << t.workload.strategy.name() << " (weight "
                  << t.weight << ")\n";
    }

    LibraReport report = runLibra(inputs);

    Table t("result");
    t.header({"Design", "BW config", "Weighted time", "Cost",
              "Speedup", "ppc x"});
    t.row({"EqualBW", bwConfigToString(report.equalBw.bw, 1),
           secondsToString(report.equalBw.weightedTime),
           dollarsToString(report.equalBw.cost), "1.00", "1.00"});
    t.row({"LIBRA", bwConfigToString(report.optimized.bw, 1),
           secondsToString(report.optimized.weightedTime),
           dollarsToString(report.optimized.cost),
           Table::num(report.speedup, 2),
           Table::num(report.perfPerCostGain, 2)});
    t.print(std::cout);

    std::cout << "\nPer-workload iteration times on the LIBRA design:\n";
    for (std::size_t i = 0; i < inputs.targets.size(); ++i) {
        std::cout << "  " << inputs.targets[i].workload.name << ": "
                  << secondsToString(
                         report.optimized.perWorkloadTime[i])
                  << " (EqualBW "
                  << secondsToString(report.equalBw.perWorkloadTime[i])
                  << ")\n";
    }
    return 0;
}

/**
 * Emit a registry listing as byte-stable JSON (insertion-ordered, the
 * registries' registration order) so external tooling can discover
 * scenarios/solvers/backends/explorers without scraping the tables.
 */
void
emitRegistryJson(const char* registryName,
                 const std::vector<libra::Json>& entries)
{
    libra::Json j = libra::Json::object();
    j["schema"] = "libra-registry-v1";
    j["registry"] = registryName;
    libra::Json arr = libra::Json::array();
    for (const auto& e : entries)
        arr.push(e);
    j["entries"] = std::move(arr);
    std::cout << j.dump(1) << "\n";
}

int
listScenarios(bool json)
{
    using namespace libra;
    const ScenarioRegistry& registry = ScenarioRegistry::global();
    std::vector<Json> entries;
    for (const auto& name : registry.names()) {
        const Scenario* s = registry.find(name);
        std::size_t points = s->space ? candidateCount(s->space())
                             : s->build ? s->build().size()
                                        : 0;
        Json e = Json::object();
        e["name"] = name;
        e["points"] = points;
        e["designSpace"] = static_cast<bool>(s->space);
        e["title"] = s->title;
        entries.push_back(std::move(e));
    }
    if (json) {
        emitRegistryJson("scenarios", entries);
        return 0;
    }
    Table t("registered scenarios");
    t.header({"Name", "Points", "Space", "Title"});
    for (const auto& e : entries) {
        t.row({e.at("name").asString(),
               Table::num(e.at("points").asNumber(), 0),
               e.at("designSpace").asBool() ? "yes" : "-",
               e.at("title").asString()});
    }
    t.print(std::cout);
    std::cout << "\nGroups: 'all' = every scenario; 'golden' = the "
                 "golden-figure set (";
    bool first = true;
    for (const auto& name : goldenScenarioNames()) {
        std::cout << (first ? "" : ", ") << name;
        first = false;
    }
    std::cout << ").\n";
    return 0;
}

int
listSolvers(bool json)
{
    using namespace libra;
    const StrategyRegistry& registry = StrategyRegistry::global();
    std::vector<Json> entries;
    for (const auto& name : registry.names()) {
        Json e = Json::object();
        e["name"] = name;
        e["description"] = registry.find(name)->description();
        entries.push_back(std::move(e));
    }
    if (json) {
        emitRegistryJson("solvers", entries);
        return 0;
    }
    Table t("registered search strategies");
    t.header({"Name", "Description"});
    for (const auto& e : entries)
        t.row({e.at("name").asString(),
               e.at("description").asString()});
    t.print(std::cout);
    std::cout
        << "\nPipelines are ordered comma-separated specs (study-file "
           "`SOLVER a,b` or `--solver a,b`);\nthe default is the "
           "subgradient,pattern-search,nelder-mead chain.\n";
    return 0;
}

int
listBackends(bool json)
{
    using namespace libra;
    const TimingBackendRegistry& registry =
        TimingBackendRegistry::global();
    std::vector<Json> entries;
    for (const auto& name : registry.names()) {
        const TimingBackend* b = registry.find(name);
        Json e = Json::object();
        e["name"] = name;
        e["cacheKeyTag"] = b->cacheKeyTag();
        e["description"] = b->description();
        entries.push_back(std::move(e));
    }
    if (json) {
        emitRegistryJson("backends", entries);
        return 0;
    }
    Table t("registered timing backends");
    t.header({"Name", "Description"});
    for (const auto& e : entries)
        t.row({e.at("name").asString(),
               e.at("description").asString()});
    t.print(std::cout);
    std::cout << "\nSelect with a study-file `BACKEND name` line or "
                 "`--backend name`;\nthe default is the analytical "
                 "model (see docs/BACKENDS.md).\n";
    return 0;
}

int
listExplorers(bool json)
{
    using namespace libra;
    const ExploreRegistry& registry = ExploreRegistry::global();
    std::vector<Json> entries;
    std::vector<std::string> paramTexts;
    for (const auto& name : registry.names()) {
        const ExploreStrategy* s = registry.find(name);
        std::string params;
        Json paramArr = Json::array();
        for (const auto& p : s->params()) {
            params += params.empty() ? "" : ", ";
            params += p.key + "=" + jsonNumberToString(p.defaultValue);
            Json pj = Json::object();
            pj["key"] = p.key;
            pj["default"] = p.defaultValue;
            pj["min"] = p.min;
            pj["max"] = p.max;
            pj["integer"] = p.integer;
            paramArr.push(std::move(pj));
        }
        paramTexts.push_back(params.empty() ? "-" : params);
        Json e = Json::object();
        e["name"] = name;
        e["params"] = std::move(paramArr);
        e["description"] = s->description();
        entries.push_back(std::move(e));
    }
    if (json) {
        emitRegistryJson("explorers", entries);
        return 0;
    }
    Table t("registered exploration strategies");
    t.header({"Name", "Params (defaults)", "Description"});
    for (std::size_t i = 0; i < entries.size(); ++i) {
        t.row({entries[i].at("name").asString(), paramTexts[i],
               entries[i].at("description").asString()});
    }
    t.print(std::cout);
    std::cout << "\nSpecs are `name[,key=value...]` (study-file "
                 "`EXPLORE prune,keep=0.25` or `--explore`);\nthe "
                 "default is exhaustive (see docs/EXPLORE.md).\n";
    return 0;
}

struct MatrixCliOptions
{
    std::vector<std::string> names;
    std::string cacheDir;
    std::string emit;      // "", "json", or "csv".
    std::string outPath;
    std::string solverSpec; // "" = per-point scenario default.
    std::string backend;    // "" = per-point scenario default.
    std::string explore;    // "" = per-scenario strategy default.
    bool updateGolden = false;
    std::string goldenDir = "tests/golden";
    int threads = 0;
    libra::FailMode failMode = libra::FailMode::Abort;
    std::size_t workers = 0;    // 0/1 = classic in-process sweep.
    int workerThreads = 0;      // 0 = hardware concurrency / workers.
    std::string checkpointPath; // "" = no checkpoint manifest.
    std::size_t checkpointChunk = 8;
    bool checkpointChunkSet = false;
    std::string workerExe;      // Resolved self path (sharded runs).
};

/**
 * The executable to exec as `... worker` for sharded runs: this very
 * binary, resolved through /proc/self/exe so it survives argv[0] being
 * a bare name or a PATH lookup. Falls back to argv[0].
 */
std::string
selfExecutable(const char* argv0)
{
    char buf[4096];
    ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n > 0) {
        buf[n] = '\0';
        return buf;
    }
    return argv0;
}

int
runMatrixCommand(const MatrixCliOptions& cli)
{
    using namespace libra;

    // Expand the name groups against the registry (shared with the
    // serve protocol, so a served request resolves identically).
    std::vector<std::string> names = expandScenarioGroups(cli.names);
    if (names.empty()) {
        std::cerr << "libra_cli: run-matrix needs scenario names "
                     "('libra_cli list'), 'all', or 'golden'\n";
        return 1;
    }

    // Goldens pin the default pipeline and timing model; rewriting
    // them under another solver or backend would mask default-path
    // regressions.
    if (cli.updateGolden && !cli.solverSpec.empty()) {
        std::cerr << "libra_cli: --update-golden cannot be combined "
                     "with --solver (golden figures pin the default "
                     "pipeline)\n";
        return 1;
    }
    if (cli.updateGolden && !cli.backend.empty()) {
        std::cerr << "libra_cli: --update-golden cannot be combined "
                     "with --backend (golden figures pin the "
                     "analytical timing model)\n";
        return 1;
    }
    if (cli.updateGolden && !cli.explore.empty()) {
        std::cerr << "libra_cli: --update-golden cannot be combined "
                     "with --explore (golden figures pin the "
                     "exhaustive enumeration)\n";
        return 1;
    }

    // A chunk size without a checkpoint would silently do nothing —
    // chunking only exists to pace manifest/cache appends.
    if (cli.checkpointChunkSet && cli.checkpointPath.empty()) {
        std::cerr << "libra_cli: --checkpoint-chunk requires "
                     "--checkpoint\n";
        return 1;
    }

    if (cli.threads > 0)
        ThreadPool::setGlobalThreads(
            static_cast<std::size_t>(cli.threads));

    MatrixOptions options;
    options.cacheDir = cli.cacheDir;
    if (!cli.solverSpec.empty())
        options.solverPipeline = parseSolverSpec(cli.solverSpec);
    options.timingBackend = cli.backend;
    options.exploreSpec = cli.explore;
    options.failMode = cli.failMode;
    options.workers = cli.workers;
    options.workerExe = cli.workerExe;
    options.workerThreads = cli.workerThreads;
    options.checkpointPath = cli.checkpointPath;
    options.checkpointChunk = cli.checkpointChunk;
    MatrixResult result = runScenarioMatrix(names, options);

    std::ofstream outFile;
    std::ostream* out = &std::cout;
    if (!cli.outPath.empty()) {
        outFile.open(cli.outPath);
        if (!outFile) {
            std::cerr << "libra_cli: cannot write '" << cli.outPath
                      << "'\n";
            return 1;
        }
        out = &outFile;
    }

    if (cli.emit == "json") {
        emitMatrixJson(result, *out);
    } else if (cli.emit == "csv") {
        emitMatrixCsv(result, *out);
    } else {
        printMatrixHuman(result, *out);
    }

    // Structured emission keeps stdout byte-stable; provenance goes to
    // stderr (also when tables went to a file).
    if (!cli.emit.empty() || out != &std::cout) {
        std::cerr << "matrix: " << result.scenarios.size()
                  << " scenarios, " << result.points
                  << " design points (" << result.unique << " unique, "
                  << result.fromCache << " from cache, "
                  << result.computed << " computed)";
        if (result.failed > 0)
            std::cerr << " -- " << result.failed << " FAILED";
        std::cerr << "\n";
    }

    if (cli.updateGolden) {
        // A golden file must pin an all-ok run; a failure-only payload
        // would silently erase the figure's reference rows.
        if (result.failed > 0) {
            std::cerr << "libra_cli: refusing --update-golden: "
                      << result.failed
                      << " design points failed in this run\n";
            return 1;
        }
        std::size_t written = 0;
        for (const ScenarioRun& run : result.scenarios) {
            bool golden = false;
            for (const auto& g : goldenScenarioNames())
                golden |= g == run.name;
            if (!golden)
                continue;
            std::string path = cli.goldenDir + "/" + run.name + ".json";
            std::ofstream file(path);
            if (!file) {
                std::cerr << "libra_cli: cannot write golden file '"
                          << path << "'\n";
                return 1;
            }
            file << scenarioRunToJson(run).dump(1) << "\n";
            ++written;
            std::cerr << "golden: wrote " << path << "\n";
        }
        if (written < goldenScenarioNames().size()) {
            std::cerr << "golden: warning: only " << written << " of "
                      << goldenScenarioNames().size()
                      << " golden scenarios were in this run (use "
                         "'run-matrix golden --update-golden')\n";
        }
    }
    // Partial failure (isolate mode): distinct exit code so CI and the
    // future serve mode can tell "some rows missing" from "all ok".
    return result.failed > 0 ? 3 : 0;
}

int
runServeCommand(const std::vector<std::string>& args,
                const std::string& workerExe)
{
    using namespace libra;

    ServeOptions options;
    options.workerExe = workerExe;
    int threads = 0;
    for (std::size_t i = 1; i < args.size(); ++i) {
        const std::string& arg = args[i];
        auto value = [&](const char* what) -> std::string {
            if (i + 1 >= args.size()) {
                std::cerr << "libra_cli: " << arg << " needs " << what
                          << "\n";
                std::exit(1);
            }
            return args[++i];
        };
        if (arg == "--socket") {
            options.socketPath = value("a path");
        } else if (arg == "--cache-dir") {
            options.cacheDir = value("a directory");
        } else if (arg == "--lru") {
            std::string text = value("an entry count");
            char* end = nullptr;
            long v = std::strtol(text.c_str(), &end, 10);
            if (end == text.c_str() || *end != '\0' || v < 0) {
                std::cerr << "libra_cli: bad --lru capacity '" << text
                          << "'\n";
                return 1;
            }
            options.lruCapacity = static_cast<std::size_t>(v);
        } else if (arg == "--lru-bytes") {
            std::string text = value("a byte budget");
            char* end = nullptr;
            long long v = std::strtoll(text.c_str(), &end, 10);
            if (end == text.c_str() || *end != '\0' || v < 0) {
                std::cerr << "libra_cli: bad --lru-bytes budget '"
                          << text << "'\n";
                return 1;
            }
            options.lruBytes = static_cast<std::size_t>(v);
        } else if (arg == "--threads") {
            std::string text = value("a count");
            char* end = nullptr;
            long v = std::strtol(text.c_str(), &end, 10);
            if (end == text.c_str() || *end != '\0' || v < 1 ||
                v > 4096) {
                std::cerr << "libra_cli: bad thread count '" << text
                          << "' (expected 1..4096)\n";
                return 1;
            }
            threads = static_cast<int>(v);
        } else if (arg == "--fail-mode") {
            std::string mode = value("abort or isolate");
            if (mode == "abort") {
                options.failMode = FailMode::Abort;
            } else if (mode == "isolate") {
                options.failMode = FailMode::Isolate;
            } else {
                std::cerr << "libra_cli: --fail-mode expects abort or "
                             "isolate\n";
                return 1;
            }
        } else if (arg == "--max-workers") {
            std::string text = value("a worker cap");
            char* end = nullptr;
            long v = std::strtol(text.c_str(), &end, 10);
            if (end == text.c_str() || *end != '\0' || v < 1 ||
                v > 256) {
                std::cerr << "libra_cli: bad --max-workers cap '"
                          << text << "' (expected 1..256)\n";
                return 1;
            }
            options.maxWorkers = static_cast<std::size_t>(v);
        } else if (arg == "--faults") {
            installFaults(parseFaultSpec(value("a fault spec")));
        } else {
            std::cerr << "libra_cli: unknown serve flag '" << arg
                      << "'\n";
            return 1;
        }
    }
    if (options.socketPath.empty()) {
        std::cerr << "libra_cli: serve needs --socket PATH\n";
        return 1;
    }

    if (threads > 0)
        ThreadPool::setGlobalThreads(static_cast<std::size_t>(threads));

    const std::string socketPath = options.socketPath;
    Server server(std::move(options));
    server.start();
    inform("serving on ", socketPath,
           " (send {\"op\":\"shutdown\"} to stop)");
    server.waitUntilStopped();
    Server::Stats stats = server.stats();
    inform("served ", stats.requests, " requests (", stats.errors,
           " errors)");
    return 0;
}

int
runServeRequestCommand(const std::vector<std::string>& args)
{
    using namespace libra;

    std::string socketPath;
    std::string request;
    for (std::size_t i = 1; i < args.size(); ++i) {
        if (args[i] == "--socket") {
            if (i + 1 >= args.size()) {
                std::cerr << "libra_cli: --socket needs a path\n";
                return 1;
            }
            socketPath = args[++i];
        } else if (request.empty()) {
            request = args[i];
        } else {
            std::cerr << "libra_cli: serve-request takes one request "
                         "line\n";
            return 1;
        }
    }
    if (socketPath.empty() || request.empty()) {
        std::cerr << "libra_cli: serve-request needs --socket PATH and "
                     "a request JSON line\n";
        return 1;
    }

    ServeReply reply = serveRequest(socketPath, request);
    // Mirror run-matrix: payload on stdout (byte-stable), provenance
    // on stderr.
    std::cerr << reply.status.dump() << "\n";
    std::cout << reply.payload;
    if (!reply.status.at("ok").asBool())
        return 1;
    if (reply.status.has("failed") &&
        reply.status.at("failed").asNumber() > 0)
        return 3;
    return 0;
}

int
parseThreads(const char* text)
{
    char* end = nullptr;
    long v = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || v < 1 || v > 4096) {
        std::cerr << "libra_cli: bad thread count '" << text
                  << "' (expected 1..4096)\n";
        return -1;
    }
    return static_cast<int>(v);
}

void
usage()
{
    std::cerr
        << "usage: libra_cli [--threads N] [--solver SPEC] "
           "[--backend NAME] [--explore SPEC] <study-file>\n"
        << "       libra_cli --example\n"
        << "       libra_cli list [--emit json]\n"
        << "       libra_cli list-solvers [--emit json]\n"
        << "       libra_cli list-backends [--emit json]\n"
        << "       libra_cli list-explorers [--emit json]\n"
        << "       libra_cli run-matrix <names...|all|golden> "
           "[--threads N]\n"
        << "                 [--cache-dir DIR] [--emit json|csv] "
           "[--out FILE]\n"
        << "                 [--solver SPEC] [--backend NAME] "
           "[--explore SPEC]\n"
        << "                 [--fail-mode abort|isolate] "
           "[--faults SPEC]\n"
        << "                 [--workers N] [--worker-threads N] "
           "[--checkpoint FILE]\n"
        << "                 [--checkpoint-chunk N] "
           "[--update-golden] [--golden-dir DIR]\n"
        << "       libra_cli serve --socket PATH [--cache-dir DIR] "
           "[--lru N]\n"
        << "                 [--lru-bytes N] [--threads N] "
           "[--fail-mode abort|isolate]\n"
        << "                 [--max-workers N] [--faults SPEC]\n"
        << "       libra_cli serve-request --socket PATH "
           "<request-json>\n";
}

} // namespace

int
main(int argc, char** argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);

    // Hidden shard-worker mode (docs/SHARDING.md): speak the frame
    // protocol on stdin/stdout until exit/EOF. Dispatched before the
    // LIBRA_FAULTS env arming on purpose — the master injects faults
    // before dispatch, so workers must stay injector-free or content-
    // keyed faults would fire twice.
    if (!args.empty() && args[0] == "worker")
        return libra::runShardWorker();

    if (!args.empty() && args[0] == "--example") {
        std::cout << kTemplate;
        return 0;
    }

    // Arm the fault injector from the environment (tests, CI smokes);
    // an explicit --faults flag re-installs over this.
    if (const char* env = std::getenv("LIBRA_FAULTS")) {
        if (env[0] != '\0') {
            try {
                libra::installFaults(libra::parseFaultSpec(env));
            } catch (const libra::FatalError& e) {
                std::cerr << "libra_cli: LIBRA_FAULTS: " << e.what()
                          << "\n";
                return 1;
            }
        }
    }

    // Shared `--emit json` handling for the four list commands.
    auto listEmit = [&](std::size_t argIndex) -> int {
        // 0 = human tables, 1 = json, -1 = bad flag.
        if (argIndex >= args.size())
            return 0;
        if (args[argIndex] == "--emit" && argIndex + 1 < args.size() &&
            args[argIndex + 1] == "json" && argIndex + 2 == args.size())
            return 1;
        std::cerr << "libra_cli: list commands accept only "
                     "'--emit json'\n";
        return -1;
    };

    try {
        if (!args.empty() &&
            (args[0] == "list" || args[0] == "list-solvers" ||
             args[0] == "list-backends" || args[0] == "list-explorers")) {
            int emit = listEmit(1);
            if (emit < 0)
                return 1;
            if (args[0] == "list")
                return listScenarios(emit == 1);
            if (args[0] == "list-solvers")
                return listSolvers(emit == 1);
            if (args[0] == "list-backends")
                return listBackends(emit == 1);
            return listExplorers(emit == 1);
        }
        if (!args.empty() && args[0] == "run-matrix") {
            MatrixCliOptions cli;
            cli.workerExe = selfExecutable(argv[0]);
            for (std::size_t i = 1; i < args.size(); ++i) {
                const std::string& arg = args[i];
                auto value = [&](const char* what) -> std::string {
                    if (i + 1 >= args.size()) {
                        std::cerr << "libra_cli: " << arg << " needs "
                                  << what << "\n";
                        std::exit(1);
                    }
                    return args[++i];
                };
                if (arg == "--cache-dir") {
                    cli.cacheDir = value("a directory");
                } else if (arg == "--emit") {
                    cli.emit = value("json or csv");
                    if (cli.emit != "json" && cli.emit != "csv") {
                        std::cerr << "libra_cli: --emit expects json "
                                     "or csv\n";
                        return 1;
                    }
                } else if (arg == "--out") {
                    cli.outPath = value("a file path");
                } else if (arg == "--solver") {
                    cli.solverSpec = value("a solver spec");
                } else if (arg == "--backend") {
                    cli.backend = value("a backend name");
                } else if (arg == "--explore") {
                    cli.explore = value("an explore spec");
                } else if (arg == "--fail-mode") {
                    std::string mode =
                        value("abort or isolate");
                    if (mode == "abort") {
                        cli.failMode = libra::FailMode::Abort;
                    } else if (mode == "isolate") {
                        cli.failMode = libra::FailMode::Isolate;
                    } else {
                        std::cerr << "libra_cli: --fail-mode expects "
                                     "abort or isolate\n";
                        return 1;
                    }
                } else if (arg == "--faults") {
                    libra::installFaults(
                        libra::parseFaultSpec(value("a fault spec")));
                } else if (arg == "--update-golden") {
                    cli.updateGolden = true;
                } else if (arg == "--golden-dir") {
                    cli.goldenDir = value("a directory");
                } else if (arg == "--threads") {
                    cli.threads =
                        parseThreads(value("a count").c_str());
                    if (cli.threads < 0)
                        return 1;
                } else if (arg == "--workers") {
                    std::string text = value("a worker count");
                    char* end = nullptr;
                    long v = std::strtol(text.c_str(), &end, 10);
                    if (end == text.c_str() || *end != '\0' || v < 1 ||
                        v > 256) {
                        std::cerr << "libra_cli: bad --workers count '"
                                  << text << "' (expected 1..256)\n";
                        return 1;
                    }
                    cli.workers = static_cast<std::size_t>(v);
                } else if (arg == "--worker-threads") {
                    cli.workerThreads =
                        parseThreads(value("a count").c_str());
                    if (cli.workerThreads < 0)
                        return 1;
                } else if (arg == "--checkpoint") {
                    cli.checkpointPath = value("a manifest path");
                } else if (arg == "--checkpoint-chunk") {
                    std::string text = value("a chunk size");
                    char* end = nullptr;
                    long v = std::strtol(text.c_str(), &end, 10);
                    if (end == text.c_str() || *end != '\0' ||
                        v < 1 || v > 4096) {
                        std::cerr << "libra_cli: bad "
                                     "--checkpoint-chunk size '"
                                  << text << "' (expected 1..4096)\n";
                        return 1;
                    }
                    cli.checkpointChunk =
                        static_cast<std::size_t>(v);
                    cli.checkpointChunkSet = true;
                } else if (!arg.empty() && arg[0] == '-') {
                    std::cerr << "libra_cli: unknown run-matrix flag '"
                              << arg << "'\n";
                    return 1;
                } else {
                    cli.names.push_back(arg);
                }
            }
            return runMatrixCommand(cli);
        }
        if (!args.empty() && args[0] == "serve")
            return runServeCommand(args, selfExecutable(argv[0]));
        if (!args.empty() && args[0] == "serve-request")
            return runServeRequestCommand(args);

        // Legacy single-study mode.
        int threads = 0;
        std::string studyPath;
        std::string solverSpec;
        std::string backend;
        std::string explore;
        for (std::size_t i = 0; i < args.size(); ++i) {
            if (args[i] == "--example") {
                std::cout << kTemplate;
                return 0;
            }
            if (args[i] == "--threads") {
                if (i + 1 >= args.size()) {
                    std::cerr << "libra_cli: --threads needs a count\n";
                    return 1;
                }
                threads = parseThreads(args[++i].c_str());
                if (threads < 0)
                    return 1;
            } else if (args[i] == "--solver") {
                if (i + 1 >= args.size()) {
                    std::cerr << "libra_cli: --solver needs a spec\n";
                    return 1;
                }
                solverSpec = args[++i];
            } else if (args[i] == "--backend") {
                if (i + 1 >= args.size()) {
                    std::cerr << "libra_cli: --backend needs a name\n";
                    return 1;
                }
                backend = args[++i];
            } else if (args[i] == "--explore") {
                if (i + 1 >= args.size()) {
                    std::cerr << "libra_cli: --explore needs a spec\n";
                    return 1;
                }
                explore = args[++i];
            } else if (studyPath.empty()) {
                studyPath = args[i];
            } else {
                usage();
                return 1;
            }
        }
        if (studyPath.empty()) {
            usage();
            return 1;
        }
        return runStudy(studyPath, threads, solverSpec, backend,
                        explore);
    } catch (const libra::FatalError& e) {
        // User error: bad configuration, infeasible constraints.
        std::cerr << "libra_cli: " << e.what() << "\n";
        return 1;
    } catch (const std::exception& e) {
        // Internal error: anything the engine did not classify.
        std::cerr << "libra_cli: internal error: " << e.what() << "\n";
        return 2;
    }
}
