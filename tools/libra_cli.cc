/**
 * @file
 * libra_cli — run a complete LIBRA design study from a config file.
 *
 * Usage:
 *   libra_cli [--threads N] <study-file>
 *   libra_cli --example        # print a template study file and exit
 *
 * --threads N (or the LIBRA_THREADS environment variable, or a THREADS
 * line in the study file; flag wins) sizes the parallel evaluation
 * engine. Results are bit-identical at any thread count.
 *
 * The study file bundles every Fig. 3 input: network shape, BW budget,
 * objective, training loop, constraints, cost-model overrides, and the
 * target workloads (zoo names or profiled workload files). Output is
 * the optimized design point next to the EqualBW baseline.
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "common/logging.hh"
#include "common/table.hh"
#include "common/thread_pool.hh"
#include "core/report.hh"
#include "core/study_config.hh"

namespace {

const char* kTemplate = R"(# LIBRA design study
NETWORK RI(4)_FC(8)_RI(4)_SW(32)
TOTAL_BW 500
OBJECTIVE PERF            # PERF or PERF_PER_COST
LOOP NO_OVERLAP           # NO_OVERLAP or TP_DP_OVERLAP
CONSTRAINT B4 <= 50
WORKLOAD gpt3
WORKLOAD msft1t WEIGHT 1.0
NORMALIZE_WEIGHTS
# THREADS 8                # solver parallelism (deterministic)
# COST Pod LINK 7.8 SWITCH 18.0 NIC 31.6
# DOLLAR_CAP 1.5e7
# WORKLOAD_FILE my_profiled_model.wl
)";

int
runStudy(const char* path, int threads)
{
    using namespace libra;

    std::ifstream file(path);
    if (!file) {
        std::cerr << "libra_cli: cannot open '" << path << "'\n";
        return 1;
    }
    LibraInputs inputs = parseStudyConfig(file);
    if (threads > 0)
        inputs.threads = threads; // Flag wins over the THREADS line.

    std::cout << "Study: " << inputs.networkShape << " @ "
              << inputs.config.totalBw << " GB/s per NPU, "
              << objectiveName(inputs.config.objective) << "\n";
    for (const auto& t : inputs.targets) {
        std::cout << "  target: " << t.workload.name << " "
                  << t.workload.strategy.name() << " (weight "
                  << t.weight << ")\n";
    }

    LibraReport report = runLibra(inputs);

    Table t("result");
    t.header({"Design", "BW config", "Weighted time", "Cost",
              "Speedup", "ppc x"});
    t.row({"EqualBW", bwConfigToString(report.equalBw.bw, 1),
           secondsToString(report.equalBw.weightedTime),
           dollarsToString(report.equalBw.cost), "1.00", "1.00"});
    t.row({"LIBRA", bwConfigToString(report.optimized.bw, 1),
           secondsToString(report.optimized.weightedTime),
           dollarsToString(report.optimized.cost),
           Table::num(report.speedup, 2),
           Table::num(report.perfPerCostGain, 2)});
    t.print(std::cout);

    std::cout << "\nPer-workload iteration times on the LIBRA design:\n";
    for (std::size_t i = 0; i < inputs.targets.size(); ++i) {
        std::cout << "  " << inputs.targets[i].workload.name << ": "
                  << secondsToString(
                         report.optimized.perWorkloadTime[i])
                  << " (EqualBW "
                  << secondsToString(report.equalBw.perWorkloadTime[i])
                  << ")\n";
    }
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    int threads = 0;
    const char* studyPath = nullptr;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--example") {
            std::cout << kTemplate;
            return 0;
        }
        if (arg == "--threads") {
            if (i + 1 >= argc) {
                std::cerr << "libra_cli: --threads needs a count\n";
                return 1;
            }
            char* end = nullptr;
            long v = std::strtol(argv[++i], &end, 10);
            if (end == argv[i] || *end != '\0' || v < 1 || v > 4096) {
                std::cerr << "libra_cli: bad thread count '" << argv[i]
                          << "' (expected 1..4096)\n";
                return 1;
            }
            threads = static_cast<int>(v);
        } else if (!studyPath) {
            studyPath = argv[i];
        } else {
            studyPath = nullptr;
            break;
        }
    }
    if (!studyPath) {
        std::cerr << "usage: libra_cli [--threads N] <study-file> | "
                     "--example\n";
        return 1;
    }
    try {
        return runStudy(studyPath, threads);
    } catch (const libra::FatalError& e) {
        std::cerr << "libra_cli: " << e.what() << "\n";
        return 1;
    }
}
