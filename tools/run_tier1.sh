#!/usr/bin/env bash
# Minimal CI entry point: configure, build, and run the tier-1 suite.
# Usage: tools/run_tier1.sh [extra cmake args...]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 2)"

cmake -B build -S . "$@"
cmake --build build -j"${JOBS}"
ctest --test-dir build --output-on-failure -j"${JOBS}"
