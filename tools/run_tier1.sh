#!/usr/bin/env bash
# Minimal CI entry point: configure, build, and run the tier-1 suite.
#
# Usage: tools/run_tier1.sh [--tsan|--asan|--ubsan] [extra cmake args...]
#
#   (default)  Release build in build/, full ctest suite, plus three
#              CLI smoke runs: the crossval scenario (the chunk-sim
#              timing backend end to end), the explore-frontier
#              scenario under --explore prune (the design-space
#              exploration layer end to end) — each asserting
#              byte-identical matrix JSON at different thread counts,
#              cached and fresh — a fault-injection smoke that
#              re-runs the golden matrix with injected cache-I/O
#              faults and asserts the JSON is byte-identical to the
#              fault-free cached run (docs/ROBUSTNESS.md), a SIMD
#              smoke that rebuilds the CLI with LIBRA_SIMD=off and
#              asserts the golden matrix JSON is byte-identical to
#              the default build's (docs/PERF.md), and an objective
#              bench smoke asserting BENCH_objective.json emits the
#              tracked speedup metrics.
#   --tsan     ThreadSanitizer build in build-tsan/; runs the threading
#              contract tests (thread pool, parallel determinism, the
#              scenario-matrix engine whose sweeps exercise
#              runLibraSweep, the timing-backend layer, and the
#              explore layer whose prune rounds re-enter the sweep)
#              under TSan.
#   --asan     AddressSanitizer (+UBSan) build in build-asan/; runs the
#              full suite.
#   --ubsan    Standalone UndefinedBehaviorSanitizer build in
#              build-ubsan/; runs the full suite with UB traps fatal,
#              without ASan's memory overhead.
#
# Sanitizer builds use a separate build directory so they never poison
# the Release object cache, and -O1 -g for usable stacks.
#
# CI builds promote the always-on -Wall -Wextra to -Werror
# (LIBRA_WERROR), so new warnings fail tier-1 instead of accumulating.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 2)"

MODE=""
ARGS=()
for arg in "$@"; do
  case "${arg}" in
    --tsan) MODE="tsan" ;;
    --asan) MODE="asan" ;;
    --ubsan) MODE="ubsan" ;;
    *) ARGS+=("${arg}") ;;
  esac
done

BUILD_DIR="build"
CMAKE_EXTRA=(-DLIBRA_WERROR=ON)
CTEST_EXTRA=()
case "${MODE}" in
  tsan)
    BUILD_DIR="build-tsan"
    CMAKE_EXTRA+=(
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
      "-DCMAKE_CXX_FLAGS=-fsanitize=thread -g -O1 -fno-omit-frame-pointer"
      -DLIBRA_BUILD_BENCH=OFF
      -DLIBRA_BUILD_EXAMPLES=OFF
    )
    # The PR 1 threading contract: pool mechanics, bit-identical
    # results at any thread count, the batched matrix sweeps, the
    # timing-backend layer (per-thread chunk-sim memo + crossval fuzz),
    # the fault-tolerance layer (isolated sweeps, injector counters,
    # and line-atomic logging under concurrent cache warnings), the
    # cache-concurrency hammer, the serve subsystem (LRU +
    # single-flight + socket server; docs/SERVE.md), and the shard
    # layer (worker pool, point wire codec; docs/SHARDING.md).
    CTEST_EXTRA+=(-R 'test_thread_pool|test_parallel_determinism|test_study_engine|test_timing_backend|test_sim_crossval|test_explore|test_cache_faults|test_cache_concurrency|test_serve|test_objective_kernels|test_shard|test_point_wire')
    ;;
  asan)
    BUILD_DIR="build-asan"
    CMAKE_EXTRA+=(
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
      "-DCMAKE_CXX_FLAGS=-fsanitize=address,undefined -g -O1 -fno-omit-frame-pointer"
      -DLIBRA_BUILD_BENCH=OFF
      -DLIBRA_BUILD_EXAMPLES=OFF
    )
    ;;
  ubsan)
    BUILD_DIR="build-ubsan"
    CMAKE_EXTRA+=(
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
      "-DCMAKE_CXX_FLAGS=-fsanitize=undefined -fno-sanitize-recover=undefined -g -O1 -fno-omit-frame-pointer"
      -DLIBRA_BUILD_BENCH=OFF
      -DLIBRA_BUILD_EXAMPLES=OFF
    )
    ;;
esac

cmake -B "${BUILD_DIR}" -S . "${CMAKE_EXTRA[@]}" ${ARGS+"${ARGS[@]}"}
cmake --build "${BUILD_DIR}" -j"${JOBS}"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j"${JOBS}" \
  ${CTEST_EXTRA+"${CTEST_EXTRA[@]}"}

if [[ -z "${MODE}" ]]; then
  # Crossval smoke: the chunk-sim backend end to end through the CLI.
  # The matrix JSON must be byte-identical at different thread counts,
  # freshly computed (separate caches) or served from cache (the
  # acceptance contract of the timing-backend layer; docs/BACKENDS.md).
  SMOKE_DIR="$(mktemp -d)"
  trap 'rm -rf "${SMOKE_DIR}"' EXIT
  "${BUILD_DIR}/libra_cli" run-matrix crossval --backend chunk-sim \
    --emit json --cache-dir "${SMOKE_DIR}/cache2" \
    --out "${SMOKE_DIR}/fresh2.json" --threads 2
  "${BUILD_DIR}/libra_cli" run-matrix crossval --backend chunk-sim \
    --emit json --cache-dir "${SMOKE_DIR}/cache4" \
    --out "${SMOKE_DIR}/fresh4.json" --threads 4
  "${BUILD_DIR}/libra_cli" run-matrix crossval --backend chunk-sim \
    --emit json --cache-dir "${SMOKE_DIR}/cache2" \
    --out "${SMOKE_DIR}/cached.json" --threads 4
  cmp "${SMOKE_DIR}/fresh2.json" "${SMOKE_DIR}/fresh4.json"
  cmp "${SMOKE_DIR}/fresh2.json" "${SMOKE_DIR}/cached.json"
  echo "crossval smoke: byte-identical matrix JSON (fresh 2t vs fresh 4t vs cached)"

  # Explore smoke: the design-space layer end to end through the CLI.
  # The prune strategy's screening rounds and promotions must emit
  # byte-identical matrix JSON at different thread counts, freshly
  # computed or served from cache (docs/EXPLORE.md).
  "${BUILD_DIR}/libra_cli" run-matrix explore-frontier --explore prune \
    --emit json --cache-dir "${SMOKE_DIR}/xcache2" \
    --out "${SMOKE_DIR}/xfresh2.json" --threads 2
  "${BUILD_DIR}/libra_cli" run-matrix explore-frontier --explore prune \
    --emit json --cache-dir "${SMOKE_DIR}/xcache4" \
    --out "${SMOKE_DIR}/xfresh4.json" --threads 4
  "${BUILD_DIR}/libra_cli" run-matrix explore-frontier --explore prune \
    --emit json --cache-dir "${SMOKE_DIR}/xcache2" \
    --out "${SMOKE_DIR}/xcached.json" --threads 4
  cmp "${SMOKE_DIR}/xfresh2.json" "${SMOKE_DIR}/xfresh4.json"
  cmp "${SMOKE_DIR}/xfresh2.json" "${SMOKE_DIR}/xcached.json"
  echo "explore smoke: byte-identical matrix JSON (fresh 2t vs fresh 4t vs cached)"

  # Fault-injection smoke: the cache is strictly best-effort, so a
  # golden matrix run with injected cache-I/O faults — fresh, and again
  # over the (partially poisoned) cache it left behind — must emit
  # byte-identical JSON to the fault-free cached run
  # (docs/ROBUSTNESS.md).
  "${BUILD_DIR}/libra_cli" run-matrix golden \
    --emit json --cache-dir "${SMOKE_DIR}/fcache" \
    --out "${SMOKE_DIR}/fclean.json"
  "${BUILD_DIR}/libra_cli" run-matrix golden \
    --faults "cache-load-read=0.25,cache-store-write=0.25,cache-store-rename=0.25,seed=7" \
    --emit json --cache-dir "${SMOKE_DIR}/fcache" \
    --out "${SMOKE_DIR}/ffaulty.json"
  "${BUILD_DIR}/libra_cli" run-matrix golden \
    --faults "cache-load-read=0.25,seed=8" \
    --emit json --cache-dir "${SMOKE_DIR}/fcache" \
    --out "${SMOKE_DIR}/ffaulty2.json"
  cmp "${SMOKE_DIR}/fclean.json" "${SMOKE_DIR}/ffaulty.json"
  cmp "${SMOKE_DIR}/fclean.json" "${SMOKE_DIR}/ffaulty2.json"
  echo "fault smoke: byte-identical matrix JSON under injected cache-I/O faults"

  # Serve smoke: the study service end to end through the CLI
  # (docs/SERVE.md). The one-shot run warms a disk cache; a server
  # over that cache answers the golden-group request twice. Both
  # payloads must be byte-identical to the one-shot emission; the
  # first is disk-served (promoted into the LRU), the second must be
  # served entirely from memory (computed == 0 on its status line,
  # LRU hits visible in the stats op).
  "${BUILD_DIR}/libra_cli" run-matrix golden \
    --emit json --cache-dir "${SMOKE_DIR}/scache" \
    --out "${SMOKE_DIR}/soneshot.json"
  "${BUILD_DIR}/libra_cli" serve --socket "${SMOKE_DIR}/serve.sock" \
    --cache-dir "${SMOKE_DIR}/scache" &
  SERVE_PID=$!
  for _ in $(seq 50); do
    [[ -S "${SMOKE_DIR}/serve.sock" ]] && break
    sleep 0.1
  done
  "${BUILD_DIR}/libra_cli" serve-request --socket "${SMOKE_DIR}/serve.sock" \
    '{"scenario": "golden", "emit": "json"}' \
    > "${SMOKE_DIR}/sfirst.json" 2> "${SMOKE_DIR}/sfirst.status"
  "${BUILD_DIR}/libra_cli" serve-request --socket "${SMOKE_DIR}/serve.sock" \
    '{"scenario": "golden", "emit": "json"}' \
    > "${SMOKE_DIR}/ssecond.json" 2> "${SMOKE_DIR}/ssecond.status"
  "${BUILD_DIR}/libra_cli" serve-request --socket "${SMOKE_DIR}/serve.sock" \
    '{"op": "stats"}' > "${SMOKE_DIR}/sstats.json" 2> /dev/null
  "${BUILD_DIR}/libra_cli" serve-request --socket "${SMOKE_DIR}/serve.sock" \
    '{"op": "shutdown"}' > /dev/null 2>&1
  wait "${SERVE_PID}"
  cmp "${SMOKE_DIR}/soneshot.json" "${SMOKE_DIR}/sfirst.json"
  cmp "${SMOKE_DIR}/soneshot.json" "${SMOKE_DIR}/ssecond.json"
  grep -q '"computed":0,' "${SMOKE_DIR}/ssecond.status"
  grep -Eq '"lruHits": [1-9]' "${SMOKE_DIR}/sstats.json"
  echo "serve smoke: byte-identical golden payloads (one-shot vs disk-served vs LRU-served)"

  # Sharded smoke: run-matrix --workers forks worker processes and
  # merges their results through the cache; the matrix JSON must be
  # byte-identical to the single-process run, fresh and cached
  # (docs/SHARDING.md).
  "${BUILD_DIR}/libra_cli" run-matrix explore-frontier \
    --emit json --out "${SMOKE_DIR}/shsingle.json"
  "${BUILD_DIR}/libra_cli" run-matrix explore-frontier --workers 2 \
    --emit json --cache-dir "${SMOKE_DIR}/shcache" \
    --out "${SMOKE_DIR}/shfresh.json"
  "${BUILD_DIR}/libra_cli" run-matrix explore-frontier --workers 2 \
    --emit json --cache-dir "${SMOKE_DIR}/shcache" \
    --out "${SMOKE_DIR}/shcached.json"
  cmp "${SMOKE_DIR}/shsingle.json" "${SMOKE_DIR}/shfresh.json"
  cmp "${SMOKE_DIR}/shsingle.json" "${SMOKE_DIR}/shcached.json"
  echo "shard smoke: byte-identical matrix JSON (single-process vs --workers 2, fresh and cached)"

  # Checkpoint-resume smoke: SIGKILL a checkpointed sharded run once
  # its manifest shows progress, then resume — the completed output
  # must be byte-identical and every recorded slot must be served from
  # the cache, not recomputed (docs/SHARDING.md).
  "${BUILD_DIR}/libra_cli" run-matrix explore-frontier --workers 2 \
    --cache-dir "${SMOKE_DIR}/ckcache" \
    --checkpoint "${SMOKE_DIR}/ckmanifest" \
    --emit json --out "${SMOKE_DIR}/ckkilled.json" 2>/dev/null &
  CKPT_PID=$!
  for _ in $(seq 3000); do
    LINES="$(wc -l < "${SMOKE_DIR}/ckmanifest" 2>/dev/null || echo 0)"
    [[ "${LINES}" -ge 9 ]] && break
    kill -0 "${CKPT_PID}" 2>/dev/null || break
    sleep 0.01
  done
  kill -9 "${CKPT_PID}" 2>/dev/null || true
  wait "${CKPT_PID}" 2>/dev/null || true
  RECORDED="$(($(wc -l < "${SMOKE_DIR}/ckmanifest") - 1))"
  [[ "${RECORDED}" -ge 1 ]]
  "${BUILD_DIR}/libra_cli" run-matrix explore-frontier --workers 2 \
    --cache-dir "${SMOKE_DIR}/ckcache" \
    --checkpoint "${SMOKE_DIR}/ckmanifest" \
    --emit json --out "${SMOKE_DIR}/ckresumed.json" \
    2> "${SMOKE_DIR}/ckresumed.status"
  cmp "${SMOKE_DIR}/shsingle.json" "${SMOKE_DIR}/ckresumed.json"
  grep -q "checkpoint: resuming" "${SMOKE_DIR}/ckresumed.status"
  # Store-before-append: the cache may hold at most a slot more than
  # the manifest when the kill landed between the two, so the resume
  # serves at least every recorded slot from the cache.
  FROMCACHE="$(sed -nE 's/.*unique, ([0-9]+) from cache.*/\1/p' \
    "${SMOKE_DIR}/ckresumed.status")"
  [[ "${FROMCACHE}" -ge "${RECORDED}" ]]
  echo "checkpoint smoke: killed run (${RECORDED} slots recorded) resumed byte-identically without recompute"

  # Sharded-prune smoke: adaptive exploration rounds cross the wire as
  # eval frames on the warm worker pool; the matrix JSON must still be
  # byte-identical to the single-process prune run, fresh and cached
  # (docs/SHARDING.md, docs/EXPLORE.md).
  "${BUILD_DIR}/libra_cli" run-matrix explore-frontier --explore prune \
    --emit json --out "${SMOKE_DIR}/spsingle.json"
  "${BUILD_DIR}/libra_cli" run-matrix explore-frontier --explore prune \
    --workers 2 --emit json --cache-dir "${SMOKE_DIR}/spcache" \
    --out "${SMOKE_DIR}/spfresh.json"
  "${BUILD_DIR}/libra_cli" run-matrix explore-frontier --explore prune \
    --workers 2 --emit json --cache-dir "${SMOKE_DIR}/spcache" \
    --out "${SMOKE_DIR}/spcached.json"
  cmp "${SMOKE_DIR}/spsingle.json" "${SMOKE_DIR}/spfresh.json"
  cmp "${SMOKE_DIR}/spsingle.json" "${SMOKE_DIR}/spcached.json"
  echo "sharded-prune smoke: byte-identical matrix JSON (single-process vs --workers 2 adaptive prune, fresh and cached)"

  # SIMD smoke: the batched candidate-major kernels promise results
  # bit-identical to the scalar fallback (docs/PERF.md), so a golden
  # matrix run from a LIBRA_SIMD=off build must emit byte-identical
  # JSON to the default (auto) build — fresh at 1 thread, then served
  # from each build's own cache at 8 threads.
  cmake -B build-simd-off -S . -DLIBRA_WERROR=ON -DLIBRA_SIMD=off \
    -DLIBRA_BUILD_TESTS=OFF -DLIBRA_BUILD_BENCH=OFF \
    -DLIBRA_BUILD_EXAMPLES=OFF
  cmake --build build-simd-off -j"${JOBS}" --target libra_cli
  for t in 1 8; do
    "${BUILD_DIR}/libra_cli" run-matrix golden --emit json \
      --cache-dir "${SMOKE_DIR}/simd-auto-cache" \
      --out "${SMOKE_DIR}/simd-auto-${t}t.json" --threads "${t}"
    build-simd-off/libra_cli run-matrix golden --emit json \
      --cache-dir "${SMOKE_DIR}/simd-off-cache" \
      --out "${SMOKE_DIR}/simd-off-${t}t.json" --threads "${t}"
    cmp "${SMOKE_DIR}/simd-auto-${t}t.json" \
      "${SMOKE_DIR}/simd-off-${t}t.json"
  done
  cmp "${SMOKE_DIR}/simd-auto-1t.json" "${SMOKE_DIR}/simd-auto-8t.json"
  echo "simd smoke: byte-identical matrix JSON (LIBRA_SIMD=off vs auto, fresh 1t vs cached 8t)"

  # Objective-throughput smoke: the bench must run and emit parseable
  # metrics with the scalar-SoA speedup the perf docs track.
  BENCH_BIN="$(pwd)/${BUILD_DIR}/micro_objective_eval"
  (cd "${SMOKE_DIR}" && "${BENCH_BIN}")
  grep -q '"soa_speedup_vs_nested":' "${SMOKE_DIR}/BENCH_objective.json"
  echo "objective bench smoke: BENCH_objective.json emitted with speedup metrics"
fi
