#!/usr/bin/env bash
# Minimal CI entry point: configure, build, and run the tier-1 suite.
#
# Usage: tools/run_tier1.sh [--tsan|--asan] [extra cmake args...]
#
#   (default)  Release build in build/, full ctest suite, plus the
#              crossval scenario smoke run (the chunk-sim timing
#              backend end to end: byte-identical matrix JSON at
#              different thread counts, cached and fresh).
#   --tsan     ThreadSanitizer build in build-tsan/; runs the threading
#              contract tests (thread pool, parallel determinism, the
#              scenario-matrix engine whose sweeps exercise
#              runLibraSweep, and the timing-backend layer, whose
#              chunk-sim memo cache is the newest shared-state hot
#              spot) under TSan.
#   --asan     AddressSanitizer (+UBSan) build in build-asan/; runs the
#              full suite.
#
# Sanitizer builds use a separate build directory so they never poison
# the Release object cache, and -O1 -g for usable stacks.
#
# CI builds promote the always-on -Wall -Wextra to -Werror
# (LIBRA_WERROR), so new warnings fail tier-1 instead of accumulating.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 2)"

MODE=""
ARGS=()
for arg in "$@"; do
  case "${arg}" in
    --tsan) MODE="tsan" ;;
    --asan) MODE="asan" ;;
    *) ARGS+=("${arg}") ;;
  esac
done

BUILD_DIR="build"
CMAKE_EXTRA=(-DLIBRA_WERROR=ON)
CTEST_EXTRA=()
case "${MODE}" in
  tsan)
    BUILD_DIR="build-tsan"
    CMAKE_EXTRA+=(
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
      "-DCMAKE_CXX_FLAGS=-fsanitize=thread -g -O1 -fno-omit-frame-pointer"
      -DLIBRA_BUILD_BENCH=OFF
      -DLIBRA_BUILD_EXAMPLES=OFF
    )
    # The PR 1 threading contract: pool mechanics, bit-identical
    # results at any thread count, the batched matrix sweeps, and the
    # timing-backend layer (per-thread chunk-sim memo + crossval fuzz).
    CTEST_EXTRA+=(-R 'test_thread_pool|test_parallel_determinism|test_study_engine|test_timing_backend|test_sim_crossval')
    ;;
  asan)
    BUILD_DIR="build-asan"
    CMAKE_EXTRA+=(
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
      "-DCMAKE_CXX_FLAGS=-fsanitize=address,undefined -g -O1 -fno-omit-frame-pointer"
      -DLIBRA_BUILD_BENCH=OFF
      -DLIBRA_BUILD_EXAMPLES=OFF
    )
    ;;
esac

cmake -B "${BUILD_DIR}" -S . "${CMAKE_EXTRA[@]}" ${ARGS+"${ARGS[@]}"}
cmake --build "${BUILD_DIR}" -j"${JOBS}"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j"${JOBS}" \
  ${CTEST_EXTRA+"${CTEST_EXTRA[@]}"}

if [[ -z "${MODE}" ]]; then
  # Crossval smoke: the chunk-sim backend end to end through the CLI.
  # The matrix JSON must be byte-identical at different thread counts,
  # freshly computed (separate caches) or served from cache (the
  # acceptance contract of the timing-backend layer; docs/BACKENDS.md).
  SMOKE_DIR="$(mktemp -d)"
  trap 'rm -rf "${SMOKE_DIR}"' EXIT
  "${BUILD_DIR}/libra_cli" run-matrix crossval --backend chunk-sim \
    --emit json --cache-dir "${SMOKE_DIR}/cache2" \
    --out "${SMOKE_DIR}/fresh2.json" --threads 2
  "${BUILD_DIR}/libra_cli" run-matrix crossval --backend chunk-sim \
    --emit json --cache-dir "${SMOKE_DIR}/cache4" \
    --out "${SMOKE_DIR}/fresh4.json" --threads 4
  "${BUILD_DIR}/libra_cli" run-matrix crossval --backend chunk-sim \
    --emit json --cache-dir "${SMOKE_DIR}/cache2" \
    --out "${SMOKE_DIR}/cached.json" --threads 4
  cmp "${SMOKE_DIR}/fresh2.json" "${SMOKE_DIR}/fresh4.json"
  cmp "${SMOKE_DIR}/fresh2.json" "${SMOKE_DIR}/cached.json"
  echo "crossval smoke: byte-identical matrix JSON (fresh 2t vs fresh 4t vs cached)"
fi
