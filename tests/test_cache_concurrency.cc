/**
 * @file
 * ResultCache concurrency tests: many threads hammering overlapping
 * keys through load/store (with the fault injector armed at every
 * cache site), same-key store races never tearing an entry, the
 * extended `.tmp.<pid>.<seq>` staleness grammar, and the atomic stats
 * snapshot. Runs under `tools/run_tier1.sh --tsan` alongside the other
 * threading suites. See docs/ROBUSTNESS.md and docs/SERVE.md.
 */

#include <sys/types.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault.hh"
#include "common/logging.hh"
#include "study/cache.hh"

namespace libra {
namespace {

/** Disarms the injector on scope exit so tests cannot leak faults. */
struct FaultGuard
{
    FaultGuard() { clearFaults(); }
    ~FaultGuard() { clearFaults(); }
};

std::string
freshDir(const char* name)
{
    std::string dir = testing::TempDir() + name;
    std::filesystem::remove_all(dir);
    return dir;
}

/**
 * A synthetic report with a recognizable payload. The cache never
 * interprets reports — it round-trips them bit-exactly — so tests can
 * exercise concurrency with cheap hand-built values instead of paying
 * an optimize() per key.
 */
LibraReport
markedReport(double mark)
{
    LibraReport r;
    r.speedup = mark;
    r.perfPerCostGain = mark * 2.0;
    return r;
}

/** Synthetic canonical keys: the cache treats them as opaque text. */
std::string
syntheticKey(std::size_t i)
{
    return "concurrency-test-key " + std::to_string(i);
}

TEST(CacheConcurrency, ManyThreadsHammerOverlappingKeys)
{
    std::string dir = freshDir("libra-cache-hammer");
    ResultCache cache(dir);
    ASSERT_TRUE(cache.enabled());

    constexpr std::size_t kKeys = 8;
    constexpr std::size_t kThreads = 8;
    constexpr std::size_t kIters = 40;

    std::atomic<std::size_t> badLoads{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (std::size_t i = 0; i < kIters; ++i) {
                std::size_t k = (t + i) % kKeys;
                std::string canonical = syntheticKey(k);
                std::uint64_t key = studyCacheHashOfKey(canonical);
                LibraReport out;
                if (cache.load(key, canonical, &out)) {
                    // A torn or crossed entry would surface here: the
                    // payload is a pure function of the key.
                    if (out.speedup != static_cast<double>(k))
                        ++badLoads;
                } else {
                    cache.store(key, canonical,
                                markedReport(static_cast<double>(k)));
                }
            }
        });
    }
    for (auto& th : threads)
        th.join();
    EXPECT_EQ(badLoads.load(), 0u);

    // Every key is stored by now and loads back with its own payload.
    for (std::size_t k = 0; k < kKeys; ++k) {
        std::string canonical = syntheticKey(k);
        LibraReport out;
        ASSERT_TRUE(
            cache.load(studyCacheHashOfKey(canonical), canonical, &out))
            << canonical;
        EXPECT_EQ(out.speedup, static_cast<double>(k));
    }
    ResultCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.storeFailures, 0u);
    EXPECT_EQ(stats.loadFailures, 0u);
    std::filesystem::remove_all(dir);
}

TEST(CacheConcurrency, HammerSurvivesInjectedCacheFaults)
{
    FaultGuard guard;
    std::string dir = freshDir("libra-cache-hammer-faults");
    ResultCache cache(dir); // Open clean; fault the I/O paths only.
    ASSERT_TRUE(cache.enabled());
    setInformEnabled(false);
    installFaults(parseFaultSpec("cache-load-read=0.3,"
                                 "cache-store-write=0.3,"
                                 "cache-store-rename=0.3,seed=9"));

    constexpr std::size_t kKeys = 8;
    constexpr std::size_t kThreads = 8;
    constexpr std::size_t kIters = 30;

    // The injector is a pure function of (seed, site, key), so faults
    // land on the same keys in every thread — the cache must degrade
    // (miss / warn / skip) without ever crashing or serving a wrong
    // report.
    std::atomic<std::size_t> badLoads{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (std::size_t i = 0; i < kIters; ++i) {
                std::size_t k = (t * 3 + i) % kKeys;
                std::string canonical = syntheticKey(k);
                std::uint64_t key = studyCacheHashOfKey(canonical);
                LibraReport out;
                if (cache.load(key, canonical, &out)) {
                    if (out.speedup != static_cast<double>(k))
                        ++badLoads;
                } else {
                    cache.store(key, canonical,
                                markedReport(static_cast<double>(k)));
                }
            }
        });
    }
    for (auto& th : threads)
        th.join();
    EXPECT_EQ(badLoads.load(), 0u);

    // Disarmed, the surviving entries load cleanly and correctly.
    clearFaults();
    for (std::size_t k = 0; k < kKeys; ++k) {
        std::string canonical = syntheticKey(k);
        LibraReport out;
        if (cache.load(studyCacheHashOfKey(canonical), canonical,
                       &out)) {
            EXPECT_EQ(out.speedup, static_cast<double>(k));
        }
    }
    setInformEnabled(true);
    std::filesystem::remove_all(dir);
}

TEST(CacheConcurrency, SameKeyStoresNeverTearTheEntry)
{
    std::string dir = freshDir("libra-cache-samekey");
    ResultCache cache(dir);
    ASSERT_TRUE(cache.enabled());

    const std::string canonical = syntheticKey(0);
    const std::uint64_t key = studyCacheHashOfKey(canonical);
    const LibraReport expected = markedReport(42.0);
    const std::string expectedDump = reportToJson(expected).dump();

    constexpr std::size_t kThreads = 8;
    constexpr std::size_t kIters = 20;
    std::atomic<std::size_t> mismatches{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (std::size_t i = 0; i < kIters; ++i) {
                cache.store(key, canonical, expected);
                LibraReport out;
                if (cache.load(key, canonical, &out) &&
                    reportToJson(out).dump() != expectedDump)
                    ++mismatches;
            }
        });
    }
    for (auto& th : threads)
        th.join();
    EXPECT_EQ(mismatches.load(), 0u);

    ResultCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.quarantined, 0u);
    EXPECT_EQ(stats.storeFailures, 0u);

    // Exactly one entry file; every per-writer tmp file was consumed
    // by its rename.
    std::size_t files = 0;
    for (const auto& entry :
         std::filesystem::directory_iterator(dir)) {
        EXPECT_EQ(entry.path().extension(), ".json")
            << entry.path().filename();
        ++files;
    }
    EXPECT_EQ(files, 1u);
    std::filesystem::remove_all(dir);
}

TEST(CacheConcurrency, ExtendedTmpSuffixGrammarDecidesStaleness)
{
    std::string dir = freshDir("libra-cache-tmpgrammar");
    std::filesystem::create_directories(dir);
    const std::string pid = std::to_string(::getpid());
    auto touch = [&](const std::string& name) {
        std::ofstream(dir + "/" + name) << "tmp";
    };
    // Stale: dead pid (old and extended grammar), garbage pid,
    // garbage sequence.
    touch("a.json.tmp.999999999");
    touch("b.json.tmp.999999999.3");
    touch("c.json.tmp.notapid");
    touch("d.json.tmp." + pid + ".7x");
    touch("e.json.tmp." + pid + ".");
    // Live: our own pid, bare and with a sequence.
    touch("f.json.tmp." + pid);
    touch("g.json.tmp." + pid + ".12");

    setInformEnabled(false);
    ResultCache cache(dir);
    setInformEnabled(true);
    EXPECT_EQ(cache.stats().reapedTmp, 5u);
    EXPECT_FALSE(
        std::filesystem::exists(dir + "/a.json.tmp.999999999"));
    EXPECT_FALSE(
        std::filesystem::exists(dir + "/b.json.tmp.999999999.3"));
    EXPECT_FALSE(std::filesystem::exists(dir + "/c.json.tmp.notapid"));
    EXPECT_FALSE(
        std::filesystem::exists(dir + "/d.json.tmp." + pid + ".7x"));
    EXPECT_FALSE(
        std::filesystem::exists(dir + "/e.json.tmp." + pid + "."));
    EXPECT_TRUE(std::filesystem::exists(dir + "/f.json.tmp." + pid));
    EXPECT_TRUE(
        std::filesystem::exists(dir + "/g.json.tmp." + pid + ".12"));
    std::filesystem::remove_all(dir);
}

TEST(CacheConcurrency, StatsSnapshotIsConsistentUnderWriters)
{
    std::string dir = freshDir("libra-cache-stats");
    ResultCache cache(dir);
    ASSERT_TRUE(cache.enabled());

    std::atomic<bool> stop{false};
    std::thread reader([&] {
        while (!stop.load()) {
            ResultCache::Stats s = cache.stats();
            // Nothing in this test quarantines or fails I/O; the
            // snapshot must never show transient garbage.
            EXPECT_EQ(s.quarantined, 0u);
            EXPECT_EQ(s.storeFailures, 0u);
        }
    });
    std::vector<std::thread> writers;
    for (std::size_t t = 0; t < 4; ++t) {
        writers.emplace_back([&, t] {
            for (std::size_t i = 0; i < 50; ++i) {
                std::string canonical = syntheticKey(t * 50 + i);
                cache.store(studyCacheHashOfKey(canonical), canonical,
                            markedReport(1.0));
            }
        });
    }
    for (auto& w : writers)
        w.join();
    stop = true;
    reader.join();
    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace libra
