/**
 * @file
 * Tests for the parallel evaluation engine's thread pool: full index
 * coverage, exception propagation, futures, nesting, and the global
 * pool knob.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.hh"

namespace libra {
namespace {

TEST(ThreadPool, ParallelForCoversAllIndicesOnce)
{
    ThreadPool pool(4);
    constexpr std::size_t n = 10'000;
    std::vector<std::atomic<int>> hits(n);
    pool.parallelFor(n, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ParallelForWorksWithoutWorkers)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.threadCount(), 1u);
    std::vector<int> hits(100, 0);
    pool.parallelFor(hits.size(), [&](std::size_t i) { hits[i] = 1; });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
}

TEST(ThreadPool, ParallelForZeroAndOneTripCounts)
{
    ThreadPool pool(4);
    int calls = 0;
    pool.parallelFor(0, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    pool.parallelFor(1, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ParallelForPropagatesExceptionAndStillCovers)
{
    ThreadPool pool(4);
    constexpr std::size_t n = 257;
    std::vector<std::atomic<int>> hits(n);
    EXPECT_THROW(
        pool.parallelFor(n,
                         [&](std::size_t i) {
                             hits[i].fetch_add(1);
                             if (i == 100)
                                 throw std::runtime_error("boom");
                         }),
        std::runtime_error);
    // The contract: every index still executes even when one throws.
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, SerialPathExceptionStillCoversAllIndices)
{
    // Worker-less pools must honor the same contract as pooled runs:
    // every index executes, the first failure is rethrown.
    ThreadPool pool(1);
    constexpr std::size_t n = 64;
    std::vector<int> hits(n, 0);
    EXPECT_THROW(
        pool.parallelFor(n,
                         [&](std::size_t i) {
                             hits[i] = 1;
                             if (i == 3)
                                 throw std::runtime_error("early");
                         }),
        std::runtime_error);
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
              static_cast<int>(n));
}

TEST(ThreadPool, SubmitFromInlineSubmitDoesNotDeadlock)
{
    ThreadPool pool(1);
    int inner = 0;
    auto future = pool.submit([&] {
        pool.submit([&] { inner = 42; }).get();
        return inner;
    });
    EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, SubmitFromBusyWorkerDoesNotDeadlock)
{
    // pool(2) has one worker; the outer task occupies it, so the
    // inner submit must run inline rather than queue-and-wait.
    ThreadPool pool(2);
    auto future = pool.submit([&] {
        return pool.submit([] { return 7; }).get() + 1;
    });
    EXPECT_EQ(future.get(), 8);
}

TEST(ThreadPool, NestedParallelForRunsInlineAndCovers)
{
    ThreadPool pool(4);
    constexpr std::size_t outer = 8, inner = 64;
    std::vector<std::atomic<int>> hits(outer * inner);
    pool.parallelFor(outer, [&](std::size_t o) {
        pool.parallelFor(inner, [&](std::size_t i) {
            hits[o * inner + i].fetch_add(1);
        });
    });
    for (std::size_t k = 0; k < hits.size(); ++k)
        ASSERT_EQ(hits[k].load(), 1) << "slot " << k;
}

TEST(ThreadPool, SubmitReturnsValueThroughFuture)
{
    ThreadPool pool(2);
    auto future = pool.submit([] { return 6 * 7; });
    EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesExceptionThroughFuture)
{
    ThreadPool pool(2);
    auto future =
        pool.submit([]() -> int { throw std::logic_error("bad"); });
    EXPECT_THROW(future.get(), std::logic_error);
}

TEST(ThreadPool, SubmitRunsInlineWithoutWorkers)
{
    ThreadPool pool(1);
    auto future = pool.submit([] { return std::string("inline"); });
    EXPECT_EQ(future.get(), "inline");
}

TEST(ThreadPool, ParallelMapPreservesInputOrder)
{
    ThreadPool::setGlobalThreads(4);
    std::vector<int> items(500);
    std::iota(items.begin(), items.end(), 0);
    std::vector<int> out =
        parallelMap(items, [](const int& v) { return v * v; });
    ASSERT_EQ(out.size(), items.size());
    for (std::size_t i = 0; i < out.size(); ++i)
        ASSERT_EQ(out[i], static_cast<int>(i * i));
    ThreadPool::setGlobalThreads(1);
}

TEST(ThreadPool, GlobalKnobResizesPool)
{
    ThreadPool::setGlobalThreads(3);
    EXPECT_EQ(ThreadPool::globalThreadCount(), 3u);
    ThreadPool::setGlobalThreads(1);
    EXPECT_EQ(ThreadPool::globalThreadCount(), 1u);
}

TEST(ThreadPool, GlobalKnobClampsZeroToOnePool)
{
    // A zero request clamps to one thread, and the clamped size must
    // govern everything: the pool actually built, the early-return
    // size check, and the retired-pool reuse scan. A pool built from
    // the raw argument would break that agreement.
    ThreadPool::setGlobalThreads(0);
    EXPECT_EQ(ThreadPool::globalThreadCount(), 1u);
    // Asking again (0 or the clamped 1) is a no-op, not a rebuild.
    ThreadPool::setGlobalThreads(0);
    EXPECT_EQ(ThreadPool::globalThreadCount(), 1u);
    ThreadPool::setGlobalThreads(1);
    EXPECT_EQ(ThreadPool::globalThreadCount(), 1u);
    // Alternating sizes lands back on the same clamped pool size.
    ThreadPool::setGlobalThreads(2);
    EXPECT_EQ(ThreadPool::globalThreadCount(), 2u);
    ThreadPool::setGlobalThreads(0);
    EXPECT_EQ(ThreadPool::globalThreadCount(), 1u);
}

TEST(ThreadPool, InsidePoolVisibleFromWork)
{
    ThreadPool pool(2);
    EXPECT_FALSE(ThreadPool::insidePool());
    std::atomic<bool> sawInside{false};
    pool.parallelFor(8, [&](std::size_t) {
        if (ThreadPool::insidePool())
            sawInside = true;
    });
    EXPECT_TRUE(sawInside.load());
    EXPECT_FALSE(ThreadPool::insidePool());
}

} // namespace
} // namespace libra
