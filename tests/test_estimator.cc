/**
 * @file
 * Tests for the end-to-end training-time estimator.
 */

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "core/estimator.hh"
#include "topology/zoo.hh"
#include "workload/zoo.hh"

namespace libra {
namespace {

/** Tiny hand-built workload: one layer, known numbers. */
Workload
toyWorkload(long tp, long dp)
{
    Workload w;
    w.name = "toy";
    w.strategy = {tp, dp};
    Layer l;
    l.name = "l0";
    l.fwdCompute = 1.0;
    l.igCompute = 2.0;
    l.wgCompute = 3.0;
    if (tp > 1) {
        l.fwdComm.push_back(
            {CollectiveType::AllReduce, CommScope::Tp, 1e9});
        l.igComm.push_back(
            {CollectiveType::AllReduce, CommScope::Tp, 1e9});
    }
    if (dp > 1) {
        l.wgComm.push_back(
            {CollectiveType::AllReduce, CommScope::Dp, 1e9});
    }
    w.layers.push_back(l);
    return w;
}

TEST(Estimator, NoOverlapSumsEverything)
{
    Network net = Network::parse("RI(4)_RI(4)");
    TrainingEstimator est(net);
    Workload w = toyWorkload(4, 4);
    BwConfig bw{10.0, 10.0};

    // TP AR on dim 1: 2*1e9*(3/4)/10e9 = 0.15 s each.
    // DP AR on dim 2 (stride 4): 2*1e9*(3/4)/10e9 = 0.15 s.
    Seconds want = (1.0 + 0.15) + (2.0 + 0.15) + (3.0 + 0.15);
    EXPECT_NEAR(est.estimate(w, bw), want, 1e-9);
}

TEST(Estimator, TpDpOverlapTakesMax)
{
    Network net = Network::parse("RI(4)_RI(4)");
    EstimatorOptions opt;
    opt.loop = TrainingLoop::TpDpOverlap;
    TrainingEstimator est(net, opt);
    Workload w = toyWorkload(4, 4);
    BwConfig bw{10.0, 10.0};

    // Backward tail = max(TP_comm, DP_comp + DP_comm)
    //               = max(0.15, 3.0 + 0.15) = 3.15.
    Seconds want = (1.0 + 0.15) + 2.0 + 3.15;
    EXPECT_NEAR(est.estimate(w, bw), want, 1e-9);
}

TEST(Estimator, OverlapNeverSlower)
{
    Network net = topo::fourD4K();
    TrainingEstimator noOverlap(net);
    EstimatorOptions opt;
    opt.loop = TrainingLoop::TpDpOverlap;
    TrainingEstimator overlap(net, opt);

    BwConfig bw = net.equalBw(400.0);
    for (const auto& w : wl::tableTwo(net.npus())) {
        EXPECT_LE(overlap.estimate(w, bw),
                  noOverlap.estimate(w, bw) + 1e-12)
            << w.name;
    }
}

TEST(Estimator, MoreBandwidthNeverSlower)
{
    Network net = topo::threeD4K();
    TrainingEstimator est(net);
    Workload w = wl::msft1T(net.npus());
    Seconds slow = est.estimate(w, net.equalBw(100.0));
    Seconds fast = est.estimate(w, net.equalBw(1000.0));
    EXPECT_LT(fast, slow);
}

TEST(Estimator, WorkloadNetworkMismatchThrows)
{
    Network net = topo::fourD4K();
    TrainingEstimator est(net);
    Workload w = wl::gpt3(1024); // 1024 != 4096 NPUs.
    EXPECT_THROW(est.estimate(w, net.equalBw(100.0)), FatalError);
}

TEST(Estimator, DetailMatchesEstimate)
{
    Network net = topo::fourD4K();
    for (auto loop :
         {TrainingLoop::NoOverlap, TrainingLoop::TpDpOverlap}) {
        EstimatorOptions opt;
        opt.loop = loop;
        TrainingEstimator est(net, opt);
        Workload w = wl::msft1T(net.npus());
        BwConfig bw = net.equalBw(300.0);
        EstimateDetail d = est.detail(w, bw);
        EXPECT_NEAR(d.total, est.estimate(w, bw), 1e-12);
        EXPECT_GT(d.computeTotal, 0.0);
        EXPECT_GT(d.exposedComm, 0.0);
    }
}

TEST(Estimator, DetailBreakdownConsistent)
{
    Network net = topo::fourD4K();
    TrainingEstimator est(net);
    Workload w = wl::gpt3(net.npus());
    BwConfig bw = net.equalBw(300.0);
    EstimateDetail d = est.detail(w, bw);

    EXPECT_NEAR(d.computeTotal, d.fwdCompute + d.igCompute + d.wgCompute,
                1e-12);
    // No overlap: total = compute + all comm.
    EXPECT_NEAR(d.total,
                d.computeTotal + d.fwdComm + d.igComm + d.wgComm, 1e-9);
    // Utilization is a fraction.
    EXPECT_GT(d.avgBwUtilization, 0.0);
    EXPECT_LE(d.avgBwUtilization, 1.0 + 1e-9);
}

TEST(Estimator, UtilizationHitsOneOnBalancedSingleCollective)
{
    // One collective over one dim: the only dim is always busy.
    Network net = Network::parse("RI(4)");
    TrainingEstimator est(net);
    Workload w;
    w.strategy = {1, 4};
    Layer l;
    l.wgComm.push_back({CollectiveType::AllReduce, CommScope::Dp, 1e9});
    w.layers.push_back(l);
    EstimateDetail d = est.detail(w, {10.0});
    EXPECT_NEAR(d.avgBwUtilization, 1.0, 1e-9);
}

TEST(Estimator, EqualBwUnderutilizesMultiDim)
{
    // The Fig. 10 premise: EqualBW on a 4D network leaves most of the
    // fabric idle because dim 1 bottlenecks.
    Network net = topo::fourD4K();
    TrainingEstimator est(net);
    Workload w = wl::msft1T(net.npus());
    EstimateDetail d = est.detail(w, net.equalBw(300.0));
    EXPECT_LT(d.avgBwUtilization, 0.8);
}

TEST(Estimator, SpansForScopes)
{
    Network net = topo::fourD4K();
    TrainingEstimator est(net);
    Parallelization hp{128, 32};
    EXPECT_EQ(est.spansFor(hp, CommScope::Tp).size(), 3u);
    EXPECT_EQ(est.spansFor(hp, CommScope::Dp).size(), 1u);
    EXPECT_EQ(est.spansFor(hp, CommScope::All).size(), 4u);
}

TEST(Estimator, CommTimeMatchesMultiRail)
{
    Network net = topo::fourD4K();
    TrainingEstimator est(net);
    Parallelization hp{128, 32};
    BwConfig bw = net.equalBw(400.0);
    CommOp op{CollectiveType::AllReduce, CommScope::Tp, 5e9};
    auto spans = est.spansFor(hp, CommScope::Tp);
    EXPECT_NEAR(est.commTime(op, hp, bw),
                multiRailTime(op.type, op.size, spans, bw).time, 1e-15);
}

TEST(Estimator, CustomCommTimeFnUsed)
{
    Network net = Network::parse("RI(4)");
    EstimatorOptions opt;
    opt.commTimeFn = [](CollectiveType, Bytes,
                        const std::vector<DimSpan>& spans,
                        const BwConfig&, bool) {
        CollectiveTiming t;
        t.time = 42.0;
        t.trafficPerDim.assign(spans.size(), 0.0);
        t.timePerDim.assign(spans.size(), 42.0);
        return t;
    };
    TrainingEstimator est(net, opt);
    Workload w;
    w.strategy = {1, 4};
    Layer l;
    l.wgComm.push_back({CollectiveType::AllReduce, CommScope::Dp, 1e9});
    w.layers.push_back(l);
    EXPECT_NEAR(est.estimate(w, {10.0}), 42.0, 1e-12);
}

/**
 * The pluggable-timing seam checks whatever a custom fn (or backend)
 * returns: collective timings must be nonnegative and finite with
 * span-aligned vectors, or estimation fails loudly instead of
 * corrupting objectives downstream.
 */
TEST(Estimator, InvalidCustomTimingIsRejectedAtTheSeam)
{
    Network net = Network::parse("RI(4)");
    Workload w;
    w.strategy = {1, 4};
    Layer l;
    l.wgComm.push_back({CollectiveType::AllReduce, CommScope::Dp, 1e9});
    w.layers.push_back(l);

    auto timingWith = [](Seconds time, Seconds per_dim) {
        return [time, per_dim](CollectiveType, Bytes,
                               const std::vector<DimSpan>& spans,
                               const BwConfig&, bool) {
            CollectiveTiming t;
            t.time = time;
            t.trafficPerDim.assign(spans.size(), 1.0);
            t.timePerDim.assign(spans.size(), per_dim);
            return t;
        };
    };

    // Negative and non-finite total times.
    for (Seconds bad : {-1.0, std::nan(""),
                        std::numeric_limits<Seconds>::infinity()}) {
        EstimatorOptions opt;
        opt.commTimeFn = timingWith(bad, 0.5);
        TrainingEstimator est(net, opt);
        EXPECT_THROW(est.estimate(w, {10.0}), FatalError) << bad;
    }

    // Invalid per-dimension time with a valid total.
    {
        EstimatorOptions opt;
        opt.commTimeFn = timingWith(1.0, -0.5);
        TrainingEstimator est(net, opt);
        EXPECT_THROW(est.detail(w, {10.0}), FatalError);
    }

    // Vectors not aligned with the span list.
    {
        EstimatorOptions opt;
        opt.commTimeFn = [](CollectiveType, Bytes,
                            const std::vector<DimSpan>&,
                            const BwConfig&, bool) {
            CollectiveTiming t;
            t.time = 1.0; // Valid time, but empty per-dim vectors.
            return t;
        };
        TrainingEstimator est(net, opt);
        EXPECT_THROW(est.estimate(w, {10.0}), FatalError);
    }

    // A well-formed timing still passes.
    {
        EstimatorOptions opt;
        opt.commTimeFn = timingWith(1.0, 0.5);
        TrainingEstimator est(net, opt);
        EXPECT_NEAR(est.estimate(w, {10.0}), 1.0, 1e-12);
    }
}

TEST(Estimator, InNetworkSpeedsUpAllReduce)
{
    // ResNet-50 syncs gradients with true All-Reduces, the collective
    // the switch-offload model accelerates (ZeRO-2 RS+AG is untouched).
    Network net = topo::threeD512();
    EstimatorOptions offload;
    offload.inNetworkCollectives = true;
    TrainingEstimator plain(net);
    TrainingEstimator inNet(net, offload);
    Workload w = wl::resnet50(net.npus());
    BwConfig bw = net.equalBw(300.0);
    EXPECT_LT(inNet.estimate(w, bw), plain.estimate(w, bw));
}

TEST(Estimator, InNetworkLeavesZeroTwoWorkloadsUnchanged)
{
    Network net = topo::threeD512();
    EstimatorOptions offload;
    offload.inNetworkCollectives = true;
    TrainingEstimator plain(net);
    TrainingEstimator inNet(net, offload);
    Workload w = wl::turingNlg(net.npus()); // RS+AG gradient sync.
    BwConfig bw = net.equalBw(300.0);
    EXPECT_DOUBLE_EQ(inNet.estimate(w, bw), plain.estimate(w, bw));
}

} // namespace
} // namespace libra
