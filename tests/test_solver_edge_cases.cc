/**
 * @file
 * Degenerate-input coverage for every registered search strategy and
 * the multistart driver: 1-dimension problems (nothing to trade off),
 * a total budget exactly at the sum of the per-dimension floors (the
 * feasible set is a single point), a budget below the floors (an
 * infeasible polyhedron must produce a clean error, never NaN), and
 * the same cases end-to-end through BwOptimizer on real networks.
 * Every strategy — old chain members and the new global solvers —
 * must return a feasible projected point or throw FatalError; NaN or
 * negative bandwidth is always a bug.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hh"
#include "core/optimizer.hh"
#include "solver/multistart.hh"
#include "solver/strategy.hh"
#include "topology/network.hh"
#include "workload/zoo.hh"

namespace libra {
namespace {

/** Convex separable model: sum of a_i / x_i, the LIBRA time shape. */
ScalarObjective
inverseSum(Vec weights)
{
    return [weights = std::move(weights)](const Vec& x) {
        double s = 0.0;
        for (std::size_t i = 0; i < x.size(); ++i)
            s += weights[i] / std::max(x[i], 1e-12);
        return s;
    };
}

void
expectCleanPoint(const Vec& x, const ConstraintSet& cs,
                 const std::string& who)
{
    EXPECT_TRUE(cs.feasible(x, 1e-4)) << who;
    for (double v : x) {
        EXPECT_TRUE(std::isfinite(v)) << who;
        EXPECT_GT(v, 0.0) << who;
    }
}

/** Run one strategy from @p x0 and validate the result. */
void
runStrategy(const std::string& name, const ScalarObjective& f,
            const ConstraintSet& cs, const Vec& x0, double scale)
{
    SCOPED_TRACE(name);
    const SearchStrategy* s = StrategyRegistry::global().find(name);
    ASSERT_NE(s, nullptr);
    StartPoint start{x0, 0xED6Eull, scale};
    EvalBudget budget;
    SearchResult r = s->search(f, cs, start, budget);
    expectCleanPoint(r.x, cs, name);
    EXPECT_TRUE(std::isfinite(r.value)) << name;
    EXPECT_LE(r.value, f(x0) + 1e-9) << name << " worse than start";
}

TEST(SolverEdgeCases, OneDimensionIsAFixedPointForEveryStrategy)
{
    // With one variable pinned by the budget equality there is nothing
    // to optimize; every strategy must hold the point exactly.
    ConstraintSet cs(1);
    cs.addTotalBw(120.0);
    cs.addLowerBounds(0.1);
    auto f = inverseSum({7.0});
    for (const auto& name : StrategyRegistry::global().names()) {
        runStrategy(name, f, cs, {120.0}, 120.0);
        const SearchStrategy* s = StrategyRegistry::global().find(name);
        StartPoint start{{120.0}, 0x1D1ull, 120.0};
        EvalBudget budget;
        SearchResult r = s->search(f, cs, start, budget);
        EXPECT_NEAR(r.x[0], 120.0, 1e-6) << name;
    }
}

TEST(SolverEdgeCases, BudgetExactlyAtFloorsPinsEveryDimension)
{
    // sum B = 30 with B_i >= 10 has the single feasible point
    // (10, 10, 10); any movement violates a constraint.
    ConstraintSet cs(3);
    cs.addTotalBw(30.0);
    cs.addLowerBounds(10.0);
    auto f = inverseSum({4.0, 2.0, 1.0});
    Vec only{10.0, 10.0, 10.0};
    for (const auto& name : StrategyRegistry::global().names()) {
        runStrategy(name, f, cs, only, 30.0);
        const SearchStrategy* s = StrategyRegistry::global().find(name);
        StartPoint start{only, 0xF100ull, 30.0};
        EvalBudget budget;
        SearchResult r = s->search(f, cs, start, budget);
        for (std::size_t i = 0; i < 3; ++i)
            EXPECT_NEAR(r.x[i], 10.0, 1e-4) << name << " dim " << i;
    }

    SearchResult driver = multistartMinimize(f, cs, only);
    expectCleanPoint(driver.x, cs, "multistart");
}

TEST(SolverEdgeCases, BudgetBelowFloorsIsACleanErrorForEveryStrategy)
{
    // sum B = 25 with B_i >= 10 is an empty polyhedron: projection
    // must throw FatalError — never return NaN or negative bandwidth.
    ConstraintSet cs(3);
    cs.addTotalBw(25.0);
    cs.addLowerBounds(10.0);
    auto f = inverseSum({4.0, 2.0, 1.0});
    Vec hint{8.0, 8.0, 9.0};
    for (const auto& name : StrategyRegistry::global().names()) {
        SCOPED_TRACE(name);
        const SearchStrategy* s = StrategyRegistry::global().find(name);
        StartPoint start{hint, 0xBADull, 25.0};
        EvalBudget budget;
        EXPECT_THROW(s->search(f, cs, start, budget), FatalError);
    }
    EXPECT_THROW(multistartMinimize(f, cs, hint), FatalError);
}

TEST(SolverEdgeCases, InfeasibleTextConstraintsErrorThroughOptimize)
{
    // Contradictory design constraints through the full optimizer
    // stack, for each selectable pipeline.
    Network net = Network::parse("RI(4)_SW(4)");
    BwOptimizer opt(net, CostModel::defaultModel());
    Workload w = wl::resnet50(net.npus());
    for (const char* solver : {"", "cmaes", "de"}) {
        SCOPED_TRACE(solver);
        OptimizerConfig cfg;
        cfg.totalBw = 200.0;
        cfg.search.starts = 1;
        if (*solver)
            cfg.search.pipeline = {solver};
        cfg.constraints = {"B1 >= 150", "B2 >= 150"}; // Sum is 200.
        EXPECT_THROW(opt.optimize({{w, 1.0}}, cfg), FatalError);
    }
}

TEST(SolverEdgeCases, OneDimensionNetworkOptimizesCleanlyPerSolver)
{
    // A single-dimension network end-to-end: the budget equality pins
    // the solution, so every pipeline must return exactly totalBw.
    Network net = Network::parse("SW(8)");
    BwOptimizer opt(net, CostModel::defaultModel());
    Workload w = wl::resnet50(net.npus());
    for (const char* solver :
         {"", "cmaes", "de", "pattern-search", "nelder-mead"}) {
        SCOPED_TRACE(solver);
        OptimizerConfig cfg;
        cfg.totalBw = 150.0;
        cfg.search.starts = 2;
        if (*solver)
            cfg.search.pipeline = {solver};
        OptimizationResult r = opt.optimize({{w, 1.0}}, cfg);
        ASSERT_EQ(r.bw.size(), 1u);
        EXPECT_NEAR(r.bw[0], 150.0, 1e-6);
        EXPECT_TRUE(std::isfinite(r.objectiveValue));
        EXPECT_GT(r.weightedTime, 0.0);
    }
}

TEST(SolverEdgeCases, TightFloorsThroughOptimizeStayFeasible)
{
    // minDimBw floors that consume the whole budget leave exactly one
    // feasible point for every pipeline.
    Network net = Network::parse("RI(4)_FC(4)_SW(4)");
    BwOptimizer opt(net, CostModel::defaultModel());
    Workload w = wl::resnet50(net.npus());
    for (const char* solver : {"", "cmaes", "de"}) {
        SCOPED_TRACE(solver);
        OptimizerConfig cfg;
        cfg.totalBw = 30.0;
        cfg.minDimBw = 10.0;
        cfg.search.starts = 1;
        if (*solver)
            cfg.search.pipeline = {solver};
        OptimizationResult r = opt.optimize({{w, 1.0}}, cfg);
        for (double b : r.bw) {
            EXPECT_TRUE(std::isfinite(b));
            EXPECT_NEAR(b, 10.0, 1e-4);
        }
    }
}

} // namespace
} // namespace libra
