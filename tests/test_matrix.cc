/**
 * @file
 * Tests for the dense linear-algebra kernel.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "solver/matrix.hh"

namespace libra {
namespace {

TEST(VecOps, DotNormAxpy)
{
    Vec a{1.0, 2.0, 3.0};
    Vec b{4.0, 5.0, 6.0};
    EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
    EXPECT_DOUBLE_EQ(norm(Vec{3.0, 4.0}), 5.0);
    EXPECT_DOUBLE_EQ(normInf(Vec{-7.0, 2.0}), 7.0);

    Vec r = axpy(a, 2.0, b);
    EXPECT_DOUBLE_EQ(r[0], 9.0);
    EXPECT_DOUBLE_EQ(r[2], 15.0);

    Vec d = sub(b, a);
    EXPECT_DOUBLE_EQ(d[1], 3.0);

    Vec s = scale(-1.0, a);
    EXPECT_DOUBLE_EQ(s[0], -1.0);
}

TEST(Matrix, IdentitySolve)
{
    Matrix i = Matrix::identity(3);
    Vec b{1.0, -2.0, 5.0};
    bool ok = false;
    Vec x = i.solve(b, &ok);
    EXPECT_TRUE(ok);
    for (int k = 0; k < 3; ++k)
        EXPECT_DOUBLE_EQ(x[static_cast<std::size_t>(k)],
                         b[static_cast<std::size_t>(k)]);
}

TEST(Matrix, KnownSolve)
{
    // [2 1; 1 3] x = [3; 5] -> x = [4/5, 7/5]
    Matrix a(2, 2);
    a.at(0, 0) = 2;
    a.at(0, 1) = 1;
    a.at(1, 0) = 1;
    a.at(1, 1) = 3;
    bool ok = false;
    Vec x = a.solve({3.0, 5.0}, &ok);
    ASSERT_TRUE(ok);
    EXPECT_NEAR(x[0], 0.8, 1e-12);
    EXPECT_NEAR(x[1], 1.4, 1e-12);
}

TEST(Matrix, SolveNeedsPivoting)
{
    // Leading zero forces a row swap.
    Matrix a(2, 2);
    a.at(0, 0) = 0;
    a.at(0, 1) = 1;
    a.at(1, 0) = 1;
    a.at(1, 1) = 0;
    bool ok = false;
    Vec x = a.solve({2.0, 3.0}, &ok);
    ASSERT_TRUE(ok);
    EXPECT_NEAR(x[0], 3.0, 1e-12);
    EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Matrix, SingularDetected)
{
    Matrix a(2, 2);
    a.at(0, 0) = 1;
    a.at(0, 1) = 2;
    a.at(1, 0) = 2;
    a.at(1, 1) = 4;
    bool ok = true;
    a.solve({1.0, 2.0}, &ok);
    EXPECT_FALSE(ok);
}

TEST(Matrix, LeastSquaresConsistentSystem)
{
    // For a nonsingular system least squares matches the exact solve.
    Matrix a(2, 2);
    a.at(0, 0) = 3;
    a.at(0, 1) = 1;
    a.at(1, 0) = 1;
    a.at(1, 1) = 2;
    Vec b{5.0, 5.0};
    Vec exact = a.solve(b);
    Vec ls = a.solveLeastSquares(b);
    EXPECT_NEAR(ls[0], exact[0], 1e-5);
    EXPECT_NEAR(ls[1], exact[1], 1e-5);
}

TEST(Matrix, LeastSquaresSingularStillFinite)
{
    Matrix a(2, 2);
    a.at(0, 0) = 1;
    a.at(0, 1) = 1;
    a.at(1, 0) = 1;
    a.at(1, 1) = 1;
    Vec x = a.solveLeastSquares({2.0, 2.0});
    // x0 + x1 should be ~2 (the consistent constraint), values finite.
    EXPECT_NEAR(x[0] + x[1], 2.0, 1e-3);
}

TEST(Matrix, MulAndTranspose)
{
    Matrix a(2, 3);
    for (std::size_t r = 0; r < 2; ++r)
        for (std::size_t c = 0; c < 3; ++c)
            a.at(r, c) = static_cast<double>(r * 3 + c + 1);
    Vec x{1.0, 0.0, -1.0};
    Vec y = a.mul(x);
    EXPECT_DOUBLE_EQ(y[0], 1.0 - 3.0);
    EXPECT_DOUBLE_EQ(y[1], 4.0 - 6.0);

    Matrix at = a.transposed();
    EXPECT_EQ(at.rows(), 3u);
    EXPECT_EQ(at.cols(), 2u);
    EXPECT_DOUBLE_EQ(at.at(2, 1), a.at(1, 2));

    Vec z = a.mulTransposed({1.0, 1.0});
    EXPECT_DOUBLE_EQ(z[0], 5.0);
    EXPECT_DOUBLE_EQ(z[2], 9.0);
}

TEST(Matrix, AppendRow)
{
    Matrix m;
    m.appendRow({1.0, 2.0});
    m.appendRow({3.0, 4.0});
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 2u);
    EXPECT_DOUBLE_EQ(m.at(1, 0), 3.0);
}

TEST(Matrix, MatrixMatrixProduct)
{
    Matrix a(2, 2);
    a.at(0, 0) = 1;
    a.at(0, 1) = 2;
    a.at(1, 0) = 3;
    a.at(1, 1) = 4;
    Matrix b = Matrix::identity(2);
    Matrix c = a.mul(b);
    EXPECT_DOUBLE_EQ(c.at(0, 1), 2.0);
    EXPECT_DOUBLE_EQ(c.at(1, 1), 4.0);
}

/** Property: solve() inverts random well-conditioned SPD systems. */
class MatrixRandomSolve : public ::testing::TestWithParam<int>
{};

TEST_P(MatrixRandomSolve, SolvesRandomSpdSystem)
{
    const int n = 5;
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    // A = R'R + n*I is SPD and well conditioned.
    Matrix r(n, n);
    for (int i = 0; i < n; ++i)
        for (int j = 0; j < n; ++j)
            r.at(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) =
                rng.uniform(-1, 1);
    Matrix a = r.transposed().mul(r);
    for (int i = 0; i < n; ++i)
        a.at(static_cast<std::size_t>(i), static_cast<std::size_t>(i)) +=
            n;

    Vec want = rng.uniformVec(n, -10, 10);
    Vec b = a.mul(want);
    bool ok = false;
    Vec got = a.solve(b, &ok);
    ASSERT_TRUE(ok);
    for (int i = 0; i < n; ++i)
        EXPECT_NEAR(got[static_cast<std::size_t>(i)],
                    want[static_cast<std::size_t>(i)], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatrixRandomSolve,
                         ::testing::Range(0, 20));

} // namespace
} // namespace libra
