/**
 * @file
 * Tests for the closed-form allocations, including cross-validation of
 * the iterative optimizer against the analytic optimum.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "solver/multistart.hh"
#include "solver/water_fill.hh"

namespace libra {
namespace {

TEST(Proportional, EqualizesRatios)
{
    Vec a{6.0, 3.0, 1.0};
    Vec b = proportionalAllocation(a, 100.0);
    EXPECT_NEAR(b[0], 60.0, 1e-12);
    EXPECT_NEAR(b[1], 30.0, 1e-12);
    EXPECT_NEAR(b[2], 10.0, 1e-12);
    // Ratios a_i / B_i all equal.
    EXPECT_NEAR(a[0] / b[0], a[2] / b[2], 1e-12);
}

TEST(Proportional, ZeroWeightGetsFloor)
{
    Vec a{1.0, 0.0};
    Vec b = proportionalAllocation(a, 10.0, 0.5);
    EXPECT_NEAR(b[1], 0.5, 1e-12);
    EXPECT_NEAR(b[0], 9.5, 1e-12);
}

TEST(Proportional, Validation)
{
    EXPECT_THROW(proportionalAllocation({1.0}, -5.0), FatalError);
    EXPECT_THROW(proportionalAllocation({0.0, 0.0}, 10.0), FatalError);
    EXPECT_THROW(proportionalAllocation({-1.0, 2.0}, 10.0), FatalError);
    EXPECT_THROW(proportionalAllocation({1.0, 0.0}, 1.0, 2.0),
                 FatalError);
}

TEST(WaterFill, SquareRootSplit)
{
    // min 16/x + 4/y + 1/z, sum = 70 -> (40, 20, 10).
    Vec b = waterFillAllocation({16.0, 4.0, 1.0}, 70.0);
    EXPECT_NEAR(b[0], 40.0, 1e-12);
    EXPECT_NEAR(b[1], 20.0, 1e-12);
    EXPECT_NEAR(b[2], 10.0, 1e-12);
}

TEST(WaterFill, MatchesIterativeSolver)
{
    Vec a{25.0, 9.0, 4.0, 1.0};
    double total = 120.0;
    Vec analytic = waterFillAllocation(a, total);

    auto f = [&a](const Vec& x) {
        double s = 0.0;
        for (std::size_t i = 0; i < x.size(); ++i)
            s += a[i] / std::max(x[i], 1e-12);
        return s;
    };
    ConstraintSet cs(4);
    cs.addTotalBw(total);
    cs.addLowerBounds(0.1);
    SearchResult r = multistartMinimize(f, cs, Vec(4, total / 4.0));
    EXPECT_NEAR(r.value, f(analytic), f(analytic) * 0.01);
}

TEST(WaterFill, RejectsNegativeWeights)
{
    EXPECT_THROW(waterFillAllocation({-1.0}, 10.0), FatalError);
}

/** Property: both closed forms conserve the budget exactly. */
class AllocationBudget : public ::testing::TestWithParam<double>
{};

TEST_P(AllocationBudget, SumsToTotal)
{
    double total = GetParam();
    Vec a{7.0, 5.0, 3.0, 2.0, 1.0};
    for (const Vec& b : {proportionalAllocation(a, total),
                         waterFillAllocation(a, total)}) {
        double sum = 0.0;
        for (double x : b) {
            EXPECT_GT(x, 0.0);
            sum += x;
        }
        EXPECT_NEAR(sum, total, total * 1e-12);
    }
}

INSTANTIATE_TEST_SUITE_P(Budgets, AllocationBudget,
                         ::testing::Values(10.0, 100.0, 1000.0));

} // namespace
} // namespace libra
