/**
 * @file
 * Serve-subsystem tests: the bounded LRU, the single-flight dedup
 * protocol, the layered ServeStore, and the Unix-domain-socket server
 * end to end — byte-identity with one-shot run-matrix emission,
 * exactly-once computation under concurrent identical requests, and
 * per-request error isolation. See docs/SERVE.md.
 */

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "core/study_config.hh"
#include "serve/framing.hh"
#include "serve/lru.hh"
#include "serve/server.hh"
#include "serve/single_flight.hh"
#include "study/cache.hh"
#include "study/matrix.hh"

namespace libra {
namespace {

LibraInputs
miniInputs(const char* extra = "")
{
    std::string text = "NETWORK SW(4)_RI(4)\nTOTAL_BW 200\n"
                       "STARTS 2\nWORKLOAD resnet50\n";
    text += extra;
    return parseStudyConfigString(text);
}

/** A tiny scenario (2 unique points + 1 dup), registered once. */
const char*
serveScenarioName()
{
    static const char* name = [] {
        Scenario s;
        s.name = "test-serve-mini";
        s.title = "serve-test scenario";
        s.build = [] {
            std::vector<LibraInputs> points;
            points.push_back(miniInputs());
            points.push_back(miniInputs("SEED 5\n"));
            points.push_back(miniInputs()); // Dup of the first.
            return points;
        };
        s.format = [](const std::vector<LibraInputs>& points,
                      const std::vector<LibraReport>& reports) {
            ScenarioOutput out;
            for (std::size_t i = 0; i < points.size(); ++i) {
                ScenarioRow row;
                row.label("point", std::to_string(i));
                row.metric("speedup", reports[i].speedup);
                out.rows.push_back(std::move(row));
            }
            return out;
        };
        ScenarioRegistry::global().add(std::move(s));
        return "test-serve-mini";
    }();
    return name;
}

std::string
freshDir(const char* name)
{
    std::string dir = testing::TempDir() + name;
    std::filesystem::remove_all(dir);
    return dir;
}

/** The exact bytes `run-matrix <scenario> --emit json` prints. */
std::string
oneShotJson(const std::string& scenario)
{
    MatrixResult result = runScenarioMatrix({scenario});
    std::ostringstream os;
    emitMatrixJson(result, os);
    return os.str();
}

std::string
oneShotCsv(const std::string& scenario)
{
    MatrixResult result = runScenarioMatrix({scenario});
    std::ostringstream os;
    emitMatrixCsv(result, os);
    return os.str();
}

// --- LRU ---------------------------------------------------------------

TEST(ServeLru, HitsPromoteAndColdEndEvicts)
{
    LruCache lru(2);
    LibraReport a, b, c;
    a.speedup = 1.0;
    b.speedup = 2.0;
    c.speedup = 3.0;
    lru.put("a", a);
    lru.put("b", b);

    LibraReport out;
    ASSERT_TRUE(lru.get("a", &out)); // Promotes "a"; "b" is coldest.
    EXPECT_EQ(out.speedup, 1.0);

    lru.put("c", c); // Evicts "b", not the just-promoted "a".
    EXPECT_FALSE(lru.get("b", &out));
    EXPECT_TRUE(lru.get("a", &out));
    EXPECT_TRUE(lru.get("c", &out));

    LruCache::Stats stats = lru.stats();
    EXPECT_EQ(stats.evictions, 1u);
    EXPECT_EQ(stats.entries, 2u);
    EXPECT_EQ(stats.capacity, 2u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits, 3u);
}

TEST(ServeLru, RefreshingAKeyOverwritesInPlace)
{
    LruCache lru(4);
    LibraReport v1, v2;
    v1.speedup = 1.0;
    v2.speedup = 2.0;
    lru.put("k", v1);
    lru.put("k", v2);
    LibraReport out;
    ASSERT_TRUE(lru.get("k", &out));
    EXPECT_EQ(out.speedup, 2.0);
    EXPECT_EQ(lru.stats().entries, 1u);
}

TEST(ServeLru, ZeroCapacityDisablesTheCache)
{
    LruCache lru(0);
    LibraReport r;
    lru.put("k", r);
    EXPECT_FALSE(lru.get("k", &r));
    EXPECT_EQ(lru.stats().entries, 0u);
}

/** A report whose entryBytes is deterministic and non-trivial. */
LibraReport
sizedReport(std::size_t dims, double speedup = 1.0)
{
    LibraReport r;
    r.speedup = speedup;
    r.optimized.bw.assign(dims, 1.0);
    r.equalBw.bw.assign(dims, 1.0);
    return r;
}

TEST(ServeLru, ByteBudgetEvictsFromTheColdEndUntilUnderBudget)
{
    LibraReport r = sizedReport(4);
    const std::size_t per = LruCache::entryBytes("a", r);
    ASSERT_GT(per, 0u);

    // Room for exactly two same-sized entries, unbounded entry count.
    LruCache lru(0, 2 * per);
    lru.put("a", sizedReport(4, 1.0));
    lru.put("b", sizedReport(4, 2.0));
    EXPECT_EQ(lru.stats().entries, 2u);
    EXPECT_EQ(lru.stats().bytes, 2 * per);
    EXPECT_EQ(lru.stats().maxBytes, 2 * per);

    LibraReport out;
    ASSERT_TRUE(lru.get("a", &out)); // Promote "a"; "b" is coldest.

    lru.put("c", sizedReport(4, 3.0)); // Over budget: "b" must go.
    EXPECT_FALSE(lru.get("b", &out));
    EXPECT_TRUE(lru.get("a", &out));
    EXPECT_TRUE(lru.get("c", &out));
    EXPECT_EQ(lru.stats().entries, 2u);
    EXPECT_EQ(lru.stats().evictions, 1u);
    EXPECT_LE(lru.stats().bytes, lru.stats().maxBytes);
}

TEST(ServeLru, RefreshingAKeyReaccountsItsBytes)
{
    LruCache lru(0, 1 << 20);
    lru.put("k", sizedReport(4));
    EXPECT_EQ(lru.stats().bytes,
              LruCache::entryBytes("k", sizedReport(4)));
    lru.put("k", sizedReport(64)); // Bigger value, same key.
    EXPECT_EQ(lru.stats().entries, 1u);
    EXPECT_EQ(lru.stats().bytes,
              LruCache::entryBytes("k", sizedReport(64)));
}

TEST(ServeLru, AnEntryLargerThanTheWholeBudgetIsNotRetained)
{
    LibraReport big = sizedReport(1024);
    LruCache lru(0, LruCache::entryBytes("k", big) - 1);
    lru.put("k", big);
    LibraReport out;
    EXPECT_FALSE(lru.get("k", &out));
    EXPECT_EQ(lru.stats().entries, 0u);
    EXPECT_EQ(lru.stats().bytes, 0u);
    EXPECT_EQ(lru.stats().evictions, 1u);
}

TEST(ServeLru, ByteBudgetAloneEnablesTheCache)
{
    // capacity == 0 disables only when the byte budget is 0 too.
    LruCache lru(0, 1 << 20);
    lru.put("k", sizedReport(2, 5.0));
    LibraReport out;
    ASSERT_TRUE(lru.get("k", &out));
    EXPECT_EQ(out.speedup, 5.0);
}

// --- Single flight -----------------------------------------------------

TEST(SingleFlight, SecondClaimWaitsForTheOwnersResult)
{
    SingleFlight flight;
    ASSERT_EQ(flight.claim("k"), SingleFlight::Role::Owner);

    std::atomic<bool> waiterClaimed{false};
    std::atomic<bool> waiterDone{false};
    PointStatus waiterStatus;
    LibraReport waiterReport;
    std::thread waiter([&] {
        ASSERT_EQ(flight.claim("k"), SingleFlight::Role::Waiter);
        waiterClaimed = true;
        flight.await("k", &waiterStatus, &waiterReport);
        waiterDone = true;
    });

    // Publish only after the waiter holds its claim — publishing into
    // an unclaimed slot would (correctly) end the flight early.
    while (!waiterClaimed.load())
        std::this_thread::yield();
    PointStatus status;
    LibraReport report;
    report.speedup = 7.5;
    flight.publish("k", status, report);
    waiter.join();

    EXPECT_TRUE(waiterDone.load());
    EXPECT_TRUE(waiterStatus.ok);
    EXPECT_EQ(waiterReport.speedup, 7.5);
    EXPECT_EQ(flight.inFlight(), 0u);
}

TEST(SingleFlight, ManyConcurrentClaimsYieldExactlyOneOwner)
{
    SingleFlight flight;
    constexpr int kThreads = 8;
    std::atomic<int> owners{0};
    std::atomic<int> claimed{0};
    std::atomic<int> sharedFailures{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            SingleFlight::Role role = flight.claim("k");
            ++claimed;
            if (role == SingleFlight::Role::Owner) {
                ++owners;
                // Keep the flight open until every thread has claimed
                // — an instant publish would end it with no waiters and
                // let a later claim start a fresh (sequential) flight,
                // which is correct but not what this test probes.
                while (claimed.load() < kThreads)
                    std::this_thread::yield();
                // Failures are shared verbatim, like any outcome.
                PointStatus failed;
                failed.ok = false;
                failed.error = "boom";
                flight.publish("k", failed, LibraReport{});
            } else {
                PointStatus status;
                LibraReport report;
                flight.await("k", &status, &report);
                if (!status.ok && status.error == "boom")
                    ++sharedFailures;
            }
        });
    }
    for (auto& t : threads)
        t.join();
    EXPECT_EQ(owners.load(), 1);
    EXPECT_EQ(sharedFailures.load(), kThreads - 1);
    EXPECT_EQ(flight.inFlight(), 0u);
}

// --- ServeStore --------------------------------------------------------

TEST(ServeStore, LayersTheLruOverTheDiskCache)
{
    std::string dir = freshDir("libra-serve-store");
    LibraInputs inputs = miniInputs();
    std::string canonical = canonicalStudyKey(inputs);
    std::uint64_t key = studyCacheHashOfKey(canonical);
    LibraReport report = runLibra(inputs);

    {
        ServeStore store(dir, 8);
        EXPECT_TRUE(store.store(key, canonical, report));
    }

    // A fresh store (cold LRU) first loads from disk and promotes...
    ServeStore store(dir, 8);
    LibraReport out;
    ASSERT_TRUE(store.load(key, canonical, &out));
    EXPECT_EQ(reportToJson(out).dump(), reportToJson(report).dump());
    EXPECT_EQ(store.stats().diskHits, 1u);
    // ...so the second load is pure memory.
    ASSERT_TRUE(store.load(key, canonical, &out));
    EXPECT_EQ(store.stats().diskHits, 1u);
    EXPECT_EQ(store.stats().lru.hits, 1u);

    std::filesystem::remove_all(dir);
}

TEST(ServeStore, MemoryOnlyStoreServesFromTheLruAlone)
{
    LibraInputs inputs = miniInputs();
    std::string canonical = canonicalStudyKey(inputs);
    std::uint64_t key = studyCacheHashOfKey(canonical);

    ServeStore store("", 8);
    EXPECT_EQ(store.disk(), nullptr);
    LibraReport out;
    EXPECT_FALSE(store.load(key, canonical, &out));

    LibraReport report;
    report.speedup = 2.0;
    EXPECT_TRUE(store.store(key, canonical, report));
    ASSERT_TRUE(store.load(key, canonical, &out));
    EXPECT_EQ(out.speedup, 2.0);
}

TEST(ServeStore, ClaimReprobesTheLruAfterWinningTheFlight)
{
    ServeStore store("", 8);
    LibraReport report;
    report.speedup = 3.0;

    // Key published by "another request" after our load miss: the
    // claim must come back Cached, not recompute.
    store.store(1, "k1", report);
    PointStatus status;
    LibraReport out;
    EXPECT_EQ(store.claimCompute("k1", &status, &out),
              StudyStore::Claim::Cached);
    EXPECT_TRUE(status.ok);
    EXPECT_EQ(out.speedup, 3.0);
    EXPECT_EQ(store.stats().inFlight, 0u);

    // A genuinely unseen key is Owned; after its publish cycle a new
    // claim is served from the LRU again.
    EXPECT_EQ(store.claimCompute("k2", &status, &out),
              StudyStore::Claim::Owned);
    store.store(2, "k2", report);
    status = PointStatus{};
    store.publishCompute("k2", status, report);
    EXPECT_EQ(store.claimCompute("k2", &status, &out),
              StudyStore::Claim::Cached);
    EXPECT_EQ(store.stats().inFlight, 0u);
}

// --- Server end to end -------------------------------------------------

TEST(Serve, ResponsesAreByteIdenticalToOneShotEmission)
{
    const std::string scenario = serveScenarioName();
    const std::string expectedJson = oneShotJson(scenario);
    const std::string expectedCsv = oneShotCsv(scenario);

    ServeOptions options;
    options.socketPath = testing::TempDir() + "libra-serve-a.sock";
    Server server(std::move(options));
    server.start();

    const std::string request =
        "{\"scenario\": \"" + scenario + "\", \"emit\": \"json\"}";

    // Fresh, then LRU-served, across pool resizes: all byte-identical.
    for (std::size_t threads : {1u, 2u, 8u}) {
        ThreadPool::setGlobalThreads(threads);
        ServeReply reply =
            serveRequest(server.socketPath(), request);
        ASSERT_TRUE(reply.status.at("ok").asBool());
        EXPECT_EQ(reply.payload, expectedJson);
    }
    ThreadPool::setGlobalThreads(1);

    // The second identical request is served entirely from the store.
    ServeReply cached =
        serveRequest(server.socketPath(), request);
    EXPECT_EQ(cached.status.at("computed").asNumber(), 0.0);
    EXPECT_EQ(cached.status.at("fromCache").asNumber(), 3.0);
    EXPECT_EQ(cached.payload, expectedJson);

    ServeReply csv = serveRequest(
        server.socketPath(),
        "{\"scenario\": \"" + scenario + "\", \"emit\": \"csv\"}");
    ASSERT_TRUE(csv.status.at("ok").asBool());
    EXPECT_EQ(csv.payload, expectedCsv);

    server.stop();
}

TEST(Serve, ConcurrentIdenticalRequestsComputeEachPointOnce)
{
    const std::string scenario = serveScenarioName();
    const std::string expected = oneShotJson(scenario);

    ServeOptions options;
    options.socketPath = testing::TempDir() + "libra-serve-b.sock";
    Server server(std::move(options));
    server.start();

    const std::string request =
        "{\"scenario\": \"" + scenario + "\"}";
    constexpr int kClients = 6;
    std::vector<ServeReply> replies(kClients);
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            replies[c] =
                serveRequest(server.socketPath(), request);
        });
    }
    for (auto& t : clients)
        t.join();

    // The single-flight invariant: across all concurrent identical
    // requests, each unique design point is optimized exactly once —
    // however the claims interleaved. Everything else was served from
    // the LRU or coalesced onto the owner's in-flight computation.
    double computed = 0.0;
    for (const ServeReply& reply : replies) {
        ASSERT_TRUE(reply.status.at("ok").asBool());
        computed += reply.status.at("computed").asNumber();
        EXPECT_EQ(reply.payload, expected);
    }
    EXPECT_EQ(computed, 2.0); // The scenario has 2 unique points.
    EXPECT_EQ(server.store().stats().inFlight, 0u);

    server.stop();
}

TEST(Serve, RequestErrorsAreIsolatedFromTheServer)
{
    ServeOptions options;
    options.socketPath = testing::TempDir() + "libra-serve-c.sock";
    Server server(std::move(options));
    server.start();
    const std::string socket = server.socketPath();

    ServeReply bad = serveRequest(socket, "{ not json");
    EXPECT_FALSE(bad.status.at("ok").asBool());

    ServeReply unknown = serveRequest(
        socket, "{\"scenario\": \"no-such-scenario\"}");
    EXPECT_FALSE(unknown.status.at("ok").asBool());
    EXPECT_NE(unknown.status.at("error").asString().find(
                  "unknown scenario"),
              std::string::npos);

    ServeReply typo = serveRequest(
        socket, "{\"scenario\": \"tbl1\", \"emitt\": \"json\"}");
    EXPECT_FALSE(typo.status.at("ok").asBool());
    EXPECT_NE(typo.status.at("error").asString().find(
                  "unknown request field"),
              std::string::npos);

    // The server survived all three and still answers correctly.
    ServeReply ok = serveRequest(socket, "{\"scenario\": \"tbl1\"}");
    EXPECT_TRUE(ok.status.at("ok").asBool());
    EXPECT_EQ(ok.payload, oneShotJson("tbl1"));
    EXPECT_EQ(server.stats().errors, 3u);

    server.stop();
}

// --- Serve hardening ---------------------------------------------------

/** Raw client socket to a Unix-domain server; -1 on failure. */
int
rawConnect(const std::string& path)
{
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

TEST(Serve, OversizedRequestLineIsAnsweredAndTheConnectionClosed)
{
    ServeOptions options;
    options.socketPath = testing::TempDir() + "libra-serve-e.sock";
    Server server(std::move(options));
    server.start();

    int fd = rawConnect(server.socketPath());
    ASSERT_GE(fd, 0);

    // One byte past the request-line cap, never a newline: the server
    // must refuse instead of buffering the "line" forever.
    std::string junk(kMaxFrameLine + 1, 'x');
    ASSERT_TRUE(sendAllFd(fd, junk));

    std::string reply;
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
        reply.append(buf, static_cast<std::size_t>(n));
    EXPECT_EQ(n, 0); // Server closed the connection after answering.
    ::close(fd);

    EXPECT_NE(reply.find("\"ok\":false"), std::string::npos);
    EXPECT_NE(reply.find("request line exceeds"), std::string::npos);
    EXPECT_EQ(server.stats().errors, 1u);

    // The refusal is per-connection: the server still answers.
    ServeReply ok =
        serveRequest(server.socketPath(), "{\"op\": \"ping\"}");
    EXPECT_TRUE(ok.status.at("ok").asBool());

    server.stop();
}

/**
 * A fake "server" that accepts one connection, drains the request
 * line, answers with @p response verbatim, and closes.
 */
void
answerOnce(int listenFd, const std::string& response)
{
    int fd = ::accept(listenFd, nullptr, nullptr);
    ASSERT_GE(fd, 0);
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
        if (std::memchr(buf, '\n', static_cast<std::size_t>(n)))
            break;
    }
    ASSERT_TRUE(sendAllFd(fd, response));
    ::close(fd);
}

TEST(Serve, GarbageStatusLinesFromAPeerAreFatalNotCrashes)
{
    const std::string path =
        testing::TempDir() + "libra-serve-f.sock";
    std::filesystem::remove(path);
    int listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(listenFd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ASSERT_EQ(::bind(listenFd, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)),
              0);
    ASSERT_EQ(::listen(listenFd, 4), 0);

    // A negative, a non-integer, an absurdly large, and a non-numeric
    // `bytes` — each must surface as a clean FatalError in the client
    // (historically the value was cast straight to size_t, turning -1
    // into an 18-exabyte read).
    const std::string bads[] = {
        "{\"ok\":true,\"bytes\":-1}\n",
        "{\"ok\":true,\"bytes\":1.5}\n",
        "{\"ok\":true,\"bytes\":1e18}\n",
        "{\"ok\":true,\"bytes\":\"nope\"}\n",
    };
    for (const std::string& bad : bads) {
        std::thread peer([&] { answerOnce(listenFd, bad); });
        EXPECT_THROW(serveRequest(path, "{\"op\": \"ping\"}"),
                     FatalError)
            << "status line: " << bad;
        peer.join();
    }

    // A truncated frame (fewer payload bytes than promised, then EOF)
    // is fatal too, not a hang or a short read passed to the caller.
    std::thread peer([&] {
        answerOnce(listenFd, "{\"ok\":true,\"bytes\":64}\nshort");
    });
    EXPECT_THROW(serveRequest(path, "{\"op\": \"ping\"}"),
                 FatalError);
    peer.join();

    ::close(listenFd);
    std::filesystem::remove(path);
}

TEST(Serve, StatsExposeTheLruByteBudget)
{
    ServeOptions options;
    options.socketPath = testing::TempDir() + "libra-serve-g.sock";
    options.lruBytes = 123456;
    Server server(std::move(options));
    bool shutdown = false;
    std::string stats =
        server.handleLine("{\"op\": \"stats\"}", &shutdown);
    EXPECT_NE(stats.find("\"lruMaxBytes\": 123456"),
              std::string::npos);
    EXPECT_NE(stats.find("\"lruBytes\": "), std::string::npos);
}

/** Split a framed handleLine response into (status, payload). */
ServeReply
splitResponse(const std::string& response)
{
    const auto nl = response.find('\n');
    ServeReply reply;
    reply.status = Json::parse(response.substr(0, nl));
    reply.payload = response.substr(nl + 1);
    return reply;
}

TEST(Serve, WorkersFieldIsValidatedAndClampedByMaxWorkers)
{
    const std::string scenario = serveScenarioName();
    const std::string expected = oneShotJson(scenario);

    // maxWorkers defaults to 1: any requested count clamps to the
    // classic in-process path, so no worker executable is needed and
    // the payload cannot change.
    ServeOptions options;
    options.socketPath = testing::TempDir() + "libra-serve-h.sock";
    Server server(std::move(options)); // handleLine needs no socket.
    bool shutdown = false;

    const std::string base =
        "\"scenario\": \"" + scenario + "\", \"emit\": \"json\"";
    ServeReply clamped = splitResponse(server.handleLine(
        "{" + base + ", \"workers\": 64}", &shutdown));
    ASSERT_TRUE(clamped.status.at("ok").asBool())
        << clamped.status.dump();
    EXPECT_EQ(clamped.payload, expected);

    // Malformed counts are per-request errors, never server deaths.
    for (const char* bad :
         {"0", "-2", "2.5", "257", "\"2\"", "true"}) {
        ServeReply reply = splitResponse(server.handleLine(
            "{" + base + ", \"workers\": " + bad + "}", &shutdown));
        EXPECT_FALSE(reply.status.at("ok").asBool()) << bad;
    }
    ServeReply after = splitResponse(
        server.handleLine("{" + base + "}", &shutdown));
    ASSERT_TRUE(after.status.at("ok").asBool());
    EXPECT_EQ(after.payload, expected);

    // A cap above 1 without a configured worker executable surfaces
    // as a request error the moment sharding is actually asked for.
    ServeOptions uncfg;
    uncfg.socketPath = testing::TempDir() + "libra-serve-i.sock";
    uncfg.maxWorkers = 4;
    Server unconfigured(std::move(uncfg));
    ServeReply reply = splitResponse(unconfigured.handleLine(
        "{" + base + ", \"workers\": 2}", &shutdown));
    EXPECT_FALSE(reply.status.at("ok").asBool());
    EXPECT_NE(reply.status.at("error").asString().find("worker"),
              std::string::npos)
        << reply.status.dump();
}

#ifdef LIBRA_CLI_PATH

TEST(Serve, ShardedRequestsStayByteIdenticalToOneShot)
{
    // A registry scenario (not the locally registered test scenario —
    // forked workers rebuild the batch from the registry by name).
    const std::string scenario = "explore-frontier";
    const std::string expected = oneShotJson(scenario);

    ServeOptions options;
    options.socketPath = testing::TempDir() + "libra-serve-j.sock";
    options.maxWorkers = 2;
    options.workerExe = LIBRA_CLI_PATH;
    Server server(std::move(options));
    bool shutdown = false;

    const std::string base =
        "\"scenario\": \"" + scenario + "\", \"emit\": \"json\"";
    ServeReply sharded = splitResponse(server.handleLine(
        "{" + base + ", \"workers\": 2}", &shutdown));
    ASSERT_TRUE(sharded.status.at("ok").asBool())
        << sharded.status.dump();
    EXPECT_EQ(sharded.payload, expected);

    // The second sharded request is served from the store: the pool
    // never spawns when nothing needs computing.
    ServeReply cached = splitResponse(server.handleLine(
        "{" + base + ", \"workers\": 2}", &shutdown));
    ASSERT_TRUE(cached.status.at("ok").asBool());
    EXPECT_EQ(cached.status.at("computed").asNumber(), 0.0);
    EXPECT_EQ(cached.payload, expected);
}

#endif // LIBRA_CLI_PATH

TEST(Serve, ProtocolOpsWorkWithoutASocket)
{
    ServeOptions options;
    options.socketPath = testing::TempDir() + "libra-serve-d.sock";
    Server server(std::move(options)); // Never started: handleLine
                                       // needs no socket.
    bool shutdown = false;
    std::string ping = server.handleLine("{\"op\": \"ping\"}",
                                         &shutdown);
    EXPECT_FALSE(shutdown);
    EXPECT_EQ(ping, "{\"ok\":true,\"op\":\"ping\",\"bytes\":0}\n");

    std::string bye = server.handleLine("{\"op\": \"shutdown\"}",
                                        &shutdown);
    EXPECT_TRUE(shutdown);
    EXPECT_EQ(bye, "{\"ok\":true,\"op\":\"shutdown\",\"bytes\":0}\n");

    std::string stats = server.handleLine("{\"op\": \"stats\"}",
                                          &shutdown);
    EXPECT_NE(stats.find("libra-serve-stats-v1"), std::string::npos);
}

} // namespace
} // namespace libra
