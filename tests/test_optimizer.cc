/**
 * @file
 * Tests for the LIBRA bandwidth optimizer.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "core/optimizer.hh"
#include "topology/zoo.hh"
#include "workload/zoo.hh"

namespace libra {
namespace {

/** A workload that is a single All-Reduce over the whole network. */
Workload
singleCollective(const Network& net, Bytes size)
{
    Workload w;
    w.name = "single-ar";
    w.strategy = {1, net.npus()};
    Layer l;
    l.wgComm.push_back({CollectiveType::AllReduce, CommScope::Dp, size});
    w.layers.push_back(l);
    return w;
}

OptimizerConfig
fastConfig(OptimizationObjective obj, double totalBw)
{
    OptimizerConfig cfg;
    cfg.objective = obj;
    cfg.totalBw = totalBw;
    cfg.search.starts = 4;
    return cfg;
}

TEST(Optimizer, PerfOptMatchesAnalyticOptimum)
{
    // For a single collective, time = max_i a_i/B_i with sum B = T.
    // The optimum equalizes all terms: B_i proportional to a_i.
    Network net = Network::parse("RI(4)_RI(4)_RI(4)");
    BwOptimizer opt(net, CostModel::defaultModel());
    std::vector<TargetWorkload> targets{
        {singleCollective(net, 1e9), 1.0}};
    auto cfg = fastConfig(OptimizationObjective::PerfOpt, 100.0);
    OptimizationResult r = opt.optimize(targets, cfg);

    auto spans = mapGroupToDims(net, 1, net.npus());
    auto traffic =
        multiRailTraffic(CollectiveType::AllReduce, 1e9, spans);
    double sum = traffic[0] + traffic[1] + traffic[2];
    for (int i = 0; i < 3; ++i) {
        double want =
            100.0 * traffic[static_cast<std::size_t>(i)] / sum;
        EXPECT_NEAR(r.bw[static_cast<std::size_t>(i)], want,
                    0.05 * 100.0)
            << "dim " << i;
    }
    // Spends the whole budget.
    EXPECT_NEAR(r.bw[0] + r.bw[1] + r.bw[2], 100.0, 1e-3);
}

TEST(Optimizer, PerfOptNeverWorseThanEqualBw)
{
    Network net = topo::fourD4K();
    BwOptimizer opt(net, CostModel::defaultModel());
    for (const auto& w :
         {wl::turingNlg(4096), wl::gpt3(4096), wl::msft1T(4096)}) {
        std::vector<TargetWorkload> targets{{w, 1.0}};
        auto cfg = fastConfig(OptimizationObjective::PerfOpt, 500.0);
        OptimizationResult best = opt.optimize(targets, cfg);
        OptimizationResult base = opt.baseline(targets, cfg);
        EXPECT_LE(best.weightedTime, base.weightedTime * (1.0 + 1e-6))
            << w.name;
    }
}

TEST(Optimizer, PerfPerCostNeverWorseOnPerfPerCost)
{
    Network net = topo::fourD4K();
    BwOptimizer opt(net, CostModel::defaultModel());
    std::vector<TargetWorkload> targets{{wl::msft1T(4096), 1.0}};
    auto cfg =
        fastConfig(OptimizationObjective::PerfPerCostOpt, 500.0);
    OptimizationResult best = opt.optimize(targets, cfg);
    OptimizationResult base = opt.baseline(targets, cfg);
    EXPECT_LE(best.weightedTime * best.cost,
              base.weightedTime * base.cost);
}

TEST(Optimizer, PerfPerCostSpendsFullBudgetByDefault)
{
    // The paper's scheme distributes a fixed BW resource; PerfPerCost
    // changes where the bandwidth goes, not how much is bought.
    Network net = topo::fourD4K();
    BwOptimizer opt(net, CostModel::defaultModel());
    std::vector<TargetWorkload> targets{{wl::resnet50(4096), 1.0}};
    auto cfg =
        fastConfig(OptimizationObjective::PerfPerCostOpt, 1000.0);
    OptimizationResult r = opt.optimize(targets, cfg);
    double spent = 0.0;
    for (double b : r.bw)
        spent += b;
    EXPECT_NEAR(spent, 1000.0, 1e-3);
}

TEST(Optimizer, RelaxedBudgetMayUnderspend)
{
    Network net = topo::fourD4K();
    BwOptimizer opt(net, CostModel::defaultModel());
    std::vector<TargetWorkload> targets{{wl::resnet50(4096), 1.0}};
    auto cfg =
        fastConfig(OptimizationObjective::PerfPerCostOpt, 1000.0);
    cfg.relaxTotalBw = true;
    OptimizationResult r = opt.optimize(targets, cfg);
    double spent = 0.0;
    for (double b : r.bw)
        spent += b;
    // Compute-bound vision training: most of the budget is not worth
    // its dollars once the budget becomes a ceiling.
    EXPECT_LT(spent, 900.0);
}

TEST(Optimizer, RespectsTextConstraints)
{
    Network net = topo::fourD4K();
    BwOptimizer opt(net, CostModel::defaultModel());
    std::vector<TargetWorkload> targets{{wl::msft1T(4096), 1.0}};
    auto cfg = fastConfig(OptimizationObjective::PerfOpt, 500.0);
    cfg.constraints.push_back("B4 <= 50");
    cfg.constraints.push_back("B1 >= B2");
    OptimizationResult r = opt.optimize(targets, cfg);
    EXPECT_LE(r.bw[3], 50.0 + 1e-4);
    EXPECT_GE(r.bw[0], r.bw[1] - 1e-4);
}

TEST(Optimizer, RespectsDollarCap)
{
    Network net = topo::fourD4K();
    CostModel cm = CostModel::defaultModel();
    BwOptimizer opt(net, cm);
    std::vector<TargetWorkload> targets{{wl::gpt3(4096), 1.0}};
    auto cfg = fastConfig(OptimizationObjective::PerfOpt, 1000.0);
    cfg.budgetCap = 15e6; // $15M (the Fig. 19 iso-cost setting).
    // Under a dollar cap the BW budget becomes an upper bound.
    cfg.relaxTotalBw = true;
    OptimizationResult r = opt.optimize(targets, cfg);
    EXPECT_LE(r.cost, 15e6 * (1.0 + 1e-6));
}

TEST(Optimizer, GroupOptimizationCoversAllTargets)
{
    Network net = topo::fourD4K();
    BwOptimizer opt(net, CostModel::defaultModel());
    TrainingEstimator est(net);

    std::vector<TargetWorkload> targets;
    for (auto& w :
         {wl::turingNlg(4096), wl::gpt3(4096), wl::msft1T(4096)})
        targets.push_back({w, 1.0});
    targets = normalizeWeights(est, targets, 500.0);

    auto cfg = fastConfig(OptimizationObjective::PerfOpt, 500.0);
    OptimizationResult group = opt.optimize(targets, cfg);

    // The group design must be within 2.2x of each workload's own
    // optimum (the paper reports ~1.01x average slowdown; we allow a
    // loose bound for solver tolerance).
    for (std::size_t i = 0; i < targets.size(); ++i) {
        std::vector<TargetWorkload> solo{{targets[i].workload, 1.0}};
        OptimizationResult own = opt.optimize(solo, cfg);
        EXPECT_LE(group.perWorkloadTime[i],
                  own.weightedTime * 2.2)
            << targets[i].workload.name;
    }
}

TEST(Optimizer, EvaluateReportsConsistentMetrics)
{
    Network net = topo::threeD512();
    CostModel cm = CostModel::defaultModel();
    BwOptimizer opt(net, cm);
    std::vector<TargetWorkload> targets{{wl::turingNlg(512), 1.0}};
    auto cfg = fastConfig(OptimizationObjective::PerfOpt, 300.0);
    BwConfig bw = net.equalBw(300.0);
    OptimizationResult r = opt.evaluate(bw, targets, cfg);
    EXPECT_NEAR(r.cost, cm.networkCost(net, bw), 1e-6);
    ASSERT_EQ(r.perWorkloadTime.size(), 1u);
    EXPECT_NEAR(r.perWorkloadTime[0], r.weightedTime, 1e-12);
}

TEST(Optimizer, NoTargetsThrows)
{
    Network net = topo::threeD512();
    BwOptimizer opt(net, CostModel::defaultModel());
    EXPECT_THROW(
        opt.optimize({}, fastConfig(OptimizationObjective::PerfOpt, 100)),
        FatalError);
}

TEST(Optimizer, ObjectiveNames)
{
    EXPECT_EQ(objectiveName(OptimizationObjective::PerfOpt),
              "PerfOptBW");
    EXPECT_EQ(objectiveName(OptimizationObjective::PerfPerCostOpt),
              "PerfPerCostOptBW");
}

/** Parameterized sweep: PerfOpt beats EqualBW across BW budgets. */
class OptimizerBwSweep : public ::testing::TestWithParam<double>
{};

TEST_P(OptimizerBwSweep, SpeedupAtLeastOne)
{
    Network net = topo::threeD4K();
    BwOptimizer opt(net, CostModel::defaultModel());
    std::vector<TargetWorkload> targets{{wl::msft1T(4096), 1.0}};
    auto cfg = fastConfig(OptimizationObjective::PerfOpt, GetParam());
    cfg.search.starts = 2;
    OptimizationResult best = opt.optimize(targets, cfg);
    OptimizationResult base = opt.baseline(targets, cfg);
    EXPECT_GE(base.weightedTime / best.weightedTime, 1.0 - 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Budgets, OptimizerBwSweep,
                         ::testing::Values(100.0, 300.0, 1000.0));

} // namespace
} // namespace libra
