/**
 * @file
 * End-to-end tests of the LIBRA framework facade plus report helpers.
 */

#include <gtest/gtest.h>

#include "core/framework.hh"
#include "core/report.hh"
#include "workload/zoo.hh"

namespace libra {
namespace {

LibraInputs
baseInputs(const std::string& shape, Workload w, double bw)
{
    LibraInputs in;
    in.networkShape = shape;
    in.targets.push_back({std::move(w), 1.0});
    in.config.totalBw = bw;
    in.config.search.starts = 3;
    return in;
}

TEST(Framework, PerfOptSpeedupAtLeastOne)
{
    auto in = baseInputs("RI(16)_FC(8)_SW(32)", wl::msft1T(4096), 300.0);
    in.config.objective = OptimizationObjective::PerfOpt;
    LibraReport r = runLibra(in);
    EXPECT_GE(r.speedup, 1.0 - 1e-6);
    EXPECT_GE(r.perfPerCostGain, 1.0 - 1e-6);
    EXPECT_LE(r.optimized.weightedTime, r.equalBw.weightedTime);
}

TEST(Framework, PerfPerCostWinsPerfPerCost)
{
    auto in = baseInputs("RI(16)_FC(8)_SW(32)", wl::msft1T(4096), 300.0);
    in.config.objective = OptimizationObjective::PerfPerCostOpt;
    LibraReport r = runLibra(in);
    EXPECT_GE(r.perfPerCostGain, 1.0 - 1e-6);
}

TEST(Framework, NormalizedWeightsApplied)
{
    LibraInputs in;
    in.networkShape = "RI(4)_FC(8)_RI(4)_SW(32)";
    in.targets.push_back({wl::turingNlg(4096), 1.0});
    in.targets.push_back({wl::msft1T(4096), 1.0});
    in.normalizeTargetWeights = true;
    in.config.totalBw = 500.0;
    in.config.search.starts = 2;
    LibraReport r = runLibra(in);
    EXPECT_EQ(r.optimized.perWorkloadTime.size(), 2u);
    // With 1/T_EqualBW weights, the weighted EqualBW time is the target
    // count.
    EXPECT_NEAR(r.equalBw.weightedTime, 2.0, 1e-6);
}

TEST(Framework, OptimizedAllocationIsWorkloadShaped)
{
    // For a TP-heavy LLM the inner dimension should get the most BW.
    auto in = baseInputs("RI(4)_FC(8)_RI(4)_SW(32)", wl::msft1T(4096),
                         500.0);
    LibraReport r = runLibra(in);
    EXPECT_GT(r.optimized.bw[0], r.optimized.bw[3]);
}

TEST(Report, Formatting)
{
    EXPECT_EQ(bwConfigToString({1.0, 2.5}, 1), "[ 1.0, 2.5 ] GB/s");
    EXPECT_EQ(bytesToString(3.4e9), "3.40 GB");
    EXPECT_EQ(dollarsToString(15.2e6), "$15.20 M");
    EXPECT_EQ(secondsToString(0.0123), "12.300 ms");
    EXPECT_EQ(secondsToString(2.0), "2.000 s");
    EXPECT_EQ(bytesToString(512.0), "512.00 B");
}

} // namespace
} // namespace libra
