/**
 * @file
 * Tests for communicator-group to network-dimension mapping.
 */

#include <gtest/gtest.h>

#include "collective/mapping.hh"
#include "common/logging.hh"
#include "topology/zoo.hh"

namespace libra {
namespace {

TEST(Mapping, SingletonGroupIsEmpty)
{
    Network net = topo::fourD4K();
    EXPECT_TRUE(mapGroupToDims(net, 1, 1).empty());
}

TEST(Mapping, WholeNetworkSpansAllDims)
{
    Network net = topo::fourD4K(); // RI(4)_FC(8)_RI(4)_SW(32).
    auto spans = mapGroupToDims(net, 1, net.npus());
    ASSERT_EQ(spans.size(), 4u);
    EXPECT_EQ(spans[0], (DimSpan{0, 4}));
    EXPECT_EQ(spans[1], (DimSpan{1, 8}));
    EXPECT_EQ(spans[2], (DimSpan{2, 4}));
    EXPECT_EQ(spans[3], (DimSpan{3, 32}));
}

TEST(Mapping, Tp128CoversThreeInnerDims)
{
    // MSFT-1T on 4D-4K: TP-128 = 4*8*4.
    Network net = topo::fourD4K();
    auto spans = mapGroupToDims(net, 1, 128);
    ASSERT_EQ(spans.size(), 3u);
    EXPECT_EQ(spans[0], (DimSpan{0, 4}));
    EXPECT_EQ(spans[1], (DimSpan{1, 8}));
    EXPECT_EQ(spans[2], (DimSpan{2, 4}));
}

TEST(Mapping, DpAboveTp128UsesOuterDim)
{
    Network net = topo::fourD4K();
    auto spans = mapGroupToDims(net, 128, 32);
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0], (DimSpan{3, 32}));
}

TEST(Mapping, Gpt3TpMismatchSplitsDimTwo)
{
    // GPT-3 TP-16 on 4D-4K: dim 1 fully (4) + *half* of dim 2 (4 of 8) —
    // the mismatching-TP-size case the paper calls out. The 4-subset of
    // the FC(8) can only drive 3 of its 7 per-peer links.
    Network net = topo::fourD4K();
    auto spans = mapGroupToDims(net, 1, 16);
    ASSERT_EQ(spans.size(), 2u);
    EXPECT_EQ(spans[0], (DimSpan{0, 4, 1.0}));
    EXPECT_EQ(spans[1].dim, 1u);
    EXPECT_EQ(spans[1].groupSize, 4);
    EXPECT_NEAR(spans[1].efficiency, 3.0 / 7.0, 1e-12);
}

TEST(Mapping, DpAboveGpt3TpStraddlesDims)
{
    // DP-256 above TP-16: remaining half of dim 2 (a stride-4 pair in
    // the FC(8), 1 of 7 links usable), all of dims 3 and 4.
    Network net = topo::fourD4K();
    auto spans = mapGroupToDims(net, 16, 256);
    ASSERT_EQ(spans.size(), 3u);
    EXPECT_EQ(spans[0].dim, 1u);
    EXPECT_EQ(spans[0].groupSize, 2);
    EXPECT_NEAR(spans[0].efficiency, 1.0 / 7.0, 1e-12);
    EXPECT_EQ(spans[1], (DimSpan{2, 4, 1.0}));
    EXPECT_EQ(spans[2], (DimSpan{3, 32, 1.0}));
}

TEST(Mapping, EfficiencyRules)
{
    // FC: (g-1)/(n-1); Ring: g*stride/n; Switch: always 1.
    Network net = Network::parse("RI(8)_FC(8)_SW(8)");

    auto ri = mapGroupToDims(net, 1, 4); // 4 consecutive of RI(8).
    EXPECT_NEAR(ri[0].efficiency, 4.0 / 8.0, 1e-12);

    auto ri2 = mapGroupToDims(net, 2, 4); // Stride-2 subset of RI(8).
    ASSERT_EQ(ri2[0].dim, 0u);
    EXPECT_NEAR(ri2[0].efficiency, 4.0 * 2.0 / 8.0, 1e-12);

    auto fc = mapGroupToDims(net, 8, 2); // Pair within FC(8).
    ASSERT_EQ(fc[0].dim, 1u);
    EXPECT_NEAR(fc[0].efficiency, 1.0 / 7.0, 1e-12);

    auto sw = mapGroupToDims(net, 64, 4); // 4-subset of SW(8).
    ASSERT_EQ(sw[0].dim, 2u);
    EXPECT_DOUBLE_EQ(sw[0].efficiency, 1.0);
}

TEST(Mapping, EfficiencyCanBeDisabled)
{
    // The blind (paper-LIBRA) model reports 1.0 everywhere.
    Network net = topo::fourD4K();
    auto spans = mapGroupToDims(net, 1, 16, false);
    for (const auto& s : spans)
        EXPECT_DOUBLE_EQ(s.efficiency, 1.0);
}

TEST(Mapping, FullDimsAlwaysFullyEfficient)
{
    Network net = topo::fourD4K();
    for (const auto& s : mapGroupToDims(net, 1, net.npus()))
        EXPECT_DOUBLE_EQ(s.efficiency, 1.0);
}

TEST(Mapping, StrideSkipsInnerDims)
{
    Network net = Network::parse("RI(4)_RI(4)_RI(4)");
    auto spans = mapGroupToDims(net, 4, 4);
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0], (DimSpan{1, 4}));

    spans = mapGroupToDims(net, 16, 4);
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0], (DimSpan{2, 4}));
}

TEST(Mapping, GroupTooLargeThrows)
{
    Network net = topo::threeDTorus(); // 64 NPUs.
    EXPECT_THROW(mapGroupToDims(net, 1, 128), FatalError);
    EXPECT_THROW(mapGroupToDims(net, 2, 64), FatalError);
}

TEST(Mapping, MisalignedStrideThrows)
{
    Network net = Network::parse("RI(4)_RI(4)");
    // Stride 3 does not align with the dim-1 size 4.
    EXPECT_THROW(mapGroupToDims(net, 3, 4), FatalError);
}

TEST(Mapping, NonTilingGroupThrows)
{
    Network net = Network::parse("RI(8)_RI(2)");
    // A group of 3 cannot tile a dim of 8 (3 does not divide 8).
    EXPECT_THROW(mapGroupToDims(net, 1, 3), FatalError);
}

TEST(Mapping, BadStrideThrows)
{
    Network net = topo::threeDTorus();
    EXPECT_THROW(mapGroupToDims(net, 0, 4), FatalError);
}

/** Property: TP spans + DP spans jointly tile the whole network. */
class MappingTiling
    : public ::testing::TestWithParam<std::pair<long, long>>
{};

TEST_P(MappingTiling, TpTimesDpCoversNetwork)
{
    auto [tp, dp] = GetParam();
    Network net = topo::fourD4K();
    ASSERT_EQ(tp * dp, net.npus());

    auto tpSpans = mapGroupToDims(net, 1, tp);
    auto dpSpans = mapGroupToDims(net, tp, dp);

    long tpProduct = 1;
    for (const auto& s : tpSpans)
        tpProduct *= s.groupSize;
    long dpProduct = 1;
    for (const auto& s : dpSpans)
        dpProduct *= s.groupSize;
    EXPECT_EQ(tpProduct, tp);
    EXPECT_EQ(dpProduct, dp);

    // Per dimension, TP and DP shares multiply to the dim size.
    std::vector<long> share(net.numDims(), 1);
    for (const auto& s : tpSpans)
        share[s.dim] *= s.groupSize;
    for (const auto& s : dpSpans)
        share[s.dim] *= s.groupSize;
    for (std::size_t d = 0; d < net.numDims(); ++d)
        EXPECT_EQ(share[d], net.dim(d).size) << "dim " << d;
}

INSTANTIATE_TEST_SUITE_P(
    HpStrategies, MappingTiling,
    ::testing::Values(std::pair<long, long>{1, 4096},
                      std::pair<long, long>{4, 1024},
                      std::pair<long, long>{8, 512},
                      std::pair<long, long>{16, 256},
                      std::pair<long, long>{32, 128},
                      std::pair<long, long>{64, 64},
                      std::pair<long, long>{128, 32},
                      std::pair<long, long>{256, 16},
                      std::pair<long, long>{4096, 1}));

} // namespace
} // namespace libra
