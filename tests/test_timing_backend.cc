/**
 * @file
 * Tests for the pluggable timing-backend layer: registry mechanics,
 * default-backend bit-identity with the seed analytical path, the
 * BACKEND study directive, and the study-cache-key folding rules.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "core/estimator.hh"
#include "core/study_config.hh"
#include "core/timing_backend.hh"
#include "study/cache.hh"
#include "topology/zoo.hh"
#include "workload/zoo.hh"

namespace libra {
namespace {

TEST(TimingBackendRegistry, BuiltinsAreRegistered)
{
    const TimingBackendRegistry& registry =
        TimingBackendRegistry::global();
    std::vector<std::string> names = registry.names();
    ASSERT_GE(names.size(), 2u);
    EXPECT_EQ(names[0], kAnalyticalTimingBackendName);
    EXPECT_EQ(names[1], kChunkSimTimingBackendName);
    for (const auto& name : names) {
        const TimingBackend* b = registry.find(name);
        ASSERT_NE(b, nullptr);
        EXPECT_EQ(b->name(), name);
        EXPECT_FALSE(b->description().empty());
    }
    EXPECT_EQ(registry.find("no-such-backend"), nullptr);
}

TEST(TimingBackendRegistry, ResolveDefaultsAndUnknowns)
{
    // "" resolves to the analytical default.
    EXPECT_EQ(resolveTimingBackend(""),
              resolveTimingBackend(kAnalyticalTimingBackendName));
    EXPECT_EQ(timingBackendOrDefault(""), kAnalyticalTimingBackendName);
    EXPECT_EQ(timingBackendOrDefault("chunk-sim"), "chunk-sim");
    EXPECT_THROW(resolveTimingBackend("no-such-backend"), FatalError);
}

/** Minimal backend for registry-mechanics tests. */
class NullBackend final : public TimingBackend
{
  public:
    std::string name() const override { return "null-test"; }
    std::string description() const override { return "test only"; }
    CollectiveTiming
    timing(CollectiveType, Bytes, const std::vector<DimSpan>& spans,
           const BwConfig&, bool) const override
    {
        CollectiveTiming t;
        t.trafficPerDim.assign(spans.size(), 0.0);
        t.timePerDim.assign(spans.size(), 0.0);
        return t;
    }
};

TEST(TimingBackendRegistry, DuplicateAndNullRegistrationsThrow)
{
    TimingBackendRegistry registry;
    registry.add(std::make_unique<NullBackend>());
    EXPECT_THROW(registry.add(std::make_unique<NullBackend>()),
                 FatalError);
    EXPECT_THROW(registry.add(nullptr), FatalError);
    EXPECT_EQ(registry.size(), 1u);
}

TEST(TimingBackend, AnalyticalBackendMatchesMultiRailBitForBit)
{
    Network net = topo::threeD512();
    auto spans = mapGroupToDims(net, 1, net.npus());
    BwConfig bw{120.0, 45.0, 12.5};
    const TimingBackend* analytical = resolveTimingBackend("");
    for (CollectiveType type :
         {CollectiveType::AllReduce, CollectiveType::ReduceScatter,
          CollectiveType::AllGather, CollectiveType::AllToAll}) {
        for (bool inNet : {false, true}) {
            CollectiveTiming a =
                analytical->timing(type, 5e9, spans, bw, inNet);
            CollectiveTiming m = multiRailTime(type, 5e9, spans, bw,
                                               inNet);
            EXPECT_EQ(a.time, m.time);
            EXPECT_EQ(a.trafficPerDim, m.trafficPerDim);
            EXPECT_EQ(a.timePerDim, m.timePerDim);
            EXPECT_EQ(a.bottleneckSpan, m.bottleneckSpan);
        }
    }
}

/**
 * Selecting the default backend by name must be bit-identical to the
 * seed path (no backend field at all): backend_ stays null in both
 * cases, so this pins the wiring rather than FP luck.
 */
TEST(TimingBackend, DefaultBackendIsBitIdenticalWithSeedPath)
{
    Network net = Network::parse("RI(4)_FC(4)_SW(4)");
    Workload w = wl::gpt3(net.npus());
    BwConfig bw = net.equalBw(300.0);

    TrainingEstimator seed(net); // Historical default construction.
    EstimatorOptions named;
    named.timingBackend = kAnalyticalTimingBackendName;
    TrainingEstimator explicitDefault(net, named);

    EXPECT_TRUE(seed.usesAnalyticalTiming());
    EXPECT_TRUE(explicitDefault.usesAnalyticalTiming());
    EXPECT_EQ(seed.estimate(w, bw), explicitDefault.estimate(w, bw));
    EXPECT_EQ(seed.detail(w, bw).total,
              explicitDefault.detail(w, bw).total);
}

TEST(TimingBackend, ChunkSimSingleDimensionMatchesAnalytical)
{
    // On a single-dimension span there is no pipeline to ramp: the
    // chunked sim serializes on the one dimension and reproduces the
    // analytical time (up to chunk-sum rounding and tick resolution).
    std::vector<DimSpan> spans{{0, 8, 1.0}};
    BwConfig bw{50.0};
    const TimingBackend* sim = resolveTimingBackend("chunk-sim");
    for (CollectiveType type :
         {CollectiveType::AllReduce, CollectiveType::ReduceScatter,
          CollectiveType::AllGather, CollectiveType::AllToAll}) {
        CollectiveTiming a = multiRailTime(type, 2e9, spans, bw);
        CollectiveTiming s = sim->timing(type, 2e9, spans, bw, false);
        EXPECT_NEAR(s.time, a.time, a.time * 1e-9) <<
            collectiveTypeName(type);
        EXPECT_EQ(s.trafficPerDim, a.trafficPerDim);
    }
}

TEST(TimingBackend, ChunkSimMemoOnAndOffAreBitIdentical)
{
    Network net = topo::threeDTorus();
    auto spans = mapGroupToDims(net, 1, net.npus());
    BwConfig bw{80.0, 40.0, 20.0};
    const TimingBackend* sim = resolveTimingBackend("chunk-sim");

    ASSERT_TRUE(chunkSimMemoEnabled());
    CollectiveTiming memoCold =
        sim->timing(CollectiveType::AllReduce, 3e9, spans, bw, false);
    CollectiveTiming memoWarm =
        sim->timing(CollectiveType::AllReduce, 3e9, spans, bw, false);
    setChunkSimMemoEnabled(false);
    CollectiveTiming direct =
        sim->timing(CollectiveType::AllReduce, 3e9, spans, bw, false);
    setChunkSimMemoEnabled(true);

    EXPECT_EQ(memoCold.time, direct.time);
    EXPECT_EQ(memoWarm.time, direct.time);
    EXPECT_EQ(memoCold.timePerDim, direct.timePerDim);
    EXPECT_EQ(memoCold.trafficPerDim, direct.trafficPerDim);
}

TEST(TimingBackend, InNetworkAllReduceFallsBackToClosedForm)
{
    // The chunk simulator has no switch-reduction mode; the offloaded
    // All-Reduce must keep the analytical m / q_{i-1} form exactly.
    Network net = topo::threeDTorus();
    auto spans = mapGroupToDims(net, 1, net.npus());
    BwConfig bw{80.0, 40.0, 20.0};
    const TimingBackend* sim = resolveTimingBackend("chunk-sim");
    CollectiveTiming s =
        sim->timing(CollectiveType::AllReduce, 3e9, spans, bw, true);
    CollectiveTiming a =
        multiRailTime(CollectiveType::AllReduce, 3e9, spans, bw, true);
    EXPECT_EQ(s.time, a.time);
    EXPECT_EQ(s.trafficPerDim, a.trafficPerDim);
}

TEST(TimingBackend, EstimatorRejectsUnknownBackend)
{
    EstimatorOptions opt;
    opt.timingBackend = "no-such-backend";
    EXPECT_THROW(TrainingEstimator(Network::parse("RI(4)"), opt),
                 FatalError);
}

TEST(TimingBackend, CompileRejectedUnderNonDefaultBackend)
{
    Network net = Network::parse("RI(4)_FC(4)_SW(4)");
    EstimatorOptions opt;
    opt.timingBackend = kChunkSimTimingBackendName;
    TrainingEstimator est(net, opt);
    EXPECT_FALSE(est.usesAnalyticalTiming());
    EXPECT_THROW(est.compile(wl::resnet50(net.npus())), FatalError);
}

// --- BACKEND study directive -------------------------------------------

const char* kChunkSimStudy =
    "NETWORK RI(4)_FC(4)_SW(4)\n"
    "TOTAL_BW 300\n"
    "BACKEND chunk-sim\n"
    "WORKLOAD resnet50\n";

TEST(BackendDirective, ParseSerializeParseRoundTrips)
{
    LibraInputs first = parseStudyConfigString(kChunkSimStudy);
    EXPECT_EQ(first.config.estimator.timingBackend, "chunk-sim");
    std::string serialized = studyConfigToString(first);
    EXPECT_NE(serialized.find("BACKEND chunk-sim"), std::string::npos);
    LibraInputs second = parseStudyConfigString(serialized);
    EXPECT_TRUE(studyInputsEqual(first, second)) << serialized;
    // Fixpoint: serializing again reproduces the text byte-for-byte.
    EXPECT_EQ(serialized, studyConfigToString(second));
}

TEST(BackendDirective, ExplicitAnalyticalEqualsOmittedDefault)
{
    LibraInputs named = parseStudyConfigString(
        "NETWORK RI(4)_SW(8)\nBACKEND analytical\nWORKLOAD resnet50\n");
    LibraInputs plain = parseStudyConfigString(
        "NETWORK RI(4)_SW(8)\nWORKLOAD resnet50\n");
    EXPECT_TRUE(studyInputsEqual(named, plain));
    // The serializer normalizes: the default backend emits no line.
    EXPECT_EQ(studyConfigToString(named).find("BACKEND"),
              std::string::npos);
}

TEST(BackendDirective, UnknownNameFailsWithLineNumber)
{
    try {
        parseStudyConfigString(
            "NETWORK RI(4)_SW(8)\nBACKEND warp-drive\n"
            "WORKLOAD resnet50\n");
        FAIL() << "expected FatalError";
    } catch (const FatalError& e) {
        EXPECT_NE(std::string(e.what()).find("line 2"),
                  std::string::npos)
            << e.what();
        EXPECT_NE(std::string(e.what()).find("warp-drive"),
                  std::string::npos)
            << e.what();
    }
}

// --- Study-cache key coverage ------------------------------------------

TEST(BackendCacheKey, DefaultBackendLeavesKeyUnchanged)
{
    LibraInputs plain = parseStudyConfigString(
        "NETWORK RI(4)_SW(8)\nWORKLOAD resnet50\n");
    LibraInputs named = plain;
    named.config.estimator.timingBackend = kAnalyticalTimingBackendName;
    // Pre-PR keys must stay byte-identical (no version bump).
    EXPECT_EQ(canonicalStudyKey(plain), canonicalStudyKey(named));
    EXPECT_EQ(canonicalStudyKey(plain).find("timing("),
              std::string::npos);
}

TEST(BackendCacheKey, NonDefaultBackendChangesKey)
{
    LibraInputs plain = parseStudyConfigString(
        "NETWORK RI(4)_SW(8)\nWORKLOAD resnet50\n");
    LibraInputs sim = plain;
    sim.config.estimator.timingBackend = kChunkSimTimingBackendName;
    EXPECT_TRUE(studyPointCacheable(sim));
    std::string plainKey = canonicalStudyKey(plain);
    std::string simKey = canonicalStudyKey(sim);
    EXPECT_NE(plainKey, simKey);
    // The folded content is the backend's cacheKeyTag — name plus
    // semantic parameters — so a chunk-count change invalidates
    // previously cached chunk-sim results.
    std::string tag =
        "timing(" +
        resolveTimingBackend(kChunkSimTimingBackendName)->cacheKeyTag() +
        ")";
    EXPECT_NE(simKey.find(tag), std::string::npos) << simKey;
    EXPECT_NE(simKey.find("timing(chunk-sim/"), std::string::npos)
        << simKey;
    EXPECT_NE(studyCacheHash(plain), studyCacheHash(sim));
}

} // namespace
} // namespace libra
