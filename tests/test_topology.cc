/**
 * @file
 * Tests for building blocks, the network representation, and the zoo.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "topology/building_block.hh"
#include "topology/network.hh"
#include "topology/zoo.hh"

namespace libra {
namespace {

TEST(BuildingBlock, TokensRoundTrip)
{
    for (auto t : {UnitTopology::Ring, UnitTopology::FullyConnected,
                   UnitTopology::Switch})
        EXPECT_EQ(parseUnitTopology(unitTopologyToken(t)), t);
    EXPECT_THROW(parseUnitTopology("XX"), FatalError);
}

TEST(BuildingBlock, CanonicalAlgorithms)
{
    // Fig. 7(b): Ring->Ring, FC->Direct, SW->HalvingDoubling.
    EXPECT_EQ(canonicalAlgorithm(UnitTopology::Ring), DimAlgorithm::Ring);
    EXPECT_EQ(canonicalAlgorithm(UnitTopology::FullyConnected),
              DimAlgorithm::Direct);
    EXPECT_EQ(canonicalAlgorithm(UnitTopology::Switch),
              DimAlgorithm::HalvingDoubling);
}

TEST(BuildingBlock, LinkCounts)
{
    EXPECT_EQ(linksPerNpu(UnitTopology::Ring, 8), 2);
    EXPECT_EQ(linksPerNpu(UnitTopology::Ring, 2), 1);
    EXPECT_EQ(linksPerNpu(UnitTopology::FullyConnected, 8), 7);
    EXPECT_EQ(linksPerNpu(UnitTopology::Switch, 32), 1);
    EXPECT_TRUE(needsSwitch(UnitTopology::Switch));
    EXPECT_FALSE(needsSwitch(UnitTopology::Ring));
}

TEST(Network, ParseNameRoundTrip)
{
    for (const char* name :
         {"RI(4)_FC(8)_RI(4)_SW(32)", "SW(16)_SW(8)_SW(4)", "RI(2)",
          "FC(8)_RI(16)_SW(8)"}) {
        Network n = Network::parse(name);
        EXPECT_EQ(n.name(), name);
    }
}

TEST(Network, NpusAndPrefix)
{
    Network n = Network::parse("RI(4)_FC(8)_RI(4)_SW(32)");
    EXPECT_EQ(n.npus(), 4096);
    EXPECT_EQ(n.prefixProduct(0), 1);
    EXPECT_EQ(n.prefixProduct(1), 4);
    EXPECT_EQ(n.prefixProduct(2), 32);
    EXPECT_EQ(n.prefixProduct(3), 128);
    EXPECT_EQ(n.prefixProduct(4), 4096);
}

TEST(Network, SwitchHierarchyNotation)
{
    // Fig. 4(b): a 2-level switch hierarchy within one dimension is
    // still a 1D topology — same connectivity, same name round-trip.
    Network n = Network::parse("SW(8:2)");
    EXPECT_EQ(n.numDims(), 1u);
    EXPECT_EQ(n.dim(0).size, 8);
    EXPECT_EQ(n.dim(0).switchLevels, 2);
    EXPECT_EQ(n.name(), "SW(8:2)");

    Network mixed = Network::parse("RI(4)_SW(16:3)");
    EXPECT_EQ(mixed.dim(1).switchLevels, 3);
    EXPECT_EQ(mixed.name(), "RI(4)_SW(16:3)");
}

TEST(Network, HierarchyDepthValidation)
{
    EXPECT_THROW(Network::parse("RI(4:2)"), FatalError); // Not SW.
    EXPECT_THROW(Network::parse("SW(4:)"), FatalError);
    EXPECT_THROW(Network::parse("SW(4:0)"), FatalError);
}

TEST(Network, ParseErrors)
{
    EXPECT_THROW(Network::parse(""), FatalError);
    EXPECT_THROW(Network::parse("RI"), FatalError);
    EXPECT_THROW(Network::parse("RI(4"), FatalError);
    EXPECT_THROW(Network::parse("RI(4)FC(8)"), FatalError);
    EXPECT_THROW(Network::parse("QQ(4)"), FatalError);
    EXPECT_THROW(Network::parse("RI(1)"), FatalError); // Size < 2.
}

TEST(Network, PhysicalLevelsOutsideIn)
{
    // 4D: Chiplet, Package, Node, Pod (Fig. 2b).
    Network n4 = Network::parse("RI(4)_FC(8)_RI(4)_SW(32)");
    EXPECT_EQ(n4.dim(0).level, PhysicalLevel::Chiplet);
    EXPECT_EQ(n4.dim(1).level, PhysicalLevel::Package);
    EXPECT_EQ(n4.dim(2).level, PhysicalLevel::Node);
    EXPECT_EQ(n4.dim(3).level, PhysicalLevel::Pod);

    // 2D: Node, Pod.
    Network n2 = Network::parse("RI(4)_SW(2)");
    EXPECT_EQ(n2.dim(0).level, PhysicalLevel::Node);
    EXPECT_EQ(n2.dim(1).level, PhysicalLevel::Pod);

    // 5D: two Chiplet dims inside.
    Network n5 = Network::parse("RI(2)_RI(2)_RI(2)_RI(2)_SW(2)");
    EXPECT_EQ(n5.dim(0).level, PhysicalLevel::Chiplet);
    EXPECT_EQ(n5.dim(1).level, PhysicalLevel::Chiplet);
    EXPECT_EQ(n5.dim(2).level, PhysicalLevel::Package);
}

TEST(Network, CoordinateRoundTrip)
{
    Network n = Network::parse("RI(3)_RI(2)_RI(4)");
    for (long id = 0; id < n.npus(); ++id)
        EXPECT_EQ(n.npuOf(n.coordsOf(id)), id);

    // Dim 0 is fastest-varying (Fig. 8 placement).
    auto c1 = n.coordsOf(1);
    EXPECT_EQ(c1[0], 1);
    EXPECT_EQ(c1[1], 0);
    auto c3 = n.coordsOf(3);
    EXPECT_EQ(c3[0], 0);
    EXPECT_EQ(c3[1], 1);
}

TEST(Network, EqualBw)
{
    Network n = Network::parse("RI(4)_SW(2)");
    BwConfig bw = n.equalBw(300.0);
    ASSERT_EQ(bw.size(), 2u);
    EXPECT_DOUBLE_EQ(bw[0], 150.0);
    EXPECT_DOUBLE_EQ(bw[1], 150.0);
}

TEST(Zoo, TableThreeShapes)
{
    EXPECT_EQ(topo::fourD4K().npus(), 4096);
    EXPECT_EQ(topo::threeD4K().npus(), 4096);
    EXPECT_EQ(topo::twoD4K().npus(), 4096);
    EXPECT_EQ(topo::threeD512().npus(), 512);
    EXPECT_EQ(topo::threeD1K().npus(), 1024);
    EXPECT_EQ(topo::fourD2K().npus(), 2048);
    EXPECT_EQ(topo::threeDTorus().npus(), 64);
    EXPECT_EQ(topo::tableThree().size(), 6u);
}

TEST(Zoo, FamilyConsistency)
{
    // 3D-4K merges the two ring dims of 4D-4K; 2D-4K merges once more.
    EXPECT_EQ(topo::threeD4K().name(), "RI(16)_FC(8)_SW(32)");
    EXPECT_EQ(topo::twoD4K().name(), "RI(128)_SW(32)");
}

TEST(Zoo, RealSystemsParse)
{
    auto systems = topo::realSystems();
    EXPECT_EQ(systems.size(), 5u);
    for (const auto& s : systems)
        EXPECT_GE(s.network.npus(), 4);
}

TEST(PhysicalLevelNames, AllDistinct)
{
    EXPECT_EQ(physicalLevelName(PhysicalLevel::Chiplet), "Chiplet");
    EXPECT_EQ(physicalLevelName(PhysicalLevel::Pod), "Pod");
}

} // namespace
} // namespace libra
